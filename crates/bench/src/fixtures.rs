//! Seeded test fixtures shared across the workspace.
//!
//! One place owns the "random but reproducible model" generators that the
//! serialization contract tests (`cpr_core/tests/api_surface.rs`), the
//! registry concurrency suite (`cpr_registry/tests/`), and the
//! mixed-traffic bench stage (`perf_snapshot`) all need — so a fleet of
//! 200 servable models means the same thing in a proptest and in a
//! benchmark. Everything here is part-wise construction
//! ([`CprModel::from_parts_tagged`] over random factors): building a
//! 200-model fleet costs milliseconds, no fitting involved.

use cpr_core::{CprModel, Dataset, Decomposition, Loss, Optimizer};
use cpr_grid::{ParamSpace, ParamSpec};
use cpr_tensor::{CpDecomp, TuckerDecomp};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// (optimizer, loss, tucker?) combinations the serialization format must
/// round-trip — every tag triple a fit can produce.
pub const TAG_COMBOS: [(Optimizer, Loss, bool); 5] = [
    (Optimizer::Als, Loss::LogLeastSquares, false),
    (Optimizer::Amn, Loss::MLogQ2, false),
    (Optimizer::Ccd, Loss::LogLeastSquares, false),
    (Optimizer::Sgd, Loss::LogLeastSquares, false),
    (Optimizer::TuckerAls, Loss::LogLeastSquares, true),
];

/// The 3-parameter mixed-axis space (log, linear, categorical) the random
/// model generators discretize — one of each axis kind, so every baked
/// `AxisTable` variant is exercised.
pub fn mixed_space() -> ParamSpace {
    ParamSpace::new(vec![
        ParamSpec::log("m", 8.0, 1024.0),
        ParamSpec::linear("b", -2.0, 7.0),
        ParamSpec::categorical("alg", 3),
    ])
}

/// A model assembled from random parts (no training), exercising every
/// serializable field: mixed axis kinds, either decomposition variant,
/// every tag combination (`combo` indexes [`TAG_COMBOS`]).
pub fn random_model(
    combo: usize,
    cells0: usize,
    cells1: usize,
    rank: usize,
    seed: u64,
) -> (CprModel, Optimizer, Loss) {
    let (optimizer, loss, tucker) = TAG_COMBOS[combo];
    let space = mixed_space();
    let cells = vec![cells0, cells1, 3];
    let dims = vec![cells0, cells1, 3];
    let (lo, hi) = if loss == Loss::MLogQ2 {
        (0.1, 1.5) // positive entries so the ln() path stays sane
    } else {
        (-1.0, 1.0)
    };
    let decomp = if tucker {
        Decomposition::Tucker(TuckerDecomp::random(
            &dims,
            &[rank, rank.max(2), 2],
            lo,
            hi,
            seed,
        ))
    } else {
        Decomposition::Cp(CpDecomp::random(&dims, rank, lo, hi, seed))
    };
    let log_offset = if loss == Loss::LogLeastSquares {
        0.25
    } else {
        0.0
    };
    let model =
        CprModel::from_parts_tagged(space, &cells, decomp, optimizer, loss, log_offset).unwrap();
    (model, optimizer, loss)
}

/// Seeded 2-parameter power-law dataset (`t = 1e-4 · m^1.3 · n^0.7`) over a
/// log×log space — the standard "CPR should nail this" training fixture.
pub fn power_law(n: usize, seed: u64) -> (ParamSpace, Dataset) {
    let space = ParamSpace::new(vec![
        ParamSpec::log("m", 32.0, 2048.0),
        ParamSpec::log("n", 32.0, 2048.0),
    ]);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut data = Dataset::new();
    for _ in 0..n {
        let m = 32.0 * 64.0_f64.powf(rng.gen::<f64>());
        let nn = 32.0 * 64.0_f64.powf(rng.gen::<f64>());
        data.push(vec![m, nn], 1e-4 * m.powf(1.3) * nn.powf(0.7));
    }
    (space, data)
}

/// One entry of a synthetic model fleet: the (application × machine ×
/// metric) naming triple a production registry keys on, plus a servable
/// model. The triple is unique per fleet index.
#[derive(Debug, Clone)]
pub struct FleetModel {
    pub app: String,
    pub machine: String,
    pub metric: String,
    pub model: CprModel,
}

const FLEET_APPS: [&str; 8] = [
    "gemm", "spmv", "stencil", "fft", "kripke", "qbox", "scan", "sort",
];
const FLEET_MACHINES: [&str; 3] = ["stampede2", "frontier", "fugaku"];
const FLEET_METRICS: [&str; 2] = ["time", "energy"];

/// A seeded fleet of `n` part-wise models with unique naming triples,
/// cycling every tag combination and varying grid shape and rank — the
/// population a model registry serves. Deterministic in `(n, seed)`.
pub fn fleet(n: usize, seed: u64) -> Vec<FleetModel> {
    (0..n)
        .map(|i| {
            let mut rng =
                StdRng::seed_from_u64(seed ^ (0x9E37_79B9_7F4A_7C15u64.wrapping_mul(i as u64 + 1)));
            let cells0 = rng.gen_range(3..8);
            let cells1 = rng.gen_range(2..6);
            let rank = rng.gen_range(1..4);
            let (model, _, _) = random_model(i % TAG_COMBOS.len(), cells0, cells1, rank, rng.gen());
            FleetModel {
                // `app` encodes the fleet index, so triples never collide.
                app: format!(
                    "{}-{}",
                    FLEET_APPS[i % FLEET_APPS.len()],
                    i / FLEET_APPS.len()
                ),
                machine: FLEET_MACHINES[i % FLEET_MACHINES.len()].to_string(),
                metric: FLEET_METRICS[i % FLEET_METRICS.len()].to_string(),
                model,
            }
        })
        .collect()
}

/// A seeded mixed query stream over a fleet: `n` (fleet index, probe)
/// pairs, probes drawn over (and slightly beyond) the [`mixed_space`]
/// domain so edge extrapolation stays in play. Deterministic in
/// `(fleet.len(), n, seed)`.
pub fn fleet_queries(fleet_size: usize, n: usize, seed: u64) -> Vec<(usize, Vec<f64>)> {
    assert!(fleet_size > 0, "fleet_queries: empty fleet");
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let who = rng.gen_range(0..fleet_size);
            let m = 1.0 + 1999.0 * rng.gen::<f64>();
            let b = -5.0 + 15.0 * rng.gen::<f64>();
            let alg = (4.0 * rng.gen::<f64>()).floor();
            (who, vec![m, b, alg])
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fleet_is_deterministic_and_unique() {
        let a = fleet(24, 42);
        let b = fleet(24, 42);
        assert_eq!(a.len(), 24);
        let mut triples: Vec<(String, String, String)> = a
            .iter()
            .map(|f| (f.app.clone(), f.machine.clone(), f.metric.clone()))
            .collect();
        triples.sort();
        triples.dedup();
        assert_eq!(triples.len(), 24, "naming triples must be unique");
        for (fa, fb) in a.iter().zip(&b) {
            assert_eq!(fa.app, fb.app);
            let probe = [100.0, 1.0, 2.0];
            assert_eq!(
                fa.model.predict(&probe).to_bits(),
                fb.model.predict(&probe).to_bits(),
                "same seed must rebuild the same fleet"
            );
        }
        // Different seeds produce different models.
        let c = fleet(24, 43);
        let probe = [100.0, 1.0, 2.0];
        assert!(a
            .iter()
            .zip(&c)
            .any(|(x, y)| x.model.predict(&probe) != y.model.predict(&probe)));
    }

    #[test]
    fn queries_land_in_bounds() {
        let qs = fleet_queries(7, 500, 9);
        assert_eq!(qs.len(), 500);
        for (who, x) in &qs {
            assert!(*who < 7);
            assert_eq!(x.len(), 3);
            assert!(x[2] >= 0.0 && x[2] <= 3.0 && x[2].fract() == 0.0);
        }
    }
}
