//! `perf_guard` — CI perf-regression gate over `perf_snapshot` output.
//!
//! Usage: `perf_guard <baseline.json> <current.json> [--max-regress <pct>]
//!        [--min-ms <ms>]`
//!
//! Parses two `cpr-perf-snapshot-v1` files (the hand-rolled one-stage-per-
//! line format `perf_snapshot` writes — no JSON dependency needed) and
//! fails (exit 1) when any stage present in the baseline runs more than
//! `<pct>` percent slower in the current snapshot (default 25), or is
//! missing from it (renames must update the checked-in baseline). Stages
//! new in the current snapshot pass through with a note.
//!
//! The comparison is a ratio of wall-clock times on whatever machine CI
//! happens to schedule, so the threshold is deliberately loose: it exists
//! to catch order-of-magnitude regressions (an accidentally quadratic
//! path, a lost parallel dispatch, a de-vectorized kernel), not 5% noise.
//! Stages whose baseline runs under `--min-ms` (default 0.05) are checked
//! for presence but not timed — at microsecond scale the ratio is all
//! timer jitter.

use std::process::ExitCode;

#[derive(Debug, PartialEq)]
struct StageTime {
    name: String,
    wall_ms: f64,
}

/// Extract `(name, wall_ms)` pairs from a snapshot body. Accepts exactly
/// the writer's layout: each stage on one line containing
/// `"name": "<id>"` and `"wall_ms": <float>`.
fn parse_stages(body: &str, path: &str) -> Result<Vec<StageTime>, String> {
    let mut out = Vec::new();
    for line in body.lines() {
        let Some(name) = field_str(line, "\"name\": \"") else {
            continue;
        };
        let wall = field_f64(line, "\"wall_ms\": ")
            .ok_or_else(|| format!("{path}: stage \"{name}\" has no parsable wall_ms"))?;
        out.push(StageTime {
            name: name.to_string(),
            wall_ms: wall,
        });
    }
    if out.is_empty() {
        return Err(format!("{path}: no stages found (not a perf snapshot?)"));
    }
    Ok(out)
}

fn field_str<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let rest = &line[line.find(key)? + key.len()..];
    rest.split('"').next()
}

fn field_f64(line: &str, key: &str) -> Option<f64> {
    let rest = &line[line.find(key)? + key.len()..];
    let end = rest
        .find(|c: char| c != '-' && c != '.' && !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn run() -> Result<bool, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut paths = Vec::new();
    let mut max_regress_pct = 25.0_f64;
    let mut min_ms = 0.05_f64;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut flag = |name: &str, slot: &mut f64| -> Result<bool, String> {
            if a != name {
                return Ok(false);
            }
            let v = it.next().ok_or_else(|| format!("{name} needs a value"))?;
            *slot = v.parse().map_err(|_| format!("{name}: bad value {v:?}"))?;
            Ok(true)
        };
        if !(flag("--max-regress", &mut max_regress_pct)? || flag("--min-ms", &mut min_ms)?) {
            paths.push(a.clone());
        }
    }
    let [baseline_path, current_path] = paths.as_slice() else {
        return Err(
            "usage: perf_guard <baseline.json> <current.json> [--max-regress <pct>] [--min-ms <ms>]"
                .into(),
        );
    };
    let read = |p: &str| std::fs::read_to_string(p).map_err(|e| format!("{p}: {e}"));
    let baseline = parse_stages(&read(baseline_path)?, baseline_path)?;
    let current = parse_stages(&read(current_path)?, current_path)?;

    let limit = 1.0 + max_regress_pct / 100.0;
    let mut ok = true;
    println!("# perf_guard: {current_path} vs {baseline_path} (limit {limit:.2}x)");
    for b in &baseline {
        match current.iter().find(|c| c.name == b.name) {
            None => {
                ok = false;
                println!("FAIL  {:<22} missing from current snapshot", b.name);
            }
            Some(c) if b.wall_ms < min_ms => {
                println!(
                    "skip  {:<22} {:>9.3} ms vs {:>9.3} ms  (baseline under {min_ms} ms)",
                    b.name, c.wall_ms, b.wall_ms
                );
            }
            Some(c) => {
                let ratio = c.wall_ms / b.wall_ms;
                let verdict = if ratio > limit { "FAIL" } else { "ok" };
                ok &= ratio <= limit;
                println!(
                    "{verdict:<5} {:<22} {:>9.3} ms vs {:>9.3} ms  ({ratio:.2}x)",
                    b.name, c.wall_ms, b.wall_ms
                );
            }
        }
    }
    for c in &current {
        if !baseline.iter().any(|b| b.name == c.name) {
            println!("note  {:<22} new stage (no baseline)", c.name);
        }
    }
    Ok(ok)
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => {
            eprintln!("perf_guard: regression beyond threshold (see table above)");
            ExitCode::from(1)
        }
        Err(e) => {
            eprintln!("perf_guard: {e}");
            ExitCode::from(2)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SNIPPET: &str = r#"{
  "stages": [
    {"name": "als_fit", "wall_ms": 9.868, "baseline_wall_ms": null, "speedup": null, "nnz": 1},
    {"name": "predict_batch", "wall_ms": 3.100, "baseline_wall_ms": 9.769, "speedup": 3.151, "nnz": 2}
  ]
}"#;

    #[test]
    fn parses_writer_layout() {
        let stages = parse_stages(SNIPPET, "x.json").unwrap();
        assert_eq!(stages.len(), 2);
        assert_eq!(stages[0].name, "als_fit");
        assert_eq!(stages[0].wall_ms, 9.868);
        assert_eq!(stages[1].name, "predict_batch");
        assert_eq!(stages[1].wall_ms, 3.100);
    }

    #[test]
    fn rejects_stage_free_input() {
        assert!(parse_stages("{}", "x.json").is_err());
    }

    #[test]
    fn field_parsers() {
        let line = r#"{"name": "a_b", "wall_ms": -12.5, "#;
        assert_eq!(field_str(line, "\"name\": \""), Some("a_b"));
        assert_eq!(field_f64(line, "\"wall_ms\": "), Some(-12.5));
        assert_eq!(field_f64(line, "\"absent\": "), None);
    }
}
