//! Table 1: error metrics and their ε-expressions.
//!
//! Generates prediction/observation pairs at controlled relative error and
//! verifies numerically that each aggregate metric equals (rows 1–5) or
//! Taylor-matches (rows 6–7) the corresponding expression in
//! `ε = m/y − 1`, reproducing the equivalences Table 1 tabulates.
//!
//! Run: `cargo run --release -p cpr-bench --bin table1_metrics`

use cpr_bench::fmt;
use cpr_core::{epsilon_expressions, Metrics};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let mut rng = StdRng::seed_from_u64(0);
    println!("# Table 1: metric vs epsilon-expression (M = 1000 pairs)");
    println!(
        "{:<10}{:>16}{:>16}{:>14}",
        "metric", "metric value", "eps expression", "|diff|"
    );
    for &eps_scale in &[0.01, 0.05, 0.2] {
        let mut truth = Vec::new();
        let mut pred = Vec::new();
        for _ in 0..1000 {
            let y = 10.0_f64.powf(rng.gen_range(-3.0..2.0));
            let eps = rng.gen_range(-eps_scale..eps_scale);
            truth.push(y);
            pred.push(y * (1.0 + eps));
        }
        let m = Metrics::compute(&pred, &truth);
        let e = epsilon_expressions(&pred, &truth);
        println!("## epsilon scale {eps_scale}");
        let rows: [(&str, f64, f64); 7] = [
            ("MAPE", m.mape, e.mape),
            ("MAE", m.mae, e.mae),
            ("MSE", m.mse, e.mse),
            ("SMAPE", m.smape, e.smape),
            ("LGMAPE", m.lgmape, e.lgmape),
            ("MLogQ", m.mlogq, e.mlogq_lead),
            ("MLogQ2", m.mlogq2, e.mlogq2_lead),
        ];
        for (name, metric, expr) in rows {
            println!(
                "{:<10}{:>16}{:>16}{:>14}",
                name,
                fmt(metric),
                fmt(expr),
                fmt((metric - expr).abs())
            );
        }
        println!();
    }
    println!("rows 1-5 are exact identities; rows 6-7 agree to O(eps^2) / O(eps^4),");
    println!("so their |diff| shrinks quadratically as the epsilon scale decreases.");
    println!();
    println!("# scale-independence check (paper Sec 2.2): m = 2y vs m = y/2");
    let truth = vec![1.0_f64; 4];
    let over = Metrics::compute(&[2.0, 2.0, 2.0, 2.0], &truth);
    let under = Metrics::compute(&[0.5, 0.5, 0.5, 0.5], &truth);
    println!("{:<10}{:>12}{:>12}", "metric", "over (2y)", "under (y/2)");
    println!(
        "{:<10}{:>12}{:>12}",
        "MAPE",
        fmt(over.mape),
        fmt(under.mape)
    );
    println!(
        "{:<10}{:>12}{:>12}",
        "SMAPE",
        fmt(over.smape),
        fmt(under.smape)
    );
    println!(
        "{:<10}{:>12}{:>12}",
        "MLogQ",
        fmt(over.mlogq),
        fmt(under.mlogq)
    );
    println!(
        "{:<10}{:>12}{:>12}",
        "MLogQ2",
        fmt(over.mlogq2),
        fmt(under.mlogq2)
    );
    println!("only the MLogQ family penalizes over/under-prediction equally.");
}
