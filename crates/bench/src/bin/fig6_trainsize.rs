//! Figure 6: prediction error vs. training-set size, all model families.
//!
//! Every family is tuned exhaustively over its §6.0.4 hyper-parameter grid
//! at each training-set size; the minimum test MLogQ is plotted. The
//! paper's findings (§7.1.2): CPR wins on the high-dimensional applications
//! (FMM, AMG, KRIPKE) at moderate-to-large training sizes; neural networks
//! are the closest alternative; SVM/RF/GB are dominated by GP/ET and are
//! omitted from the paper's plots (include them here with `--full` to see
//! the domination).
//!
//! Run: `cargo run --release -p cpr-bench --bin fig6_trainsize [--full]`

use cpr_apps::all_benchmarks;
use cpr_baselines::{
    forest_grid, gb_grid, gp_grid, knn_grid, mars_grid, mlp_grid, sgr_grid, svm_grid, ForestKind,
    SweepBudget,
};
use cpr_bench::{cpr_builder_grid, family_builder_grid, fmt, print_table, sweep_builders, Scale};
use cpr_core::PerfModelBuilder;

fn main() {
    let scale = Scale::from_args();
    let budget = match scale {
        Scale::Full => SweepBudget::Full,
        Scale::Quick | Scale::Tiny => SweepBudget::Quick,
    };
    let benches = all_benchmarks();
    // Figure 6 panels: MM, BC, FMM, AMG, KRIPKE (quick: MM, FMM).
    let bench_ids: &[usize] = match scale {
        Scale::Full => &[0, 2, 3, 4, 5],
        Scale::Quick => &[0, 3],
        Scale::Tiny => &[0],
    };
    let train_sizes: &[usize] = match scale {
        Scale::Full => &[256, 1024, 4096, 16384, 65536],
        Scale::Quick => &[256, 1024, 4096],
        Scale::Tiny => &[256],
    };
    let cpr_cells: &[usize] = match scale {
        Scale::Full => &[4, 8, 16, 32],
        Scale::Quick => &[4, 8, 16],
        Scale::Tiny => &[4],
    };
    let cpr_ranks: &[usize] = match scale {
        Scale::Full => &[1, 2, 4, 8, 16],
        Scale::Quick => &[2, 4, 8],
        Scale::Tiny => &[2],
    };

    let mut rows = Vec::new();
    for &bi in bench_ids {
        let bench = &benches[bi];
        let space = bench.space();
        let test =
            bench.sample_dataset(scale.cap(bench.paper_test_set_size(), 500), 700 + bi as u64);
        let pool = bench.sample_dataset(*train_sizes.last().unwrap(), 800 + bi as u64);
        for &n in train_sizes {
            let train = pool.random_subset(n, 2);
            // Every model family — CPR's hyper-parameter grid and each
            // baseline's §6.0.4 grid — through the one generic
            // `dyn PerfModelBuilder` sweep.
            let mut builders: Vec<Box<dyn PerfModelBuilder>> =
                cpr_builder_grid(&space, cpr_cells, cpr_ranks, &[1e-5]);
            let mut families: Vec<(&'static str, Vec<cpr_baselines::tune::Factory>)> = vec![
                ("SGR", sgr_grid(budget)),
                ("MARS", mars_grid(budget)),
                ("NN", mlp_grid(budget)),
                ("ET", forest_grid(ForestKind::ExtraTrees, budget)),
                ("GP", gp_grid(budget)),
                ("KNN", knn_grid(budget)),
            ];
            if scale == Scale::Full {
                // Dominated families, shown only under --full.
                families.push(("RF", forest_grid(ForestKind::RandomForest, budget)));
                families.push(("GB", gb_grid(budget)));
                families.push(("SVM", svm_grid(budget)));
            }
            for (name, grid) in families {
                builders.extend(family_builder_grid(name, &space, grid));
            }
            for best in sweep_builders(&builders, &train, &test, None) {
                rows.push(vec![
                    bench.name().into(),
                    best.name,
                    n.to_string(),
                    fmt(best.mlogq),
                ]);
            }
            eprintln!("[fig6] {} n={} done", bench.name(), n);
        }
    }
    print_table(
        "Figure 6: best MLogQ vs training-set size per model family",
        &["bench", "model", "train_size", "mlogq"],
        &rows,
    );
}
