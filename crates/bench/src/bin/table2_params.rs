//! Table 2: benchmark parameter spaces.
//!
//! Prints the parameter inventory of every implemented benchmark —
//! the Rust mirror of the paper's Table 2 plus the kernel ranges of §6.0.2.
//!
//! Run: `cargo run --release -p cpr-bench --bin table2_params`

use cpr_apps::all_benchmarks;
use cpr_grid::ParamSpec;

fn main() {
    println!("# Table 2: benchmark parameter spaces");
    for bench in all_benchmarks() {
        let space = bench.space();
        println!(
            "\n{} ({} parameters, paper test-set size {})",
            bench.name(),
            space.dim(),
            bench.paper_test_set_size()
        );
        for p in space.params() {
            match p {
                ParamSpec::Numerical {
                    name,
                    lo,
                    hi,
                    spacing,
                    integer,
                } => {
                    println!(
                        "  {name:<10} numerical  [{lo}, {hi}]  spacing={spacing:?}  integer={integer}"
                    );
                }
                ParamSpec::Categorical { name, cardinality } => {
                    println!("  {name:<10} categorical  {cardinality} choices");
                }
            }
        }
        // Cross-check: a sampled configuration stays in the space.
        let data = bench.sample_dataset(4, 0);
        let (x, y) = data.iter().next().unwrap();
        println!("  example config: {x:?} -> {y:.6e} s");
    }
}
