//! Figure 1: SVD of three discretized 2-D functions, raw vs log-transformed.
//!
//! The paper evaluates `f₁ = x/y` and a piecewise `f₂` (different behaviour
//! on either side of `x + y ≤ 100`), both with multiplicative noise
//! `(1 + N(0, 0.01))`, and `f₃ = √(x + y)`, on `1 ≤ x, y ≤ 100` grids. It
//! shows that rank-r SVD reconstructions of the **log-transformed** matrices
//! improve MLogQ monotonically with rank, whereas raw-space truncation can
//! get *worse* with more rank — the motivation for training CPR models in
//! log space (§5.2). Non-positive reconstructed entries are clamped to
//! 1e-16 before MLogQ, as in the paper.
//!
//! Run: `cargo run --release -p cpr-bench --bin fig1_svd`

use cpr_apps::standard_normal;
use cpr_bench::fmt;
use cpr_core::Metrics;
use cpr_tensor::linalg::Svd;
use cpr_tensor::Matrix;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn build(f: impl Fn(f64, f64) -> f64, noise: bool, rng: &mut StdRng) -> Matrix {
    Matrix::from_fn(100, 100, |i, j| {
        let (x, y) = ((i + 1) as f64, (j + 1) as f64);
        let v = f(x, y);
        if noise {
            v * (1.0 + 0.01 * standard_normal(rng))
        } else {
            v
        }
    })
}

fn mlogq_of_truncation(truth: &Matrix, recon: &Matrix) -> f64 {
    let pred: Vec<f64> = recon.as_slice().iter().map(|&v| v.max(1e-16)).collect();
    Metrics::compute(&pred, truth.as_slice()).mlogq
}

fn main() {
    let mut rng = StdRng::seed_from_u64(0);
    let funcs: Vec<(&str, Matrix)> = vec![
        ("f1 = x/y (+noise)", build(|x, y| x / y, true, &mut rng)),
        (
            "f2 piecewise along x+y<=100 (+noise)",
            build(
                |x, y| {
                    if x + y <= 100.0 {
                        // Smooth multiplicative regime.
                        1e-3 * x.powf(1.3) * y.powf(0.7)
                    } else {
                        // Different regime past the diagonal.
                        5e-2 * (x + y).sqrt() * (1.0 + 0.002 * x * y / (x + y))
                    }
                },
                true,
                &mut rng,
            ),
        ),
        (
            "f3 = sqrt(x+y)",
            build(|x, y| (x + y).sqrt(), false, &mut rng),
        ),
    ];

    println!("# Figure 1: MLogQ of rank-r SVD reconstruction, raw vs log-transformed");
    println!("{:<40}{:>6}{:>14}{:>14}", "function", "rank", "raw", "log");
    for (name, m) in &funcs {
        let svd_raw = Svd::new(m);
        let mlog = m.map(|v| v.max(1e-300).ln());
        let svd_log = Svd::new(&mlog);
        let mut prev_log_err = f64::INFINITY;
        let mut raw_increased = false;
        let mut prev_raw = f64::INFINITY;
        for r in 1..=10 {
            let raw_err = mlogq_of_truncation(m, &svd_raw.truncated(r));
            let log_recon = svd_log.truncated(r).map(|v| v.exp());
            let log_err = mlogq_of_truncation(m, &log_recon);
            println!("{name:<40}{r:>6}{:>14}{:>14}", fmt(raw_err), fmt(log_err));
            if raw_err > prev_raw * 1.0001 {
                raw_increased = true;
            }
            prev_raw = raw_err;
            // Log-space truncation should never regress meaningfully.
            assert!(
                log_err <= prev_log_err * 1.05 + 1e-9,
                "log-space MLogQ regressed at rank {r} for {name}"
            );
            prev_log_err = log_err;
        }
        println!(
            "  -> log-transform: monotone improvement; raw truncation {}",
            if raw_increased {
                "INCREASED with rank at least once (paper's pathology)"
            } else {
                "stayed monotone here"
            }
        );
        println!(
            "  leading singular values (log-transformed): {}",
            svd_log.s[..6]
                .iter()
                .map(|&s| fmt(s))
                .collect::<Vec<_>>()
                .join(", ")
        );
        println!();
    }
}
