//! Figure 5: CPR prediction accuracy vs. training-set size for several
//! tensor sizes (the fill-density study).
//!
//! The paper's finding (§7.1.2): finer grids need more observations before
//! they pay off, but the density threshold *drops* with tensor order — a
//! 32³ MM tensor wants ≥50% fill, while AMG's order-8 tensor is most
//! accurate at 0.07% fill. For each tensor size the minimum error across CP
//! ranks is reported.
//!
//! Run: `cargo run --release -p cpr-bench --bin fig5_density [--full]`

use cpr_apps::all_benchmarks;
use cpr_bench::{fmt, print_table, tune_cpr, Scale};

fn main() {
    let scale = Scale::from_args();
    let benches = all_benchmarks();
    let bench_ids: &[usize] = match scale {
        Scale::Full => &[0, 1, 2, 3, 4],
        Scale::Quick => &[0, 3],
        Scale::Tiny => &[0],
    };
    let train_sizes: &[usize] = match scale {
        Scale::Full => &[128, 512, 2048, 8192, 32768, 65536],
        Scale::Quick => &[128, 512, 2048, 8192],
        Scale::Tiny => &[128, 512],
    };
    let cell_sizes: &[usize] = match scale {
        Scale::Full => &[4, 8, 16, 32],
        Scale::Quick => &[4, 8, 16],
        Scale::Tiny => &[4],
    };
    let ranks: &[usize] = match scale {
        Scale::Full => &[1, 2, 4, 8, 16],
        Scale::Quick => &[1, 2, 4, 8],
        Scale::Tiny => &[1, 2],
    };

    let mut rows = Vec::new();
    for &bi in bench_ids {
        let bench = &benches[bi];
        let space = bench.space();
        let test =
            bench.sample_dataset(scale.cap(bench.paper_test_set_size(), 600), 500 + bi as u64);
        let pool = bench.sample_dataset(*train_sizes.last().unwrap(), 600 + bi as u64);
        for &n in train_sizes {
            let train = pool.random_subset(n, 1);
            for &cells in cell_sizes {
                let (model, err) = tune_cpr(&space, &train, &test, &[cells], ranks, &[1e-5]);
                rows.push(vec![
                    bench.name().to_string(),
                    format!("{cells} cells/dim"),
                    n.to_string(),
                    fmt(err),
                    fmt(model.density()),
                ]);
            }
        }
        eprintln!("[fig5] {} done", bench.name());
    }
    print_table(
        "Figure 5: CPR MLogQ vs training-set size per tensor size",
        &["bench", "tensor", "train_size", "mlogq", "density"],
        &rows,
    );
}
