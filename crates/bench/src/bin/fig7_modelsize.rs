//! Figure 7: prediction error vs. model size (8192 training samples).
//!
//! Model complexity is varied by sweeping each family's hyper-parameter
//! grid; every fitted configuration contributes one `(size, error)` point,
//! and models over the paper's 10 MB cap are dropped. Expected shape
//! (§7.1.3): CPR dominates the accuracy-per-byte frontier — matching
//! KNN/GP on the kernels with orders-of-magnitude less memory, and winning
//! outright on FMM/AMG/KRIPKE at ~50x less memory than the best NN.
//!
//! Run: `cargo run --release -p cpr-bench --bin fig7_modelsize [--full]`

use cpr_apps::all_benchmarks;
use cpr_baselines::{
    forest_grid, gp_grid, knn_grid, mars_grid, mlp_grid, sgr_grid, ForestKind, SweepBudget,
};
use cpr_bench::{fit_cpr, fmt, mlogq_log_space, prepare_xy, print_table, CprPoint, Scale};
use rayon::prelude::*;

const SIZE_CAP: usize = 10 * 1024 * 1024; // the paper's 10 MB cutoff

fn main() {
    let scale = Scale::from_args();
    let budget = match scale {
        Scale::Full => SweepBudget::Full,
        Scale::Quick | Scale::Tiny => SweepBudget::Quick,
    };
    let benches = all_benchmarks();
    let bench_ids: &[usize] = match scale {
        Scale::Full => &[0, 2, 3, 4, 5],
        Scale::Quick => &[0, 3],
        Scale::Tiny => &[0],
    };
    let train_n = scale.cap(8192, 2048);
    let cpr_cells: &[usize] = match scale {
        Scale::Full => &[4, 8, 16, 32, 64],
        Scale::Quick => &[4, 8, 16],
        Scale::Tiny => &[4, 8],
    };
    let cpr_ranks: &[usize] = match scale {
        Scale::Full => &[1, 2, 4, 8, 16, 32],
        Scale::Quick => &[1, 2, 4, 8],
        Scale::Tiny => &[1, 2],
    };

    let mut rows = Vec::new();
    for &bi in bench_ids {
        let bench = &benches[bi];
        let space = bench.space();
        let train = bench.sample_dataset(train_n, 900 + bi as u64);
        let test = bench.sample_dataset(
            scale.cap(bench.paper_test_set_size(), 500),
            1000 + bi as u64,
        );

        // CPR: every (cells, rank) point.
        let points: Vec<CprPoint> = cpr_cells
            .iter()
            .flat_map(|&c| {
                cpr_ranks.iter().map(move |&r| CprPoint {
                    cells: c,
                    rank: r,
                    lambda: 1e-5,
                })
            })
            .collect();
        let cpr_rows: Vec<Vec<String>> = points
            .par_iter()
            .map(|&p| {
                let (model, err) = fit_cpr(&space, &train, &test, p);
                vec![
                    bench.name().into(),
                    "CPR".into(),
                    model.size_bytes().to_string(),
                    fmt(err),
                ]
            })
            .collect();
        rows.extend(cpr_rows);

        // Baselines: every configuration in each family's grid.
        let (x_train, y_train) = prepare_xy(&space, &train);
        let (x_test, y_test) = prepare_xy(&space, &test);
        let families: Vec<(&'static str, Vec<cpr_baselines::tune::Factory>)> = vec![
            ("SGR", sgr_grid(budget)),
            ("MARS", mars_grid(budget)),
            ("NN", mlp_grid(budget)),
            ("ET", forest_grid(ForestKind::ExtraTrees, budget)),
            ("GP", gp_grid(budget)),
            ("KNN", knn_grid(budget)),
        ];
        for (name, grid) in families {
            let pts: Vec<Vec<String>> = grid
                .par_iter()
                .filter_map(|factory| {
                    let mut model = factory();
                    model.fit(&x_train, &y_train);
                    if model.size_bytes() > SIZE_CAP {
                        return None; // the paper's 10 MB drop rule
                    }
                    let pred = model.predict_batch(&x_test);
                    let err = mlogq_log_space(&pred, &y_test);
                    err.is_finite().then(|| {
                        vec![
                            bench.name().into(),
                            name.into(),
                            model.size_bytes().to_string(),
                            fmt(err),
                        ]
                    })
                })
                .collect();
            rows.extend(pts);
        }
        eprintln!("[fig7] {} done", bench.name());
    }
    print_table(
        "Figure 7: MLogQ vs model size (every swept configuration; 10 MB cap)",
        &["bench", "model", "size_bytes", "mlogq"],
        &rows,
    );
}
