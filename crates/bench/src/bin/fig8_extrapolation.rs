//! Figure 8: extrapolation error beyond the training range.
//!
//! Four scenarios, following §7.2:
//! * **MM / m**: train on `32 ≤ m < N` (N = 2⁸..2¹¹), test on
//!   `2048 ≤ m ≤ 4096` (n, k unrestricted in both).
//! * **MM / mnk**: train on `32 ≤ m,n,k < N`, test on `2048 ≤ m,n,k ≤ 4096`.
//! * **BC / nodes**: train on `1 ≤ nodes ≤ N` (N = 8..64), test on 128 nodes.
//! * **BC / msg**: train on `2¹⁶ ≤ msg < N` (N = 2¹⁹..2²⁵), test on
//!   `2²⁵ ≤ msg ≤ 2²⁶`.
//!
//! Each point: 4096 random training samples, best model per family.
//! Expected shape (§7.2): CPR (the §5.3 positive-factorization + spline
//! technique) extrapolates numerical parameters far better than all
//! supervised baselines, which overfit the training range; on the integer
//! node-count scenario CPR degrades to roughly KNN's ~25% error.
//!
//! Run: `cargo run --release -p cpr-bench --bin fig8_extrapolation [--full]`

use cpr_apps::{standard_normal, Benchmark, Broadcast, MatMul};
use cpr_baselines::{forest_grid, knn_grid, mars_grid, mlp_grid, ForestKind, SweepBudget};
use cpr_bench::{fmt, print_table, tune_family, Scale};
use cpr_core::{CprExtrapolatorBuilder, Dataset};
use cpr_grid::{ParamSpace, ParamSpec};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Sample `n` configurations with per-parameter log-uniform ranges and
/// measure them on the benchmark.
fn sample_ranged(bench: &dyn Benchmark, ranges: &[(f64, f64)], n: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut data = Dataset::new();
    for _ in 0..n {
        let x: Vec<f64> = ranges
            .iter()
            .map(|&(lo, hi)| (lo * (hi / lo).powf(rng.gen::<f64>())).round())
            .collect();
        let sigma = bench.noise_sigma();
        let y = bench.base_time(&x) * (sigma * standard_normal(&mut rng)).exp();
        data.push(x, y);
    }
    data
}

/// Build the CPR extrapolator's training space from explicit ranges.
fn space_from_ranges(names: &[&str], ranges: &[(f64, f64)]) -> ParamSpace {
    ParamSpace::new(
        names
            .iter()
            .zip(ranges)
            .map(|(name, &(lo, hi))| ParamSpec::log_int(*name, lo, hi))
            .collect(),
    )
}

struct Scenario {
    kernel: &'static str,
    scenario: &'static str,
    names: Vec<&'static str>,
    /// Training ranges per sweep value `N` (index-aligned with `ns`).
    train_ranges: Vec<Vec<(f64, f64)>>,
    ns: Vec<u64>,
    test_ranges: Vec<(f64, f64)>,
}

fn scenarios(scale: Scale) -> Vec<Scenario> {
    let mm_ns: Vec<u64> = match scale {
        Scale::Full => vec![256, 512, 1024, 2048],
        Scale::Quick => vec![512, 2048],
        Scale::Tiny => vec![512],
    };
    let bc_node_ns: Vec<u64> = match scale {
        Scale::Full => vec![8, 16, 32, 64],
        Scale::Quick => vec![16, 64],
        Scale::Tiny => vec![16],
    };
    let bc_msg_ns: Vec<u64> = match scale {
        Scale::Full => vec![1 << 19, 1 << 21, 1 << 23, 1 << 25],
        Scale::Quick => vec![1 << 21, 1 << 25],
        Scale::Tiny => vec![1 << 21],
    };
    vec![
        Scenario {
            kernel: "MM",
            scenario: "extrapolate m",
            names: vec!["m", "n", "k"],
            train_ranges: mm_ns
                .iter()
                .map(|&n| vec![(32.0, n as f64), (32.0, 4096.0), (32.0, 4096.0)])
                .collect(),
            ns: mm_ns.clone(),
            test_ranges: vec![(2048.0, 4096.0), (32.0, 4096.0), (32.0, 4096.0)],
        },
        Scenario {
            kernel: "MM",
            scenario: "extrapolate m,n,k",
            names: vec!["m", "n", "k"],
            train_ranges: mm_ns.iter().map(|&n| vec![(32.0, n as f64); 3]).collect(),
            ns: mm_ns,
            test_ranges: vec![(2048.0, 4096.0); 3],
        },
        Scenario {
            kernel: "BC",
            scenario: "extrapolate nodes",
            names: vec!["nodes", "ppn", "msg"],
            train_ranges: bc_node_ns
                .iter()
                .map(|&n| vec![(1.0, n as f64), (1.0, 64.0), (65536.0, 67_108_864.0)])
                .collect(),
            ns: bc_node_ns,
            test_ranges: vec![(128.0, 128.0001), (1.0, 64.0), (65536.0, 67_108_864.0)],
        },
        Scenario {
            kernel: "BC",
            scenario: "extrapolate msg",
            names: vec!["nodes", "ppn", "msg"],
            train_ranges: bc_msg_ns
                .iter()
                .map(|&n| vec![(1.0, 128.0), (1.0, 64.0), (65536.0, n as f64)])
                .collect(),
            ns: bc_msg_ns,
            test_ranges: vec![(1.0, 128.0), (1.0, 64.0), (33_554_432.0, 67_108_864.0)],
        },
    ]
}

fn main() {
    let scale = Scale::from_args();
    let budget = match scale {
        Scale::Full => SweepBudget::Full,
        Scale::Quick | Scale::Tiny => SweepBudget::Quick,
    };
    let train_n = scale.cap(4096, 1500);
    let test_n = scale.cap(1000, 400);
    let mm = MatMul::default();
    let bc = Broadcast::default();

    let mut rows = Vec::new();
    for sc in scenarios(scale) {
        let bench: &dyn Benchmark = if sc.kernel == "MM" { &mm } else { &bc };
        let test = sample_ranged(bench, &sc.test_ranges, test_n, 42);
        for (ranges, &n_cut) in sc.train_ranges.iter().zip(&sc.ns) {
            let train = sample_ranged(bench, ranges, train_n, 43 + n_cut);
            let space = space_from_ranges(&sc.names, ranges);

            // CPR §5.3 extrapolator: tune (cells, rank) minimally.
            let mut best_cpr = f64::INFINITY;
            for &cells in &[8usize, 16] {
                for &rank in &[2usize, 4] {
                    if let Ok(ex) = CprExtrapolatorBuilder::new(space.clone())
                        .cells_per_dim(cells)
                        .rank(rank)
                        .regularization(1e-6)
                        .fit(&train)
                    {
                        let err = ex.evaluate(&test).mlogq;
                        if err.is_finite() {
                            best_cpr = best_cpr.min(err);
                        }
                    }
                }
            }
            rows.push(vec![
                sc.kernel.into(),
                sc.scenario.into(),
                n_cut.to_string(),
                "CPR".into(),
                fmt(best_cpr),
            ]);

            // Baselines trained on the restricted range, tested beyond it.
            let families: Vec<(&'static str, Vec<cpr_baselines::tune::Factory>)> = vec![
                ("KNN", knn_grid(budget)),
                ("ET", forest_grid(ForestKind::ExtraTrees, budget)),
                ("MARS", mars_grid(budget)),
                ("NN", mlp_grid(budget)),
            ];
            for (name, grid) in families {
                if let Some(res) = tune_family(name, &grid, &space, &train, &test, None) {
                    rows.push(vec![
                        sc.kernel.into(),
                        sc.scenario.into(),
                        n_cut.to_string(),
                        name.into(),
                        fmt(res.mlogq),
                    ]);
                }
            }
            eprintln!("[fig8] {} {} N={} done", sc.kernel, sc.scenario, n_cut);
        }
    }
    print_table(
        "Figure 8: extrapolation MLogQ vs training cutoff N",
        &["kernel", "scenario", "N", "model", "mlogq"],
        &rows,
    );
}
