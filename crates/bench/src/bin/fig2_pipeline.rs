//! Figure 2: the CPR training/inference pipeline, narrated.
//!
//! The paper's Figure 2 is a schematic of training (intra-cell sample means
//! become tensor entries, completed by a rank-R CP decomposition) and
//! inference (interpolation of completed entries around a test
//! configuration). This binary walks one concrete 2-D case through every
//! stage and prints what the schematic draws.
//!
//! Run: `cargo run --release -p cpr-bench --bin fig2_pipeline`

use cpr_apps::{Benchmark, MatMul};
use cpr_core::{CprBuilder, Dataset};

fn main() {
    // A 2-D slice of GEMM (k fixed) so the tensor is printable.
    let mm = MatMul::default();
    let full = mm.sample_dataset(3000, 5);
    let mut data = Dataset::new();
    for (x, y) in full.iter() {
        data.push(
            vec![x[0], x[1], 512.0],
            y * 0.0 + mm.base_time(&[x[0], x[1], 512.0]),
        );
    }

    println!("# Figure 2 walkthrough: CPR training and inference\n");
    println!(
        "[1] TRAINING SET: {} configurations (m, n) with k = 512",
        data.len()
    );

    let model = CprBuilder::new(mm.space())
        .cells(vec![6, 6, 1])
        .rank(3)
        .regularization(1e-7)
        .fit(&data)
        .unwrap();
    let grid = model.grid();
    println!(
        "\n[2] DISCRETIZATION: 6x6 log-spaced grid over m, n in [32, 4096]; \
         {} of {} cells observed ({:.0}% dense)",
        model.observed_cells(),
        grid.cell_count(),
        100.0 * model.density()
    );
    println!("    mode-0 midpoints: {:?}", grid.axis(0).midpoints());

    println!("\n[3] COMPLETION: rank-3 CP decomposition via ALS on log cell means");
    println!(
        "    {} sweeps, final objective {:.3e}, model = {} bytes",
        model.trace().sweeps(),
        model.trace().final_objective(),
        model.size_bytes()
    );
    println!("\n    completed tensor estimates t̂ (seconds), k = 512 slice:");
    print!("           ");
    for j in 0..6 {
        print!("  n={:6.0}", grid.axis(1).midpoints()[j]);
    }
    println!();
    for i in 0..6 {
        print!("    m={:6.0}", grid.axis(0).midpoints()[i]);
        for j in 0..6 {
            print!("  {:8.2e}", model.tensor_estimate(&[i, j, 0]));
        }
        println!();
    }

    println!("\n[4] INFERENCE: interpolate completed entries around test configs");
    for (m, n) in [(100.0, 100.0), (700.0, 1500.0), (4000.0, 50.0)] {
        let x = [m, n, 512.0];
        let idx = grid.cell_index(&x);
        let pred = model.predict(&x);
        let truth = mm.base_time(&x);
        println!(
            "    (m={m:>6}, n={n:>6}) -> cell {idx:?}, prediction {pred:.3e} s, \
             truth {truth:.3e} s, |logQ| = {:.4}",
            (pred / truth).ln().abs()
        );
    }
    let metrics = model.evaluate(&data);
    println!(
        "\n    training-set MLogQ = {:.4} (mean factor {:.3}x)",
        metrics.mlogq,
        metrics.mean_factor()
    );
}
