//! Figure 4: prediction accuracy vs. model refinement.
//!
//! CPR refines by raising the CP rank at a fixed grid (series `C_k` = cell
//! count per dimension); SGR refines its sparse grid adaptively (series
//! `L_k` = initial level, x-axis = refinement rounds). The paper's finding
//! (§7.1.1): CP rank is the most effective refinement knob — a rank-4..8
//! CPR model already beats SGR with up to 16 grid refinements.
//!
//! Run: `cargo run --release -p cpr-bench --bin fig4_refinement [--full]`

use cpr_apps::all_benchmarks;
use cpr_baselines::{sgr_grid_refinement, SweepBudget};
use cpr_bench::{fit_cpr, fmt, print_table, tune_family, CprPoint, Scale};

fn main() {
    let scale = Scale::from_args();
    let budget = match scale {
        Scale::Full => SweepBudget::Full,
        Scale::Quick | Scale::Tiny => SweepBudget::Quick,
    };
    let benches = all_benchmarks();
    // Paper train sizes for Figure 4: 2^16, 2^15, 2^15, 2^14, 2^14.
    let plan: [(usize, usize); 5] = [(0, 65536), (1, 32768), (2, 32768), (3, 16384), (4, 16384)];
    let plan = &plan[..match scale {
        Scale::Tiny => 1,
        _ => plan.len(),
    }];
    let cell_series: &[usize] = match scale {
        Scale::Full => &[8, 16, 32, 64],
        Scale::Quick => &[8, 16],
        Scale::Tiny => &[8],
    };
    let ranks: &[usize] = match scale {
        Scale::Full => &[1, 2, 4, 8, 16, 32, 64],
        Scale::Quick => &[1, 2, 4, 8, 16],
        Scale::Tiny => &[1, 2],
    };
    let levels: &[usize] = match scale {
        Scale::Full => &[3, 4, 5],
        Scale::Quick => &[3, 4],
        Scale::Tiny => &[3],
    };
    let refinement_rounds: &[usize] = match scale {
        Scale::Full => &[0, 1, 2, 4, 8, 16],
        Scale::Quick => &[0, 2, 4],
        Scale::Tiny => &[0, 1],
    };

    let mut rows = Vec::new();
    for &(bi, full_train) in plan {
        let bench = &benches[bi];
        let space = bench.space();
        let train = bench.sample_dataset(scale.cap(full_train, 3000), 300 + bi as u64);
        let test =
            bench.sample_dataset(scale.cap(bench.paper_test_set_size(), 600), 400 + bi as u64);
        eprintln!(
            "[fig4] {} train={} test={}",
            bench.name(),
            train.len(),
            test.len()
        );

        for &cells in cell_series {
            for &rank in ranks {
                let (model, err) = fit_cpr(
                    &space,
                    &train,
                    &test,
                    CprPoint {
                        cells,
                        rank,
                        lambda: 1e-5,
                    },
                );
                rows.push(vec![
                    bench.name().to_string(),
                    format!("CPR C{cells}"),
                    rank.to_string(),
                    fmt(err),
                    model.size_bytes().to_string(),
                ]);
            }
        }
        for &level in levels {
            for &rounds in refinement_rounds {
                let grid = sgr_grid_refinement(level, rounds, 16, budget);
                if let Some(res) = tune_family("SGR", &grid, &space, &train, &test, None) {
                    rows.push(vec![
                        bench.name().to_string(),
                        format!("SGR L{level}"),
                        rounds.to_string(),
                        fmt(res.mlogq),
                        res.size_bytes.to_string(),
                    ]);
                }
            }
        }
    }
    print_table(
        "Figure 4: MLogQ vs refinement (CPR: CP rank; SGR: refinement rounds)",
        &["bench", "series", "x (rank|rounds)", "mlogq", "size_bytes"],
        &rows,
    );
}
