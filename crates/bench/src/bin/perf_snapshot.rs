//! `perf_snapshot` — machine-readable wall-clock timings for the hot paths.
//!
//! Times the stages the completion optimizers and the serving layer spend
//! their cycles in at two sizes, and writes the results as JSON so the
//! performance trajectory of the repo is recorded per PR (`BENCH_pr2.json`,
//! `BENCH_pr3.json`, …). CI runs the `--tiny` configuration and gates on
//! `perf_guard` against the checked-in `crates/bench/baselines/tiny.json`;
//! `--small` (the default) is the configuration quoted in CHANGES.md.
//!
//! Fit side: every optimizer (ALS/AMN/Tucker/CCD) is timed through its
//! **streamed** sweep and, for the same problem, through its retained
//! naive `*_reference` sweep — the same-run A/B control that separates
//! machine drift from real kernel wins (the reference paths are the PR 3
//! algorithms). Medium stages exercise the larger-grid / rank-8/16
//! configurations that hit the monomorphized kernels.
//!
//! Output path: `CPR_BENCH_OUT` env var when set, else `BENCH_pr10.json`
//! in the current directory.
//!
//! PR 6 additions: the fleet-serving stages. `registry_lookup` times the
//! sharded id → plan lookup, `registry_serve_batch` the grouped batch
//! front end over a mixed stream, and `registry_mixed_traffic` a
//! query-at-a-time mixed stream against a half-resident LRU tier —
//! reporting dense hit-rate, p50/p99 latency, and throughput as extra
//! JSON fields.
//!
//! PR 7 addition: `registry_churn` — query-at-a-time serving while the
//! background refit pipeline continuously refits and hot-swaps the same
//! fleet (2 workers, gated installs). Reported extras: contended and
//! uncontended p50/p99 per-query latency, swap count, and the gated swap
//! success rate. The claim is that refit-and-swap churn costs the serve
//! path almost nothing (p99 within 2x of uncontended). The committed
//! baselines move to `BENCH_pr6.json`; pre-existing stages are expected
//! at **parity** (~1.0x) — the robustness layer costs the fast paths
//! nothing.
//!
//! PR 8 additions: the durability stages. `store_snapshot` commits the
//! whole fleet into a checksummed snapshot store (serialize → frame →
//! read-back verify → atomic manifest commit), `store_restore` recovers
//! it into a fresh registry (manifest scan → frame verify →
//! parse-before-insert). Extra field: `payload_bytes`, the durable model
//! volume. Prior stages are again expected at parity — persistence is
//! off the serve and fit paths.
//!
//! PR 9 additions: the network front-end stages. `server_loopback`
//! drives single-query predicts through a live `CprServer` over one
//! keep-alive loopback connection — the full wire cost (parse →
//! admission → deadline-chunked serve → format) on top of the registry
//! serve path the `registry_*` stages time directly. `server_under_shed`
//! floods the same server with deadline-zero requests: the 503 shed path
//! must be far cheaper than serving (shed early, shed cheap), and a
//! well-formed request afterwards still answers bitwise-correct. Extras:
//! per-request `p50_us`/`p99_us` (and `shed_p99_us`). Prior stages are
//! expected at parity — the front end is a new layer, not a tax on the
//! layers below.
//!
//! PR 10 addition: `obs_overhead` — the same mixed-traffic workload as
//! `registry_mixed_traffic`, run once uninstrumented (private metrics
//! hub, latency timing off) and once with full instrumentation (shared
//! `cpr_obs` hub, `enable_timing()`), every prediction asserted bitwise
//! equal across the two arms. Extras: `uninstrumented_wall_ms` and
//! `overhead_pct` — the observability tax on the hottest serve path,
//! budgeted at <= 5% (DESIGN.md, "Observability").
//!
//! Methodology: each stage runs once to warm caches, then `REPS` times; the
//! minimum wall-clock is reported (least-noise estimator for a quiet
//! machine). `baseline_wall_ms` is the same stage as measured by the PR 3
//! snapshot (committed `BENCH_pr3.json`, same machine class), kept so the
//! JSON is self-describing about the speedup this PR claims.
//! `predict_batch_naive` re-times the pre-plan serving path that is still
//! in-tree, as the query-side control.

use cpr_bench::fixtures::{fleet, fleet_queries, power_law};
use cpr_completion::{
    als, als_reference, amn, amn_reference, ccd, ccd_reference, init_positive, tucker_als,
    tucker_als_reference, AlsConfig, AmnConfig, CcdConfig, StopRule, TuckerConfig,
};
use cpr_core::{random_search, CprBuilder, CprModel, Dataset, StreamingCpr};
use cpr_grid::{ParamSpace, ParamSpec};
use cpr_obs::MetricsRegistry;
use cpr_registry::{ModelId, ModelRegistry, PipelineConfig, RefitPipeline, LATENCY_SAMPLE};
use cpr_server::chaos::ClientConn;
use cpr_server::{AdmissionConfig, CprServer, ServerConfig};
use cpr_store::{FleetStore, MemFs};
use cpr_tensor::{CpDecomp, SparseTensor, TuckerDecomp};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Timing repetitions per stage (after one warmup).
const REPS: usize = 3;

struct Stage {
    name: &'static str,
    wall_ms: f64,
    /// Prior-PR reference on the same machine class, if measured.
    baseline_wall_ms: Option<f64>,
    nnz: usize,
    rank: usize,
    dims: Vec<usize>,
    sweeps: usize,
    /// Stage-specific scalars appended verbatim to the JSON line
    /// (`perf_guard` ignores keys it does not know).
    extra: Vec<(&'static str, f64)>,
}

/// Observations sampled from a random positive low-rank truth — without
/// densifying, so the generator scales to millions of cells.
fn sampled_obs(dims: &[usize], rank: usize, frac: f64, seed: u64) -> SparseTensor {
    let truth = CpDecomp::random(dims, rank, 0.5, 1.5, seed);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9e3779b97f4a7c15);
    let total: usize = dims.iter().product();
    let want = ((total as f64 * frac) as usize).max(64);
    let mut obs = SparseTensor::new(dims);
    let mut idx = vec![0usize; dims.len()];
    for _ in 0..want {
        for (j, &dj) in dims.iter().enumerate() {
            idx[j] = rng.gen_range(0..dj);
        }
        obs.push(&idx, truth.eval(&idx) + 0.1);
    }
    obs
}

/// Min-of-REPS wall clock in milliseconds (one warmup run first).
fn time_ms(mut f: impl FnMut()) -> f64 {
    f();
    let mut best = f64::INFINITY;
    for _ in 0..REPS {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64() * 1e3);
    }
    best
}

/// ALS stage pair: streamed sweep + the retained reference as the
/// same-run A/B control (identical problem, config, and init).
fn als_stages(
    name: &'static str,
    ref_name: &'static str,
    dims: &[usize],
    rank: usize,
    frac: f64,
    sweeps: usize,
) -> Vec<Stage> {
    let obs = sampled_obs(dims, rank, frac, 42);
    let cfg = AlsConfig {
        lambda: 1e-6,
        stop: StopRule {
            max_sweeps: sweeps,
            // Negative tolerance: never early-stop, so every rep does the
            // same number of sweeps and timings are comparable across PRs.
            tol: -1.0,
        },
        scale_by_count: true,
    };
    let stage = |name: &'static str, wall_ms: f64| Stage {
        name,
        wall_ms,
        baseline_wall_ms: None,
        nnz: obs.nnz(),
        rank,
        dims: dims.to_vec(),
        sweeps,
        extra: Vec::new(),
    };
    let streamed = time_ms(|| {
        let mut cp = CpDecomp::random(dims, rank, 0.0, 1.0, 7);
        let trace = als(&mut cp, &obs, &cfg);
        assert!(trace.final_objective().is_finite());
    });
    let reference = time_ms(|| {
        let mut cp = CpDecomp::random(dims, rank, 0.0, 1.0, 7);
        let trace = als_reference(&mut cp, &obs, &cfg);
        assert!(trace.final_objective().is_finite());
    });
    vec![stage(name, streamed), stage(ref_name, reference)]
}

/// AMN stage pair (streamed + reference control).
fn amn_stages(
    name: &'static str,
    ref_name: &'static str,
    dims: &[usize],
    rank: usize,
    frac: f64,
    sweeps: usize,
) -> Vec<Stage> {
    let obs = sampled_obs(dims, rank, frac, 43);
    let gm = (obs.values().iter().map(|v| v.ln()).sum::<f64>() / obs.nnz() as f64).exp();
    let cfg = AmnConfig {
        lambda: 1e-6,
        stop: StopRule {
            max_sweeps: sweeps,
            tol: -1.0,
        },
        final_sweeps: sweeps,
        ..Default::default()
    };
    let stage = |name: &'static str, wall_ms: f64| Stage {
        name,
        wall_ms,
        baseline_wall_ms: None,
        nnz: obs.nnz(),
        rank,
        dims: dims.to_vec(),
        sweeps,
        extra: Vec::new(),
    };
    let streamed = time_ms(|| {
        let mut cp = init_positive(dims, rank, gm, 8);
        let trace = amn(&mut cp, &obs, &cfg);
        assert!(trace.final_objective().is_finite());
    });
    let reference = time_ms(|| {
        let mut cp = init_positive(dims, rank, gm, 8);
        let trace = amn_reference(&mut cp, &obs, &cfg);
        assert!(trace.final_objective().is_finite());
    });
    vec![stage(name, streamed), stage(ref_name, reference)]
}

/// Tucker stage pair (streamed + reference control).
fn tucker_stages(
    name: &'static str,
    ref_name: &'static str,
    dims: &[usize],
    rank: usize,
    frac: f64,
    sweeps: usize,
) -> Vec<Stage> {
    let obs = sampled_obs(dims, rank, frac, 44);
    let ranks = vec![rank; dims.len()];
    let cfg = TuckerConfig {
        lambda: 1e-6,
        stop: StopRule {
            max_sweeps: sweeps,
            tol: -1.0,
        },
    };
    let stage = |name: &'static str, wall_ms: f64| Stage {
        name,
        wall_ms,
        baseline_wall_ms: None,
        nnz: obs.nnz(),
        rank,
        dims: dims.to_vec(),
        sweeps,
        extra: Vec::new(),
    };
    let streamed = time_ms(|| {
        let mut t = TuckerDecomp::random(dims, &ranks, 0.1, 1.0, 9);
        let trace = tucker_als(&mut t, &obs, &cfg);
        assert!(trace.final_objective().is_finite());
    });
    let reference = time_ms(|| {
        let mut t = TuckerDecomp::random(dims, &ranks, 0.1, 1.0, 9);
        let trace = tucker_als_reference(&mut t, &obs, &cfg);
        assert!(trace.final_objective().is_finite());
    });
    vec![stage(name, streamed), stage(ref_name, reference)]
}

/// CCD stage pair (streamed + reference control).
fn ccd_stages(
    name: &'static str,
    ref_name: &'static str,
    dims: &[usize],
    rank: usize,
    frac: f64,
    sweeps: usize,
) -> Vec<Stage> {
    let obs = sampled_obs(dims, rank, frac, 45);
    let cfg = CcdConfig {
        lambda: 1e-6,
        stop: StopRule {
            max_sweeps: sweeps,
            tol: -1.0,
        },
        scale_by_count: true,
    };
    let stage = |name: &'static str, wall_ms: f64| Stage {
        name,
        wall_ms,
        baseline_wall_ms: None,
        nnz: obs.nnz(),
        rank,
        dims: dims.to_vec(),
        sweeps,
        extra: Vec::new(),
    };
    let streamed = time_ms(|| {
        let mut cp = CpDecomp::random(dims, rank, 0.1, 1.0, 10);
        let trace = ccd(&mut cp, &obs, &cfg);
        assert!(trace.final_objective().is_finite());
    });
    let reference = time_ms(|| {
        let mut cp = CpDecomp::random(dims, rank, 0.1, 1.0, 10);
        let trace = ccd_reference(&mut cp, &obs, &cfg);
        assert!(trace.final_objective().is_finite());
    });
    vec![stage(name, streamed), stage(ref_name, reference)]
}

/// Separable two-parameter "execution time" dataset for the serving model.
fn separable_dataset(n: usize, seed: u64) -> (ParamSpace, Dataset) {
    let space = ParamSpace::new(vec![
        ParamSpec::log("m", 32.0, 4096.0),
        ParamSpec::log("n", 32.0, 4096.0),
    ]);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut data = Dataset::new();
    for _ in 0..n {
        let m = 32.0 * (4096.0_f64 / 32.0).powf(rng.gen::<f64>());
        let nn = 32.0 * (4096.0_f64 / 32.0).powf(rng.gen::<f64>());
        data.push(vec![m, nn], 1e-3 * m.powf(1.2) * nn.powf(0.8));
    }
    (space, data)
}

/// Tucker-served query stage: a Tucker-ALS fit through the one `CprBuilder`
/// surface, batch-served through the same compiled plan machinery (dense
/// corner-value table at this grid size). Guards the PR 5 claim that the
/// Tucker decomposition is a first-class servable model with the same
/// hot-path properties as CP.
fn tucker_serving_stage(train_n: usize, batch_n: usize, rank: usize) -> Stage {
    let (space, train) = separable_dataset(train_n, 31);
    let model: CprModel = CprBuilder::new(space)
        .cells_per_dim(12)
        .rank(rank)
        .regularization(1e-7)
        .optimizer(cpr_core::Optimizer::TuckerAls)
        .max_sweeps(20)
        .fit(&train)
        .expect("perf_snapshot: Tucker fit failed");
    let mut rng = StdRng::seed_from_u64(32);
    let batch: Vec<Vec<f64>> = (0..batch_n)
        .map(|_| {
            vec![
                32.0 * (4096.0_f64 / 32.0).powf(rng.gen::<f64>()),
                32.0 * (4096.0_f64 / 32.0).powf(rng.gen::<f64>()),
            ]
        })
        .collect();
    let mut out = vec![0.0; batch.len()];
    let wall_ms = time_ms(|| {
        model.plan().predict_into(&batch, &mut out);
        assert!(out[0].is_finite());
    });
    // Equivalence guard: the Tucker plan must serve the naive reference
    // bitwise, or the timing compares different functions.
    for (x, &fast) in batch.iter().take(512).zip(&out) {
        assert_eq!(fast.to_bits(), model.predict_naive(x).to_bits());
    }
    Stage {
        name: "predict_batch_tucker",
        wall_ms,
        baseline_wall_ms: None,
        nnz: batch_n,
        rank,
        dims: vec![12, 12],
        sweeps: 0,
        extra: Vec::new(),
    }
}

/// Fleet-serving stages through `cpr_registry` (PR 6).
///
/// * `registry_lookup` — the sharded id → `Arc<PredictPlan>` hot lookup,
///   over the query stream's id mix.
/// * `registry_serve_batch` — the batch front end (group by model, one
///   plan load per group, `predict_into`, scatter) on the same stream,
///   against an unbounded registry (every dense table resident).
/// * `registry_mixed_traffic` — query-at-a-time serving against a tier
///   budgeted to hold roughly **half** the fleet's dense tables, so the
///   stream mixes dense hits with factor-gather fallbacks the way a
///   memory-pressured deployment would. Extra fields: `hit_rate` (dense
///   share of serves), `p50_us`/`p99_us` (per-query latency), and `qps`.
fn registry_stages(n_models: usize, n_queries: usize) -> Vec<Stage> {
    let models = fleet(n_models, 61);
    let ids: Vec<ModelId> = models
        .iter()
        .map(|f| ModelId::new(f.app.clone(), f.machine.clone(), f.metric.clone()))
        .collect();
    let queries = fleet_queries(n_models, n_queries, 62);
    let batch: Vec<(ModelId, Vec<f64>)> = queries
        .iter()
        .map(|(who, x)| (ids[*who].clone(), x.clone()))
        .collect();
    let dims = vec![n_models, n_queries];

    let registry = ModelRegistry::new();
    for (f, id) in models.iter().zip(&ids) {
        registry.insert(id.clone(), f.model.clone());
    }
    let lookup_ms = time_ms(|| {
        for (id, _) in &batch {
            assert!(registry.plan(id).is_some());
        }
    });
    let serve_ms = time_ms(|| {
        let out = registry.serve_batch(&batch).expect("fleet ids are loaded");
        assert!(out[0].is_finite());
    });

    // Mixed traffic: budget for half the fleet's dense bytes, so the LRU
    // tier actually splits the stream between its two serving paths.
    let dense_total: usize = models
        .iter()
        .map(|f| f.model.plan().dense_cache_bytes())
        .sum();
    let pressured = ModelRegistry::with_budget(dense_total / 2);
    for (f, id) in models.iter().zip(&ids) {
        pressured.insert(id.clone(), f.model.clone());
    }
    let mut lat_us: Vec<f64> = Vec::with_capacity(batch.len());
    let mut wall_s = 0.0;
    let mixed_ms = time_ms(|| {
        lat_us.clear();
        let t0 = Instant::now();
        for (id, x) in &batch {
            let t = Instant::now();
            let y = pressured.predict(id, x).expect("fleet ids are loaded");
            lat_us.push(t.elapsed().as_secs_f64() * 1e6);
            debug_assert!(y.is_finite());
            std::hint::black_box(y);
        }
        wall_s = t0.elapsed().as_secs_f64();
    });
    lat_us.sort_unstable_by(f64::total_cmp);
    let pct = |p: f64| lat_us[((lat_us.len() - 1) as f64 * p) as usize];
    let stats = pressured.stats();

    let stage = |name: &'static str, wall_ms: f64, extra: Vec<(&'static str, f64)>| Stage {
        name,
        wall_ms,
        baseline_wall_ms: None,
        nnz: n_queries,
        rank: 0,
        dims: dims.clone(),
        sweeps: 0,
        extra,
    };
    vec![
        stage("registry_lookup", lookup_ms, Vec::new()),
        stage("registry_serve_batch", serve_ms, Vec::new()),
        stage(
            "registry_mixed_traffic",
            mixed_ms,
            vec![
                ("hit_rate", stats.dense_hit_rate()),
                ("p50_us", pct(0.50)),
                ("p99_us", pct(0.99)),
                ("qps", batch.len() as f64 / wall_s),
            ],
        ),
    ]
}

/// `obs_overhead` (PR 10) — what full instrumentation costs the hottest
/// serve path. The `registry_mixed_traffic` workload (query-at-a-time
/// against a half-resident LRU tier, per-query latency sampling in the
/// loop) runs against two identically loaded fleets: **uninstrumented**
/// (`ModelRegistry::with_budget` — private hub, counters only, latency
/// timing off) and **instrumented** (`ModelRegistry::with_obs` +
/// `enable_timing()` — shared hub, serve latencies sampled 1-in-
/// `LATENCY_SAMPLE` into the `cpr_registry_serve_us` histogram, counters
/// exact on every query). Every prediction is asserted
/// bitwise equal across the arms: instrumentation is a view over the
/// serve path, never a participant in it. `wall_ms` is the instrumented
/// loop; extras carry `uninstrumented_wall_ms` and `overhead_pct`, the
/// number the <= 5% budget in DESIGN.md ("Observability") refers to.
fn obs_overhead_stage(n_models: usize, n_queries: usize) -> Stage {
    let models = fleet(n_models, 61);
    let ids: Vec<ModelId> = models
        .iter()
        .map(|f| ModelId::new(f.app.clone(), f.machine.clone(), f.metric.clone()))
        .collect();
    let queries = fleet_queries(n_models, n_queries, 62);
    let batch: Vec<(ModelId, Vec<f64>)> = queries
        .iter()
        .map(|(who, x)| (ids[*who].clone(), x.clone()))
        .collect();
    let dense_total: usize = models
        .iter()
        .map(|f| f.model.plan().dense_cache_bytes())
        .sum();

    let plain = ModelRegistry::with_budget(dense_total / 2);
    let hub = Arc::new(MetricsRegistry::new());
    let instrumented = ModelRegistry::with_obs(dense_total / 2, Arc::clone(&hub));
    instrumented.enable_timing();
    for (f, id) in models.iter().zip(&ids) {
        plain.insert(id.clone(), f.model.clone());
        instrumented.insert(id.clone(), f.model.clone());
    }

    // Identical loop shape to `registry_mixed_traffic` (latency probe
    // included), so the two arms time the same workload and the delta is
    // exactly the instrumentation.
    let run = |reg: &ModelRegistry, out: &mut [f64]| {
        for (k, (id, x)) in batch.iter().enumerate() {
            let t = Instant::now();
            let y = reg.predict(id, x).expect("fleet ids are loaded");
            std::hint::black_box(t.elapsed());
            out[k] = y;
        }
    };
    let mut plain_out = vec![0.0; batch.len()];
    let mut inst_out = vec![0.0; batch.len()];
    // Interleaved min-of-N (rather than two separate `time_ms` blocks):
    // the arms alternate pass-for-pass so machine noise — frequency
    // shifts, background load — lands on both equally, and the delta of
    // the two minima isolates the instrumentation.
    const PASSES: usize = 5;
    run(&plain, &mut plain_out);
    run(&instrumented, &mut inst_out);
    let (mut plain_ms, mut inst_ms) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..PASSES {
        let t = Instant::now();
        run(&plain, &mut plain_out);
        plain_ms = plain_ms.min(t.elapsed().as_secs_f64() * 1e3);
        let t = Instant::now();
        run(&instrumented, &mut inst_out);
        inst_ms = inst_ms.min(t.elapsed().as_secs_f64() * 1e3);
    }

    // Bitwise-identical serving with timing on or off — the PR 10
    // acceptance bar; without it the overhead compares different
    // functions.
    for (k, (a, b)) in plain_out.iter().zip(&inst_out).enumerate() {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "instrumentation changed query {k}: {a} vs {b}"
        );
    }
    // And the instrumented arm really measured: one serve latency per
    // LATENCY_SAMPLE queries across the warmup + PASSES passes.
    let measured = hub
        .histogram_snapshot("cpr_registry_serve_us")
        .expect("serve histogram registered")
        .count();
    assert_eq!(
        measured,
        (((PASSES + 1) * batch.len()) as u64).div_ceil(LATENCY_SAMPLE)
    );

    Stage {
        name: "obs_overhead",
        wall_ms: inst_ms,
        baseline_wall_ms: None,
        nnz: n_queries,
        rank: 0,
        dims: vec![n_models, n_queries],
        sweeps: 0,
        extra: vec![
            ("uninstrumented_wall_ms", plain_ms),
            ("overhead_pct", (inst_ms / plain_ms - 1.0) * 100.0),
        ],
    }
}

/// Durability stages (PR 8), on a `MemFs` backend so they time the store
/// protocol — serialization, CRC framing, read-back verification,
/// manifest bookkeeping, parse-before-insert — not a disk.
///
/// * `store_snapshot` — `ModelRegistry::snapshot_into`: serialize every
///   fleet model and commit one durable generation (each record written
///   to a temp file, read back, verified, renamed; then the manifest).
/// * `store_restore` — `ModelRegistry::restore` into a fresh registry:
///   scan to the newest valid manifest, verify every referenced record's
///   frame, parse, insert, serve.
fn store_stages(n_models: usize) -> Vec<Stage> {
    let models = fleet(n_models, 61);
    let registry = ModelRegistry::new();
    for f in &models {
        let id = ModelId::new(f.app.clone(), f.machine.clone(), f.metric.clone());
        registry.insert(id, f.model.clone());
    }
    let store = FleetStore::open(Arc::new(MemFs::new())).expect("memfs store");
    let snap_ms = time_ms(|| {
        let gen = registry.snapshot_into(&store).expect("snapshot");
        assert!(gen >= 1);
    });
    let payload_bytes: usize = store
        .snapshots()
        .load()
        .expect("fleet snapshot")
        .models
        .iter()
        .map(|(_, b)| b.len())
        .sum();
    let restore_ms = time_ms(|| {
        let fresh = ModelRegistry::new();
        let report = fresh.restore(&store).expect("restore");
        assert_eq!(report.restored.len(), n_models);
    });
    let stage = |name: &'static str, wall_ms: f64| Stage {
        name,
        wall_ms,
        baseline_wall_ms: None,
        nnz: n_models,
        rank: 0,
        dims: vec![n_models],
        sweeps: 0,
        extra: vec![("payload_bytes", payload_bytes as f64)],
    };
    vec![
        stage("store_snapshot", snap_ms),
        stage("store_restore", restore_ms),
    ]
}

/// The network front-end stages: the wire cost of serving and the cost
/// of refusing to serve.
///
/// * `server_loopback` — single-query predicts through a live
///   [`CprServer`] over one keep-alive loopback connection: HTTP parse,
///   admission, deadline-chunked registry serve, `f64` Display
///   formatting, response write. The per-request latency extras are the
///   number the registry stages' in-process latencies get compared
///   against.
/// * `server_under_shed` — the same server flooded with deadline-zero
///   requests, every one answered a clean 503 with retry-after. Shed
///   must be much cheaper than serve; a well-formed request afterwards
///   is verified bitwise against direct registry serving.
fn server_stages(n_models: usize, n_requests: usize) -> Vec<Stage> {
    let models = fleet(n_models, 33);
    let registry = Arc::new(ModelRegistry::new());
    let ids: Vec<ModelId> = models
        .iter()
        .map(|f| ModelId::new(f.app.clone(), f.machine.clone(), f.metric.clone()))
        .collect();
    for (id, f) in ids.iter().zip(&models) {
        registry.insert(id.clone(), f.model.clone());
    }
    let cfg = ServerConfig {
        admission: AdmissionConfig {
            max_concurrent: 4,
            max_queue: 16,
            queue_timeout: Duration::from_millis(50),
            ..AdmissionConfig::default()
        },
        max_requests_per_conn: u32::MAX,
        ..ServerConfig::default()
    };
    let server = CprServer::bind("127.0.0.1:0", Arc::clone(&registry), cfg).expect("bind");
    let queries = fleet_queries(n_models, n_requests, 17);
    let frames: Vec<(String, String)> = queries
        .iter()
        .map(|(who, x)| {
            let f = &models[*who];
            let path = format!("/predict/{}/{}/{}", f.app, f.machine, f.metric);
            let body = x
                .iter()
                .map(|v| format!("{v}"))
                .collect::<Vec<_>>()
                .join(" ");
            (path, body)
        })
        .collect();
    let pct = |lat_us: &mut Vec<f64>, p: f64| {
        lat_us.sort_unstable_by(f64::total_cmp);
        lat_us[((lat_us.len() - 1) as f64 * p) as usize]
    };

    let mut conn = ClientConn::open(server.local_addr()).expect("loopback conn");
    // Warmup: populate dense caches and the connection state.
    for (path, body) in frames.iter().take(64) {
        let resp = conn
            .request("POST", path, &[], body.as_bytes())
            .expect("warmup");
        assert_eq!(resp.status, 200);
    }
    let mut lat_us = Vec::with_capacity(n_requests);
    let t0 = Instant::now();
    for (path, body) in &frames {
        let t = Instant::now();
        let resp = conn
            .request("POST", path, &[], body.as_bytes())
            .expect("loopback predict");
        lat_us.push(t.elapsed().as_secs_f64() * 1e6);
        assert_eq!(resp.status, 200);
    }
    let loopback_ms = t0.elapsed().as_secs_f64() * 1e3;
    let (loop_p50, loop_p99) = (pct(&mut lat_us, 0.50), pct(&mut lat_us, 0.99));

    // Shed flood: identical frames, deadline zero — every request is
    // refused before any compute happens.
    let deadline_hdr = [(cpr_server::DEADLINE_HEADER, "0".to_string())];
    let mut shed_us = Vec::with_capacity(n_requests);
    let t0 = Instant::now();
    for (path, body) in &frames {
        let t = Instant::now();
        let resp = conn
            .request("POST", path, &deadline_hdr, body.as_bytes())
            .expect("shed flood");
        shed_us.push(t.elapsed().as_secs_f64() * 1e6);
        assert_eq!(resp.status, 503);
    }
    let shed_ms = t0.elapsed().as_secs_f64() * 1e3;
    let (shed_p50, shed_p99) = (pct(&mut shed_us, 0.50), pct(&mut shed_us, 0.99));

    // Never-stop-serving: after the flood, a well-formed request answers
    // bitwise what the registry answers.
    let (who, x) = &queries[0];
    let (path, body) = &frames[0];
    let resp = conn
        .request("POST", path, &[], body.as_bytes())
        .expect("post-flood predict");
    assert_eq!(resp.status, 200);
    assert_eq!(
        resp.predictions()[0].to_bits(),
        registry
            .predict(&ids[*who], x)
            .expect("direct serve")
            .to_bits(),
        "server drifted from the registry after the shed flood"
    );
    let stats = server.stats();
    assert!(stats.identity_holds(), "{stats:?}");
    drop(conn);
    let report = server.drain();
    assert!(report.final_stats.identity_holds());

    let stage = |name: &'static str, wall_ms: f64, extra: Vec<(&'static str, f64)>| Stage {
        name,
        wall_ms,
        baseline_wall_ms: None,
        nnz: n_requests,
        rank: 0,
        dims: vec![n_models, n_requests],
        sweeps: 0,
        extra,
    };
    vec![
        stage(
            "server_loopback",
            loopback_ms,
            vec![
                ("p50_us", loop_p50),
                ("p99_us", loop_p99),
                ("rps", n_requests as f64 / (loopback_ms / 1e3)),
            ],
        ),
        stage(
            "server_under_shed",
            shed_ms,
            vec![
                ("p50_us", shed_p50),
                ("shed_p99_us", shed_p99),
                ("rps", n_requests as f64 / (shed_ms / 1e3)),
            ],
        ),
    ]
}

/// `registry_churn` — per-query serving while the background refit
/// pipeline continuously refits and hot-swaps the same fleet.
///
/// Protocol: a fleet of streaming-fitted models is tracked by a
/// 2-worker [`RefitPipeline`]; the query stream is served once
/// **uncontended** (pipeline idle) and once **contended** (telemetry
/// batches submitted throughout the serve loop, every install gated).
/// `wall_ms` is the contended serve loop (submits included). Extras:
/// contended `p50_us`/`p99_us` and `uncontended_p50_us`/`uncontended_p99_us`
/// per-query latency, `swaps` installed, and `swap_rate` (gated swaps per
/// submitted batch). The robustness claim quoted in CHANGES.md: contended
/// p99 stays within 2x of uncontended.
fn churn_stage(n_models: usize, n_queries: usize, rounds: usize) -> Stage {
    let registry = Arc::new(ModelRegistry::new());
    let cfg = PipelineConfig {
        workers: 2,
        queue_capacity: 64,
        ..PipelineConfig::default()
    };
    let pipeline = RefitPipeline::new(registry.clone(), cfg);
    let ids: Vec<ModelId> = (0..n_models)
        .map(|i| ModelId::new(format!("churn{i}"), "m", "time"))
        .collect();
    for (i, id) in ids.iter().enumerate() {
        let (space, train) = power_law(120, 91 + i as u64);
        let builder = CprBuilder::new(space)
            .cells_per_dim(8)
            .rank(2)
            .regularization(1e-7)
            .seed(i as u64);
        let trainer = StreamingCpr::fit(&builder, &train).expect("churn fixture fit");
        pipeline.track(id.clone(), trainer);
    }
    let mut rng = StdRng::seed_from_u64(92);
    let queries: Vec<(usize, Vec<f64>)> = (0..n_queries)
        .map(|_| {
            let who = rng.gen_range(0..n_models);
            let x = vec![
                32.0 * 64.0_f64.powf(rng.gen::<f64>()),
                32.0 * 64.0_f64.powf(rng.gen::<f64>()),
            ];
            (who, x)
        })
        .collect();
    let serve = |lat_us: &mut Vec<f64>| {
        lat_us.clear();
        for (who, x) in &queries {
            let t = Instant::now();
            let y = registry.predict(&ids[*who], x).expect("fleet is tracked");
            lat_us.push(t.elapsed().as_secs_f64() * 1e6);
            std::hint::black_box(y);
        }
    };
    let pct = |lat_us: &mut Vec<f64>, p: f64| {
        lat_us.sort_unstable_by(f64::total_cmp);
        lat_us[((lat_us.len() - 1) as f64 * p) as usize]
    };

    // Uncontended control: same stream, pipeline idle. One warmup pass.
    let mut quiet_us = Vec::with_capacity(n_queries);
    serve(&mut quiet_us);
    serve(&mut quiet_us);
    let quiet_p50 = pct(&mut quiet_us, 0.50);
    let quiet_p99 = pct(&mut quiet_us, 0.99);

    // Contended: interleave telemetry submissions into the serve loop so
    // refits and swaps churn underneath the reads.
    let total_batches = rounds * n_models;
    let submit_every = (n_queries / total_batches).max(1);
    let mut lat_us = Vec::with_capacity(n_queries);
    let mut submitted = 0usize;
    let t0 = Instant::now();
    for (k, (who, x)) in queries.iter().enumerate() {
        if k % submit_every == 0 && submitted < total_batches {
            let (_, batch) = power_law(120, 1000 + submitted as u64);
            let _ = pipeline.submit(&ids[submitted % n_models], &batch);
            submitted += 1;
        }
        let t = Instant::now();
        let y = registry.predict(&ids[*who], x).expect("fleet is tracked");
        lat_us.push(t.elapsed().as_secs_f64() * 1e6);
        std::hint::black_box(y);
    }
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    pipeline.wait_idle();
    let stats = pipeline.stats();

    Stage {
        name: "registry_churn",
        wall_ms,
        baseline_wall_ms: None,
        nnz: n_queries,
        rank: 2,
        dims: vec![n_models, n_queries],
        sweeps: 0,
        extra: vec![
            ("p50_us", pct(&mut lat_us, 0.50)),
            ("p99_us", pct(&mut lat_us, 0.99)),
            ("uncontended_p50_us", quiet_p50),
            ("uncontended_p99_us", quiet_p99),
            ("swaps", stats.swapped as f64),
            (
                "swap_rate",
                stats.swapped as f64 / stats.submitted.max(1) as f64,
            ),
        ],
    }
}

/// The serving stages: plan bake, batched prediction through the compiled
/// plan (also re-timed through the in-tree naive reference path as a
/// same-run A/B control), dataset evaluation, and surrogate search
/// throughput.
fn serving_stages(train_n: usize, batch_n: usize, search_n: usize, rank: usize) -> Vec<Stage> {
    let (space, train) = separable_dataset(train_n, 21);
    let model: CprModel = CprBuilder::new(space)
        .cells_per_dim(12)
        .rank(rank)
        .regularization(1e-7)
        .fit(&train)
        .expect("perf_snapshot: CPR fit failed");
    let mut rng = StdRng::seed_from_u64(22);
    let batch: Vec<Vec<f64>> = (0..batch_n)
        .map(|_| {
            vec![
                32.0 * (4096.0_f64 / 32.0).powf(rng.gen::<f64>()),
                32.0 * (4096.0_f64 / 32.0).powf(rng.gen::<f64>()),
            ]
        })
        .collect();
    let (_, eval_data) = separable_dataset(batch_n, 23);

    let bake_ms = time_ms(|| {
        let plan = model.bake_plan();
        assert_eq!(plan.rank(), rank);
    });
    let mut out = vec![0.0; batch.len()];
    let plan_ms = time_ms(|| {
        model.plan().predict_into(&batch, &mut out);
        assert!(out[0].is_finite());
    });
    let naive_ms = time_ms(|| {
        let preds = model.predict_batch_naive(&batch);
        assert_eq!(preds.len(), batch.len());
    });
    // Equivalence guard: the two timed paths must agree bitwise, otherwise
    // the speedup below compares different functions.
    for (x, &fast) in batch.iter().zip(&out) {
        assert_eq!(fast.to_bits(), model.predict_naive(x).to_bits());
    }
    let evaluate_ms = time_ms(|| {
        let m = model.evaluate(&eval_data);
        assert!(m.mlogq.is_finite());
    });
    let search_ms = time_ms(|| {
        let best = random_search(&model, &[None, None], search_n, 10, 99);
        assert_eq!(best.len(), 10);
    });
    let stage = |name: &'static str, wall_ms: f64, nnz: usize| Stage {
        name,
        wall_ms,
        baseline_wall_ms: None,
        nnz,
        rank,
        dims: vec![12, 12],
        sweeps: 0,
        extra: Vec::new(),
    };
    vec![
        stage("plan_build", bake_ms, train_n),
        stage("predict_batch", plan_ms, batch_n),
        stage("predict_batch_naive", naive_ms, batch_n),
        stage("evaluate", evaluate_ms, batch_n),
        stage("search_random", search_ms, search_n),
    ]
}

/// PR 8 reference timings for the small scale, from the committed
/// `BENCH_pr8.json` (same machine class; see CHANGES.md for the protocol).
/// PR 9 claims **parity** on these stages — the network front end is a
/// new layer above the registry, not a tax on the layers below — so the
/// expected ratio against these baselines is ~1.0x throughout. `None`
/// when PR 8 recorded nothing for a stage/scale (including the
/// `server_*` stages, first recorded by this PR).
fn baseline_ms(scale: &str, stage: &str) -> Option<f64> {
    match (scale, stage) {
        ("small", "als_fit") => Some(BASELINE_SMALL_ALS),
        ("small", "als_fit_reference") => Some(BASELINE_SMALL_ALS_REF),
        ("small", "amn_fit") => Some(BASELINE_SMALL_AMN),
        ("small", "amn_fit_reference") => Some(BASELINE_SMALL_AMN_REF),
        ("small", "als_fit_med") => Some(BASELINE_SMALL_ALS_MED),
        ("small", "als_fit_med_reference") => Some(BASELINE_SMALL_ALS_MED_REF),
        ("small", "amn_fit_med") => Some(BASELINE_SMALL_AMN_MED),
        ("small", "amn_fit_med_reference") => Some(BASELINE_SMALL_AMN_MED_REF),
        ("small", "tucker_fit") => Some(BASELINE_SMALL_TUCKER),
        ("small", "tucker_fit_reference") => Some(BASELINE_SMALL_TUCKER_REF),
        ("small", "ccd_fit") => Some(BASELINE_SMALL_CCD),
        ("small", "ccd_fit_reference") => Some(BASELINE_SMALL_CCD_REF),
        ("small", "plan_build") => Some(BASELINE_SMALL_PLAN),
        ("small", "predict_batch") => Some(BASELINE_SMALL_PREDICT),
        ("small", "predict_batch_naive") => Some(BASELINE_SMALL_PREDICT_NAIVE),
        ("small", "predict_batch_tucker") => Some(BASELINE_SMALL_PREDICT_TUCKER),
        ("small", "evaluate") => Some(BASELINE_SMALL_EVALUATE),
        ("small", "search_random") => Some(BASELINE_SMALL_SEARCH),
        ("small", "registry_lookup") => Some(BASELINE_SMALL_REG_LOOKUP),
        ("small", "registry_serve_batch") => Some(BASELINE_SMALL_REG_SERVE),
        ("small", "registry_mixed_traffic") => Some(BASELINE_SMALL_REG_MIXED),
        ("small", "registry_churn") => Some(BASELINE_SMALL_REG_CHURN),
        ("small", "store_snapshot") => Some(BASELINE_SMALL_STORE_SNAP),
        ("small", "store_restore") => Some(BASELINE_SMALL_STORE_RESTORE),
        _ => None,
    }
}

// `wall_ms` values of BENCH_pr8.json (the PR 8 build measured by the PR 8
// snapshot protocol on this machine class, single core).
const BASELINE_SMALL_ALS: f64 = 7.545;
const BASELINE_SMALL_ALS_REF: f64 = 13.137;
const BASELINE_SMALL_AMN: f64 = 5.957;
const BASELINE_SMALL_AMN_REF: f64 = 8.216;
const BASELINE_SMALL_ALS_MED: f64 = 14.996;
const BASELINE_SMALL_ALS_MED_REF: f64 = 25.029;
const BASELINE_SMALL_AMN_MED: f64 = 15.111;
const BASELINE_SMALL_AMN_MED_REF: f64 = 19.480;
const BASELINE_SMALL_TUCKER: f64 = 22.431;
const BASELINE_SMALL_TUCKER_REF: f64 = 50.281;
const BASELINE_SMALL_CCD: f64 = 2.044;
const BASELINE_SMALL_CCD_REF: f64 = 3.921;
const BASELINE_SMALL_PLAN: f64 = 0.002;
const BASELINE_SMALL_PREDICT: f64 = 2.975;
const BASELINE_SMALL_PREDICT_NAIVE: f64 = 9.621;
const BASELINE_SMALL_PREDICT_TUCKER: f64 = 3.667;
const BASELINE_SMALL_EVALUATE: f64 = 3.795;
const BASELINE_SMALL_SEARCH: f64 = 4.735;
const BASELINE_SMALL_REG_LOOKUP: f64 = 6.558;
const BASELINE_SMALL_REG_SERVE: f64 = 7.896;
const BASELINE_SMALL_REG_MIXED: f64 = 22.985;
const BASELINE_SMALL_REG_CHURN: f64 = 9.227;
const BASELINE_SMALL_STORE_SNAP: f64 = 1.473;
const BASELINE_SMALL_STORE_RESTORE: f64 = 2.912;

fn threads_in_use() -> usize {
    rayon::current_num_threads()
}

fn fmt_f64(v: f64) -> String {
    format!("{v:.3}")
}

fn json(scale: &str, threads: usize, stages: &[Stage]) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"schema\": \"cpr-perf-snapshot-v1\",\n");
    out.push_str("  \"pr\": 10,\n");
    out.push_str(&format!("  \"scale\": \"{scale}\",\n"));
    out.push_str(&format!("  \"threads\": {threads},\n"));
    out.push_str("  \"stages\": [\n");
    for (k, s) in stages.iter().enumerate() {
        out.push_str("    {");
        out.push_str(&format!("\"name\": \"{}\", ", s.name));
        out.push_str(&format!("\"wall_ms\": {}, ", fmt_f64(s.wall_ms)));
        match s.baseline_wall_ms {
            Some(b) => {
                out.push_str(&format!("\"baseline_wall_ms\": {}, ", fmt_f64(b)));
                out.push_str(&format!("\"speedup\": {}, ", fmt_f64(b / s.wall_ms)));
            }
            None => out.push_str("\"baseline_wall_ms\": null, \"speedup\": null, "),
        }
        out.push_str(&format!(
            "\"nnz\": {}, \"rank\": {}, \"sweeps\": {}, \"dims\": {:?}",
            s.nnz, s.rank, s.sweeps, s.dims
        ));
        for (key, value) in &s.extra {
            out.push_str(&format!(", \"{key}\": {}", fmt_f64(*value)));
        }
        out.push('}');
        if k + 1 < stages.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let tiny = std::env::args().any(|a| a == "--tiny");
    let scale = if tiny { "tiny" } else { "small" };
    let threads = threads_in_use();

    // Tiny stages are sized to land >= ~1 ms on a laptop/CI core: the
    // perf_guard ratio gate is meaningless at microsecond scale.
    let mut stages: Vec<Stage> = Vec::new();
    if tiny {
        stages.extend(als_stages(
            "als_fit",
            "als_fit_reference",
            &[10, 10, 10],
            4,
            0.3,
            60,
        ));
        stages.extend(amn_stages(
            "amn_fit",
            "amn_fit_reference",
            &[8, 8, 8],
            2,
            0.3,
            8,
        ));
        stages.extend(tucker_stages(
            "tucker_fit",
            "tucker_fit_reference",
            &[8, 8, 8],
            2,
            0.3,
            6,
        ));
        stages.extend(ccd_stages(
            "ccd_fit",
            "ccd_fit_reference",
            &[10, 10, 10],
            4,
            0.3,
            20,
        ));
        stages.extend(serving_stages(400, 20_000, 5_000, 2));
        stages.push(tucker_serving_stage(400, 20_000, 2));
        stages.extend(registry_stages(64, 20_000));
        stages.push(obs_overhead_stage(64, 20_000));
        stages.push(churn_stage(4, 4_000, 2));
        stages.extend(store_stages(64));
        stages.extend(server_stages(16, 2_000));
    } else {
        stages.extend(als_stages(
            "als_fit",
            "als_fit_reference",
            &[24, 24, 24],
            8,
            0.2,
            40,
        ));
        stages.extend(amn_stages(
            "amn_fit",
            "amn_fit_reference",
            &[12, 12, 12],
            4,
            0.25,
            10,
        ));
        // Medium fit stages: larger grids at the rank-8/16 monomorphized
        // kernels (no PR 3 baselines — the reference stages are their
        // controls).
        stages.extend(als_stages(
            "als_fit_med",
            "als_fit_med_reference",
            &[32, 32, 32],
            16,
            0.15,
            20,
        ));
        stages.extend(amn_stages(
            "amn_fit_med",
            "amn_fit_med_reference",
            &[16, 16, 16],
            8,
            0.25,
            8,
        ));
        stages.extend(tucker_stages(
            "tucker_fit",
            "tucker_fit_reference",
            &[16, 16, 16],
            4,
            0.25,
            10,
        ));
        stages.extend(ccd_stages(
            "ccd_fit",
            "ccd_fit_reference",
            &[24, 24, 24],
            8,
            0.2,
            10,
        ));
        stages.extend(serving_stages(2_000, 50_000, 20_000, 4));
        stages.push(tucker_serving_stage(2_000, 50_000, 4));
        stages.extend(registry_stages(240, 50_000));
        stages.push(obs_overhead_stage(240, 50_000));
        stages.push(churn_stage(8, 20_000, 4));
        stages.extend(store_stages(240));
        stages.extend(server_stages(64, 10_000));
    }
    for s in &mut stages {
        s.baseline_wall_ms = baseline_ms(scale, s.name);
    }

    let body = json(scale, threads, &stages);
    let path = std::env::var("CPR_BENCH_OUT").unwrap_or_else(|_| "BENCH_pr10.json".to_string());
    std::fs::write(&path, &body).expect("perf_snapshot: cannot write output");
    println!("# perf_snapshot ({scale}, {threads} thread(s)) -> {path}");
    print!("{body}");
}
