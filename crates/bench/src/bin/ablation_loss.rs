//! Ablation: CPR's two training losses (§5.2 log-LS/ALS vs §5.3 MLogQ²/AMN).
//!
//! The paper uses the log-transformed least-squares loss for interpolation
//! ("most efficient and least susceptible to round-off", §5.2) and the
//! MLogQ²/interior-point loss only where positivity is needed. This
//! ablation quantifies that choice: in-domain accuracy, sweep counts, and
//! wall-clock time for both losses on two benchmarks.
//!
//! Run: `cargo run --release -p cpr-bench --bin ablation_loss [--full]`

use cpr_apps::{all_benchmarks, Benchmark};
use cpr_bench::{fmt, print_table, Scale};
use cpr_core::{CprBuilder, Loss};
use std::time::Instant;

fn main() {
    let scale = Scale::from_args();
    let benches = all_benchmarks();
    let bench_ids: &[usize] = match scale {
        Scale::Full => &[0, 2, 3, 4],
        Scale::Quick => &[0, 3],
        Scale::Tiny => &[0],
    };
    let train_n = scale.cap(8192, 2000);

    let mut rows = Vec::new();
    for &bi in bench_ids {
        let bench: &dyn Benchmark = benches[bi].as_ref();
        let space = bench.space();
        let train = bench.sample_dataset(train_n, 1);
        let test = bench.sample_dataset(scale.cap(2000, 500), 2);
        for (label, loss) in [
            ("LogLS+ALS", Loss::LogLeastSquares),
            ("MLogQ2+AMN", Loss::MLogQ2),
        ] {
            let start = Instant::now();
            let model = CprBuilder::new(space.clone())
                .cells_per_dim(8)
                .rank(4)
                .regularization(1e-6)
                .loss(loss)
                .fit(&train)
                .expect("training failed");
            let elapsed = start.elapsed().as_secs_f64();
            let m = model.evaluate(&test);
            rows.push(vec![
                bench.name().into(),
                label.into(),
                fmt(m.mlogq),
                fmt(m.mlogq2),
                model.trace().sweeps().to_string(),
                fmt(elapsed),
            ]);
        }
    }
    print_table(
        "Ablation: CPR loss/optimizer choice (rank 4, 8 cells/dim)",
        &[
            "bench",
            "loss",
            "mlogq",
            "mlogq2",
            "sweeps",
            "train_seconds",
        ],
        &rows,
    );
    println!("expected: comparable in-domain accuracy; ALS markedly cheaper per fit —");
    println!("which is why Sec 5.2 uses it for interpolation and reserves AMN for");
    println!("the positivity-constrained extrapolation models.");
}
