//! Figure 3: prediction accuracy vs. domain-discretization granularity for
//! the piecewise/grid-based models (CPR, SGR, MARS).
//!
//! For each of the five benchmarks the paper plots MLogQ against the
//! discretization granularity: cells-per-dimension for CPR, `2^level` for
//! SGR; MARS picks its own (global) discretization, giving one point.
//! Training-set sizes in the paper: 2¹⁶, 2¹⁶, 2¹⁵, 2¹⁵, 2¹⁴ for
//! MM, QR, BC, FMM, AMG.
//!
//! Expected shape (paper §7.1.1): CPR improves systematically with
//! granularity and beats SGR/MARS, increasingly so in high dimensions
//! (up to ~4x on FMM/AMG); SGR's uniform level refinement stalls on mixed
//! numerical/categorical spaces.
//!
//! Run: `cargo run --release -p cpr-bench --bin fig3_granularity [--full]`

use cpr_apps::all_benchmarks;
use cpr_baselines::{mars_grid, sgr_grid_levels, SweepBudget};
use cpr_bench::{fmt, print_table, tune_cpr, tune_family, Scale};

fn main() {
    let scale = Scale::from_args();
    let budget = match scale {
        Scale::Full => SweepBudget::Full,
        Scale::Quick | Scale::Tiny => SweepBudget::Quick,
    };
    let benches = all_benchmarks();
    // (benchmark index, paper train size)
    let plan: [(usize, usize); 5] = [(0, 65536), (1, 65536), (2, 32768), (3, 32768), (4, 16384)];
    let plan: &[(usize, usize)] = match scale {
        Scale::Tiny => &plan[..1],
        _ => &plan,
    };
    let granularities: &[usize] = match scale {
        Scale::Full => &[4, 8, 16, 32, 64, 128, 256],
        Scale::Quick => &[4, 8, 16, 32],
        Scale::Tiny => &[4, 8],
    };
    let ranks: &[usize] = match scale {
        Scale::Full => &[1, 2, 4, 8, 16, 32],
        Scale::Quick => &[2, 4, 8],
        Scale::Tiny => &[2],
    };
    let levels: &[usize] = match scale {
        Scale::Full => &[2, 3, 4, 5, 6, 7, 8],
        Scale::Quick => &[2, 3, 4, 5],
        Scale::Tiny => &[2],
    };

    let mut rows = Vec::new();
    for &(bi, full_train) in plan {
        let bench = &benches[bi];
        let space = bench.space();
        let train = bench.sample_dataset(scale.cap(full_train, 3000), 100 + bi as u64);
        let test =
            bench.sample_dataset(scale.cap(bench.paper_test_set_size(), 600), 200 + bi as u64);
        eprintln!(
            "[fig3] {} train={} test={}",
            bench.name(),
            train.len(),
            test.len()
        );

        // CPR: one point per granularity, rank tuned.
        for &g in granularities {
            let (_, err) = tune_cpr(&space, &train, &test, &[g], ranks, &[1e-5]);
            rows.push(vec![
                bench.name().to_string(),
                "CPR".into(),
                g.to_string(),
                fmt(err),
            ]);
        }
        // SGR: one point per level (granularity 2^level).
        for &level in levels {
            let grid = sgr_grid_levels(&[level], budget);
            if let Some(res) = tune_family("SGR", &grid, &space, &train, &test, None) {
                rows.push(vec![
                    bench.name().to_string(),
                    "SGR".into(),
                    (1usize << level).to_string(),
                    fmt(res.mlogq),
                ]);
            }
        }
        // MARS: a single (search-discretized, effectively global) point.
        if let Some(res) = tune_family("MARS", &mars_grid(budget), &space, &train, &test, None) {
            rows.push(vec![
                bench.name().to_string(),
                "MARS".into(),
                "global".into(),
                fmt(res.mlogq),
            ]);
        }
    }
    print_table(
        "Figure 3: MLogQ vs discretization granularity",
        &["bench", "model", "granularity", "mlogq"],
        &rows,
    );
}
