//! # cpr-bench — the experiment harness
//!
//! Shared plumbing for the per-figure/per-table binaries (`src/bin/`) that
//! regenerate every table and figure of the paper's evaluation, plus the
//! criterion micro-benchmarks (`benches/`). See DESIGN.md's per-experiment
//! index for the mapping.
//!
//! Conventions (paper §6.0.4):
//! * baselines consume **log-transformed** parameters and execution times;
//! * prediction error is reported as **MLogQ** = `mean |log(m/y)|`;
//! * every model family is tuned exhaustively over its hyper-parameter grid
//!   on the training set, and the best test error is reported;
//! * models over 10 MB are dropped from the Figure 7 sweep.

pub mod fixtures;

use cpr_baselines::tune::Factory;
use cpr_core::{BaselineFamily, CprBuilder, CprModel, Dataset, PerfModel, PerfModelBuilder};
use cpr_grid::ParamSpace;
use rayon::prelude::*;

// The §6.0.4 feature transform lives with the `PerfModel` bridge in
// `cpr_core` now; re-exported so the figure binaries keep one import path.
pub use cpr_core::transform_features;

/// Scale knob for the harness binaries: `Tiny` is a seconds-total smoke
/// configuration (CI runs every binary at this scale); `Quick` runs in
/// seconds-to-minutes on a laptop; `Full` approaches the paper's
/// training-set sizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    Tiny,
    Quick,
    Full,
}

impl Scale {
    /// Parse from process args: `--full` selects [`Scale::Full`], `--tiny`
    /// selects [`Scale::Tiny`], anything else defaults to [`Scale::Quick`].
    pub fn from_args() -> Self {
        if std::env::args().any(|a| a == "--full") {
            Scale::Full
        } else if std::env::args().any(|a| a == "--tiny") {
            Scale::Tiny
        } else {
            Scale::Quick
        }
    }

    /// Shrink a paper-scale sample count under `Quick`/`Tiny`. `Tiny` keeps
    /// an eighth of the quick count (floor 120 so every fit stays
    /// well-posed).
    pub fn cap(self, full: usize, quick: usize) -> usize {
        match self {
            Scale::Full => full,
            Scale::Quick => quick.min(full),
            Scale::Tiny => (quick / 8).max(120).min(quick).min(full),
        }
    }
}

/// Dataset → (log features, log times) for baseline training.
pub fn prepare_xy(space: &ParamSpace, data: &Dataset) -> (Vec<Vec<f64>>, Vec<f64>) {
    let xs = data
        .samples()
        .iter()
        .map(|s| transform_features(space, &s.x))
        .collect();
    let ys = data.samples().iter().map(|s| s.y.ln()).collect();
    (xs, ys)
}

/// MLogQ of a baseline's log-space predictions against log-space truth.
pub fn mlogq_log_space(pred_log: &[f64], truth_log: &[f64]) -> f64 {
    pred_log
        .iter()
        .zip(truth_log)
        .map(|(p, t)| (p - t).abs())
        .sum::<f64>()
        / truth_log.len() as f64
}

/// Result of tuning one model family.
pub struct FamilyResult {
    pub name: &'static str,
    pub mlogq: f64,
    pub size_bytes: usize,
}

/// Fit every factory in a family's grid, report the best test MLogQ
/// (optionally capping model size, as Figure 7 does at 10 MB).
pub fn tune_family(
    name: &'static str,
    grid: &[Factory],
    space: &ParamSpace,
    train: &Dataset,
    test: &Dataset,
    max_size_bytes: Option<usize>,
) -> Option<FamilyResult> {
    let (x_train, y_train) = prepare_xy(space, train);
    let (x_test, y_test) = prepare_xy(space, test);
    let best = cpr_baselines::tune_best(
        grid,
        &x_train,
        &y_train,
        &x_test,
        &y_test,
        mlogq_log_space,
        max_size_bytes,
    )?;
    Some(FamilyResult {
        name,
        mlogq: best.score,
        size_bytes: best.model.size_bytes(),
    })
}

/// Best fitted model of one family after a generic sweep.
pub struct FamilyBest {
    pub name: String,
    pub mlogq: f64,
    pub size_bytes: usize,
    /// The winning model itself, servable through the generic surface.
    pub model: Box<dyn PerfModel>,
}

/// Sweep any list of [`PerfModelBuilder`]s — CPR configurations, baseline
/// factories, extrapolators, mixed — through **one** fit/evaluate code
/// path: every builder fits on `train` (in parallel), evaluates on `test`
/// via [`PerfModel::evaluate`], and the best model per distinct builder
/// name (lowest test MLogQ, ties to the earlier builder) is returned in
/// first-seen name order. `max_size_bytes` drops models over the paper's
/// Figure 7 cap; builders whose fit fails are skipped.
pub fn sweep_builders(
    builders: &[Box<dyn PerfModelBuilder>],
    train: &Dataset,
    test: &Dataset,
    max_size_bytes: Option<usize>,
) -> Vec<FamilyBest> {
    let fitted: Vec<Option<FamilyBest>> = builders
        .par_iter()
        .map(|b| {
            let model = b.fit_boxed(train).ok()?;
            let size_bytes = model.size_bytes();
            if let Some(cap) = max_size_bytes {
                if size_bytes > cap {
                    return None;
                }
            }
            let mlogq = model.evaluate(test).mlogq;
            mlogq.is_finite().then_some(FamilyBest {
                name: b.name().to_string(),
                mlogq,
                size_bytes,
                model,
            })
        })
        .collect();
    let mut best: Vec<FamilyBest> = Vec::new();
    for candidate in fitted.into_iter().flatten() {
        match best.iter_mut().find(|fb| fb.name == candidate.name) {
            Some(fb) if candidate.mlogq < fb.mlogq => *fb = candidate,
            Some(_) => {}
            None => best.push(candidate),
        }
    }
    best
}

/// The standard CPR hyper-parameter grid as generic builders (every
/// `(cells, rank, lambda)` point, all named `"CPR"`, so [`sweep_builders`]
/// reports the family best).
pub fn cpr_builder_grid(
    space: &ParamSpace,
    cells: &[usize],
    ranks: &[usize],
    lambdas: &[f64],
) -> Vec<Box<dyn PerfModelBuilder>> {
    let mut out: Vec<Box<dyn PerfModelBuilder>> = Vec::new();
    for &c in cells {
        for &r in ranks {
            for &l in lambdas {
                out.push(Box::new(
                    CprBuilder::new(space.clone())
                        .cells_per_dim(c)
                        .rank(r)
                        .regularization(l),
                ));
            }
        }
    }
    out
}

/// A baseline family's hyper-parameter grid as generic builders (one
/// [`BaselineFamily`] per factory, all sharing `name`).
pub fn family_builder_grid(
    name: &'static str,
    space: &ParamSpace,
    grid: Vec<Factory>,
) -> Vec<Box<dyn PerfModelBuilder>> {
    grid.into_iter()
        .map(|factory| {
            Box::new(BaselineFamily::new(name, space.clone(), factory)) as Box<dyn PerfModelBuilder>
        })
        .collect()
}

/// CPR hyper-parameter point.
#[derive(Debug, Clone, Copy)]
pub struct CprPoint {
    pub cells: usize,
    pub rank: usize,
    pub lambda: f64,
}

/// Fit one CPR configuration and return `(model, test MLogQ)`.
pub fn fit_cpr(
    space: &ParamSpace,
    train: &Dataset,
    test: &Dataset,
    point: CprPoint,
) -> (CprModel, f64) {
    let model = CprBuilder::new(space.clone())
        .cells_per_dim(point.cells)
        .rank(point.rank)
        .regularization(point.lambda)
        .fit(train)
        .expect("CPR training failed");
    let mlogq = model.evaluate(test).mlogq;
    (model, mlogq)
}

/// Sweep CPR over a grid of `(cells, rank, lambda)` triples in parallel and
/// return the best model by test MLogQ (the §6.0.4 exhaustive protocol).
pub fn tune_cpr(
    space: &ParamSpace,
    train: &Dataset,
    test: &Dataset,
    cells: &[usize],
    ranks: &[usize],
    lambdas: &[f64],
) -> (CprModel, f64) {
    let points: Vec<CprPoint> = cells
        .iter()
        .flat_map(|&c| {
            ranks.iter().flat_map(move |&r| {
                lambdas.iter().map(move |&l| CprPoint {
                    cells: c,
                    rank: r,
                    lambda: l,
                })
            })
        })
        .collect();
    points
        .par_iter()
        .map(|&p| fit_cpr(space, train, test, p))
        .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
        .expect("empty CPR sweep")
}

/// Print a TSV header followed by rows.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("# {title}");
    println!("{}", header.join("\t"));
    for row in rows {
        println!("{}", row.join("\t"));
    }
    println!();
}

/// Format a float compactly for table output.
pub fn fmt(v: f64) -> String {
    if v == 0.0 {
        "0".into()
    } else if v.abs() >= 0.01 && v.abs() < 1e4 {
        format!("{v:.4}")
    } else {
        format!("{v:.3e}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpr_apps::{Benchmark, MatMul};

    #[test]
    fn transform_logs_numerical_params() {
        let mm = MatMul::default();
        let space = mm.space();
        let t = transform_features(&space, &[64.0, 128.0, 256.0]);
        assert!((t[0] - 64.0_f64.ln()).abs() < 1e-12);
        assert!((t[2] - 256.0_f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn cpr_fits_mm_reasonably() {
        let mm = MatMul::default();
        let train = mm.sample_dataset(2000, 1);
        let test = mm.sample_dataset(300, 2);
        let (_, mlogq) = fit_cpr(
            &mm.space(),
            &train,
            &test,
            CprPoint {
                cells: 8,
                rank: 4,
                lambda: 1e-6,
            },
        );
        assert!(mlogq < 0.5, "CPR on MM: MLogQ {mlogq}");
    }

    #[test]
    fn tune_cpr_picks_best() {
        let mm = MatMul::default();
        let train = mm.sample_dataset(1500, 3);
        let test = mm.sample_dataset(200, 4);
        let (model, best) = tune_cpr(&mm.space(), &train, &test, &[4, 8], &[1, 4], &[1e-6]);
        let (_, fixed) = fit_cpr(
            &mm.space(),
            &train,
            &test,
            CprPoint {
                cells: 4,
                rank: 1,
                lambda: 1e-6,
            },
        );
        assert!(best <= fixed + 1e-12);
        assert!(model.size_bytes() > 0);
    }

    #[test]
    fn family_tuning_runs_end_to_end() {
        let mm = MatMul::default();
        let space = mm.space();
        let train = mm.sample_dataset(400, 5);
        let test = mm.sample_dataset(100, 6);
        let grid = cpr_baselines::tune::knn_grid(cpr_baselines::SweepBudget::Quick);
        let res = tune_family("KNN", &grid, &space, &train, &test, None).unwrap();
        assert!(res.mlogq.is_finite() && res.mlogq > 0.0);
        assert!(res.size_bytes > 0);
    }

    #[test]
    fn generic_sweep_covers_cpr_and_baselines() {
        let mm = MatMul::default();
        let space = mm.space();
        let train = mm.sample_dataset(400, 7);
        let test = mm.sample_dataset(100, 8);
        let mut builders = cpr_builder_grid(&space, &[4, 8], &[1, 2], &[1e-6]);
        builders.extend(family_builder_grid(
            "KNN",
            &space,
            cpr_baselines::tune::knn_grid(cpr_baselines::SweepBudget::Quick),
        ));
        let best = sweep_builders(&builders, &train, &test, None);
        let names: Vec<&str> = best.iter().map(|b| b.name.as_str()).collect();
        assert_eq!(names, ["CPR", "KNN"], "one best entry per family");
        for fb in &best {
            assert!(fb.mlogq.is_finite() && fb.mlogq > 0.0);
            assert!(fb.size_bytes > 0);
            // The winning model is servable through the generic surface.
            let m = fb.model.evaluate(&test);
            assert_eq!(m.mlogq, fb.mlogq);
        }
        // A 1-byte cap drops everything.
        assert!(sweep_builders(&builders, &train, &test, Some(1)).is_empty());
    }

    #[test]
    fn scale_caps() {
        assert_eq!(Scale::Quick.cap(65536, 2048), 2048);
        assert_eq!(Scale::Full.cap(65536, 2048), 65536);
    }
}
