//! Smoke tests for the experiment harness: every criterion bench target
//! compiles, and every `fig*`/`table*`/`ablation*` binary parses its CLI and
//! completes a tiny-size run. These shell out to the `cargo` that is driving
//! this test (nested invocations are safe: the build lock is free while test
//! binaries execute).

use std::path::{Path, PathBuf};
use std::process::Command;

fn workspace_root() -> PathBuf {
    // crates/bench -> workspace root.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .unwrap()
        .to_path_buf()
}

fn cargo() -> Command {
    let mut cmd = Command::new(env!("CARGO"));
    cmd.current_dir(workspace_root());
    cmd
}

/// The harness binaries, one per paper figure/table plus the loss ablation.
fn harness_binaries() -> Vec<String> {
    let bin_dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("src/bin");
    let mut bins: Vec<String> = std::fs::read_dir(bin_dir)
        .expect("src/bin must exist")
        .filter_map(|e| {
            let name = e.ok()?.file_name().into_string().ok()?;
            name.strip_suffix(".rs").map(String::from)
        })
        .collect();
    bins.sort();
    bins
}

#[test]
fn binary_registry_is_complete() {
    let bins = harness_binaries();
    assert_eq!(
        bins.len(),
        13,
        "expected 13 harness binaries, found {bins:?}"
    );
    for prefix in [
        "fig1",
        "fig2",
        "fig3",
        "fig4",
        "fig5",
        "fig6",
        "fig7",
        "fig8",
        "table1",
        "table2",
        "ablation",
        "perf_snapshot",
        "perf_guard",
    ] {
        assert!(
            bins.iter().any(|b| b.starts_with(prefix)),
            "no harness binary for {prefix} in {bins:?}"
        );
    }
}

#[test]
fn criterion_benches_compile() {
    let output = cargo()
        .args(["bench", "--no-run", "--offline", "-p", "cpr_bench"])
        .output()
        .expect("failed to spawn cargo bench");
    assert!(
        output.status.success(),
        "cargo bench --no-run failed:\n{}",
        String::from_utf8_lossy(&output.stderr)
    );
}

#[test]
fn every_harness_binary_runs_a_tiny_configuration() {
    // perf_snapshot honors CPR_BENCH_OUT; point it at the target dir so a
    // test run never clobbers the committed BENCH_pr3.json record.
    let snapshot_out = workspace_root().join("target/BENCH_smoke_tiny.json");
    for bin in harness_binaries() {
        // perf_guard takes two snapshot paths instead of a size flag;
        // comparing the checked-in tiny baseline against itself exercises
        // the parser and the all-ratios-1.0 pass verdict.
        let bin_args: &[&str] = if bin == "perf_guard" {
            &[
                "crates/bench/baselines/tiny.json",
                "crates/bench/baselines/tiny.json",
            ]
        } else {
            &["--tiny"]
        };
        let output = cargo()
            .env("CPR_BENCH_OUT", &snapshot_out)
            .args([
                "run",
                "--release",
                "--offline",
                "-p",
                "cpr_bench",
                "--bin",
                &bin,
                "--",
            ])
            .args(bin_args)
            .output()
            .unwrap_or_else(|e| panic!("failed to spawn {bin}: {e}"));
        assert!(
            output.status.success(),
            "{bin} --tiny exited with {}:\n{}",
            output.status,
            String::from_utf8_lossy(&output.stderr)
        );
        assert!(
            !output.stdout.is_empty(),
            "{bin} --tiny produced no stdout (tables/figures print to stdout)"
        );
    }
}
