//! Criterion bench: tensor-completion optimizer throughput (ALS vs CCD vs
//! SGD vs AMN) on a fixed synthetic completion problem — the §4.2 ablation.

use cpr_completion::{
    als, amn, ccd, init_positive, sgd, AlsConfig, AmnConfig, CcdConfig, SgdConfig, StopRule,
};
use cpr_tensor::{CpDecomp, SparseTensor};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// 20%-observed 16x16x16 rank-4 positive ground truth.
fn problem() -> SparseTensor {
    let truth = CpDecomp::random(&[16, 16, 16], 4, 0.5, 1.5, 7);
    let dense = truth.to_dense();
    let mut rng = StdRng::seed_from_u64(8);
    let mut obs = SparseTensor::new(dense.dims());
    for (idx, v) in dense.iter_indexed() {
        if rng.gen::<f64>() < 0.2 {
            obs.push(&idx, v);
        }
    }
    obs
}

fn bench_optimizers(c: &mut Criterion) {
    let obs = problem();
    let stop = StopRule {
        max_sweeps: 10,
        tol: 0.0,
    }; // fixed 10 sweeps
    let mut group = c.benchmark_group("completion_10_sweeps");
    group.sample_size(10);

    group.bench_function(BenchmarkId::new("als", "r4"), |b| {
        b.iter(|| {
            let mut cp = CpDecomp::random(&[16, 16, 16], 4, 0.0, 1.0, 1);
            als(
                &mut cp,
                &obs,
                &AlsConfig {
                    lambda: 1e-6,
                    stop,
                    scale_by_count: true,
                },
            )
        })
    });
    group.bench_function(BenchmarkId::new("ccd", "r4"), |b| {
        b.iter(|| {
            let mut cp = CpDecomp::random(&[16, 16, 16], 4, 0.1, 1.0, 1);
            ccd(
                &mut cp,
                &obs,
                &CcdConfig {
                    lambda: 1e-6,
                    stop,
                    scale_by_count: true,
                },
            )
        })
    });
    group.bench_function(BenchmarkId::new("sgd", "r4"), |b| {
        b.iter(|| {
            let mut cp = CpDecomp::random(&[16, 16, 16], 4, 0.1, 1.0, 1);
            sgd(
                &mut cp,
                &obs,
                &SgdConfig {
                    lambda: 1e-6,
                    stop,
                    ..Default::default()
                },
            )
        })
    });
    group.bench_function(BenchmarkId::new("amn", "r4"), |b| {
        b.iter(|| {
            let mut cp = init_positive(&[16, 16, 16], 4, 1.0, 1);
            amn(
                &mut cp,
                &obs,
                &AmnConfig {
                    lambda: 1e-6,
                    stop,
                    newton_iters: 10,
                    ..Default::default()
                },
            )
        })
    });
    group.finish();

    // Rank scaling of one ALS run (the O(R^3 + |Ω|dR^2) term).
    let mut group = c.benchmark_group("als_rank_scaling");
    group.sample_size(10);
    for rank in [2usize, 8, 32] {
        group.bench_with_input(BenchmarkId::from_parameter(rank), &rank, |b, &r| {
            b.iter(|| {
                let mut cp = CpDecomp::random(&[16, 16, 16], r, 0.0, 1.0, 1);
                als(
                    &mut cp,
                    &obs,
                    &AlsConfig {
                        lambda: 1e-6,
                        stop,
                        scale_by_count: true,
                    },
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_optimizers);
criterion_main!(benches);
