//! Criterion bench: end-to-end CPR training cost vs grid size and rank
//! (binning + ALS completion on the MM benchmark).

use cpr_apps::{Benchmark, MatMul};
use cpr_core::CprBuilder;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_training(c: &mut Criterion) {
    let mm = MatMul::default();
    let train = mm.sample_dataset(4096, 1);
    let space = mm.space();

    let mut group = c.benchmark_group("cpr_train_mm_4096");
    group.sample_size(10);
    for (cells, rank) in [(8usize, 4usize), (16, 4), (16, 8), (32, 8)] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("c{cells}_r{rank}")),
            &(cells, rank),
            |b, &(cells, rank)| {
                b.iter(|| {
                    CprBuilder::new(space.clone())
                        .cells_per_dim(cells)
                        .rank(rank)
                        .regularization(1e-6)
                        .max_sweeps(25)
                        .fit(&train)
                        .unwrap()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_training);
criterion_main!(benches);
