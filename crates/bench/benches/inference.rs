//! Criterion bench: single-prediction latency of CPR vs representative
//! baselines (model-evaluation cost matters for autotuning search loops).

use cpr_apps::{Benchmark, MatMul};
use cpr_baselines::{Knn, KnnConfig, Mlp, MlpConfig, Regressor};
use cpr_bench::{prepare_xy, transform_features};
use cpr_core::CprBuilder;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_inference(c: &mut Criterion) {
    let mm = MatMul::default();
    let train = mm.sample_dataset(2048, 1);
    let space = mm.space();
    let probe = vec![777.0, 1234.0, 555.0];

    let cpr = CprBuilder::new(space.clone())
        .cells_per_dim(16)
        .rank(8)
        .fit(&train)
        .unwrap();
    let (xs, ys) = prepare_xy(&space, &train);
    let mut knn = Knn::new(KnnConfig::default());
    knn.fit(&xs, &ys);
    let mut mlp = Mlp::new(MlpConfig {
        hidden: vec![64, 64],
        epochs: 20,
        ..Default::default()
    });
    mlp.fit(&xs, &ys);
    let probe_log = transform_features(&space, &probe);

    let mut group = c.benchmark_group("predict_one");
    group.bench_function("cpr_c16_r8", |b| {
        b.iter(|| black_box(cpr.predict(black_box(&probe))))
    });
    group.bench_function("knn_k4_n2048", |b| {
        b.iter(|| black_box(knn.predict(black_box(&probe_log))))
    });
    group.bench_function("mlp_64x64", |b| {
        b.iter(|| black_box(mlp.predict(black_box(&probe_log))))
    });
    group.finish();
}

criterion_group!(benches, bench_inference);
criterion_main!(benches);
