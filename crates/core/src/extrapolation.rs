//! CPR extrapolation (paper §5.3).
//!
//! A general CP decomposition cannot predict beyond its grid: unseen factor
//! rows would have to be invented, and sign cancellations make them
//! structureless. The paper's remedy:
//!
//! 1. Train a *strictly positive* CP model with the interior-point AMN
//!    optimizer under MLogQ² loss ([`cpr_completion::amn()`]).
//! 2. For each numerical mode, take the best rank-1 approximation
//!    `U ≈ û σ̂ v̂ᵀ` of its factor matrix (positive by Perron-Frobenius).
//! 3. Fit a MARS spline `m̂` to the log of the left singular vector û
//!    against the (h-transformed) grid mid-points.
//! 4. For a configuration whose parameter `x_j` leaves the modeled range,
//!    replace mode `j`'s factor row by `exp(m̂(h_j(x_j))) · σ̂ · v̂` and keep
//!    the other modes' factor rows (interpolated as usual when in-domain,
//!    point-indexed otherwise).

use crate::dataset::Dataset;
use crate::error::{CprError, Result};
use crate::metrics::Metrics;
use crate::model::{CprBuilder, CprModel, Loss};
use cpr_baselines::mars::{fit_univariate_spline, Mars};
use cpr_baselines::Regressor;
use cpr_grid::ParamSpace;
use cpr_tensor::linalg::dominant_triple;
use rayon::prelude::*;

/// Per-mode rank-1 factorization plus the spline over `log û`.
#[derive(Debug, Clone)]
struct ModeExtrapolator {
    sigma: f64,
    /// Right singular vector (one entry per CP rank component).
    v: Vec<f64>,
    /// MARS spline fitted on `(h_j(M_i), log û_i)`.
    spline: Mars,
}

impl ModeExtrapolator {
    /// The virtual factor row for an out-of-domain parameter value, already
    /// h-transformed by the caller: `exp(m̂(h)) σ̂ v̂_r` (paper §5.3).
    fn virtual_row(&self, h: f64) -> Vec<f64> {
        let scale = self.spline.predict(&[h]).exp() * self.sigma;
        self.v.iter().map(|&vr| scale * vr).collect()
    }
}

/// Builder for [`CprExtrapolator`]: a thin wrapper over [`CprBuilder`]
/// that pins the optimizer/loss pair to AMN/MLogQ² (positivity is required
/// by the rank-1/Perron argument) and adds the one extrapolation-specific
/// knob (spline term cap). Every other field — cells, rank, λ, sweeps,
/// seed — is the wrapped builder's [`crate::FitSpec`]; there is no second
/// copy of the configuration.
#[derive(Debug, Clone)]
pub struct CprExtrapolatorBuilder {
    inner: CprBuilder,
    spline_max_terms: usize,
}

impl CprExtrapolatorBuilder {
    /// Start a builder; defaults mirror [`CprBuilder`] with AMN/MLogQ²
    /// forced.
    pub fn new(space: ParamSpace) -> Self {
        Self::from_builder(CprBuilder::new(space))
    }

    /// Wrap an existing [`CprBuilder`], reusing its whole fit
    /// configuration. The optimizer/loss selection is overridden to
    /// AMN/MLogQ² — the only regime the §5.3 construction is sound in.
    pub fn from_builder(builder: CprBuilder) -> Self {
        Self {
            inner: builder
                .optimizer(cpr_completion::Optimizer::Amn)
                .loss(Loss::MLogQ2),
            spline_max_terms: 12,
        }
    }

    /// The wrapped base-model builder.
    pub fn builder(&self) -> &CprBuilder {
        &self.inner
    }

    /// Same cell count along every numerical mode.
    pub fn cells_per_dim(mut self, cells: usize) -> Self {
        self.inner = self.inner.cells_per_dim(cells);
        self
    }

    /// Per-mode cell counts.
    pub fn cells(mut self, cells: Vec<usize>) -> Self {
        self.inner = self.inner.cells(cells);
        self
    }

    /// CP rank.
    pub fn rank(mut self, rank: usize) -> Self {
        self.inner = self.inner.rank(rank);
        self
    }

    /// Ridge regularization λ.
    pub fn regularization(mut self, lambda: f64) -> Self {
        self.inner = self.inner.regularization(lambda);
        self
    }

    /// Optimizer sweep cap.
    pub fn max_sweeps(mut self, sweeps: usize) -> Self {
        self.inner = self.inner.max_sweeps(sweeps);
        self
    }

    /// Factor-initialization seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.inner = self.inner.seed(seed);
        self
    }

    /// Cap on MARS spline terms for the singular-vector fits.
    pub fn spline_max_terms(mut self, terms: usize) -> Self {
        self.spline_max_terms = terms;
        self
    }

    /// Train the positive CP model and fit per-mode extrapolation splines.
    pub fn fit(&self, data: &Dataset) -> Result<CprExtrapolator> {
        let model = self.inner.fit(data)?;
        if !model.cp().is_strictly_positive() {
            return Err(CprError::InvalidConfig(
                "AMN training did not preserve factor positivity".into(),
            ));
        }
        let grid = model.grid();
        let mut modes = Vec::with_capacity(grid.order());
        for mode in 0..grid.order() {
            let axis = grid.axis(mode);
            if axis.spec().is_categorical() || axis.len() < 2 {
                modes.push(None);
                continue;
            }
            let triple = dominant_triple(model.cp().factor(mode), 1e-12, 1000);
            // Perron-Frobenius: û of a positive factor is positive; clamp
            // against round-off before the log.
            let log_u: Vec<f64> = triple.u.iter().map(|&u| u.max(1e-300).ln()).collect();
            let h: Vec<f64> = axis.midpoints().iter().map(|&m| axis.spec().h(m)).collect();
            let spline = fit_univariate_spline(&h, &log_u, self.spline_max_terms);
            modes.push(Some(ModeExtrapolator {
                sigma: triple.sigma,
                v: triple.v,
                spline,
            }));
        }
        Ok(CprExtrapolator { model, modes })
    }
}

/// A CPR model extended with §5.3 extrapolation along numerical modes.
#[derive(Debug, Clone)]
pub struct CprExtrapolator {
    model: CprModel,
    modes: Vec<Option<ModeExtrapolator>>,
}

impl CprExtrapolator {
    /// The underlying positive CPR model (valid for in-domain predictions).
    pub fn model(&self) -> &CprModel {
        &self.model
    }

    /// Predict the execution time of a configuration, extrapolating along
    /// any numerical parameter outside its modeled range. In-domain
    /// configurations fall through to the standard Eq. 5 path — served by
    /// the base model's compiled [`crate::PredictPlan`]; the
    /// extrapolation corner expansion reads its factor rows from the same
    /// plan's packed (SoA) bake.
    pub fn predict(&self, x: &[f64]) -> f64 {
        let grid = self.model.grid();
        assert_eq!(
            x.len(),
            grid.order(),
            "predict: configuration order mismatch"
        );
        let rank = self.model.cp().rank();

        // Classify each mode: in-domain numerical/categorical modes use
        // their Eq. 5 stencils; out-of-domain numerical modes are replaced
        // by the virtual spline row and (per §5.3) excluded from
        // interpolation; out-of-domain categorical values are clamped.
        let mut any_extrapolated = false;
        #[derive(Clone)]
        enum ModePlan {
            Stencil { i0: usize, i1: usize, w1: f64 },
            Virtual(Vec<f64>),
        }
        let plans: Vec<ModePlan> = (0..grid.order())
            .map(|j| {
                let axis = grid.axis(j);
                let in_dom = axis.spec().in_domain(x[j]);
                match (&self.modes[j], in_dom) {
                    (Some(me), false) => {
                        any_extrapolated = true;
                        ModePlan::Virtual(me.virtual_row(axis.spec().h(x[j])))
                    }
                    _ => {
                        let (i0, i1, w1) = axis.stencil(x[j]);
                        ModePlan::Stencil { i0, i1, w1 }
                    }
                }
            })
            .collect();
        if !any_extrapolated {
            return self.model.predict(x);
        }

        // Corner expansion over stencil modes only.
        let stencil_modes: Vec<usize> = plans
            .iter()
            .enumerate()
            .filter_map(|(j, p)| match p {
                ModePlan::Stencil { i0, i1, .. } if i0 != i1 => Some(j),
                _ => None,
            })
            .collect();
        let corners = 1usize << stencil_modes.len();
        let mut total = 0.0;
        let mut acc = vec![0.0; rank];
        for mask in 0..corners {
            let mut weight = 1.0;
            acc.fill(1.0);
            for (j, plan) in plans.iter().enumerate() {
                match plan {
                    ModePlan::Virtual(row) => {
                        for (a, &r) in acc.iter_mut().zip(row) {
                            *a *= r;
                        }
                    }
                    ModePlan::Stencil { i0, i1, w1 } => {
                        let (idx, w) = if *i0 == *i1 {
                            (*i0, 1.0)
                        } else {
                            let bit_pos = stencil_modes.iter().position(|&m| m == j).unwrap();
                            if (mask >> bit_pos) & 1 == 1 {
                                (*i1, *w1)
                            } else {
                                (*i0, 1.0 - *w1)
                            }
                        };
                        weight *= w;
                        let row = self.model.plan().factor_row(j, idx);
                        for (a, &r) in acc.iter_mut().zip(row) {
                            *a *= r;
                        }
                    }
                }
            }
            if weight != 0.0 {
                total += weight * acc.iter().sum::<f64>();
            }
        }
        total.max(1e-12)
    }

    /// Predict a batch of configurations, in parallel across samples.
    pub fn predict_batch<X: AsRef<[f64]> + Sync>(&self, xs: &[X]) -> Vec<f64> {
        xs.par_iter().map(|x| self.predict(x.as_ref())).collect()
    }

    /// Evaluate against a labeled dataset (parallel predictions).
    pub fn evaluate(&self, data: &Dataset) -> Metrics {
        let preds = self.predict_batch(data.samples());
        Metrics::compute(&preds, &data.ys())
    }

    /// Serialized size: base model + per-mode rank-1 data + splines.
    pub fn size_bytes(&self) -> usize {
        let extras: usize = self
            .modes
            .iter()
            .flatten()
            .map(|m| 8 + m.v.len() * 8 + m.spline.size_bytes())
            .sum();
        self.model.size_bytes() + extras
    }
}

impl crate::perf_model::PerfModel for CprExtrapolator {
    fn name(&self) -> &str {
        "CPR-E"
    }

    fn space(&self) -> &cpr_grid::ParamSpace {
        self.model.space()
    }

    fn predict(&self, x: &[f64]) -> f64 {
        CprExtrapolator::predict(self, x)
    }

    fn predict_into(&self, xs: &[&[f64]], out: &mut [f64]) {
        assert_eq!(xs.len(), out.len(), "predict_into: output length mismatch");
        // Write predictions straight into the caller's buffer (parallel
        // over chunks, output at the input index) — no intermediate batch
        // vector.
        const CHUNK: usize = 256;
        out.par_chunks_mut(CHUNK)
            .enumerate()
            .for_each(|(c, chunk)| {
                let base = c * CHUNK;
                for (k, o) in chunk.iter_mut().enumerate() {
                    *o = CprExtrapolator::predict(self, xs[base + k]);
                }
            });
    }

    fn evaluate(&self, data: &Dataset) -> Metrics {
        CprExtrapolator::evaluate(self, data)
    }

    fn size_bytes(&self) -> usize {
        CprExtrapolator::size_bytes(self)
    }
}

impl crate::perf_model::PerfModelBuilder for CprExtrapolatorBuilder {
    fn name(&self) -> &str {
        "CPR-E"
    }

    fn fit_boxed(&self, data: &Dataset) -> Result<Box<dyn crate::perf_model::PerfModel>> {
        Ok(Box::new(self.fit(data)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpr_grid::ParamSpec;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Power-law data over a *training* range; tests extrapolate beyond it.
    fn power_law_data(m_hi: f64, n_samples: usize, seed: u64) -> (ParamSpace, Dataset) {
        let space = ParamSpace::new(vec![
            ParamSpec::log("m", 32.0, m_hi),
            ParamSpec::log("n", 32.0, 2048.0),
        ]);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut data = Dataset::new();
        for _ in 0..n_samples {
            let m = 32.0 * (m_hi / 32.0).powf(rng.gen::<f64>());
            let n = 32.0 * (2048.0_f64 / 32.0).powf(rng.gen::<f64>());
            data.push(vec![m, n], 2e-4 * m.powf(1.5) * n.powf(0.9));
        }
        (space, data)
    }

    #[test]
    fn extrapolates_power_law_along_one_mode() {
        // Train with m <= 512, test at m in [1024, 4096].
        let (space, train) = power_law_data(512.0, 1500, 1);
        // Rank 2 on exactly-rank-1 truth leaves the split between the two
        // components under-determined, and extrapolation quality tracks how
        // much structure the non-dominant component soaked up — so this test
        // pins the factor-init seed (as the rest of the suite does) rather
        // than gambling on the builder default.
        let ex = CprExtrapolatorBuilder::new(space)
            .cells_per_dim(8)
            .rank(2)
            .regularization(1e-8)
            .seed(1)
            .fit(&train)
            .unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let mut test = Dataset::new();
        for _ in 0..100 {
            let m = 1024.0 * 4.0_f64.powf(rng.gen::<f64>());
            let n = 32.0 * (2048.0_f64 / 32.0).powf(rng.gen::<f64>());
            test.push(vec![m, n], 2e-4 * m.powf(1.5) * n.powf(0.9));
        }
        let metrics = ex.evaluate(&test);
        assert!(
            metrics.mlogq < 0.35,
            "extrapolation MLogQ {} (mean factor {:.2})",
            metrics.mlogq,
            metrics.mean_factor()
        );
    }

    #[test]
    fn in_domain_falls_through_to_base_model() {
        let (space, train) = power_law_data(2048.0, 1000, 3);
        let ex = CprExtrapolatorBuilder::new(space)
            .cells_per_dim(6)
            .rank(2)
            .fit(&train)
            .unwrap();
        let probe = vec![300.0, 300.0];
        assert_eq!(ex.predict(&probe), ex.model().predict(&probe));
    }

    #[test]
    fn predictions_always_positive() {
        let (space, train) = power_law_data(512.0, 800, 4);
        let ex = CprExtrapolatorBuilder::new(space)
            .cells_per_dim(6)
            .rank(2)
            .fit(&train)
            .unwrap();
        for m in [8.0, 512.0, 100_000.0] {
            for n in [8.0, 100_000.0] {
                assert!(ex.predict(&[m, n]) > 0.0, "non-positive at ({m},{n})");
            }
        }
    }

    #[test]
    fn multi_mode_extrapolation() {
        // Both parameters out of range simultaneously.
        let (space, train) = power_law_data(512.0, 1500, 5);
        let ex = CprExtrapolatorBuilder::new(space)
            .cells_per_dim(8)
            .rank(2)
            .regularization(1e-8)
            .fit(&train)
            .unwrap();
        let m: f64 = 2048.0;
        let n: f64 = 4096.0;
        let truth = 2e-4 * m.powf(1.5) * n.powf(0.9);
        let pred = ex.predict(&[m, n]);
        let logq = (pred / truth).ln().abs();
        assert!(logq < 0.8, "multi-mode extrapolation |logQ| = {logq}");
    }

    #[test]
    fn categorical_modes_are_never_extrapolated() {
        let space = ParamSpace::new(vec![
            ParamSpec::log("n", 32.0, 512.0),
            ParamSpec::categorical("alg", 2),
        ]);
        let mut rng = StdRng::seed_from_u64(6);
        let mut data = Dataset::new();
        for _ in 0..600 {
            let n = 32.0 * 16.0_f64.powf(rng.gen::<f64>());
            let alg = rng.gen_range(0..2usize);
            data.push(vec![n, alg as f64], 1e-3 * [1.0, 2.0][alg] * n);
        }
        let ex = CprExtrapolatorBuilder::new(space)
            .cells(vec![6, 2])
            .rank(2)
            .fit(&data)
            .unwrap();
        // Out-of-range category index clamps to the nearest valid choice.
        let p_valid = ex.predict(&[100.0, 1.0]);
        let p_clamped = ex.predict(&[100.0, 7.0]);
        assert_eq!(p_valid, p_clamped);
    }

    #[test]
    fn from_builder_reuses_the_fit_spec_and_forces_amn() {
        let (space, train) = power_law_data(512.0, 700, 8);
        // A builder configured for plain ALS: wrapping it reuses the cells/
        // rank/seed fields but pins the optimizer to AMN (MLogQ²).
        let base = CprBuilder::new(space)
            .cells_per_dim(6)
            .rank(2)
            .seed(3)
            .optimizer(cpr_completion::Optimizer::Als);
        let ex = CprExtrapolatorBuilder::from_builder(base.clone())
            .fit(&train)
            .unwrap();
        assert_eq!(ex.model().optimizer(), cpr_completion::Optimizer::Amn);
        assert_eq!(ex.model().loss(), Loss::MLogQ2);
        assert!(ex.model().cp().is_strictly_positive());
        assert_eq!(ex.model().grid().axis(0).len(), 6);
        // The wrapped spec is observable (one config, not a copy).
        let wrapped = CprExtrapolatorBuilder::from_builder(base);
        assert_eq!(wrapped.builder().spec().rank, 2);
        assert_eq!(wrapped.builder().spec().seed, 3);
        assert_eq!(
            wrapped.builder().spec().optimizer,
            Some(cpr_completion::Optimizer::Amn)
        );
    }

    #[test]
    fn size_accounts_for_splines() {
        let (space, train) = power_law_data(512.0, 500, 7);
        let ex = CprExtrapolatorBuilder::new(space)
            .cells_per_dim(6)
            .rank(2)
            .fit(&train)
            .unwrap();
        assert!(ex.size_bytes() > ex.model().size_bytes());
    }
}
