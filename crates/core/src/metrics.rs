//! Error metrics for performance-model assessment (paper Table 1 and §2.2).
//!
//! The paper argues that only MLogQ and MLogQ² are *scale-independent*:
//! they penalize `m = a·y` and `m = y/a` equally, unlike relative error,
//! which biases model selection toward under-prediction. All CPR training
//! and evaluation in this repository minimizes/reports MLogQ-family metrics;
//! the rest exist for the Table 1 reproduction and for completeness.

/// Aggregate prediction-error metrics over a test set.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Metrics {
    /// Mean absolute percentage error `mean(|m-y| / y)`.
    pub mape: f64,
    /// Mean absolute error `mean(|m-y|)`.
    pub mae: f64,
    /// Mean squared error `mean((m-y)²)`.
    pub mse: f64,
    /// Symmetric MAPE `mean(2|m-y| / (y+m))`.
    pub smape: f64,
    /// Log geometric-mean APE `mean(log(|m-y| / y))` (clamped at `log 1e-16`).
    pub lgmape: f64,
    /// Mean absolute log accuracy ratio `mean(|log(m/y)|)` — the paper's
    /// headline metric.
    pub mlogq: f64,
    /// Mean squared log accuracy ratio `mean(log²(m/y))`.
    pub mlogq2: f64,
    /// Worst-case `|log(m/y)|`.
    pub max_logq: f64,
    /// Number of evaluated pairs.
    pub count: usize,
}

impl Metrics {
    /// Compute all metrics from predictions and (positive) ground truth.
    /// Non-positive predictions are clamped to `1e-16` before the log
    /// metrics, matching the paper's Figure 1 protocol.
    pub fn compute(pred: &[f64], truth: &[f64]) -> Self {
        assert_eq!(pred.len(), truth.len(), "Metrics: length mismatch");
        let mut accum = MetricsAccum::new();
        for (&m_raw, &y) in pred.iter().zip(truth) {
            accum.push(m_raw, y);
        }
        accum.finish()
    }

    /// Geometric-mean accuracy ratio `exp(mlogq)` — "predictions within a
    /// factor of X on average".
    pub fn mean_factor(&self) -> f64 {
        self.mlogq.exp()
    }
}

/// Streaming accumulator behind [`Metrics::compute`]: push `(prediction,
/// truth)` pairs one at a time, then [`Self::finish`]. Lets serving paths
/// that already hold predictions in a buffer (the compiled query plan's
/// `predict_into`) fold the metric pass in without materializing a second
/// vector. Pushing pairs in index order is bitwise-identical to
/// `Metrics::compute` on the concatenated slices — same accumulation
/// order, same operations.
#[derive(Debug, Clone, Copy, Default)]
pub struct MetricsAccum {
    mape: f64,
    mae: f64,
    mse: f64,
    smape: f64,
    lgmape: f64,
    mlogq: f64,
    mlogq2: f64,
    max_logq: f64,
    count: usize,
}

impl MetricsAccum {
    /// Fresh accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of pairs absorbed so far.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Absorb one (prediction, positive ground truth) pair.
    pub fn push(&mut self, m_raw: f64, y: f64) {
        assert!(
            y > 0.0,
            "Metrics: ground-truth execution times must be positive"
        );
        let m = m_raw.max(1e-16);
        let abs_err = (m_raw - y).abs();
        self.mape += abs_err / y;
        self.mae += abs_err;
        self.mse += (m_raw - y) * (m_raw - y);
        self.smape += 2.0 * abs_err / (y + m_raw).max(1e-300);
        self.lgmape += (abs_err / y).max(1e-16).ln();
        let lq = (m / y).ln();
        self.mlogq += lq.abs();
        self.mlogq2 += lq * lq;
        self.max_logq = self.max_logq.max(lq.abs());
        self.count += 1;
    }

    /// Finalize into [`Metrics`]; panics when no pair was pushed.
    pub fn finish(&self) -> Metrics {
        assert!(self.count > 0, "Metrics: empty input");
        let n = self.count as f64;
        Metrics {
            mape: self.mape / n,
            mae: self.mae / n,
            mse: self.mse / n,
            smape: self.smape / n,
            lgmape: self.lgmape / n,
            mlogq: self.mlogq / n,
            mlogq2: self.mlogq2 / n,
            max_logq: self.max_logq,
            count: self.count,
        }
    }
}

/// Score a predictor over `(configuration, measured time)` pairs without
/// materializing a prediction vector — the holdout evaluation behind the
/// registry's background-refit quality gate, which compares a candidate
/// plan against the live one on a reserved slice before swapping. Pairs
/// are pushed in iteration order, so for the same pairs this is
/// bitwise-identical to [`Metrics::compute`] on the gathered slices.
/// Returns `None` for an empty iterator (an ungated caller decides what an
/// empty holdout means; [`MetricsAccum::finish`] would panic).
pub fn holdout_metrics<F, I, X>(mut predict: F, pairs: I) -> Option<Metrics>
where
    F: FnMut(&[f64]) -> f64,
    I: IntoIterator<Item = (X, f64)>,
    X: AsRef<[f64]>,
{
    let mut accum = MetricsAccum::new();
    for (x, y) in pairs {
        let x = x.as_ref();
        accum.push(predict(x), y);
    }
    (accum.count() > 0).then(|| accum.finish())
}

/// The ε-form error expressions of Table 1, where `ε = m/y − 1`.
///
/// Row-by-row the paper shows each metric equals (rows 1–5) or Taylor-matches
/// (rows 6–7) an expression in ε alone; [`epsilon_expressions`] evaluates
/// those right-hand sides so the Table 1 harness can verify the equivalence
/// numerically.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpsilonExpressions {
    pub mape: f64,
    pub mae: f64,
    pub mse: f64,
    pub smape: f64,
    pub lgmape: f64,
    /// First-order expression `mean(|ε/(1+ε)|)` for MLogQ... exact expression
    /// per the table is `|ε_k/(1+ε_k)| + O(ε²)`; we evaluate the leading term.
    pub mlogq_lead: f64,
    /// Leading term `mean((ε/(1+ε))²)` for MLogQ².
    pub mlogq2_lead: f64,
}

/// Evaluate the ε-expressions of Table 1 for given predictions/truths.
pub fn epsilon_expressions(pred: &[f64], truth: &[f64]) -> EpsilonExpressions {
    assert_eq!(pred.len(), truth.len());
    let n = pred.len() as f64;
    let mut out = EpsilonExpressions {
        mape: 0.0,
        mae: 0.0,
        mse: 0.0,
        smape: 0.0,
        lgmape: 0.0,
        mlogq_lead: 0.0,
        mlogq2_lead: 0.0,
    };
    for (&m, &y) in pred.iter().zip(truth) {
        let e = m / y - 1.0;
        out.mape += e.abs();
        out.mae += (y * e).abs();
        out.mse += (y * e) * (y * e);
        out.smape += 2.0 * (e / (2.0 + e)).abs();
        out.lgmape += e.abs().max(1e-16).ln();
        out.mlogq_lead += (e / (1.0 + e)).abs();
        out.mlogq2_lead += (e / (1.0 + e)) * (e / (1.0 + e));
    }
    out.mape /= n;
    out.mae /= n;
    out.mse /= n;
    out.smape /= n;
    out.lgmape /= n;
    out.mlogq_lead /= n;
    out.mlogq2_lead /= n;
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_predictions_zero_error() {
        let y = vec![1.0, 2.0, 3.0];
        let m = Metrics::compute(&y, &y);
        assert_eq!(m.mape, 0.0);
        assert_eq!(m.mae, 0.0);
        assert_eq!(m.mse, 0.0);
        assert_eq!(m.mlogq, 0.0);
        assert_eq!(m.mlogq2, 0.0);
        assert_eq!(m.max_logq, 0.0);
        assert!((m.mean_factor() - 1.0).abs() < 1e-15);
    }

    #[test]
    fn scale_independence_of_mlogq() {
        // Over-prediction by 2x and under-prediction by 2x get equal MLogQ.
        let truth = vec![10.0];
        let over = Metrics::compute(&[20.0], &truth);
        let under = Metrics::compute(&[5.0], &truth);
        assert!((over.mlogq - under.mlogq).abs() < 1e-12);
        assert!((over.mlogq2 - under.mlogq2).abs() < 1e-12);
        // While MAPE is NOT scale-independent (the paper's point).
        assert!((over.mape - 1.0).abs() < 1e-12);
        assert!((under.mape - 0.5).abs() < 1e-12);
    }

    #[test]
    fn known_values() {
        let truth = vec![2.0, 4.0];
        let pred = vec![4.0, 2.0];
        let m = Metrics::compute(&pred, &truth);
        assert!((m.mape - 0.75).abs() < 1e-12); // (1.0 + 0.5)/2
        assert!((m.mae - 2.0).abs() < 1e-12);
        assert!((m.mse - 4.0).abs() < 1e-12);
        assert!((m.mlogq - std::f64::consts::LN_2).abs() < 1e-12);
        assert!((m.max_logq - std::f64::consts::LN_2).abs() < 1e-12);
    }

    #[test]
    fn table1_equivalences_rows_1_to_5() {
        // Rows 1-5 of Table 1 are exact identities.
        let truth = vec![3.0, 7.0, 0.5, 100.0];
        let pred = vec![3.3, 6.0, 0.7, 140.0];
        let m = Metrics::compute(&pred, &truth);
        let e = epsilon_expressions(&pred, &truth);
        assert!((m.mape - e.mape).abs() < 1e-12);
        assert!((m.mae - e.mae).abs() < 1e-12);
        assert!((m.mse - e.mse).abs() < 1e-12);
        assert!((m.smape - e.smape).abs() < 1e-12);
        assert!((m.lgmape - e.lgmape).abs() < 1e-12);
    }

    #[test]
    fn table1_taylor_rows_6_7_small_errors() {
        // Rows 6-7 agree to O(ε²)/O(ε⁴) for small relative errors.
        let truth = vec![10.0, 20.0, 30.0];
        let pred: Vec<f64> = truth.iter().map(|y| y * 1.01).collect();
        let m = Metrics::compute(&pred, &truth);
        let e = epsilon_expressions(&pred, &truth);
        // |log(1+ε)| and |ε/(1+ε)| agree to O(ε²); here ε = 0.01.
        let eps: f64 = 0.01;
        assert!((m.mlogq - e.mlogq_lead).abs() < eps * eps);
        assert!((m.mlogq2 - e.mlogq2_lead).abs() < eps * eps * eps * 2.0);
    }

    #[test]
    fn clamps_nonpositive_predictions() {
        let m = Metrics::compute(&[-1.0], &[1.0]);
        assert!(m.mlogq.is_finite());
        assert!(m.mlogq > 30.0); // |log 1e-16| ≈ 36.8
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_nonpositive_truth() {
        Metrics::compute(&[1.0], &[0.0]);
    }

    #[test]
    fn accum_matches_compute_bitwise() {
        let truth = vec![3.0, 7.0, 0.5, 100.0, 2.0];
        let pred = vec![3.3, 6.0, -0.7, 140.0, 2.0];
        let whole = Metrics::compute(&pred, &truth);
        let mut accum = MetricsAccum::new();
        for (&m, &y) in pred.iter().zip(&truth) {
            accum.push(m, y);
        }
        assert_eq!(accum.count(), 5);
        let streamed = accum.finish();
        assert_eq!(whole, streamed);
        assert_eq!(whole.mlogq.to_bits(), streamed.mlogq.to_bits());
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn accum_rejects_empty_finish() {
        MetricsAccum::new().finish();
    }

    #[test]
    fn holdout_matches_compute_bitwise() {
        let xs = [[1.0, 2.0], [3.0, 4.0], [5.0, 6.0]];
        let ys = [2.0, 5.0, 11.0];
        let predict = |x: &[f64]| x[0] + x[1];
        let pred: Vec<f64> = xs.iter().map(|x| predict(x.as_slice())).collect();
        let whole = Metrics::compute(&pred, &ys);
        let held = holdout_metrics(predict, xs.iter().zip(ys.iter().copied())).unwrap();
        assert_eq!(whole, held);
        assert_eq!(whole.mlogq.to_bits(), held.mlogq.to_bits());
    }

    #[test]
    fn holdout_empty_is_none() {
        let pairs: Vec<(Vec<f64>, f64)> = Vec::new();
        assert!(holdout_metrics(|_| 1.0, pairs).is_none());
    }
}
