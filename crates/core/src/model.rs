//! The CPR performance model (paper §5.1–5.2).
//!
//! Training pipeline:
//! 1. Discretize the parameter space onto a regular grid ([`cpr_grid`]).
//! 2. Map each observed configuration to its grid cell; each observed cell's
//!    tensor entry stores the *mean* execution time of its configurations.
//! 3. Log-transform the entries and fit a rank-`R` CP decomposition by ALS
//!    tensor completion (least-squares loss on log times — §5.2's
//!    `φ(t, t̂) = (log t − t̂)²`), or keep raw positive entries and fit with
//!    the interior-point AMN under MLogQ² loss (§5.3's positive model).
//! 4. Predict with Eq. 5: multilinear interpolation of the completed log
//!    entries over the grid-cell mid-points in `h_j`-space (then
//!    exponentiate — `m(x) = e^{m̂(x)}`), with linear extrapolation at the
//!    domain edges and observed-fiber masking (see `masked_stencils`).

use crate::dataset::Dataset;
use crate::error::{CprError, Result};
use crate::metrics::Metrics;
use cpr_completion::{als, amn, init_positive, AlsConfig, AmnConfig, StopRule, Trace};
use cpr_grid::space::interpolate_corners;
use cpr_grid::{ParamSpace, TensorGrid};
use cpr_tensor::{CpDecomp, SparseTensor};
use rayon::prelude::*;
use std::collections::BTreeMap;

/// Loss/optimizer selection for CPR training.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Loss {
    /// §5.2: minimize `(log t − t̂)²` with ALS; model output is `exp(t̂)`.
    /// Fast, robust, the default for interpolation.
    #[default]
    LogLeastSquares,
    /// §5.3: minimize `(log t − log t̂)²` with interior-point AMN keeping all
    /// factors strictly positive (required for extrapolation).
    MLogQ2,
}

/// Builder for [`CprModel`].
#[derive(Debug, Clone)]
pub struct CprBuilder {
    space: ParamSpace,
    cells: Vec<usize>,
    rank: usize,
    lambda: f64,
    max_sweeps: usize,
    tol: f64,
    seed: u64,
    loss: Loss,
}

impl CprBuilder {
    /// Start a builder over a parameter space with defaults matching the
    /// paper's mid-range configuration (8 cells/dim, rank 4, λ = 1e-5,
    /// 100 ALS sweeps).
    pub fn new(space: ParamSpace) -> Self {
        let d = space.dim();
        Self {
            space,
            cells: vec![8; d],
            rank: 4,
            lambda: 1e-5,
            max_sweeps: 100,
            tol: 1e-6,
            seed: 0,
            loss: Loss::LogLeastSquares,
        }
    }

    /// Same cell count along every numerical mode.
    pub fn cells_per_dim(mut self, cells: usize) -> Self {
        self.cells = vec![cells; self.space.dim()];
        self
    }

    /// Per-mode cell counts (categorical entries are ignored).
    pub fn cells(mut self, cells: Vec<usize>) -> Self {
        self.cells = cells;
        self
    }

    /// CP rank `R` (paper sweeps 1..64).
    pub fn rank(mut self, rank: usize) -> Self {
        self.rank = rank;
        self
    }

    /// Ridge regularization λ (paper sweeps 1e-6..1e-3).
    pub fn regularization(mut self, lambda: f64) -> Self {
        self.lambda = lambda;
        self
    }

    /// Optimizer sweep cap (paper: 100).
    pub fn max_sweeps(mut self, sweeps: usize) -> Self {
        self.max_sweeps = sweeps;
        self
    }

    /// Convergence tolerance on the relative objective decrease.
    pub fn tolerance(mut self, tol: f64) -> Self {
        self.tol = tol;
        self
    }

    /// RNG seed for factor initialization.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Loss/optimizer selection.
    pub fn loss(mut self, loss: Loss) -> Self {
        self.loss = loss;
        self
    }

    /// Fit a CPR model on the dataset.
    pub fn fit(&self, data: &Dataset) -> Result<CprModel> {
        if data.is_empty() {
            return Err(CprError::EmptyDataset);
        }
        if self.rank == 0 {
            return Err(CprError::InvalidConfig("rank must be >= 1".into()));
        }
        if self.cells.len() != self.space.dim() {
            return Err(CprError::InvalidConfig(format!(
                "cells has length {}, space has {} parameters",
                self.cells.len(),
                self.space.dim()
            )));
        }
        if self.cells.contains(&0) {
            return Err(CprError::InvalidConfig("cell counts must be >= 1".into()));
        }
        let d = self.space.dim();
        for (i, (x, y)) in data.iter().enumerate() {
            if x.len() != d {
                return Err(CprError::DimensionMismatch {
                    expected: d,
                    got: x.len(),
                });
            }
            if y <= 0.0 || !y.is_finite() {
                return Err(CprError::NonPositiveTime { index: i, value: y });
            }
        }

        let grid = self.space.grid_with_cells(&self.cells);
        let (mut obs, observed_cells) = bin_observations(&grid, data, self.loss)?;
        // Per-mode masks of rows with at least one observation: stencils
        // never interpolate toward fibers the optimizer saw nothing of.
        let row_observed: Vec<Vec<bool>> = (0..grid.order())
            .map(|m| {
                obs.mode_index(m)
                    .iter()
                    .map(|ids| !ids.is_empty())
                    .collect()
            })
            .collect();

        let stop = StopRule {
            max_sweeps: self.max_sweeps,
            tol: self.tol,
        };
        let (cp, trace, log_offset) = match self.loss {
            Loss::LogLeastSquares => {
                // Center the log times: the completion then models only the
                // variation around the mean, which conditions ALS far better
                // than absorbing a large constant offset into rank-1 energy.
                let mean = obs.values().iter().sum::<f64>() / obs.nnz() as f64;
                obs.map_values_mut(|v| v - mean);
                let mut cp = CpDecomp::random(&grid.dims(), self.rank, 0.0, 1.0, self.seed);
                let cfg = AlsConfig {
                    lambda: self.lambda,
                    stop,
                    scale_by_count: true,
                };
                let trace = als(&mut cp, &obs, &cfg);
                (cp, trace, mean)
            }
            Loss::MLogQ2 => {
                let gm = geometric_mean(obs.values());
                let mut cp = init_positive(&grid.dims(), self.rank, gm, self.seed);
                let cfg = AmnConfig {
                    lambda: self.lambda,
                    stop,
                    ..Default::default()
                };
                let trace = amn(&mut cp, &obs, &cfg);
                (cp, trace, 0.0)
            }
        };
        Ok(CprModel {
            grid,
            cp,
            loss: self.loss,
            trace,
            observed_cells,
            samples: data.len(),
            log_offset,
            row_observed,
        })
    }
}

/// Bin observations into grid cells; tensor entries are per-cell means.
/// Returns the sparse observation tensor and the number of observed cells.
fn bin_observations(
    grid: &TensorGrid,
    data: &Dataset,
    loss: Loss,
) -> Result<(SparseTensor, usize)> {
    // BTreeMap: deterministic iteration order keeps the whole training
    // pipeline bit-reproducible (HashMap order would perturb float sums).
    let mut cells: BTreeMap<Vec<usize>, (f64, usize)> = BTreeMap::new();
    for (x, y) in data.iter() {
        let idx = grid.cell_index(x);
        let entry = cells.entry(idx).or_insert((0.0, 0));
        entry.0 += y;
        entry.1 += 1;
    }
    if cells.is_empty() {
        return Err(CprError::NoObservedCells);
    }
    let observed = cells.len();
    let mut obs = SparseTensor::new(&grid.dims());
    obs.extend_from(cells.into_iter().map(|(idx, (sum, count))| {
        let mean = sum / count as f64;
        let value = match loss {
            Loss::LogLeastSquares => mean.ln(),
            Loss::MLogQ2 => mean,
        };
        (idx, value)
    }));
    Ok((obs, observed))
}

fn geometric_mean(values: &[f64]) -> f64 {
    (values.iter().map(|v| v.max(1e-300).ln()).sum::<f64>() / values.len().max(1) as f64).exp()
}

/// A trained CPR performance model.
#[derive(Debug, Clone)]
pub struct CprModel {
    grid: TensorGrid,
    cp: CpDecomp,
    loss: Loss,
    trace: Trace,
    observed_cells: usize,
    samples: usize,
    /// Mean log time subtracted before completion (LogLeastSquares only).
    log_offset: f64,
    /// Per-mode flags: does row `i` of mode `j` have any observation?
    row_observed: Vec<Vec<bool>>,
}

impl CprModel {
    /// Reassemble a model from its serialized parts (deserialization path).
    /// Validates that the CP factors match the grid the specs induce.
    pub fn from_parts(
        space: ParamSpace,
        cells: &[usize],
        cp: CpDecomp,
        loss: Loss,
        log_offset: f64,
    ) -> Result<CprModel> {
        if cells.len() != space.dim() {
            return Err(CprError::InvalidConfig("cells length != space dim".into()));
        }
        let grid = space.grid_with_cells(cells);
        if cp.dims() != grid.dims() {
            return Err(CprError::InvalidConfig(format!(
                "factor dims {:?} do not match grid dims {:?}",
                cp.dims(),
                grid.dims()
            )));
        }
        let row_observed = grid.dims().iter().map(|&d| vec![true; d]).collect();
        Ok(CprModel {
            grid,
            cp,
            loss,
            trace: Trace::default(),
            observed_cells: 0,
            samples: 0,
            log_offset,
            row_observed,
        })
    }

    /// Predict the execution time of a configuration (Eq. 5).
    ///
    /// §5.2 defines the model as `m(x) = e^{m̂(x)}` with `m̂` trained on log
    /// times, so interpolation runs in log space and the result is
    /// exponentiated (exact on power laws; interpolating `e^{t̂}` linearly
    /// instead would over-predict by `cosh(Δ/2)` across cells spanning `Δ`
    /// decades). The MLogQ² model stores positive linear-space entries;
    /// its entries are logged for interpolation for the same reason.
    pub fn predict(&self, x: &[f64]) -> f64 {
        assert_eq!(
            x.len(),
            self.grid.order(),
            "predict: configuration order mismatch"
        );
        let stencils = self.masked_stencils(x);
        let log_pred = match self.loss {
            Loss::LogLeastSquares => {
                interpolate_corners(&stencils, |idx| self.cp.eval(idx)) + self.log_offset
            }
            Loss::MLogQ2 => {
                interpolate_corners(&stencils, |idx| self.cp.eval(idx).max(1e-300).ln())
            }
        };
        // Clamp: |log| beyond ~690 would overflow f64 anyway, and edge-cell
        // linear extrapolation must not produce absurd magnitudes.
        log_pred.clamp(-690.0, 690.0).exp()
    }

    /// Eq. 5 stencils with two robustness adjustments over the raw grid
    /// lookup: a mode degrades to a point stencil when its neighbouring
    /// fiber was never observed (the completion carries no information
    /// there), and edge-extrapolation weights are clamped to [-1, 2] so a
    /// query at the domain boundary cannot amplify a single cell estimate
    /// unboundedly.
    fn masked_stencils(&self, x: &[f64]) -> Vec<(usize, usize, f64)> {
        let mut stencils = self.grid.stencils(x);
        for (j, st) in stencils.iter_mut().enumerate() {
            let (i0, i1, w1) = *st;
            if i0 == i1 {
                continue;
            }
            let o0 = self.row_observed[j][i0];
            let o1 = self.row_observed[j][i1];
            *st = match (o0, o1) {
                (true, false) => (i0, i0, 0.0),
                (false, true) => (i1, i1, 0.0),
                _ => (i0, i1, w1.clamp(-1.0, 2.0)),
            };
        }
        stencils
    }

    /// Predict a batch of configurations, in parallel across samples.
    /// Accepts any slice of feature-vector-shaped values (`&[Vec<f64>]`,
    /// `&[Sample]`, …); output order matches input order.
    pub fn predict_batch<X: AsRef<[f64]> + Sync>(&self, xs: &[X]) -> Vec<f64> {
        xs.par_iter().map(|x| self.predict(x.as_ref())).collect()
    }

    /// Evaluate against a labeled dataset (predictions run in parallel via
    /// [`Self::predict_batch`]).
    pub fn evaluate(&self, data: &Dataset) -> Metrics {
        let preds = self.predict_batch(data.samples());
        Metrics::compute(&preds, &data.ys())
    }

    /// The completed-tensor estimate `t̂_i` at a tensor multi-index, in time
    /// units (exponentiated when the model trains in log space).
    pub fn tensor_estimate(&self, idx: &[usize]) -> f64 {
        match self.loss {
            Loss::LogLeastSquares => (self.cp.eval(idx) + self.log_offset).exp(),
            Loss::MLogQ2 => self.cp.eval(idx),
        }
    }

    /// Underlying CP decomposition.
    pub fn cp(&self) -> &CpDecomp {
        &self.cp
    }

    /// Grid discretization used at training time.
    pub fn grid(&self) -> &TensorGrid {
        &self.grid
    }

    /// Mean log time subtracted before completion (0 for MLogQ² models).
    pub fn log_offset(&self) -> f64 {
        self.log_offset
    }

    /// Refresh the observed-row masks from an observation tensor (used by
    /// the streaming updater after warm-started refits).
    pub fn set_row_observed_from(&mut self, obs: &SparseTensor) {
        self.row_observed = (0..self.grid.order())
            .map(|m| {
                obs.mode_index(m)
                    .iter()
                    .map(|ids| !ids.is_empty())
                    .collect()
            })
            .collect();
    }

    /// Training loss selection.
    pub fn loss(&self) -> Loss {
        self.loss
    }

    /// Optimizer trace (objective per sweep).
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Number of grid cells with at least one training observation.
    pub fn observed_cells(&self) -> usize {
        self.observed_cells
    }

    /// Observed fill fraction of the tensor `|Ω| / Π I_j`.
    pub fn density(&self) -> f64 {
        self.observed_cells as f64 / self.grid.cell_count() as f64
    }

    /// Training-set size.
    pub fn training_samples(&self) -> usize {
        self.samples
    }

    /// Serialized model size in bytes: factor matrices + grid metadata —
    /// the quantity Figure 7 plots.
    pub fn size_bytes(&self) -> usize {
        // Per axis: boundaries + midpoints (f64 each) + small header.
        let grid_bytes: usize = (0..self.grid.order())
            .map(|m| {
                let a = self.grid.axis(m);
                (a.boundaries().len() + a.midpoints().len()) * 8 + 16
            })
            .sum();
        self.cp.size_bytes() + grid_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpr_grid::ParamSpec;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Separable two-parameter "execution time": t = 1e-3 * m^1.2 * n^0.8.
    fn separable_dataset(n_samples: usize, seed: u64) -> (ParamSpace, Dataset) {
        let space = ParamSpace::new(vec![
            ParamSpec::log("m", 32.0, 4096.0),
            ParamSpec::log("n", 32.0, 4096.0),
        ]);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut data = Dataset::new();
        for _ in 0..n_samples {
            let m = 32.0 * (4096.0_f64 / 32.0).powf(rng.gen::<f64>());
            let n = 32.0 * (4096.0_f64 / 32.0).powf(rng.gen::<f64>());
            let t = 1e-3 * m.powf(1.2) * n.powf(0.8);
            data.push(vec![m, n], t);
        }
        (space, data)
    }

    #[test]
    fn fits_separable_power_law_interpolation() {
        let (space, train) = separable_dataset(2000, 1);
        let (_, test) = separable_dataset(200, 2);
        // 16 cells/dim keeps the Eq. 5 convexity error (interpolating
        // exp(t̂) linearly, O(h²/8) per cell) within a few percent.
        let model = CprBuilder::new(space)
            .cells_per_dim(16)
            .rank(2)
            .regularization(1e-7)
            .fit(&train)
            .unwrap();
        let m = model.evaluate(&test);
        assert!(
            m.mlogq < 0.05,
            "MLogQ {} too high for separable data",
            m.mlogq
        );
    }

    #[test]
    fn mlogq2_loss_also_fits_and_is_positive() {
        let (space, train) = separable_dataset(1200, 3);
        let (_, test) = separable_dataset(150, 4);
        let model = CprBuilder::new(space)
            .cells_per_dim(10)
            .rank(2)
            .regularization(1e-7)
            .loss(Loss::MLogQ2)
            .fit(&train)
            .unwrap();
        assert!(model.cp().is_strictly_positive());
        let m = model.evaluate(&test);
        assert!(m.mlogq < 0.12, "MLogQ {}", m.mlogq);
    }

    #[test]
    fn rejects_bad_inputs() {
        let (space, mut data) = separable_dataset(50, 5);
        assert!(matches!(
            CprBuilder::new(space.clone()).fit(&Dataset::new()),
            Err(CprError::EmptyDataset)
        ));
        assert!(matches!(
            CprBuilder::new(space.clone()).rank(0).fit(&data),
            Err(CprError::InvalidConfig(_))
        ));
        assert!(matches!(
            CprBuilder::new(space.clone()).cells(vec![4]).fit(&data),
            Err(CprError::InvalidConfig(_))
        ));
        data.push(vec![100.0, 100.0], -1.0);
        assert!(matches!(
            CprBuilder::new(space).fit(&data),
            Err(CprError::NonPositiveTime { .. })
        ));
    }

    #[test]
    fn dimension_mismatch_detected() {
        let (space, _) = separable_dataset(1, 6);
        let mut data = Dataset::new();
        data.push(vec![100.0], 1.0);
        assert!(matches!(
            CprBuilder::new(space).fit(&data),
            Err(CprError::DimensionMismatch {
                expected: 2,
                got: 1
            })
        ));
    }

    #[test]
    fn density_and_observed_cells() {
        let (space, train) = separable_dataset(500, 7);
        let model = CprBuilder::new(space)
            .cells_per_dim(4)
            .rank(1)
            .fit(&train)
            .unwrap();
        assert!(model.observed_cells() <= 16);
        assert!(model.density() > 0.5, "4x4 grid should be mostly observed");
        assert_eq!(model.training_samples(), 500);
    }

    #[test]
    fn size_grows_linearly_with_rank() {
        let (space, train) = separable_dataset(500, 8);
        let m1 = CprBuilder::new(space.clone())
            .cells_per_dim(8)
            .rank(1)
            .fit(&train)
            .unwrap();
        let m4 = CprBuilder::new(space)
            .cells_per_dim(8)
            .rank(4)
            .fit(&train)
            .unwrap();
        // Factor storage scales exactly 4x with rank; the constant grid
        // metadata rides on top.
        assert_eq!(m4.cp().size_bytes(), 4 * m1.cp().size_bytes());
        let overhead = m1.size_bytes() - m1.cp().size_bytes();
        assert_eq!(m4.size_bytes() - m4.cp().size_bytes(), overhead);
    }

    #[test]
    fn higher_rank_does_not_hurt_much_on_low_rank_data() {
        let (space, train) = separable_dataset(2000, 9);
        let (_, test) = separable_dataset(200, 10);
        let e = |rank| {
            CprBuilder::new(space.clone())
                .cells_per_dim(8)
                .rank(rank)
                .regularization(1e-6)
                .fit(&train)
                .unwrap()
                .evaluate(&test)
                .mlogq
        };
        let (e1, e8) = (e(1), e(8));
        assert!(e8 < e1 * 3.0 + 0.05, "rank-8 {e8} vs rank-1 {e1}");
    }

    #[test]
    fn predictions_positive_even_at_domain_edges() {
        let (space, train) = separable_dataset(800, 11);
        let model = CprBuilder::new(space)
            .cells_per_dim(8)
            .rank(2)
            .fit(&train)
            .unwrap();
        for probe in [[32.0, 32.0], [4096.0, 4096.0], [32.0, 4096.0]] {
            assert!(model.predict(&probe) > 0.0);
        }
    }

    #[test]
    fn categorical_parameter_handled() {
        // Time depends on a categorical "algorithm" with distinct constants.
        let space = ParamSpace::new(vec![
            ParamSpec::log("n", 16.0, 1024.0),
            ParamSpec::categorical("alg", 3),
        ]);
        let mut rng = StdRng::seed_from_u64(12);
        let mut data = Dataset::new();
        for _ in 0..1500 {
            let n = 16.0 * 64.0_f64.powf(rng.gen::<f64>());
            let alg = rng.gen_range(0..3usize);
            let scale = [1.0, 3.5, 0.4][alg];
            data.push(vec![n, alg as f64], 1e-4 * scale * n.powf(1.5));
        }
        let model = CprBuilder::new(space)
            .cells(vec![8, 3])
            .rank(2)
            .regularization(1e-7)
            .fit(&data)
            .unwrap();
        let p0 = model.predict(&[256.0, 0.0]);
        let p1 = model.predict(&[256.0, 1.0]);
        let p2 = model.predict(&[256.0, 2.0]);
        assert!((p1 / p0 - 3.5).abs() < 0.7, "ratio {}", p1 / p0);
        assert!((p2 / p0 - 0.4).abs() < 0.2, "ratio {}", p2 / p0);
    }

    #[test]
    fn trace_is_recorded() {
        let (space, train) = separable_dataset(300, 13);
        let model = CprBuilder::new(space)
            .cells_per_dim(4)
            .rank(2)
            .fit(&train)
            .unwrap();
        assert!(model.trace().sweeps() >= 1);
        assert!(model.trace().final_objective().is_finite());
    }
}
