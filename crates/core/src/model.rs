//! The CPR performance model (paper §5.1–5.2).
//!
//! Training pipeline:
//! 1. Discretize the parameter space onto a regular grid ([`cpr_grid`]).
//! 2. Map each observed configuration to its grid cell; each observed cell's
//!    tensor entry stores the *mean* execution time of its configurations.
//! 3. Log-transform the entries and fit a rank-`R` CP decomposition by ALS
//!    tensor completion (least-squares loss on log times — §5.2's
//!    `φ(t, t̂) = (log t − t̂)²`), or keep raw positive entries and fit with
//!    the interior-point AMN under MLogQ² loss (§5.3's positive model).
//! 4. Predict with Eq. 5: multilinear interpolation of the completed log
//!    entries over the grid-cell mid-points in `h_j`-space (then
//!    exponentiate — `m(x) = e^{m̂(x)}`), with linear extrapolation at the
//!    domain edges and observed-fiber masking (see `masked_stencils`).

use crate::dataset::Dataset;
use crate::error::{CprError, Result};
use crate::metrics::{Metrics, MetricsAccum};
use cpr_completion::{complete, init_positive, CompletionSpec, Optimizer, StopRule, Trace};
use cpr_grid::space::interpolate_corners;
use cpr_grid::{AxisTable, ParamSpace, TensorGrid};
use cpr_tensor::{CpDecomp, Decomposition, PackedFactors, SparseTensor, TuckerDecomp};
use rayon::prelude::*;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Loss/optimizer selection for CPR training.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Loss {
    /// §5.2: minimize `(log t − t̂)²` with ALS; model output is `exp(t̂)`.
    /// Fast, robust, the default for interpolation.
    #[default]
    LogLeastSquares,
    /// §5.3: minimize `(log t − log t̂)²` with interior-point AMN keeping all
    /// factors strictly positive (required for extrapolation).
    MLogQ2,
}

/// Grid-cell specification of a [`FitSpec`]: one count shared by every
/// mode, or explicit per-mode counts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Cells {
    /// Same cell count along every mode (categorical modes still use their
    /// cardinality when the grid is built).
    PerDim(usize),
    /// Explicit per-mode cell counts; the length must match the parameter
    /// space dimension at fit time.
    PerMode(Vec<usize>),
}

impl Cells {
    /// Materialize per-mode counts for a `d`-parameter space.
    fn resolve(&self, d: usize) -> Result<Vec<usize>> {
        let cells = match self {
            Cells::PerDim(c) => vec![*c; d],
            Cells::PerMode(v) => {
                if v.len() != d {
                    return Err(CprError::InvalidConfig(format!(
                        "cells has length {}, space has {d} parameters",
                        v.len()
                    )));
                }
                v.clone()
            }
        };
        if cells.contains(&0) {
            return Err(CprError::InvalidConfig("cell counts must be >= 1".into()));
        }
        Ok(cells)
    }
}

/// The full fit configuration, independent of any one optimizer: grid
/// cells, rank(s), regularization, sweep budget, tolerance, seed, loss,
/// and the optimizer itself. One `FitSpec` drives any of the five §4.2
/// optimizers through [`CprBuilder::fit`]; the extrapolation and streaming
/// layers reuse it instead of duplicating fields.
///
/// `loss` and `optimizer` are both optional and resolved jointly at fit
/// time (see [`FitSpec::resolve`]): leaving both unset fits ALS under the
/// log-least-squares loss (the paper's §5.2 default); setting only the
/// MLogQ² loss selects AMN (§5.3's positive regime); setting only the
/// optimizer picks the loss family it optimizes. Explicitly contradictory
/// pairs (AMN with least squares, SGD with MLogQ²) are configuration
/// errors, reported as [`CprError::InvalidConfig`].
#[derive(Debug, Clone)]
pub struct FitSpec {
    /// Grid cells per mode (paper sweeps 4..64 per dimension).
    pub cells: Cells,
    /// CP rank `R` (paper sweeps 1..64); also the default per-mode
    /// multilinear rank for Tucker-ALS.
    pub rank: usize,
    /// Per-mode multilinear ranks for [`Optimizer::TuckerAls`]; `None`
    /// means `rank` along every mode. Ignored by the CP optimizers.
    pub tucker_ranks: Option<Vec<usize>>,
    /// Ridge regularization λ (paper sweeps 1e-6..1e-3).
    pub lambda: f64,
    /// Optimizer sweep cap (paper: 100).
    pub max_sweeps: usize,
    /// Convergence tolerance on the relative objective decrease.
    pub tol: f64,
    /// RNG seed for factor initialization (and SGD's shuffle).
    pub seed: u64,
    /// Loss selection; `None` = derived from the optimizer.
    pub loss: Option<Loss>,
    /// Optimizer selection; `None` = derived from the loss.
    pub optimizer: Option<Optimizer>,
}

impl Default for FitSpec {
    /// The paper's mid-range configuration: 8 cells/dim, rank 4, λ = 1e-5,
    /// 100 sweeps, ALS under log-least-squares.
    fn default() -> Self {
        Self {
            cells: Cells::PerDim(8),
            rank: 4,
            tucker_ranks: None,
            lambda: 1e-5,
            max_sweeps: 100,
            tol: 1e-6,
            seed: 0,
            loss: None,
            optimizer: None,
        }
    }
}

impl FitSpec {
    /// The stopping rule this spec induces.
    pub fn stop_rule(&self) -> StopRule {
        StopRule {
            max_sweeps: self.max_sweeps,
            tol: self.tol,
        }
    }

    /// Resolve the `(optimizer, loss)` pair, validating compatibility:
    /// AMN maintains positive factors and therefore pairs only with the
    /// MLogQ² loss; every other optimizer minimizes least squares over
    /// log-transformed entries and pairs only with
    /// [`Loss::LogLeastSquares`].
    pub fn resolve(&self) -> Result<(Optimizer, Loss)> {
        let pair = match (self.optimizer, self.loss) {
            (None, None) => (Optimizer::Als, Loss::LogLeastSquares),
            (None, Some(Loss::LogLeastSquares)) => (Optimizer::Als, Loss::LogLeastSquares),
            (None, Some(Loss::MLogQ2)) => (Optimizer::Amn, Loss::MLogQ2),
            (Some(opt), None) => {
                let loss = if opt.requires_positive() {
                    Loss::MLogQ2
                } else {
                    Loss::LogLeastSquares
                };
                (opt, loss)
            }
            (Some(opt), Some(loss)) => {
                let positive = loss == Loss::MLogQ2;
                if opt.requires_positive() != positive {
                    return Err(CprError::InvalidConfig(format!(
                        "optimizer {} does not optimize the {loss:?} loss",
                        opt.name()
                    )));
                }
                (opt, loss)
            }
        };
        Ok(pair)
    }

    /// Per-mode decomposition ranks for a `d`-mode grid: `tucker_ranks`
    /// when set (validated), else `rank` everywhere.
    fn resolved_ranks(&self, d: usize) -> Result<Vec<usize>> {
        match &self.tucker_ranks {
            None => Ok(vec![self.rank; d]),
            Some(r) => {
                if r.len() != d {
                    return Err(CprError::InvalidConfig(format!(
                        "tucker_ranks has length {}, space has {d} parameters",
                        r.len()
                    )));
                }
                if r.contains(&0) {
                    return Err(CprError::InvalidConfig("ranks must be >= 1".into()));
                }
                Ok(r.clone())
            }
        }
    }
}

/// Builder for [`CprModel`]: a [`ParamSpace`] plus a [`FitSpec`], with
/// fluent setters for every spec field. One builder fits with any of the
/// five optimizers (`.optimizer(Optimizer::Ccd)` etc.); the extrapolation
/// ([`crate::CprExtrapolatorBuilder`]) and streaming
/// ([`crate::StreamingCpr`]) entry points wrap this same builder instead
/// of duplicating its fields.
#[derive(Debug, Clone)]
pub struct CprBuilder {
    space: ParamSpace,
    spec: FitSpec,
}

impl CprBuilder {
    /// Start a builder over a parameter space with [`FitSpec::default`]
    /// (the paper's mid-range configuration: 8 cells/dim, rank 4,
    /// λ = 1e-5, 100 ALS sweeps).
    pub fn new(space: ParamSpace) -> Self {
        Self {
            space,
            spec: FitSpec::default(),
        }
    }

    /// Replace the whole fit configuration at once.
    pub fn with_spec(mut self, spec: FitSpec) -> Self {
        self.spec = spec;
        self
    }

    /// The parameter space this builder discretizes.
    pub fn space(&self) -> &ParamSpace {
        &self.space
    }

    /// The current fit configuration.
    pub fn spec(&self) -> &FitSpec {
        &self.spec
    }

    /// Same cell count along every numerical mode.
    pub fn cells_per_dim(mut self, cells: usize) -> Self {
        self.spec.cells = Cells::PerDim(cells);
        self
    }

    /// Per-mode cell counts (categorical entries are ignored).
    pub fn cells(mut self, cells: Vec<usize>) -> Self {
        self.spec.cells = Cells::PerMode(cells);
        self
    }

    /// CP rank `R` (paper sweeps 1..64). For [`Optimizer::TuckerAls`] this
    /// is the default per-mode multilinear rank.
    pub fn rank(mut self, rank: usize) -> Self {
        self.spec.rank = rank;
        self
    }

    /// Per-mode multilinear ranks for [`Optimizer::TuckerAls`].
    pub fn tucker_ranks(mut self, ranks: Vec<usize>) -> Self {
        self.spec.tucker_ranks = Some(ranks);
        self
    }

    /// Ridge regularization λ (paper sweeps 1e-6..1e-3).
    pub fn regularization(mut self, lambda: f64) -> Self {
        self.spec.lambda = lambda;
        self
    }

    /// Optimizer sweep cap (paper: 100).
    pub fn max_sweeps(mut self, sweeps: usize) -> Self {
        self.spec.max_sweeps = sweeps;
        self
    }

    /// Convergence tolerance on the relative objective decrease.
    pub fn tolerance(mut self, tol: f64) -> Self {
        self.spec.tol = tol;
        self
    }

    /// RNG seed for factor initialization.
    pub fn seed(mut self, seed: u64) -> Self {
        self.spec.seed = seed;
        self
    }

    /// Loss selection. Without an explicit [`Self::optimizer`], selecting
    /// [`Loss::MLogQ2`] selects AMN (the only optimizer of that loss).
    pub fn loss(mut self, loss: Loss) -> Self {
        self.spec.loss = Some(loss);
        self
    }

    /// Optimizer selection (see [`FitSpec::resolve`] for loss pairing).
    pub fn optimizer(mut self, optimizer: Optimizer) -> Self {
        self.spec.optimizer = Some(optimizer);
        self
    }

    /// Fit a CPR model on the dataset with the configured optimizer.
    pub fn fit(&self, data: &Dataset) -> Result<CprModel> {
        if data.is_empty() {
            return Err(CprError::EmptyDataset);
        }
        if self.spec.rank == 0 {
            return Err(CprError::InvalidConfig("rank must be >= 1".into()));
        }
        let d = self.space.dim();
        let cells = self.spec.cells.resolve(d)?;
        let (optimizer, loss) = self.spec.resolve()?;
        for (i, (x, y)) in data.iter().enumerate() {
            if x.len() != d {
                return Err(CprError::DimensionMismatch {
                    expected: d,
                    got: x.len(),
                });
            }
            if y <= 0.0 || !y.is_finite() {
                return Err(CprError::NonPositiveTime { index: i, value: y });
            }
        }

        let grid = self.space.grid_with_cells(&cells);
        let (mut obs, observed_cells) = bin_observations(&grid, data, loss)?;
        // Per-mode masks of rows with at least one observation: stencils
        // never interpolate toward fibers the optimizer saw nothing of.
        let row_observed: Vec<Vec<bool>> = (0..grid.order())
            .map(|m| {
                obs.mode_index(m)
                    .iter()
                    .map(|ids| !ids.is_empty())
                    .collect()
            })
            .collect();

        // Initialize the decomposition the optimizer's model class needs.
        let dims = grid.dims();
        let (mut decomp, log_offset) = match loss {
            Loss::LogLeastSquares => {
                // Center the log times: the completion then models only the
                // variation around the mean, which conditions the sweeps far
                // better than absorbing a large constant offset into rank-1
                // energy.
                let mean = obs.values().iter().sum::<f64>() / obs.nnz() as f64;
                obs.map_values_mut(|v| v - mean);
                let decomp = if optimizer.fits_tucker() {
                    let ranks = self.spec.resolved_ranks(grid.order())?;
                    Decomposition::Tucker(TuckerDecomp::random(
                        &dims,
                        &ranks,
                        0.0,
                        1.0,
                        self.spec.seed,
                    ))
                } else {
                    Decomposition::Cp(CpDecomp::random(
                        &dims,
                        self.spec.rank,
                        0.0,
                        1.0,
                        self.spec.seed,
                    ))
                };
                (decomp, mean)
            }
            Loss::MLogQ2 => {
                let gm = geometric_mean(obs.values());
                let cp = init_positive(&dims, self.spec.rank, gm, self.spec.seed);
                (Decomposition::Cp(cp), 0.0)
            }
        };
        let trace = complete(
            &mut decomp,
            &obs,
            optimizer,
            &CompletionSpec {
                lambda: self.spec.lambda,
                stop: self.spec.stop_rule(),
                seed: self.spec.seed,
            },
        );
        let plan = Arc::new(PredictPlan::bake(
            &grid,
            &decomp,
            loss,
            log_offset,
            &row_observed,
        ));
        Ok(CprModel {
            space: self.space.clone(),
            grid,
            decomp,
            optimizer,
            loss,
            trace,
            observed_cells,
            samples: data.len(),
            log_offset,
            row_observed,
            plan,
        })
    }
}

/// Bin observations into grid cells; tensor entries are per-cell means.
/// Returns the sparse observation tensor and the number of observed cells.
fn bin_observations(
    grid: &TensorGrid,
    data: &Dataset,
    loss: Loss,
) -> Result<(SparseTensor, usize)> {
    // BTreeMap: deterministic iteration order keeps the whole training
    // pipeline bit-reproducible (HashMap order would perturb float sums).
    let mut cells: BTreeMap<Vec<usize>, (f64, usize)> = BTreeMap::new();
    for (x, y) in data.iter() {
        let idx = grid.cell_index(x);
        let entry = cells.entry(idx).or_insert((0.0, 0));
        entry.0 += y;
        entry.1 += 1;
    }
    if cells.is_empty() {
        return Err(CprError::NoObservedCells);
    }
    let observed = cells.len();
    let mut obs = SparseTensor::new(&grid.dims());
    obs.extend_from(cells.into_iter().map(|(idx, (sum, count))| {
        let mean = sum / count as f64;
        let value = match loss {
            Loss::LogLeastSquares => mean.ln(),
            Loss::MLogQ2 => mean,
        };
        (idx, value)
    }));
    Ok((obs, observed))
}

fn geometric_mean(values: &[f64]) -> f64 {
    (values.iter().map(|v| v.max(1e-300).ln()).sum::<f64>() / values.len().max(1) as f64).exp()
}

/// Tensor orders served through stack-allocated query scratch. Real models
/// are order ≤ 7 (paper Table 2); higher orders fall back to a per-call
/// heap allocation, still bitwise-correct.
const PLAN_STACK_ORDER: usize = 16;
/// Mirrors `cpr_tensor`'s stack-accumulator rank bound.
const PLAN_STACK_RANK: usize = 64;
/// Largest order with its own monomorphized kernel instance (fully
/// unrolled stencil/corner loops); orders above share one bounded body.
const MONO_ORDER_MAX: usize = 6;
/// Degenerate-stencil marker in the baked per-query scratch: a mode whose
/// stencil collapsed to a point stores this in place of its hi-corner
/// offset (valid offsets are bounded far below by [`DENSE_EVAL_MAX`]).
const DEGEN: u32 = u32::MAX;
/// Largest grid (in cells) pre-evaluated into the dense corner-value table
/// at bake time. 64k cells = 512 KiB of doubles — covers every paper-scale
/// grid (8⁵ = 32k) while bounding both bake time (`O(cells · d · R)`) and
/// the plan's memory footprint. Larger grids serve through the factor
/// gather instead.
const DENSE_EVAL_MAX: usize = 1 << 16;

/// Compiled query path: a one-time "bake" of a fitted [`CprModel`] into a
/// query-optimized representation.
///
/// The naive predict path pays, per call, three heap allocations (stencil
/// vector, corner index vector, batch collect), a [`cpr_grid::ParamSpec`]
/// dispatch plus midpoint binary search plus three `h`-transforms per mode,
/// and per-corner factor gathers that chase `Vec<Matrix>` pointers. The
/// plan bakes all of it once:
///
/// * per-axis [`AxisTable`]s — h-transformed midpoints and bracket widths
///   precomputed, direct index lookup on linear/log axes (binary search
///   only on nudged integer axes);
/// * a [`PackedFactors`] copy of the CP factors — every per-mode gather is
///   a contiguous rank-length row read from one allocation;
/// * the observed-row masks, so Eq. 5 stencil masking needs no grid access.
///
/// Serving then runs with **zero allocations per query** (stack scratch up
/// to order 16 / rank 64) and [`Self::predict_into`] fans a batch out over
/// the crate thread pool in fixed chunks onto a caller-provided buffer.
///
/// Determinism contract: `plan.predict(x)` is **bitwise identical** to the
/// naive reference path [`CprModel::predict_naive`] for every non-NaN
/// query, at any thread count, and batch outputs are written in input
/// order. The equivalence is pinned by proptests over random models,
/// axis kinds, and losses.
///
/// A plan is a bake, not a view: [`CprModel`] rebakes it whenever the
/// factors or observation masks change (fit, deserialization,
/// [`CprModel::set_row_observed_from`], streaming refits).
// The registry's shard/hot-swap design shares one baked plan across reader
// threads; every field is plain owned data, so the auto-impls must never
// silently disappear under a future field change.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<PredictPlan>();
    assert_send_sync::<CprModel>();
};

#[derive(Debug, Clone)]
pub struct PredictPlan {
    tables: Vec<AxisTable>,
    packed: PackedFactors,
    /// Per-mode flags: does row `i` of mode `j` have any observation?
    row_observed: Vec<Vec<bool>>,
    loss: Loss,
    log_offset: f64,
    /// CP rank, or the maximum multilinear rank for Tucker (sizes the
    /// factor-gather scratch; unused on the dense path).
    rank: usize,
    /// The Tucker core behind the bake, when the decomposition is Tucker
    /// (the factor rows already live in `packed`): grids beyond the dense
    /// cap serve corner values through [`cpr_tensor::eval_core_packed`]
    /// instead of the CP Hadamard kernels.
    tucker_core: Option<cpr_tensor::DenseTensor>,
    /// Pre-evaluated corner values over the whole grid, when it fits.
    dense: Option<DenseEval>,
}

/// The partial-evaluation half of the bake: corner values depend only on
/// grid indices, never on the query, so for grids up to [`DENSE_EVAL_MAX`]
/// cells the plan evaluates the completed tensor at *every* grid point
/// once. Serving then replaces the per-corner `O(d·R)` factor gather with
/// one table load. `values[flat]` holds exactly what the naive per-corner
/// closure computes — `cp.eval(idx)` for the log-least-squares model,
/// `cp.eval(idx).max(1e-300).ln()` for MLogQ² — so the bitwise contract is
/// inherited by construction.
#[derive(Debug, Clone)]
struct DenseEval {
    values: Vec<f64>,
    /// Row-major strides over the grid dims (`u32`: the size cap keeps
    /// every flat index well under 2³²).
    strides: Vec<u32>,
}

impl PredictPlan {
    /// Bake a plan from model parts (used by [`CprModel`] constructors).
    /// Works for either decomposition variant: the dense corner-value bake
    /// and the per-query machinery are variant-agnostic; only the
    /// factor-gather fallback dispatches (CP Hadamard kernels vs. packed
    /// Tucker evaluation).
    fn bake(
        grid: &TensorGrid,
        decomp: &Decomposition,
        loss: Loss,
        log_offset: f64,
        row_observed: &[Vec<bool>],
    ) -> Self {
        let packed = decomp.packed();
        let dense = Self::bake_dense(decomp, &packed, &grid.dims(), loss);
        Self {
            tables: grid.bake_tables(),
            packed,
            row_observed: row_observed.to_vec(),
            loss,
            log_offset,
            rank: decomp.max_rank(),
            tucker_core: decomp.as_tucker().map(|t| t.core().clone()),
            dense,
        }
    }

    /// Evaluate the completed tensor at every grid cell (row-major), in
    /// corner-value form. `None` when the grid is too large or the order
    /// exceeds the stack-kernel bound.
    fn bake_dense(
        decomp: &Decomposition,
        packed: &PackedFactors,
        dims: &[usize],
        loss: Loss,
    ) -> Option<DenseEval> {
        let d = dims.len();
        if d > PLAN_STACK_ORDER {
            return None;
        }
        let cells = dims
            .iter()
            .try_fold(1usize, |a, &b| a.checked_mul(b))
            .filter(|&c| c > 0 && c <= DENSE_EVAL_MAX)?;
        let mut strides = vec![1u32; d];
        for j in (0..d.saturating_sub(1)).rev() {
            strides[j] = strides[j + 1] * dims[j + 1] as u32;
        }
        let mut values = vec![0.0; cells];
        let mut idx = vec![0usize; d];
        for v in values.iter_mut() {
            let raw = decomp.eval_packed(packed, &idx);
            *v = match loss {
                Loss::LogLeastSquares => raw,
                Loss::MLogQ2 => raw.max(1e-300).ln(),
            };
            // Row-major odometer: last axis fastest.
            for j in (0..d).rev() {
                idx[j] += 1;
                if idx[j] < dims[j] {
                    break;
                }
                idx[j] = 0;
            }
        }
        Some(DenseEval { values, strides })
    }

    /// Tensor order `d`.
    pub fn order(&self) -> usize {
        self.tables.len()
    }

    /// CP rank of the baked factors.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Whether the bake carried the dense corner-value table (grids up to
    /// `DENSE_EVAL_MAX` cells). When `false` queries run the factor-gather
    /// fallback — bitwise-identical output, more work per corner.
    pub fn has_dense_cache(&self) -> bool {
        self.dense.is_some()
    }

    /// Bytes held by the dense corner-value table alone (0 when absent) —
    /// the quantity a serving tier budgets, since the table dominates a
    /// small-grid plan's footprint.
    pub fn dense_cache_bytes(&self) -> usize {
        self.dense
            .as_ref()
            .map_or(0, |de| de.values.len() * 8 + de.strides.len() * 4)
    }

    /// A copy of this plan with the dense corner-value table dropped:
    /// serving falls back to the per-corner factor gather. Output stays
    /// bitwise identical — both paths mirror the naive reference — so a
    /// memory-pressure demotion never changes a prediction. Promotion is a
    /// rebake ([`CprModel::bake_plan`]), which re-evaluates the table.
    pub fn without_dense_cache(&self) -> PredictPlan {
        PredictPlan {
            dense: None,
            ..self.clone()
        }
    }

    /// Baked size in bytes (tables + packed factors + the Tucker core when
    /// present + masks + the dense corner-value table when present).
    pub fn size_bytes(&self) -> usize {
        let tables: usize = self.tables.iter().map(AxisTable::size_bytes).sum();
        let masks: usize = self.row_observed.iter().map(Vec::len).sum();
        let core: usize = self.tucker_core.as_ref().map_or(0, |c| c.len() * 8);
        let dense: usize = self
            .dense
            .as_ref()
            .map_or(0, |de| de.values.len() * 8 + de.strides.len() * 4);
        self.packed.size_bytes() + tables + masks + core + dense
    }

    /// Contiguous baked factor row (rank-length) of one mode — the SoA
    /// gather primitive, shared with the extrapolation layer.
    #[inline]
    pub fn factor_row(&self, mode: usize, i: usize) -> &[f64] {
        self.packed.row(mode, i)
    }

    /// Predict the execution time of one configuration (Eq. 5), bitwise
    /// identical to [`CprModel::predict_naive`].
    #[inline]
    pub fn predict(&self, x: &[f64]) -> f64 {
        assert_eq!(
            x.len(),
            self.tables.len(),
            "predict: configuration order mismatch"
        );
        match self.loss {
            Loss::LogLeastSquares => self.predict_one::<false>(x),
            Loss::MLogQ2 => self.predict_one::<true>(x),
        }
    }

    /// Monomorphization dispatch on the tensor order: each arm pins the
    /// order to a constant, so the kernel instance gets fully unrolled
    /// stencil and corner loops (serving models are order 2–7, where loop
    /// control would otherwise dominate the per-corner math); the
    /// `LOG_CORNERS` constant hoists the loss branch out of the corner
    /// loop. Grids with a dense bake skip the factor gather entirely.
    #[inline]
    fn predict_one<const LOG_CORNERS: bool>(&self, x: &[f64]) -> f64 {
        if self.dense.is_some() {
            return match x.len() {
                1 => self.kernel_dense::<1, LOG_CORNERS>(x),
                2 => self.kernel_dense::<2, LOG_CORNERS>(x),
                3 => self.kernel_dense::<3, LOG_CORNERS>(x),
                4 => self.kernel_dense::<4, LOG_CORNERS>(x),
                5 => self.kernel_dense::<5, LOG_CORNERS>(x),
                6 => self.kernel_dense::<6, LOG_CORNERS>(x),
                // bake_dense rejects orders above PLAN_STACK_ORDER.
                _ => self.kernel_dense::<PLAN_STACK_ORDER, LOG_CORNERS>(x),
            };
        }
        if self.tucker_core.is_some() {
            return self.predict_tucker_fallback(x);
        }
        if self.rank <= PLAN_STACK_RANK {
            let mut acc = [0.0f64; PLAN_STACK_RANK];
            self.predict_factor::<LOG_CORNERS>(x, &mut acc[..self.rank])
        } else {
            let mut acc = vec![0.0f64; self.rank];
            self.predict_factor::<LOG_CORNERS>(x, &mut acc)
        }
    }

    /// Factor-gather serving path (grids too large for the dense bake).
    #[inline]
    fn predict_factor<const LOG_CORNERS: bool>(&self, x: &[f64], acc: &mut [f64]) -> f64 {
        match x.len() {
            1 => self.kernel::<1, LOG_CORNERS>(x, acc),
            2 => self.kernel::<2, LOG_CORNERS>(x, acc),
            3 => self.kernel::<3, LOG_CORNERS>(x, acc),
            4 => self.kernel::<4, LOG_CORNERS>(x, acc),
            5 => self.kernel::<5, LOG_CORNERS>(x, acc),
            6 => self.kernel::<6, LOG_CORNERS>(x, acc),
            d if d <= PLAN_STACK_ORDER => self.kernel::<PLAN_STACK_ORDER, LOG_CORNERS>(x, acc),
            _ => self.predict_dyn::<LOG_CORNERS>(x, acc),
        }
    }

    /// Single-query kernel over the dense corner-value table.
    #[inline]
    fn kernel_dense<const DCAP: usize, const LOG_CORNERS: bool>(&self, x: &[f64]) -> f64 {
        let dense = self.dense.as_ref().expect("kernel_dense: no dense bake");
        let d = x.len();
        assert!(
            d <= DCAP,
            "kernel_dense: order {d} exceeds scratch cap {DCAP}"
        );
        let mut st = [(0.0f64, 0u32, 0u32); DCAP];
        for j in 0..d {
            let (a0, a1, w1, degen) = self.masked_stencil(j, x[j]);
            let gs = dense.strides[j];
            let o1 = if degen { DEGEN } else { a1 as u32 * gs };
            st[j] = (w1, a0 as u32 * gs, o1);
        }
        self.corner_expand_dense::<DCAP, LOG_CORNERS>(d, 1, 0, &st[..d], &dense.values)
    }

    /// Eq. 5 corner expansion over the dense table for query `k` of an
    /// axis-major block of `m` queries: `st[j*m + k]` holds mode `j`'s
    /// `(w1, lo_offset, hi_offset)` with [`DEGEN`] marking a point
    /// stencil; the corner value is one load at the accumulated flat
    /// offset. Same mask iteration, weight
    /// products, and weighted-sum order as the naive `interpolate_corners`
    /// — corner values come pre-evaluated from the bake (see
    /// [`DenseEval`]), so the result is bitwise-identical.
    #[inline(always)]
    fn corner_expand_dense<const DCAP: usize, const LOG_CORNERS: bool>(
        &self,
        d: usize,
        m: usize,
        k: usize,
        st: &[(f64, u32, u32)],
        values: &[f64],
    ) -> f64 {
        let d = if DCAP >= 1 && DCAP <= MONO_ORDER_MAX {
            assert_eq!(d, DCAP, "corner_expand_dense: order/DCAP mismatch");
            DCAP
        } else {
            d
        };
        let mut total = 0.0;
        let corners = 1usize << d;
        'corner: for mask in 0..corners {
            let mut weight = 1.0;
            let mut flat = 0u32;
            for j in 0..d {
                let (w1, o0, o1) = st[j * m + k];
                if (mask >> j) & 1 == 1 {
                    if o1 == DEGEN {
                        continue 'corner; // degenerate mode: only corner 0
                    }
                    weight *= w1;
                    flat += o1;
                } else {
                    weight *= if o1 == DEGEN { 1.0 } else { 1.0 - w1 };
                    flat += o0;
                }
            }
            if weight == 0.0 {
                continue;
            }
            total += weight * values[flat as usize];
        }
        let log_pred = if LOG_CORNERS {
            total
        } else {
            total + self.log_offset
        };
        log_pred.clamp(-690.0, 690.0).exp()
    }

    /// Masked stencil of one mode: baked-table stencil, then
    /// [`apply_mask`]. Returns `(lo_row, hi_row, w1, degenerate)`.
    #[inline(always)]
    fn masked_stencil(&self, j: usize, xj: f64) -> (usize, usize, f64, bool) {
        let (i0, i1, w1) = self.tables[j].stencil(xj);
        apply_mask(&self.row_observed[j], i0, i1, w1)
    }

    /// Eq. 5 corner expansion for query `k` of an axis-major block of `m`
    /// queries: `st[j*m + k]` holds mode `j`'s `(w1, degenerate)` stencil,
    /// `rows0`/`rows1` the hoisted packed factor rows; a single query is
    /// the `m = 1, k = 0` case. `DCAP` in `1..=MONO_ORDER_MAX` pins the
    /// order to a constant for full unrolling (`0` = dynamic order).
    /// Every floating-point operation mirrors the naive
    /// `interpolate_corners` + `CpDecomp::eval` chain in the same order
    /// (the accumulator seeds with the first mode's row instead of
    /// multiplying it into ones — `1.0 * u ≡ u` bitwise for every non-NaN
    /// `u`), which is what makes the bitwise contract hold.
    ///
    /// `inline(always)`: monomorphized per `(DCAP, loss)` and called once
    /// per query from the serving loops — left outlined, the eight-argument
    /// call frame costs ~30% of the whole query.
    #[inline(always)]
    #[allow(clippy::too_many_arguments)]
    fn corner_expand<const DCAP: usize, const LOG_CORNERS: bool>(
        &self,
        d: usize,
        m: usize,
        k: usize,
        st: &[(f64, bool)],
        rows0: &[&[f64]],
        rows1: &[&[f64]],
        acc: &mut [f64],
    ) -> f64 {
        // Binding the loop bound to the *constant* (not the runtime order)
        // is what guarantees unrolling even when this body is not inlined
        // into its dispatch arm.
        let d = if DCAP >= 1 && DCAP <= MONO_ORDER_MAX {
            assert_eq!(d, DCAP, "corner_expand: order/DCAP mismatch");
            DCAP
        } else {
            d
        };
        let mut total = 0.0;
        let corners = 1usize << d;
        'corner: for mask in 0..corners {
            let mut weight = 1.0;
            for j in 0..d {
                let (w1, degen) = st[j * m + k];
                if (mask >> j) & 1 == 1 {
                    if degen {
                        continue 'corner; // degenerate mode: only corner 0
                    }
                    weight *= w1;
                } else {
                    weight *= if degen { 1.0 } else { 1.0 - w1 };
                }
            }
            if weight == 0.0 {
                continue;
            }
            let first = if mask & 1 == 1 { rows1[k] } else { rows0[k] };
            // Element loop, not `copy_from_slice`: the slice length is
            // runtime (the rank), and the memcpy PLT call it lowers to
            // costs more than the handful of moves it replaces.
            for (a, &u) in acc.iter_mut().zip(first) {
                *a = u;
            }
            for j in 1..d {
                let row = if (mask >> j) & 1 == 1 {
                    rows1[j * m + k]
                } else {
                    rows0[j * m + k]
                };
                for (a, &u) in acc.iter_mut().zip(row) {
                    *a *= u;
                }
            }
            let v: f64 = acc.iter().sum();
            let v = if LOG_CORNERS { v.max(1e-300).ln() } else { v };
            total += weight * v;
        }
        let log_pred = if LOG_CORNERS {
            total
        } else {
            total + self.log_offset
        };
        log_pred.clamp(-690.0, 690.0).exp()
    }

    /// Single-query kernel: masked stencils into `DCAP`-bounded stack
    /// arrays, then the corner expansion.
    #[inline]
    fn kernel<const DCAP: usize, const LOG_CORNERS: bool>(
        &self,
        x: &[f64],
        acc: &mut [f64],
    ) -> f64 {
        let d = x.len();
        assert!(d <= DCAP, "kernel: order {d} exceeds scratch cap {DCAP}");
        let mut st = [(0.0f64, false); DCAP];
        let mut rows0: [&[f64]; DCAP] = [&[]; DCAP];
        let mut rows1: [&[f64]; DCAP] = [&[]; DCAP];
        for j in 0..d {
            let (a0, a1, w1, degen) = self.masked_stencil(j, x[j]);
            st[j] = (w1, degen);
            rows0[j] = self.packed.row(j, a0);
            rows1[j] = self.packed.row(j, a1);
        }
        self.corner_expand::<DCAP, LOG_CORNERS>(d, 1, 0, &st[..d], &rows0[..d], &rows1[..d], acc)
    }

    /// Tucker factor-gather fallback: grids beyond the dense cap (or above
    /// the stack-order bound) serve Tucker corner values through the same
    /// masked stencils and `interpolate_corners` expansion as the naive
    /// reference path, with factor rows read from the packed bake —
    /// [`cpr_tensor::eval_core_packed`] preserves the naive multiply
    /// order, so the bitwise contract with [`CprModel::predict_naive`]
    /// holds here by construction. This path allocates the stencil vector
    /// per query (paper-scale Tucker grids always take the
    /// allocation-free dense path; this fallback exists for completeness,
    /// not speed).
    #[cold]
    fn predict_tucker_fallback(&self, x: &[f64]) -> f64 {
        let core = self
            .tucker_core
            .as_ref()
            .expect("predict_tucker_fallback: CP plan");
        let stencils: Vec<(usize, usize, f64)> = (0..x.len())
            .map(|j| {
                let (i0, i1, w1, _) = self.masked_stencil(j, x[j]);
                (i0, i1, w1)
            })
            .collect();
        let log_pred = match self.loss {
            Loss::LogLeastSquares => {
                interpolate_corners(&stencils, |idx| {
                    cpr_tensor::eval_core_packed(core, &self.packed, idx)
                }) + self.log_offset
            }
            Loss::MLogQ2 => interpolate_corners(&stencils, |idx| {
                cpr_tensor::eval_core_packed(core, &self.packed, idx)
                    .max(1e-300)
                    .ln()
            }),
        };
        log_pred.clamp(-690.0, 690.0).exp()
    }

    /// Orders beyond [`PLAN_STACK_ORDER`]: same kernel over heap scratch.
    /// Cold by construction — the corner expansion is `2^d` regardless of
    /// path, so per-call allocation is noise here.
    #[cold]
    fn predict_dyn<const LOG_CORNERS: bool>(&self, x: &[f64], acc: &mut [f64]) -> f64 {
        let d = x.len();
        let mut st = vec![(0.0f64, false); d];
        let mut rows0: Vec<&[f64]> = vec![&[]; d];
        let mut rows1: Vec<&[f64]> = vec![&[]; d];
        for j in 0..d {
            let (a0, a1, w1, degen) = self.masked_stencil(j, x[j]);
            st[j] = (w1, degen);
            rows0[j] = self.packed.row(j, a0);
            rows1[j] = self.packed.row(j, a1);
        }
        self.corner_expand::<0, LOG_CORNERS>(d, 1, 0, &st, &rows0, &rows1, acc)
    }

    /// Batched prediction onto a caller-provided buffer. Chunks fan out
    /// over the crate thread pool; within a chunk the serve is a two-pass
    /// pipeline — **batched grid quantization** (axis-major through
    /// [`AxisTable::stencils_for_each`]: one axis's table stays
    /// register/L1-resident across the whole chunk, and the per-query `ln`
    /// chains overlap instead of interleaving with corner math), then the
    /// dense-table corner expansion per query. Scratch is per chunk;
    /// individual queries allocate nothing. Outputs land at the input
    /// index, so results are independent of the worker count. Grids
    /// without a dense bake fall back to the per-query factor-gather
    /// kernel.
    pub fn predict_into<X: AsRef<[f64]> + Sync>(&self, xs: &[X], out: &mut [f64]) {
        assert_eq!(xs.len(), out.len(), "predict_into: output length mismatch");
        /// Queries per parallel work item: small enough to load-balance a
        /// 50k batch and keep the chunk scratch L1-resident, large enough
        /// to amortize pool dispatch and scratch setup.
        const CHUNK: usize = 256;
        let d = self.order();
        out.par_chunks_mut(CHUNK)
            .enumerate()
            .for_each(|(c, chunk)| {
                let base = c * CHUNK;
                let m = chunk.len();
                // Pass 0: resolve and validate the chunk's query slices.
                let mut xr: Vec<&[f64]> = Vec::with_capacity(m);
                for k in 0..m {
                    let x = xs[base + k].as_ref();
                    assert_eq!(
                        x.len(),
                        d,
                        "predict_into: configuration order mismatch at sample {}",
                        base + k
                    );
                    xr.push(x);
                }
                let Some(dense) = &self.dense else {
                    if self.tucker_core.is_some() {
                        // Tucker fallback: per-query corner evaluation.
                        for (o, x) in chunk.iter_mut().zip(&xr) {
                            *o = self.predict_tucker_fallback(x);
                        }
                        return;
                    }
                    // Factor-gather fallback (grid too large to pre-evaluate).
                    let mut acc_buf = [0.0f64; PLAN_STACK_RANK];
                    let mut acc_vec;
                    let acc: &mut [f64] = if self.rank <= PLAN_STACK_RANK {
                        &mut acc_buf[..self.rank]
                    } else {
                        acc_vec = vec![0.0f64; self.rank];
                        &mut acc_vec
                    };
                    for (o, x) in chunk.iter_mut().zip(&xr) {
                        *o = match self.loss {
                            Loss::LogLeastSquares => self.predict_factor::<false>(x, acc),
                            Loss::MLogQ2 => self.predict_factor::<true>(x, acc),
                        };
                    }
                    return;
                };
                // Pass A: batched masked quantization, axis-major — stencil
                // weight plus the two dense-table offsets per (mode, query).
                let mut st: Vec<(f64, u32, u32)> = vec![(0.0, 0, 0); m * d];
                for j in 0..d {
                    let stj = &mut st[j * m..(j + 1) * m];
                    let observed = &self.row_observed[j];
                    let gs = dense.strides[j];
                    self.tables[j].stencils_for_each(xr.iter().map(|x| x[j]), |k, (i0, i1, w1)| {
                        let (a0, a1, w1, degen) = apply_mask(observed, i0, i1, w1);
                        let o1 = if degen { DEGEN } else { a1 as u32 * gs };
                        stj[k] = (w1, a0 as u32 * gs, o1);
                    });
                }
                // Pass B: corner expansion, order/loss-monomorphized.
                match self.loss {
                    Loss::LogLeastSquares => {
                        self.pass_b_dense::<false>(chunk, d, m, &st, &dense.values)
                    }
                    Loss::MLogQ2 => self.pass_b_dense::<true>(chunk, d, m, &st, &dense.values),
                }
            });
    }

    /// Pass B of the batched serve: order dispatch hoisted out of the
    /// per-query loop.
    fn pass_b_dense<const LOG_CORNERS: bool>(
        &self,
        chunk: &mut [f64],
        d: usize,
        m: usize,
        st: &[(f64, u32, u32)],
        values: &[f64],
    ) {
        macro_rules! run {
            ($dcap:literal) => {
                for (k, o) in chunk.iter_mut().enumerate() {
                    *o = self.corner_expand_dense::<$dcap, LOG_CORNERS>(d, m, k, st, values);
                }
            };
        }
        match d {
            1 => run!(1),
            2 => run!(2),
            3 => run!(3),
            4 => run!(4),
            5 => run!(5),
            6 => run!(6),
            _ => run!(0),
        }
    }

    /// Batched prediction, allocating the output vector (order matches the
    /// input order).
    pub fn predict_batch<X: AsRef<[f64]> + Sync>(&self, xs: &[X]) -> Vec<f64> {
        let mut out = vec![0.0; xs.len()];
        self.predict_into(xs, &mut out);
        out
    }
}

/// Observed-row masking of one mode's stencil (same rules as the naive
/// `masked_stencils`): a mode collapses to a point stencil toward its
/// observed side when the other fiber was never observed, and edge
/// extrapolation weights are clamped to `[-1, 2]`. Returns
/// `(lo_row, hi_row, w1, degenerate)`.
#[inline(always)]
fn apply_mask(observed: &[bool], i0: usize, i1: usize, w1: f64) -> (usize, usize, f64, bool) {
    if i0 == i1 {
        (i0, i1, w1, true)
    } else {
        match (observed[i0], observed[i1]) {
            (true, false) => (i0, i0, 0.0, true),
            (false, true) => (i1, i1, 0.0, true),
            _ => (i0, i1, w1.clamp(-1.0, 2.0), false),
        }
    }
}

/// A trained CPR performance model: a grid discretization plus a fitted
/// low-rank [`Decomposition`] (CP or Tucker), served through a compiled
/// [`PredictPlan`].
#[derive(Debug, Clone)]
pub struct CprModel {
    space: ParamSpace,
    grid: TensorGrid,
    decomp: Decomposition,
    optimizer: Optimizer,
    loss: Loss,
    trace: Trace,
    observed_cells: usize,
    samples: usize,
    /// Mean log time subtracted before completion (LogLeastSquares only).
    log_offset: f64,
    /// Per-mode flags: does row `i` of mode `j` have any observation?
    row_observed: Vec<Vec<bool>>,
    /// Compiled query path, rebaked on every factor/mask change. Held
    /// behind an `Arc` so serving layers (the model registry's hot-swap
    /// cells, long-lived reader threads) share the baked plan without
    /// cloning its tables; a rebake installs a fresh `Arc` and in-flight
    /// readers finish on the plan they loaded.
    plan: Arc<PredictPlan>,
}

impl CprModel {
    /// Validation shared by the part-wise constructors: the cell spec must
    /// match the space and the decomposition must match the induced grid.
    fn validated_grid(
        space: &ParamSpace,
        cells: &[usize],
        decomp: &Decomposition,
    ) -> Result<TensorGrid> {
        if cells.len() != space.dim() {
            return Err(CprError::InvalidConfig("cells length != space dim".into()));
        }
        let grid = space.grid_with_cells(cells);
        if decomp.dims() != grid.dims() {
            return Err(CprError::InvalidConfig(format!(
                "factor dims {:?} do not match grid dims {:?}",
                decomp.dims(),
                grid.dims()
            )));
        }
        Ok(grid)
    }

    /// Tag-triple consistency shared by every part-wise constructor: the
    /// optimizer's model class must match the decomposition variant and
    /// its loss family must match `loss`, the same rules the serialization
    /// reader enforces — so every constructible model round-trips.
    fn validate_tags(decomp: &Decomposition, optimizer: Optimizer, loss: Loss) -> Result<()> {
        if optimizer.fits_tucker() != decomp.as_tucker().is_some() {
            return Err(CprError::InvalidConfig(format!(
                "optimizer {} does not fit a {} decomposition",
                optimizer.name(),
                if decomp.as_tucker().is_some() {
                    "Tucker"
                } else {
                    "CP"
                }
            )));
        }
        if optimizer.requires_positive() != (loss == Loss::MLogQ2) {
            return Err(CprError::InvalidConfig(format!(
                "optimizer {} does not optimize the {loss:?} loss",
                optimizer.name()
            )));
        }
        Ok(())
    }

    /// The optimizer a part-wise-constructed model is tagged with when the
    /// caller didn't say: the default fitter of that (decomposition, loss)
    /// pair.
    fn implied_optimizer(decomp: &Decomposition, loss: Loss) -> Optimizer {
        match (decomp, loss) {
            (Decomposition::Tucker(_), _) => Optimizer::TuckerAls,
            (Decomposition::Cp(_), Loss::MLogQ2) => Optimizer::Amn,
            (Decomposition::Cp(_), Loss::LogLeastSquares) => Optimizer::Als,
        }
    }

    /// Assemble a model from validated parts with the given masks, baking
    /// the plan exactly once.
    fn assemble(
        space: ParamSpace,
        grid: TensorGrid,
        decomp: Decomposition,
        optimizer: Optimizer,
        loss: Loss,
        log_offset: f64,
        row_observed: Vec<Vec<bool>>,
    ) -> CprModel {
        let plan = Arc::new(PredictPlan::bake(
            &grid,
            &decomp,
            loss,
            log_offset,
            &row_observed,
        ));
        CprModel {
            space,
            grid,
            decomp,
            optimizer,
            loss,
            trace: Trace::default(),
            observed_cells: 0,
            samples: 0,
            log_offset,
            row_observed,
            plan,
        }
    }

    /// Reassemble a model from its serialized parts (deserialization path).
    /// Validates that the decomposition matches the grid the specs induce.
    /// Accepts either decomposition variant (or a bare [`CpDecomp`] /
    /// [`TuckerDecomp`], which convert); the optimizer tag is implied from
    /// the parts — use [`Self::from_parts_tagged`] to preserve an explicit
    /// one. A Tucker decomposition pairs only with
    /// [`Loss::LogLeastSquares`] (no optimizer produces a positive Tucker
    /// model, and the serialization format rejects the pair).
    pub fn from_parts(
        space: ParamSpace,
        cells: &[usize],
        decomp: impl Into<Decomposition>,
        loss: Loss,
        log_offset: f64,
    ) -> Result<CprModel> {
        let decomp = decomp.into();
        let optimizer = Self::implied_optimizer(&decomp, loss);
        Self::from_parts_tagged(space, cells, decomp, optimizer, loss, log_offset)
    }

    /// [`Self::from_parts`] with an explicit optimizer tag (serialization
    /// round-trips preserve the tag through this constructor).
    ///
    /// The tag triple must be self-consistent — the optimizer's model
    /// class must match the decomposition variant, and its loss family
    /// must match `loss` (AMN ⇔ MLogQ²) — so that every constructible
    /// model round-trips through [`crate::serialize`], whose reader
    /// enforces the same rules on untrusted bytes.
    pub fn from_parts_tagged(
        space: ParamSpace,
        cells: &[usize],
        decomp: impl Into<Decomposition>,
        optimizer: Optimizer,
        loss: Loss,
        log_offset: f64,
    ) -> Result<CprModel> {
        let decomp = decomp.into();
        Self::validate_tags(&decomp, optimizer, loss)?;
        let grid = Self::validated_grid(&space, cells, &decomp)?;
        let row_observed: Vec<Vec<bool>> = grid.dims().iter().map(|&d| vec![true; d]).collect();
        Ok(Self::assemble(
            space,
            grid,
            decomp,
            optimizer,
            loss,
            log_offset,
            row_observed,
        ))
    }

    /// [`Self::from_parts`] with observed-row masks taken from an
    /// observation tensor, baking the plan exactly once (the
    /// `from_parts` + [`Self::set_row_observed_from`] sequence would bake
    /// twice and discard the first). Used by the streaming updater.
    pub(crate) fn from_parts_masked(
        space: ParamSpace,
        cells: &[usize],
        decomp: impl Into<Decomposition>,
        loss: Loss,
        log_offset: f64,
        obs: &SparseTensor,
    ) -> Result<CprModel> {
        let decomp = decomp.into();
        let optimizer = Self::implied_optimizer(&decomp, loss);
        Self::validate_tags(&decomp, optimizer, loss)?;
        let grid = Self::validated_grid(&space, cells, &decomp)?;
        let row_observed: Vec<Vec<bool>> = (0..grid.order())
            .map(|m| {
                obs.mode_index(m)
                    .iter()
                    .map(|ids| !ids.is_empty())
                    .collect()
            })
            .collect();
        Ok(Self::assemble(
            space,
            grid,
            decomp,
            optimizer,
            loss,
            log_offset,
            row_observed,
        ))
    }

    /// Predict the execution time of a configuration (Eq. 5), served
    /// through the compiled [`PredictPlan`].
    ///
    /// §5.2 defines the model as `m(x) = e^{m̂(x)}` with `m̂` trained on log
    /// times, so interpolation runs in log space and the result is
    /// exponentiated (exact on power laws; interpolating `e^{t̂}` linearly
    /// instead would over-predict by `cosh(Δ/2)` across cells spanning `Δ`
    /// decades). The MLogQ² model stores positive linear-space entries;
    /// its entries are logged for interpolation for the same reason.
    pub fn predict(&self, x: &[f64]) -> f64 {
        assert_eq!(
            x.len(),
            self.grid.order(),
            "predict: configuration order mismatch"
        );
        self.plan.predict(x)
    }

    /// The naive reference predict path: per-call grid stencils and
    /// factor-matrix corner evaluation, no baked state. Kept verbatim as
    /// the semantic specification of [`Self::predict`] — the equivalence
    /// proptests pin `predict(x)` bitwise against this function.
    pub fn predict_naive(&self, x: &[f64]) -> f64 {
        assert_eq!(
            x.len(),
            self.grid.order(),
            "predict: configuration order mismatch"
        );
        let stencils = self.masked_stencils(x);
        // The decomposition variant is matched *outside* the corner
        // closure: a closure that carries both the CP and the Tucker eval
        // bodies is too big to inline into `interpolate_corners`, which
        // costs ~2x on this reference path (measured by perf_guard).
        let log_pred = match (&self.decomp, self.loss) {
            (Decomposition::Cp(cp), Loss::LogLeastSquares) => {
                interpolate_corners(&stencils, |idx| cp.eval(idx)) + self.log_offset
            }
            (Decomposition::Cp(cp), Loss::MLogQ2) => {
                interpolate_corners(&stencils, |idx| cp.eval(idx).max(1e-300).ln())
            }
            (Decomposition::Tucker(t), Loss::LogLeastSquares) => {
                interpolate_corners(&stencils, |idx| t.eval(idx)) + self.log_offset
            }
            (Decomposition::Tucker(t), Loss::MLogQ2) => {
                interpolate_corners(&stencils, |idx| t.eval(idx).max(1e-300).ln())
            }
        };
        // Clamp: |log| beyond ~690 would overflow f64 anyway, and edge-cell
        // linear extrapolation must not produce absurd magnitudes.
        log_pred.clamp(-690.0, 690.0).exp()
    }

    /// Eq. 5 stencils with two robustness adjustments over the raw grid
    /// lookup: a mode degrades to a point stencil when its neighbouring
    /// fiber was never observed (the completion carries no information
    /// there), and edge-extrapolation weights are clamped to [-1, 2] so a
    /// query at the domain boundary cannot amplify a single cell estimate
    /// unboundedly.
    fn masked_stencils(&self, x: &[f64]) -> Vec<(usize, usize, f64)> {
        let mut stencils = self.grid.stencils(x);
        for (j, st) in stencils.iter_mut().enumerate() {
            let (i0, i1, w1) = *st;
            if i0 == i1 {
                continue;
            }
            let o0 = self.row_observed[j][i0];
            let o1 = self.row_observed[j][i1];
            *st = match (o0, o1) {
                (true, false) => (i0, i0, 0.0),
                (false, true) => (i1, i1, 0.0),
                _ => (i0, i1, w1.clamp(-1.0, 2.0)),
            };
        }
        stencils
    }

    /// Predict a batch of configurations through the plan, in parallel
    /// across chunks. Accepts any slice of feature-vector-shaped values
    /// (`&[Vec<f64>]`, `&[Sample]`, …); output order matches input order.
    pub fn predict_batch<X: AsRef<[f64]> + Sync>(&self, xs: &[X]) -> Vec<f64> {
        self.plan.predict_batch(xs)
    }

    /// Batched prediction through the naive reference path (the pre-plan
    /// serving implementation, kept for A/B benchmarking and equivalence
    /// tests).
    pub fn predict_batch_naive<X: AsRef<[f64]> + Sync>(&self, xs: &[X]) -> Vec<f64> {
        xs.par_iter()
            .map(|x| self.predict_naive(x.as_ref()))
            .collect()
    }

    /// Evaluate against a labeled dataset: plan predictions into a single
    /// buffer ([`PredictPlan::predict_into`]), metrics accumulated in one
    /// sequential pass (bitwise equal to `Metrics::compute` on the same
    /// predictions).
    pub fn evaluate(&self, data: &Dataset) -> Metrics {
        let mut preds = vec![0.0; data.len()];
        self.plan.predict_into(data.samples(), &mut preds);
        let mut accum = MetricsAccum::new();
        for (pred, (_, y)) in preds.iter().zip(data.iter()) {
            accum.push(*pred, y);
        }
        accum.finish()
    }

    /// The completed-tensor estimate `t̂_i` at a tensor multi-index, in time
    /// units (exponentiated when the model trains in log space).
    pub fn tensor_estimate(&self, idx: &[usize]) -> f64 {
        match self.loss {
            Loss::LogLeastSquares => (self.decomp.eval(idx) + self.log_offset).exp(),
            Loss::MLogQ2 => self.decomp.eval(idx),
        }
    }

    /// Underlying decomposition (CP or Tucker).
    pub fn decomposition(&self) -> &Decomposition {
        &self.decomp
    }

    /// The optimizer that fitted (or is tagged on) this model.
    pub fn optimizer(&self) -> Optimizer {
        self.optimizer
    }

    /// The parameter space the model was trained over.
    pub fn space(&self) -> &ParamSpace {
        &self.space
    }

    /// Underlying CP decomposition.
    ///
    /// # Panics
    /// When the model holds a Tucker decomposition (fit with
    /// [`Optimizer::TuckerAls`]); use [`Self::decomposition`] for
    /// variant-agnostic access.
    pub fn cp(&self) -> &CpDecomp {
        self.decomp
            .as_cp()
            .expect("cp(): model holds a Tucker decomposition; use decomposition()")
    }

    /// The compiled query plan currently baked for this model.
    pub fn plan(&self) -> &PredictPlan {
        &self.plan
    }

    /// The baked plan as a shared handle: an `Arc` clone of the plan the
    /// model currently serves through — no tables are copied. Serving
    /// layers (the `cpr_registry` hot-swap cells) hold these so a rebake
    /// can replace the live plan while in-flight readers finish on the
    /// handle they already loaded.
    pub fn shared_plan(&self) -> Arc<PredictPlan> {
        Arc::clone(&self.plan)
    }

    /// Bake a fresh [`PredictPlan`] from the current model state — the same
    /// bake the constructors run. Exposed for benchmarking the bake cost
    /// and for callers that keep a plan alive independently of the model.
    pub fn bake_plan(&self) -> PredictPlan {
        PredictPlan::bake(
            &self.grid,
            &self.decomp,
            self.loss,
            self.log_offset,
            &self.row_observed,
        )
    }

    /// Grid discretization used at training time.
    pub fn grid(&self) -> &TensorGrid {
        &self.grid
    }

    /// Mean log time subtracted before completion (0 for MLogQ² models).
    pub fn log_offset(&self) -> f64 {
        self.log_offset
    }

    /// Refresh the observed-row masks from an observation tensor (used by
    /// the streaming updater after warm-started refits). Invalidates and
    /// rebakes the [`PredictPlan`] — masks are part of the baked state.
    pub fn set_row_observed_from(&mut self, obs: &SparseTensor) {
        self.row_observed = (0..self.grid.order())
            .map(|m| {
                obs.mode_index(m)
                    .iter()
                    .map(|ids| !ids.is_empty())
                    .collect()
            })
            .collect();
        self.plan = Arc::new(self.bake_plan());
    }

    /// Training loss selection.
    pub fn loss(&self) -> Loss {
        self.loss
    }

    /// Optimizer trace (objective per sweep).
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Number of grid cells with at least one training observation.
    pub fn observed_cells(&self) -> usize {
        self.observed_cells
    }

    /// Observed fill fraction of the tensor `|Ω| / Π I_j`.
    pub fn density(&self) -> f64 {
        self.observed_cells as f64 / self.grid.cell_count() as f64
    }

    /// Training-set size.
    pub fn training_samples(&self) -> usize {
        self.samples
    }

    /// Serialized model size in bytes: decomposition parameters (factor
    /// matrices, plus the core for Tucker) + grid metadata — the quantity
    /// Figure 7 plots.
    pub fn size_bytes(&self) -> usize {
        // Per axis: boundaries + midpoints (f64 each) + small header.
        let grid_bytes: usize = (0..self.grid.order())
            .map(|m| {
                let a = self.grid.axis(m);
                (a.boundaries().len() + a.midpoints().len()) * 8 + 16
            })
            .sum();
        self.decomp.size_bytes() + grid_bytes
    }
}

impl crate::perf_model::PerfModel for CprModel {
    fn name(&self) -> &str {
        match self.decomp {
            Decomposition::Cp(_) => "CPR",
            Decomposition::Tucker(_) => "CPR-Tucker",
        }
    }

    fn space(&self) -> &ParamSpace {
        CprModel::space(self)
    }

    fn predict(&self, x: &[f64]) -> f64 {
        CprModel::predict(self, x)
    }

    fn predict_into(&self, xs: &[&[f64]], out: &mut [f64]) {
        self.plan.predict_into(xs, out);
    }

    fn evaluate(&self, data: &Dataset) -> Metrics {
        CprModel::evaluate(self, data)
    }

    fn size_bytes(&self) -> usize {
        CprModel::size_bytes(self)
    }

    fn to_bytes(&self) -> Result<bytes::Bytes> {
        Ok(crate::serialize::to_bytes(self))
    }
}

impl crate::perf_model::PerfModelBuilder for CprBuilder {
    fn name(&self) -> &str {
        match self.spec.resolve() {
            Ok((Optimizer::TuckerAls, _)) => "CPR-Tucker",
            _ => "CPR",
        }
    }

    fn fit_boxed(&self, data: &Dataset) -> Result<Box<dyn crate::perf_model::PerfModel>> {
        Ok(Box::new(self.fit(data)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpr_grid::ParamSpec;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Separable two-parameter "execution time": t = 1e-3 * m^1.2 * n^0.8.
    fn separable_dataset(n_samples: usize, seed: u64) -> (ParamSpace, Dataset) {
        let space = ParamSpace::new(vec![
            ParamSpec::log("m", 32.0, 4096.0),
            ParamSpec::log("n", 32.0, 4096.0),
        ]);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut data = Dataset::new();
        for _ in 0..n_samples {
            let m = 32.0 * (4096.0_f64 / 32.0).powf(rng.gen::<f64>());
            let n = 32.0 * (4096.0_f64 / 32.0).powf(rng.gen::<f64>());
            let t = 1e-3 * m.powf(1.2) * n.powf(0.8);
            data.push(vec![m, n], t);
        }
        (space, data)
    }

    #[test]
    fn fits_separable_power_law_interpolation() {
        let (space, train) = separable_dataset(2000, 1);
        let (_, test) = separable_dataset(200, 2);
        // 16 cells/dim keeps the Eq. 5 convexity error (interpolating
        // exp(t̂) linearly, O(h²/8) per cell) within a few percent.
        let model = CprBuilder::new(space)
            .cells_per_dim(16)
            .rank(2)
            .regularization(1e-7)
            .fit(&train)
            .unwrap();
        let m = model.evaluate(&test);
        assert!(
            m.mlogq < 0.05,
            "MLogQ {} too high for separable data",
            m.mlogq
        );
    }

    #[test]
    fn mlogq2_loss_also_fits_and_is_positive() {
        let (space, train) = separable_dataset(1200, 3);
        let (_, test) = separable_dataset(150, 4);
        let model = CprBuilder::new(space)
            .cells_per_dim(10)
            .rank(2)
            .regularization(1e-7)
            .loss(Loss::MLogQ2)
            .fit(&train)
            .unwrap();
        assert!(model.cp().is_strictly_positive());
        let m = model.evaluate(&test);
        assert!(m.mlogq < 0.12, "MLogQ {}", m.mlogq);
    }

    #[test]
    fn rejects_bad_inputs() {
        let (space, mut data) = separable_dataset(50, 5);
        assert!(matches!(
            CprBuilder::new(space.clone()).fit(&Dataset::new()),
            Err(CprError::EmptyDataset)
        ));
        assert!(matches!(
            CprBuilder::new(space.clone()).rank(0).fit(&data),
            Err(CprError::InvalidConfig(_))
        ));
        assert!(matches!(
            CprBuilder::new(space.clone()).cells(vec![4]).fit(&data),
            Err(CprError::InvalidConfig(_))
        ));
        data.push(vec![100.0, 100.0], -1.0);
        assert!(matches!(
            CprBuilder::new(space).fit(&data),
            Err(CprError::NonPositiveTime { .. })
        ));
    }

    #[test]
    fn dimension_mismatch_detected() {
        let (space, _) = separable_dataset(1, 6);
        let mut data = Dataset::new();
        data.push(vec![100.0], 1.0);
        assert!(matches!(
            CprBuilder::new(space).fit(&data),
            Err(CprError::DimensionMismatch {
                expected: 2,
                got: 1
            })
        ));
    }

    #[test]
    fn density_and_observed_cells() {
        let (space, train) = separable_dataset(500, 7);
        let model = CprBuilder::new(space)
            .cells_per_dim(4)
            .rank(1)
            .fit(&train)
            .unwrap();
        assert!(model.observed_cells() <= 16);
        assert!(model.density() > 0.5, "4x4 grid should be mostly observed");
        assert_eq!(model.training_samples(), 500);
    }

    #[test]
    fn size_grows_linearly_with_rank() {
        let (space, train) = separable_dataset(500, 8);
        let m1 = CprBuilder::new(space.clone())
            .cells_per_dim(8)
            .rank(1)
            .fit(&train)
            .unwrap();
        let m4 = CprBuilder::new(space)
            .cells_per_dim(8)
            .rank(4)
            .fit(&train)
            .unwrap();
        // Factor storage scales exactly 4x with rank; the constant grid
        // metadata rides on top.
        assert_eq!(m4.cp().size_bytes(), 4 * m1.cp().size_bytes());
        let overhead = m1.size_bytes() - m1.cp().size_bytes();
        assert_eq!(m4.size_bytes() - m4.cp().size_bytes(), overhead);
    }

    #[test]
    fn higher_rank_does_not_hurt_much_on_low_rank_data() {
        let (space, train) = separable_dataset(2000, 9);
        let (_, test) = separable_dataset(200, 10);
        let e = |rank| {
            CprBuilder::new(space.clone())
                .cells_per_dim(8)
                .rank(rank)
                .regularization(1e-6)
                .fit(&train)
                .unwrap()
                .evaluate(&test)
                .mlogq
        };
        let (e1, e8) = (e(1), e(8));
        assert!(e8 < e1 * 3.0 + 0.05, "rank-8 {e8} vs rank-1 {e1}");
    }

    #[test]
    fn predictions_positive_even_at_domain_edges() {
        let (space, train) = separable_dataset(800, 11);
        let model = CprBuilder::new(space)
            .cells_per_dim(8)
            .rank(2)
            .fit(&train)
            .unwrap();
        for probe in [[32.0, 32.0], [4096.0, 4096.0], [32.0, 4096.0]] {
            assert!(model.predict(&probe) > 0.0);
        }
    }

    #[test]
    fn categorical_parameter_handled() {
        // Time depends on a categorical "algorithm" with distinct constants.
        let space = ParamSpace::new(vec![
            ParamSpec::log("n", 16.0, 1024.0),
            ParamSpec::categorical("alg", 3),
        ]);
        let mut rng = StdRng::seed_from_u64(12);
        let mut data = Dataset::new();
        for _ in 0..1500 {
            let n = 16.0 * 64.0_f64.powf(rng.gen::<f64>());
            let alg = rng.gen_range(0..3usize);
            let scale = [1.0, 3.5, 0.4][alg];
            data.push(vec![n, alg as f64], 1e-4 * scale * n.powf(1.5));
        }
        let model = CprBuilder::new(space)
            .cells(vec![8, 3])
            .rank(2)
            .regularization(1e-7)
            .fit(&data)
            .unwrap();
        let p0 = model.predict(&[256.0, 0.0]);
        let p1 = model.predict(&[256.0, 1.0]);
        let p2 = model.predict(&[256.0, 2.0]);
        assert!((p1 / p0 - 3.5).abs() < 0.7, "ratio {}", p1 / p0);
        assert!((p2 / p0 - 0.4).abs() < 0.2, "ratio {}", p2 / p0);
    }

    #[test]
    fn plan_matches_naive_on_trained_models() {
        let (space, train) = separable_dataset(1200, 31);
        for loss in [Loss::LogLeastSquares, Loss::MLogQ2] {
            let model = CprBuilder::new(space.clone())
                .cells_per_dim(9)
                .rank(3)
                .regularization(1e-7)
                .loss(loss)
                .fit(&train)
                .unwrap();
            // Interior, edge, and out-of-domain probes all go through
            // different stencil/masking branches.
            for probe in [
                [100.0, 100.0],
                [32.0, 4096.0],
                [5000.0, 20.0],
                [1.0, 1e7],
                [33.7, 33.7],
            ] {
                assert_eq!(
                    model.predict(&probe).to_bits(),
                    model.predict_naive(&probe).to_bits(),
                    "loss {loss:?} probe {probe:?}"
                );
            }
        }
    }

    #[test]
    fn predict_batch_matches_naive_batch() {
        let (space, train) = separable_dataset(800, 32);
        let model = CprBuilder::new(space)
            .cells_per_dim(8)
            .rank(2)
            .fit(&train)
            .unwrap();
        let (_, queries) = separable_dataset(300, 33);
        let fast = model.predict_batch(queries.samples());
        let slow = model.predict_batch_naive(queries.samples());
        for (a, b) in fast.iter().zip(&slow) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn predict_into_writes_in_input_order() {
        let (space, train) = separable_dataset(600, 34);
        let model = CprBuilder::new(space)
            .cells_per_dim(6)
            .rank(2)
            .fit(&train)
            .unwrap();
        let (_, queries) = separable_dataset(1500, 35);
        let mut out = vec![f64::NAN; queries.len()];
        model.plan().predict_into(queries.samples(), &mut out);
        for (x, o) in queries.samples().iter().zip(&out) {
            assert_eq!(o.to_bits(), model.predict_naive(x.as_ref()).to_bits());
        }
    }

    #[test]
    fn plan_metadata_accessors() {
        let (space, train) = separable_dataset(400, 36);
        let model = CprBuilder::new(space)
            .cells_per_dim(7)
            .rank(3)
            .fit(&train)
            .unwrap();
        let plan = model.plan();
        assert_eq!(plan.order(), 2);
        assert_eq!(plan.rank(), 3);
        assert!(plan.size_bytes() >= model.cp().size_bytes());
        assert_eq!(plan.factor_row(0, 2), model.cp().factor(0).row(2));
    }

    #[test]
    fn one_builder_fits_with_every_optimizer() {
        let (space, train) = separable_dataset(1500, 40);
        let (_, test) = separable_dataset(200, 41);
        for opt in Optimizer::ALL {
            let model = CprBuilder::new(space.clone())
                .cells_per_dim(8)
                .rank(2)
                .regularization(1e-7)
                .optimizer(opt)
                .fit(&train)
                .unwrap_or_else(|e| panic!("{}: {e}", opt.name()));
            assert_eq!(model.optimizer(), opt);
            let m = model.evaluate(&test);
            // Separable power-law data is easy; every optimizer should land
            // well under the constant-predictor error (~0.5 here). SGD is
            // the loosest of the family.
            assert!(
                m.mlogq < 0.3,
                "{}: MLogQ {} too high on separable data",
                opt.name(),
                m.mlogq
            );
        }
    }

    #[test]
    fn tucker_fit_yields_servable_model() {
        let (space, train) = separable_dataset(1500, 42);
        let model = CprBuilder::new(space)
            .cells_per_dim(8)
            .rank(2)
            .tucker_ranks(vec![2, 3])
            .regularization(1e-7)
            .optimizer(Optimizer::TuckerAls)
            .fit(&train)
            .unwrap();
        assert!(model.decomposition().as_tucker().is_some());
        assert_eq!(model.decomposition().as_tucker().unwrap().ranks(), &[2, 3]);
        // Served through the same compiled plan machinery, bitwise equal to
        // the naive reference path on every masking branch.
        for probe in [
            [100.0, 100.0],
            [32.0, 4096.0],
            [5000.0, 20.0],
            [1.0, 1e7],
            [33.7, 33.7],
        ] {
            assert_eq!(
                model.predict(&probe).to_bits(),
                model.predict_naive(&probe).to_bits(),
                "probe {probe:?}"
            );
        }
        let (_, queries) = separable_dataset(700, 43);
        let fast = model.predict_batch(queries.samples());
        let slow = model.predict_batch_naive(queries.samples());
        for (a, b) in fast.iter().zip(&slow) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn tucker_fallback_path_matches_naive_beyond_dense_cap() {
        // 300x300 cells = 90k > DENSE_EVAL_MAX: the plan serves Tucker
        // through the packed-eval fallback instead of the dense table.
        let (space, train) = separable_dataset(3000, 44);
        let model = CprBuilder::new(space)
            .cells_per_dim(300)
            .rank(2)
            .optimizer(Optimizer::TuckerAls)
            .max_sweeps(3)
            .fit(&train)
            .unwrap();
        let (_, queries) = separable_dataset(300, 45);
        let fast = model.predict_batch(queries.samples());
        let slow = model.predict_batch_naive(queries.samples());
        for (a, b) in fast.iter().zip(&slow) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn incompatible_optimizer_loss_pairs_rejected() {
        let (space, data) = separable_dataset(100, 46);
        // AMN only optimizes MLogQ².
        assert!(matches!(
            CprBuilder::new(space.clone())
                .optimizer(Optimizer::Amn)
                .loss(Loss::LogLeastSquares)
                .fit(&data),
            Err(CprError::InvalidConfig(_))
        ));
        // The least-squares optimizers never optimize MLogQ².
        for opt in [
            Optimizer::Als,
            Optimizer::Ccd,
            Optimizer::Sgd,
            Optimizer::TuckerAls,
        ] {
            assert!(matches!(
                CprBuilder::new(space.clone())
                    .optimizer(opt)
                    .loss(Loss::MLogQ2)
                    .fit(&data),
                Err(CprError::InvalidConfig(_))
            ));
        }
        // Bad tucker_ranks length.
        assert!(matches!(
            CprBuilder::new(space.clone())
                .optimizer(Optimizer::TuckerAls)
                .tucker_ranks(vec![2])
                .fit(&data),
            Err(CprError::InvalidConfig(_))
        ));
        // Loss-only selection keeps the historical pairing.
        let amn = CprBuilder::new(space.clone())
            .cells_per_dim(4)
            .rank(1)
            .loss(Loss::MLogQ2)
            .fit(&data)
            .unwrap();
        assert_eq!(amn.optimizer(), Optimizer::Amn);
        let als = CprBuilder::new(space)
            .cells_per_dim(4)
            .rank(1)
            .fit(&data)
            .unwrap();
        assert_eq!(als.optimizer(), Optimizer::Als);
    }

    #[test]
    fn fit_spec_roundtrips_through_builder() {
        let (space, data) = separable_dataset(200, 47);
        let spec = FitSpec {
            cells: Cells::PerDim(6),
            rank: 3,
            lambda: 1e-6,
            max_sweeps: 20,
            optimizer: Some(Optimizer::Ccd),
            ..FitSpec::default()
        };
        let builder = CprBuilder::new(space).with_spec(spec.clone());
        assert_eq!(builder.spec().rank, 3);
        assert_eq!(builder.spec().optimizer, Some(Optimizer::Ccd));
        let model = builder.fit(&data).unwrap();
        assert_eq!(model.optimizer(), Optimizer::Ccd);
        assert_eq!(model.loss(), Loss::LogLeastSquares);
        assert_eq!(spec.stop_rule().max_sweeps, 20);
    }

    #[test]
    fn trace_is_recorded() {
        let (space, train) = separable_dataset(300, 13);
        let model = CprBuilder::new(space)
            .cells_per_dim(4)
            .rank(2)
            .fit(&train)
            .unwrap();
        assert!(model.trace().sweeps() >= 1);
        assert!(model.trace().final_objective().is_finite());
    }
}
