//! Error types for CPR model construction and inference.

use std::fmt;

/// Errors surfaced by the CPR public API.
#[derive(Debug, Clone, PartialEq)]
pub enum CprError {
    /// The training set was empty.
    EmptyDataset,
    /// A configuration's length did not match the parameter space order.
    DimensionMismatch { expected: usize, got: usize },
    /// An execution time was zero or negative (log-space training needs
    /// positive observations).
    NonPositiveTime { index: usize, value: f64 },
    /// An observation carried a NaN or infinite value. `coordinate` names
    /// the offending parameter position, `None` when the execution time
    /// itself was non-finite. Rejected at ingest: one poisoned sample would
    /// otherwise silently corrupt every downstream fit.
    NonFiniteObservation {
        coordinate: Option<usize>,
        value: f64,
    },
    /// No observation landed in any grid cell (degenerate discretization).
    NoObservedCells,
    /// Invalid hyper-parameter (message explains which).
    InvalidConfig(String),
    /// Serialized model bytes were malformed.
    Corrupt(String),
    /// The operation is not implemented by this model family (e.g. binary
    /// serialization of a baseline regressor).
    Unsupported(String),
}

impl fmt::Display for CprError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::EmptyDataset => write!(f, "training dataset is empty"),
            Self::DimensionMismatch { expected, got } => {
                write!(
                    f,
                    "configuration has {got} parameters, space expects {expected}"
                )
            }
            Self::NonPositiveTime { index, value } => {
                write!(
                    f,
                    "execution time at sample {index} is non-positive ({value})"
                )
            }
            Self::NonFiniteObservation { coordinate, value } => match coordinate {
                Some(j) => write!(f, "observation parameter {j} is not finite ({value})"),
                None => write!(f, "observation value is not finite ({value})"),
            },
            Self::NoObservedCells => write!(f, "no observation mapped into any grid cell"),
            Self::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            Self::Corrupt(msg) => write!(f, "corrupt model data: {msg}"),
            Self::Unsupported(msg) => write!(f, "unsupported operation: {msg}"),
        }
    }
}

impl std::error::Error for CprError {}

/// Result alias for the CPR API.
pub type Result<T> = std::result::Result<T, CprError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(CprError::EmptyDataset.to_string().contains("empty"));
        assert!(CprError::DimensionMismatch {
            expected: 3,
            got: 2
        }
        .to_string()
        .contains("3"));
        assert!(CprError::NonPositiveTime {
            index: 7,
            value: -1.0
        }
        .to_string()
        .contains("7"));
        assert!(CprError::InvalidConfig("rank".into())
            .to_string()
            .contains("rank"));
        assert!(CprError::NonFiniteObservation {
            coordinate: Some(2),
            value: f64::NAN
        }
        .to_string()
        .contains("parameter 2"));
        assert!(CprError::NonFiniteObservation {
            coordinate: None,
            value: f64::INFINITY
        }
        .to_string()
        .contains("not finite"));
    }
}
