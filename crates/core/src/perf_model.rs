//! The workspace-wide performance-model interface.
//!
//! The paper's evaluation (§6.0.4) compares CPR against eight baseline
//! regression families through one protocol: fit on a [`Dataset`], predict
//! execution times for raw configurations, report Table 1 metrics and a
//! serialized size. [`PerfModel`] is that protocol as an object-safe trait,
//! implemented by [`crate::CprModel`], [`crate::CprExtrapolator`], and —
//! through the [`BaselineModel`] bridge — every
//! [`cpr_baselines::Regressor`]. The consumer surfaces
//! ([`crate::search()`], [`crate::random_search`], the `cpr_bench` harness)
//! run over `&dyn PerfModel`, so a figure binary sweeps model families
//! through one code path.
//!
//! Conventions baked into the bridge (so callers never repeat them):
//! baselines consume **log-transformed** features
//! ([`transform_features`]) and log execution times, and exponentiate
//! predictions back to time units — exactly the paper's §6.0.4 protocol,
//! previously duplicated by every harness call site.

use crate::dataset::Dataset;
use crate::error::{CprError, Result};
use crate::metrics::{Metrics, MetricsAccum};
use bytes::Bytes;
use cpr_baselines::Regressor;
use cpr_grid::{ParamSpace, ParamSpec};

/// A fitted application performance model: predicts execution time (in the
/// measurement's units, always positive-finite for valid inputs) from a
/// **raw** configuration vector over its [`ParamSpace`].
///
/// Object-safe by construction — consumer code holds `Box<dyn PerfModel>` /
/// `&dyn PerfModel` and never branches on the family. Construction stays on
/// the family-specific builders (or [`PerfModelBuilder`] for fully generic
/// pipelines); deserialization is family-specific too
/// ([`crate::serialize::from_bytes`] for CPR).
pub trait PerfModel: Send + Sync {
    /// Short identifier used by experiment-harness tables (e.g. `"CPR"`).
    fn name(&self) -> &str;

    /// The parameter space predictions are defined over.
    fn space(&self) -> &ParamSpace;

    /// Predict the execution time of one raw configuration.
    fn predict(&self, x: &[f64]) -> f64;

    /// Predict a batch onto a caller-provided buffer, output order matching
    /// input order. Implementations may parallelize internally.
    fn predict_into(&self, xs: &[&[f64]], out: &mut [f64]) {
        assert_eq!(xs.len(), out.len(), "predict_into: output length mismatch");
        for (o, x) in out.iter_mut().zip(xs) {
            *o = self.predict(x);
        }
    }

    /// Predict a batch, allocating the output vector.
    fn predict_batch(&self, xs: &[Vec<f64>]) -> Vec<f64> {
        let refs: Vec<&[f64]> = xs.iter().map(Vec::as_slice).collect();
        let mut out = vec![0.0; xs.len()];
        self.predict_into(&refs, &mut out);
        out
    }

    /// Evaluate against a labeled dataset: batch predictions, then the
    /// Table 1 metrics accumulated in one sequential pass.
    fn evaluate(&self, data: &Dataset) -> Metrics {
        let refs: Vec<&[f64]> = data.samples().iter().map(AsRef::as_ref).collect();
        let mut preds = vec![0.0; data.len()];
        self.predict_into(&refs, &mut preds);
        let mut accum = MetricsAccum::new();
        for (pred, (_, y)) in preds.iter().zip(data.iter()) {
            accum.push(*pred, y);
        }
        accum.finish()
    }

    /// Serialized model size in bytes (the Figure 7 quantity).
    fn size_bytes(&self) -> usize;

    /// Serialize the inference state to bytes. Families without a binary
    /// format report [`CprError::Unsupported`].
    fn to_bytes(&self) -> Result<Bytes> {
        Err(CprError::Unsupported(format!(
            "{} does not serialize to bytes",
            self.name()
        )))
    }
}

/// A fit-from-[`Dataset`] factory producing boxed [`PerfModel`]s — the
/// construction half of the generic protocol (object-safe, so a harness
/// holds `Vec<Box<dyn PerfModelBuilder>>` and sweeps families in a loop).
pub trait PerfModelBuilder: Send + Sync {
    /// Family identifier for result tables.
    fn name(&self) -> &str;

    /// Fit a model on the dataset.
    fn fit_boxed(&self, data: &Dataset) -> Result<Box<dyn PerfModel>>;
}

/// Log-transform a raw configuration for baseline models: `h`-transform
/// (log for log-spaced axes, identity for uniform) on numerical parameters,
/// index passthrough for categorical ones (tree/kernel models handle
/// integer-coded categories, as sklearn does). §6.0.4's feature protocol.
pub fn transform_features(space: &ParamSpace, x: &[f64]) -> Vec<f64> {
    space
        .params()
        .iter()
        .zip(x)
        .map(|(p, &v)| match p {
            ParamSpec::Numerical { .. } => p.h(v),
            ParamSpec::Categorical { .. } => v,
        })
        .collect()
}

/// The [`Regressor`] → [`PerfModel`] bridge: pairs a fitted baseline with
/// its parameter space and owns the §6.0.4 transforms (log features in,
/// exponentiated predictions out). Works for any regressor type, boxed
/// (`BaselineModel<Box<dyn Regressor>>`, what [`BaselineFamily`] builds) or
/// concrete (`BaselineModel<Knn>`).
#[derive(Debug, Clone)]
pub struct BaselineModel<R> {
    space: ParamSpace,
    inner: R,
}

impl<R: Regressor> BaselineModel<R> {
    /// Wrap an **already fitted** regressor. (`fit_on` fits and wraps.)
    pub fn new(space: ParamSpace, inner: R) -> Self {
        Self { space, inner }
    }

    /// Fit `inner` on the dataset (applying the log transforms) and wrap.
    pub fn fit_on(space: ParamSpace, mut inner: R, data: &Dataset) -> Result<Self> {
        if data.is_empty() {
            return Err(CprError::EmptyDataset);
        }
        let d = space.dim();
        let mut xs = Vec::with_capacity(data.len());
        let mut ys = Vec::with_capacity(data.len());
        for (i, (x, y)) in data.iter().enumerate() {
            if x.len() != d {
                return Err(CprError::DimensionMismatch {
                    expected: d,
                    got: x.len(),
                });
            }
            if y <= 0.0 || !y.is_finite() {
                return Err(CprError::NonPositiveTime { index: i, value: y });
            }
            xs.push(transform_features(&space, x));
            ys.push(y.ln());
        }
        inner.fit(&xs, &ys);
        Ok(Self { space, inner })
    }

    /// The wrapped regressor.
    pub fn inner(&self) -> &R {
        &self.inner
    }
}

impl<R: Regressor> PerfModel for BaselineModel<R> {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn space(&self) -> &ParamSpace {
        &self.space
    }

    fn predict(&self, x: &[f64]) -> f64 {
        self.inner
            .predict(&transform_features(&self.space, x))
            .exp()
    }

    fn predict_into(&self, xs: &[&[f64]], out: &mut [f64]) {
        assert_eq!(xs.len(), out.len(), "predict_into: output length mismatch");
        let logx: Vec<Vec<f64>> = xs
            .iter()
            .map(|x| transform_features(&self.space, x))
            .collect();
        let preds = self.inner.predict_batch(&logx);
        for (o, p) in out.iter_mut().zip(preds) {
            *o = p.exp();
        }
    }

    fn size_bytes(&self) -> usize {
        self.inner.size_bytes()
    }
}

/// A baseline model family as a generic [`PerfModelBuilder`]: a parameter
/// space plus a factory for fresh (unfitted) regressors.
pub struct BaselineFamily {
    name: String,
    space: ParamSpace,
    factory: Box<dyn Fn() -> Box<dyn Regressor> + Send + Sync>,
}

impl BaselineFamily {
    /// Build a family from any `Fn() -> Box<dyn Regressor>` factory (the
    /// shape `cpr_baselines::tune` grids produce).
    pub fn new(
        name: impl Into<String>,
        space: ParamSpace,
        factory: impl Fn() -> Box<dyn Regressor> + Send + Sync + 'static,
    ) -> Self {
        Self {
            name: name.into(),
            space,
            factory: Box::new(factory),
        }
    }
}

impl PerfModelBuilder for BaselineFamily {
    fn name(&self) -> &str {
        &self.name
    }

    fn fit_boxed(&self, data: &Dataset) -> Result<Box<dyn PerfModel>> {
        let model = BaselineModel::fit_on(self.space.clone(), (self.factory)(), data)?;
        Ok(Box::new(model))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpr_baselines::{Knn, KnnConfig};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn power_law(n: usize, seed: u64) -> (ParamSpace, Dataset) {
        let space = ParamSpace::new(vec![
            ParamSpec::log("m", 32.0, 2048.0),
            ParamSpec::log("n", 32.0, 2048.0),
        ]);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut data = Dataset::new();
        for _ in 0..n {
            let m = 32.0 * 64.0_f64.powf(rng.gen::<f64>());
            let nn = 32.0 * 64.0_f64.powf(rng.gen::<f64>());
            data.push(vec![m, nn], 1e-4 * m.powf(1.3) * nn.powf(0.7));
        }
        (space, data)
    }

    #[test]
    fn bridge_applies_the_6_0_4_transforms() {
        let (space, train) = power_law(800, 1);
        let (_, test) = power_law(150, 2);
        let model = BaselineModel::fit_on(space, Knn::new(KnnConfig::default()), &train).unwrap();
        let m = model.evaluate(&test);
        assert!(m.mlogq < 0.2, "KNN through the bridge: MLogQ {}", m.mlogq);
        // predict() and predict_into() agree.
        let probe = vec![100.0, 700.0];
        let mut out = [0.0];
        model.predict_into(&[&probe], &mut out);
        assert_eq!(out[0].to_bits(), model.predict(&probe).to_bits());
        assert!(model.size_bytes() > 0);
        assert!(model.to_bytes().is_err(), "baselines have no byte format");
    }

    #[test]
    fn bridge_rejects_bad_datasets() {
        let (space, _) = power_law(1, 3);
        let knn = Knn::new(KnnConfig::default());
        assert!(matches!(
            BaselineModel::fit_on(space.clone(), knn.clone(), &Dataset::new()),
            Err(CprError::EmptyDataset)
        ));
        let mut bad = Dataset::new();
        bad.push(vec![100.0], 1.0);
        assert!(matches!(
            BaselineModel::fit_on(space.clone(), knn.clone(), &bad),
            Err(CprError::DimensionMismatch { .. })
        ));
        let mut neg = Dataset::new();
        neg.push(vec![100.0, 100.0], -1.0);
        assert!(matches!(
            BaselineModel::fit_on(space, knn, &neg),
            Err(CprError::NonPositiveTime { .. })
        ));
    }

    #[test]
    fn family_builder_fits_boxed_models() {
        let (space, train) = power_law(500, 4);
        let (_, test) = power_law(100, 5);
        let family = BaselineFamily::new("KNN", space, || {
            Box::new(Knn::new(KnnConfig::default())) as Box<dyn Regressor>
        });
        assert_eq!(family.name(), "KNN");
        let model = family.fit_boxed(&train).unwrap();
        assert_eq!(model.name(), "KNN");
        assert!(model.evaluate(&test).mlogq < 0.25);
    }
}
