//! Observation datasets: `(configuration, execution time)` pairs.
//!
//! Ingestion rejects non-finite values: a single NaN parameter or
//! measurement would silently poison every mean, objective, and factor it
//! touches downstream, so [`Dataset::push`] panics on NaN/Inf and
//! [`Dataset::try_push`] returns the error for callers (telemetry
//! pipelines) that quarantine bad samples instead. Non-*positive* times
//! are still accepted here — they are a *training* precondition (checked
//! at fit/update time), not an ingestion one, and some callers carry
//! non-positive targets through deliberately degenerate fixtures.

use crate::error::CprError;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// One executed configuration and its measured execution time (seconds).
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Parameter values `(x_1, …, x_d)`; categorical parameters are encoded
    /// as choice indices `0.0, 1.0, …`.
    pub x: Vec<f64>,
    /// Measured execution time, strictly positive.
    pub y: f64,
}

/// A sample's feature vector, so batch-prediction APIs generic over
/// `AsRef<[f64]>` accept `&[Sample]` directly (no per-sample clone).
impl AsRef<[f64]> for Sample {
    fn as_ref(&self) -> &[f64] {
        &self.x
    }
}

/// A set of observed configurations.
#[derive(Debug, Clone, Default)]
pub struct Dataset {
    samples: Vec<Sample>,
}

impl Dataset {
    /// Empty dataset.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build from raw pairs. Panics on non-finite values like
    /// [`Self::push`].
    pub fn from_pairs(pairs: impl IntoIterator<Item = (Vec<f64>, f64)>) -> Self {
        let mut d = Self::new();
        for (x, y) in pairs {
            d.push(x, y);
        }
        d
    }

    /// Add one observation. Panics if any parameter or the measurement is
    /// NaN/Inf; use [`Self::try_push`] to handle the rejection instead.
    pub fn push(&mut self, x: Vec<f64>, y: f64) {
        if let Err(e) = self.try_push(x, y) {
            panic!("Dataset::push: {e}");
        }
    }

    /// Add one observation, rejecting non-finite values with
    /// [`CprError::NonFiniteObservation`] (the dataset is unchanged on
    /// error).
    pub fn try_push(&mut self, x: Vec<f64>, y: f64) -> Result<(), CprError> {
        if let Some(j) = x.iter().position(|v| !v.is_finite()) {
            return Err(CprError::NonFiniteObservation {
                coordinate: Some(j),
                value: x[j],
            });
        }
        if !y.is_finite() {
            return Err(CprError::NonFiniteObservation {
                coordinate: None,
                value: y,
            });
        }
        self.samples.push(Sample { x, y });
        Ok(())
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when no observations are stored.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Borrow the samples.
    pub fn samples(&self) -> &[Sample] {
        &self.samples
    }

    /// Iterate over `(x, y)`.
    pub fn iter(&self) -> impl Iterator<Item = (&[f64], f64)> + '_ {
        self.samples.iter().map(|s| (s.x.as_slice(), s.y))
    }

    /// Feature matrix copy (one row per sample).
    pub fn xs(&self) -> Vec<Vec<f64>> {
        self.samples.iter().map(|s| s.x.clone()).collect()
    }

    /// Target vector copy.
    pub fn ys(&self) -> Vec<f64> {
        self.samples.iter().map(|s| s.y).collect()
    }

    /// Number of parameters per configuration (0 for an empty set).
    pub fn dim(&self) -> usize {
        self.samples.first().map_or(0, |s| s.x.len())
    }

    /// Deterministic random subset of `n` samples (all of them if `n >=
    /// len`). The paper trains every model on "a random sample from each
    /// training set".
    pub fn random_subset(&self, n: usize, seed: u64) -> Dataset {
        if n >= self.len() {
            return self.clone();
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let mut ids: Vec<usize> = (0..self.len()).collect();
        ids.shuffle(&mut rng);
        ids.truncate(n);
        Dataset {
            samples: ids.into_iter().map(|i| self.samples[i].clone()).collect(),
        }
    }

    /// Split into `(train, test)` with `train_frac` of samples in the first.
    pub fn split(&self, train_frac: f64, seed: u64) -> (Dataset, Dataset) {
        assert!((0.0..=1.0).contains(&train_frac), "train_frac out of range");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut ids: Vec<usize> = (0..self.len()).collect();
        ids.shuffle(&mut rng);
        let cut = (self.len() as f64 * train_frac).round() as usize;
        let take = |slice: &[usize]| Dataset {
            samples: slice.iter().map(|&i| self.samples[i].clone()).collect(),
        };
        (take(&ids[..cut]), take(&ids[cut..]))
    }

    /// Filter into a new dataset.
    pub fn filter(&self, mut keep: impl FnMut(&Sample) -> bool) -> Dataset {
        Dataset {
            samples: self.samples.iter().filter(|s| keep(s)).cloned().collect(),
        }
    }

    /// True when every execution time is strictly positive (model training
    /// precondition).
    pub fn all_positive(&self) -> bool {
        self.samples.iter().all(|s| s.y > 0.0)
    }
}

impl FromIterator<(Vec<f64>, f64)> for Dataset {
    fn from_iter<T: IntoIterator<Item = (Vec<f64>, f64)>>(iter: T) -> Self {
        Self::from_pairs(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Dataset {
        Dataset::from_pairs((0..100).map(|i| (vec![i as f64, (i * 2) as f64], 1.0 + i as f64)))
    }

    #[test]
    fn push_len_dim() {
        let mut d = Dataset::new();
        assert!(d.is_empty());
        d.push(vec![1.0, 2.0], 3.0);
        assert_eq!(d.len(), 1);
        assert_eq!(d.dim(), 2);
    }

    #[test]
    fn split_partitions() {
        let d = toy();
        let (tr, te) = d.split(0.8, 1);
        assert_eq!(tr.len(), 80);
        assert_eq!(te.len(), 20);
        // Disjoint and covering: total y-sum preserved.
        let total: f64 = d.ys().iter().sum();
        let split_total: f64 = tr.ys().iter().sum::<f64>() + te.ys().iter().sum::<f64>();
        assert!((total - split_total).abs() < 1e-9);
    }

    #[test]
    fn subset_is_deterministic() {
        let d = toy();
        let a = d.random_subset(10, 42);
        let b = d.random_subset(10, 42);
        assert_eq!(a.samples(), b.samples());
        let c = d.random_subset(10, 43);
        assert_ne!(a.samples(), c.samples());
        assert_eq!(d.random_subset(1000, 1).len(), 100);
    }

    #[test]
    fn filter_and_positive() {
        let d = toy();
        let f = d.filter(|s| s.y > 50.0);
        assert_eq!(f.len(), 50);
        assert!(d.all_positive());
        let mut bad = d.clone();
        bad.push(vec![0.0, 0.0], 0.0);
        assert!(!bad.all_positive());
    }

    #[test]
    fn rejects_nonfinite_at_ingest() {
        let mut d = Dataset::new();
        assert!(matches!(
            d.try_push(vec![1.0, f64::NAN], 2.0),
            Err(CprError::NonFiniteObservation {
                coordinate: Some(1),
                ..
            })
        ));
        assert_eq!(
            d.try_push(vec![f64::INFINITY], 2.0),
            Err(CprError::NonFiniteObservation {
                coordinate: Some(0),
                value: f64::INFINITY
            })
        );
        assert!(matches!(
            d.try_push(vec![1.0], f64::NAN),
            Err(CprError::NonFiniteObservation {
                coordinate: None,
                ..
            })
        ));
        assert!(d.is_empty(), "rejected samples must not be stored");
        // Finite but non-positive times are an ingestion-legal edge case.
        d.try_push(vec![1.0], -2.0).unwrap();
        assert_eq!(d.len(), 1);
    }

    #[test]
    #[should_panic(expected = "not finite")]
    fn push_panics_on_nan_time() {
        Dataset::new().push(vec![1.0], f64::NAN);
    }

    #[test]
    #[should_panic(expected = "not finite")]
    fn from_pairs_panics_on_inf_parameter() {
        Dataset::from_pairs(vec![(vec![f64::NEG_INFINITY], 1.0)]);
    }

    #[test]
    fn from_iterator() {
        let d: Dataset = vec![(vec![1.0], 2.0)].into_iter().collect();
        assert_eq!(d.len(), 1);
        assert_eq!(d.xs(), vec![vec![1.0]]);
        assert_eq!(d.ys(), vec![2.0]);
    }
}
