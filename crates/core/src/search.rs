//! Surrogate-driven configuration search.
//!
//! The paper's introduction motivates performance models with "optimal
//! tuning parameter selection", and its §8 notes that "optimization of
//! tensor factorizations to target accurate identification of fast
//! configurations" remains open. This module provides the consumer side:
//! enumerate/sample a configuration sub-space through a trained model and
//! return the predicted-fastest candidates, never touching the machine.

use crate::perf_model::PerfModel;
use cpr_grid::ParamSpec;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A search-space axis: fix a parameter or explore it.
#[derive(Debug, Clone)]
pub enum SearchAxis {
    /// Hold the parameter at a value (the "given inputs" of a tuning task).
    Fixed(f64),
    /// Explore an explicit candidate list.
    Candidates(Vec<f64>),
    /// Explore the parameter's full modeled range with `n` samples
    /// (log-spaced for log axes, all choices for categorical).
    Sweep(usize),
}

/// One scored configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct Candidate {
    pub x: Vec<f64>,
    pub predicted_time: f64,
}

/// Score a materialized candidate list through the model's batch path
/// (a compiled plan for CPR models, parallel across chunks) and return the
/// `top_k` fastest, ascending. Ties in predicted time break
/// deterministically toward the lower candidate index (the generation
/// order), so results are identical at any thread count.
fn score_and_rank(model: &dyn PerfModel, xs: Vec<Vec<f64>>, top_k: usize) -> Vec<Candidate> {
    let times = model.predict_batch(&xs);
    let mut order: Vec<usize> = (0..xs.len()).collect();
    order.sort_by(|&a, &b| {
        times[a]
            .partial_cmp(&times[b])
            .expect("search: NaN predicted time")
            .then(a.cmp(&b))
    });
    order.truncate(top_k.max(1));
    let mut xs = xs;
    order
        .into_iter()
        .map(|i| Candidate {
            x: std::mem::take(&mut xs[i]),
            predicted_time: times[i],
        })
        .collect()
}

/// Exhaustively score the cross-product of the search axes through any
/// [`PerfModel`] and return the `top_k` fastest predictions (ascending
/// time). Candidate enumeration is sequential (lexicographic); scoring
/// fans out through the model's batch path.
///
/// The cross-product is capped at `max_evals` (deterministic truncation by
/// lexicographic order; use coarser sweeps for huge spaces).
pub fn search(
    model: &dyn PerfModel,
    axes: &[SearchAxis],
    top_k: usize,
    max_evals: usize,
) -> Vec<Candidate> {
    let space = model.space();
    assert_eq!(axes.len(), space.dim(), "search: axis count mismatch");
    // Materialize per-axis candidate lists.
    let lists: Vec<Vec<f64>> = axes
        .iter()
        .enumerate()
        .map(|(j, axis)| match axis {
            SearchAxis::Fixed(v) => vec![*v],
            SearchAxis::Candidates(vs) => {
                assert!(!vs.is_empty(), "search: empty candidate list for axis {j}");
                vs.clone()
            }
            SearchAxis::Sweep(n) => sweep_values(space.param(j), *n),
        })
        .collect();
    let mut xs: Vec<Vec<f64>> = Vec::new();
    let mut idx = vec![0usize; lists.len()];
    'outer: loop {
        xs.push(idx.iter().zip(&lists).map(|(&i, l)| l[i]).collect());
        if xs.len() >= max_evals {
            break;
        }
        // Advance the mixed-radix counter.
        for j in (0..lists.len()).rev() {
            idx[j] += 1;
            if idx[j] < lists[j].len() {
                continue 'outer;
            }
            idx[j] = 0;
            if j == 0 {
                break 'outer;
            }
        }
    }
    score_and_rank(model, xs, top_k)
}

/// Randomized search: sample `n` configurations from the modeled ranges
/// (log-uniform on log axes) with axes optionally pinned, score through
/// any [`PerfModel`]'s batch path, return the `top_k` fastest. Sampling
/// stays sequential on the seeded RNG, so the candidate set — and, with the
/// index tie-break, the ranking — is deterministic at any thread count.
pub fn random_search(
    model: &dyn PerfModel,
    pinned: &[Option<f64>],
    n: usize,
    top_k: usize,
    seed: u64,
) -> Vec<Candidate> {
    let space = model.space();
    assert_eq!(
        pinned.len(),
        space.dim(),
        "random_search: pin count mismatch"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let xs: Vec<Vec<f64>> = (0..n)
        .map(|_| {
            (0..space.dim())
                .map(|j| {
                    if let Some(v) = pinned[j] {
                        return v;
                    }
                    match space.param(j) {
                        ParamSpec::Numerical {
                            lo,
                            hi,
                            spacing,
                            integer,
                            ..
                        } => {
                            let v = match spacing {
                                cpr_grid::Spacing::Logarithmic => {
                                    lo * (hi / lo).powf(rng.gen::<f64>())
                                }
                                cpr_grid::Spacing::Uniform => lo + (hi - lo) * rng.gen::<f64>(),
                            };
                            if *integer {
                                v.round()
                            } else {
                                v
                            }
                        }
                        ParamSpec::Categorical { cardinality, .. } => {
                            rng.gen_range(0..*cardinality) as f64
                        }
                    }
                })
                .collect()
        })
        .collect();
    score_and_rank(model, xs, top_k)
}

fn sweep_values(spec: &ParamSpec, n: usize) -> Vec<f64> {
    match spec {
        ParamSpec::Categorical { cardinality, .. } => (0..*cardinality).map(|i| i as f64).collect(),
        ParamSpec::Numerical {
            lo,
            hi,
            spacing,
            integer,
            ..
        } => {
            let n = n.max(2);
            let mut vals: Vec<f64> = (0..n)
                .map(|i| {
                    let t = i as f64 / (n - 1) as f64;
                    let v = match spacing {
                        cpr_grid::Spacing::Logarithmic => lo * (hi / lo).powf(t),
                        cpr_grid::Spacing::Uniform => lo + (hi - lo) * t,
                    };
                    if *integer {
                        v.round()
                    } else {
                        v
                    }
                })
                .collect();
            vals.dedup();
            vals
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Dataset;
    use crate::model::{CprBuilder, CprModel};
    use cpr_grid::ParamSpace;
    use rand::rngs::StdRng as TestRng;

    /// Time with a known interior optimum in `b`: t = a * ((b-300)^2 + 5e4).
    fn model_with_optimum() -> CprModel {
        let space = ParamSpace::new(vec![
            ParamSpec::log("a", 1.0, 100.0),
            ParamSpec::linear("b", 0.0, 1000.0),
        ]);
        let mut rng = <TestRng as rand::SeedableRng>::seed_from_u64(1);
        let mut data = Dataset::new();
        for _ in 0..4000 {
            let a = 1.0 * 100.0_f64.powf(rand::Rng::gen::<f64>(&mut rng));
            let b = rand::Rng::gen::<f64>(&mut rng) * 1000.0;
            data.push(vec![a, b], 1e-6 * a * ((b - 300.0).powi(2) + 5e4));
        }
        CprBuilder::new(space)
            .cells(vec![6, 20])
            .rank(3)
            .regularization(1e-7)
            .fit(&data)
            .unwrap()
    }

    #[test]
    fn exhaustive_search_finds_the_valley() {
        let model = model_with_optimum();
        let best = search(
            &model,
            &[SearchAxis::Fixed(10.0), SearchAxis::Sweep(50)],
            3,
            10_000,
        );
        assert_eq!(best.len(), 3);
        // The optimum is at b = 300; the model should land nearby.
        assert!(
            (best[0].x[1] - 300.0).abs() < 120.0,
            "picked b = {} (want ~300)",
            best[0].x[1]
        );
        // Results are sorted ascending.
        assert!(best[0].predicted_time <= best[1].predicted_time);
    }

    #[test]
    fn candidate_lists_are_respected() {
        let model = model_with_optimum();
        let best = search(
            &model,
            &[
                SearchAxis::Candidates(vec![2.0, 50.0]),
                SearchAxis::Candidates(vec![100.0, 300.0, 900.0]),
            ],
            1,
            100,
        );
        // Lowest a and b nearest the valley must win.
        assert_eq!(best[0].x, vec![2.0, 300.0]);
    }

    #[test]
    fn random_search_with_pins() {
        let model = model_with_optimum();
        let best = random_search(&model, &[Some(5.0), None], 500, 5, 7);
        assert_eq!(best.len(), 5);
        for c in &best {
            assert_eq!(c.x[0], 5.0, "pinned axis must stay fixed");
        }
        assert!(
            (best[0].x[1] - 300.0).abs() < 150.0,
            "picked b = {}",
            best[0].x[1]
        );
    }

    #[test]
    fn max_evals_caps_work() {
        let model = model_with_optimum();
        let got = search(
            &model,
            &[SearchAxis::Sweep(100), SearchAxis::Sweep(100)],
            1000,
            50,
        );
        assert!(got.len() <= 50);
    }

    #[test]
    fn deterministic_random_search() {
        let model = model_with_optimum();
        let a = random_search(&model, &[None, None], 200, 3, 11);
        let b = random_search(&model, &[None, None], 200, 3, 11);
        assert_eq!(a, b);
    }

    #[test]
    fn parallel_search_is_thread_count_invariant() {
        use rayon::ThreadPoolBuilder;
        let model = model_with_optimum();
        let run = |threads: usize| {
            let pool = ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap();
            pool.install(|| {
                (
                    search(
                        &model,
                        &[SearchAxis::Sweep(40), SearchAxis::Sweep(40)],
                        7,
                        10_000,
                    ),
                    random_search(&model, &[None, None], 500, 7, 13),
                )
            })
        };
        let (s1, r1) = run(1);
        let (s4, r4) = run(4);
        for (a, b) in s1.iter().zip(&s4).chain(r1.iter().zip(&r4)) {
            assert_eq!(a.x, b.x);
            assert_eq!(a.predicted_time.to_bits(), b.predicted_time.to_bits());
        }
    }

    #[test]
    fn ties_break_by_candidate_index() {
        let model = model_with_optimum();
        // Duplicate candidates tie exactly; the earlier index must win and
        // keep the duplicate right behind it.
        let best = search(
            &model,
            &[
                SearchAxis::Fixed(10.0),
                SearchAxis::Candidates(vec![250.0, 250.0, 800.0]),
            ],
            2,
            100,
        );
        assert_eq!(best[0].x, best[1].x);
        assert_eq!(
            best[0].predicted_time.to_bits(),
            best[1].predicted_time.to_bits()
        );
    }
}
