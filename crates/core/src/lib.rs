//! # cpr-core — application performance modeling via tensor completion
//!
//! The primary contribution of Hutter & Solomonik (SC 2023): execution times
//! of an application's configurations are binned onto a regular grid over
//! the benchmark-parameter space, represented as a partially observed
//! tensor, compressed by a low-rank CP decomposition optimized with tensor
//! completion, and queried through multilinear interpolation (Eq. 5).
//!
//! * [`model::CprModel`] / [`model::CprBuilder`] — the §5.2 interpolation
//!   model (log-transformed least squares, ALS).
//! * [`extrapolation::CprExtrapolator`] — the §5.3 extrapolation technique
//!   (positive AMN model, per-mode rank-1 SVD, MARS splines on log û).
//! * [`metrics::Metrics`] — the error metrics of Table 1 (MLogQ-family
//!   metrics are the paper's headline).
//! * [`dataset::Dataset`] — observation containers and split/subset helpers.
//! * [`serialize`] — versioned binary round-trip of trained models.

pub mod dataset;
pub mod error;
pub mod extrapolation;
pub mod metrics;
pub mod model;
pub mod perf_model;
pub mod search;
pub mod serialize;
pub mod streaming;

pub use dataset::{Dataset, Sample};
pub use error::{CprError, Result};
pub use extrapolation::{CprExtrapolator, CprExtrapolatorBuilder};
pub use metrics::{
    epsilon_expressions, holdout_metrics, EpsilonExpressions, Metrics, MetricsAccum,
};
pub use model::{Cells, CprBuilder, CprModel, FitSpec, Loss, PredictPlan};
pub use perf_model::{
    transform_features, BaselineFamily, BaselineModel, PerfModel, PerfModelBuilder,
};
pub use search::{random_search, search, Candidate, SearchAxis};
pub use streaming::StreamingCpr;

// The optimizer selection and the decomposition variants are part of the
// public fit surface; re-export them so downstream code needs only
// `cpr_core`.
pub use cpr_completion::Optimizer;
pub use cpr_tensor::Decomposition;
