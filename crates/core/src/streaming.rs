//! Online/streaming model updates (paper §8 future work).
//!
//! The paper closes by flagging "methods for efficiently updating CP
//! decompositions to effectively model streaming data in online settings"
//! as an open gap. This module implements the natural incremental scheme:
//! keep the per-cell running sums/counts from training, fold new
//! measurements in, and warm-start a few ALS sweeps from the current
//! factors instead of refitting from scratch. Warm-started sweeps converge
//! in a handful of iterations because the factors already sit near the
//! optimum of the slightly-perturbed objective.

use crate::dataset::Dataset;
use crate::error::{CprError, Result};
use crate::model::{CprBuilder, CprModel, Loss};
use cpr_completion::{als_with_streams, build_streams, AlsConfig, Optimizer, StopRule, Trace};
use cpr_grid::ParamSpace;
use cpr_tensor::{ModeStream, SparseTensor};
use std::collections::BTreeMap;

/// Per-cell running statistics plus the cell's entry id in the cached
/// observation tensor.
#[derive(Debug, Clone, Copy)]
struct CellStat {
    sum: f64,
    count: usize,
    /// Index of this cell's entry in the cached `obs` tensor.
    entry: u32,
}

/// An incrementally updatable CPR model (LogLeastSquares/ALS only — the
/// interpolation regime where online tuning data arrives).
#[derive(Debug, Clone)]
pub struct StreamingCpr {
    model: CprModel,
    space: ParamSpace,
    cells: Vec<usize>,
    lambda: f64,
    /// Running stats per observed cell, in time units.
    cell_stats: BTreeMap<Vec<usize>, CellStat>,
    /// Cached observation tensor: one entry per observed cell holding the
    /// recentered log-mean, revised in place as means move. Entry order is
    /// insertion order (initial cells in map order, streamed cells
    /// appended), so refits never rebuild it.
    obs: SparseTensor,
    /// Cached per-mode observation streams, extended incrementally when new
    /// cells appear and value-refreshed when means change — refits skip the
    /// per-mode counting sorts entirely.
    streams: Vec<ModeStream>,
    /// Total samples absorbed.
    samples: usize,
}

impl StreamingCpr {
    /// Fit an initial model; further samples arrive through [`Self::update`].
    /// The builder already owns its [`ParamSpace`], so that is the whole
    /// configuration — warm-started update sweeps require the ALS /
    /// log-least-squares regime (the interpolation setting online tuning
    /// data arrives in).
    pub fn fit(builder: &CprBuilder, data: &Dataset) -> Result<Self> {
        match builder.spec().resolve()? {
            (Optimizer::Als, Loss::LogLeastSquares) => {}
            (opt, _) => {
                return Err(CprError::InvalidConfig(format!(
                    "streaming updates refit with warm-started ALS sweeps; \
                     optimizer {} is not supported",
                    opt.name()
                )));
            }
        }
        let space = builder.space().clone();
        let model = builder.fit(data)?;
        let cells: Vec<usize> = (0..model.grid().order())
            .map(|m| model.grid().axis(m).len())
            .collect();
        let mut cell_stats: BTreeMap<Vec<usize>, CellStat> = BTreeMap::new();
        for (x, y) in data.iter() {
            let idx = model.grid().cell_index(x);
            let e = cell_stats.entry(idx).or_insert(CellStat {
                sum: 0.0,
                count: 0,
                entry: 0,
            });
            e.sum += y;
            e.count += 1;
        }
        // Materialize the cached observation tensor once (map order) and
        // record each cell's entry id; streams are built from it and kept.
        let offset = model.log_offset();
        let mut obs = SparseTensor::new(&model.grid().dims());
        for (idx, stat) in cell_stats.iter_mut() {
            stat.entry = obs.nnz() as u32;
            obs.push(idx, (stat.sum / stat.count as f64).ln() - offset);
        }
        let streams = build_streams(&obs);
        Ok(Self {
            samples: data.len(),
            lambda: 1e-5,
            model,
            space,
            cells,
            cell_stats,
            obs,
            streams,
        })
    }

    /// Resume streaming updates on an already-fitted model — e.g. one
    /// recovered from a durable snapshot after a restart. The factors
    /// warm-start exactly where the persisted model left off; the
    /// per-cell running statistics start empty and rebuild from incoming
    /// batches (replayed write-ahead telemetry first, live traffic
    /// after). Until the first [`Self::update`], [`Self::model`] returns
    /// the restored model unchanged. Same regime restriction as
    /// [`Self::fit`]: log-least-squares only.
    pub fn resume(model: CprModel) -> Result<Self> {
        if model.loss() != Loss::LogLeastSquares {
            return Err(CprError::InvalidConfig(
                "streaming updates refit with warm-started ALS sweeps; \
                 only log-least-squares models can resume"
                    .to_string(),
            ));
        }
        let space = model.space().clone();
        let cells = (0..model.grid().order())
            .map(|m| model.grid().axis(m).len())
            .collect();
        let obs = SparseTensor::new(&model.grid().dims());
        let streams = build_streams(&obs);
        Ok(Self {
            samples: 0,
            lambda: 1e-5,
            model,
            space,
            cells,
            cell_stats: BTreeMap::new(),
            obs,
            streams,
        })
    }

    /// Override the ridge parameter used by update sweeps.
    pub fn with_lambda(mut self, lambda: f64) -> Self {
        self.lambda = lambda;
        self
    }

    /// Absorb a batch of new measurements: update cell statistics and run
    /// `sweeps` warm-started ALS sweeps. Returns the sweep trace.
    ///
    /// The observation tensor and its per-mode streams are **cached**
    /// across updates: cells whose running mean moved get their value
    /// revised in place, brand-new cells are appended and folded into the
    /// streams incrementally ([`ModeStream::append_from`]), and the refit
    /// runs through [`als_with_streams`] — no per-update tensor rebuild, no
    /// per-mode counting sorts. The cached streams stay identical to a
    /// from-scratch rebuild (pinned by `cached_streams_match_fresh_rebuild`).
    pub fn update(&mut self, batch: &Dataset, sweeps: usize) -> Result<Trace> {
        let d = self.space.dim();
        for (i, (x, y)) in batch.iter().enumerate() {
            if x.len() != d {
                return Err(CprError::DimensionMismatch {
                    expected: d,
                    got: x.len(),
                });
            }
            if y <= 0.0 || !y.is_finite() {
                return Err(CprError::NonPositiveTime { index: i, value: y });
            }
        }
        let offset = self.model.log_offset();
        let first_new = self.obs.nnz();
        let mut values_moved = false;
        for (x, y) in batch.iter() {
            let idx = self.model.grid().cell_index(x);
            match self.cell_stats.get_mut(&idx) {
                Some(stat) => {
                    stat.sum += y;
                    stat.count += 1;
                    self.obs.set_value(
                        stat.entry as usize,
                        (stat.sum / stat.count as f64).ln() - offset,
                    );
                    values_moved = true;
                }
                None => {
                    let entry = self.obs.nnz() as u32;
                    self.obs.push(&idx, y.ln() - offset);
                    self.cell_stats.insert(
                        idx,
                        CellStat {
                            sum: y,
                            count: 1,
                            entry,
                        },
                    );
                }
            }
        }
        self.samples += batch.len();
        // Fold appended cells into the cached streams; re-scatter values
        // when existing means moved (appended slots were written with their
        // final value already, but a cell can be both appended and then
        // revised within one batch, so the refresh covers everything).
        if self.obs.nnz() > first_new {
            for s in &mut self.streams {
                s.append_from(&self.obs, first_new);
            }
        }
        if values_moved {
            for s in &mut self.streams {
                s.refresh_values(self.obs.values());
            }
        }

        let mut cp = self.model.cp().clone();
        let cfg = AlsConfig {
            lambda: self.lambda,
            stop: StopRule {
                max_sweeps: sweeps,
                tol: 1e-9,
            },
            scale_by_count: true,
        };
        let trace = als_with_streams(&mut cp, &self.obs, &self.streams, &cfg);
        // Rebuild the public model with refreshed factors and masks; the
        // mask-aware constructor rebakes the compiled query plan exactly
        // once, so queries after an update always see the updated model
        // (the plan is a bake, never a stale view).
        self.model = CprModel::from_parts_masked(
            self.space.clone(),
            &self.cells,
            cp,
            Loss::LogLeastSquares,
            offset,
            &self.obs,
        )?;
        Ok(trace)
    }

    /// Absorb a batch into the cached statistics, streams, and masks
    /// *without* running any refit sweeps: [`Self::update`] with a zero
    /// sweep budget. Factor matrices are bitwise-unchanged; the model is
    /// rebuilt so its observation masks (and therefore its baked plan's
    /// extrapolation corners) reflect the new cells. This is how a refit
    /// pipeline keeps telemetry from a *rejected* candidate — the data is
    /// retained for the next attempt while the factors that failed the
    /// quality gate are discarded.
    pub fn absorb(&mut self, batch: &Dataset) -> Result<()> {
        self.update(batch, 0).map(|_| ())
    }

    /// The current model.
    pub fn model(&self) -> &CprModel {
        &self.model
    }

    /// The cached observation tensor (one recentered log-mean per observed
    /// cell, insertion order).
    pub fn observations(&self) -> &SparseTensor {
        &self.obs
    }

    /// The cached per-mode observation streams the refits run on.
    pub fn streams(&self) -> &[ModeStream] {
        &self.streams
    }

    /// Total samples absorbed (initial + streamed).
    pub fn samples(&self) -> usize {
        self.samples
    }

    /// Number of observed cells so far.
    pub fn observed_cells(&self) -> usize {
        self.cell_stats.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpr_grid::ParamSpec;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn space() -> ParamSpace {
        ParamSpace::new(vec![
            ParamSpec::log("m", 32.0, 4096.0),
            ParamSpec::log("n", 32.0, 4096.0),
        ])
    }

    fn sample(n: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut data = Dataset::new();
        for _ in 0..n {
            let m = 32.0 * 128.0_f64.powf(rng.gen::<f64>());
            let nn = 32.0 * 128.0_f64.powf(rng.gen::<f64>());
            data.push(vec![m, nn], 1e-4 * m.powf(1.4) * nn.powf(0.9));
        }
        data
    }

    #[test]
    fn updates_improve_a_data_starved_model() {
        let builder = CprBuilder::new(space())
            .cells_per_dim(10)
            .rank(2)
            .regularization(1e-7);
        let test = sample(300, 99);
        let mut s = StreamingCpr::fit(&builder, &sample(60, 1)).unwrap();
        let before = s.model().evaluate(&test).mlogq;
        for batch_seed in 2..8 {
            s.update(&sample(400, batch_seed), 10).unwrap();
        }
        let after = s.model().evaluate(&test).mlogq;
        assert!(
            after < before * 0.7,
            "streaming updates should improve the fit: {before} -> {after}"
        );
        assert_eq!(s.samples(), 60 + 6 * 400);
    }

    #[test]
    fn warm_start_converges_fast() {
        let builder = CprBuilder::new(space())
            .cells_per_dim(8)
            .rank(2)
            .regularization(1e-7);
        let mut s = StreamingCpr::fit(&builder, &sample(2000, 3)).unwrap();
        // A small batch barely perturbs the objective: few sweeps suffice.
        let trace = s.update(&sample(50, 4), 20).unwrap();
        assert!(
            trace.converged || trace.sweeps() <= 20,
            "warm start should converge quickly: {:?}",
            trace.objective
        );
    }

    #[test]
    fn streaming_matches_batch_retraining_quality() {
        let builder = CprBuilder::new(space())
            .cells_per_dim(8)
            .rank(2)
            .regularization(1e-7);
        let test = sample(300, 98);
        // Stream 4 batches of 500.
        let mut s = StreamingCpr::fit(&builder, &sample(500, 10)).unwrap();
        for seed in 11..14 {
            s.update(&sample(500, seed), 15).unwrap();
        }
        let streamed = s.model().evaluate(&test).mlogq;
        // Retrain from scratch on the union.
        let mut all = Dataset::new();
        for seed in 10..14 {
            for (x, y) in sample(500, seed).iter() {
                all.push(x.to_vec(), y);
            }
        }
        let batch = builder.fit(&all).unwrap().evaluate(&test).mlogq;
        assert!(
            streamed < batch * 1.5 + 0.02,
            "streamed {streamed} should be close to batch {batch}"
        );
    }

    #[test]
    fn update_rebakes_the_query_plan() {
        let builder = CprBuilder::new(space())
            .cells_per_dim(6)
            .rank(2)
            .regularization(1e-7);
        let mut s = StreamingCpr::fit(&builder, &sample(150, 20)).unwrap();
        let probe = [100.0, 900.0];
        let before = s.model().predict(&probe);
        s.update(&sample(400, 21), 8).unwrap();
        // The rebaked plan serves the *updated* factors/masks, and stays
        // bitwise-equivalent to the naive reference path.
        let after = s.model().predict(&probe);
        assert_ne!(before.to_bits(), after.to_bits(), "plan went stale");
        assert_eq!(after.to_bits(), s.model().predict_naive(&probe).to_bits());
    }

    #[test]
    fn absorb_keeps_factors_bitwise_but_registers_data() {
        let builder = CprBuilder::new(space())
            .cells_per_dim(8)
            .rank(2)
            .regularization(1e-7);
        let mut s = StreamingCpr::fit(&builder, &sample(150, 40)).unwrap();
        let factors_before: Vec<Vec<f64>> = (0..2)
            .map(|m| s.model().cp().factor(m).as_slice().to_vec())
            .collect();
        let cells_before = s.observed_cells();
        s.absorb(&sample(400, 41)).unwrap();
        for (m, before) in factors_before.iter().enumerate() {
            let after = s.model().cp().factor(m).as_slice();
            assert_eq!(before.len(), after.len());
            for (a, b) in before.iter().zip(after) {
                assert_eq!(a.to_bits(), b.to_bits(), "absorb must not move factors");
            }
        }
        assert_eq!(s.samples(), 150 + 400);
        assert!(
            s.observed_cells() >= cells_before,
            "absorbed cells must register"
        );
        // The absorbed data participates in the *next* refit.
        s.update(&sample(10, 42), 5).unwrap();
    }

    #[test]
    fn cached_streams_match_fresh_rebuild() {
        // The incrementally maintained streams (append_from + value
        // refresh) must be *identical* to rebuilding from the cached
        // observation tensor from scratch — and a refit through them must
        // produce bitwise the same model as one through fresh streams.
        let builder = CprBuilder::new(space())
            .cells_per_dim(8)
            .rank(2)
            .regularization(1e-7);
        let mut s = StreamingCpr::fit(&builder, &sample(200, 30)).unwrap();
        for seed in 31..35 {
            s.update(&sample(150, seed), 6).unwrap();
            let obs = s.observations();
            for (m, cached) in s.streams().iter().enumerate() {
                assert_eq!(
                    *cached,
                    obs.mode_stream(m),
                    "cached stream {m} diverged from scratch rebuild"
                );
            }
        }
        // Refit equivalence: same warm start, cached streams vs fresh ones.
        let cfg = cpr_completion::AlsConfig {
            lambda: 1e-5,
            stop: cpr_completion::StopRule {
                max_sweeps: 5,
                tol: -1.0,
            },
            scale_by_count: true,
        };
        let obs = s.observations().clone();
        let mut warm_a = s.model().cp().clone();
        cpr_completion::als_with_streams(&mut warm_a, &obs, s.streams(), &cfg);
        let mut warm_b = s.model().cp().clone();
        let fresh = cpr_completion::build_streams(&obs);
        cpr_completion::als_with_streams(&mut warm_b, &obs, &fresh, &cfg);
        for m in 0..warm_a.order() {
            for (x, y) in warm_a
                .factor(m)
                .as_slice()
                .iter()
                .zip(warm_b.factor(m).as_slice())
            {
                assert_eq!(x.to_bits(), y.to_bits(), "refit diverged in mode {m}");
            }
        }
    }

    #[test]
    fn rejects_bad_batches() {
        let builder = CprBuilder::new(space()).cells_per_dim(6).rank(2);
        let mut s = StreamingCpr::fit(&builder, &sample(100, 5)).unwrap();
        let mut bad = Dataset::new();
        bad.push(vec![100.0], 1.0);
        assert!(matches!(
            s.update(&bad, 5),
            Err(CprError::DimensionMismatch { .. })
        ));
        let mut bad2 = Dataset::new();
        bad2.push(vec![100.0, 100.0], -2.0);
        assert!(matches!(
            s.update(&bad2, 5),
            Err(CprError::NonPositiveTime { .. })
        ));
    }
}
