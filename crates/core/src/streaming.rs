//! Online/streaming model updates (paper §8 future work).
//!
//! The paper closes by flagging "methods for efficiently updating CP
//! decompositions to effectively model streaming data in online settings"
//! as an open gap. This module implements the natural incremental scheme:
//! keep the per-cell running sums/counts from training, fold new
//! measurements in, and warm-start a few ALS sweeps from the current
//! factors instead of refitting from scratch. Warm-started sweeps converge
//! in a handful of iterations because the factors already sit near the
//! optimum of the slightly-perturbed objective.

use crate::dataset::Dataset;
use crate::error::{CprError, Result};
use crate::model::{CprBuilder, CprModel, Loss};
use cpr_completion::{als, AlsConfig, StopRule, Trace};
use cpr_grid::ParamSpace;
use cpr_tensor::SparseTensor;
use std::collections::BTreeMap;

/// An incrementally updatable CPR model (LogLeastSquares/ALS only — the
/// interpolation regime where online tuning data arrives).
#[derive(Debug, Clone)]
pub struct StreamingCpr {
    model: CprModel,
    space: ParamSpace,
    cells: Vec<usize>,
    lambda: f64,
    /// Running (sum, count) per observed cell, in time units.
    cell_stats: BTreeMap<Vec<usize>, (f64, usize)>,
    /// Total samples absorbed.
    samples: usize,
}

impl StreamingCpr {
    /// Fit an initial model; further samples arrive through [`Self::update`].
    pub fn fit(builder: &CprBuilder, space: ParamSpace, data: &Dataset) -> Result<Self> {
        let model = builder.fit(data)?;
        if model.loss() != Loss::LogLeastSquares {
            return Err(CprError::InvalidConfig(
                "streaming updates support the LogLeastSquares regime only".into(),
            ));
        }
        let cells: Vec<usize> = (0..model.grid().order())
            .map(|m| model.grid().axis(m).len())
            .collect();
        let mut cell_stats: BTreeMap<Vec<usize>, (f64, usize)> = BTreeMap::new();
        for (x, y) in data.iter() {
            let idx = model.grid().cell_index(x);
            let e = cell_stats.entry(idx).or_insert((0.0, 0));
            e.0 += y;
            e.1 += 1;
        }
        Ok(Self {
            samples: data.len(),
            lambda: 1e-5,
            model,
            space,
            cells,
            cell_stats,
        })
    }

    /// Override the ridge parameter used by update sweeps.
    pub fn with_lambda(mut self, lambda: f64) -> Self {
        self.lambda = lambda;
        self
    }

    /// Absorb a batch of new measurements: update cell statistics and run
    /// `sweeps` warm-started ALS sweeps. Returns the sweep trace.
    pub fn update(&mut self, batch: &Dataset, sweeps: usize) -> Result<Trace> {
        let d = self.space.dim();
        for (i, (x, y)) in batch.iter().enumerate() {
            if x.len() != d {
                return Err(CprError::DimensionMismatch {
                    expected: d,
                    got: x.len(),
                });
            }
            if y <= 0.0 || !y.is_finite() {
                return Err(CprError::NonPositiveTime { index: i, value: y });
            }
        }
        for (x, y) in batch.iter() {
            let idx = self.model.grid().cell_index(x);
            let e = self.cell_stats.entry(idx).or_insert((0.0, 0));
            e.0 += y;
            e.1 += 1;
        }
        self.samples += batch.len();

        // Rebuild the observation tensor from running stats, recentered on
        // the *current* offset so warm-started factors remain valid. The
        // bulk path reserves once for all observed cells.
        let offset = self.model.log_offset();
        let mut obs = SparseTensor::new(&self.model.grid().dims());
        obs.extend_from(
            self.cell_stats
                .iter()
                .map(|(idx, (sum, count))| (idx.as_slice(), (sum / *count as f64).ln() - offset)),
        );
        let mut cp = self.model.cp().clone();
        let cfg = AlsConfig {
            lambda: self.lambda,
            stop: StopRule {
                max_sweeps: sweeps,
                tol: 1e-9,
            },
            scale_by_count: true,
        };
        let trace = als(&mut cp, &obs, &cfg);
        // Rebuild the public model with refreshed factors and masks; the
        // mask-aware constructor rebakes the compiled query plan exactly
        // once, so queries after an update always see the updated model
        // (the plan is a bake, never a stale view).
        self.model = CprModel::from_parts_masked(
            self.space.clone(),
            &self.cells,
            cp,
            Loss::LogLeastSquares,
            offset,
            &obs,
        )?;
        Ok(trace)
    }

    /// The current model.
    pub fn model(&self) -> &CprModel {
        &self.model
    }

    /// Total samples absorbed (initial + streamed).
    pub fn samples(&self) -> usize {
        self.samples
    }

    /// Number of observed cells so far.
    pub fn observed_cells(&self) -> usize {
        self.cell_stats.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpr_grid::ParamSpec;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn space() -> ParamSpace {
        ParamSpace::new(vec![
            ParamSpec::log("m", 32.0, 4096.0),
            ParamSpec::log("n", 32.0, 4096.0),
        ])
    }

    fn sample(n: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut data = Dataset::new();
        for _ in 0..n {
            let m = 32.0 * 128.0_f64.powf(rng.gen::<f64>());
            let nn = 32.0 * 128.0_f64.powf(rng.gen::<f64>());
            data.push(vec![m, nn], 1e-4 * m.powf(1.4) * nn.powf(0.9));
        }
        data
    }

    #[test]
    fn updates_improve_a_data_starved_model() {
        let builder = CprBuilder::new(space())
            .cells_per_dim(10)
            .rank(2)
            .regularization(1e-7);
        let test = sample(300, 99);
        let mut s = StreamingCpr::fit(&builder, space(), &sample(60, 1)).unwrap();
        let before = s.model().evaluate(&test).mlogq;
        for batch_seed in 2..8 {
            s.update(&sample(400, batch_seed), 10).unwrap();
        }
        let after = s.model().evaluate(&test).mlogq;
        assert!(
            after < before * 0.7,
            "streaming updates should improve the fit: {before} -> {after}"
        );
        assert_eq!(s.samples(), 60 + 6 * 400);
    }

    #[test]
    fn warm_start_converges_fast() {
        let builder = CprBuilder::new(space())
            .cells_per_dim(8)
            .rank(2)
            .regularization(1e-7);
        let mut s = StreamingCpr::fit(&builder, space(), &sample(2000, 3)).unwrap();
        // A small batch barely perturbs the objective: few sweeps suffice.
        let trace = s.update(&sample(50, 4), 20).unwrap();
        assert!(
            trace.converged || trace.sweeps() <= 20,
            "warm start should converge quickly: {:?}",
            trace.objective
        );
    }

    #[test]
    fn streaming_matches_batch_retraining_quality() {
        let builder = CprBuilder::new(space())
            .cells_per_dim(8)
            .rank(2)
            .regularization(1e-7);
        let test = sample(300, 98);
        // Stream 4 batches of 500.
        let mut s = StreamingCpr::fit(&builder, space(), &sample(500, 10)).unwrap();
        for seed in 11..14 {
            s.update(&sample(500, seed), 15).unwrap();
        }
        let streamed = s.model().evaluate(&test).mlogq;
        // Retrain from scratch on the union.
        let mut all = Dataset::new();
        for seed in 10..14 {
            for (x, y) in sample(500, seed).iter() {
                all.push(x.to_vec(), y);
            }
        }
        let batch = builder.fit(&all).unwrap().evaluate(&test).mlogq;
        assert!(
            streamed < batch * 1.5 + 0.02,
            "streamed {streamed} should be close to batch {batch}"
        );
    }

    #[test]
    fn update_rebakes_the_query_plan() {
        let builder = CprBuilder::new(space())
            .cells_per_dim(6)
            .rank(2)
            .regularization(1e-7);
        let mut s = StreamingCpr::fit(&builder, space(), &sample(150, 20)).unwrap();
        let probe = [100.0, 900.0];
        let before = s.model().predict(&probe);
        s.update(&sample(400, 21), 8).unwrap();
        // The rebaked plan serves the *updated* factors/masks, and stays
        // bitwise-equivalent to the naive reference path.
        let after = s.model().predict(&probe);
        assert_ne!(before.to_bits(), after.to_bits(), "plan went stale");
        assert_eq!(after.to_bits(), s.model().predict_naive(&probe).to_bits());
    }

    #[test]
    fn rejects_bad_batches() {
        let builder = CprBuilder::new(space()).cells_per_dim(6).rank(2);
        let mut s = StreamingCpr::fit(&builder, space(), &sample(100, 5)).unwrap();
        let mut bad = Dataset::new();
        bad.push(vec![100.0], 1.0);
        assert!(matches!(
            s.update(&bad, 5),
            Err(CprError::DimensionMismatch { .. })
        ));
        let mut bad2 = Dataset::new();
        bad2.push(vec![100.0, 100.0], -2.0);
        assert!(matches!(
            s.update(&bad2, 5),
            Err(CprError::NonPositiveTime { .. })
        ));
    }
}
