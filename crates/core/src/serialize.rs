//! Compact binary serialization of trained CPR models.
//!
//! The paper measures model size by dumping fitted models to a file; this
//! module makes that concrete for CPR with a versioned little-endian format
//! (magic `CPRM`). Only the inference state is stored: parameter specs,
//! per-mode cell counts, the loss flag, and the CP factor matrices.

use crate::error::{CprError, Result};
use crate::model::{CprModel, Loss};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use cpr_grid::{ParamSpace, ParamSpec, Spacing};
use cpr_tensor::{CpDecomp, Matrix};

const MAGIC: u32 = 0x4350_524D; // "CPRM"
const VERSION: u16 = 1;

/// Serialize a trained model to bytes.
pub fn to_bytes(model: &CprModel) -> Bytes {
    let mut buf = BytesMut::with_capacity(model.size_bytes() + 256);
    buf.put_u32_le(MAGIC);
    buf.put_u16_le(VERSION);
    buf.put_u8(match model.loss() {
        Loss::LogLeastSquares => 0,
        Loss::MLogQ2 => 1,
    });
    buf.put_f64_le(model.log_offset());
    let grid = model.grid();
    buf.put_u16_le(grid.order() as u16);
    for mode in 0..grid.order() {
        let axis = grid.axis(mode);
        let spec = axis.spec();
        let name = spec.name().as_bytes();
        buf.put_u16_le(name.len() as u16);
        buf.put_slice(name);
        match spec {
            ParamSpec::Numerical {
                lo,
                hi,
                spacing,
                integer,
                ..
            } => {
                buf.put_u8(match spacing {
                    Spacing::Uniform => 0,
                    Spacing::Logarithmic => 1,
                });
                buf.put_u8(u8::from(*integer));
                buf.put_f64_le(*lo);
                buf.put_f64_le(*hi);
                buf.put_u32_le(axis.len() as u32);
            }
            ParamSpec::Categorical { cardinality, .. } => {
                buf.put_u8(2);
                buf.put_u8(0);
                buf.put_f64_le(0.0);
                buf.put_f64_le(0.0);
                buf.put_u32_le(*cardinality as u32);
            }
        }
    }
    let cp = model.cp();
    buf.put_u16_le(cp.rank() as u16);
    for mode in 0..cp.order() {
        let f = cp.factor(mode);
        buf.put_u32_le(f.rows() as u32);
        for &v in f.as_slice() {
            buf.put_f64_le(v);
        }
    }
    buf.freeze()
}

/// Deserialize a model previously produced by [`to_bytes`].
pub fn from_bytes(mut data: &[u8]) -> Result<CprModel> {
    let need = |data: &&[u8], n: usize, what: &str| -> Result<()> {
        if data.remaining() < n {
            Err(CprError::Corrupt(format!("truncated while reading {what}")))
        } else {
            Ok(())
        }
    };
    need(&data, 7, "header")?;
    if data.get_u32_le() != MAGIC {
        return Err(CprError::Corrupt("bad magic".into()));
    }
    let version = data.get_u16_le();
    if version != VERSION {
        return Err(CprError::Corrupt(format!("unsupported version {version}")));
    }
    let loss = match data.get_u8() {
        0 => Loss::LogLeastSquares,
        1 => Loss::MLogQ2,
        other => return Err(CprError::Corrupt(format!("bad loss tag {other}"))),
    };
    need(&data, 8, "log offset")?;
    let log_offset = data.get_f64_le();
    if !log_offset.is_finite() {
        return Err(CprError::Corrupt("non-finite log offset".into()));
    }
    need(&data, 2, "order")?;
    let order = data.get_u16_le() as usize;
    if order == 0 {
        return Err(CprError::Corrupt("zero tensor order".into()));
    }
    let mut specs = Vec::with_capacity(order);
    let mut cells = Vec::with_capacity(order);
    for _ in 0..order {
        need(&data, 2, "name length")?;
        let name_len = data.get_u16_le() as usize;
        need(&data, name_len + 2 + 16 + 4, "axis body")?;
        let name = String::from_utf8(data.copy_to_bytes(name_len).to_vec())
            .map_err(|_| CprError::Corrupt("non-utf8 parameter name".into()))?;
        let kind = data.get_u8();
        let integer = data.get_u8() != 0;
        let lo = data.get_f64_le();
        let hi = data.get_f64_le();
        let n_cells = data.get_u32_le() as usize;
        let spec = match kind {
            0 | 1 => {
                // NaN bounds must land in the Corrupt arm too, hence the
                // explicit partial_cmp rather than `lo >= hi`.
                if lo.partial_cmp(&hi) != Some(std::cmp::Ordering::Less) {
                    return Err(CprError::Corrupt(format!("bad range {lo}..{hi}")));
                }
                let spacing = if kind == 0 {
                    Spacing::Uniform
                } else {
                    Spacing::Logarithmic
                };
                if spacing == Spacing::Logarithmic && lo <= 0.0 {
                    return Err(CprError::Corrupt("log axis with non-positive lo".into()));
                }
                ParamSpec::Numerical {
                    name,
                    lo,
                    hi,
                    spacing,
                    integer,
                }
            }
            2 => {
                if n_cells == 0 {
                    return Err(CprError::Corrupt("categorical with zero choices".into()));
                }
                ParamSpec::Categorical {
                    name,
                    cardinality: n_cells,
                }
            }
            other => return Err(CprError::Corrupt(format!("bad axis kind {other}"))),
        };
        specs.push(spec);
        cells.push(n_cells.max(1));
    }
    need(&data, 2, "rank")?;
    let rank = data.get_u16_le() as usize;
    if rank == 0 {
        return Err(CprError::Corrupt("zero rank".into()));
    }
    let mut factors = Vec::with_capacity(order);
    for _ in 0..order {
        need(&data, 4, "factor rows")?;
        let rows = data.get_u32_le() as usize;
        need(&data, rows * rank * 8, "factor data")?;
        let mut m = Matrix::zeros(rows, rank);
        for v in m.as_mut_slice() {
            *v = data.get_f64_le();
        }
        if m.has_non_finite() {
            return Err(CprError::Corrupt("non-finite factor entry".into()));
        }
        factors.push(m);
    }
    let space = ParamSpace::new(specs);
    let cp = CpDecomp::from_factors(factors);
    CprModel::from_parts(space, &cells, cp, loss, log_offset)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Dataset;
    use crate::model::CprBuilder;
    use cpr_grid::ParamSpec;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn trained_model() -> CprModel {
        let space = ParamSpace::new(vec![
            ParamSpec::log("m", 32.0, 2048.0),
            ParamSpec::linear("b", 0.0, 10.0),
            ParamSpec::categorical("alg", 2),
        ]);
        let mut rng = StdRng::seed_from_u64(1);
        let mut data = Dataset::new();
        for _ in 0..800 {
            let m = 32.0 * 64.0_f64.powf(rng.gen::<f64>());
            let b = rng.gen::<f64>() * 10.0;
            let alg = rng.gen_range(0..2usize);
            data.push(
                vec![m, b, alg as f64],
                1e-3 * m.powf(1.3) * (1.0 + 0.05 * b) * [1.0, 2.3][alg],
            );
        }
        CprBuilder::new(space)
            .cells(vec![6, 4, 2])
            .rank(2)
            .fit(&data)
            .unwrap()
    }

    #[test]
    fn roundtrip_preserves_predictions() {
        let model = trained_model();
        let bytes = to_bytes(&model);
        let restored = from_bytes(&bytes).unwrap();
        for probe in [
            vec![100.0, 2.0, 0.0],
            vec![1500.0, 9.0, 1.0],
            vec![32.0, 0.0, 0.0],
            vec![2048.0, 10.0, 1.0],
        ] {
            let a = model.predict(&probe);
            let b = restored.predict(&probe);
            assert!(
                (a - b).abs() < 1e-12 * a.abs().max(1.0),
                "prediction drift at {probe:?}: {a} vs {b}"
            );
        }
    }

    #[test]
    fn size_matches_reported_bytes_approximately() {
        let model = trained_model();
        let bytes = to_bytes(&model);
        // Serialized form should be within 2x of the analytic size estimate.
        let est = model.size_bytes();
        assert!(
            bytes.len() < est * 2 + 512,
            "serialized {} vs estimate {est}",
            bytes.len()
        );
    }

    #[test]
    fn rejects_bad_magic() {
        let err = from_bytes(&[0u8; 16]).unwrap_err();
        assert!(matches!(err, CprError::Corrupt(_)));
    }

    #[test]
    fn rejects_truncation() {
        let model = trained_model();
        let bytes = to_bytes(&model);
        for cut in [3usize, 10, bytes.len() / 2, bytes.len() - 3] {
            assert!(
                from_bytes(&bytes[..cut]).is_err(),
                "truncation at {cut} silently accepted"
            );
        }
    }

    #[test]
    fn rejects_corrupted_floats() {
        let model = trained_model();
        let mut raw = to_bytes(&model).to_vec();
        // Stomp the final factor float with NaN bits.
        let n = raw.len();
        raw[n - 8..n].copy_from_slice(&f64::NAN.to_le_bytes());
        assert!(from_bytes(&raw).is_err());
    }
}
