//! Compact binary serialization of trained CPR models.
//!
//! The paper measures model size by dumping fitted models to a file; this
//! module makes that concrete for CPR with a versioned little-endian format
//! (magic `CPRM`). Only the inference state is stored: parameter specs,
//! per-mode cell counts, the loss and optimizer tags, and the decomposition
//! (CP factor matrices, or Tucker factors plus core).
//!
//! ## Version history
//!
//! * **v1** — loss tag + CP factors only (ALS/AMN era). Still readable:
//!   v1 bytes deserialize into a CP model whose optimizer tag is implied
//!   from the loss (`LogLeastSquares → Als`, `MLogQ2 → Amn`).
//! * **v2** — adds an explicit [`Optimizer`] tag and a decomposition tag
//!   (`0` = CP, `1` = Tucker with per-mode multilinear ranks and a dense
//!   core), so Tucker-ALS models round-trip and the optimizer survives
//!   reserialization. Writers emit v2.

use crate::error::{CprError, Result};
use crate::model::{CprModel, Loss};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use cpr_completion::Optimizer;
use cpr_grid::{ParamSpace, ParamSpec, Spacing};
use cpr_tensor::{CpDecomp, Decomposition, DenseTensor, Matrix, TuckerDecomp};

const MAGIC: u32 = 0x4350_524D; // "CPRM"
const VERSION: u16 = 2;

const DECOMP_CP: u8 = 0;
const DECOMP_TUCKER: u8 = 1;

fn loss_tag(loss: Loss) -> u8 {
    match loss {
        Loss::LogLeastSquares => 0,
        Loss::MLogQ2 => 1,
    }
}

fn loss_from_tag(tag: u8) -> Result<Loss> {
    match tag {
        0 => Ok(Loss::LogLeastSquares),
        1 => Ok(Loss::MLogQ2),
        other => Err(CprError::Corrupt(format!("bad loss tag {other}"))),
    }
}

/// Wire tags are **frozen** — explicit here, never derived from enum
/// order, so reordering or extending [`Optimizer`] cannot silently change
/// the meaning of persisted files (pinned by `optimizer_wire_tags_frozen`).
fn optimizer_tag(opt: Optimizer) -> u8 {
    match opt {
        Optimizer::Als => 0,
        Optimizer::Amn => 1,
        Optimizer::Ccd => 2,
        Optimizer::Sgd => 3,
        Optimizer::TuckerAls => 4,
    }
}

fn optimizer_from_tag(tag: u8) -> Result<Optimizer> {
    Ok(match tag {
        0 => Optimizer::Als,
        1 => Optimizer::Amn,
        2 => Optimizer::Ccd,
        3 => Optimizer::Sgd,
        4 => Optimizer::TuckerAls,
        other => return Err(CprError::Corrupt(format!("bad optimizer tag {other}"))),
    })
}

/// Serialize a trained model to bytes (current version: v2).
pub fn to_bytes(model: &CprModel) -> Bytes {
    let mut buf = BytesMut::with_capacity(model.size_bytes() + 256);
    buf.put_u32_le(MAGIC);
    buf.put_u16_le(VERSION);
    buf.put_u8(optimizer_tag(model.optimizer()));
    buf.put_u8(loss_tag(model.loss()));
    buf.put_f64_le(model.log_offset());
    let grid = model.grid();
    buf.put_u16_le(grid.order() as u16);
    for mode in 0..grid.order() {
        let axis = grid.axis(mode);
        let spec = axis.spec();
        let name = spec.name().as_bytes();
        buf.put_u16_le(name.len() as u16);
        buf.put_slice(name);
        match spec {
            ParamSpec::Numerical {
                lo,
                hi,
                spacing,
                integer,
                ..
            } => {
                buf.put_u8(match spacing {
                    Spacing::Uniform => 0,
                    Spacing::Logarithmic => 1,
                });
                buf.put_u8(u8::from(*integer));
                buf.put_f64_le(*lo);
                buf.put_f64_le(*hi);
                buf.put_u32_le(axis.len() as u32);
            }
            ParamSpec::Categorical { cardinality, .. } => {
                buf.put_u8(2);
                buf.put_u8(0);
                buf.put_f64_le(0.0);
                buf.put_f64_le(0.0);
                buf.put_u32_le(*cardinality as u32);
            }
        }
    }
    match model.decomposition() {
        Decomposition::Cp(cp) => {
            buf.put_u8(DECOMP_CP);
            buf.put_u16_le(cp.rank() as u16);
            for mode in 0..cp.order() {
                let f = cp.factor(mode);
                buf.put_u32_le(f.rows() as u32);
                for &v in f.as_slice() {
                    buf.put_f64_le(v);
                }
            }
        }
        Decomposition::Tucker(t) => {
            buf.put_u8(DECOMP_TUCKER);
            for &r in t.ranks() {
                buf.put_u16_le(r as u16);
            }
            for mode in 0..t.order() {
                let f = t.factor(mode);
                buf.put_u32_le(f.rows() as u32);
                for &v in f.as_slice() {
                    buf.put_f64_le(v);
                }
            }
            for &v in t.core().as_slice() {
                buf.put_f64_le(v);
            }
        }
    }
    buf.freeze()
}

/// Final-assembly errors (`from_parts*` refusing structurally
/// inconsistent parts, e.g. factor dims vs grid dims) surface as
/// `InvalidConfig` from the constructors, but when they arise from wire
/// bytes the bytes are corrupt — remap so `from_bytes` has exactly one
/// failure mode for untrusted input.
fn as_corrupt(e: CprError) -> CprError {
    match e {
        CprError::Corrupt(_) => e,
        other => CprError::Corrupt(format!("inconsistent model parts: {other}")),
    }
}

fn need(data: &&[u8], n: usize, what: &str) -> Result<()> {
    if data.remaining() < n {
        Err(CprError::Corrupt(format!("truncated while reading {what}")))
    } else {
        Ok(())
    }
}

/// Shared axis-table reader (identical layout in v1 and v2): returns the
/// parameter specs and per-mode cell counts.
fn read_axes(data: &mut &[u8], order: usize) -> Result<(Vec<ParamSpec>, Vec<usize>)> {
    let mut specs = Vec::with_capacity(order);
    let mut cells = Vec::with_capacity(order);
    for _ in 0..order {
        need(data, 2, "name length")?;
        let name_len = data.get_u16_le() as usize;
        need(data, name_len + 2 + 16 + 4, "axis body")?;
        let name = String::from_utf8(data.copy_to_bytes(name_len).to_vec())
            .map_err(|_| CprError::Corrupt("non-utf8 parameter name".into()))?;
        let kind = data.get_u8();
        let integer = data.get_u8() != 0;
        let lo = data.get_f64_le();
        let hi = data.get_f64_le();
        let n_cells = data.get_u32_le() as usize;
        // Allocation guard: building an axis allocates O(n_cells), but a
        // valid file must still carry ≥ 8 bytes of factor data per cell
        // of this mode after this point — so a count beyond remaining/8
        // is corrupt, and allocations stay bounded by the input size.
        if n_cells > data.remaining() / 8 {
            return Err(CprError::Corrupt(format!(
                "axis cell count {n_cells} exceeds payload"
            )));
        }
        let spec = match kind {
            0 | 1 => {
                // NaN bounds must land in the Corrupt arm too, hence the
                // explicit partial_cmp rather than `lo >= hi`. Infinite
                // bounds pass that ordering check but poison midpoint
                // arithmetic downstream (±inf − ±inf = NaN in the axis
                // tables), so finiteness is part of the format.
                if !lo.is_finite() || !hi.is_finite() {
                    return Err(CprError::Corrupt(format!("non-finite range {lo}..{hi}")));
                }
                if lo.partial_cmp(&hi) != Some(std::cmp::Ordering::Less) {
                    return Err(CprError::Corrupt(format!("bad range {lo}..{hi}")));
                }
                let spacing = if kind == 0 {
                    Spacing::Uniform
                } else {
                    Spacing::Logarithmic
                };
                if spacing == Spacing::Logarithmic && lo <= 0.0 {
                    return Err(CprError::Corrupt("log axis with non-positive lo".into()));
                }
                ParamSpec::Numerical {
                    name,
                    lo,
                    hi,
                    spacing,
                    integer,
                }
            }
            2 => {
                if n_cells == 0 {
                    return Err(CprError::Corrupt("categorical with zero choices".into()));
                }
                ParamSpec::Categorical {
                    name,
                    cardinality: n_cells,
                }
            }
            other => return Err(CprError::Corrupt(format!("bad axis kind {other}"))),
        };
        specs.push(spec);
        cells.push(n_cells.max(1));
    }
    Ok((specs, cells))
}

/// Read one factor matrix (`rows` header + `rows * cols` doubles),
/// rejecting non-finite entries.
fn read_factor(data: &mut &[u8], cols: usize) -> Result<Matrix> {
    need(data, 4, "factor rows")?;
    let rows = data.get_u32_le() as usize;
    need(data, rows * cols * 8, "factor data")?;
    let mut m = Matrix::zeros(rows, cols);
    for v in m.as_mut_slice() {
        *v = data.get_f64_le();
    }
    if m.has_non_finite() {
        return Err(CprError::Corrupt("non-finite factor entry".into()));
    }
    Ok(m)
}

/// Deserialize a model previously produced by [`to_bytes`] — any format
/// version ever emitted (v1 or v2).
pub fn from_bytes(mut data: &[u8]) -> Result<CprModel> {
    need(&data, 6, "header")?;
    if data.get_u32_le() != MAGIC {
        return Err(CprError::Corrupt("bad magic".into()));
    }
    let version = data.get_u16_le();
    match version {
        1 => from_bytes_v1(data),
        2 => from_bytes_v2(data),
        other => Err(CprError::Corrupt(format!("unsupported version {other}"))),
    }
}

/// v1 body: loss tag, log offset, axes, CP rank + factors. The optimizer
/// tag did not exist yet; it is implied from the loss.
fn from_bytes_v1(mut data: &[u8]) -> Result<CprModel> {
    need(&data, 1 + 8 + 2, "v1 header")?;
    let loss = loss_from_tag(data.get_u8())?;
    let log_offset = data.get_f64_le();
    if !log_offset.is_finite() {
        return Err(CprError::Corrupt("non-finite log offset".into()));
    }
    let order = data.get_u16_le() as usize;
    if order == 0 {
        return Err(CprError::Corrupt("zero tensor order".into()));
    }
    let (specs, cells) = read_axes(&mut data, order)?;
    need(&data, 2, "rank")?;
    let rank = data.get_u16_le() as usize;
    if rank == 0 {
        return Err(CprError::Corrupt("zero rank".into()));
    }
    let mut factors = Vec::with_capacity(order);
    for _ in 0..order {
        factors.push(read_factor(&mut data, rank)?);
    }
    let space = ParamSpace::new(specs);
    let cp = CpDecomp::from_factors(factors);
    CprModel::from_parts(space, &cells, cp, loss, log_offset).map_err(as_corrupt)
}

/// v2 body: optimizer tag, loss tag, log offset, axes, decomposition tag +
/// payload.
fn from_bytes_v2(mut data: &[u8]) -> Result<CprModel> {
    need(&data, 1 + 1 + 8 + 2, "v2 header")?;
    let optimizer = optimizer_from_tag(data.get_u8())?;
    let loss = loss_from_tag(data.get_u8())?;
    if optimizer.requires_positive() != (loss == Loss::MLogQ2) {
        return Err(CprError::Corrupt(format!(
            "optimizer {} paired with incompatible loss {loss:?}",
            optimizer.name()
        )));
    }
    let log_offset = data.get_f64_le();
    if !log_offset.is_finite() {
        return Err(CprError::Corrupt("non-finite log offset".into()));
    }
    let order = data.get_u16_le() as usize;
    if order == 0 {
        return Err(CprError::Corrupt("zero tensor order".into()));
    }
    let (specs, cells) = read_axes(&mut data, order)?;
    need(&data, 1, "decomposition tag")?;
    let decomp = match data.get_u8() {
        DECOMP_CP => {
            if optimizer.fits_tucker() {
                return Err(CprError::Corrupt(
                    "tucker-als tag on a CP decomposition".into(),
                ));
            }
            need(&data, 2, "rank")?;
            let rank = data.get_u16_le() as usize;
            if rank == 0 {
                return Err(CprError::Corrupt("zero rank".into()));
            }
            let mut factors = Vec::with_capacity(order);
            for _ in 0..order {
                factors.push(read_factor(&mut data, rank)?);
            }
            Decomposition::Cp(CpDecomp::from_factors(factors))
        }
        DECOMP_TUCKER => {
            if !optimizer.fits_tucker() {
                return Err(CprError::Corrupt(format!(
                    "{} tag on a Tucker decomposition",
                    optimizer.name()
                )));
            }
            need(&data, 2 * order, "tucker ranks")?;
            let mut ranks = Vec::with_capacity(order);
            for _ in 0..order {
                let r = data.get_u16_le() as usize;
                if r == 0 {
                    return Err(CprError::Corrupt("zero tucker rank".into()));
                }
                ranks.push(r);
            }
            let mut factors = Vec::with_capacity(order);
            for &r in &ranks {
                factors.push(read_factor(&mut data, r)?);
            }
            // Checked arithmetic: a crafted file can declare up to 65535
            // modes of rank 65535, whose product wraps — every malformed
            // field must land in Corrupt, never a panic or huge alloc.
            let core_len = ranks
                .iter()
                .try_fold(1usize, |a, &r| a.checked_mul(r))
                .and_then(|n| n.checked_mul(8).map(|_| n))
                .ok_or_else(|| CprError::Corrupt("tucker core size overflow".into()))?;
            need(&data, core_len * 8, "tucker core")?;
            let mut core = vec![0.0; core_len];
            for v in core.iter_mut() {
                *v = data.get_f64_le();
                if !v.is_finite() {
                    return Err(CprError::Corrupt("non-finite core entry".into()));
                }
            }
            Decomposition::Tucker(TuckerDecomp::from_parts(
                DenseTensor::from_vec(&ranks, core),
                factors,
            ))
        }
        other => return Err(CprError::Corrupt(format!("bad decomposition tag {other}"))),
    };
    let space = ParamSpace::new(specs);
    CprModel::from_parts_tagged(space, &cells, decomp, optimizer, loss, log_offset)
        .map_err(as_corrupt)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Dataset;
    use crate::model::CprBuilder;
    use cpr_grid::ParamSpec;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn training_data() -> (ParamSpace, Dataset) {
        let space = ParamSpace::new(vec![
            ParamSpec::log("m", 32.0, 2048.0),
            ParamSpec::linear("b", 0.0, 10.0),
            ParamSpec::categorical("alg", 2),
        ]);
        let mut rng = StdRng::seed_from_u64(1);
        let mut data = Dataset::new();
        for _ in 0..800 {
            let m = 32.0 * 64.0_f64.powf(rng.gen::<f64>());
            let b = rng.gen::<f64>() * 10.0;
            let alg = rng.gen_range(0..2usize);
            data.push(
                vec![m, b, alg as f64],
                1e-3 * m.powf(1.3) * (1.0 + 0.05 * b) * [1.0, 2.3][alg],
            );
        }
        (space, data)
    }

    fn trained_model() -> CprModel {
        let (space, data) = training_data();
        CprBuilder::new(space)
            .cells(vec![6, 4, 2])
            .rank(2)
            .fit(&data)
            .unwrap()
    }

    #[test]
    fn roundtrip_preserves_predictions() {
        let model = trained_model();
        let bytes = to_bytes(&model);
        let restored = from_bytes(&bytes).unwrap();
        for probe in [
            vec![100.0, 2.0, 0.0],
            vec![1500.0, 9.0, 1.0],
            vec![32.0, 0.0, 0.0],
            vec![2048.0, 10.0, 1.0],
        ] {
            let a = model.predict(&probe);
            let b = restored.predict(&probe);
            assert!(
                (a - b).abs() < 1e-12 * a.abs().max(1.0),
                "prediction drift at {probe:?}: {a} vs {b}"
            );
        }
        assert_eq!(restored.optimizer(), model.optimizer());
        assert_eq!(restored.loss(), model.loss());
    }

    #[test]
    fn tucker_model_roundtrips() {
        let (space, data) = training_data();
        let model = CprBuilder::new(space)
            .cells(vec![6, 4, 2])
            .rank(2)
            .tucker_ranks(vec![2, 2, 2])
            .optimizer(Optimizer::TuckerAls)
            .fit(&data)
            .unwrap();
        let bytes = to_bytes(&model);
        let restored = from_bytes(&bytes).unwrap();
        assert_eq!(restored.optimizer(), Optimizer::TuckerAls);
        assert!(restored.decomposition().as_tucker().is_some());
        for probe in [vec![100.0, 2.0, 0.0], vec![1500.0, 9.0, 1.0]] {
            assert_eq!(
                model.predict(&probe).to_bits(),
                restored.predict(&probe).to_bits(),
                "tucker roundtrip drift at {probe:?}"
            );
        }
    }

    #[test]
    fn size_matches_reported_bytes_approximately() {
        let model = trained_model();
        let bytes = to_bytes(&model);
        // Serialized form should be within 2x of the analytic size estimate.
        let est = model.size_bytes();
        assert!(
            bytes.len() < est * 2 + 512,
            "serialized {} vs estimate {est}",
            bytes.len()
        );
    }

    #[test]
    fn rejects_bad_magic() {
        let err = from_bytes(&[0u8; 16]).unwrap_err();
        assert!(matches!(err, CprError::Corrupt(_)));
    }

    #[test]
    fn rejects_truncation() {
        let model = trained_model();
        let bytes = to_bytes(&model);
        for cut in [3usize, 10, bytes.len() / 2, bytes.len() - 3] {
            assert!(
                from_bytes(&bytes[..cut]).is_err(),
                "truncation at {cut} silently accepted"
            );
        }
    }

    #[test]
    fn rejects_corrupted_floats() {
        let model = trained_model();
        let mut raw = to_bytes(&model).to_vec();
        // Stomp the final factor float with NaN bits.
        let n = raw.len();
        raw[n - 8..n].copy_from_slice(&f64::NAN.to_le_bytes());
        assert!(from_bytes(&raw).is_err());
    }

    #[test]
    fn optimizer_wire_tags_frozen() {
        // These byte values are in persisted files; they may never move.
        let frozen = [
            (Optimizer::Als, 0u8),
            (Optimizer::Amn, 1),
            (Optimizer::Ccd, 2),
            (Optimizer::Sgd, 3),
            (Optimizer::TuckerAls, 4),
        ];
        assert_eq!(
            frozen.len(),
            Optimizer::ALL.len(),
            "new variant: assign a new tag"
        );
        for (opt, tag) in frozen {
            assert_eq!(optimizer_tag(opt), tag, "{} tag moved", opt.name());
            assert_eq!(optimizer_from_tag(tag).unwrap(), opt);
        }
    }

    #[test]
    fn rejects_incompatible_tag_pairs() {
        let model = trained_model();
        let mut raw = to_bytes(&model).to_vec();
        // Byte 6 is the optimizer tag: claim AMN on a LogLeastSquares
        // model — the reader must refuse the pair.
        raw[6] = 1;
        assert!(matches!(from_bytes(&raw), Err(CprError::Corrupt(_))));
        // Out-of-range optimizer tag.
        let mut raw = to_bytes(&model).to_vec();
        raw[6] = 99;
        assert!(matches!(from_bytes(&raw), Err(CprError::Corrupt(_))));
    }
}
