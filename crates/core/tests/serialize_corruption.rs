//! Exhaustive corruption handling for the wire format: `from_bytes` is
//! the trust boundary between the durable store and the serving fleet,
//! so for ANY input — every truncation point, every flipped bit, random
//! multi-byte stompings, crafted hostile headers — it must return either
//! a correctly parsed model or `CprError::Corrupt`. Never a panic, and
//! never an allocation beyond a small multiple of the input size (a
//! 30-byte file must not be able to request a 4-billion-cell axis).
//!
//! Both readable format versions are swept: v2 bytes come from the
//! current writer, v1 bytes are hand-crafted here (no v1 writer exists
//! anymore — the layout is frozen in the module docs and this test).

use cpr_core::{serialize, CprBuilder, CprError, CprModel, Dataset, Loss};
use cpr_grid::{ParamSpace, ParamSpec, Spacing};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::panic::{catch_unwind, AssertUnwindSafe};

fn trained_model() -> CprModel {
    let space = ParamSpace::new(vec![
        ParamSpec::log("m", 32.0, 2048.0),
        ParamSpec::linear("b", 0.0, 10.0),
        ParamSpec::categorical("alg", 2),
    ]);
    let mut rng = StdRng::seed_from_u64(1);
    let mut data = Dataset::new();
    for _ in 0..400 {
        let m = 32.0 * 64.0_f64.powf(rng.gen::<f64>());
        let b = rng.gen::<f64>() * 10.0;
        let alg = rng.gen_range(0..2usize);
        data.push(
            vec![m, b, alg as f64],
            1e-3 * m.powf(1.3) * (1.0 + 0.05 * b) * [1.0, 2.3][alg],
        );
    }
    CprBuilder::new(space)
        .cells(vec![6, 4, 2])
        .rank(2)
        .fit(&data)
        .unwrap()
}

/// Hand-written v1 encoding of a CP model: loss tag + log offset + axes +
/// rank + factors, no optimizer or decomposition tag. Byte-for-byte the
/// layout the v1 writer produced.
fn v1_bytes(model: &CprModel) -> Vec<u8> {
    let mut b = Vec::new();
    b.extend(0x4350_524Du32.to_le_bytes()); // "CPRM"
    b.extend(1u16.to_le_bytes());
    b.push(match model.loss() {
        Loss::LogLeastSquares => 0,
        Loss::MLogQ2 => 1,
    });
    b.extend(model.log_offset().to_le_bytes());
    let grid = model.grid();
    b.extend((grid.order() as u16).to_le_bytes());
    for mode in 0..grid.order() {
        let axis = grid.axis(mode);
        let spec = axis.spec();
        let name = spec.name().as_bytes();
        b.extend((name.len() as u16).to_le_bytes());
        b.extend(name);
        match spec {
            ParamSpec::Numerical {
                lo,
                hi,
                spacing,
                integer,
                ..
            } => {
                b.push(match spacing {
                    Spacing::Uniform => 0,
                    Spacing::Logarithmic => 1,
                });
                b.push(u8::from(*integer));
                b.extend(lo.to_le_bytes());
                b.extend(hi.to_le_bytes());
                b.extend((axis.len() as u32).to_le_bytes());
            }
            ParamSpec::Categorical { cardinality, .. } => {
                b.push(2);
                b.push(0);
                b.extend(0.0f64.to_le_bytes());
                b.extend(0.0f64.to_le_bytes());
                b.extend((*cardinality as u32).to_le_bytes());
            }
        }
    }
    let cp = model.decomposition().as_cp().expect("fixture is CP");
    b.extend((cp.rank() as u16).to_le_bytes());
    for mode in 0..cp.order() {
        let f = cp.factor(mode);
        b.extend((f.rows() as u32).to_le_bytes());
        for &v in f.as_slice() {
            b.extend(v.to_le_bytes());
        }
    }
    b
}

/// The only two acceptable outcomes for untrusted bytes.
fn ok_or_corrupt(bytes: &[u8], what: impl std::fmt::Display) {
    let outcome = catch_unwind(AssertUnwindSafe(|| serialize::from_bytes(bytes)));
    match outcome {
        Err(_) => panic!("from_bytes panicked on {what}"),
        Ok(Ok(_)) => {}
        Ok(Err(CprError::Corrupt(_))) => {}
        Ok(Err(other)) => panic!("from_bytes returned non-Corrupt error on {what}: {other}"),
    }
}

#[test]
fn hand_crafted_v1_bytes_parse_bitwise_equal() {
    let model = trained_model();
    let v1 = v1_bytes(&model);
    let restored = serialize::from_bytes(&v1).unwrap();
    let mut rng = StdRng::seed_from_u64(7);
    for _ in 0..32 {
        let probe = vec![
            32.0 * 64.0_f64.powf(rng.gen::<f64>()),
            rng.gen::<f64>() * 10.0,
            rng.gen_range(0..2usize) as f64,
        ];
        assert_eq!(
            restored.predict(&probe).to_bits(),
            model.predict(&probe).to_bits(),
            "v1 decode drift at {probe:?}"
        );
    }
    // v1 carries no optimizer tag; the loss implies it.
    assert_eq!(restored.loss(), model.loss());
}

#[test]
fn every_truncation_is_corrupt_never_panic() {
    let model = trained_model();
    for (tag, bytes) in [
        ("v2", serialize::to_bytes(&model).to_vec()),
        ("v1", v1_bytes(&model)),
    ] {
        for cut in 0..bytes.len() {
            let outcome = catch_unwind(AssertUnwindSafe(|| serialize::from_bytes(&bytes[..cut])));
            match outcome {
                Err(_) => panic!("{tag} truncated at {cut}: panic"),
                Ok(Err(CprError::Corrupt(_))) => {}
                Ok(Err(other)) => panic!("{tag} truncated at {cut}: non-Corrupt error {other}"),
                Ok(Ok(_)) => panic!("{tag} truncated at {cut}: accepted a strict prefix"),
            }
        }
    }
}

#[test]
fn every_single_bit_flip_is_ok_or_corrupt_never_panic() {
    let model = trained_model();
    let bytes = serialize::to_bytes(&model).to_vec();
    for bit in 0..bytes.len() * 8 {
        let mut m = bytes.clone();
        m[bit / 8] ^= 1 << (bit % 8);
        ok_or_corrupt(&m, format_args!("v2 bit {bit}"));
    }
}

#[test]
fn every_single_byte_stomp_on_v1_is_ok_or_corrupt_never_panic() {
    let model = trained_model();
    let bytes = v1_bytes(&model);
    for i in 0..bytes.len() {
        for mask in [0xFF, 0x01, 0x80] {
            let mut m = bytes.clone();
            m[i] ^= mask;
            ok_or_corrupt(&m, format_args!("v1 byte {i} mask {mask:#x}"));
        }
    }
}

#[test]
fn hostile_axis_cell_count_is_corrupt_not_an_allocation() {
    let model = trained_model();
    let mut bytes = serialize::to_bytes(&model).to_vec();
    // v2 layout: magic(4) version(2) optimizer(1) loss(1) log_offset(8)
    // order(2) = 18, then axis 0: name_len(2) + "m"(1) + kind(1) +
    // integer(1) + lo(8) + hi(8) = 21 — the u32 cell count sits at 39.
    let off = 39;
    bytes[off..off + 4].copy_from_slice(&u32::MAX.to_le_bytes());
    match serialize::from_bytes(&bytes) {
        Err(CprError::Corrupt(msg)) => {
            assert!(
                msg.contains("exceeds payload"),
                "want the allocation guard, got: {msg}"
            );
        }
        other => panic!("4-billion-cell axis must be Corrupt, got {other:?}"),
    }
    // Same guard on a declared count just past what the payload can back.
    let plausible = (bytes.len() as u32) / 8 + 1;
    bytes[off..off + 4].copy_from_slice(&plausible.to_le_bytes());
    assert!(matches!(
        serialize::from_bytes(&bytes),
        Err(CprError::Corrupt(_))
    ));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Random multi-site corruption: any combination of byte stomps and
    /// an optional truncation still lands in Ok-or-Corrupt.
    #[test]
    fn random_mutations_are_ok_or_corrupt_never_panic(
        stomps in proptest::collection::vec((0usize..4096, 1u8..=255u8), 1..12),
        cut in 0usize..8192, // >= 4096 means "no truncation"
        v1 in 0u8..2,
    ) {
        let model = MODEL.with(|m| m.clone());
        let mut bytes = if v1 == 1 { v1_bytes(&model) } else { serialize::to_bytes(&model).to_vec() };
        for &(i, mask) in &stomps {
            let i = i % bytes.len();
            bytes[i] ^= mask;
        }
        if cut < 4096 {
            bytes.truncate(cut % (bytes.len() + 1));
        }
        let outcome = catch_unwind(AssertUnwindSafe(|| serialize::from_bytes(&bytes)));
        prop_assert!(
            matches!(outcome, Ok(Ok(_)) | Ok(Err(CprError::Corrupt(_)))),
            "mutated bytes must parse or be Corrupt"
        );
    }
}

thread_local! {
    /// One fit per thread — the proptest loop mutates copies.
    static MODEL: CprModel = trained_model();
}
