//! Serialize v2 edge cases the registry loader will hit in production:
//! zero-observation models, 1-cell axes, and maximum-order (d = 6) grids —
//! each round-tripped through `to_bytes`/`from_bytes` and then served off
//! the plan the reader bakes.

use cpr_core::{serialize, CprModel, Loss};
use cpr_grid::{ParamSpace, ParamSpec};
use cpr_tensor::{CpDecomp, SparseTensor, TuckerDecomp};

/// Masks are serving-side state, not wire state: a model whose every grid
/// row is unobserved (a freshly provisioned fleet slot, say) serializes to
/// the same bytes as its all-observed twin, loads cleanly, and the loaded
/// model serves off the factor values exactly as `from_parts` would.
#[test]
fn zero_observation_model_roundtrips() {
    let space = ParamSpace::new(vec![
        ParamSpec::log("m", 8.0, 1024.0),
        ParamSpec::linear("b", -2.0, 7.0),
    ]);
    let cells = [5usize, 4];
    let cp = CpDecomp::random(&[5, 4], 2, -1.0, 1.0, 31);
    let full = CprModel::from_parts(space, &cells, cp, Loss::LogLeastSquares, 0.3).unwrap();

    // Strip every observation: an empty tensor marks all rows unobserved.
    let mut zero = full.clone();
    zero.set_row_observed_from(&SparseTensor::new(&[5, 4]));

    let bytes_full = serialize::to_bytes(&full);
    let bytes_zero = serialize::to_bytes(&zero);
    assert_eq!(bytes_zero, bytes_full, "masks must not leak into the wire");

    let restored = serialize::from_bytes(&bytes_zero).unwrap();
    for probe in [[16.0, 0.0], [100.0, -2.0], [1024.0, 7.0], [3.0, 20.0]] {
        let y = restored.predict(&probe);
        assert!(y.is_finite());
        assert_eq!(
            y.to_bits(),
            full.predict(&probe).to_bits(),
            "a loaded model serves the all-observed view at {probe:?}"
        );
        // The zero-observation model itself must also serve (masked
        // fallback), even though its answers legitimately differ.
        assert!(zero.predict(&probe).is_finite());
    }
}

/// Degenerate 1-cell axes (a numerical axis collapsed to one interval, a
/// single-category parameter) survive the round trip with bitwise-equal
/// serving and a canonical re-encoding.
#[test]
fn one_cell_axes_roundtrip() {
    let space = ParamSpace::new(vec![
        ParamSpec::log("m", 8.0, 1024.0), // real range, one interval
        ParamSpec::linear("b", 0.0, 10.0),
        ParamSpec::categorical("alg", 1),
    ]);
    let cells = [1usize, 1, 1];
    for rank in [1usize, 2] {
        let cp = CpDecomp::random(&[1, 1, 1], rank, 0.2, 1.1, 7);
        let model = CprModel::from_parts(space.clone(), &cells, cp, Loss::MLogQ2, 0.0).unwrap();
        let bytes = serialize::to_bytes(&model);
        let restored = serialize::from_bytes(&bytes).unwrap();
        for probe in [[32.0, 5.0, 0.0], [32.0, 0.0, 0.0], [32.0, 30.0, 0.0]] {
            assert_eq!(
                restored.predict(&probe).to_bits(),
                model.predict(&probe).to_bits(),
                "1-cell grid drifted at {probe:?} (rank {rank})"
            );
        }
        assert_eq!(serialize::to_bytes(&restored), bytes, "re-encode drifted");
        // A one-cell-per-mode grid is the smallest possible dense table.
        assert!(restored.plan().has_dense_cache());
    }
}

/// Maximum-order grids (d = 6, the paper's largest benchmark spaces) with
/// mixed axis kinds, CP and Tucker: round trip, bitwise serving, canonical
/// bytes, and a baked plan at the far end.
#[test]
fn max_order_d6_grid_roundtrips() {
    let space = ParamSpace::new(vec![
        ParamSpec::log("m", 16.0, 4096.0),
        ParamSpec::log_int("n", 1.0, 64.0),
        ParamSpec::linear("alpha", -1.0, 1.0),
        ParamSpec::linear_int("threads", 1.0, 8.0),
        ParamSpec::categorical("alg", 3),
        ParamSpec::categorical("layout", 2),
    ]);
    let cells = [4usize, 3, 3, 4, 3, 2];
    let dims = [4usize, 3, 3, 4, 3, 2];
    let probes = [
        [100.0, 8.0, 0.5, 4.0, 1.0, 0.0],
        [16.0, 1.0, -1.0, 1.0, 0.0, 1.0],
        [4096.0, 64.0, 1.0, 8.0, 2.0, 0.0],
        [900.0, 3.0, 0.0, 6.0, 1.0, 1.0],
    ];

    let cp = CpDecomp::random(&dims, 2, -0.8, 0.8, 19);
    let cp_model =
        CprModel::from_parts(space.clone(), &cells, cp, Loss::LogLeastSquares, 0.1).unwrap();
    let tucker = TuckerDecomp::random(&dims, &[2, 2, 2, 2, 2, 2], -0.8, 0.8, 23);
    let tucker_model =
        CprModel::from_parts(space, &cells, tucker, Loss::LogLeastSquares, 0.1).unwrap();

    for model in [&cp_model, &tucker_model] {
        let bytes = serialize::to_bytes(model);
        let restored = serialize::from_bytes(&bytes).unwrap();
        assert_eq!(restored.grid().order(), 6);
        assert_eq!(restored.optimizer(), model.optimizer());
        for probe in probes {
            assert_eq!(
                restored.predict(&probe).to_bits(),
                model.predict(&probe).to_bits(),
                "d=6 serving drifted at {probe:?}"
            );
        }
        assert_eq!(serialize::to_bytes(&restored), bytes, "re-encode drifted");
        // 864 grid cells: well inside the dense-table ceiling, so the
        // reader's bake must produce the fast path.
        assert!(restored.plan().has_dense_cache());
    }
}
