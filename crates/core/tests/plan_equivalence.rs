//! The compiled-query-path contract (PR 3 tentpole): a baked
//! [`cpr_core::PredictPlan`] must be **bitwise identical** to the naive
//! reference path `CprModel::predict_naive` — across random factor models,
//! every axis kind (linear/log, float/integer, categorical), both losses,
//! random observation masks, in-domain and out-of-domain probes — and
//! batched plan queries must not depend on the thread count.

use cpr_core::{CprModel, Loss};
use cpr_grid::{ParamSpace, ParamSpec};
use cpr_tensor::CpDecomp;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rayon::ThreadPoolBuilder;

/// One randomized parameter axis covering every [`ParamSpec`] kind
/// (selected by `kind`; the vendored proptest has no `prop_oneof`).
fn axis_strategy() -> impl Strategy<Value = ParamSpec> {
    (0usize..5, 1.0..30.0f64, 2.0..100.0f64, 1usize..5).prop_map(
        |(kind, lo, span, card)| match kind {
            0 => ParamSpec::log("a", lo, lo + span),
            1 => ParamSpec::linear("a", lo - 25.0, lo - 25.0 + span),
            2 => ParamSpec::log_int("a", lo, lo + span + 40.0),
            3 => ParamSpec::linear_int("a", lo, lo + span),
            _ => ParamSpec::categorical("a", card),
        },
    )
}

/// Build a model straight from random parts (no training — the bitwise
/// contract is independent of how the factors were obtained), then
/// randomize the observed-row masks through a sparse observation tensor so
/// the masking branches of the stencil path are exercised.
fn random_model(
    params: Vec<ParamSpec>,
    cells: usize,
    rank: usize,
    loss: Loss,
    seed: u64,
) -> CprModel {
    let space = ParamSpace::new(params);
    let cells_vec = vec![cells; space.dim()];
    let (lo, hi) = match loss {
        Loss::LogLeastSquares => (-1.0, 1.0),
        Loss::MLogQ2 => (0.1, 1.5),
    };
    let grid = space.grid_with_cells(&cells_vec);
    let dims = grid.dims();
    let cp = CpDecomp::random(&dims, rank, lo, hi, seed);
    let log_offset = if loss == Loss::LogLeastSquares {
        0.37
    } else {
        0.0
    };
    let mut model = CprModel::from_parts(space, &cells_vec, cp, loss, log_offset).unwrap();
    // Random masks: each mode keeps a random non-empty subset of rows
    // "observed" (empty rows trigger the point-stencil degradation).
    let mut rng = StdRng::seed_from_u64(seed ^ 0xabcd_1234);
    let mut obs = cpr_tensor::SparseTensor::new(&dims);
    let mut idx = vec![0usize; dims.len()];
    let total: usize = dims.iter().product();
    for _ in 0..(total / 2).max(1) {
        for (j, &dj) in dims.iter().enumerate() {
            idx[j] = rng.gen_range(0..dj);
        }
        obs.push(&idx, 1.0);
    }
    model.set_row_observed_from(&obs);
    model
}

/// Random probe for one axis: mostly in-domain, sometimes far outside
/// (edge extrapolation and clamping paths).
fn probe_for(spec: &ParamSpec, rng: &mut StdRng) -> f64 {
    match spec {
        ParamSpec::Numerical { lo, hi, .. } => {
            let t = rng.gen::<f64>() * 1.6 - 0.3; // [-0.3, 1.3) around range
            lo + (hi - lo) * t
        }
        ParamSpec::Categorical { cardinality, .. } => {
            rng.gen_range(0..(*cardinality + 2)) as f64 - 1.0
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn plan_is_bitwise_identical_to_naive_predict(
        params in proptest::collection::vec(axis_strategy(), 1..4),
        cells in 1usize..7,
        rank in 1usize..6,
        log_loss in 0usize..2,
        seed in 0u64..1_000,
    ) {
        let loss = if log_loss == 0 { Loss::LogLeastSquares } else { Loss::MLogQ2 };
        let specs = params.clone();
        let model = random_model(params, cells, rank, loss, seed);
        let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x9e37_79b9));
        for _ in 0..32 {
            let x: Vec<f64> = specs.iter().map(|s| probe_for(s, &mut rng)).collect();
            let fast = model.predict(&x);
            let slow = model.predict_naive(&x);
            prop_assert_eq!(
                fast.to_bits(), slow.to_bits(),
                "plan {} != naive {} at {:?}", fast, slow, x
            );
        }
    }

    #[test]
    fn batched_plan_queries_are_thread_count_invariant(
        cells in 2usize..8,
        rank in 1usize..5,
        seed in 0u64..500,
    ) {
        let params = vec![
            ParamSpec::log("m", 8.0, 1024.0),
            ParamSpec::linear("b", 0.0, 50.0),
            ParamSpec::categorical("alg", 3),
        ];
        let specs = params.clone();
        let model = random_model(params, cells, rank, Loss::LogLeastSquares, seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5555);
        let batch: Vec<Vec<f64>> = (0..700)
            .map(|_| specs.iter().map(|s| probe_for(s, &mut rng)).collect())
            .collect();
        let run = |threads: usize| {
            let pool = ThreadPoolBuilder::new().num_threads(threads).build().unwrap();
            pool.install(|| {
                let via_batch = model.predict_batch(&batch);
                let mut via_into = vec![0.0; batch.len()];
                model.plan().predict_into(&batch, &mut via_into);
                (via_batch, via_into)
            })
        };
        let (b1, i1) = run(1);
        let (b4, i4) = run(4);
        for k in 0..batch.len() {
            prop_assert_eq!(b1[k].to_bits(), b4[k].to_bits(), "batch sample {}", k);
            prop_assert_eq!(i1[k].to_bits(), i4[k].to_bits(), "into sample {}", k);
            prop_assert_eq!(b1[k].to_bits(), i1[k].to_bits(), "batch vs into {}", k);
            prop_assert_eq!(
                b1[k].to_bits(),
                model.predict_naive(&batch[k]).to_bits(),
                "vs naive {}", k
            );
        }
    }
}

/// Grids beyond the dense-bake cap (64k cells) serve through the
/// factor-gather fallback; that path must satisfy the same bitwise
/// contract, for both single and batched queries.
#[test]
fn factor_fallback_is_bitwise_identical_beyond_dense_cap() {
    // 300 x 300 = 90_000 cells > 2^16: no dense bake.
    let params = vec![
        ParamSpec::log("m", 2.0, 1e6),
        ParamSpec::linear("b", -5.0, 5.0),
    ];
    let specs = params.clone();
    let model = random_model(params, 300, 3, Loss::LogLeastSquares, 77);
    let mut rng = StdRng::seed_from_u64(99);
    let batch: Vec<Vec<f64>> = (0..1200)
        .map(|_| specs.iter().map(|s| probe_for(s, &mut rng)).collect())
        .collect();
    let fast = model.predict_batch(&batch);
    for (x, got) in batch.iter().zip(&fast) {
        assert_eq!(got.to_bits(), model.predict_naive(x).to_bits());
        assert_eq!(got.to_bits(), model.predict(x).to_bits());
    }
}

/// Non-proptest regression: a 1-vs-4-thread determinism check on a
/// *trained* model (fit exercises real masks and a real offset), pinning
/// both the plan path and the naive path bit-for-bit.
#[test]
fn trained_model_batch_determinism_1_vs_4_threads() {
    let space = ParamSpace::new(vec![
        ParamSpec::log("m", 32.0, 4096.0),
        ParamSpec::log("n", 32.0, 4096.0),
    ]);
    let mut rng = StdRng::seed_from_u64(7);
    let mut data = cpr_core::Dataset::new();
    for _ in 0..900 {
        let m = 32.0 * 128.0_f64.powf(rng.gen::<f64>());
        let n = 32.0 * 128.0_f64.powf(rng.gen::<f64>());
        data.push(vec![m, n], 1e-4 * m.powf(1.3) * n.powf(0.9));
    }
    let model = cpr_core::CprBuilder::new(space)
        .cells_per_dim(10)
        .rank(3)
        .regularization(1e-7)
        .fit(&data)
        .unwrap();
    let batch: Vec<Vec<f64>> = (0..2000)
        .map(|_| {
            vec![
                16.0 * 512.0_f64.powf(rng.gen::<f64>()),
                16.0 * 512.0_f64.powf(rng.gen::<f64>()),
            ]
        })
        .collect();
    let run = |threads: usize| {
        let pool = ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .unwrap();
        pool.install(|| model.predict_batch(&batch))
    };
    let one = run(1);
    let four = run(4);
    for ((a, b), x) in one.iter().zip(&four).zip(&batch) {
        assert_eq!(a.to_bits(), b.to_bits());
        assert_eq!(a.to_bits(), model.predict_naive(x).to_bits());
    }
}
