//! Property-based tests for the CPR model layer.

use cpr_core::{epsilon_expressions, CprBuilder, Dataset, Metrics};
use cpr_grid::{ParamSpace, ParamSpec};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn metrics_scale_independence(
        factor in 1.01..20.0f64,
        y in 1e-6..1e3f64,
    ) {
        // MLogQ(ay) == MLogQ(y/a) for any positive a, y.
        let over = Metrics::compute(&[y * factor], &[y]);
        let under = Metrics::compute(&[y / factor], &[y]);
        prop_assert!((over.mlogq - under.mlogq).abs() < 1e-10);
        prop_assert!((over.mlogq2 - under.mlogq2).abs() < 1e-10);
    }

    #[test]
    fn table1_identities_hold_for_random_pairs(
        pairs in proptest::collection::vec((1e-3..1e3f64, 0.2..5.0f64), 1..40),
    ) {
        let truth: Vec<f64> = pairs.iter().map(|&(y, _)| y).collect();
        let pred: Vec<f64> = pairs.iter().map(|&(y, r)| y * r).collect();
        let m = Metrics::compute(&pred, &truth);
        let e = epsilon_expressions(&pred, &truth);
        let tol = 1e-9 * (1.0 + m.mae.abs() + m.mse.abs());
        prop_assert!((m.mape - e.mape).abs() < tol);
        prop_assert!((m.mae - e.mae).abs() < tol);
        prop_assert!((m.mse - e.mse).abs() < tol);
        prop_assert!((m.smape - e.smape).abs() < 1e-9);
        prop_assert!((m.lgmape - e.lgmape).abs() < 1e-9);
    }

    #[test]
    fn cpr_predictions_always_positive_and_finite(
        seed in 0u64..100,
        cells in 2usize..10,
        rank in 1usize..5,
        probe_m in 1.0..1e5f64,
        probe_n in 1.0..1e5f64,
    ) {
        let space = ParamSpace::new(vec![
            ParamSpec::log("m", 16.0, 2048.0),
            ParamSpec::log("n", 16.0, 2048.0),
        ]);
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut data = Dataset::new();
        for _ in 0..300 {
            let m = 16.0 * 128.0_f64.powf(rng.gen::<f64>());
            let n = 16.0 * 128.0_f64.powf(rng.gen::<f64>());
            data.push(vec![m, n], 1e-5 * m * n.powf(1.3));
        }
        let model = CprBuilder::new(space)
            .cells_per_dim(cells)
            .rank(rank)
            .seed(seed)
            .fit(&data)
            .unwrap();
        let p = model.predict(&[probe_m, probe_n]);
        prop_assert!(p.is_finite() && p > 0.0, "prediction {p} at ({probe_m},{probe_n})");
    }

    #[test]
    fn dataset_split_partitions_exactly(
        n in 2usize..200,
        frac in 0.0..1.0f64,
        seed in 0u64..50,
    ) {
        let data = Dataset::from_pairs((0..n).map(|i| (vec![i as f64], 1.0 + i as f64)));
        let (tr, te) = data.split(frac, seed);
        prop_assert_eq!(tr.len() + te.len(), n);
        let mut ys: Vec<f64> = tr.ys().into_iter().chain(te.ys()).collect();
        ys.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut want = data.ys();
        want.sort_by(|a, b| a.partial_cmp(b).unwrap());
        prop_assert_eq!(ys, want);
    }

    #[test]
    fn evaluate_equals_manual_metrics(seed in 0u64..50) {
        use rand::{Rng, SeedableRng};
        let space = ParamSpace::new(vec![ParamSpec::log("x", 1.0, 1000.0)]);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut data = Dataset::new();
        for _ in 0..120 {
            let x = 1.0 * 1000.0_f64.powf(rng.gen::<f64>());
            data.push(vec![x], 1e-3 * x.powf(1.7));
        }
        let model = CprBuilder::new(space).cells_per_dim(8).rank(1).fit(&data).unwrap();
        let auto = model.evaluate(&data);
        let preds: Vec<f64> = data.samples().iter().map(|s| model.predict(&s.x)).collect();
        let manual = Metrics::compute(&preds, &data.ys());
        prop_assert_eq!(auto, manual);
    }
}
