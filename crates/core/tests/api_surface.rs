//! The PR 5 API-redesign contract, pinned:
//!
//! * serialization v2 round-trips across every optimizer tag, both losses,
//!   and both decomposition variants (proptest over random model parts);
//! * v1 bytes (the pre-Tucker format) still deserialize, with the
//!   optimizer tag implied from the loss;
//! * `dyn PerfModel` is object-safe and CPR, the extrapolator, and a
//!   baseline all drive through the same harness loop — including the
//!   generic `search`/`random_search` consumers.

use cpr_baselines::{Knn, KnnConfig, Regressor};
use cpr_bench::fixtures::{power_law, random_model, TAG_COMBOS};
use cpr_core::{
    random_search, search, serialize, BaselineFamily, BaselineModel, CprBuilder,
    CprExtrapolatorBuilder, CprModel, Loss, Optimizer, PerfModel, PerfModelBuilder, SearchAxis,
};
use cpr_grid::{ParamSpace, ParamSpec, Spacing};
use cpr_tensor::{CpDecomp, TuckerDecomp};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// v2 round-trip: every tag combination, random shapes, random probes —
    /// the restored model predicts bitwise identically and keeps its tags.
    #[test]
    fn serialization_v2_roundtrips_every_tag_combo(
        combo in 0usize..TAG_COMBOS.len(),
        cells0 in 2usize..7,
        cells1 in 2usize..5,
        rank in 1usize..4,
        seed in 0u64..1000,
        probes in proptest::collection::vec(
            (1.0..2000.0f64, -5.0..10.0f64, 0.0..4.0f64), 1..8),
    ) {
        let (model, optimizer, loss) = random_model(combo, cells0, cells1, rank, seed);
        let bytes = serialize::to_bytes(&model);
        let restored = serialize::from_bytes(&bytes).unwrap();
        prop_assert_eq!(restored.optimizer(), optimizer);
        prop_assert_eq!(restored.loss(), loss);
        prop_assert_eq!(
            restored.decomposition().as_tucker().is_some(),
            model.decomposition().as_tucker().is_some()
        );
        for (m, b, alg) in probes {
            let x = [m, b, alg.floor()];
            prop_assert_eq!(
                model.predict(&x).to_bits(),
                restored.predict(&x).to_bits(),
                "prediction drift at {:?}", x
            );
        }
        // Reserialization is byte-stable (the format has one canonical
        // encoding per model).
        prop_assert_eq!(serialize::to_bytes(&restored), bytes);
    }
}

/// Hand-written v1 encoder, byte-for-byte the pre-PR5 `to_bytes` writer.
/// Kept here as the backward-compatibility fixture: if the v1 reader ever
/// drifts, this test — not a user with an old model file — notices.
fn encode_v1(space: &ParamSpace, cells: &[usize], cp: &CpDecomp, loss: Loss, off: f64) -> Vec<u8> {
    let mut buf: Vec<u8> = Vec::new();
    buf.extend_from_slice(&0x4350_524Du32.to_le_bytes()); // "CPRM"
    buf.extend_from_slice(&1u16.to_le_bytes()); // version 1
    buf.push(match loss {
        Loss::LogLeastSquares => 0,
        Loss::MLogQ2 => 1,
    });
    buf.extend_from_slice(&off.to_le_bytes());
    buf.extend_from_slice(&(space.dim() as u16).to_le_bytes());
    for (spec, &n_cells) in space.params().iter().zip(cells) {
        let name = spec.name().as_bytes();
        buf.extend_from_slice(&(name.len() as u16).to_le_bytes());
        buf.extend_from_slice(name);
        match spec {
            ParamSpec::Numerical {
                lo,
                hi,
                spacing,
                integer,
                ..
            } => {
                buf.push(match spacing {
                    Spacing::Uniform => 0,
                    Spacing::Logarithmic => 1,
                });
                buf.push(u8::from(*integer));
                buf.extend_from_slice(&lo.to_le_bytes());
                buf.extend_from_slice(&hi.to_le_bytes());
                buf.extend_from_slice(&(n_cells as u32).to_le_bytes());
            }
            ParamSpec::Categorical { cardinality, .. } => {
                buf.push(2);
                buf.push(0);
                buf.extend_from_slice(&0.0f64.to_le_bytes());
                buf.extend_from_slice(&0.0f64.to_le_bytes());
                buf.extend_from_slice(&(*cardinality as u32).to_le_bytes());
            }
        }
    }
    buf.extend_from_slice(&(cp.rank() as u16).to_le_bytes());
    for mode in 0..cp.order() {
        let f = cp.factor(mode);
        buf.extend_from_slice(&(f.rows() as u32).to_le_bytes());
        for &v in f.as_slice() {
            buf.extend_from_slice(&v.to_le_bytes());
        }
    }
    buf
}

#[test]
fn v1_bytes_still_deserialize() {
    let space = ParamSpace::new(vec![
        ParamSpec::log("m", 16.0, 512.0),
        ParamSpec::categorical("alg", 2),
    ]);
    let cells = [5usize, 2];
    for (loss, implied) in [
        (Loss::LogLeastSquares, Optimizer::Als),
        (Loss::MLogQ2, Optimizer::Amn),
    ] {
        let (lo, hi) = if loss == Loss::MLogQ2 {
            (0.2, 1.2)
        } else {
            (-1.0, 1.0)
        };
        let cp = CpDecomp::random(&[5, 2], 3, lo, hi, 42);
        let off = if loss == Loss::LogLeastSquares {
            0.5
        } else {
            0.0
        };
        let v1 = encode_v1(&space, &cells, &cp, loss, off);
        let restored = serialize::from_bytes(&v1).unwrap();
        assert_eq!(restored.loss(), loss);
        assert_eq!(restored.optimizer(), implied, "v1 implies the optimizer");
        let direct = CprModel::from_parts(space.clone(), &cells, cp.clone(), loss, off).unwrap();
        for probe in [[20.0, 0.0], [100.0, 1.0], [512.0, 1.0], [3.0, 5.0]] {
            assert_eq!(
                restored.predict(&probe).to_bits(),
                direct.predict(&probe).to_bits(),
                "v1 model diverged at {probe:?}"
            );
        }
        // A v1 model reserializes as v2 and round-trips from there.
        let v2 = serialize::to_bytes(&restored);
        assert_ne!(v2.as_ref(), v1.as_slice());
        let again = serialize::from_bytes(&v2).unwrap();
        assert_eq!(again.optimizer(), implied);
    }
}

/// A checked fixed v1 byte prefix: magic + version + loss must sit at these
/// offsets forever (the reader dispatches on them).
#[test]
fn v1_header_layout_is_frozen() {
    let space = ParamSpace::new(vec![ParamSpec::linear("a", 0.0, 1.0)]);
    let cp = CpDecomp::random(&[4], 1, -1.0, 1.0, 7);
    let v1 = encode_v1(&space, &[4], &cp, Loss::LogLeastSquares, 0.0);
    assert_eq!(&v1[0..4], &[0x4D, 0x52, 0x50, 0x43], "little-endian CPRM");
    assert_eq!(&v1[4..6], &[1, 0], "version 1");
    assert_eq!(v1[6], 0, "loss tag");
    assert!(serialize::from_bytes(&v1).is_ok());
}

/// Every constructible model must round-trip, so inconsistent tag triples
/// — which the serialization reader refuses on the way back in — are
/// rejected at construction time.
#[test]
fn inconsistent_part_tags_rejected_at_construction() {
    let space = ParamSpace::new(vec![
        ParamSpec::log("m", 8.0, 1024.0),
        ParamSpec::linear("b", -2.0, 7.0),
    ]);
    let cells = [4usize, 3];
    let tucker = TuckerDecomp::random(&[4, 3], &[2, 2], 0.1, 1.0, 5);
    // No optimizer produces a positive (MLogQ²) Tucker model.
    assert!(
        CprModel::from_parts(space.clone(), &cells, tucker.clone(), Loss::MLogQ2, 0.0).is_err()
    );
    // Model-class mismatches are rejected whichever way they lean.
    let cp = CpDecomp::random(&[4, 3], 2, 0.1, 1.0, 6);
    assert!(CprModel::from_parts_tagged(
        space.clone(),
        &cells,
        cp,
        Optimizer::TuckerAls,
        Loss::LogLeastSquares,
        0.0
    )
    .is_err());
    assert!(CprModel::from_parts_tagged(
        space.clone(),
        &cells,
        tucker.clone(),
        Optimizer::Als,
        Loss::LogLeastSquares,
        0.0
    )
    .is_err());
    // The consistent pairing still constructs and round-trips.
    let model = CprModel::from_parts(space, &cells, tucker, Loss::LogLeastSquares, 0.1).unwrap();
    let restored = serialize::from_bytes(&serialize::to_bytes(&model)).unwrap();
    assert_eq!(restored.optimizer(), Optimizer::TuckerAls);
}

/// One harness loop drives CPR (two optimizers), the extrapolator, and a
/// baseline through the same `dyn PerfModel` surface.
#[test]
fn dyn_perf_model_dispatch() {
    let (space, train) = power_law(900, 10);
    let (_, test) = power_law(200, 11);

    let builders: Vec<Box<dyn PerfModelBuilder>> = vec![
        Box::new(CprBuilder::new(space.clone()).cells_per_dim(8).rank(2)),
        Box::new(
            CprBuilder::new(space.clone())
                .cells_per_dim(8)
                .rank(2)
                .optimizer(Optimizer::TuckerAls),
        ),
        Box::new(
            CprExtrapolatorBuilder::new(space.clone())
                .cells_per_dim(6)
                .rank(2),
        ),
        Box::new(BaselineFamily::new("KNN", space.clone(), || {
            Box::new(Knn::new(KnnConfig::default())) as Box<dyn Regressor>
        })),
    ];

    let mut names = Vec::new();
    for builder in &builders {
        let model = builder.fit_boxed(&train).unwrap();
        names.push(model.name().to_string());
        assert_eq!(model.space().dim(), 2);
        let metrics = model.evaluate(&test);
        assert!(
            metrics.mlogq < 0.35,
            "{}: MLogQ {} through the dyn loop",
            model.name(),
            metrics.mlogq
        );
        assert!(model.size_bytes() > 0);
        // predict / predict_into / predict_batch agree through the vtable.
        let probe = vec![300.0, 500.0];
        let one = model.predict(&probe);
        let mut out = [0.0];
        model.predict_into(&[&probe], &mut out);
        assert_eq!(out[0].to_bits(), one.to_bits());
        let batch = model.predict_batch(std::slice::from_ref(&probe));
        assert_eq!(batch[0].to_bits(), one.to_bits());

        // The generic consumers take any dyn model.
        let best = search(
            model.as_ref(),
            &[SearchAxis::Fixed(128.0), SearchAxis::Sweep(12)],
            3,
            1000,
        );
        assert_eq!(best.len(), 3);
        assert!(best[0].predicted_time <= best[1].predicted_time);
        let rbest = random_search(model.as_ref(), &[None, Some(64.0)], 64, 2, 9);
        assert_eq!(rbest.len(), 2);
        for c in &rbest {
            assert_eq!(c.x[1], 64.0);
        }
    }
    assert_eq!(names, vec!["CPR", "CPR-Tucker", "CPR-E", "KNN"]);

    // Serialization through the trait: CPR families serialize, baselines
    // report Unsupported.
    let cpr = builders[0].fit_boxed(&train).unwrap();
    let bytes = cpr.to_bytes().unwrap();
    assert!(serialize::from_bytes(&bytes).is_ok());
    let knn = builders[3].fit_boxed(&train).unwrap();
    assert!(knn.to_bytes().is_err());
}

/// `BaselineModel` also accepts a concrete regressor and behaves like the
/// paper's §6.0.4 protocol (log features in, exp out).
#[test]
fn concrete_bridge_matches_manual_protocol() {
    let (space, train) = power_law(600, 12);
    let (_, test) = power_law(100, 13);
    let bridge =
        BaselineModel::fit_on(space.clone(), Knn::new(KnnConfig::default()), &train).unwrap();
    // Manual §6.0.4: transform features, fit on log targets, exp out.
    let mut manual = Knn::new(KnnConfig::default());
    let xs: Vec<Vec<f64>> = train
        .samples()
        .iter()
        .map(|s| cpr_core::transform_features(&space, &s.x))
        .collect();
    let ys: Vec<f64> = train.samples().iter().map(|s| s.y.ln()).collect();
    manual.fit(&xs, &ys);
    for (x, _) in test.iter() {
        let expected = manual
            .predict(&cpr_core::transform_features(&space, x))
            .exp();
        assert_eq!(bridge.predict(x).to_bits(), expected.to_bits());
    }
}
