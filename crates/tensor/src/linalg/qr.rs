//! Householder QR factorization and least-squares solves.
//!
//! The OLS solves inside MARS (both the baseline and the spline fitter used
//! by CPR's extrapolation path, paper §5.3) go through this module. Column
//! norms are tracked so rank-deficient design matrices — common during MARS
//! forward passes when a candidate hinge duplicates an existing basis — are
//! handled by zeroing the corresponding coefficients.

use crate::matrix::Matrix;

/// Compact Householder QR of an `m x n` matrix with `m >= n` handled
/// natively and `m < n` handled by the least-norm fallback in [`lstsq`].
#[derive(Debug, Clone)]
pub struct Qr {
    /// Packed factor: R in the upper triangle, Householder vectors below.
    qr: Matrix,
    /// Householder scalars.
    tau: Vec<f64>,
}

impl Qr {
    /// Factor `a` (consumed) into QR form.
    pub fn new(mut a: Matrix) -> Self {
        let (m, n) = a.shape();
        let k = m.min(n);
        let mut tau = vec![0.0; k];
        for j in 0..k {
            // Householder vector for column j, rows j..m.
            let mut norm = 0.0;
            for i in j..m {
                norm += a[(i, j)] * a[(i, j)];
            }
            let norm = norm.sqrt();
            if norm == 0.0 {
                tau[j] = 0.0;
                continue;
            }
            let alpha = if a[(j, j)] >= 0.0 { -norm } else { norm };
            let v0 = a[(j, j)] - alpha;
            // Normalize so v[j] = 1 implicitly; store v[i]/v0 below diagonal.
            let mut vnorm_sq = 1.0;
            for i in j + 1..m {
                let v = a[(i, j)] / v0;
                a[(i, j)] = v;
                vnorm_sq += v * v;
            }
            a[(j, j)] = alpha;
            tau[j] = 2.0 / vnorm_sq;
            // Apply reflector to remaining columns.
            for c in j + 1..n {
                let mut dot = a[(j, c)];
                for i in j + 1..m {
                    dot += a[(i, j)] * a[(i, c)];
                }
                let beta = tau[j] * dot;
                a[(j, c)] -= beta;
                for i in j + 1..m {
                    let vij = a[(i, j)];
                    a[(i, c)] -= beta * vij;
                }
            }
        }
        Self { qr: a, tau }
    }

    /// Apply `Qᵀ` to a vector in place.
    fn apply_qt(&self, b: &mut [f64]) {
        let (m, n) = self.qr.shape();
        for j in 0..m.min(n) {
            if self.tau[j] == 0.0 {
                continue;
            }
            let mut dot = b[j];
            for (i, &bi) in b.iter().enumerate().take(m).skip(j + 1) {
                dot += self.qr[(i, j)] * bi;
            }
            let beta = self.tau[j] * dot;
            b[j] -= beta;
            for (i, bi) in b.iter_mut().enumerate().take(m).skip(j + 1) {
                *bi -= beta * self.qr[(i, j)];
            }
        }
    }

    /// Minimum-residual solution of `A x = b` for `m >= n`.
    ///
    /// Numerically singular diagonal entries of `R` yield zero coefficients
    /// (pivot-free rank handling, adequate for MARS candidate screening).
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let (m, n) = self.qr.shape();
        assert!(m >= n, "Qr::solve requires m >= n (got {m}x{n})");
        assert_eq!(b.len(), m);
        let mut y = b.to_vec();
        self.apply_qt(&mut y);
        let mut x = vec![0.0; n];
        let rmax = (0..n)
            .map(|i| self.qr[(i, i)].abs())
            .fold(0.0_f64, f64::max);
        let tol = rmax * 1e-12 * (m.max(n) as f64);
        for i in (0..n).rev() {
            let rii = self.qr[(i, i)];
            if rii.abs() <= tol {
                x[i] = 0.0;
                continue;
            }
            let mut s = y[i];
            for (jj, &xj) in x.iter().enumerate().take(n).skip(i + 1) {
                s -= self.qr[(i, jj)] * xj;
            }
            x[i] = s / rii;
        }
        x
    }

    /// Squared residual norm `|A x - b|²` of the least-squares solution,
    /// computed from the tail of `Qᵀ b` (cheap, no explicit residual).
    pub fn residual_sq(&self, b: &[f64]) -> f64 {
        let (m, n) = self.qr.shape();
        if m <= n {
            return 0.0;
        }
        let mut y = b.to_vec();
        self.apply_qt(&mut y);
        y[n..].iter().map(|v| v * v).sum()
    }
}

/// Least-squares solve `min |A x - b|₂`; for wide systems (`m < n`) solves
/// the ridge-stabilized normal equations instead.
pub fn lstsq(a: &Matrix, b: &[f64]) -> Vec<f64> {
    let (m, n) = a.shape();
    if m >= n {
        Qr::new(a.clone()).solve(b)
    } else {
        // Wide: minimum-norm-ish solution via (AᵀA + εI) x = Aᵀ b.
        let mut g = a.gram();
        let scale = (0..n).map(|i| g[(i, i)]).fold(0.0_f64, f64::max).max(1.0);
        for i in 0..n {
            g[(i, i)] += scale * 1e-10;
        }
        let rhs = a.matvec_t(b);
        super::cholesky::solve_spd_jittered(&g, &rhs)
    }
}

/// Ridge regression solve `(AᵀA + λ m I) x = Aᵀ b` (λ scaled by row count so
/// it matches mean-squared-error objectives).
pub fn ridge(a: &Matrix, b: &[f64], lambda: f64) -> Vec<f64> {
    let (m, n) = a.shape();
    assert_eq!(b.len(), m);
    let mut g = a.gram();
    for i in 0..n {
        g[(i, i)] += lambda * m as f64;
    }
    let rhs = a.matvec_t(b);
    super::cholesky::solve_spd_jittered(&g, &rhs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::dot;

    #[test]
    fn exact_square_solve() {
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]);
        let b = vec![5.0, 10.0];
        let x = lstsq(&a, &b);
        let ax = a.matvec(&x);
        assert!((ax[0] - 5.0).abs() < 1e-10 && (ax[1] - 10.0).abs() < 1e-10);
    }

    #[test]
    fn overdetermined_matches_normal_equations() {
        // Fit y = 2x + 1 through noisy-free points: exact recovery expected.
        let xs = [0.0, 1.0, 2.0, 3.0, 4.0];
        let a = Matrix::from_fn(5, 2, |i, j| if j == 0 { 1.0 } else { xs[i] });
        let b: Vec<f64> = xs.iter().map(|x| 2.0 * x + 1.0).collect();
        let coef = lstsq(&a, &b);
        assert!((coef[0] - 1.0).abs() < 1e-10);
        assert!((coef[1] - 2.0).abs() < 1e-10);
    }

    #[test]
    fn residual_of_inconsistent_system() {
        // b not in col span: residual must equal direct computation.
        let a = Matrix::from_rows(&[&[1.0, 0.0], &[1.0, 0.0], &[0.0, 1.0]]);
        let b = vec![1.0, 3.0, 2.0];
        let qr = Qr::new(a.clone());
        let x = qr.solve(&b);
        let r: f64 = (0..3).map(|i| (dot(a.row(i), &x) - b[i]).powi(2)).sum();
        assert!((qr.residual_sq(&b) - r).abs() < 1e-10);
        assert!((x[0] - 2.0).abs() < 1e-10); // mean of 1 and 3
    }

    #[test]
    fn rank_deficient_gives_finite_solution() {
        // Duplicate columns.
        let a = Matrix::from_rows(&[&[1.0, 1.0], &[2.0, 2.0], &[3.0, 3.0]]);
        let b = vec![2.0, 4.0, 6.0];
        let x = lstsq(&a, &b);
        assert!(x.iter().all(|v| v.is_finite()));
        // Fitted values should still reproduce b.
        let ax = a.matvec(&x);
        for i in 0..3 {
            assert!((ax[i] - b[i]).abs() < 1e-8);
        }
    }

    #[test]
    fn wide_system_fits_exactly() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0]]);
        let b = vec![6.0];
        let x = lstsq(&a, &b);
        assert!((dot(&[1.0, 2.0, 3.0], &x) - 6.0).abs() < 1e-6);
    }

    #[test]
    fn ridge_shrinks_towards_zero() {
        let a = Matrix::from_fn(10, 1, |i, _| i as f64);
        let b: Vec<f64> = (0..10).map(|i| 3.0 * i as f64).collect();
        let x0 = ridge(&a, &b, 0.0);
        let x1 = ridge(&a, &b, 10.0);
        assert!((x0[0] - 3.0).abs() < 1e-8);
        assert!(x1[0] < x0[0] && x1[0] > 0.0);
    }
}
