//! Conjugate gradient on implicit symmetric positive-definite operators.
//!
//! The sparse-grid-regression baseline solves `(BᵀB + λ N I) w = Bᵀ y`
//! where `B` is the (training-points x basis-functions) design matrix that is
//! only available as matrix-vector products. The paper configures SGR with up
//! to 1000 CG iterations and tolerance 1e-4 (§6.0.4); this module provides
//! the matching primitive.

/// Outcome of a CG solve.
#[derive(Debug, Clone)]
pub struct CgResult {
    /// Final iterate.
    pub x: Vec<f64>,
    /// Iterations performed.
    pub iterations: usize,
    /// Final relative residual `|b - Ax| / |b|`.
    pub relative_residual: f64,
    /// Whether the tolerance was reached before `max_iter`.
    pub converged: bool,
}

/// Solve `A x = b` where `apply(v)` computes `A v` for an SPD operator `A`.
///
/// Starts from the zero vector. `tol` is relative to `|b|`.
pub fn conjugate_gradient(
    apply: impl Fn(&[f64]) -> Vec<f64>,
    b: &[f64],
    tol: f64,
    max_iter: usize,
) -> CgResult {
    let n = b.len();
    let bnorm = b.iter().map(|v| v * v).sum::<f64>().sqrt();
    if bnorm == 0.0 {
        return CgResult {
            x: vec![0.0; n],
            iterations: 0,
            relative_residual: 0.0,
            converged: true,
        };
    }
    let mut x = vec![0.0; n];
    let mut r = b.to_vec();
    let mut p = r.clone();
    let mut rs_old: f64 = r.iter().map(|v| v * v).sum();
    let mut iterations = 0;
    for it in 0..max_iter {
        iterations = it + 1;
        let ap = apply(&p);
        let pap: f64 = p.iter().zip(&ap).map(|(a, b)| a * b).sum();
        if pap <= 0.0 || !pap.is_finite() {
            // Operator not SPD at working precision; stop with current x.
            break;
        }
        let alpha = rs_old / pap;
        for i in 0..n {
            x[i] += alpha * p[i];
            r[i] -= alpha * ap[i];
        }
        let rs_new: f64 = r.iter().map(|v| v * v).sum();
        if rs_new.sqrt() <= tol * bnorm {
            return CgResult {
                x,
                iterations,
                relative_residual: rs_new.sqrt() / bnorm,
                converged: true,
            };
        }
        let beta = rs_new / rs_old;
        for i in 0..n {
            p[i] = r[i] + beta * p[i];
        }
        rs_old = rs_new;
    }
    let rel = rs_old.sqrt() / bnorm;
    CgResult {
        x,
        iterations,
        relative_residual: rel,
        converged: rel <= tol,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::Matrix;

    #[test]
    fn solves_spd_system() {
        let a = Matrix::from_rows(&[&[4.0, 1.0, 0.0], &[1.0, 3.0, 1.0], &[0.0, 1.0, 2.0]]);
        let b = vec![1.0, 2.0, 3.0];
        let res = conjugate_gradient(|v| a.matvec(v), &b, 1e-12, 100);
        assert!(res.converged);
        let ax = a.matvec(&res.x);
        for (l, r) in ax.iter().zip(&b) {
            assert!((l - r).abs() < 1e-9);
        }
    }

    #[test]
    fn zero_rhs_returns_zero() {
        let res = conjugate_gradient(|v| v.to_vec(), &[0.0, 0.0], 1e-10, 10);
        assert!(res.converged);
        assert_eq!(res.x, vec![0.0, 0.0]);
        assert_eq!(res.iterations, 0);
    }

    #[test]
    fn identity_converges_in_one_iteration() {
        let b = vec![3.0, -1.0, 2.0];
        let res = conjugate_gradient(|v| v.to_vec(), &b, 1e-12, 10);
        assert!(res.converged);
        assert_eq!(res.iterations, 1);
        for (l, r) in res.x.iter().zip(&b) {
            assert!((l - r).abs() < 1e-12);
        }
    }

    #[test]
    fn exact_in_n_iterations() {
        // CG converges in at most n steps in exact arithmetic.
        let a = Matrix::from_rows(&[&[5.0, 1.0], &[1.0, 5.0]]);
        let res = conjugate_gradient(|v| a.matvec(v), &[1.0, 0.0], 1e-14, 2);
        assert!(res.relative_residual < 1e-12);
    }

    #[test]
    fn respects_max_iter() {
        // Ill-conditioned system, very few iterations allowed.
        let a = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1e-8]]);
        let res = conjugate_gradient(|v| a.matvec(v), &[1.0, 1.0], 1e-14, 1);
        assert_eq!(res.iterations, 1);
    }
}
