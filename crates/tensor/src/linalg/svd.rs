//! Singular value decomposition via one-sided Jacobi rotations.
//!
//! This powers the Figure 1 study (SVD ranks of discretized performance
//! functions, raw vs. log-transformed) and the truncated reconstructions the
//! paper uses to argue that log-transformed execution-time matrices admit
//! monotone MLogQ improvement with rank.
//!
//! One-sided Jacobi orthogonalizes the columns of `A V` by plane rotations;
//! it is simple, accurate for small/medium matrices (the paper's are
//! 100x100), and gives singular values to full relative precision.

use crate::matrix::{normalize, Matrix};

/// Full (thin) SVD `A = U diag(s) Vᵀ` with singular values descending.
#[derive(Debug, Clone)]
pub struct Svd {
    /// `m x k` left singular vectors (k = min(m, n)).
    pub u: Matrix,
    /// Singular values, non-increasing.
    pub s: Vec<f64>,
    /// `n x k` right singular vectors.
    pub v: Matrix,
}

impl Svd {
    /// Compute the thin SVD of `a` by one-sided Jacobi.
    pub fn new(a: &Matrix) -> Self {
        let (m, n) = a.shape();
        if m < n {
            // Work on the transpose and swap factors.
            let t = Self::new(&a.transpose());
            return Self {
                u: t.v,
                s: t.s,
                v: t.u,
            };
        }
        let mut w = a.clone(); // columns get rotated into A V
        let mut v = Matrix::identity(n);
        let eps = 1e-14;
        let max_sweeps = 60;
        for _sweep in 0..max_sweeps {
            let mut off = 0.0_f64;
            for p in 0..n {
                for q in p + 1..n {
                    // Gram entries for the 2x2 subproblem.
                    let mut app = 0.0;
                    let mut aqq = 0.0;
                    let mut apq = 0.0;
                    for i in 0..m {
                        let wp = w[(i, p)];
                        let wq = w[(i, q)];
                        app += wp * wp;
                        aqq += wq * wq;
                        apq += wp * wq;
                    }
                    if apq.abs() <= eps * (app * aqq).sqrt() {
                        continue;
                    }
                    off = off.max(apq.abs() / (app * aqq).sqrt().max(1e-300));
                    // Jacobi rotation zeroing the (p,q) Gram entry.
                    let zeta = (aqq - app) / (2.0 * apq);
                    let t = zeta.signum() / (zeta.abs() + (1.0 + zeta * zeta).sqrt());
                    let c = 1.0 / (1.0 + t * t).sqrt();
                    let s = c * t;
                    for i in 0..m {
                        let wp = w[(i, p)];
                        let wq = w[(i, q)];
                        w[(i, p)] = c * wp - s * wq;
                        w[(i, q)] = s * wp + c * wq;
                    }
                    for i in 0..n {
                        let vp = v[(i, p)];
                        let vq = v[(i, q)];
                        v[(i, p)] = c * vp - s * vq;
                        v[(i, q)] = s * vp + c * vq;
                    }
                }
            }
            if off < eps {
                break;
            }
        }
        // Column norms are the singular values; normalized columns are U.
        let mut order: Vec<usize> = (0..n).collect();
        let mut sigmas = vec![0.0; n];
        for (j, sig) in sigmas.iter_mut().enumerate() {
            let mut col = w.col(j);
            *sig = normalize(&mut col);
        }
        order.sort_by(|&a, &b| sigmas[b].partial_cmp(&sigmas[a]).unwrap());
        let mut u = Matrix::zeros(m, n);
        let mut vv = Matrix::zeros(n, n);
        let mut s = vec![0.0; n];
        for (dst, &src) in order.iter().enumerate() {
            s[dst] = sigmas[src];
            let mut ucol = w.col(src);
            normalize(&mut ucol);
            u.set_col(dst, &ucol);
            vv.set_col(dst, &v.col(src));
        }
        Self { u, s, v: vv }
    }

    /// Rank-`r` truncated reconstruction `U_r diag(s_r) V_rᵀ`.
    pub fn truncated(&self, r: usize) -> Matrix {
        let r = r.min(self.s.len());
        let (m, n) = (self.u.rows(), self.v.rows());
        let mut out = Matrix::zeros(m, n);
        for k in 0..r {
            let sk = self.s[k];
            if sk == 0.0 {
                continue;
            }
            for i in 0..m {
                let uik = self.u[(i, k)] * sk;
                if uik == 0.0 {
                    continue;
                }
                let orow = out.row_mut(i);
                for (j, o) in orow.iter_mut().enumerate() {
                    *o += uik * self.v[(j, k)];
                }
            }
        }
        out
    }

    /// Numerical rank at relative tolerance `tol` (fraction of `s[0]`).
    pub fn rank(&self, tol: f64) -> usize {
        if self.s.is_empty() || self.s[0] == 0.0 {
            return 0;
        }
        self.s.iter().filter(|&&x| x > tol * self.s[0]).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_orthonormal_cols(m: &Matrix, tol: f64) {
        let g = m.gram();
        for i in 0..g.rows() {
            for j in 0..g.cols() {
                let want = if i == j { 1.0 } else { 0.0 };
                assert!(
                    (g[(i, j)] - want).abs() < tol,
                    "gram[{i},{j}] = {} (want {want})",
                    g[(i, j)]
                );
            }
        }
    }

    #[test]
    fn diagonal_matrix_svd() {
        let a = Matrix::from_rows(&[&[3.0, 0.0], &[0.0, 5.0]]);
        let svd = Svd::new(&a);
        assert!((svd.s[0] - 5.0).abs() < 1e-12);
        assert!((svd.s[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn reconstruction_error_small() {
        let a = Matrix::from_fn(8, 5, |i, j| ((i * 7 + j * 3) % 11) as f64 - 5.0);
        let svd = Svd::new(&a);
        let full = svd.truncated(5);
        assert!(a.sub(&full).fro_norm() < 1e-10 * a.fro_norm().max(1.0));
        assert_orthonormal_cols(&svd.u, 1e-10);
        assert_orthonormal_cols(&svd.v, 1e-10);
    }

    #[test]
    fn rank_one_matrix() {
        let u = [1.0, 2.0, 3.0];
        let v = [4.0, 5.0];
        let a = Matrix::from_fn(3, 2, |i, j| u[i] * v[j]);
        let svd = Svd::new(&a);
        assert_eq!(svd.rank(1e-10), 1);
        let expected =
            (u.iter().map(|x| x * x).sum::<f64>() * v.iter().map(|x| x * x).sum::<f64>()).sqrt();
        assert!((svd.s[0] - expected).abs() < 1e-10);
    }

    #[test]
    fn wide_matrix_handled_by_transpose() {
        let a = Matrix::from_fn(3, 7, |i, j| (i as f64 + 1.0) * (j as f64 - 2.5));
        let svd = Svd::new(&a);
        let recon = svd.truncated(3);
        assert_eq!(recon.shape(), (3, 7));
        assert!(a.sub(&recon).fro_norm() < 1e-9 * a.fro_norm());
    }

    #[test]
    fn truncation_is_best_approx_energy() {
        // Sum of two orthogonal rank-1 terms with known weights.
        let a = Matrix::from_fn(4, 4, |i, j| {
            let u1 = [0.5, 0.5, 0.5, 0.5][i] * [0.5, 0.5, 0.5, 0.5][j] * 10.0;
            let u2 = [0.5, -0.5, 0.5, -0.5][i] * [0.5, -0.5, 0.5, -0.5][j] * 2.0;
            u1 + u2
        });
        let svd = Svd::new(&a);
        let r1 = svd.truncated(1);
        // Residual energy must equal the second singular value.
        assert!((a.sub(&r1).fro_norm() - 2.0).abs() < 1e-10);
    }

    #[test]
    fn singular_values_nonincreasing() {
        let a = Matrix::from_fn(10, 6, |i, j| ((i * j) as f64).sin() + 0.1 * i as f64);
        let svd = Svd::new(&a);
        for w in svd.s.windows(2) {
            assert!(w[0] >= w[1] - 1e-12);
        }
    }
}
