//! Dense decompositions and solvers built on [`crate::matrix::Matrix`].

pub mod cg;
pub mod cholesky;
pub mod power;
pub mod qr;
pub mod svd;

pub use cg::{conjugate_gradient, CgResult};
pub use cholesky::{solve_spd_jittered, solve_spd_jittered_into, Cholesky, NotSpd};
pub use power::{dominant_triple, Rank1};
pub use qr::{lstsq, ridge, Qr};
pub use svd::Svd;
