//! Dominant singular triple by power iteration.
//!
//! CPR's extrapolation path (paper §5.3) needs the best rank-1 approximation
//! `U ≈ û σ̂ v̂ᵀ` of each strictly positive factor matrix. By the
//! Perron-Frobenius theorem that approximation is itself entrywise positive,
//! which this routine enforces by sign normalization.

use crate::matrix::{normalize, Matrix};

/// Dominant singular triple `(u, sigma, v)` with `A ≈ u * sigma * vᵀ`.
#[derive(Debug, Clone)]
pub struct Rank1 {
    pub u: Vec<f64>,
    pub sigma: f64,
    pub v: Vec<f64>,
}

impl Rank1 {
    /// Reconstruction `u * sigma * vᵀ`.
    pub fn to_matrix(&self) -> Matrix {
        Matrix::from_fn(self.u.len(), self.v.len(), |i, j| {
            self.u[i] * self.sigma * self.v[j]
        })
    }
}

/// Compute the dominant singular triple of `a` by alternating power
/// iteration on `AᵀA`, normalizing the sign so that the entry of `u` with
/// the largest magnitude is positive.
///
/// `tol` is the relative change in sigma at which iteration stops;
/// `max_iter` caps the sweeps (each sweep is two mat-vecs).
pub fn dominant_triple(a: &Matrix, tol: f64, max_iter: usize) -> Rank1 {
    let (m, n) = a.shape();
    assert!(m > 0 && n > 0, "dominant_triple: empty matrix");
    // Deterministic start: column of ones avoids rand dependency here and is
    // never orthogonal to the dominant vector of a positive matrix.
    let mut v = vec![1.0 / (n as f64).sqrt(); n];
    let mut u = vec![0.0; m];
    let mut sigma_prev = 0.0;
    let mut sigma = 0.0;
    for _ in 0..max_iter {
        u = a.matvec(&v);
        let un = normalize(&mut u);
        if un == 0.0 {
            // a is (numerically) zero.
            return Rank1 {
                u: vec![0.0; m],
                sigma: 0.0,
                v: vec![0.0; n],
            };
        }
        v = a.matvec_t(&u);
        sigma = normalize(&mut v);
        if (sigma - sigma_prev).abs() <= tol * sigma.max(1e-300) {
            break;
        }
        sigma_prev = sigma;
    }
    // Fix sign: largest-magnitude entry of u positive (Perron vector choice).
    let mut max_i = 0;
    for (i, &x) in u.iter().enumerate() {
        if x.abs() > u[max_i].abs() {
            max_i = i;
        }
    }
    if u[max_i] < 0.0 {
        for x in u.iter_mut() {
            *x = -*x;
        }
        for x in v.iter_mut() {
            *x = -*x;
        }
    }
    Rank1 { u, sigma, v }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linalg::svd::Svd;

    #[test]
    fn matches_jacobi_svd_leading_value() {
        let a = Matrix::from_fn(9, 5, |i, j| 1.0 + ((i + 2 * j) as f64).cos().abs());
        let triple = dominant_triple(&a, 1e-12, 500);
        let svd = Svd::new(&a);
        assert!((triple.sigma - svd.s[0]).abs() < 1e-8 * svd.s[0]);
    }

    #[test]
    fn positive_matrix_gives_positive_vectors() {
        let a = Matrix::from_fn(6, 4, |i, j| 0.1 + (i as f64 * 0.3 + j as f64 * 0.7).fract());
        let t = dominant_triple(&a, 1e-12, 500);
        assert!(t.u.iter().all(|&x| x > 0.0), "u not positive: {:?}", t.u);
        assert!(t.v.iter().all(|&x| x > 0.0), "v not positive: {:?}", t.v);
    }

    #[test]
    fn exact_on_rank_one() {
        let u = [2.0, 1.0, 0.5];
        let v = [1.0, 3.0];
        let a = Matrix::from_fn(3, 2, |i, j| u[i] * v[j]);
        let t = dominant_triple(&a, 1e-14, 200);
        let recon = t.to_matrix();
        assert!(a.sub(&recon).fro_norm() < 1e-10);
    }

    #[test]
    fn zero_matrix_returns_zero() {
        let a = Matrix::zeros(3, 3);
        let t = dominant_triple(&a, 1e-12, 100);
        assert_eq!(t.sigma, 0.0);
    }

    #[test]
    fn unit_vectors() {
        let a = Matrix::from_fn(5, 5, |i, j| ((i * 3 + j * 5) % 7) as f64 + 1.0);
        let t = dominant_triple(&a, 1e-13, 500);
        let un: f64 = t.u.iter().map(|x| x * x).sum();
        let vn: f64 = t.v.iter().map(|x| x * x).sum();
        assert!((un - 1.0).abs() < 1e-10);
        assert!((vn - 1.0).abs() < 1e-10);
    }
}
