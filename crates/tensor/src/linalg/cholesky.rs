//! Cholesky factorization and SPD solves.
//!
//! Used for the `R x R` normal-equation solves inside ALS/AMN row updates
//! (R <= 64 in all paper experiments) and the `N x N` kernel solves in the
//! Gaussian-process baseline.

use crate::matrix::Matrix;

/// Error raised when a matrix is not (numerically) positive definite.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NotSpd {
    /// Pivot index at which the factorization broke down.
    pub pivot: usize,
}

impl std::fmt::Display for NotSpd {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "matrix is not positive definite (pivot {} <= 0)",
            self.pivot
        )
    }
}

impl std::error::Error for NotSpd {}

/// Lower-triangular Cholesky factor `L` with `A = L Lᵀ`.
#[derive(Debug, Clone)]
pub struct Cholesky {
    l: Matrix,
}

impl Cholesky {
    /// Factor a symmetric positive-definite matrix.
    ///
    /// Only the lower triangle of `a` is read.
    pub fn new(a: &Matrix) -> Result<Self, NotSpd> {
        let n = a.rows();
        assert_eq!(n, a.cols(), "cholesky: matrix must be square");
        let mut l = Matrix::zeros(n, n);
        for j in 0..n {
            let mut d = a[(j, j)];
            for k in 0..j {
                d -= l[(j, k)] * l[(j, k)];
            }
            if d <= 0.0 || !d.is_finite() {
                return Err(NotSpd { pivot: j });
            }
            let dj = d.sqrt();
            l[(j, j)] = dj;
            for i in j + 1..n {
                let mut s = a[(i, j)];
                for k in 0..j {
                    s -= l[(i, k)] * l[(j, k)];
                }
                l[(i, j)] = s / dj;
            }
        }
        Ok(Self { l })
    }

    /// The lower-triangular factor.
    pub fn l(&self) -> &Matrix {
        &self.l
    }

    /// Solve `A x = b` given the factorization.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let n = self.l.rows();
        assert_eq!(b.len(), n);
        // Forward substitution: L y = b.
        let mut y = b.to_vec();
        for i in 0..n {
            for k in 0..i {
                y[i] -= self.l[(i, k)] * y[k];
            }
            y[i] /= self.l[(i, i)];
        }
        // Backward substitution: Lᵀ x = y.
        for i in (0..n).rev() {
            for k in i + 1..n {
                y[i] -= self.l[(k, i)] * y[k];
            }
            y[i] /= self.l[(i, i)];
        }
        y
    }

    /// Solve for multiple right-hand sides stacked as matrix columns.
    pub fn solve_matrix(&self, b: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(b.rows(), b.cols());
        for j in 0..b.cols() {
            let x = self.solve(&b.col(j));
            out.set_col(j, &x);
        }
        out
    }

    /// Log-determinant of `A` (= 2 Σ log L_ii); used by GP marginal likelihood.
    pub fn log_det(&self) -> f64 {
        (0..self.l.rows()).map(|i| self.l[(i, i)].ln()).sum::<f64>() * 2.0
    }
}

/// Factor `A + jitter·I` into the lower triangle of `l` without allocating.
/// Only the lower triangle of `a` is read; `l`'s upper triangle is left
/// untouched (and never read by [`solve_lower_into`]).
fn factor_into(a: &Matrix, jitter: f64, l: &mut Matrix) -> Result<(), NotSpd> {
    let n = a.rows();
    debug_assert_eq!(l.shape(), (n, n), "factor_into: scratch shape mismatch");
    for j in 0..n {
        let mut d = a[(j, j)] + jitter;
        for k in 0..j {
            d -= l[(j, k)] * l[(j, k)];
        }
        if d <= 0.0 || !d.is_finite() {
            return Err(NotSpd { pivot: j });
        }
        let dj = d.sqrt();
        l[(j, j)] = dj;
        for i in j + 1..n {
            let mut s = a[(i, j)];
            for k in 0..j {
                s -= l[(i, k)] * l[(j, k)];
            }
            l[(i, j)] = s / dj;
        }
    }
    Ok(())
}

/// Solve `L Lᵀ x = b` in place: `out` starts as a copy of `b` and ends as
/// `x` (forward then backward substitution, no allocation).
fn solve_lower_into(l: &Matrix, b: &[f64], out: &mut [f64]) {
    let n = l.rows();
    out.copy_from_slice(b);
    for i in 0..n {
        for k in 0..i {
            out[i] -= l[(i, k)] * out[k];
        }
        out[i] /= l[(i, i)];
    }
    for i in (0..n).rev() {
        for k in i + 1..n {
            out[i] -= l[(k, i)] * out[k];
        }
        out[i] /= l[(i, i)];
    }
}

/// Solve the SPD system `A x = b`, retrying with geometrically increasing
/// diagonal jitter if `A` is numerically semidefinite.
///
/// This is the robust primitive ALS/AMN row solves rely on: with few
/// observed entries in a fiber the Gram matrix can be singular even after
/// ridge regularization scaled by `1/|Ω_i|`.
pub fn solve_spd_jittered(a: &Matrix, b: &[f64]) -> Vec<f64> {
    let mut scratch = Matrix::zeros(a.rows(), a.rows());
    let mut out = vec![0.0; b.len()];
    solve_spd_jittered_into(a, b, &mut scratch, &mut out);
    out
}

/// Allocation-free [`solve_spd_jittered`]: the factorization lives in
/// `chol_scratch` (an `n x n` matrix the caller reuses across solves) and
/// the solution is written into `out`. This is what the optimizer row loops
/// call — one scratch per worker instead of three allocations per row.
///
/// Sizes 2/4/8/16 — the monomorphized ranks of the streamed fit kernels —
/// dispatch to a const-size factorization whose loops fully unroll
/// (`solve_jittered_fixed`); every arithmetic operation and its order is
/// identical to the generic path, so the dispatch is bitwise invisible
/// (pinned by `fixed_size_dispatch_bitwise_matches_generic`).
pub fn solve_spd_jittered_into(a: &Matrix, b: &[f64], chol_scratch: &mut Matrix, out: &mut [f64]) {
    let n = a.rows();
    assert_eq!(b.len(), n, "solve_spd_jittered_into: rhs length");
    assert_eq!(out.len(), n, "solve_spd_jittered_into: out length");
    assert_eq!(
        chol_scratch.shape(),
        (n, n),
        "solve_spd_jittered_into: scratch shape"
    );
    match n {
        2 => solve_jittered_fixed::<2>(a.as_slice(), b, chol_scratch.as_mut_slice(), out),
        4 => solve_jittered_fixed::<4>(a.as_slice(), b, chol_scratch.as_mut_slice(), out),
        8 => solve_jittered_fixed::<8>(a.as_slice(), b, chol_scratch.as_mut_slice(), out),
        16 => solve_jittered_fixed::<16>(a.as_slice(), b, chol_scratch.as_mut_slice(), out),
        _ => solve_jittered_generic(a, b, chol_scratch, out),
    }
}

fn solve_jittered_generic(a: &Matrix, b: &[f64], chol_scratch: &mut Matrix, out: &mut [f64]) {
    let n = a.rows();
    let scale = (0..n)
        .map(|i| a[(i, i)].abs())
        .fold(0.0_f64, f64::max)
        .max(1e-300);
    let mut jitter = 0.0;
    for attempt in 0..12 {
        if factor_into(a, jitter, chol_scratch).is_ok() {
            solve_lower_into(chol_scratch, b, out);
            if out.iter().all(|v| v.is_finite()) {
                return;
            }
        }
        jitter = if attempt == 0 {
            scale * 1e-12
        } else {
            jitter * 100.0
        };
    }
    // Last resort: steepest-descent-scaled right-hand side. This keeps the
    // optimizer alive on pathological inputs; callers converge away from it.
    for (o, v) in out.iter_mut().zip(b) {
        *o = v / scale;
    }
}

/// Const-size mirror of [`factor_into`] on row-major flat storage: the
/// unroll-friendly inner loops are what the streamed row solves spend their
/// `O(R³)` on. Operation-for-operation identical to the generic code.
#[inline]
fn factor_into_fixed<const N: usize>(a: &[f64], jitter: f64, l: &mut [f64]) -> bool {
    for j in 0..N {
        let mut d = a[j * N + j] + jitter;
        for k in 0..j {
            d -= l[j * N + k] * l[j * N + k];
        }
        if d <= 0.0 || !d.is_finite() {
            return false;
        }
        let dj = d.sqrt();
        l[j * N + j] = dj;
        for i in j + 1..N {
            let mut s = a[i * N + j];
            for k in 0..j {
                s -= l[i * N + k] * l[j * N + k];
            }
            l[i * N + j] = s / dj;
        }
    }
    true
}

/// Const-size mirror of [`solve_lower_into`].
#[inline]
fn solve_lower_into_fixed<const N: usize>(l: &[f64], b: &[f64], out: &mut [f64]) {
    out.copy_from_slice(b);
    for i in 0..N {
        for k in 0..i {
            out[i] -= l[i * N + k] * out[k];
        }
        out[i] /= l[i * N + i];
    }
    for i in (0..N).rev() {
        for k in i + 1..N {
            out[i] -= l[k * N + i] * out[k];
        }
        out[i] /= l[i * N + i];
    }
}

/// Const-size mirror of the jittered retry loop.
fn solve_jittered_fixed<const N: usize>(a: &[f64], b: &[f64], l: &mut [f64], out: &mut [f64]) {
    let scale = (0..N)
        .map(|i| a[i * N + i].abs())
        .fold(0.0_f64, f64::max)
        .max(1e-300);
    let mut jitter = 0.0;
    for attempt in 0..12 {
        if factor_into_fixed::<N>(a, jitter, l) {
            solve_lower_into_fixed::<N>(l, b, out);
            if out.iter().all(|v| v.is_finite()) {
                return;
            }
        }
        jitter = if attempt == 0 {
            scale * 1e-12
        } else {
            jitter * 100.0
        };
    }
    for (o, v) in out.iter_mut().zip(b) {
        *o = v / scale;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd_example() -> Matrix {
        Matrix::from_rows(&[&[4.0, 2.0, 0.6], &[2.0, 5.0, 1.5], &[0.6, 1.5, 3.8]])
    }

    #[test]
    fn factor_reconstructs() {
        let a = spd_example();
        let ch = Cholesky::new(&a).unwrap();
        let recon = ch.l().matmul(&ch.l().transpose());
        for i in 0..3 {
            for j in 0..3 {
                assert!((recon[(i, j)] - a[(i, j)]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn solve_matches_direct() {
        let a = spd_example();
        let b = vec![1.0, -2.0, 0.5];
        let x = Cholesky::new(&a).unwrap().solve(&b);
        let ax = a.matvec(&x);
        for (l, r) in ax.iter().zip(&b) {
            assert!((l - r).abs() < 1e-10, "residual too large: {ax:?} vs {b:?}");
        }
    }

    #[test]
    fn identity_solve_is_identity() {
        let ch = Cholesky::new(&Matrix::identity(4)).unwrap();
        let b = vec![1.0, 2.0, 3.0, 4.0];
        assert_eq!(ch.solve(&b), b);
    }

    #[test]
    fn rejects_indefinite() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]); // eigenvalues 3, -1
        assert!(Cholesky::new(&a).is_err());
    }

    #[test]
    fn log_det_matches() {
        let a = Matrix::from_rows(&[&[2.0, 0.0], &[0.0, 8.0]]);
        let ch = Cholesky::new(&a).unwrap();
        assert!((ch.log_det() - 16.0_f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn jittered_solve_handles_singular() {
        // Rank-1 Gram matrix: classic under-observed ALS fiber.
        let a = Matrix::from_rows(&[&[1.0, 1.0], &[1.0, 1.0]]);
        let x = solve_spd_jittered(&a, &[2.0, 2.0]);
        assert!(x.iter().all(|v| v.is_finite()));
        // Should approximately satisfy A x = b in the least-squares sense.
        let ax = a.matvec(&x);
        assert!((ax[0] - 2.0).abs() < 1e-3);
    }

    #[test]
    fn into_variant_matches_allocating_solve_bitwise() {
        let a = spd_example();
        let b = vec![1.0, -2.0, 0.5];
        let expected = Cholesky::new(&a).unwrap().solve(&b);
        let mut scratch = Matrix::zeros(3, 3);
        // Poison the scratch: stale contents must not leak into the result.
        for v in scratch.as_mut_slice() {
            *v = f64::NAN;
        }
        let mut out = vec![0.0; 3];
        solve_spd_jittered_into(&a, &b, &mut scratch, &mut out);
        for (e, o) in expected.iter().zip(&out) {
            assert_eq!(e.to_bits(), o.to_bits());
        }
        // Reuse across solves: second call with the dirty scratch agrees too.
        let b2 = vec![0.25, 4.0, -1.0];
        let expected2 = Cholesky::new(&a).unwrap().solve(&b2);
        solve_spd_jittered_into(&a, &b2, &mut scratch, &mut out);
        for (e, o) in expected2.iter().zip(&out) {
            assert_eq!(e.to_bits(), o.to_bits());
        }
    }

    #[test]
    fn into_variant_handles_singular() {
        let a = Matrix::from_rows(&[&[1.0, 1.0], &[1.0, 1.0]]);
        let mut scratch = Matrix::zeros(2, 2);
        let mut out = vec![0.0; 2];
        solve_spd_jittered_into(&a, &[2.0, 2.0], &mut scratch, &mut out);
        assert!(out.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn fixed_size_dispatch_bitwise_matches_generic() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(99);
        for &n in &[2usize, 4, 8, 16] {
            // Random SPD-ish Gram matrix B Bᵀ (+ occasionally singular: the
            // jitter path must also agree bitwise).
            for trial in 0..4 {
                let mut b_mat = Matrix::zeros(n, n);
                for v in b_mat.as_mut_slice() {
                    *v = rng.gen_range(-1.0..1.0);
                }
                if trial == 3 {
                    // Rank-deficient: duplicate a row.
                    let r0 = b_mat.row(0).to_vec();
                    b_mat.row_mut(1).copy_from_slice(&r0);
                }
                let a = b_mat.gram();
                let rhs: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
                let mut scratch = Matrix::zeros(n, n);
                let mut fast = vec![0.0; n];
                solve_spd_jittered_into(&a, &rhs, &mut scratch, &mut fast);
                let mut scratch2 = Matrix::zeros(n, n);
                let mut slow = vec![0.0; n];
                solve_jittered_generic(&a, &rhs, &mut scratch2, &mut slow);
                for (x, y) in fast.iter().zip(&slow) {
                    assert_eq!(x.to_bits(), y.to_bits(), "n={n} trial={trial}");
                }
            }
        }
    }

    #[test]
    fn solve_matrix_multiple_rhs() {
        let a = spd_example();
        let ch = Cholesky::new(&a).unwrap();
        let b = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[0.0, 0.0]]);
        let x = ch.solve_matrix(&b);
        let ax = a.matmul(&x);
        for i in 0..3 {
            for j in 0..2 {
                assert!((ax[(i, j)] - b[(i, j)]).abs() < 1e-10);
            }
        }
    }
}
