//! Tucker decomposition — the paper's deferred "alternative tensor
//! decomposition" (§4.1: "or using other tensor factorizations such as
//! Tucker ... We leave exploration of alternative tensor decompositions to
//! future work").
//!
//! A Tucker model stores a small core tensor `G ∈ R^{R_1 x … x R_d}` and one
//! `I_j x R_j` factor per mode; entries are
//! `t_i ≈ Σ_r G[r] Π_j U_j[i_j, r_j]`. Unlike CP, the multilinear ranks can
//! differ per mode and the core captures cross-component interactions, at
//! the price of `Π R_j` core storage (exponential in order — the reason the
//! paper prefers CP for high-dimensional performance modeling).

use crate::cp::PackedFactors;
use crate::dense::DenseTensor;
use crate::matrix::Matrix;
use crate::sparse::SparseTensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Tucker decomposition: core tensor + per-mode factor matrices.
#[derive(Debug, Clone)]
pub struct TuckerDecomp {
    core: DenseTensor,
    factors: Vec<Matrix>,
}

impl TuckerDecomp {
    /// Build from explicit parts; factor `j` must have `core.dims()[j]`
    /// columns.
    pub fn from_parts(core: DenseTensor, factors: Vec<Matrix>) -> Self {
        assert_eq!(core.order(), factors.len(), "Tucker: order mismatch");
        for (j, f) in factors.iter().enumerate() {
            assert_eq!(
                f.cols(),
                core.dims()[j],
                "Tucker: factor {j} has {} cols, core wants {}",
                f.cols(),
                core.dims()[j]
            );
        }
        Self { core, factors }
    }

    /// Random initialization with i.i.d. uniform entries in `[lo, hi)`.
    pub fn random(dims: &[usize], ranks: &[usize], lo: f64, hi: f64, seed: u64) -> Self {
        assert_eq!(dims.len(), ranks.len());
        let mut rng = StdRng::seed_from_u64(seed);
        let mut core = DenseTensor::zeros(ranks);
        for v in core.as_mut_slice() {
            *v = rng.gen_range(lo..hi);
        }
        let factors = dims
            .iter()
            .zip(ranks)
            .map(|(&d, &r)| {
                let mut m = Matrix::zeros(d, r);
                for v in m.as_mut_slice() {
                    *v = rng.gen_range(lo..hi);
                }
                m
            })
            .collect();
        Self { core, factors }
    }

    /// Tensor order.
    pub fn order(&self) -> usize {
        self.factors.len()
    }

    /// Mode dimensions `I_j`.
    pub fn dims(&self) -> Vec<usize> {
        self.factors.iter().map(|f| f.rows()).collect()
    }

    /// Multilinear ranks `R_j`.
    pub fn ranks(&self) -> &[usize] {
        self.core.dims()
    }

    /// Core tensor.
    pub fn core(&self) -> &DenseTensor {
        &self.core
    }

    /// Mutable core tensor.
    pub fn core_mut(&mut self) -> &mut DenseTensor {
        &mut self.core
    }

    /// Factor matrix of one mode.
    pub fn factor(&self, mode: usize) -> &Matrix {
        &self.factors[mode]
    }

    /// All factor matrices (a mode removed by [`Self::take_factor`] appears
    /// as its `0 x 0` placeholder). Lets sweep optimizers bake a
    /// [`PackedFactors`] copy of the frozen modes.
    pub fn factors(&self) -> &[Matrix] {
        &self.factors
    }

    /// Mutable factor matrix of one mode.
    pub fn factor_mut(&mut self, mode: usize) -> &mut Matrix {
        &mut self.factors[mode]
    }

    /// Move one factor matrix out of the model (0 x 0 placeholder left
    /// behind) so sweep optimizers can mutate it while reading the others
    /// through `&self` — see [`crate::CpDecomp::take_factor`]. Until
    /// [`Self::set_factor`] restores it, the model must only be queried
    /// through paths that skip `mode` (e.g. [`Self::leave_one_out_design`]).
    pub fn take_factor(&mut self, mode: usize) -> Matrix {
        std::mem::replace(&mut self.factors[mode], Matrix::zeros(0, 0))
    }

    /// Restore a factor taken by [`Self::take_factor`].
    pub fn set_factor(&mut self, mode: usize, factor: Matrix) {
        assert_eq!(
            factor.cols(),
            self.core.dims()[mode],
            "set_factor: rank mismatch in mode {mode}"
        );
        self.factors[mode] = factor;
    }

    /// Stored parameter count: core + factors.
    pub fn param_count(&self) -> usize {
        self.core.len()
            + self
                .factors
                .iter()
                .map(|f| f.rows() * f.cols())
                .sum::<usize>()
    }

    /// The "design vector" of mode `j` at a multi-index: for each `r_j`,
    /// the contraction of the core with every *other* mode's factor row.
    /// `eval(idx) = dot(design_j(idx), U_j[i_j, :])` for any `j`.
    pub fn leave_one_out_design(&self, idx: &[u32], mode: usize, out: &mut [f64]) {
        let ranks = self.core.dims();
        assert_eq!(out.len(), ranks[mode]);
        out.fill(0.0);
        // Iterate over all core entries, accumulating into out[r_mode].
        for (ridx, g) in self.core.iter_indexed() {
            if g == 0.0 {
                continue;
            }
            let mut w = g;
            for (j, &r) in ridx.iter().enumerate() {
                if j == mode {
                    continue;
                }
                w *= self.factors[j][(idx[j] as usize, r)];
            }
            out[ridx[mode]] += w;
        }
    }

    /// Evaluate the model at a multi-index.
    pub fn eval(&self, idx: &[usize]) -> f64 {
        let mut total = 0.0;
        for (ridx, g) in self.core.iter_indexed() {
            if g == 0.0 {
                continue;
            }
            let mut w = g;
            for (j, &r) in ridx.iter().enumerate() {
                w *= self.factors[j][(idx[j], r)];
            }
            total += w;
        }
        total
    }

    /// Bake the factor matrices into a [`PackedFactors`] (per-mode strides
    /// equal the multilinear ranks). Pair with [`Self::eval_packed`] for the
    /// compiled query path; rebake after mutating factors.
    pub fn packed(&self) -> PackedFactors {
        PackedFactors::from_matrices(&self.factors)
    }

    /// Evaluate at a multi-index reading factor rows from a pack baked by
    /// [`Self::packed`]. Same core-iteration and multiply order as
    /// [`Self::eval`], so the result is bitwise identical; the factor
    /// gather per core entry becomes contiguous packed-row reads instead of
    /// `Matrix` indexing.
    pub fn eval_packed(&self, packed: &PackedFactors, idx: &[usize]) -> f64 {
        debug_assert_eq!(packed.order(), self.order());
        eval_core_packed(&self.core, packed, idx)
    }

    /// Evaluate at a `u32` multi-index (sparse-entry layout).
    pub fn eval_u32(&self, idx: &[u32]) -> f64 {
        let usizes: Vec<usize> = idx.iter().map(|&i| i as usize).collect();
        self.eval(&usizes)
    }

    /// Full dense reconstruction (tests/small models only).
    pub fn to_dense(&self) -> DenseTensor {
        DenseTensor::from_fn(&self.dims(), |idx| self.eval(idx))
    }

    /// Root-mean-square error over an observation set.
    pub fn rmse(&self, obs: &SparseTensor) -> f64 {
        if obs.nnz() == 0 {
            return 0.0;
        }
        let mut sum = 0.0;
        for (_, idx, v) in obs.iter() {
            let e = self.eval_u32(idx) - v;
            sum += e * e;
        }
        (sum / obs.nnz() as f64).sqrt()
    }
}

/// Tucker evaluation from just the core and a [`PackedFactors`] bake — the
/// serving-side primitive behind [`TuckerDecomp::eval_packed`]. Split out
/// so a compiled query plan can keep only the core (the packed bake
/// already holds the factor rows) instead of cloning the whole model.
/// Bitwise identical to [`TuckerDecomp::eval`] at the same index: same
/// core-iteration and multiply order.
pub fn eval_core_packed(core: &DenseTensor, packed: &PackedFactors, idx: &[usize]) -> f64 {
    let mut total = 0.0;
    for (ridx, g) in core.iter_indexed() {
        if g == 0.0 {
            continue;
        }
        let mut w = g;
        for (j, &r) in ridx.iter().enumerate() {
            w *= packed.row(j, idx[j])[r];
        }
        total += w;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_tucker() -> TuckerDecomp {
        // core 2x2, factors 3x2 and 4x2 with known values.
        let core = DenseTensor::from_vec(&[2, 2], vec![1.0, 0.5, -0.5, 2.0]);
        let u = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[1.0, 1.0]]);
        let v = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[0.0, 1.0], &[2.0, 0.0]]);
        TuckerDecomp::from_parts(core, vec![u, v])
    }

    #[test]
    fn eval_matches_manual_contraction() {
        let t = small_tucker();
        // t[0, 1] = sum_r1r2 G[r1,r2] U[0,r1] V[1,r2]
        //         = G[0,0]*1*3 + G[0,1]*1*4 + G[1,0]*0*3 + G[1,1]*0*4 = 3 + 2 = 5
        assert!((t.eval(&[0, 1]) - 5.0).abs() < 1e-12);
        // t[2, 0]: U[2,:] = [1,1], V[0,:] = [1,2]
        //         = 1*1*1 + 0.5*1*2 + (-0.5)*1*1 + 2*1*2 = 1 + 1 - 0.5 + 4 = 5.5
        assert!((t.eval(&[2, 0]) - 5.5).abs() < 1e-12);
    }

    #[test]
    fn design_vector_identity() {
        let t = small_tucker();
        let idx = [2u32, 3u32];
        for mode in 0..2 {
            let mut d = vec![0.0; t.ranks()[mode]];
            t.leave_one_out_design(&idx, mode, &mut d);
            let row = t.factor(mode).row(idx[mode] as usize);
            let via_design: f64 = d.iter().zip(row).map(|(a, b)| a * b).sum();
            assert!((via_design - t.eval(&[2, 3])).abs() < 1e-12, "mode {mode}");
        }
    }

    #[test]
    fn param_count_includes_core() {
        let t = TuckerDecomp::random(&[10, 20, 30], &[2, 3, 4], 0.0, 1.0, 1);
        assert_eq!(t.param_count(), 2 * 3 * 4 + 10 * 2 + 20 * 3 + 30 * 4);
        assert_eq!(t.ranks(), &[2, 3, 4]);
        assert_eq!(t.dims(), vec![10, 20, 30]);
    }

    #[test]
    fn rmse_zero_on_own_reconstruction() {
        let t = TuckerDecomp::random(&[4, 5, 3], &[2, 2, 2], -1.0, 1.0, 7);
        let obs = SparseTensor::from_dense(&t.to_dense());
        assert!(t.rmse(&obs) < 1e-12);
    }

    #[test]
    fn eval_packed_bitwise_matches_eval() {
        let t = TuckerDecomp::random(&[5, 4, 3], &[2, 3, 2], -1.0, 1.0, 13);
        let p = t.packed();
        for idx in [[0usize, 0, 0], [4, 3, 2], [2, 1, 0], [1, 2, 1]] {
            assert_eq!(t.eval_packed(&p, &idx).to_bits(), t.eval(&idx).to_bits());
        }
    }

    #[test]
    fn packed_strides_are_per_mode_ranks() {
        let t = TuckerDecomp::random(&[6, 5], &[2, 4], 0.0, 1.0, 3);
        let p = t.packed();
        assert_eq!(p.stride(0), 2);
        assert_eq!(p.stride(1), 4);
        assert_eq!(p.rows(0), 6);
        assert_eq!(p.rows(1), 5);
    }

    #[test]
    fn random_is_deterministic() {
        let a = TuckerDecomp::random(&[4, 4], &[2, 2], 0.0, 1.0, 9);
        let b = TuckerDecomp::random(&[4, 4], &[2, 2], 0.0, 1.0, 9);
        assert_eq!(a.core().as_slice(), b.core().as_slice());
        assert_eq!(a.factor(1), b.factor(1));
    }
}
