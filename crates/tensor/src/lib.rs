//! # cpr-tensor — dense linear algebra and tensor substrate
//!
//! Foundation crate of the CPR performance-modeling stack: a dense
//! [`matrix::Matrix`], the decompositions needed by the paper's algorithms
//! (Cholesky for ALS row solves, Householder QR for MARS, one-sided Jacobi
//! SVD for the Figure 1 study, power iteration for §5.3's rank-1
//! factorizations, CG for sparse-grid regression), dense and partially
//! observed tensors, and the CP factor model itself.
//!
//! Everything is hand-rolled `f64` with no external linear-algebra
//! dependency, per the reproduction constraints documented in `DESIGN.md`.

pub mod cp;
pub mod decomp;
pub mod dense;
pub mod linalg;
pub mod matrix;
pub mod sparse;
pub mod tucker;

pub use cp::{khatri_rao, CpDecomp, PackedFactors, SweepCache};
pub use decomp::Decomposition;
pub use dense::DenseTensor;
pub use matrix::Matrix;
pub use sparse::{ModeIndex, ModeStream, Observation, SparseTensor};
pub use tucker::{eval_core_packed, TuckerDecomp};
