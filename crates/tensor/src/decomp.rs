//! A model-family-agnostic view over the fitted low-rank decompositions.
//!
//! The paper treats CP (§4.1) and Tucker (§8, future work) as
//! interchangeable compressions of the same partially observed tensor; this
//! enum is the serving-side counterpart: one value that either holds a
//! [`CpDecomp`] or a [`TuckerDecomp`], with the handful of operations the
//! query path needs (evaluation at a multi-index, a [`PackedFactors`] bake,
//! size accounting) dispatched over the variant. Everything that is
//! genuinely CP-specific (leave-one-out products, Perron-Frobenius rank-1
//! extraction) stays on the concrete types, reachable through
//! [`Decomposition::as_cp`] / [`Decomposition::as_tucker`].

use crate::cp::{CpDecomp, PackedFactors};
use crate::matrix::Matrix;
use crate::tucker::TuckerDecomp;

/// A fitted low-rank decomposition of the observation tensor: either a CP
/// factor model or a Tucker core-plus-factors model.
#[derive(Debug, Clone)]
pub enum Decomposition {
    /// Canonical polyadic: `d` factor matrices sharing one rank.
    Cp(CpDecomp),
    /// Tucker: per-mode factor matrices contracted against a dense core.
    Tucker(TuckerDecomp),
}

impl From<CpDecomp> for Decomposition {
    fn from(cp: CpDecomp) -> Self {
        Decomposition::Cp(cp)
    }
}

impl From<TuckerDecomp> for Decomposition {
    fn from(t: TuckerDecomp) -> Self {
        Decomposition::Tucker(t)
    }
}

impl Decomposition {
    /// Tensor order `d`.
    #[inline]
    pub fn order(&self) -> usize {
        match self {
            Decomposition::Cp(cp) => cp.order(),
            Decomposition::Tucker(t) => t.order(),
        }
    }

    /// Per-mode dimensions.
    pub fn dims(&self) -> Vec<usize> {
        match self {
            Decomposition::Cp(cp) => cp.dims(),
            Decomposition::Tucker(t) => t.dims(),
        }
    }

    /// Per-mode factor matrices (Tucker's core is not included).
    pub fn factors(&self) -> &[Matrix] {
        match self {
            Decomposition::Cp(cp) => cp.factors(),
            Decomposition::Tucker(t) => t.factors(),
        }
    }

    /// CP rank, or the maximum multilinear rank for Tucker — the scalar the
    /// serving scratch is sized by (a Tucker factor row is `R_j ≤ max R_j`
    /// long in its [`PackedFactors`] bake).
    #[inline]
    pub fn max_rank(&self) -> usize {
        match self {
            Decomposition::Cp(cp) => cp.rank(),
            Decomposition::Tucker(t) => t.ranks().iter().copied().max().unwrap_or(0),
        }
    }

    /// Evaluate the completed tensor at a multi-index.
    #[inline]
    pub fn eval(&self, idx: &[usize]) -> f64 {
        match self {
            Decomposition::Cp(cp) => cp.eval(idx),
            Decomposition::Tucker(t) => t.eval(idx),
        }
    }

    /// Bake the factor matrices into a [`PackedFactors`] for the compiled
    /// query path. Pair with [`Self::eval_packed`]; rebake after mutating.
    pub fn packed(&self) -> PackedFactors {
        match self {
            Decomposition::Cp(cp) => cp.packed(),
            Decomposition::Tucker(t) => t.packed(),
        }
    }

    /// Evaluate through a pack previously baked by [`Self::packed`] —
    /// bitwise identical to [`Self::eval`] (both variants preserve the
    /// naive multiply order).
    #[inline]
    pub fn eval_packed(&self, packed: &PackedFactors, idx: &[usize]) -> f64 {
        match self {
            Decomposition::Cp(_) => packed.eval_cp(idx),
            Decomposition::Tucker(t) => t.eval_packed(packed, idx),
        }
    }

    /// Number of stored parameters (factors, plus the core for Tucker).
    pub fn param_count(&self) -> usize {
        match self {
            Decomposition::Cp(cp) => cp.param_count(),
            Decomposition::Tucker(t) => t.param_count(),
        }
    }

    /// Serialized parameter bytes (8 per stored `f64`).
    pub fn size_bytes(&self) -> usize {
        self.param_count() * 8
    }

    /// Every stored parameter strictly positive? (Factors and, for Tucker,
    /// the core.)
    pub fn is_strictly_positive(&self) -> bool {
        match self {
            Decomposition::Cp(cp) => cp.is_strictly_positive(),
            Decomposition::Tucker(t) => {
                t.factors().iter().all(Matrix::is_strictly_positive)
                    && t.core().as_slice().iter().all(|&v| v > 0.0)
            }
        }
    }

    /// The CP variant, if that's what this is.
    pub fn as_cp(&self) -> Option<&CpDecomp> {
        match self {
            Decomposition::Cp(cp) => Some(cp),
            Decomposition::Tucker(_) => None,
        }
    }

    /// The Tucker variant, if that's what this is.
    pub fn as_tucker(&self) -> Option<&TuckerDecomp> {
        match self {
            Decomposition::Cp(_) => None,
            Decomposition::Tucker(t) => Some(t),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cp_variant_dispatches() {
        let cp = CpDecomp::random(&[4, 3], 2, 0.1, 1.0, 1);
        let d = Decomposition::from(cp.clone());
        assert_eq!(d.order(), 2);
        assert_eq!(d.dims(), vec![4, 3]);
        assert_eq!(d.max_rank(), 2);
        assert_eq!(d.param_count(), cp.param_count());
        assert_eq!(d.size_bytes(), cp.size_bytes());
        let packed = d.packed();
        for i in 0..4 {
            for j in 0..3 {
                let idx = [i, j];
                assert_eq!(d.eval(&idx).to_bits(), cp.eval(&idx).to_bits());
                assert_eq!(
                    d.eval(&idx).to_bits(),
                    d.eval_packed(&packed, &idx).to_bits()
                );
            }
        }
        assert!(d.as_cp().is_some());
        assert!(d.as_tucker().is_none());
    }

    #[test]
    fn tucker_variant_dispatches() {
        let t = TuckerDecomp::random(&[4, 3, 2], &[2, 2, 2], 0.1, 1.0, 2);
        let d = Decomposition::from(t.clone());
        assert_eq!(d.order(), 3);
        assert_eq!(d.max_rank(), 2);
        assert_eq!(d.param_count(), t.param_count());
        let packed = d.packed();
        let idx = [3usize, 1, 0];
        assert_eq!(d.eval(&idx).to_bits(), t.eval(&idx).to_bits());
        assert_eq!(
            d.eval(&idx).to_bits(),
            d.eval_packed(&packed, &idx).to_bits()
        );
        assert!(d.as_tucker().is_some());
        assert!(d.as_cp().is_none());
        assert!(d.is_strictly_positive());
    }
}
