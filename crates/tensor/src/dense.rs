//! Dense order-`d` tensors with row-major (last-index-fastest) layout.

use crate::matrix::Matrix;

/// Dense tensor of arbitrary order.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseTensor {
    dims: Vec<usize>,
    strides: Vec<usize>,
    data: Vec<f64>,
}

impl DenseTensor {
    /// Zero tensor with the given dimensions.
    pub fn zeros(dims: &[usize]) -> Self {
        assert!(!dims.is_empty(), "DenseTensor: order must be >= 1");
        let strides = row_major_strides(dims);
        let len: usize = dims.iter().product();
        Self {
            dims: dims.to_vec(),
            strides,
            data: vec![0.0; len],
        }
    }

    /// Build from a flat row-major buffer.
    pub fn from_vec(dims: &[usize], data: Vec<f64>) -> Self {
        let len: usize = dims.iter().product();
        assert_eq!(data.len(), len, "DenseTensor::from_vec: length mismatch");
        Self {
            dims: dims.to_vec(),
            strides: row_major_strides(dims),
            data,
        }
    }

    /// Build by evaluating `f` at every multi-index.
    pub fn from_fn(dims: &[usize], mut f: impl FnMut(&[usize]) -> f64) -> Self {
        let mut t = Self::zeros(dims);
        let mut idx = vec![0usize; dims.len()];
        for flat in 0..t.data.len() {
            t.data[flat] = f(&idx);
            // Increment multi-index, last mode fastest.
            for j in (0..dims.len()).rev() {
                idx[j] += 1;
                if idx[j] < dims[j] {
                    break;
                }
                idx[j] = 0;
            }
        }
        t
    }

    /// Tensor order (number of modes).
    pub fn order(&self) -> usize {
        self.dims.len()
    }

    /// Mode dimensions.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the tensor has zero elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Flat row-major offset of a multi-index.
    #[inline]
    pub fn offset(&self, idx: &[usize]) -> usize {
        debug_assert_eq!(idx.len(), self.dims.len());
        let mut off = 0;
        for (j, (&i, &s)) in idx.iter().zip(&self.strides).enumerate() {
            debug_assert!(
                i < self.dims[j],
                "index {i} out of bound {} in mode {j}",
                self.dims[j]
            );
            off += i * s;
        }
        off
    }

    /// Element access by multi-index.
    #[inline]
    pub fn get(&self, idx: &[usize]) -> f64 {
        self.data[self.offset(idx)]
    }

    /// Mutable element access by multi-index.
    #[inline]
    pub fn get_mut(&mut self, idx: &[usize]) -> &mut f64 {
        let off = self.offset(idx);
        &mut self.data[off]
    }

    /// Set element at a multi-index.
    #[inline]
    pub fn set(&mut self, idx: &[usize], value: f64) {
        *self.get_mut(idx) = value;
    }

    /// Flat data access.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Flat mutable data access.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Frobenius norm.
    pub fn fro_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Mode-`k` unfolding (matricization): rows indexed by mode `k`, columns
    /// by the remaining modes in row-major order of the *original* ordering
    /// with mode `k` removed.
    pub fn unfold(&self, k: usize) -> Matrix {
        assert!(k < self.order());
        let rows = self.dims[k];
        let cols = self.len() / rows;
        let mut out = Matrix::zeros(rows, cols);
        let mut idx = vec![0usize; self.order()];
        for flat in 0..self.len() {
            // Column index: row-major over modes != k.
            let mut col = 0;
            for (j, &i) in idx.iter().enumerate() {
                if j == k {
                    continue;
                }
                col = col * self.dims[j] + i;
            }
            out[(idx[k], col)] = self.data[flat];
            for j in (0..self.order()).rev() {
                idx[j] += 1;
                if idx[j] < self.dims[j] {
                    break;
                }
                idx[j] = 0;
            }
        }
        out
    }

    /// Iterate over `(multi_index, value)` pairs in row-major order.
    pub fn iter_indexed(&self) -> IndexedIter<'_> {
        IndexedIter {
            tensor: self,
            idx: vec![0; self.order()],
            flat: 0,
        }
    }
}

/// Iterator over `(multi_index, value)` of a dense tensor.
pub struct IndexedIter<'a> {
    tensor: &'a DenseTensor,
    idx: Vec<usize>,
    flat: usize,
}

impl Iterator for IndexedIter<'_> {
    type Item = (Vec<usize>, f64);

    fn next(&mut self) -> Option<Self::Item> {
        if self.flat >= self.tensor.len() {
            return None;
        }
        let item = (self.idx.clone(), self.tensor.data[self.flat]);
        self.flat += 1;
        for j in (0..self.idx.len()).rev() {
            self.idx[j] += 1;
            if self.idx[j] < self.tensor.dims[j] {
                break;
            }
            self.idx[j] = 0;
        }
        Some(item)
    }
}

fn row_major_strides(dims: &[usize]) -> Vec<usize> {
    let mut strides = vec![1usize; dims.len()];
    for j in (0..dims.len().saturating_sub(1)).rev() {
        strides[j] = strides[j + 1] * dims[j + 1];
    }
    strides
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strides_row_major() {
        let t = DenseTensor::zeros(&[2, 3, 4]);
        assert_eq!(t.offset(&[0, 0, 1]), 1);
        assert_eq!(t.offset(&[0, 1, 0]), 4);
        assert_eq!(t.offset(&[1, 0, 0]), 12);
        assert_eq!(t.len(), 24);
    }

    #[test]
    fn from_fn_and_get() {
        let t = DenseTensor::from_fn(&[2, 2, 2], |i| (i[0] * 100 + i[1] * 10 + i[2]) as f64);
        assert_eq!(t.get(&[1, 0, 1]), 101.0);
        assert_eq!(t.get(&[0, 1, 0]), 10.0);
    }

    #[test]
    fn set_get_roundtrip() {
        let mut t = DenseTensor::zeros(&[3, 3]);
        t.set(&[2, 1], 7.5);
        assert_eq!(t.get(&[2, 1]), 7.5);
        assert_eq!(t.get(&[1, 2]), 0.0);
    }

    #[test]
    fn unfold_mode0_of_matrix_is_identityish() {
        // For order 2, mode-0 unfolding is the matrix itself.
        let t = DenseTensor::from_fn(&[2, 3], |i| (i[0] * 3 + i[1]) as f64);
        let m = t.unfold(0);
        assert_eq!(m.shape(), (2, 3));
        assert_eq!(m[(1, 2)], 5.0);
    }

    #[test]
    fn unfold_preserves_norm() {
        let t = DenseTensor::from_fn(&[2, 3, 4], |i| (i[0] + 2 * i[1] + 3 * i[2]) as f64);
        for k in 0..3 {
            let m = t.unfold(k);
            assert_eq!(m.rows(), t.dims()[k]);
            assert!((m.fro_norm() - t.fro_norm()).abs() < 1e-12);
        }
    }

    #[test]
    fn unfold_mode1_layout() {
        // dims [2,2]: unfold(1) transposes.
        let t = DenseTensor::from_vec(&[2, 2], vec![1.0, 2.0, 3.0, 4.0]);
        let m = t.unfold(1);
        assert_eq!(m[(0, 0)], 1.0);
        assert_eq!(m[(0, 1)], 3.0);
        assert_eq!(m[(1, 0)], 2.0);
        assert_eq!(m[(1, 1)], 4.0);
    }

    #[test]
    fn indexed_iter_covers_all() {
        let t = DenseTensor::from_fn(&[2, 3], |i| (i[0] * 3 + i[1]) as f64);
        let collected: Vec<_> = t.iter_indexed().collect();
        assert_eq!(collected.len(), 6);
        assert_eq!(collected[0], (vec![0, 0], 0.0));
        assert_eq!(collected[5], (vec![1, 2], 5.0));
    }

    #[test]
    fn order_one_tensor() {
        let t = DenseTensor::from_vec(&[4], vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(t.order(), 1);
        assert_eq!(t.get(&[3]), 4.0);
        let m = t.unfold(0);
        assert_eq!(m.shape(), (4, 1));
    }
}
