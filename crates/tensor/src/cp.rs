//! Canonical-polyadic (CP) decomposition model.
//!
//! A rank-`R` CP decomposition of an order-`d` tensor stores one `I_j x R`
//! factor matrix per mode and models entry `t_{i_1..i_d} ≈ Σ_r Π_j
//! U^(j)_{i_j r}` (paper Eq. 2). Model size is `Σ_j I_j · R` doubles — linear
//! in order and rank, which is the memory-efficiency argument of the paper.

use crate::dense::DenseTensor;
use crate::matrix::Matrix;
use crate::sparse::SparseTensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Largest rank evaluated through a stack-allocated accumulator (the paper
/// sweeps ranks 1..64; 64 doubles fit comfortably in a cache line span).
const EVAL_STACK_RANK: usize = 64;

/// CP decomposition: one factor matrix per mode, shared rank.
#[derive(Debug, Clone)]
pub struct CpDecomp {
    factors: Vec<Matrix>,
    rank: usize,
}

impl CpDecomp {
    /// Build from explicit factor matrices (all must share column count).
    pub fn from_factors(factors: Vec<Matrix>) -> Self {
        assert!(!factors.is_empty(), "CpDecomp: need at least one factor");
        let rank = factors[0].cols();
        for (j, f) in factors.iter().enumerate() {
            assert_eq!(
                f.cols(),
                rank,
                "CpDecomp: factor {j} has rank {} != {rank}",
                f.cols()
            );
        }
        Self { factors, rank }
    }

    /// Random initialization with i.i.d. uniform entries in `[lo, hi)`.
    ///
    /// Tensor-completion convention: small positive entries (e.g. `[0,1)`)
    /// for least-squares models, strictly positive bounded-away-from-zero
    /// entries for barrier methods.
    pub fn random(dims: &[usize], rank: usize, lo: f64, hi: f64, seed: u64) -> Self {
        assert!(rank > 0, "CpDecomp: rank must be >= 1");
        let mut rng = StdRng::seed_from_u64(seed);
        let factors = dims
            .iter()
            .map(|&d| {
                let mut m = Matrix::zeros(d, rank);
                for v in m.as_mut_slice() {
                    *v = rng.gen_range(lo..hi);
                }
                m
            })
            .collect();
        Self { factors, rank }
    }

    /// Decomposition rank `R`.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Tensor order `d`.
    pub fn order(&self) -> usize {
        self.factors.len()
    }

    /// Mode dimensions.
    pub fn dims(&self) -> Vec<usize> {
        self.factors.iter().map(|f| f.rows()).collect()
    }

    /// Factor matrix for one mode.
    pub fn factor(&self, mode: usize) -> &Matrix {
        &self.factors[mode]
    }

    /// Mutable factor matrix for one mode.
    pub fn factor_mut(&mut self, mode: usize) -> &mut Matrix {
        &mut self.factors[mode]
    }

    /// Move one factor matrix out of the model, leaving a `0 x 0`
    /// placeholder. This is the borrow-splitting primitive of the sweep
    /// optimizers: the taken factor is mutated row-by-row while the
    /// remaining (frozen) factors are read through `&self`, with no
    /// model-sized clone. Pair with [`Self::set_factor`]; until then the
    /// model must only be queried through paths that skip `mode` (e.g.
    /// [`Self::leave_one_out_row`] with `skip == mode`).
    pub fn take_factor(&mut self, mode: usize) -> Matrix {
        std::mem::replace(&mut self.factors[mode], Matrix::zeros(0, 0))
    }

    /// Restore a factor taken by [`Self::take_factor`].
    pub fn set_factor(&mut self, mode: usize, factor: Matrix) {
        assert_eq!(
            factor.cols(),
            self.rank,
            "set_factor: rank mismatch in mode {mode}"
        );
        self.factors[mode] = factor;
    }

    /// All factor matrices.
    pub fn factors(&self) -> &[Matrix] {
        &self.factors
    }

    /// Number of stored model parameters `Σ_j I_j R`.
    pub fn param_count(&self) -> usize {
        self.factors.iter().map(|f| f.rows() * f.cols()).sum()
    }

    /// Model size in bytes (8 bytes per parameter).
    pub fn size_bytes(&self) -> usize {
        self.param_count() * std::mem::size_of::<f64>()
    }

    /// Rank-vector accumulation shared by the eval paths: Hadamard-product
    /// the factor rows selected by `rows` into `acc` (pre-filled with 1.0)
    /// and return the rank sum.
    #[inline]
    fn eval_with(&self, acc: &mut [f64], rows: impl Iterator<Item = usize>) -> f64 {
        acc.fill(1.0);
        for (j, i) in rows.enumerate() {
            let row = self.factors[j].row(i);
            for (a, &u) in acc.iter_mut().zip(row) {
                *a *= u;
            }
        }
        acc.iter().sum()
    }

    /// Evaluate the model at a multi-index: `Σ_r Π_j U^(j)[i_j, r]`.
    ///
    /// Rank-`EVAL_STACK_RANK`-and-below models (every paper configuration)
    /// accumulate in a stack buffer — this sits on the per-prediction and
    /// per-residual hot paths, so it must not allocate.
    #[inline]
    pub fn eval(&self, idx: &[usize]) -> f64 {
        debug_assert_eq!(idx.len(), self.order());
        if self.rank <= EVAL_STACK_RANK {
            let mut acc = [0.0; EVAL_STACK_RANK];
            self.eval_with(&mut acc[..self.rank], idx.iter().copied())
        } else {
            let mut acc = vec![0.0; self.rank];
            self.eval_with(&mut acc, idx.iter().copied())
        }
    }

    /// Evaluate at a `u32` multi-index (sparse-tensor entry layout).
    #[inline]
    pub fn eval_u32(&self, idx: &[u32]) -> f64 {
        if self.rank <= EVAL_STACK_RANK {
            let mut acc = [0.0; EVAL_STACK_RANK];
            self.eval_with(&mut acc[..self.rank], idx.iter().map(|&i| i as usize))
        } else {
            let mut acc = vec![0.0; self.rank];
            self.eval_with(&mut acc, idx.iter().map(|&i| i as usize))
        }
    }

    /// Hadamard product of the rows of all factors except `skip` at the
    /// given multi-index, written into `out` (length = rank).
    ///
    /// This is the vector `z` of the row-wise ALS/AMN subproblems — the
    /// single hottest kernel of a sweep. The first two participating factor
    /// rows are combined in one fused pass (the dominant case: an order-3
    /// model needs exactly that and nothing more), remaining modes multiply
    /// in; all bitwise identical to the naive ones-vector accumulation.
    #[inline]
    pub fn leave_one_out_row(&self, idx: &[u32], skip: usize, out: &mut [f64]) {
        debug_assert_eq!(out.len(), self.rank);
        let mut others = (0..idx.len()).filter(|&j| j != skip);
        match (others.next(), others.next()) {
            (Some(j0), None) => {
                out.copy_from_slice(self.factors[j0].row(idx[j0] as usize));
            }
            (Some(j0), Some(j1)) => {
                let r0 = self.factors[j0].row(idx[j0] as usize);
                let r1 = self.factors[j1].row(idx[j1] as usize);
                for ((o, &a), &b) in out.iter_mut().zip(r0).zip(r1) {
                    *o = a * b;
                }
                for j in others {
                    let row = self.factors[j].row(idx[j] as usize);
                    for (o, &u) in out.iter_mut().zip(row) {
                        *o *= u;
                    }
                }
            }
            (None, _) => out.fill(1.0), // order-1 model: empty product
        }
    }

    /// Full dense reconstruction. Exponential in order; tests/small only.
    pub fn to_dense(&self) -> DenseTensor {
        let dims = self.dims();
        DenseTensor::from_fn(&dims, |idx| self.eval(idx))
    }

    /// Root-mean-square error over an observation set.
    pub fn rmse(&self, obs: &SparseTensor) -> f64 {
        if obs.nnz() == 0 {
            return 0.0;
        }
        let mut sum = 0.0;
        for (_, idx, v) in obs.iter() {
            let e = self.eval_u32(idx) - v;
            sum += e * e;
        }
        (sum / obs.nnz() as f64).sqrt()
    }

    /// Squared-error objective with ridge term (paper Eq. 3 with LS loss).
    pub fn objective(&self, obs: &SparseTensor, lambda: f64) -> f64 {
        let mut loss = 0.0;
        for (_, idx, v) in obs.iter() {
            let e = self.eval_u32(idx) - v;
            loss += e * e;
        }
        let reg: f64 = self.factors.iter().map(|f| f.fro_norm_sq()).sum();
        loss + lambda * reg
    }

    /// Normalize each column of each factor to unit norm, folding the norms
    /// into per-rank weights; returns the weights `λ_r`.
    ///
    /// Keeping factors normalized bounds round-off growth during long ALS
    /// runs; callers can fold weights back with [`Self::absorb_weights`].
    pub fn normalize_columns(&mut self) -> Vec<f64> {
        let mut weights = vec![1.0; self.rank];
        for f in &mut self.factors {
            for r in 0..self.rank {
                let mut norm = 0.0;
                for i in 0..f.rows() {
                    norm += f[(i, r)] * f[(i, r)];
                }
                let norm = norm.sqrt();
                if norm > 0.0 {
                    weights[r] *= norm;
                    for i in 0..f.rows() {
                        f[(i, r)] /= norm;
                    }
                }
            }
        }
        weights
    }

    /// Multiply the columns of mode-0's factor by `weights` (inverse of
    /// [`Self::normalize_columns`]).
    pub fn absorb_weights(&mut self, weights: &[f64]) {
        assert_eq!(weights.len(), self.rank);
        let f = &mut self.factors[0];
        for r in 0..self.rank {
            for i in 0..f.rows() {
                f[(i, r)] *= weights[r];
            }
        }
    }

    /// True if every factor entry is strictly positive (extrapolation-model
    /// invariant, paper §5.3).
    pub fn is_strictly_positive(&self) -> bool {
        self.factors.iter().all(|f| f.is_strictly_positive())
    }

    /// The *canonical* leave-one-out product `z = P ⊙ S`, the fit-path
    /// specification that [`SweepCache`] reproduces with cached partial
    /// products:
    ///
    /// ```text
    ///   P = (…((1 ⊙ U_0) ⊙ U_1) … ⊙ U_{m−1})        (left fold, ascending)
    ///   S = U_{m+1} ⊙ (U_{m+2} ⊙ (… ⊙ (U_{d−1} ⊙ 1)))  (right fold)
    /// ```
    ///
    /// For orders ≤ 3 every mode's `z` is bitwise identical to the
    /// historical left-fold [`Self::leave_one_out_row`] (at most two
    /// participating factors, where association doesn't matter); at higher
    /// orders only the association differs. This naive recomputation is the
    /// reference the streamed sweep kernels are pinned against.
    pub fn leave_one_out_canonical(&self, idx: &[u32], mode: usize, out: &mut [f64]) {
        debug_assert_eq!(out.len(), self.rank);
        // Stack suffix accumulator for every paper-scale rank (this sits on
        // the reference sweep's per-observation path — it must not
        // allocate); heap fallback above EVAL_STACK_RANK.
        if self.rank <= EVAL_STACK_RANK {
            let mut suffix = [1.0; EVAL_STACK_RANK];
            self.leave_one_out_canonical_with(idx, mode, &mut suffix[..self.rank], out);
        } else {
            let mut suffix = vec![1.0; self.rank];
            self.leave_one_out_canonical_with(idx, mode, &mut suffix, out);
        }
    }

    fn leave_one_out_canonical_with(
        &self,
        idx: &[u32],
        mode: usize,
        suffix: &mut [f64],
        out: &mut [f64],
    ) {
        let d = self.factors.len();
        for j in (mode + 1..d).rev() {
            let row = self.factors[j].row(idx[j] as usize);
            // `s * u` — IEEE multiplication commutes exactly, so this is
            // bitwise the right fold `u ⊙ S`.
            for (s, &u) in suffix.iter_mut().zip(row) {
                *s *= u;
            }
        }
        if mode == 0 {
            out.copy_from_slice(suffix);
            return;
        }
        out.fill(1.0);
        for (j, &i) in idx.iter().enumerate().take(mode) {
            let row = self.factors[j].row(i as usize);
            for (p, &u) in out.iter_mut().zip(row) {
                *p *= u;
            }
        }
        if mode + 1 < d {
            for (p, &s) in out.iter_mut().zip(&*suffix) {
                *p *= s;
            }
        }
    }
}

/// Sweep-ordered partial-product cache: per-observation prefix/suffix
/// Hadamard products across the Gauss-Seidel mode order, so each
/// observation's leave-one-out vector `z` costs amortized `O(R)` per mode
/// instead of the `O(dR)` full regather — the dimension-tree trick of the
/// tensor-completion literature, applied along a sweep.
///
/// Lifecycle per sweep, for modes updated in ascending order:
///
/// 1. [`Self::begin_sweep`] — reset `prefix` to ones and compute every
///    suffix level `S_m(e) = Π_{j>m} U_j[i_j(e)]` by one backward pass over
///    the (pre-sweep) factors.
/// 2. At mode `m`, `z(e) = prefix(e) ⊙ S_m(e)` via [`Self::z_parts`] /
///    [`Self::z_into`] — bitwise equal to
///    [`CpDecomp::leave_one_out_canonical`] on the current factors.
/// 3. After mode `m`'s rows are solved, [`Self::advance`] folds the
///    *updated* factor into the prefix: `prefix(e) *= U_m[i_m(e)]`.
///
/// Suffix levels are frozen at sweep start, which is exactly right: a
/// Gauss-Seidel sweep reads mode `j > m` factors in their pre-sweep state
/// until mode `j` itself is updated. All state is entry-id indexed; row
/// solves only read the cache, so parallel row updates stay deterministic.
#[derive(Debug, Clone, Default)]
pub struct SweepCache {
    rank: usize,
    nnz: usize,
    order: usize,
    /// `nnz x rank`, entry-major: `Π_{j<m} U_j[i_j(e)]` for the current `m`.
    prefix: Vec<f64>,
    /// Levels `m = 0..order-1`, each `nnz x rank`, entry-major, level `m`
    /// at offset `m * nnz * rank`. Level `order-1` (empty product) is
    /// implicit ones and not stored.
    suffix: Vec<f64>,
}

impl SweepCache {
    /// Empty cache; [`Self::begin_sweep`] sizes it.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reset for a new sweep of `cp` over `obs`: prefix to ones, suffix
    /// levels recomputed from the current factors (one backward pass,
    /// `O(|Ω| d R)`).
    pub fn begin_sweep(&mut self, cp: &CpDecomp, obs: &SparseTensor) {
        let d = cp.order();
        let rank = cp.rank();
        let nnz = obs.nnz();
        self.rank = rank;
        self.nnz = nnz;
        self.order = d;
        self.prefix.clear();
        self.prefix.resize(nnz * rank, 1.0);
        let levels = d.saturating_sub(1);
        self.suffix.clear();
        self.suffix.resize(levels * nnz * rank, 1.0);
        // Backward pass: level d-2 = rows of U_{d-1}; level m = U_{m+1} ⊙
        // level m+1. Operand order `u * s` matches the canonical right fold.
        for m in (0..levels).rev() {
            let (lo, hi) = self.suffix.split_at_mut((m + 1) * nnz * rank);
            let dst = &mut lo[m * nnz * rank..];
            let src: Option<&[f64]> = if m + 1 < levels {
                Some(&hi[..nnz * rank])
            } else {
                None
            };
            let factor = cp.factor(m + 1);
            for e in 0..nnz {
                let row = factor.row(obs.index(e)[m + 1] as usize);
                let db = &mut dst[e * rank..(e + 1) * rank];
                match src {
                    Some(s) => {
                        let sb = &s[e * rank..(e + 1) * rank];
                        for ((o, &u), &sv) in db.iter_mut().zip(row).zip(sb) {
                            *o = u * sv;
                        }
                    }
                    None => db.copy_from_slice(row),
                }
            }
        }
    }

    /// The entry-major `z` operand blocks for one mode:
    /// `(prefix, suffix_level)`. `None` means an implicit all-ones operand
    /// (first mode has no prefix contribution, last mode no suffix). Kernels
    /// read block `e*rank..(e+1)*rank` of each present operand and multiply
    /// elementwise, prefix first.
    pub fn z_parts(&self, mode: usize) -> (Option<&[f64]>, Option<&[f64]>) {
        let nr = self.nnz * self.rank;
        let p = (mode > 0).then_some(&self.prefix[..]);
        let s = (mode + 1 < self.order).then(|| &self.suffix[mode * nr..(mode + 1) * nr]);
        (p, s)
    }

    /// Materialize `z(e)` for one entry at the current mode (reference and
    /// cache-building convenience; hot kernels read [`Self::z_parts`]
    /// directly).
    #[inline]
    pub fn z_into(&self, e: usize, mode: usize, out: &mut [f64]) {
        debug_assert_eq!(out.len(), self.rank);
        let (p, s) = self.z_parts(mode);
        let r = self.rank;
        match (p, s) {
            (Some(p), Some(s)) => {
                let pb = &p[e * r..(e + 1) * r];
                let sb = &s[e * r..(e + 1) * r];
                for ((o, &a), &b) in out.iter_mut().zip(pb).zip(sb) {
                    *o = a * b;
                }
            }
            (Some(p), None) => out.copy_from_slice(&p[e * r..(e + 1) * r]),
            (None, Some(s)) => out.copy_from_slice(&s[e * r..(e + 1) * r]),
            (None, None) => out.fill(1.0),
        }
    }

    /// Fold the just-updated `factor` of `mode` into every entry's prefix
    /// (`prefix(e) *= U_mode[i_mode(e)]`). Call after the mode's row solves;
    /// skip for the last mode (the prefix is reset next sweep anyway).
    pub fn advance(&mut self, mode: usize, factor: &Matrix, obs: &SparseTensor) {
        debug_assert_eq!(obs.nnz(), self.nnz);
        let r = self.rank;
        for e in 0..self.nnz {
            let row = factor.row(obs.index(e)[mode] as usize);
            let pb = &mut self.prefix[e * r..(e + 1) * r];
            for (p, &u) in pb.iter_mut().zip(row) {
                *p *= u;
            }
        }
    }
}

/// Query-optimized single-allocation copy of a set of factor matrices — the
/// "SoA bake" of the compiled query path.
///
/// A [`CpDecomp`] stores one [`Matrix`] per mode, each its own heap
/// allocation; a multi-mode gather therefore chases `d` independent
/// pointers through `Vec<Matrix>` headers. `PackedFactors` copies every
/// factor row into one flat buffer with per-mode offsets, so the per-mode
/// gather of a query kernel is a contiguous rank-length slice read from a
/// single allocation (`row` compiles to one add + one bounds check). Rows
/// keep the source row-major layout bit-for-bit, so any kernel that reads
/// rows through a pack computes bitwise-identical results to the same
/// kernel reading `Matrix::row` — the equivalence contract the serving
/// layer's proptests pin.
///
/// A pack is a *bake*, not a view: it does not track later mutations of the
/// source decomposition. Rebuild it whenever the factors change.
#[derive(Debug, Clone, PartialEq)]
pub struct PackedFactors {
    data: Vec<f64>,
    /// Per-mode start offset into `data`.
    offsets: Vec<usize>,
    /// Per-mode row length (columns of the source factor).
    strides: Vec<usize>,
    /// Per-mode row count.
    rows: Vec<usize>,
}

impl PackedFactors {
    /// Bake a pack from factor matrices (any column counts; Tucker factors
    /// have per-mode ranks).
    pub fn from_matrices(factors: &[Matrix]) -> Self {
        assert!(!factors.is_empty(), "PackedFactors: need at least one mode");
        let total: usize = factors.iter().map(|f| f.rows() * f.cols()).sum();
        let mut data = Vec::with_capacity(total);
        let mut offsets = Vec::with_capacity(factors.len());
        let mut strides = Vec::with_capacity(factors.len());
        let mut rows = Vec::with_capacity(factors.len());
        for f in factors {
            offsets.push(data.len());
            strides.push(f.cols());
            rows.push(f.rows());
            data.extend_from_slice(f.as_slice());
        }
        Self {
            data,
            offsets,
            strides,
            rows,
        }
    }

    /// Number of modes.
    pub fn order(&self) -> usize {
        self.offsets.len()
    }

    /// Row count of one mode.
    pub fn rows(&self, mode: usize) -> usize {
        self.rows[mode]
    }

    /// Row length (source factor column count) of one mode.
    pub fn stride(&self, mode: usize) -> usize {
        self.strides[mode]
    }

    /// Baked size in bytes (the factor copies; offset/stride headers are
    /// negligible).
    pub fn size_bytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<f64>()
    }

    /// Contiguous factor row `i` of `mode`.
    #[inline(always)]
    pub fn row(&self, mode: usize, i: usize) -> &[f64] {
        let s = self.strides[mode];
        let start = self.offsets[mode] + i * s;
        &self.data[start..start + s]
    }

    /// Evaluate a CP model at a multi-index through the pack. Requires a
    /// uniform stride (true for any pack baked from a [`CpDecomp`]);
    /// bitwise-identical to [`CpDecomp::eval`] on the source factors.
    #[inline]
    pub fn eval_cp(&self, idx: &[usize]) -> f64 {
        debug_assert_eq!(idx.len(), self.order());
        let rank = self.strides[0];
        debug_assert!(self.strides.iter().all(|&s| s == rank));
        if rank <= EVAL_STACK_RANK {
            let mut acc = [0.0; EVAL_STACK_RANK];
            self.eval_cp_with(&mut acc[..rank], idx)
        } else {
            let mut acc = vec![0.0; rank];
            self.eval_cp_with(&mut acc, idx)
        }
    }

    /// The accumulation kernel of [`Self::eval_cp`]: same fill/multiply/sum
    /// operation order as [`CpDecomp::eval`], reading packed rows.
    #[inline]
    fn eval_cp_with(&self, acc: &mut [f64], idx: &[usize]) -> f64 {
        acc.fill(1.0);
        for (j, &i) in idx.iter().enumerate() {
            let row = self.row(j, i);
            for (a, &u) in acc.iter_mut().zip(row) {
                *a *= u;
            }
        }
        acc.iter().sum()
    }
}

impl CpDecomp {
    /// Bake the factors into a [`PackedFactors`] for the compiled query
    /// path. The pack is a copy; rebake after mutating the factors.
    pub fn packed(&self) -> PackedFactors {
        PackedFactors::from_matrices(&self.factors)
    }
}

/// Khatri-Rao product (column-wise Kronecker) of two matrices with matching
/// column counts: result has `a.rows() * b.rows()` rows.
pub fn khatri_rao(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.cols(), b.cols(), "khatri_rao: rank mismatch");
    let r = a.cols();
    let mut out = Matrix::zeros(a.rows() * b.rows(), r);
    for i in 0..a.rows() {
        for k in 0..b.rows() {
            let row = i * b.rows() + k;
            for c in 0..r {
                out[(row, c)] = a[(i, c)] * b[(k, c)];
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rank2_3mode() -> CpDecomp {
        let u = Matrix::from_rows(&[&[1.0, 0.5], &[2.0, 1.0]]);
        let v = Matrix::from_rows(&[&[1.0, 1.0], &[0.0, 2.0], &[3.0, 0.0]]);
        let w = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]);
        CpDecomp::from_factors(vec![u, v, w])
    }

    #[test]
    fn eval_matches_manual_sum() {
        let cp = rank2_3mode();
        // t[1,2,0] = 2*3*1 (r=0) + 1*0*2 (r=1) = 6
        assert_eq!(cp.eval(&[1, 2, 0]), 6.0);
        // t[0,1,1] = 1*0*2 + 0.5*2*1 = 1
        assert_eq!(cp.eval(&[0, 1, 1]), 1.0);
    }

    #[test]
    fn eval_u32_matches_eval() {
        let cp = rank2_3mode();
        assert_eq!(cp.eval(&[1, 1, 1]), cp.eval_u32(&[1, 1, 1]));
    }

    #[test]
    fn param_count_linear_in_order_and_rank() {
        let cp = CpDecomp::random(&[10, 20, 30], 5, 0.0, 1.0, 1);
        assert_eq!(cp.param_count(), (10 + 20 + 30) * 5);
        assert_eq!(cp.size_bytes(), cp.param_count() * 8);
    }

    #[test]
    fn leave_one_out_row_is_hadamard() {
        let cp = rank2_3mode();
        let mut z = vec![0.0; 2];
        cp.leave_one_out_row(&[1, 2, 0], 0, &mut z);
        // modes 1,2 rows: v[2]=[3,0], w[0]=[1,2] -> z = [3*1, 0*2] = [3, 0]
        assert_eq!(z, vec![3.0, 0.0]);
        // eval = dot(z, u_row)
        let manual: f64 = z.iter().zip(cp.factor(0).row(1)).map(|(a, b)| a * b).sum();
        assert_eq!(manual, cp.eval(&[1, 2, 0]));
    }

    #[test]
    fn to_dense_consistent() {
        let cp = rank2_3mode();
        let t = cp.to_dense();
        assert_eq!(t.dims(), &[2, 3, 2]);
        assert_eq!(t.get(&[1, 2, 0]), 6.0);
    }

    #[test]
    fn rmse_zero_on_own_reconstruction() {
        let cp = rank2_3mode();
        let obs = SparseTensor::from_dense(&cp.to_dense());
        assert!(cp.rmse(&obs) < 1e-14);
    }

    #[test]
    fn normalize_and_absorb_roundtrip() {
        let mut cp = rank2_3mode();
        let before = cp.to_dense();
        let w = cp.normalize_columns();
        // Each factor column now unit norm.
        for f in cp.factors() {
            for r in 0..cp.rank() {
                let n: f64 = (0..f.rows()).map(|i| f[(i, r)] * f[(i, r)]).sum();
                assert!((n - 1.0).abs() < 1e-12);
            }
        }
        cp.absorb_weights(&w);
        let after = cp.to_dense();
        for (a, b) in before.as_slice().iter().zip(after.as_slice()) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn random_is_seeded_deterministic() {
        let a = CpDecomp::random(&[4, 5], 3, 0.0, 1.0, 42);
        let b = CpDecomp::random(&[4, 5], 3, 0.0, 1.0, 42);
        let c = CpDecomp::random(&[4, 5], 3, 0.0, 1.0, 43);
        assert_eq!(a.factor(0), b.factor(0));
        assert_ne!(a.factor(0), c.factor(0));
    }

    #[test]
    fn random_positive_range() {
        let cp = CpDecomp::random(&[8, 8], 4, 0.5, 1.5, 7);
        assert!(cp.is_strictly_positive());
    }

    #[test]
    fn take_and_set_factor_roundtrip() {
        let mut cp = rank2_3mode();
        let before = cp.to_dense();
        let f = cp.take_factor(1);
        assert_eq!(cp.factor(1).shape(), (0, 0));
        // Leave-one-out paths that skip the taken mode still work.
        let mut z = vec![0.0; 2];
        cp.leave_one_out_row(&[1, 2, 0], 1, &mut z);
        assert!(z.iter().all(|v| v.is_finite()));
        cp.set_factor(1, f);
        assert_eq!(cp.to_dense(), before);
    }

    #[test]
    #[should_panic(expected = "rank mismatch")]
    fn set_factor_rejects_wrong_rank() {
        let mut cp = rank2_3mode();
        cp.set_factor(0, Matrix::zeros(2, 5));
    }

    #[test]
    fn eval_above_stack_rank_still_correct() {
        // Rank 65 exercises the heap fallback path.
        let cp = CpDecomp::random(&[3, 4], 65, 0.1, 1.0, 9);
        let mut manual = 0.0;
        for r in 0..65 {
            manual += cp.factor(0)[(2, r)] * cp.factor(1)[(1, r)];
        }
        assert!((cp.eval(&[2, 1]) - manual).abs() < 1e-12);
        assert!((cp.eval_u32(&[2, 1]) - manual).abs() < 1e-12);
    }

    #[test]
    fn packed_rows_match_matrix_rows() {
        let cp = rank2_3mode();
        let p = cp.packed();
        assert_eq!(p.order(), 3);
        for mode in 0..3 {
            assert_eq!(p.rows(mode), cp.factor(mode).rows());
            assert_eq!(p.stride(mode), cp.rank());
            for i in 0..p.rows(mode) {
                assert_eq!(p.row(mode, i), cp.factor(mode).row(i));
            }
        }
        assert_eq!(p.size_bytes(), cp.size_bytes());
    }

    #[test]
    fn packed_eval_bitwise_matches_eval() {
        let cp = CpDecomp::random(&[5, 4, 3], 7, -1.0, 1.0, 77);
        let p = cp.packed();
        for idx in [[0usize, 0, 0], [4, 3, 2], [2, 1, 0], [1, 2, 1]] {
            assert_eq!(p.eval_cp(&idx).to_bits(), cp.eval(&idx).to_bits());
        }
    }

    #[test]
    fn packed_eval_heap_rank_bitwise_matches() {
        // Rank 65 exercises the heap accumulator path of both sides.
        let cp = CpDecomp::random(&[3, 4], 65, 0.1, 1.0, 9);
        let p = cp.packed();
        assert_eq!(p.eval_cp(&[2, 1]).to_bits(), cp.eval(&[2, 1]).to_bits());
    }

    #[test]
    fn packed_is_a_bake_not_a_view() {
        let mut cp = rank2_3mode();
        let p = cp.packed();
        let before = p.row(0, 1).to_vec();
        cp.factor_mut(0).row_mut(1)[0] += 100.0;
        assert_eq!(p.row(0, 1), &before[..], "pack must not track mutation");
        assert_ne!(cp.packed().row(0, 1), &before[..]);
    }

    #[test]
    fn canonical_leave_one_out_matches_legacy_at_order_three() {
        // Orders <= 3: at most two participating factors per z, so the
        // canonical P ⊙ S association coincides bitwise with the legacy
        // left fold.
        let cp = CpDecomp::random(&[4, 5, 3], 6, -1.0, 1.0, 3);
        let mut a = vec![0.0; 6];
        let mut b = vec![0.0; 6];
        for idx in [[0u32, 0, 0], [3, 4, 2], [1, 2, 1]] {
            for mode in 0..3 {
                cp.leave_one_out_row(&idx, mode, &mut a);
                cp.leave_one_out_canonical(&idx, mode, &mut b);
                for (x, y) in a.iter().zip(&b) {
                    assert_eq!(x.to_bits(), y.to_bits(), "idx {idx:?} mode {mode}");
                }
            }
        }
    }

    #[test]
    fn canonical_leave_one_out_is_close_at_order_four() {
        let cp = CpDecomp::random(&[3, 3, 3, 3], 4, 0.2, 1.3, 8);
        let mut a = vec![0.0; 4];
        let mut b = vec![0.0; 4];
        let idx = [2u32, 1, 0, 2];
        for mode in 0..4 {
            cp.leave_one_out_row(&idx, mode, &mut a);
            cp.leave_one_out_canonical(&idx, mode, &mut b);
            for (x, y) in a.iter().zip(&b) {
                assert!((x - y).abs() < 1e-14, "mode {mode}: {x} vs {y}");
            }
        }
    }

    #[test]
    fn sweep_cache_reproduces_canonical_z_through_a_gauss_seidel_sweep() {
        let dims = [4usize, 3, 5, 2];
        let mut cp = CpDecomp::random(&dims, 3, 0.1, 1.0, 11);
        let mut obs = SparseTensor::new(&dims);
        obs.push(&[0, 0, 0, 0], 1.0);
        obs.push(&[3, 2, 4, 1], 2.0);
        obs.push(&[1, 1, 2, 0], 3.0);
        obs.push(&[3, 0, 1, 1], 4.0);
        let mut cache = SweepCache::new();
        cache.begin_sweep(&cp, &obs);
        let mut zc = vec![0.0; 3];
        let mut zn = vec![0.0; 3];
        for mode in 0..dims.len() {
            for e in 0..obs.nnz() {
                cache.z_into(e, mode, &mut zc);
                cp.leave_one_out_canonical(obs.index(e), mode, &mut zn);
                for (x, y) in zc.iter().zip(&zn) {
                    assert_eq!(x.to_bits(), y.to_bits(), "mode {mode} entry {e}");
                }
            }
            // "Solve" the mode: deterministically perturb its factor, as a
            // real sweep would overwrite it, then fold it into the prefix.
            cp.factor_mut(mode).map_mut(|v| v * 1.5 - 0.25);
            if mode + 1 < dims.len() {
                cache.advance(mode, cp.factor(mode), &obs);
            }
        }
    }

    #[test]
    fn sweep_cache_handles_order_one() {
        let mut obs = SparseTensor::new(&[4]);
        obs.push(&[2], 1.0);
        let cp = CpDecomp::random(&[4], 3, 0.1, 1.0, 5);
        let mut cache = SweepCache::new();
        cache.begin_sweep(&cp, &obs);
        let mut z = vec![0.0; 3];
        cache.z_into(0, 0, &mut z);
        assert_eq!(z, vec![1.0; 3]);
        let (p, s) = cache.z_parts(0);
        assert!(p.is_none() && s.is_none());
    }

    #[test]
    fn khatri_rao_known() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let k = khatri_rao(&a, &b);
        assert_eq!(k.shape(), (4, 2));
        assert_eq!(k[(0, 0)], 5.0); // a00*b00
        assert_eq!(k[(1, 1)], 16.0); // a01*b11
        assert_eq!(k[(3, 0)], 21.0); // a10*b10
    }

    #[test]
    fn objective_includes_regularization() {
        let cp = rank2_3mode();
        let obs = SparseTensor::from_dense(&cp.to_dense());
        let reg: f64 = cp.factors().iter().map(|f| f.fro_norm_sq()).sum();
        let g = cp.objective(&obs, 0.5);
        assert!((g - 0.5 * reg).abs() < 1e-10);
    }
}
