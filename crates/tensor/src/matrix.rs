//! Dense row-major matrix type and BLAS-like kernels.
//!
//! This is the workhorse container for factor matrices, Gram matrices, and
//! the small dense problems that arise inside the completion optimizers and
//! baseline regressors. Everything is hand-rolled `f64`: the matrices in this
//! problem domain are small (factor matrices are `I_j x R` with `R <= 64`),
//! so a cache-blocked triple loop is plenty.

use std::fmt;
use std::ops::{Index, IndexMut};

/// Dense row-major matrix of `f64`.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Zero matrix of shape `rows x cols`.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Matrix filled with a constant.
    pub fn filled(rows: usize, cols: usize, value: f64) -> Self {
        Self {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Identity matrix of order `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Build from a row-major `Vec` (length must equal `rows * cols`).
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "Matrix::from_vec: data length {} != {rows}x{cols}",
            data.len()
        );
        Self { rows, cols, data }
    }

    /// Build from nested rows (each inner slice is one row).
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        assert!(!rows.is_empty(), "Matrix::from_rows: empty");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "Matrix::from_rows: ragged rows");
            data.extend_from_slice(r);
        }
        Self {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Build by evaluating `f(i, j)` at every position.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Self { rows, cols, data }
    }

    pub fn rows(&self) -> usize {
        self.rows
    }

    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Borrow the underlying row-major storage.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutably borrow the underlying row-major storage.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consume into the underlying row-major storage.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Borrow row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        debug_assert!(i < self.rows);
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutably borrow row `i` as a slice.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        debug_assert!(i < self.rows);
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Copy of column `j`.
    pub fn col(&self, j: usize) -> Vec<f64> {
        (0..self.rows).map(|i| self[(i, j)]).collect()
    }

    /// Overwrite column `j`.
    pub fn set_col(&mut self, j: usize, v: &[f64]) {
        assert_eq!(v.len(), self.rows);
        for i in 0..self.rows {
            self[(i, j)] = v[i];
        }
    }

    /// Split the storage into disjoint mutable row chunks, one per row.
    ///
    /// Useful for Rayon loops that update factor-matrix rows independently.
    pub fn par_rows_mut(&mut self) -> std::slice::ChunksMut<'_, f64> {
        self.data.chunks_mut(self.cols)
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// Matrix-matrix product `self * other`.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.rows,
            "matmul: inner dims {}x{} * {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.rows, other.cols);
        // i-k-j loop order: streams through `other` and `out` rows.
        for i in 0..self.rows {
            let arow = self.row(i);
            for (k, &aik) in arow.iter().enumerate() {
                if aik == 0.0 {
                    continue;
                }
                let brow = other.row(k);
                let orow = out.row_mut(i);
                for (o, &b) in orow.iter_mut().zip(brow.iter()) {
                    *o += aik * b;
                }
            }
        }
        out
    }

    /// `selfᵀ * self` (Gram matrix), exploiting symmetry.
    pub fn gram(&self) -> Matrix {
        let n = self.cols;
        let mut g = Matrix::zeros(n, n);
        for i in 0..self.rows {
            let r = self.row(i);
            for a in 0..n {
                let ra = r[a];
                if ra == 0.0 {
                    continue;
                }
                let grow = g.row_mut(a);
                for b in a..n {
                    grow[b] += ra * r[b];
                }
            }
        }
        for a in 0..n {
            for b in 0..a {
                g[(a, b)] = g[(b, a)];
            }
        }
        g
    }

    /// Matrix-vector product `self * x`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(
            self.cols,
            x.len(),
            "matvec: {}x{} * len {}",
            self.rows,
            self.cols,
            x.len()
        );
        let mut y = vec![0.0; self.rows];
        for (i, yi) in y.iter_mut().enumerate() {
            *yi = dot(self.row(i), x);
        }
        y
    }

    /// Transposed matrix-vector product `selfᵀ * x`.
    pub fn matvec_t(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(
            self.rows,
            x.len(),
            "matvec_t: {}x{}ᵀ * len {}",
            self.rows,
            self.cols,
            x.len()
        );
        let mut y = vec![0.0; self.cols];
        for (i, &xi) in x.iter().enumerate() {
            if xi == 0.0 {
                continue;
            }
            for (yj, &aij) in y.iter_mut().zip(self.row(i)) {
                *yj += xi * aij;
            }
        }
        y
    }

    /// Element-wise sum `self + other`.
    pub fn add(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.shape(), other.shape());
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a + b)
            .collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Element-wise difference `self - other`.
    pub fn sub(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.shape(), other.shape());
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a - b)
            .collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Scale every element in place.
    pub fn scale_mut(&mut self, s: f64) {
        for v in &mut self.data {
            *v *= s;
        }
    }

    /// Scaled copy.
    pub fn scaled(&self, s: f64) -> Matrix {
        let mut m = self.clone();
        m.scale_mut(s);
        m
    }

    /// Apply `f` element-wise in place.
    pub fn map_mut(&mut self, f: impl Fn(f64) -> f64) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Element-wise mapped copy.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Matrix {
        let mut m = self.clone();
        m.map_mut(f);
        m
    }

    /// Frobenius norm.
    pub fn fro_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Squared Frobenius norm.
    pub fn fro_norm_sq(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>()
    }

    /// Max-abs (Chebyshev) norm.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0_f64, |m, v| m.max(v.abs()))
    }

    /// True if any element is NaN or infinite.
    pub fn has_non_finite(&self) -> bool {
        self.data.iter().any(|v| !v.is_finite())
    }

    /// True if every element is strictly positive.
    pub fn is_strictly_positive(&self) -> bool {
        self.data.iter().all(|&v| v > 0.0)
    }

    /// Sub-matrix copy of rows `r0..r1`, cols `c0..c1`.
    pub fn submatrix(&self, r0: usize, r1: usize, c0: usize, c1: usize) -> Matrix {
        assert!(r0 <= r1 && r1 <= self.rows && c0 <= c1 && c1 <= self.cols);
        Matrix::from_fn(r1 - r0, c1 - c0, |i, j| self[(r0 + i, c0 + j)])
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of {}x{}",
            self.rows,
            self.cols
        );
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of {}x{}",
            self.rows,
            self.cols
        );
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        let show = self.rows.min(8);
        for i in 0..show {
            let cols = self.cols.min(8);
            let row: Vec<String> = self.row(i)[..cols]
                .iter()
                .map(|v| format!("{v:10.4}"))
                .collect();
            writeln!(
                f,
                "  [{}{}]",
                row.join(", "),
                if self.cols > 8 { ", ..." } else { "" }
            )?;
        }
        if self.rows > show {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

/// Dot product of two equal-length slices.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// `y += alpha * x`.
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    for (yi, &xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// Euclidean norm of a slice.
#[inline]
pub fn norm2(x: &[f64]) -> f64 {
    dot(x, x).sqrt()
}

/// Normalize `x` to unit Euclidean norm; returns the original norm.
/// Leaves `x` untouched (and returns 0) if its norm is zero.
pub fn normalize(x: &mut [f64]) -> f64 {
    let n = norm2(x);
    if n > 0.0 {
        for v in x.iter_mut() {
            *v /= n;
        }
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_identity() {
        let z = Matrix::zeros(3, 4);
        assert_eq!(z.shape(), (3, 4));
        assert!(z.as_slice().iter().all(|&v| v == 0.0));
        let i = Matrix::identity(3);
        assert_eq!(i[(0, 0)], 1.0);
        assert_eq!(i[(0, 1)], 0.0);
        assert_eq!(i[(2, 2)], 1.0);
    }

    #[test]
    fn matmul_known() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c[(0, 0)], 19.0);
        assert_eq!(c[(0, 1)], 22.0);
        assert_eq!(c[(1, 0)], 43.0);
        assert_eq!(c[(1, 1)], 50.0);
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = Matrix::from_fn(4, 4, |i, j| (i * 4 + j) as f64);
        let c = a.matmul(&Matrix::identity(4));
        assert_eq!(a, c);
    }

    #[test]
    fn gram_matches_explicit_ata() {
        let a = Matrix::from_fn(5, 3, |i, j| ((i + 1) * (j + 2)) as f64 / 7.0);
        let g = a.gram();
        let explicit = a.transpose().matmul(&a);
        for i in 0..3 {
            for j in 0..3 {
                assert!((g[(i, j)] - explicit[(i, j)]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_fn(3, 5, |i, j| (i * 10 + j) as f64);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn matvec_and_matvec_t() {
        let a = Matrix::from_rows(&[&[1.0, 0.0, 2.0], &[0.0, 3.0, -1.0]]);
        let y = a.matvec(&[1.0, 1.0, 1.0]);
        assert_eq!(y, vec![3.0, 2.0]);
        let z = a.matvec_t(&[1.0, 2.0]);
        assert_eq!(z, vec![1.0, 6.0, 0.0]);
    }

    #[test]
    fn row_col_access() {
        let mut a = Matrix::from_fn(3, 3, |i, j| (i + j) as f64);
        assert_eq!(a.row(1), &[1.0, 2.0, 3.0]);
        assert_eq!(a.col(2), vec![2.0, 3.0, 4.0]);
        a.set_col(0, &[9.0, 9.0, 9.0]);
        assert_eq!(a.col(0), vec![9.0, 9.0, 9.0]);
    }

    #[test]
    fn norms() {
        let a = Matrix::from_rows(&[&[3.0, 0.0], &[0.0, 4.0]]);
        assert!((a.fro_norm() - 5.0).abs() < 1e-14);
        assert_eq!(a.max_abs(), 4.0);
        assert!((a.fro_norm_sq() - 25.0).abs() < 1e-14);
    }

    #[test]
    fn add_sub_scale() {
        let a = Matrix::filled(2, 2, 2.0);
        let b = Matrix::filled(2, 2, 1.0);
        assert_eq!(a.add(&b), Matrix::filled(2, 2, 3.0));
        assert_eq!(a.sub(&b), Matrix::filled(2, 2, 1.0));
        assert_eq!(a.scaled(0.5), Matrix::filled(2, 2, 1.0));
    }

    #[test]
    fn submatrix_copy() {
        let a = Matrix::from_fn(4, 4, |i, j| (i * 4 + j) as f64);
        let s = a.submatrix(1, 3, 2, 4);
        assert_eq!(s.shape(), (2, 2));
        assert_eq!(s[(0, 0)], 6.0);
        assert_eq!(s[(1, 1)], 11.0);
    }

    #[test]
    fn positivity_and_finiteness_checks() {
        let mut a = Matrix::filled(2, 2, 1.0);
        assert!(a.is_strictly_positive());
        assert!(!a.has_non_finite());
        a[(0, 1)] = 0.0;
        assert!(!a.is_strictly_positive());
        a[(1, 1)] = f64::NAN;
        assert!(a.has_non_finite());
    }

    #[test]
    fn vector_helpers() {
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[1.0, 2.0], &mut y);
        assert_eq!(y, vec![3.0, 5.0]);
        let mut x = vec![3.0, 4.0];
        let n = normalize(&mut x);
        assert!((n - 5.0).abs() < 1e-14);
        assert!((norm2(&x) - 1.0).abs() < 1e-14);
    }

    #[test]
    #[should_panic(expected = "inner dims")]
    fn matmul_shape_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }
}
