//! Partially observed tensors: the observation set Ω of tensor completion.
//!
//! Stores coordinate-format entries plus, on demand, per-mode inverted
//! indices `Ω_i = { entries whose mode-j index equals i }`, which are what
//! the row-wise ALS/AMN subproblems iterate over (paper §4.2.1). The
//! inverted index is CSR-shaped ([`ModeIndex`]): one contiguous entry-id
//! array plus row offsets, so a sweep's row loop walks a flat buffer
//! instead of chasing one heap allocation per fiber.

use crate::dense::DenseTensor;

/// One observed entry `(multi-index, value)`.
#[derive(Debug, Clone, PartialEq)]
pub struct Observation {
    pub index: Vec<usize>,
    pub value: f64,
}

/// CSR-style per-mode inverted observation index: `row(i)` lists the entry
/// ids whose coordinate along the indexed mode equals `i` (the paper's
/// `Ω_i`), in ascending entry order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModeIndex {
    /// `rows() + 1` monotone offsets into `entries`.
    offsets: Vec<u32>,
    /// Entry ids grouped by row.
    entries: Vec<u32>,
}

impl ModeIndex {
    /// Number of rows (the indexed mode's dimension).
    pub fn rows(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Entry ids of row `i` (the paper's `Ω_i`), ascending.
    #[inline]
    pub fn row(&self, i: usize) -> &[u32] {
        &self.entries[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }

    /// `|Ω_i|`.
    #[inline]
    pub fn row_len(&self, i: usize) -> usize {
        (self.offsets[i + 1] - self.offsets[i]) as usize
    }

    /// Iterate over rows as entry-id slices, in row order.
    pub fn iter(&self) -> impl Iterator<Item = &[u32]> + '_ {
        (0..self.rows()).map(move |i| self.row(i))
    }

    /// Total indexed entries `|Ω|`.
    pub fn nnz(&self) -> usize {
        self.entries.len()
    }
}

/// Coordinate-format partially observed tensor.
#[derive(Debug, Clone)]
pub struct SparseTensor {
    dims: Vec<usize>,
    /// Flattened index storage: entry `e` occupies `indices[e*d .. (e+1)*d]`.
    indices: Vec<u32>,
    values: Vec<f64>,
}

impl SparseTensor {
    /// Empty observation set over a tensor of the given dimensions.
    pub fn new(dims: &[usize]) -> Self {
        assert!(!dims.is_empty(), "SparseTensor: order must be >= 1");
        for &d in dims {
            assert!(d > 0, "SparseTensor: zero-length mode");
            assert!(
                d <= u32::MAX as usize,
                "SparseTensor: mode too large for u32 indices"
            );
        }
        Self {
            dims: dims.to_vec(),
            indices: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Bound-check one multi-index; panics with mode/bound detail on
    /// failure. The happy path is a single zipped pass (the per-mode detail
    /// is re-derived only in the cold panic branch).
    #[inline]
    fn validate(dims: &[usize], nnz: usize, index: &[usize]) {
        assert_eq!(index.len(), dims.len(), "observation order mismatch");
        if index.iter().zip(dims).any(|(&i, &dj)| i >= dj) {
            let j = index
                .iter()
                .zip(dims)
                .position(|(&i, &dj)| i >= dj)
                .unwrap();
            panic!(
                "observation index {} out of bound {} in mode {j}",
                index[j], dims[j]
            );
        }
        assert!(
            nnz < u32::MAX as usize,
            "SparseTensor: entry count exceeds u32 id space"
        );
    }

    /// Record an observation. Duplicate indices are allowed; optimizers see
    /// them as repeated measurements (the CPR layer averages before insert).
    #[inline]
    pub fn push(&mut self, index: &[usize], value: f64) {
        Self::validate(&self.dims, self.values.len(), index);
        self.indices.extend(index.iter().map(|&i| i as u32));
        self.values.push(value);
    }

    /// Bulk-insert observations — the dataset→tensor ingestion path.
    /// Equivalent to repeated [`Self::push`] but reserves storage once from
    /// the iterator's size hint.
    pub fn extend_from<Idx: AsRef<[usize]>>(
        &mut self,
        entries: impl IntoIterator<Item = (Idx, f64)>,
    ) {
        let it = entries.into_iter();
        let (lower, _) = it.size_hint();
        self.indices.reserve(lower * self.dims.len());
        self.values.reserve(lower);
        for (idx, v) in it {
            self.push(idx.as_ref(), v);
        }
    }

    /// Tensor order.
    pub fn order(&self) -> usize {
        self.dims.len()
    }

    /// Mode dimensions.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Number of observed entries `|Ω|`.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Fill fraction `|Ω| / Π I_j`.
    pub fn density(&self) -> f64 {
        let total: usize = self.dims.iter().product();
        self.nnz() as f64 / total as f64
    }

    /// Multi-index of entry `e` (as a borrowed `u32` slice).
    // Not `std::ops::Index`: that trait cannot return the computed subslice
    // by value-width here without an owned wrapper, and `t.index(e)` reads
    // naturally at call sites.
    #[allow(clippy::should_implement_trait)]
    #[inline]
    pub fn index(&self, e: usize) -> &[u32] {
        let d = self.dims.len();
        &self.indices[e * d..(e + 1) * d]
    }

    /// Observed value of entry `e`.
    #[inline]
    pub fn value(&self, e: usize) -> f64 {
        self.values[e]
    }

    /// All values.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Apply `f` to every stored value (e.g. log-transform).
    pub fn map_values_mut(&mut self, f: impl Fn(f64) -> f64) {
        for v in &mut self.values {
            *v = f(*v);
        }
    }

    /// Iterate over `(entry_id, multi_index, value)`.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &[u32], f64)> + '_ {
        (0..self.nnz()).map(move |e| (e, self.index(e), self.values[e]))
    }

    /// Build the per-mode inverted index (the paper's `Ω_i` for every `i`)
    /// in CSR form, by counting sort: two passes over the entries, no
    /// per-row allocations.
    pub fn mode_index(&self, mode: usize) -> ModeIndex {
        assert!(mode < self.order());
        let rows = self.dims[mode];
        let d = self.dims.len();
        let nnz = self.nnz();
        let mut offsets = vec![0u32; rows + 1];
        for e in 0..nnz {
            offsets[self.indices[e * d + mode] as usize + 1] += 1;
        }
        for i in 0..rows {
            offsets[i + 1] += offsets[i];
        }
        let mut cursor = offsets.clone();
        let mut entries = vec![0u32; nnz];
        for e in 0..nnz {
            let i = self.indices[e * d + mode] as usize;
            entries[cursor[i] as usize] = e as u32;
            cursor[i] += 1;
        }
        ModeIndex { offsets, entries }
    }

    /// Densify (unobserved entries become 0). Intended for tests/small cases.
    pub fn to_dense(&self) -> DenseTensor {
        let mut t = DenseTensor::zeros(&self.dims);
        let mut idx = vec![0usize; self.order()];
        for e in 0..self.nnz() {
            for (j, &i) in self.index(e).iter().enumerate() {
                idx[j] = i as usize;
            }
            t.set(&idx, self.values[e]);
        }
        t
    }

    /// Observations from every entry of a dense tensor (fully observed Ω).
    pub fn from_dense(t: &DenseTensor) -> Self {
        let mut s = Self::new(t.dims());
        s.extend_from(t.iter_indexed());
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_access() {
        let mut s = SparseTensor::new(&[3, 4, 5]);
        s.push(&[0, 1, 2], 1.5);
        s.push(&[2, 3, 4], -2.0);
        assert_eq!(s.nnz(), 2);
        assert_eq!(s.index(0), &[0, 1, 2]);
        assert_eq!(s.value(1), -2.0);
        assert!((s.density() - 2.0 / 60.0).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "out of bound")]
    fn rejects_out_of_bound() {
        let mut s = SparseTensor::new(&[2, 2]);
        s.push(&[0, 2], 1.0);
    }

    #[test]
    #[should_panic(expected = "out of bound 3 in mode 1")]
    fn out_of_bound_message_names_mode() {
        let mut s = SparseTensor::new(&[4, 3]);
        s.push(&[1, 7], 1.0);
    }

    #[test]
    fn extend_from_matches_repeated_push() {
        let mut bulk = SparseTensor::new(&[3, 3]);
        bulk.extend_from(vec![
            (vec![0usize, 1], 1.0),
            (vec![2, 2], 2.0),
            (vec![1, 0], 3.0),
        ]);
        let mut single = SparseTensor::new(&[3, 3]);
        single.push(&[0, 1], 1.0);
        single.push(&[2, 2], 2.0);
        single.push(&[1, 0], 3.0);
        assert_eq!(bulk.nnz(), single.nnz());
        for e in 0..bulk.nnz() {
            assert_eq!(bulk.index(e), single.index(e));
            assert_eq!(bulk.value(e), single.value(e));
        }
        // Slice-shaped indices work too (streaming ingestion path).
        let idx = [1usize, 1];
        let mut s = SparseTensor::new(&[3, 3]);
        s.extend_from([(&idx[..], 4.0)]);
        assert_eq!(s.index(0), &[1, 1]);
    }

    #[test]
    #[should_panic(expected = "out of bound")]
    fn extend_from_validates() {
        let mut s = SparseTensor::new(&[2, 2]);
        s.extend_from(vec![(vec![0usize, 0], 1.0), (vec![0, 5], 2.0)]);
    }

    #[test]
    fn mode_index_buckets() {
        let mut s = SparseTensor::new(&[2, 3]);
        s.push(&[0, 0], 1.0);
        s.push(&[1, 1], 2.0);
        s.push(&[0, 2], 3.0);
        let by_mode0 = s.mode_index(0);
        assert_eq!(by_mode0.rows(), 2);
        assert_eq!(by_mode0.row(0), &[0, 2]);
        assert_eq!(by_mode0.row(1), &[1]);
        assert_eq!(by_mode0.nnz(), 3);
        let by_mode1 = s.mode_index(1);
        assert_eq!(by_mode1.rows(), 3);
        assert_eq!(by_mode1.row(2), &[2]);
        assert_eq!(by_mode1.row_len(0), 1);
        let rows: Vec<Vec<u32>> = by_mode1.iter().map(|r| r.to_vec()).collect();
        assert_eq!(rows, vec![vec![0], vec![1], vec![2]]);
    }

    #[test]
    fn mode_index_empty_rows() {
        let mut s = SparseTensor::new(&[4, 2]);
        s.push(&[3, 0], 1.0);
        let mi = s.mode_index(0);
        assert_eq!(mi.rows(), 4);
        assert!(mi.row(0).is_empty());
        assert!(mi.row(1).is_empty());
        assert!(mi.row(2).is_empty());
        assert_eq!(mi.row(3), &[0]);
        assert_eq!(mi.row_len(1), 0);
    }

    #[test]
    fn mode_index_on_empty_tensor() {
        let s = SparseTensor::new(&[3, 3]);
        let mi = s.mode_index(1);
        assert_eq!(mi.rows(), 3);
        assert_eq!(mi.nnz(), 0);
        assert!(mi.iter().all(|r| r.is_empty()));
    }

    #[test]
    fn dense_roundtrip() {
        let t = DenseTensor::from_fn(&[2, 3], |i| (i[0] + 10 * i[1]) as f64);
        let s = SparseTensor::from_dense(&t);
        assert_eq!(s.nnz(), 6);
        assert_eq!(s.to_dense(), t);
    }

    #[test]
    fn map_values() {
        let mut s = SparseTensor::new(&[2]);
        s.push(&[0], 1.0);
        s.push(&[1], std::f64::consts::E);
        s.map_values_mut(|v| v.ln());
        assert!((s.value(0) - 0.0).abs() < 1e-15);
        assert!((s.value(1) - 1.0).abs() < 1e-15);
    }

    #[test]
    fn iter_yields_all() {
        let mut s = SparseTensor::new(&[2, 2]);
        s.push(&[0, 1], 5.0);
        s.push(&[1, 0], 6.0);
        let collected: Vec<_> = s.iter().map(|(e, idx, v)| (e, idx.to_vec(), v)).collect();
        assert_eq!(
            collected,
            vec![(0, vec![0u32, 1], 5.0), (1, vec![1u32, 0], 6.0)]
        );
    }
}
