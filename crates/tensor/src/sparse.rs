//! Partially observed tensors: the observation set Ω of tensor completion.
//!
//! Stores coordinate-format entries plus, on demand, per-mode inverted
//! indices `Ω_i = { entries whose mode-j index equals i }`, which are what
//! the row-wise ALS/AMN subproblems iterate over (paper §4.2.1). The
//! inverted index is CSR-shaped ([`ModeIndex`]): one contiguous entry-id
//! array plus row offsets, so a sweep's row loop walks a flat buffer
//! instead of chasing one heap allocation per fiber.

use crate::dense::DenseTensor;

/// One observed entry `(multi-index, value)`.
#[derive(Debug, Clone, PartialEq)]
pub struct Observation {
    pub index: Vec<usize>,
    pub value: f64,
}

/// CSR-style per-mode inverted observation index: `row(i)` lists the entry
/// ids whose coordinate along the indexed mode equals `i` (the paper's
/// `Ω_i`), in ascending entry order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModeIndex {
    /// `rows() + 1` monotone offsets into `entries`.
    offsets: Vec<u32>,
    /// Entry ids grouped by row.
    entries: Vec<u32>,
}

impl ModeIndex {
    /// Number of rows (the indexed mode's dimension).
    pub fn rows(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Entry ids of row `i` (the paper's `Ω_i`), ascending.
    #[inline]
    pub fn row(&self, i: usize) -> &[u32] {
        &self.entries[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }

    /// `|Ω_i|`.
    #[inline]
    pub fn row_len(&self, i: usize) -> usize {
        (self.offsets[i + 1] - self.offsets[i]) as usize
    }

    /// Iterate over rows as entry-id slices, in row order.
    pub fn iter(&self) -> impl Iterator<Item = &[u32]> + '_ {
        (0..self.rows()).map(move |i| self.row(i))
    }

    /// Total indexed entries `|Ω|`.
    pub fn nnz(&self) -> usize {
        self.entries.len()
    }
}

/// Packed per-mode observation layout: the streamed counterpart of
/// [`ModeIndex`], built once per fit and read by every sweep of the
/// completion optimizers.
///
/// Where `ModeIndex` stores only entry ids (so the sweep hot loop still
/// chases `entries[e] → indices[e*d..]` indirections through the
/// [`SparseTensor`] and re-gathers scattered values), a `ModeStream`
/// materializes, contiguously and grouped by row of the streamed mode:
///
/// * `entry_ids` — the original entry id of each slot (ascending within a
///   row, exactly the order [`ModeIndex::row`] yields),
/// * `values` — the observed value of each slot,
/// * `foreign` — each slot's *foreign multi-index*: the `d−1` `u32`
///   coordinates of the observation along every mode except the streamed
///   one, in ascending mode order.
///
/// A mode's row subproblem therefore walks three flat arrays front to back
/// instead of performing three dependent gathers per observation. The slot
/// order is a pure function of the entry order, so two streams built from
/// observation sets with identical entries compare equal (`PartialEq`) —
/// the invariant the incremental streaming-refit path pins in tests.
#[derive(Debug, Clone, PartialEq)]
pub struct ModeStream {
    /// The streamed mode (foreign indices skip this coordinate).
    mode: usize,
    /// Foreign index width `d − 1`.
    fdim: usize,
    /// `rows() + 1` monotone slot offsets.
    offsets: Vec<u32>,
    /// Slot → original entry id.
    entry_ids: Vec<u32>,
    /// Slot-major packed foreign multi-indices (`nnz * fdim`).
    foreign: Vec<u32>,
    /// Slot → observed value.
    values: Vec<f64>,
}

impl ModeStream {
    /// The mode this stream was built for.
    pub fn mode(&self) -> usize {
        self.mode
    }

    /// Number of rows (the streamed mode's dimension).
    pub fn rows(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Foreign multi-index width (`d − 1`).
    pub fn fdim(&self) -> usize {
        self.fdim
    }

    /// Total streamed observations `|Ω|`.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Slot range of row `i` (the paper's `Ω_i`).
    #[inline]
    pub fn row_range(&self, i: usize) -> std::ops::Range<usize> {
        self.offsets[i] as usize..self.offsets[i + 1] as usize
    }

    /// All entry ids, slot-major (index with [`Self::row_range`]).
    #[inline]
    pub fn entry_ids(&self) -> &[u32] {
        &self.entry_ids
    }

    /// All values, slot-major (index with [`Self::row_range`]).
    #[inline]
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Foreign multi-index of one slot (`d − 1` coordinates, ascending
    /// mode order, the streamed mode skipped).
    #[inline]
    pub fn foreign(&self, slot: usize) -> &[u32] {
        &self.foreign[slot * self.fdim..(slot + 1) * self.fdim]
    }

    /// Flat foreign storage for row `i` (`row_len * fdim` coordinates).
    #[inline]
    pub fn row_foreign(&self, i: usize) -> &[u32] {
        let r = self.row_range(i);
        &self.foreign[r.start * self.fdim..r.end * self.fdim]
    }

    /// Fold the observations `first_new..obs.nnz()` of `obs` into the
    /// stream. The merged stream is **identical** to rebuilding from
    /// scratch with [`SparseTensor::mode_stream`]: new entry ids exceed
    /// every old id, so appending each row's new slots after its old ones
    /// preserves the ascending-entry-id slot order. This is the streaming
    /// refit path — an update that only revises existing cell values skips
    /// this entirely and pays [`Self::refresh_values`] alone.
    pub fn append_from(&mut self, obs: &SparseTensor, first_new: usize) {
        assert_eq!(self.rows(), obs.dims()[self.mode], "append_from: shape");
        // Exact equality: a larger `first_new` would silently drop the
        // entries `self.nnz()..first_new` from the merge, a smaller one
        // would duplicate slots.
        assert_eq!(
            first_new,
            self.nnz(),
            "append_from: stream holds {} entries, caller claims {first_new}",
            self.nnz()
        );
        let nnz = obs.nnz();
        if first_new >= nnz {
            return;
        }
        // Bucket the new entries by row (counting sort, new ids only).
        let rows = self.rows();
        let mut add = vec![0u32; rows + 1];
        for e in first_new..nnz {
            add[obs.index(e)[self.mode] as usize + 1] += 1;
        }
        for i in 0..rows {
            add[i + 1] += add[i];
        }
        let new_total = nnz - first_new;
        let mut offsets = vec![0u32; rows + 1];
        let mut entry_ids = vec![0u32; self.nnz() + new_total];
        let mut foreign = vec![0u32; (self.nnz() + new_total) * self.fdim];
        let mut values = vec![0.0; self.nnz() + new_total];
        // Per-row write cursors: old slots first, new slots after.
        for i in 0..rows {
            offsets[i + 1] = self.offsets[i + 1] + add[i + 1];
        }
        let mut cursor: Vec<u32> = offsets[..rows].to_vec();
        for (i, cur) in cursor.iter_mut().enumerate() {
            let old = self.row_range(i);
            let dst = *cur as usize;
            let n = old.len();
            entry_ids[dst..dst + n].copy_from_slice(&self.entry_ids[old.clone()]);
            values[dst..dst + n].copy_from_slice(&self.values[old.clone()]);
            foreign[dst * self.fdim..(dst + n) * self.fdim]
                .copy_from_slice(&self.foreign[old.start * self.fdim..old.end * self.fdim]);
            *cur += n as u32;
        }
        for e in first_new..nnz {
            let idx = obs.index(e);
            let i = idx[self.mode] as usize;
            let slot = cursor[i] as usize;
            cursor[i] += 1;
            entry_ids[slot] = e as u32;
            values[slot] = obs.value(e);
            let fdst = &mut foreign[slot * self.fdim..(slot + 1) * self.fdim];
            let mut k = 0;
            for (j, &c) in idx.iter().enumerate() {
                if j != self.mode {
                    fdst[k] = c;
                    k += 1;
                }
            }
        }
        self.offsets = offsets;
        self.entry_ids = entry_ids;
        self.foreign = foreign;
        self.values = values;
    }

    /// Re-scatter values from entry-id order into slot order (after cell
    /// values changed in place, e.g. a streaming update revising running
    /// means). Indices are untouched.
    pub fn refresh_values(&mut self, values: &[f64]) {
        for (slot, &e) in self.entry_ids.iter().enumerate() {
            self.values[slot] = values[e as usize];
        }
    }
}

/// Coordinate-format partially observed tensor.
#[derive(Debug, Clone)]
pub struct SparseTensor {
    dims: Vec<usize>,
    /// Flattened index storage: entry `e` occupies `indices[e*d .. (e+1)*d]`.
    indices: Vec<u32>,
    values: Vec<f64>,
}

impl SparseTensor {
    /// Empty observation set over a tensor of the given dimensions.
    pub fn new(dims: &[usize]) -> Self {
        assert!(!dims.is_empty(), "SparseTensor: order must be >= 1");
        for &d in dims {
            assert!(d > 0, "SparseTensor: zero-length mode");
            assert!(
                d <= u32::MAX as usize,
                "SparseTensor: mode too large for u32 indices"
            );
        }
        Self {
            dims: dims.to_vec(),
            indices: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Bound-check one multi-index; panics with mode/bound detail on
    /// failure. The happy path is a single zipped pass (the per-mode detail
    /// is re-derived only in the cold panic branch).
    #[inline]
    fn validate(dims: &[usize], nnz: usize, index: &[usize]) {
        assert_eq!(index.len(), dims.len(), "observation order mismatch");
        if index.iter().zip(dims).any(|(&i, &dj)| i >= dj) {
            let j = index
                .iter()
                .zip(dims)
                .position(|(&i, &dj)| i >= dj)
                .unwrap();
            panic!(
                "observation index {} out of bound {} in mode {j}",
                index[j], dims[j]
            );
        }
        assert!(
            nnz < u32::MAX as usize,
            "SparseTensor: entry count exceeds u32 id space"
        );
    }

    /// Record an observation. Duplicate indices are allowed; optimizers see
    /// them as repeated measurements (the CPR layer averages before insert).
    /// Panics on a NaN/Inf value, same as on an out-of-bound index: a
    /// single non-finite entry poisons every sweep objective and factor
    /// update that touches its fibers.
    #[inline]
    pub fn push(&mut self, index: &[usize], value: f64) {
        Self::validate(&self.dims, self.values.len(), index);
        assert!(
            value.is_finite(),
            "observation value is not finite ({value})"
        );
        self.indices.extend(index.iter().map(|&i| i as u32));
        self.values.push(value);
    }

    /// Bulk-insert observations — the dataset→tensor ingestion path.
    /// Equivalent to repeated [`Self::push`] but reserves storage once from
    /// the iterator's size hint.
    pub fn extend_from<Idx: AsRef<[usize]>>(
        &mut self,
        entries: impl IntoIterator<Item = (Idx, f64)>,
    ) {
        let it = entries.into_iter();
        let (lower, _) = it.size_hint();
        self.indices.reserve(lower * self.dims.len());
        self.values.reserve(lower);
        for (idx, v) in it {
            self.push(idx.as_ref(), v);
        }
    }

    /// Tensor order.
    pub fn order(&self) -> usize {
        self.dims.len()
    }

    /// Mode dimensions.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Number of observed entries `|Ω|`.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Fill fraction `|Ω| / Π I_j`.
    ///
    /// The cell total is accumulated in `f64`: a `usize` product overflows
    /// for large grids (four modes of 2^24 cells already exceed 2^64 —
    /// scales the sparse layout otherwise handles fine) and would panic in
    /// debug builds or silently wrap in release. `f64` loses only relative
    /// precision ~1e-16, irrelevant for a fill *fraction*.
    pub fn density(&self) -> f64 {
        let total: f64 = self.dims.iter().map(|&d| d as f64).product();
        self.nnz() as f64 / total
    }

    /// Multi-index of entry `e` (as a borrowed `u32` slice).
    // Not `std::ops::Index`: that trait cannot return the computed subslice
    // by value-width here without an owned wrapper, and `t.index(e)` reads
    // naturally at call sites.
    #[allow(clippy::should_implement_trait)]
    #[inline]
    pub fn index(&self, e: usize) -> &[u32] {
        let d = self.dims.len();
        &self.indices[e * d..(e + 1) * d]
    }

    /// Observed value of entry `e`.
    #[inline]
    pub fn value(&self, e: usize) -> f64 {
        self.values[e]
    }

    /// All values.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Overwrite the value of entry `e` in place (streaming updates revise
    /// running cell means without rebuilding the tensor). Same finiteness
    /// contract as [`Self::push`].
    #[inline]
    pub fn set_value(&mut self, e: usize, value: f64) {
        assert!(
            value.is_finite(),
            "observation value is not finite ({value})"
        );
        self.values[e] = value;
    }

    /// Apply `f` to every stored value (e.g. log-transform). `FnMut` so
    /// callers can close over mutable state — running normalization stats,
    /// counters — not just pure transforms.
    pub fn map_values_mut(&mut self, mut f: impl FnMut(f64) -> f64) {
        for v in &mut self.values {
            *v = f(*v);
        }
    }

    /// Iterate over `(entry_id, multi_index, value)`.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &[u32], f64)> + '_ {
        (0..self.nnz()).map(move |e| (e, self.index(e), self.values[e]))
    }

    /// Build the per-mode inverted index (the paper's `Ω_i` for every `i`)
    /// in CSR form, by counting sort: two passes over the entries, no
    /// per-row allocations.
    pub fn mode_index(&self, mode: usize) -> ModeIndex {
        assert!(mode < self.order());
        let rows = self.dims[mode];
        let d = self.dims.len();
        let nnz = self.nnz();
        let mut offsets = vec![0u32; rows + 1];
        for e in 0..nnz {
            offsets[self.indices[e * d + mode] as usize + 1] += 1;
        }
        for i in 0..rows {
            offsets[i + 1] += offsets[i];
        }
        let mut cursor = offsets.clone();
        let mut entries = vec![0u32; nnz];
        for e in 0..nnz {
            let i = self.indices[e * d + mode] as usize;
            entries[cursor[i] as usize] = e as u32;
            cursor[i] += 1;
        }
        ModeIndex { offsets, entries }
    }

    /// Build the packed per-mode observation stream (see [`ModeStream`]) by
    /// the same two-pass counting sort as [`Self::mode_index`], additionally
    /// materializing each slot's value and foreign multi-index so sweep hot
    /// loops never touch the coordinate storage again.
    pub fn mode_stream(&self, mode: usize) -> ModeStream {
        assert!(mode < self.order());
        let rows = self.dims[mode];
        let d = self.dims.len();
        let fdim = d - 1;
        let nnz = self.nnz();
        let mut offsets = vec![0u32; rows + 1];
        for e in 0..nnz {
            offsets[self.indices[e * d + mode] as usize + 1] += 1;
        }
        for i in 0..rows {
            offsets[i + 1] += offsets[i];
        }
        let mut cursor = offsets.clone();
        let mut entry_ids = vec![0u32; nnz];
        let mut foreign = vec![0u32; nnz * fdim];
        let mut values = vec![0.0; nnz];
        for e in 0..nnz {
            let idx = &self.indices[e * d..(e + 1) * d];
            let i = idx[mode] as usize;
            let slot = cursor[i] as usize;
            cursor[i] += 1;
            entry_ids[slot] = e as u32;
            values[slot] = self.values[e];
            let fdst = &mut foreign[slot * fdim..(slot + 1) * fdim];
            let mut k = 0;
            for (j, &c) in idx.iter().enumerate() {
                if j != mode {
                    fdst[k] = c;
                    k += 1;
                }
            }
        }
        ModeStream {
            mode,
            fdim,
            offsets,
            entry_ids,
            foreign,
            values,
        }
    }

    /// Densify (unobserved entries become 0). Intended for tests/small cases.
    pub fn to_dense(&self) -> DenseTensor {
        let mut t = DenseTensor::zeros(&self.dims);
        let mut idx = vec![0usize; self.order()];
        for e in 0..self.nnz() {
            for (j, &i) in self.index(e).iter().enumerate() {
                idx[j] = i as usize;
            }
            t.set(&idx, self.values[e]);
        }
        t
    }

    /// Observations from every entry of a dense tensor (fully observed Ω).
    pub fn from_dense(t: &DenseTensor) -> Self {
        let mut s = Self::new(t.dims());
        s.extend_from(t.iter_indexed());
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_access() {
        let mut s = SparseTensor::new(&[3, 4, 5]);
        s.push(&[0, 1, 2], 1.5);
        s.push(&[2, 3, 4], -2.0);
        assert_eq!(s.nnz(), 2);
        assert_eq!(s.index(0), &[0, 1, 2]);
        assert_eq!(s.value(1), -2.0);
        assert!((s.density() - 2.0 / 60.0).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "out of bound")]
    fn rejects_out_of_bound() {
        let mut s = SparseTensor::new(&[2, 2]);
        s.push(&[0, 2], 1.0);
    }

    #[test]
    #[should_panic(expected = "out of bound 3 in mode 1")]
    fn out_of_bound_message_names_mode() {
        let mut s = SparseTensor::new(&[4, 3]);
        s.push(&[1, 7], 1.0);
    }

    #[test]
    #[should_panic(expected = "not finite")]
    fn rejects_nan_value() {
        let mut s = SparseTensor::new(&[2, 2]);
        s.push(&[0, 1], f64::NAN);
    }

    #[test]
    #[should_panic(expected = "not finite")]
    fn rejects_infinite_value() {
        let mut s = SparseTensor::new(&[2, 2]);
        s.push(&[0, 1], f64::INFINITY);
    }

    #[test]
    #[should_panic(expected = "not finite")]
    fn set_value_rejects_nonfinite() {
        let mut s = SparseTensor::new(&[2, 2]);
        s.push(&[0, 1], 1.0);
        s.set_value(0, f64::NEG_INFINITY);
    }

    #[test]
    fn extend_from_matches_repeated_push() {
        let mut bulk = SparseTensor::new(&[3, 3]);
        bulk.extend_from(vec![
            (vec![0usize, 1], 1.0),
            (vec![2, 2], 2.0),
            (vec![1, 0], 3.0),
        ]);
        let mut single = SparseTensor::new(&[3, 3]);
        single.push(&[0, 1], 1.0);
        single.push(&[2, 2], 2.0);
        single.push(&[1, 0], 3.0);
        assert_eq!(bulk.nnz(), single.nnz());
        for e in 0..bulk.nnz() {
            assert_eq!(bulk.index(e), single.index(e));
            assert_eq!(bulk.value(e), single.value(e));
        }
        // Slice-shaped indices work too (streaming ingestion path).
        let idx = [1usize, 1];
        let mut s = SparseTensor::new(&[3, 3]);
        s.extend_from([(&idx[..], 4.0)]);
        assert_eq!(s.index(0), &[1, 1]);
    }

    #[test]
    #[should_panic(expected = "out of bound")]
    fn extend_from_validates() {
        let mut s = SparseTensor::new(&[2, 2]);
        s.extend_from(vec![(vec![0usize, 0], 1.0), (vec![0, 5], 2.0)]);
    }

    #[test]
    fn mode_index_buckets() {
        let mut s = SparseTensor::new(&[2, 3]);
        s.push(&[0, 0], 1.0);
        s.push(&[1, 1], 2.0);
        s.push(&[0, 2], 3.0);
        let by_mode0 = s.mode_index(0);
        assert_eq!(by_mode0.rows(), 2);
        assert_eq!(by_mode0.row(0), &[0, 2]);
        assert_eq!(by_mode0.row(1), &[1]);
        assert_eq!(by_mode0.nnz(), 3);
        let by_mode1 = s.mode_index(1);
        assert_eq!(by_mode1.rows(), 3);
        assert_eq!(by_mode1.row(2), &[2]);
        assert_eq!(by_mode1.row_len(0), 1);
        let rows: Vec<Vec<u32>> = by_mode1.iter().map(|r| r.to_vec()).collect();
        assert_eq!(rows, vec![vec![0], vec![1], vec![2]]);
    }

    #[test]
    fn mode_index_empty_rows() {
        let mut s = SparseTensor::new(&[4, 2]);
        s.push(&[3, 0], 1.0);
        let mi = s.mode_index(0);
        assert_eq!(mi.rows(), 4);
        assert!(mi.row(0).is_empty());
        assert!(mi.row(1).is_empty());
        assert!(mi.row(2).is_empty());
        assert_eq!(mi.row(3), &[0]);
        assert_eq!(mi.row_len(1), 0);
    }

    #[test]
    fn mode_index_on_empty_tensor() {
        let s = SparseTensor::new(&[3, 3]);
        let mi = s.mode_index(1);
        assert_eq!(mi.rows(), 3);
        assert_eq!(mi.nnz(), 0);
        assert!(mi.iter().all(|r| r.is_empty()));
    }

    #[test]
    fn dense_roundtrip() {
        let t = DenseTensor::from_fn(&[2, 3], |i| (i[0] + 10 * i[1]) as f64);
        let s = SparseTensor::from_dense(&t);
        assert_eq!(s.nnz(), 6);
        assert_eq!(s.to_dense(), t);
    }

    #[test]
    fn map_values() {
        let mut s = SparseTensor::new(&[2]);
        s.push(&[0], 1.0);
        s.push(&[1], std::f64::consts::E);
        s.map_values_mut(|v| v.ln());
        assert!((s.value(0) - 0.0).abs() < 1e-15);
        assert!((s.value(1) - 1.0).abs() < 1e-15);
    }

    #[test]
    fn density_survives_overflow_scale_dims() {
        // Π I_j = (2^24)^4 = 2^96: overflows usize (and would panic in
        // debug builds under the old accumulation).
        let m = 1usize << 24;
        let mut s = SparseTensor::new(&[m, m, m, m]);
        s.push(&[0, 1, 2, 3], 1.0);
        s.push(&[m - 1, 0, 0, 0], 2.0);
        let d = s.density();
        assert!(d.is_finite() && d > 0.0);
        let expected = 2.0 / (m as f64).powi(4);
        assert!((d - expected).abs() <= expected * 1e-12, "density {d}");
    }

    #[test]
    fn set_value_updates_in_place() {
        let mut s = SparseTensor::new(&[2, 2]);
        s.push(&[0, 1], 1.0);
        s.push(&[1, 0], 2.0);
        s.set_value(1, 5.5);
        assert_eq!(s.value(1), 5.5);
        assert_eq!(s.value(0), 1.0);
        assert_eq!(s.index(1), &[1, 0]);
    }

    #[test]
    fn map_values_mut_accepts_stateful_closures() {
        let mut s = SparseTensor::new(&[3]);
        s.push(&[0], 1.0);
        s.push(&[1], 2.0);
        s.push(&[2], 4.0);
        // Running-sum normalization: each value divided by the running
        // total so far — requires FnMut.
        let mut running = 0.0;
        s.map_values_mut(|v| {
            running += v;
            v / running
        });
        assert_eq!(s.values(), &[1.0, 2.0 / 3.0, 4.0 / 7.0]);
        assert_eq!(running, 7.0);
    }

    #[test]
    fn mode_stream_matches_mode_index_and_coordinates() {
        let mut s = SparseTensor::new(&[3, 4, 2]);
        s.push(&[0, 1, 1], 1.0);
        s.push(&[2, 3, 0], 2.0);
        s.push(&[0, 0, 1], 3.0);
        s.push(&[1, 1, 0], 4.0);
        for mode in 0..3 {
            let mi = s.mode_index(mode);
            let st = s.mode_stream(mode);
            assert_eq!(st.mode(), mode);
            assert_eq!(st.rows(), s.dims()[mode]);
            assert_eq!(st.fdim(), 2);
            assert_eq!(st.nnz(), s.nnz());
            for i in 0..st.rows() {
                let rng = st.row_range(i);
                assert_eq!(&st.entry_ids()[rng.clone()], mi.row(i));
                for slot in rng {
                    let e = st.entry_ids()[slot] as usize;
                    assert_eq!(st.values()[slot], s.value(e));
                    let full = s.index(e);
                    let want: Vec<u32> = full
                        .iter()
                        .enumerate()
                        .filter(|&(j, _)| j != mode)
                        .map(|(_, &c)| c)
                        .collect();
                    assert_eq!(st.foreign(slot), &want[..]);
                }
            }
        }
    }

    #[test]
    fn mode_stream_single_observation_and_empty_rows() {
        let mut s = SparseTensor::new(&[4, 3]);
        s.push(&[2, 1], 7.0);
        let st = s.mode_stream(0);
        assert_eq!(st.nnz(), 1);
        assert!(st.row_range(0).is_empty());
        assert!(st.row_range(1).is_empty());
        assert_eq!(st.row_range(2), 0..1);
        assert!(st.row_range(3).is_empty());
        assert_eq!(st.foreign(0), &[1]);
        assert_eq!(st.values(), &[7.0]);
        // Order-1 tensor: zero-width foreign indices.
        let mut one = SparseTensor::new(&[5]);
        one.push(&[3], 1.5);
        let st1 = one.mode_stream(0);
        assert_eq!(st1.fdim(), 0);
        assert_eq!(st1.foreign(0), &[] as &[u32]);
        assert_eq!(st1.row_range(3), 0..1);
    }

    #[test]
    fn mode_stream_append_matches_scratch_rebuild() {
        let mut s = SparseTensor::new(&[3, 3]);
        s.push(&[0, 1], 1.0);
        s.push(&[2, 0], 2.0);
        s.push(&[0, 2], 3.0);
        let mut streams: Vec<ModeStream> = (0..2).map(|m| s.mode_stream(m)).collect();
        // Append entries touching old rows, new rows, and multiple per row.
        let first_new = s.nnz();
        s.push(&[1, 1], 4.0);
        s.push(&[0, 0], 5.0);
        s.push(&[2, 2], 6.0);
        for (m, st) in streams.iter_mut().enumerate() {
            st.append_from(&s, first_new);
            assert_eq!(*st, s.mode_stream(m), "mode {m} merged != rebuilt");
        }
        // No-op append: already fully folded in.
        let before = streams[0].clone();
        streams[0].append_from(&s, s.nnz());
        assert_eq!(streams[0], before);
    }

    #[test]
    fn mode_stream_refresh_values_rescatters() {
        let mut s = SparseTensor::new(&[2, 2]);
        s.push(&[1, 0], 1.0);
        s.push(&[0, 1], 2.0);
        let mut st = s.mode_stream(0);
        s.set_value(0, 10.0);
        s.set_value(1, 20.0);
        st.refresh_values(s.values());
        assert_eq!(st, s.mode_stream(0));
    }

    #[test]
    fn iter_yields_all() {
        let mut s = SparseTensor::new(&[2, 2]);
        s.push(&[0, 1], 5.0);
        s.push(&[1, 0], 6.0);
        let collected: Vec<_> = s.iter().map(|(e, idx, v)| (e, idx.to_vec(), v)).collect();
        assert_eq!(
            collected,
            vec![(0, vec![0u32, 1], 5.0), (1, vec![1u32, 0], 6.0)]
        );
    }
}
