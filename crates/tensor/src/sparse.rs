//! Partially observed tensors: the observation set Ω of tensor completion.
//!
//! Stores coordinate-format entries plus, on demand, per-mode inverted
//! indices `Ω_i = { entries whose mode-j index equals i }`, which are what
//! the row-wise ALS/AMN subproblems iterate over (paper §4.2.1).

use crate::dense::DenseTensor;

/// One observed entry `(multi-index, value)`.
#[derive(Debug, Clone, PartialEq)]
pub struct Observation {
    pub index: Vec<usize>,
    pub value: f64,
}

/// Coordinate-format partially observed tensor.
#[derive(Debug, Clone)]
pub struct SparseTensor {
    dims: Vec<usize>,
    /// Flattened index storage: entry `e` occupies `indices[e*d .. (e+1)*d]`.
    indices: Vec<u32>,
    values: Vec<f64>,
}

impl SparseTensor {
    /// Empty observation set over a tensor of the given dimensions.
    pub fn new(dims: &[usize]) -> Self {
        assert!(!dims.is_empty(), "SparseTensor: order must be >= 1");
        for &d in dims {
            assert!(d > 0, "SparseTensor: zero-length mode");
            assert!(
                d <= u32::MAX as usize,
                "SparseTensor: mode too large for u32 indices"
            );
        }
        Self {
            dims: dims.to_vec(),
            indices: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Record an observation. Duplicate indices are allowed; optimizers see
    /// them as repeated measurements (the CPR layer averages before insert).
    pub fn push(&mut self, index: &[usize], value: f64) {
        assert_eq!(index.len(), self.dims.len(), "observation order mismatch");
        for (j, (&i, &dj)) in index.iter().zip(&self.dims).enumerate() {
            assert!(
                i < dj,
                "observation index {i} out of bound {dj} in mode {j}"
            );
        }
        self.indices.extend(index.iter().map(|&i| i as u32));
        self.values.push(value);
    }

    /// Tensor order.
    pub fn order(&self) -> usize {
        self.dims.len()
    }

    /// Mode dimensions.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Number of observed entries `|Ω|`.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Fill fraction `|Ω| / Π I_j`.
    pub fn density(&self) -> f64 {
        let total: usize = self.dims.iter().product();
        self.nnz() as f64 / total as f64
    }

    /// Multi-index of entry `e` (as a borrowed `u32` slice).
    // Not `std::ops::Index`: that trait cannot return the computed subslice
    // by value-width here without an owned wrapper, and `t.index(e)` reads
    // naturally at call sites.
    #[allow(clippy::should_implement_trait)]
    #[inline]
    pub fn index(&self, e: usize) -> &[u32] {
        let d = self.dims.len();
        &self.indices[e * d..(e + 1) * d]
    }

    /// Observed value of entry `e`.
    #[inline]
    pub fn value(&self, e: usize) -> f64 {
        self.values[e]
    }

    /// All values.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Apply `f` to every stored value (e.g. log-transform).
    pub fn map_values_mut(&mut self, f: impl Fn(f64) -> f64) {
        for v in &mut self.values {
            *v = f(*v);
        }
    }

    /// Iterate over `(entry_id, multi_index, value)`.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &[u32], f64)> + '_ {
        (0..self.nnz()).map(move |e| (e, self.index(e), self.values[e]))
    }

    /// Build the per-mode inverted index: `result[i]` lists entry ids whose
    /// mode-`mode` coordinate equals `i` (the paper's `Ω_i`).
    pub fn mode_index(&self, mode: usize) -> Vec<Vec<u32>> {
        assert!(mode < self.order());
        let mut buckets = vec![Vec::new(); self.dims[mode]];
        for e in 0..self.nnz() {
            let i = self.index(e)[mode] as usize;
            buckets[i].push(e as u32);
        }
        buckets
    }

    /// Densify (unobserved entries become 0). Intended for tests/small cases.
    pub fn to_dense(&self) -> DenseTensor {
        let mut t = DenseTensor::zeros(&self.dims);
        let mut idx = vec![0usize; self.order()];
        for e in 0..self.nnz() {
            for (j, &i) in self.index(e).iter().enumerate() {
                idx[j] = i as usize;
            }
            t.set(&idx, self.values[e]);
        }
        t
    }

    /// Observations from every entry of a dense tensor (fully observed Ω).
    pub fn from_dense(t: &DenseTensor) -> Self {
        let mut s = Self::new(t.dims());
        for (idx, v) in t.iter_indexed() {
            s.push(&idx, v);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_access() {
        let mut s = SparseTensor::new(&[3, 4, 5]);
        s.push(&[0, 1, 2], 1.5);
        s.push(&[2, 3, 4], -2.0);
        assert_eq!(s.nnz(), 2);
        assert_eq!(s.index(0), &[0, 1, 2]);
        assert_eq!(s.value(1), -2.0);
        assert!((s.density() - 2.0 / 60.0).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "out of bound")]
    fn rejects_out_of_bound() {
        let mut s = SparseTensor::new(&[2, 2]);
        s.push(&[0, 2], 1.0);
    }

    #[test]
    fn mode_index_buckets() {
        let mut s = SparseTensor::new(&[2, 3]);
        s.push(&[0, 0], 1.0);
        s.push(&[1, 1], 2.0);
        s.push(&[0, 2], 3.0);
        let by_mode0 = s.mode_index(0);
        assert_eq!(by_mode0[0], vec![0, 2]);
        assert_eq!(by_mode0[1], vec![1]);
        let by_mode1 = s.mode_index(1);
        assert_eq!(by_mode1[2], vec![2]);
    }

    #[test]
    fn dense_roundtrip() {
        let t = DenseTensor::from_fn(&[2, 3], |i| (i[0] + 10 * i[1]) as f64);
        let s = SparseTensor::from_dense(&t);
        assert_eq!(s.nnz(), 6);
        assert_eq!(s.to_dense(), t);
    }

    #[test]
    fn map_values() {
        let mut s = SparseTensor::new(&[2]);
        s.push(&[0], 1.0);
        s.push(&[1], std::f64::consts::E);
        s.map_values_mut(|v| v.ln());
        assert!((s.value(0) - 0.0).abs() < 1e-15);
        assert!((s.value(1) - 1.0).abs() < 1e-15);
    }

    #[test]
    fn iter_yields_all() {
        let mut s = SparseTensor::new(&[2, 2]);
        s.push(&[0, 1], 5.0);
        s.push(&[1, 0], 6.0);
        let collected: Vec<_> = s.iter().map(|(e, idx, v)| (e, idx.to_vec(), v)).collect();
        assert_eq!(
            collected,
            vec![(0, vec![0u32, 1], 5.0), (1, vec![1u32, 0], 6.0)]
        );
    }
}
