//! Property-based tests for the tensor substrate.

use cpr_tensor::linalg::{dominant_triple, lstsq, Cholesky, Svd};
use cpr_tensor::{khatri_rao, CpDecomp, DenseTensor, Matrix, SparseTensor, TuckerDecomp};
use proptest::prelude::*;

fn small_matrix(max_dim: usize) -> impl Strategy<Value = Matrix> {
    (1..=max_dim, 1..=max_dim).prop_flat_map(|(r, c)| {
        proptest::collection::vec(-10.0..10.0f64, r * c)
            .prop_map(move |data| Matrix::from_vec(r, c, data))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn transpose_involution(m in small_matrix(8)) {
        prop_assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn matmul_associative(
        a in small_matrix(5),
        bdata in proptest::collection::vec(-3.0..3.0f64, 25),
        cdata in proptest::collection::vec(-3.0..3.0f64, 25),
    ) {
        let k = a.cols();
        let b = Matrix::from_vec(k, 5, bdata[..k * 5].to_vec());
        let c = Matrix::from_vec(5, 4, cdata[..20].to_vec());
        let ab_c = a.matmul(&b).matmul(&c);
        let a_bc = a.matmul(&b.matmul(&c));
        let scale = ab_c.fro_norm().max(1.0);
        prop_assert!(ab_c.sub(&a_bc).fro_norm() <= 1e-10 * scale);
    }

    #[test]
    fn gram_is_symmetric_psd_diag(m in small_matrix(7)) {
        let g = m.gram();
        for i in 0..g.rows() {
            prop_assert!(g[(i, i)] >= -1e-12);
            for j in 0..g.cols() {
                prop_assert!((g[(i, j)] - g[(j, i)]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn cholesky_solve_residual(
        base in small_matrix(6),
        rhs in proptest::collection::vec(-5.0..5.0f64, 6),
    ) {
        // Make an SPD matrix from any base: A = B Bᵀ + I.
        let n = base.rows();
        let mut a = base.matmul(&base.transpose());
        for i in 0..n {
            a[(i, i)] += 1.0;
        }
        let b = &rhs[..n];
        let x = Cholesky::new(&a).unwrap().solve(b);
        let ax = a.matvec(&x);
        let scale = b.iter().map(|v| v.abs()).fold(1.0_f64, f64::max);
        for i in 0..n {
            prop_assert!((ax[i] - b[i]).abs() < 1e-8 * scale);
        }
    }

    #[test]
    fn svd_reconstructs_and_orders(m in small_matrix(8)) {
        let svd = Svd::new(&m);
        let k = m.rows().min(m.cols());
        let recon = svd.truncated(k);
        prop_assert!(m.sub(&recon).fro_norm() <= 1e-8 * m.fro_norm().max(1.0));
        for w in svd.s.windows(2) {
            prop_assert!(w[0] >= w[1] - 1e-12);
        }
        // Frobenius norm identity: |A|² = Σ σ².
        let s_sq: f64 = svd.s.iter().map(|s| s * s).sum();
        prop_assert!((s_sq - m.fro_norm_sq()).abs() <= 1e-8 * m.fro_norm_sq().max(1.0));
    }

    #[test]
    fn power_iteration_bounded_by_fro(m in small_matrix(8)) {
        let t = dominant_triple(&m, 1e-10, 1000);
        prop_assert!(t.sigma <= m.fro_norm() + 1e-8);
        // sigma is the largest singular value: compare against Jacobi.
        let svd = Svd::new(&m);
        prop_assert!((t.sigma - svd.s[0]).abs() <= 1e-6 * svd.s[0].max(1e-12));
    }

    #[test]
    fn lstsq_residual_orthogonal_to_columns(
        m in small_matrix(6),
        rhs in proptest::collection::vec(-5.0..5.0f64, 6),
    ) {
        prop_assume!(m.rows() >= m.cols());
        let b = &rhs[..m.rows()];
        let x = lstsq(&m, b);
        let ax = m.matvec(&x);
        let resid: Vec<f64> = ax.iter().zip(b).map(|(a, b)| a - b).collect();
        // Normal equations: Aᵀ r ≈ 0.
        let at_r = m.matvec_t(&resid);
        let scale = m.fro_norm().max(1.0) * b.iter().map(|v| v.abs()).fold(1.0_f64, f64::max);
        for v in at_r {
            prop_assert!(v.abs() <= 1e-6 * scale, "normal-equation residual {v}");
        }
    }

    #[test]
    fn dense_unfold_norm_invariant(
        dims in proptest::collection::vec(1usize..5, 2..4),
        seed in 0u64..1000,
    ) {
        let len: usize = dims.iter().product();
        let data: Vec<f64> = (0..len).map(|i| ((i as u64 * 2654435761 + seed) % 1000) as f64 / 100.0).collect();
        let t = DenseTensor::from_vec(&dims, data);
        for (k, &dk) in dims.iter().enumerate() {
            let m = t.unfold(k);
            prop_assert!((m.fro_norm() - t.fro_norm()).abs() < 1e-10);
            prop_assert_eq!(m.rows(), dk);
        }
    }

    #[test]
    fn cp_eval_matches_dense(
        rank in 1usize..4,
        seed in 0u64..100,
    ) {
        let cp = CpDecomp::random(&[3, 4, 2], rank, -1.0, 1.0, seed);
        let dense = cp.to_dense();
        for (idx, v) in dense.iter_indexed() {
            prop_assert!((cp.eval(&idx) - v).abs() < 1e-12);
        }
    }

    #[test]
    fn cp_normalize_preserves_model(seed in 0u64..100) {
        let mut cp = CpDecomp::random(&[3, 3, 3], 2, 0.1, 2.0, seed);
        let before = cp.to_dense();
        let w = cp.normalize_columns();
        cp.absorb_weights(&w);
        let after = cp.to_dense();
        for (a, b) in before.as_slice().iter().zip(after.as_slice()) {
            prop_assert!((a - b).abs() < 1e-10 * a.abs().max(1.0));
        }
    }

    #[test]
    fn khatri_rao_shape_and_values(seed in 0u64..100) {
        let a = CpDecomp::random(&[3, 4], 2, -2.0, 2.0, seed);
        let (u, v) = (a.factor(0), a.factor(1));
        let k = khatri_rao(u, v);
        prop_assert_eq!(k.shape(), (12, 2));
        for i in 0..3 {
            for j in 0..4 {
                for r in 0..2 {
                    prop_assert!((k[(i * 4 + j, r)] - u[(i, r)] * v[(j, r)]).abs() < 1e-14);
                }
            }
        }
    }

    #[test]
    fn packed_cp_eval_bitwise_matches_naive(
        dims in proptest::collection::vec(1usize..7, 1..5),
        rank in 1usize..8,
        seed in 0u64..10_000,
    ) {
        let cp = CpDecomp::random(&dims, rank, -1.0, 1.0, seed);
        let packed = cp.packed();
        // Probe every corner plus a pseudo-random interior walk.
        let mut idx = vec![0usize; dims.len()];
        for probe in 0..32u64 {
            let mut h = seed.wrapping_add(probe).wrapping_mul(0x9e37_79b9_7f4a_7c15);
            for (j, &dj) in dims.iter().enumerate() {
                idx[j] = (h % dj as u64) as usize;
                h = h.wrapping_mul(0x2545_f491_4f6c_dd1d).wrapping_add(1);
            }
            prop_assert_eq!(packed.eval_cp(&idx).to_bits(), cp.eval(&idx).to_bits());
        }
    }

    #[test]
    fn packed_tucker_eval_bitwise_matches_naive(
        dims in proptest::collection::vec(1usize..6, 1..4),
        seed in 0u64..10_000,
    ) {
        let ranks: Vec<usize> = dims.iter().map(|&d| d.min(3)).collect();
        let t = TuckerDecomp::random(&dims, &ranks, -1.0, 1.0, seed);
        let packed = t.packed();
        let mut idx = vec![0usize; dims.len()];
        for probe in 0..24u64 {
            let mut h = seed.wrapping_add(probe).wrapping_mul(0x9e37_79b9_7f4a_7c15);
            for (j, &dj) in dims.iter().enumerate() {
                idx[j] = (h % dj as u64) as usize;
                h = h.wrapping_mul(0x2545_f491_4f6c_dd1d).wrapping_add(1);
            }
            prop_assert_eq!(t.eval_packed(&packed, &idx).to_bits(), t.eval(&idx).to_bits());
        }
    }

    #[test]
    fn sparse_roundtrip_preserves_entries(
        entries in proptest::collection::vec(((0usize..3, 0usize..4), -100.0..100.0f64), 1..20),
    ) {
        let mut s = SparseTensor::new(&[3, 4]);
        let mut last = std::collections::HashMap::new();
        for ((i, j), v) in &entries {
            s.push(&[*i, *j], *v);
            last.insert((*i, *j), *v);
        }
        prop_assert_eq!(s.nnz(), entries.len());
        // to_dense keeps the last write per coordinate.
        let d = s.to_dense();
        for ((i, j), v) in last {
            prop_assert_eq!(d.get(&[i, j]), v);
        }
    }

    /// The packed per-mode stream must agree with `ModeIndex` +
    /// `SparseTensor::index`/`value` row-for-row, slot-for-slot — on random
    /// tensors of random order, including tensors with empty rows (dims
    /// exceed the coordinate range) and a single observation.
    #[test]
    fn mode_stream_agrees_with_mode_index_rowwise(
        order in 1usize..=4,
        coords in proptest::collection::vec(
            (proptest::collection::vec(0u8..4, 4), -10.0..10.0f64), 1..30),
    ) {
        // Dims 5 per mode while coordinates stop at 3: rows 4 (and often
        // more) stay empty in every mode.
        let dims = vec![5usize; order];
        let mut s = SparseTensor::new(&dims);
        for (idx, v) in &coords {
            let idx: Vec<usize> = idx[..order].iter().map(|&c| c as usize).collect();
            s.push(&idx, *v);
        }
        for mode in 0..order {
            let mi = s.mode_index(mode);
            let st = s.mode_stream(mode);
            prop_assert_eq!(st.rows(), mi.rows());
            prop_assert_eq!(st.nnz(), mi.nnz());
            prop_assert_eq!(st.fdim(), order - 1);
            for i in 0..st.rows() {
                let rng = st.row_range(i);
                prop_assert_eq!(&st.entry_ids()[rng.clone()], mi.row(i));
                for slot in rng {
                    let e = st.entry_ids()[slot] as usize;
                    prop_assert_eq!(st.values()[slot].to_bits(), s.value(e).to_bits());
                    let full = s.index(e);
                    let want: Vec<u32> = full.iter().enumerate()
                        .filter(|&(j, _)| j != mode)
                        .map(|(_, &c)| c)
                        .collect();
                    prop_assert_eq!(st.foreign(slot), &want[..]);
                }
            }
        }
    }

    /// `SweepCache` must reproduce the canonical leave-one-out vector
    /// bitwise at every mode of a Gauss-Seidel sweep, with factor mutations
    /// folded in through `advance` between modes.
    #[test]
    fn sweep_cache_matches_canonical_leave_one_out(
        seed in 0u64..1000,
        order in 2usize..=4,
        rank in 1usize..=6,
        n in 1usize..25,
    ) {
        let dims = vec![4usize; order];
        let mut cp = CpDecomp::random(&dims, rank, 0.1, 1.2, seed);
        let mut s = SparseTensor::new(&dims);
        let mut state = seed.wrapping_mul(0x9e3779b97f4a7c15) | 1;
        let mut next = || { state = state.wrapping_mul(6364136223846793005).wrapping_add(1); state };
        let mut idx = vec![0usize; order];
        for _ in 0..n {
            for d in idx.iter_mut() {
                *d = (next() >> 33) as usize % 4;
            }
            s.push(&idx, ((next() >> 11) as f64) / (1u64 << 53) as f64);
        }
        let mut cache = cpr_tensor::SweepCache::new();
        cache.begin_sweep(&cp, &s);
        let mut zc = vec![0.0; rank];
        let mut zn = vec![0.0; rank];
        for mode in 0..order {
            for e in 0..s.nnz() {
                cache.z_into(e, mode, &mut zc);
                cp.leave_one_out_canonical(s.index(e), mode, &mut zn);
                for (a, b) in zc.iter().zip(&zn) {
                    prop_assert_eq!(a.to_bits(), b.to_bits(), "mode {} entry {}", mode, e);
                }
            }
            // Simulate the row solve: deterministically rewrite the factor.
            cp.factor_mut(mode).map_mut(|v| 0.5 * v + 0.1);
            if mode + 1 < order {
                cache.advance(mode, cp.factor(mode), &s);
            }
        }
    }
}
