//! Property-based tests for the synthetic application benchmarks.

use cpr_apps::{all_benchmarks, Benchmark, Broadcast, ExaFmm, MatMul};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn all_sampled_measurements_positive_finite(seed in 0u64..500) {
        for bench in all_benchmarks() {
            let data = bench.sample_dataset(8, seed);
            for (x, y) in data.iter() {
                prop_assert!(y > 0.0 && y.is_finite(), "{} at {x:?}: {y}", bench.name());
            }
        }
    }

    #[test]
    fn mm_monotone_in_each_dimension(
        m in 64.0..2048.0f64,
        n in 64.0..2048.0f64,
        k in 64.0..2048.0f64,
    ) {
        // Doubling any dimension increases time (blocking ripple is smaller
        // than the 2x flop growth).
        let mm = MatMul::default();
        let base = mm.base_time(&[m, n, k]);
        prop_assert!(mm.base_time(&[m * 2.0, n, k]) > base);
        prop_assert!(mm.base_time(&[m, n * 2.0, k]) > base);
        prop_assert!(mm.base_time(&[m, n, k * 2.0]) > base);
    }

    #[test]
    fn bc_monotone_in_message_and_bounded_below(
        nodes in 2.0..128.0f64,
        ppn in 1.0..64.0f64,
        msg in 65536.0..33554432.0f64,
    ) {
        let bc = Broadcast::default();
        let nodes = nodes.round();
        let ppn = ppn.round();
        let t1 = bc.base_time(&[nodes, ppn, msg]);
        let t2 = bc.base_time(&[nodes, ppn, msg * 2.0]);
        prop_assert!(t2 > t1, "not monotone in msg at ({nodes},{ppn},{msg})");
        prop_assert!(t1 >= bc.machine.overhead);
    }

    #[test]
    fn fmm_time_grows_with_particles(
        n in 4096.0..32768.0f64,
        order in 4.0..15.0f64,
        ppl in 32.0..256.0f64,
    ) {
        let fmm = ExaFmm::default();
        let x1 = [n, order.round(), ppl.round(), 2.0, 2.0, 32.0];
        let x2 = [n * 2.0, order.round(), ppl.round(), 2.0, 2.0, 32.0];
        prop_assert!(fmm.base_time(&x2) > fmm.base_time(&x1));
    }

    #[test]
    fn noise_is_multiplicative_lognormal(seed in 0u64..100) {
        use rand::SeedableRng;
        // Mean of log-ratio over many draws ≈ 0, spread ≈ sigma.
        let mm = MatMul::default();
        let x = [512.0, 512.0, 512.0];
        let base = mm.base_time(&x);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let draws: Vec<f64> =
            (0..400).map(|_| (mm.measure(&x, &mut rng) / base).ln()).collect();
        let mean = draws.iter().sum::<f64>() / draws.len() as f64;
        let sd = (draws.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>()
            / draws.len() as f64)
            .sqrt();
        prop_assert!(mean.abs() < 0.005, "noise bias {mean}");
        prop_assert!((sd - mm.noise_sigma()).abs() < 0.01, "noise sd {sd}");
    }

    #[test]
    fn constraint_holds_for_every_app_sample(seed in 0u64..200) {
        for bench in all_benchmarks() {
            if !matches!(bench.name(), "FMM" | "AMG" | "KRIPKE") {
                continue;
            }
            let d = bench.space().dim();
            let data = bench.sample_dataset(16, seed);
            for (x, _) in data.iter() {
                let prod = x[d - 2] * x[d - 1]; // tpp * ppn are the last two
                prop_assert!(
                    (64.0..=128.0).contains(&prod),
                    "{}: ppn*tpp = {prod}",
                    bench.name()
                );
            }
        }
    }
}
