//! Kripke (discrete-ordinates transport proxy app) — paper §6.0.2, Table 2.
//!
//! Models total solve time on one node over
//! `(groups, legendre, quad, dset, gset, layout, solver, tpp, ppn)`:
//!
//! * work per iteration `∝ zones · groups · quad · (legendre+1)²`
//!   (scattering source) plus the sweep term `∝ zones · groups · quad`;
//! * `dset`/`gset` tile the direction and group loops — blocking factors
//!   with a U-shaped cache sweet spot (too-small sets lose vectorization,
//!   too-large sets spill L2);
//! * `layout` ∈ {dgz, dzg, gdz, gzd, zdg, zgd} permutes the storage order;
//!   stride efficiency interacts with the blocking choice;
//! * `solver` ∈ {sweep, bj}: sweeps converge in few iterations but pay a
//!   wavefront-parallelism penalty at high thread counts; block-Jacobi
//!   iterates more but scales flat.

use crate::bench_trait::{constrain_ppn_tpp, Benchmark};
use crate::machine::Machine;
use cpr_grid::{ParamSpace, ParamSpec};
use rand::rngs::StdRng;

/// Stride-efficiency multiplier per data layout (d=direction, g=group,
/// z=zone as the innermost index, in Kripke's naming).
const LAYOUT_FACTOR: [f64; 6] = [1.00, 1.08, 1.15, 1.22, 1.30, 1.12];

/// Kripke transport benchmark.
#[derive(Debug, Clone)]
pub struct Kripke {
    pub machine: Machine,
    /// Spatial zones per process (fixed, as in the paper's single-node runs).
    pub zones: f64,
}

impl Default for Kripke {
    fn default() -> Self {
        Self {
            machine: Machine::default(),
            zones: 4096.0,
        }
    }
}

impl Kripke {
    /// Cache-blocking efficiency of tiling `total` items into sets of
    /// `set_count`: best when the per-set working set is moderate.
    fn blocking_eff(per_set: f64) -> f64 {
        // Sweet spot around 8-16 items per set.
        let l = (per_set.max(1.0) / 12.0).ln();
        1.0 / (1.0 + 0.10 * l * l)
    }
}

impl Benchmark for Kripke {
    fn name(&self) -> &'static str {
        "KRIPKE"
    }

    fn space(&self) -> ParamSpace {
        ParamSpace::new(vec![
            ParamSpec::log_int("groups", 8.0, 128.0),
            ParamSpec::linear_int("legendre", 0.0, 5.0),
            ParamSpec::log_int("quad", 8.0, 128.0),
            ParamSpec::log_int("dset", 8.0, 64.0),
            ParamSpec::log_int("gset", 1.0, 32.0),
            ParamSpec::categorical("layout", 6),
            ParamSpec::categorical("solver", 2),
            ParamSpec::log_int("tpp", 1.0, 64.0),
            ParamSpec::log_int("ppn", 1.0, 64.0),
        ])
    }

    fn base_time(&self, x: &[f64]) -> f64 {
        let (groups, legendre, quad) = (x[0], x[1], x[2]);
        let (dset, gset) = (x[3].max(1.0), x[4].max(1.0));
        let layout = (x[5].round() as usize).min(5);
        let solver_bj = x[6].round() as usize == 1;
        let (tpp, ppn) = (x[7].max(1.0), x[8].max(1.0));

        let moments = (legendre + 1.0) * (legendre + 1.0);
        let sweep_flops = self.zones * groups * quad * 60.0;
        let scatter_flops = self.zones * groups * quad * moments * 8.0;
        let per_iter = sweep_flops + scatter_flops;

        // Blocking: directions per dset, groups per gset.
        let eff_block = Self::blocking_eff(quad / dset) * Self::blocking_eff(groups / gset);
        // Layout interacts with solver AND blocking: the innermost loop
        // length depends on which index the layout places innermost —
        // direction-inner layouts want large direction sets, group-inner
        // layouts want large group sets.
        let mut layout_factor = LAYOUT_FACTOR[layout];
        let inner_len = match layout {
            0 | 1 => quad / dset,   // d-inner layouts
            2 | 3 => groups / gset, // g-inner layouts
            _ => self.zones.cbrt(), // z-inner layouts
        };
        layout_factor *= 1.0 + 0.25 / (1.0 + inner_len / 8.0);
        if !solver_bj && layout >= 4 {
            layout_factor *= 0.92; // zdg/zgd favor the sweep wavefront
        }

        let threads = tpp * ppn;
        let speedup = self.machine.thread_speedup(threads);
        let (iterations, parallel_penalty) = if solver_bj {
            (24.0, 1.0)
        } else {
            // Sweep: fewer iterations; wavefront limits scaling beyond the
            // number of independent direction-sets.
            let concurrency_cap = (dset * 2.0).max(1.0);
            (9.0, (threads / concurrency_cap).max(1.0).powf(0.35))
        };
        let rate = self.machine.core_flops * 0.35 * eff_block / layout_factor;
        self.machine.overhead
            + iterations * per_iter / rate / speedup * parallel_penalty
            + 5.0e-5 * (gset + dset / 8.0) // per-set loop overheads
    }

    fn noise_sigma(&self) -> f64 {
        0.05
    }

    fn paper_test_set_size(&self) -> usize {
        8745
    }

    fn constrain(&self, x: &mut [f64], rng: &mut StdRng) {
        let (mut tpp, mut ppn) = (x[7], x[8]);
        constrain_ppn_tpp(&mut tpp, &mut ppn, rng);
        x[7] = tpp;
        x[8] = ppn;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const BASE: [f64; 9] = [32.0, 2.0, 32.0, 16.0, 4.0, 0.0, 0.0, 2.0, 32.0];

    #[test]
    fn monotone_in_groups_and_quad() {
        let k = Kripke::default();
        let mut hi_groups = BASE;
        hi_groups[0] = 128.0;
        assert!(k.base_time(&BASE) < k.base_time(&hi_groups));
        let mut hi_quad = BASE;
        hi_quad[2] = 128.0;
        assert!(k.base_time(&BASE) < k.base_time(&hi_quad));
    }

    #[test]
    fn legendre_order_is_quadratic_cost() {
        let k = Kripke::default();
        let t = |l: f64| {
            let mut x = BASE;
            x[1] = l;
            k.base_time(&x)
        };
        // (5+1)²/(0+1)² = 36: high order should cost much more.
        assert!(t(5.0) / t(0.0) > 3.0);
    }

    #[test]
    fn blocking_has_sweet_spot() {
        // Use the bj solver and a z-inner layout: under sweeps larger dset
        // also buys wavefront concurrency, and d-inner layouts couple the
        // inner-loop length to dset — both would mask the pure
        // cache-blocking U-shape this test isolates.
        let k = Kripke::default();
        let t = |dset: f64| {
            let mut x = BASE;
            x[2] = 128.0; // plenty of directions
            x[3] = dset;
            x[5] = 4.0; // zdg layout: inner-loop length independent of dset
            x[6] = 1.0; // block-Jacobi
            k.base_time(&x)
        };
        // Moderate sets beat both extremes at fixed quad.
        let (small, mid, large) = (t(8.0), t(12.0), t(64.0));
        assert!(
            mid <= small && mid < large,
            "blocking U-shape: {small} {mid} {large}"
        );
    }

    #[test]
    fn solver_tradeoff_depends_on_threads() {
        let k = Kripke::default();
        let t = |solver: f64, tpp: f64, ppn: f64| {
            let mut x = BASE;
            x[6] = solver;
            x[7] = tpp;
            x[8] = ppn;
            k.base_time(&x)
        };
        // At low parallelism sweeps win (fewer iterations)...
        assert!(t(0.0, 1.0, 64.0) < t(1.0, 1.0, 64.0));
        // ...sweeps lose ground as the thread count grows (wavefront
        // penalty), so bj closes the gap.
        let gap_low = t(1.0, 1.0, 64.0) / t(0.0, 1.0, 64.0);
        let gap_high = t(1.0, 4.0, 32.0) / t(0.0, 4.0, 32.0);
        assert!(
            gap_high < gap_low,
            "bj should close the gap: {gap_low} -> {gap_high}"
        );
    }

    #[test]
    fn layouts_differentiate() {
        let k = Kripke::default();
        let mut times = Vec::new();
        for layout in 0..6 {
            let mut x = BASE;
            x[5] = layout as f64;
            times.push(k.base_time(&x));
        }
        let min = times.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = times.iter().cloned().fold(0.0_f64, f64::max);
        assert!(max > min * 1.1, "layouts should matter: {times:?}");
    }

    #[test]
    fn sampling_valid() {
        let k = Kripke::default();
        let data = k.sample_dataset(300, 6);
        for (x, y) in data.iter() {
            assert!(y > 0.0);
            assert!((8.0..=64.0).contains(&x[3]));
            assert!((1.0..=32.0).contains(&x[4]));
            assert!(x[5] < 6.0 && x[6] < 2.0);
            let prod = x[7] * x[8];
            assert!((64.0..=128.0).contains(&prod));
        }
    }
}
