//! AMG (algebraic multigrid proxy app) — paper §6.0.2 and Table 2.
//!
//! Models total solve time on one node over
//! `(nx, ny, nz, ct, rt, it, tpp, ppn)`: a 3-D problem of `nx·ny·nz`
//! points per process, with categorical solver components —
//!
//! * `ct` — coarsening type (7 choices: {0, 3, 6, 8, 10, 21, 22} in hypre
//!   numbering): determines operator complexity (total work across levels)
//!   and per-level convergence contribution.
//! * `rt` — relaxation type (10 choices): per-sweep cost and smoothing power.
//! * `it` — interpolation type (14 choices): affects convergence factor and
//!   setup cost.
//!
//! Cost tables encode the well-known qualitative ordering (aggressive
//! coarsening → low complexity but worse convergence; strong smoothers →
//! costlier sweeps but fewer iterations). AMG is memory-bandwidth-bound,
//! so node scaling saturates with `ppn` (the `bandwidth_per_proc` model).

use crate::bench_trait::{constrain_ppn_tpp, Benchmark};
use crate::machine::Machine;
use cpr_grid::{ParamSpace, ParamSpec};
use rand::rngs::StdRng;

/// Operator complexity per coarsening type (hypre {0,3,6,8,10,21,22}).
const CT_COMPLEXITY: [f64; 7] = [2.4, 1.9, 1.7, 1.35, 1.5, 1.6, 1.45];
/// Convergence-factor contribution per coarsening type (lower = better).
const CT_CONV: [f64; 7] = [0.15, 0.25, 0.30, 0.55, 0.40, 0.35, 0.45];
/// Per-sweep relative cost per relaxation type ({0,3,4,6,8,13,14,16,17,18}).
const RT_COST: [f64; 10] = [0.8, 1.0, 1.05, 1.6, 2.1, 1.3, 1.35, 1.8, 1.25, 1.15];
/// Smoothing strength per relaxation type (lower residual reduction factor).
const RT_SMOOTH: [f64; 10] = [0.8, 0.62, 0.60, 0.45, 0.35, 0.55, 0.54, 0.42, 0.58, 0.63];
/// Convergence-factor contribution per interpolation type (14 choices).
const IT_CONV: [f64; 14] = [
    0.50, 0.42, 0.40, 0.38, 0.44, 0.36, 0.52, 0.35, 0.41, 0.46, 0.39, 0.37, 0.43, 0.48,
];
/// Setup-cost multiplier per interpolation type.
const IT_SETUP: [f64; 14] = [
    1.0, 1.15, 1.2, 1.3, 1.1, 1.4, 0.95, 1.5, 1.2, 1.05, 1.35, 1.45, 1.15, 1.0,
];

/// AMG solve benchmark.
#[derive(Debug, Clone)]
pub struct Amg {
    pub machine: Machine,
    /// Bytes moved per degree of freedom per sweep (matrix row + vectors).
    pub bytes_per_dof: f64,
    /// Target residual reduction (drives the iteration count).
    pub tolerance: f64,
}

impl Default for Amg {
    fn default() -> Self {
        Self {
            machine: Machine::default(),
            bytes_per_dof: 120.0,
            tolerance: 1e-8,
        }
    }
}

impl Amg {
    /// Per-V-cycle convergence factor for a component combination.
    pub fn convergence_factor(&self, ct: usize, rt: usize, it: usize) -> f64 {
        // Blend: coarsening and interpolation set the two-grid quality,
        // the smoother multiplies in. Clamped away from 0/1.
        let mut rho = (CT_CONV[ct] + IT_CONV[it]) * 0.5 + 0.35 * RT_SMOOTH[rt];
        // Component-compatibility effects: aggressive coarsening needs
        // long-range interpolation; cheap smoothers break down with
        // low-complexity hierarchies. Irregular categorical interactions
        // like these are what make AMG performance genuinely non-separable.
        if CT_COMPLEXITY[ct] < 1.5 && IT_CONV[it] > 0.42 {
            rho += 0.12;
        }
        if RT_SMOOTH[rt] > 0.6 && CT_CONV[ct] > 0.35 {
            rho += 0.08;
        }
        rho.clamp(0.05, 0.93)
    }

    /// V-cycles needed to reach the tolerance.
    pub fn iterations(&self, ct: usize, rt: usize, it: usize) -> f64 {
        let rho = self.convergence_factor(ct, rt, it);
        (self.tolerance.ln() / rho.ln()).ceil().max(1.0)
    }
}

impl Benchmark for Amg {
    fn name(&self) -> &'static str {
        "AMG"
    }

    fn space(&self) -> ParamSpace {
        ParamSpace::new(vec![
            ParamSpec::log_int("nx", 8.0, 128.0),
            ParamSpec::log_int("ny", 8.0, 128.0),
            ParamSpec::log_int("nz", 8.0, 128.0),
            ParamSpec::categorical("ct", 7),
            ParamSpec::categorical("rt", 10),
            ParamSpec::categorical("it", 14),
            ParamSpec::log_int("tpp", 1.0, 64.0),
            ParamSpec::log_int("ppn", 1.0, 64.0),
        ])
    }

    fn base_time(&self, x: &[f64]) -> f64 {
        let (nx, ny, nz) = (x[0], x[1], x[2]);
        let ct = (x[3].round() as usize).min(6);
        let rt = (x[4].round() as usize).min(9);
        let it = (x[5].round() as usize).min(13);
        let (tpp, ppn) = (x[6].max(1.0), x[7].max(1.0));

        let dofs_per_proc = nx * ny * nz;
        let total_dofs = dofs_per_proc * ppn;
        let complexity = CT_COMPLEXITY[ct];
        let iterations = self.iterations(ct, rt, it);

        // Memory-bound sweep cost: every V-cycle touches `complexity ×
        // total_dofs` rows, 2 smoother sweeps each of relative cost RT_COST.
        let bytes_per_cycle =
            total_dofs * complexity * self.bytes_per_dof * (2.0 * RT_COST[rt] + 0.6);
        // Threads help only the compute-minor part; bandwidth rules. tpp
        // threads per rank stream from the same pool.
        let streams = (ppn * tpp.sqrt()).max(1.0);
        let bw = self.machine.bandwidth_per_proc(streams) * streams;
        let t_solve = iterations * bytes_per_cycle / bw;
        // Setup: graph coarsening + interpolation construction.
        let t_setup = total_dofs * complexity * IT_SETUP[it] * 90.0
            / (self.machine.core_flops * self.machine.thread_speedup(ppn * tpp) / 8.0);
        self.machine.overhead + t_solve + t_setup
    }

    fn noise_sigma(&self) -> f64 {
        0.05
    }

    fn paper_test_set_size(&self) -> usize {
        21_534
    }

    fn constrain(&self, x: &mut [f64], rng: &mut StdRng) {
        let (mut tpp, mut ppn) = (x[6], x[7]);
        constrain_ppn_tpp(&mut tpp, &mut ppn, rng);
        x[6] = tpp;
        x[7] = ppn;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const BASE: [f64; 8] = [64.0, 64.0, 64.0, 1.0, 1.0, 1.0, 2.0, 32.0];

    #[test]
    fn monotone_in_problem_size() {
        let amg = Amg::default();
        let mut small = BASE;
        small[0] = 16.0;
        assert!(amg.base_time(&small) < amg.base_time(&BASE));
    }

    #[test]
    fn categorical_choices_change_time() {
        let amg = Amg::default();
        let mut seen = std::collections::BTreeSet::new();
        for ct in 0..7 {
            let mut x = BASE;
            x[3] = ct as f64;
            seen.insert((amg.base_time(&x) * 1e6) as u64);
        }
        assert!(
            seen.len() >= 5,
            "coarsening types should differentiate times"
        );
    }

    #[test]
    fn iterations_respond_to_smoother_quality() {
        let amg = Amg::default();
        // Strongest smoother (rt=4 in our table) needs fewer cycles than the
        // weakest (rt=0).
        assert!(amg.iterations(0, 4, 0) < amg.iterations(0, 0, 0));
    }

    #[test]
    fn aggressive_coarsening_tradeoff_exists() {
        // ct=3 has lowest complexity but worst convergence: for the default
        // tolerance there must be component pairs where it loses and
        // settings where complexity wins (a real tradeoff, not domination).
        let amg = Amg::default();
        let t = |ct: usize| {
            let mut x = BASE;
            x[3] = ct as f64;
            amg.base_time(&x)
        };
        let times: Vec<f64> = (0..7).map(t).collect();
        let min = times.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = times.iter().cloned().fold(0.0_f64, f64::max);
        // Complexity and convergence partially offset (the realistic
        // tradeoff); a ~20% residual spread across coarsening types remains.
        assert!(max / min > 1.15, "coarsening should matter: {times:?}");
    }

    #[test]
    fn convergence_factor_in_unit_interval() {
        let amg = Amg::default();
        for ct in 0..7 {
            for rt in 0..10 {
                for it in 0..14 {
                    let rho = amg.convergence_factor(ct, rt, it);
                    assert!((0.0..1.0).contains(&rho));
                }
            }
        }
    }

    #[test]
    fn sampling_covers_categoricals() {
        let amg = Amg::default();
        let data = amg.sample_dataset(500, 5);
        let mut cts = std::collections::BTreeSet::new();
        for (x, y) in data.iter() {
            cts.insert(x[3] as u64);
            assert!(y > 0.0);
            let prod = x[6] * x[7];
            assert!((64.0..=128.0).contains(&prod));
        }
        assert_eq!(cts.len(), 7, "all coarsening types should appear");
    }
}
