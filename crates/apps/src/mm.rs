//! Matrix multiplication (Intel MKL GEMM, single-threaded) — paper §6.0.2.
//!
//! `C_{m×n} ← A_{m×k} B_{k×n} + βC` with `32 ≤ m, n, k ≤ 4096`. The cost
//! model is a flop term at an efficiency that ripples with blocking residues
//! (partial register/cache tiles at non-multiples of the blocking factors —
//! the "memory misalignment, register spilling" behaviour §3.2 motivates
//! piecewise models with) plus a bandwidth term for streaming the three
//! matrices. Kernel benchmarks are averaged 50× (§6.0.3), so measurement
//! noise is small.

use crate::bench_trait::Benchmark;
use crate::machine::Machine;
use cpr_grid::{ParamSpace, ParamSpec};

/// Single-threaded GEMM benchmark.
#[derive(Debug, Clone, Default)]
pub struct MatMul {
    pub machine: Machine,
}

/// Efficiency ripple from partial tiles: full efficiency at multiples of the
/// blocking factor, dipping in between, with the dip amplitude fading for
/// large dimensions.
fn tile_efficiency(d: f64, block: f64, dip: f64) -> f64 {
    let frac = (d / block).fract();
    let partial = if frac == 0.0 { 0.0 } else { 1.0 - frac };
    // Larger matrices amortize partial tiles.
    let amplitude = dip * (block / (d + block));
    1.0 - amplitude * partial
}

/// Small-dimension ramp: BLAS3 efficiency grows with the dimension until the
/// kernel is compute-bound.
fn smallness_ramp(d: f64) -> f64 {
    d / (d + 64.0)
}

impl MatMul {
    /// Achieved fraction of peak for a given shape.
    pub fn efficiency(&self, m: f64, n: f64, k: f64) -> f64 {
        let ripple = tile_efficiency(m, 96.0, 0.25)
            * tile_efficiency(n, 48.0, 0.20)
            * tile_efficiency(k, 256.0, 0.30);
        let ramp = smallness_ramp(m) * smallness_ramp(n) * smallness_ramp(k);
        0.92 * ripple * ramp.powf(0.5)
    }
}

impl Benchmark for MatMul {
    fn name(&self) -> &'static str {
        "MM"
    }

    fn space(&self) -> ParamSpace {
        ParamSpace::new(vec![
            ParamSpec::log_int("m", 32.0, 4096.0),
            ParamSpec::log_int("n", 32.0, 4096.0),
            ParamSpec::log_int("k", 32.0, 4096.0),
        ])
    }

    fn base_time(&self, x: &[f64]) -> f64 {
        let (m, n, k) = (x[0], x[1], x[2]);
        let flops = 2.0 * m * n * k;
        let t_compute = flops / (self.machine.core_flops * self.efficiency(m, n, k));
        // Stream A, B, C once each (single-core share of node bandwidth).
        let bytes = 8.0 * (m * k + k * n + 2.0 * m * n);
        let t_mem = bytes / self.machine.bandwidth_per_proc(1.0);
        self.machine.overhead + t_compute + 0.4 * t_mem
    }

    fn noise_sigma(&self) -> f64 {
        0.008 // averaged 50x to CV < 0.01
    }

    fn paper_test_set_size(&self) -> usize {
        1000
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn time_positive_and_monotone_in_volume() {
        let mm = MatMul::default();
        let t1 = mm.base_time(&[128.0, 128.0, 128.0]);
        let t2 = mm.base_time(&[512.0, 512.0, 512.0]);
        let t3 = mm.base_time(&[2048.0, 2048.0, 2048.0]);
        assert!(t1 > 0.0 && t1 < t2 && t2 < t3);
        // Roughly cubic between the larger two (efficiency saturates).
        let ratio = t3 / t2;
        assert!(ratio > 30.0 && ratio < 100.0, "scaling ratio {ratio}");
    }

    #[test]
    fn efficiency_in_unit_range_with_ripple() {
        let mm = MatMul::default();
        let mut seen_low = false;
        let mut seen_high = false;
        for d in (32..1024).step_by(7) {
            let e = mm.efficiency(d as f64, d as f64, d as f64);
            assert!(e > 0.0 && e <= 0.92);
            if e < 0.55 {
                seen_low = true;
            }
            if e > 0.7 {
                seen_high = true;
            }
        }
        assert!(seen_low && seen_high, "efficiency should vary with shape");
    }

    #[test]
    fn sampling_respects_ranges() {
        let mm = MatMul::default();
        let data = mm.sample_dataset(200, 3);
        assert_eq!(data.len(), 200);
        for (x, y) in data.iter() {
            for &v in x {
                assert!((32.0..=4096.0).contains(&v));
                assert_eq!(v, v.round(), "integer parameter not rounded");
            }
            assert!(y > 0.0);
        }
    }

    #[test]
    fn measurement_noise_is_small() {
        let mm = MatMul::default();
        let mut rng = StdRng::seed_from_u64(5);
        let base = mm.base_time(&[512.0, 512.0, 512.0]);
        for _ in 0..50 {
            let t = mm.measure(&[512.0, 512.0, 512.0], &mut rng);
            assert!(
                (t / base).ln().abs() < 0.05,
                "noise too large: {t} vs {base}"
            );
        }
    }

    #[test]
    fn deterministic_datasets() {
        let mm = MatMul::default();
        let a = mm.sample_dataset(20, 9);
        let b = mm.sample_dataset(20, 9);
        assert_eq!(a.samples(), b.samples());
    }
}
