//! QR factorization (Intel MKL GEQRF, single-threaded) — paper §6.0.2.
//!
//! `A_{m×n} → Q_{m×n} R_{n×n}` with `32 ≤ n ≤ m ≤ 262144` and all matrices
//! in memory. Householder QR costs `2mn² − ⅔n³` flops; the blocked
//! implementation's efficiency grows with the panel width (BLAS3 fraction)
//! and pays a bandwidth price for tall-skinny shapes where the panel
//! factorization streams the full column height repeatedly.

use crate::bench_trait::Benchmark;
use crate::machine::Machine;
use cpr_grid::{ParamSpace, ParamSpec};
use rand::rngs::StdRng;
use rand::Rng;

/// Single-threaded GEQRF benchmark. The configuration is `(m, n)`, `m ≥ n`.
#[derive(Debug, Clone)]
pub struct QrFactorization {
    pub machine: Machine,
    /// Memory budget: `m·n` must fit (`8·m·n ≤ mem_bytes`).
    pub mem_bytes: f64,
}

impl Default for QrFactorization {
    fn default() -> Self {
        Self {
            machine: Machine::default(),
            mem_bytes: 64.0e9,
        }
    }
}

impl QrFactorization {
    fn efficiency(&self, m: f64, n: f64) -> f64 {
        // BLAS3 fraction ramps with n; tall-skinny panels are BLAS2-bound.
        let blas3 = n / (n + 128.0);
        // Mild ripple at the panel width (nb = 64).
        let frac = (n / 64.0).fract();
        let ripple = 1.0 - 0.12 * if frac == 0.0 { 0.0 } else { 1.0 - frac } * (64.0 / (n + 64.0));
        (0.25 + 0.65 * blas3) * ripple * (m / (m + 64.0))
    }
}

impl Benchmark for QrFactorization {
    fn name(&self) -> &'static str {
        "QR"
    }

    fn space(&self) -> ParamSpace {
        ParamSpace::new(vec![
            ParamSpec::log_int("m", 32.0, 262144.0),
            ParamSpec::log_int("n", 32.0, 262144.0),
        ])
    }

    fn base_time(&self, x: &[f64]) -> f64 {
        let (m, n) = (x[0], x[1].min(x[0])); // defensive: model defined for m >= n
        let flops = 2.0 * m * n * n - 2.0 / 3.0 * n * n * n;
        let t_compute = flops / (self.machine.core_flops * self.efficiency(m, n));
        // Panel factorization streams the trailing matrix once per panel.
        let panels = (n / 64.0).ceil();
        let bytes = 8.0 * m * n * (1.0 + 0.02 * panels.min(32.0));
        let t_mem = bytes / self.machine.bandwidth_per_proc(1.0);
        self.machine.overhead + t_compute + 0.3 * t_mem
    }

    fn noise_sigma(&self) -> f64 {
        0.008
    }

    fn paper_test_set_size(&self) -> usize {
        1000
    }

    fn constrain(&self, x: &mut [f64], rng: &mut StdRng) {
        // Enforce m >= n and the memory budget by resampling n in [32, cap].
        let m = x[0].round().clamp(32.0, 262144.0);
        let mem_cap = self.mem_bytes / (8.0 * m);
        let n_hi = m.min(mem_cap).max(32.0);
        let n = 32.0 * (n_hi / 32.0).powf(rng.gen::<f64>());
        x[0] = m;
        x[1] = n.round().clamp(32.0, n_hi.max(32.0));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampled_configs_satisfy_m_ge_n_and_memory() {
        let qr = QrFactorization::default();
        let data = qr.sample_dataset(300, 1);
        for (x, _) in data.iter() {
            assert!(x[0] >= x[1], "m < n: {x:?}");
            assert!(
                8.0 * x[0] * x[1] <= qr.mem_bytes * 1.01,
                "exceeds memory: {x:?}"
            );
        }
    }

    #[test]
    fn square_time_scales_cubically() {
        let qr = QrFactorization::default();
        let t1 = qr.base_time(&[1024.0, 1024.0]);
        let t2 = qr.base_time(&[4096.0, 4096.0]);
        let ratio = t2 / t1;
        assert!(ratio > 25.0 && ratio < 120.0, "ratio {ratio}");
    }

    #[test]
    fn tall_skinny_cheaper_than_square_at_same_m() {
        let qr = QrFactorization::default();
        let tall = qr.base_time(&[65536.0, 64.0]);
        let square = qr.base_time(&[65536.0, 8192.0]);
        assert!(tall < square / 100.0, "tall {tall} vs square {square}");
    }

    #[test]
    fn monotone_in_both_dimensions() {
        let qr = QrFactorization::default();
        assert!(qr.base_time(&[2048.0, 512.0]) < qr.base_time(&[8192.0, 512.0]));
        assert!(qr.base_time(&[8192.0, 256.0]) < qr.base_time(&[8192.0, 1024.0]));
    }
}
