//! # cpr-apps — synthetic application benchmarks
//!
//! Stand-ins for the paper's six Stampede2-measured benchmarks (§6.0.2,
//! Table 2): analytic cost models over the exact parameter spaces the paper
//! evaluates, with seeded multiplicative log-normal measurement noise. See
//! `DESIGN.md` for the substitution argument — the modeling layer consumes
//! only `(configuration, time)` pairs, and these simulators reproduce the
//! structural properties (approximate low-rank in log space, blocking
//! ripples, algorithm crossovers, categorical cost tables, U-shaped
//! tradeoffs) that drive the paper's comparisons.
//!
//! All benchmarks implement [`Benchmark`]: a [`cpr_grid::ParamSpace`], a
//! noise-free `base_time`, §6.0.3-faithful samplers (log-uniform inputs and
//! architectural parameters, uniform configuration parameters, constraint
//! `64 ≤ ppn·tpp ≤ 128`), and dataset generation.

pub mod amg;
pub mod bcast;
pub mod bench_trait;
pub mod exafmm;
pub mod kripke;
pub mod machine;
pub mod mm;
pub mod qr;

pub use amg::Amg;
pub use bcast::Broadcast;
pub use bench_trait::{standard_normal, Benchmark};
pub use exafmm::ExaFmm;
pub use kripke::Kripke;
pub use machine::Machine;
pub use mm::MatMul;
pub use qr::QrFactorization;

/// All six paper benchmarks with default machines.
pub fn all_benchmarks() -> Vec<Box<dyn Benchmark>> {
    vec![
        Box::new(MatMul::default()),
        Box::new(QrFactorization::default()),
        Box::new(Broadcast::default()),
        Box::new(ExaFmm::default()),
        Box::new(Amg::default()),
        Box::new(Kripke::default()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_has_six_named_benchmarks() {
        let benches = all_benchmarks();
        let names: Vec<&str> = benches.iter().map(|b| b.name()).collect();
        assert_eq!(names, vec!["MM", "QR", "BC", "FMM", "AMG", "KRIPKE"]);
    }

    #[test]
    fn parameter_counts_match_table_2() {
        let dims: Vec<usize> = all_benchmarks().iter().map(|b| b.space().dim()).collect();
        assert_eq!(dims, vec![3, 2, 3, 6, 8, 9]);
    }

    #[test]
    fn paper_test_set_sizes() {
        let sizes: Vec<usize> = all_benchmarks()
            .iter()
            .map(|b| b.paper_test_set_size())
            .collect();
        assert_eq!(sizes, vec![1000, 1000, 10_484, 2512, 21_534, 8745]);
    }

    #[test]
    fn every_benchmark_generates_positive_finite_times() {
        for b in all_benchmarks() {
            let data = b.sample_dataset(64, 7);
            assert_eq!(data.len(), 64, "{}", b.name());
            for (x, y) in data.iter() {
                assert!(
                    y > 0.0 && y.is_finite(),
                    "{}: bad time {y} at {x:?}",
                    b.name()
                );
                assert_eq!(x.len(), b.space().dim());
            }
        }
    }

    #[test]
    fn configs_lie_inside_their_spaces() {
        for b in all_benchmarks() {
            let space = b.space();
            let data = b.sample_dataset(128, 8);
            for (x, _) in data.iter() {
                for (j, flag) in space.in_domain(x).into_iter().enumerate() {
                    assert!(flag, "{}: parameter {j} out of domain in {x:?}", b.name());
                }
            }
        }
    }
}
