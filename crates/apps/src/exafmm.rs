//! ExaFMM fast multipole method — paper §6.0.2 and Table 2.
//!
//! Models the `m2l_&_p2p` kernel time on one node over
//! `(n, order, ppl, tree_level, tpp, ppn)`:
//!
//! * **P2P** (near field): each leaf interacts with its ~27 neighbours;
//!   cost `≈ 27 · n · ppl` pairwise kernels — grows with particles-per-leaf.
//! * **M2L** (far field): each of the `n/ppl` cells translates ~189
//!   interaction-list sources at `O(order³)` per translation — shrinks with
//!   particles-per-leaf.
//!
//! Their sum is the classic U-shape in `ppl` whose optimum shifts with
//! `order`, an interaction effect that separable (rank-1) models miss but
//! low-rank CP models capture. The partitioning tree level `tl` adds a load
//! imbalance penalty when it mismatches the natural leaf level, and
//! `(tpp, ppn)` give the node-level parallel efficiency under the
//! `64 ≤ ppn·tpp ≤ 128` constraint.

use crate::bench_trait::{constrain_ppn_tpp, Benchmark};
use crate::machine::Machine;
use cpr_grid::{ParamSpace, ParamSpec};
use rand::rngs::StdRng;

/// ExaFMM `m2l_&_p2p` kernel benchmark.
#[derive(Debug, Clone, Default)]
pub struct ExaFmm {
    pub machine: Machine,
}

impl ExaFmm {
    /// Flop counts for the two kernels. Constants chosen so the P2P/M2L
    /// balance point sits at `ppl* ≈ 30..200` over the order range 4..15,
    /// as in practical FMM codes.
    fn kernel_flops(&self, n: f64, order: f64, ppl: f64) -> (f64, f64) {
        let p2p = 27.0 * n * ppl * 12.0; // ~12 flops per pairwise kernel
        let cells = (n / ppl).max(1.0);
        let m2l = cells * 189.0 * order.powi(3) * 16.0;
        (p2p, m2l)
    }

    /// Load-imbalance multiplier from the partitioning tree level: the
    /// natural level is `log₈(n/ppl)`; deviating in either direction costs,
    /// more sharply when over-partitioned (empty leaf boxes).
    fn imbalance(&self, n: f64, ppl: f64, tl: f64) -> f64 {
        let natural = (n / ppl).max(1.0).log2() / 3.0; // log base 8
        let dev = tl - natural;
        1.0 + 0.10 * dev.abs() + 0.15 * dev.max(0.0)
    }

    /// Task-granularity penalty: with fewer than ~4 cells per thread the
    /// node-level scheduler starves — a genuine (n, ppl, tpp, ppn)
    /// interaction cliff that separable models cannot represent.
    fn granularity_penalty(&self, n: f64, ppl: f64, threads: f64) -> f64 {
        let cells = (n / ppl).max(1.0);
        let per_thread = cells / threads.max(1.0);
        if per_thread >= 4.0 {
            1.0
        } else {
            1.0 + 0.6 * (4.0 / per_thread.max(0.25)).ln()
        }
    }
}

impl Benchmark for ExaFmm {
    fn name(&self) -> &'static str {
        "FMM"
    }

    fn space(&self) -> ParamSpace {
        ParamSpace::new(vec![
            ParamSpec::log_int("n", 4096.0, 65536.0),
            ParamSpec::log_int("order", 4.0, 15.0),
            ParamSpec::linear_int("ppl", 32.0, 256.0),
            ParamSpec::linear_int("tl", 0.0, 4.0),
            ParamSpec::log_int("tpp", 1.0, 64.0),
            ParamSpec::log_int("ppn", 1.0, 64.0),
        ])
    }

    fn base_time(&self, x: &[f64]) -> f64 {
        let (n, order, ppl, tl, tpp, ppn) = (x[0], x[1], x[2], x[3], x[4], x[5]);
        let (p2p, m2l) = self.kernel_flops(n, order, ppl);
        let threads = tpp * ppn;
        let speedup = self.machine.thread_speedup(threads);
        // P2P vectorizes well; M2L is gather-heavy and reaches lower
        // efficiency, with a mild boost at higher orders (denser BLAS).
        let p2p_rate = self.machine.core_flops * 0.7;
        let m2l_rate = self.machine.core_flops * (0.25 + 0.25 * order / 15.0);
        let serial = p2p / p2p_rate + m2l / m2l_rate;
        self.machine.overhead
            + serial / speedup
                * self.imbalance(n, ppl, tl)
                * self.granularity_penalty(n, ppl, threads)
                * (1.0 + 0.03 * ppn.log2().max(0.0)) // MPI-rank overhead
    }

    fn noise_sigma(&self) -> f64 {
        0.05 // applications execute once (§6.0.3)
    }

    fn paper_test_set_size(&self) -> usize {
        2512
    }

    fn constrain(&self, x: &mut [f64], rng: &mut StdRng) {
        let (mut tpp, mut ppn) = (x[4], x[5]);
        constrain_ppn_tpp(&mut tpp, &mut ppn, rng);
        x[4] = tpp;
        x[5] = ppn;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u_shape_in_particles_per_leaf() {
        let fmm = ExaFmm::default();
        let t = |ppl: f64| fmm.base_time(&[32768.0, 10.0, ppl, 2.0, 2.0, 32.0]);
        let (lo, mid, hi) = (t(32.0), t(96.0), t(256.0));
        assert!(mid < lo, "mid ppl should beat tiny leaves: {mid} vs {lo}");
        assert!(mid < hi, "mid ppl should beat huge leaves: {mid} vs {hi}");
    }

    #[test]
    fn optimum_ppl_shifts_with_order() {
        // Higher expansion order makes M2L costlier, pushing the optimal
        // leaf size up — the interaction CP rank > 1 captures.
        let fmm = ExaFmm::default();
        let best_ppl = |order: f64| {
            (32..=256)
                .step_by(8)
                .map(|ppl| {
                    (
                        ppl,
                        fmm.base_time(&[32768.0, order, ppl as f64, 2.0, 2.0, 32.0]),
                    )
                })
                .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
                .unwrap()
                .0
        };
        assert!(
            best_ppl(14.0) > best_ppl(4.0),
            "optimum should shift with order"
        );
    }

    #[test]
    fn monotone_in_particles_and_order() {
        let fmm = ExaFmm::default();
        assert!(
            fmm.base_time(&[8192.0, 8.0, 128.0, 2.0, 2.0, 32.0])
                < fmm.base_time(&[65536.0, 8.0, 128.0, 2.0, 2.0, 32.0])
        );
        assert!(
            fmm.base_time(&[32768.0, 4.0, 128.0, 2.0, 2.0, 32.0])
                < fmm.base_time(&[32768.0, 15.0, 128.0, 2.0, 2.0, 32.0])
        );
    }

    #[test]
    fn sampled_configs_respect_constraint() {
        let fmm = ExaFmm::default();
        let data = fmm.sample_dataset(300, 4);
        for (x, _) in data.iter() {
            let prod = x[4] * x[5];
            assert!((64.0..=128.0).contains(&prod), "ppn·tpp = {prod}");
            assert!((0.0..=4.0).contains(&x[3]));
        }
    }

    #[test]
    fn more_threads_reduce_time_when_tasks_abound() {
        // Plenty of leaf cells per thread: scaling is clean.
        let fmm = ExaFmm::default();
        let slow = fmm.base_time(&[65536.0, 10.0, 64.0, 2.0, 1.0, 64.0]);
        let fast = fmm.base_time(&[65536.0, 10.0, 64.0, 2.0, 2.0, 64.0]);
        assert!(fast < slow);
    }

    #[test]
    fn granularity_cliff_when_tasks_scarce() {
        // Doubling threads helps much less when leaf cells are scarce —
        // the (n, ppl) × (tpp, ppn) interaction cliff separable models miss.
        let fmm = ExaFmm::default();
        let gain = |n: f64, ppl: f64| {
            fmm.base_time(&[n, 10.0, ppl, 2.0, 1.0, 64.0])
                / fmm.base_time(&[n, 10.0, ppl, 2.0, 2.0, 64.0])
        };
        let abundant = gain(65536.0, 64.0); // 1024 cells
        let scarce = gain(16384.0, 64.0); // 256 cells: 128 threads starve
        assert!(
            scarce < abundant * 0.85,
            "scarce-task gain {scarce} should trail abundant-task gain {abundant}"
        );
    }
}
