//! A parametric machine model standing in for Stampede2's KNL nodes.
//!
//! The paper measures six benchmarks on Stampede2 (Intel Knights Landing,
//! 68 cores / 272 hardware threads per node, Omni-Path fat tree). We cannot
//! execute on that machine, so `cpr-apps` synthesizes execution times from
//! analytic cost models parameterized by this struct. The constants are
//! KNL-flavored but their exact values are irrelevant to the reproduction —
//! what matters is the *structure* they induce (see DESIGN.md).

/// Machine constants shared by the benchmark simulators.
#[derive(Debug, Clone, Copy)]
pub struct Machine {
    /// Sustainable single-core DGEMM-like flop rate (flop/s).
    pub core_flops: f64,
    /// Hardware cores per node.
    pub cores_per_node: usize,
    /// Hardware threads per core.
    pub threads_per_core: usize,
    /// Aggregate node memory bandwidth (bytes/s).
    pub node_bandwidth: f64,
    /// Point-to-point network latency (s).
    pub net_alpha: f64,
    /// Inter-node per-link bandwidth (bytes/s).
    pub net_bandwidth: f64,
    /// Intra-node (shared-memory) transfer bandwidth (bytes/s).
    pub shm_bandwidth: f64,
    /// Fixed per-invocation overhead (s).
    pub overhead: f64,
}

impl Default for Machine {
    fn default() -> Self {
        Self {
            core_flops: 35.0e9,
            cores_per_node: 68,
            threads_per_core: 4,
            node_bandwidth: 90.0e9,
            net_alpha: 2.0e-6,
            net_bandwidth: 12.0e9,
            shm_bandwidth: 30.0e9,
            overhead: 5.0e-6,
        }
    }
}

impl Machine {
    /// Effective parallel speedup of `threads` software threads on one node:
    /// linear up to the core count, sublinear into hyper-threads, with a
    /// mild serialization term.
    pub fn thread_speedup(&self, threads: f64) -> f64 {
        let cores = self.cores_per_node as f64;
        let hw = cores * self.threads_per_core as f64;
        let t = threads.clamp(1.0, hw);
        let base = if t <= cores {
            t
        } else {
            // Hyper-threads add ~35% per extra thread set.
            cores + (t - cores) * 0.35
        };
        // Amdahl-style serialization: 0.5% serial fraction.
        base / (1.0 + 0.005 * base)
    }

    /// Per-process share of node memory bandwidth when `procs` processes
    /// stream concurrently: aggregate bandwidth ramps as `p/(p+4)` (a few
    /// streams saturate the memory system), shared equally.
    pub fn bandwidth_per_proc(&self, procs: f64) -> f64 {
        let p = procs.max(1.0);
        self.node_bandwidth * (p / (p + 4.0)) / p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn speedup_monotone_and_bounded() {
        let m = Machine::default();
        let mut prev = 0.0;
        for t in [1.0, 2.0, 8.0, 34.0, 68.0, 136.0, 272.0] {
            let s = m.thread_speedup(t);
            assert!(s >= prev, "speedup dropped at {t}");
            assert!(s <= t, "superlinear at {t}");
            prev = s;
        }
        // Hyper-threading gives < 2x over the core count.
        assert!(m.thread_speedup(272.0) < 2.0 * m.thread_speedup(68.0));
    }

    #[test]
    fn single_thread_is_unit() {
        let m = Machine::default();
        let s = m.thread_speedup(1.0);
        assert!(s > 0.9 && s <= 1.0);
    }

    #[test]
    fn per_proc_bandwidth_decreases() {
        let m = Machine::default();
        let one = m.bandwidth_per_proc(1.0);
        let many = m.bandwidth_per_proc(64.0);
        assert!(
            one > many,
            "bandwidth per proc should shrink under contention"
        );
        assert!(many > 0.0);
    }
}
