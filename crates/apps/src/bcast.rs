//! MPI Broadcast (Intel MPI) — paper §6.0.2.
//!
//! `MPI_Bcast` of `2¹⁶ ≤ msg ≤ 2²⁶` bytes on `1..128` nodes × `1..64`
//! processes-per-node. MPI libraries switch algorithms by message size and
//! communicator shape; we model the two classical endpoints and take the
//! faster, which produces the crossover structure the paper's piecewise
//! models are motivated by:
//!
//! * **binomial tree** — `⌈log₂ p⌉ (α + mβ)`; wins for small messages.
//! * **scatter + recursive-doubling allgather** (van de Geijn) —
//!   `(log₂ p + p−1)α + 2m β (p−1)/p`; wins for large messages.
//!
//! The effective β blends inter-node and intra-node transfers: with `ppn`
//! ranks per node the node's injection bandwidth is shared, and the
//! single-node case runs entirely over shared memory.

use crate::bench_trait::Benchmark;
use crate::machine::Machine;
use cpr_grid::{ParamSpace, ParamSpec};

/// MPI broadcast benchmark over `(nodes, ppn, msg_bytes)`.
#[derive(Debug, Clone, Default)]
pub struct Broadcast {
    pub machine: Machine,
}

impl Broadcast {
    /// Effective per-byte cost for one transfer stage.
    fn beta(&self, nodes: f64, ppn: f64) -> f64 {
        if nodes <= 1.0 {
            // Pure shared-memory broadcast.
            1.0 / self.machine.shm_bandwidth
        } else {
            // Inter-node link shared by the ranks of a node; intra-node
            // fan-out adds a shared-memory hop.
            let inter = ppn.sqrt() / self.machine.net_bandwidth;
            let intra = 1.0 / self.machine.shm_bandwidth;
            inter + 0.5 * intra
        }
    }

    /// Binomial-tree broadcast time.
    pub fn t_binomial(&self, p: f64, nodes: f64, ppn: f64, m: f64) -> f64 {
        let rounds = p.log2().ceil().max(1.0);
        rounds * (self.machine.net_alpha + m * self.beta(nodes, ppn))
    }

    /// Scatter-allgather (large-message) broadcast time.
    pub fn t_scatter_allgather(&self, p: f64, nodes: f64, ppn: f64, m: f64) -> f64 {
        let log_p = p.log2().ceil().max(1.0);
        (log_p + p - 1.0) * self.machine.net_alpha + 2.0 * m * self.beta(nodes, ppn) * (p - 1.0) / p
    }
}

impl Benchmark for Broadcast {
    fn name(&self) -> &'static str {
        "BC"
    }

    fn space(&self) -> ParamSpace {
        ParamSpace::new(vec![
            ParamSpec::log_int("nodes", 1.0, 128.0),
            ParamSpec::log_int("ppn", 1.0, 64.0),
            ParamSpec::log_int("msg", 65536.0, 67_108_864.0),
        ])
    }

    fn base_time(&self, x: &[f64]) -> f64 {
        let (nodes, ppn, m) = (x[0].max(1.0), x[1].max(1.0), x[2]);
        let p = nodes * ppn;
        if p <= 1.0 {
            // Broadcast to self: just the call overhead.
            return self.machine.overhead;
        }
        let t = self
            .t_binomial(p, nodes, ppn, m)
            .min(self.t_scatter_allgather(p, nodes, ppn, m));
        self.machine.overhead + t
    }

    fn noise_sigma(&self) -> f64 {
        0.01 // kernel, averaged 50x; network adds a little jitter
    }

    fn paper_test_set_size(&self) -> usize {
        10_484
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotone_in_message_size() {
        let bc = Broadcast::default();
        let mut prev = 0.0;
        for exp in 16..=26 {
            let t = bc.base_time(&[16.0, 16.0, (1u64 << exp) as f64]);
            assert!(t > prev, "not monotone at 2^{exp}");
            prev = t;
        }
    }

    #[test]
    fn grows_with_process_count() {
        let bc = Broadcast::default();
        let m = (1u64 << 22) as f64;
        let t_small = bc.base_time(&[2.0, 8.0, m]);
        let t_large = bc.base_time(&[128.0, 8.0, m]);
        assert!(t_large > t_small);
    }

    #[test]
    fn algorithm_crossover_exists() {
        // Binomial wins for small messages, scatter-allgather for large,
        // at a large process count.
        let bc = Broadcast::default();
        let p = 1024.0;
        let (nodes, ppn) = (64.0, 16.0);
        let small = 1024.0;
        let large = (1u64 << 26) as f64;
        assert!(
            bc.t_binomial(p, nodes, ppn, small) < bc.t_scatter_allgather(p, nodes, ppn, small),
            "binomial should win small messages"
        );
        assert!(
            bc.t_scatter_allgather(p, nodes, ppn, large) < bc.t_binomial(p, nodes, ppn, large),
            "scatter-allgather should win large messages"
        );
    }

    #[test]
    fn single_rank_is_overhead_only() {
        let bc = Broadcast::default();
        assert_eq!(bc.base_time(&[1.0, 1.0, 1e6]), bc.machine.overhead);
    }

    #[test]
    fn single_node_uses_shared_memory() {
        let bc = Broadcast::default();
        let m = (1u64 << 24) as f64;
        // One node with 32 ranks vs 32 nodes with 1 rank: shared memory
        // should be faster than crossing the network.
        let shm = bc.base_time(&[1.0, 32.0, m]);
        let net = bc.base_time(&[32.0, 1.0, m]);
        assert!(shm < net, "shm {shm} vs net {net}");
    }

    #[test]
    fn sampled_ranges_match_table() {
        let bc = Broadcast::default();
        let data = bc.sample_dataset(200, 2);
        for (x, _) in data.iter() {
            assert!((1.0..=128.0).contains(&x[0]));
            assert!((1.0..=64.0).contains(&x[1]));
            assert!((65536.0..=67_108_864.0).contains(&x[2]));
        }
    }
}
