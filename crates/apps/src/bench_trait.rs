//! The common benchmark interface and §6.0.3 sampling rules.

use crate::machine::Machine;
use cpr_core::Dataset;
use cpr_grid::{ParamSpace, ParamSpec};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A synthetic application benchmark: a parameter space plus a cost model.
pub trait Benchmark: Send + Sync {
    /// Short identifier matching the paper's figures (e.g. `"MM"`).
    fn name(&self) -> &'static str;

    /// Benchmark-parameter space (paper Table 2 / §6.0.2).
    fn space(&self) -> ParamSpace;

    /// Noise-free model execution time for a configuration (seconds).
    fn base_time(&self, x: &[f64]) -> f64;

    /// Multiplicative log-normal noise level σ of one measurement. Kernel
    /// benchmarks are averaged 50× (to CV < 0.01, §6.0.3), applications run
    /// once — encode that difference here.
    fn noise_sigma(&self) -> f64 {
        0.05
    }

    /// Test-set size the paper uses for this benchmark (§6.0.3).
    fn paper_test_set_size(&self) -> usize;

    /// Draw one configuration: log-uniform for input/architectural
    /// parameters, uniform for configuration parameters, uniform over
    /// categorical choices; integer parameters rounded (§6.0.3).
    /// Benchmark-specific constraints (e.g. `64 ≤ ppn·tpp ≤ 128`, `m ≥ n`)
    /// are applied by [`Benchmark::constrain`].
    fn sample_config(&self, rng: &mut StdRng) -> Vec<f64> {
        let space = self.space();
        let mut x: Vec<f64> = space
            .params()
            .iter()
            .map(|p| match p {
                ParamSpec::Numerical {
                    lo,
                    hi,
                    spacing,
                    integer,
                    ..
                } => {
                    let v = match spacing {
                        cpr_grid::Spacing::Logarithmic => lo * (hi / lo).powf(rng.gen::<f64>()),
                        cpr_grid::Spacing::Uniform => lo + (hi - lo) * rng.gen::<f64>(),
                    };
                    if *integer {
                        v.round().clamp(*lo, *hi)
                    } else {
                        v
                    }
                }
                ParamSpec::Categorical { cardinality, .. } => rng.gen_range(0..*cardinality) as f64,
            })
            .collect();
        self.constrain(&mut x, rng);
        x
    }

    /// Enforce benchmark-specific configuration constraints in place.
    fn constrain(&self, _x: &mut [f64], _rng: &mut StdRng) {}

    /// One noisy measurement of a configuration.
    fn measure(&self, x: &[f64], rng: &mut StdRng) -> f64 {
        let sigma = self.noise_sigma();
        let z: f64 = standard_normal(rng);
        self.base_time(x) * (sigma * z).exp()
    }

    /// Generate a dataset of `n` sampled-and-measured configurations.
    fn sample_dataset(&self, n: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut data = Dataset::new();
        for _ in 0..n {
            let x = self.sample_config(&mut rng);
            let y = self.measure(&x, &mut rng);
            data.push(x, y);
        }
        data
    }
}

/// Standard normal draw via Box-Muller (keeps us off rand_distr).
pub fn standard_normal(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Shared architectural parameters for the single-node application
/// benchmarks (Table 2): `1 ≤ tpp ≤ 64`, `1 ≤ ppn ≤ 64`, constrained to
/// `64 ≤ ppn·tpp ≤ 128`.
pub fn arch_params() -> Vec<ParamSpec> {
    vec![
        ParamSpec::log_int("tpp", 1.0, 64.0),
        ParamSpec::log_int("ppn", 1.0, 64.0),
    ]
}

/// Enforce `64 ≤ ppn·tpp ≤ 128` by resampling tpp given ppn (both stay
/// powers-of-two-ish integers within range).
pub fn constrain_ppn_tpp(tpp: &mut f64, ppn: &mut f64, rng: &mut StdRng) {
    // Snap ppn to its sampled integer; derive a tpp bracket from the
    // constraint and resample inside it.
    let p = ppn.round().clamp(1.0, 64.0);
    let lo = (64.0 / p).max(1.0);
    let hi = (128.0 / p).min(64.0);
    let (lo, hi) = if lo > hi { (hi, hi) } else { (lo, hi) };
    let t = lo * (hi / lo).powf(rng.gen::<f64>());
    *ppn = p;
    *tpp = t.round().clamp(1.0, 64.0);
    // Final nudge: guarantee the product bound despite rounding.
    while *tpp * p > 128.0 && *tpp > 1.0 {
        *tpp -= 1.0;
    }
    while *tpp * p < 64.0 && *tpp < 64.0 {
        *tpp += 1.0;
    }
}

/// Machine handle mixin so every benchmark embeds the same defaults.
pub fn default_machine() -> Machine {
    Machine::default()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normal_moments() {
        let mut rng = StdRng::seed_from_u64(0);
        let n = 20_000;
        let xs: Vec<f64> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn ppn_tpp_constraint_always_satisfied() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..500 {
            let mut tpp = 1.0 + rng.gen::<f64>() * 63.0;
            let mut ppn = 1.0 + rng.gen::<f64>() * 63.0;
            constrain_ppn_tpp(&mut tpp, &mut ppn, &mut rng);
            let prod = tpp * ppn;
            assert!(
                (64.0..=128.0).contains(&prod),
                "ppn·tpp = {prod} ({ppn}·{tpp})"
            );
            assert!((1.0..=64.0).contains(&tpp));
            assert!((1.0..=64.0).contains(&ppn));
            assert_eq!(tpp, tpp.round());
            assert_eq!(ppn, ppn.round());
        }
    }
}
