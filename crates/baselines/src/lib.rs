//! # cpr-baselines — the comparison models of the paper's evaluation
//!
//! From-scratch implementations of the nine supervised-learning baselines
//! evaluated against CPR (paper §3 and §6.0.4):
//!
//! | module | model | paper section |
//! |---|---|---|
//! | [`sgr`] | sparse grid regression (SG++-style modlinear basis) | §3.2 |
//! | [`mars`] | multivariate adaptive regression splines | §3.2 |
//! | [`mlp`] | multi-layer perceptron (Adam, relu/tanh) | §3.3 |
//! | [`gp`] | Gaussian-process regression (5 kernels) | §3.4 |
//! | [`svr`] | ε-insensitive support-vector regression | §3.4 |
//! | [`forest`] | random forest + extremely randomized trees | §3.5 |
//! | [`gb`] | gradient boosting | §3.5 |
//! | [`knn`] | k-nearest neighbors | §3.6 |
//!
//! All models implement the [`Regressor`] trait (fit / predict /
//! `size_bytes`), consume log-transformed features and targets as §6.0.4
//! prescribes, and expose the exact hyper-parameter grids the paper sweeps
//! via [`tune`].

pub mod common;
pub mod forest;
pub mod gb;
pub mod gp;
pub mod knn;
pub mod mars;
pub mod mlp;
pub mod sgr;
pub mod svr;
pub mod tree;
pub mod tune;

pub use common::{Regressor, Standardizer};
pub use forest::{Forest, ForestConfig, ForestKind};
pub use gb::{GbConfig, GradientBoosting};
pub use gp::{GaussianProcess, GpConfig, Kernel};
pub use knn::{Knn, KnnConfig};
pub use mars::{fit_univariate_spline, Mars, MarsConfig};
pub use mlp::{Activation, Mlp, MlpConfig};
pub use sgr::{SgrConfig, SparseGridRegression};
pub use svr::{Svr, SvrConfig, SvrKernel};
pub use tune::{
    forest_grid, gb_grid, gp_grid, knn_grid, mars_grid, mlp_grid, sgr_grid, sgr_grid_levels,
    sgr_grid_refinement, svm_grid, tune_best, SweepBudget, TunedModel,
};
