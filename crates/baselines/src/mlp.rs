//! Multi-layer perceptron regression (paper §3.3).
//!
//! Feed-forward fully connected network trained with Adam on mini-batch MSE.
//! The paper sweeps 1..8 hidden layers of width 2..2048 with relu/tanh
//! activations (§6.0.4); the harness explores a subset of that grid. The
//! paper finds NNs the most competitive alternative model in high dimensions
//! but ~50x larger than CPR at equal accuracy (Figure 7).

use crate::common::{Regressor, Standardizer};
use cpr_tensor::Matrix;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Activation function for hidden layers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Activation {
    Relu,
    Tanh,
}

impl Activation {
    #[inline]
    fn apply(self, v: f64) -> f64 {
        match self {
            Self::Relu => v.max(0.0),
            Self::Tanh => v.tanh(),
        }
    }

    #[inline]
    fn grad(self, pre: f64) -> f64 {
        match self {
            Self::Relu => {
                if pre > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Self::Tanh => {
                let t = pre.tanh();
                1.0 - t * t
            }
        }
    }
}

/// MLP configuration.
#[derive(Debug, Clone)]
pub struct MlpConfig {
    /// Hidden-layer widths (e.g. `[64, 64]`).
    pub hidden: Vec<usize>,
    pub activation: Activation,
    pub epochs: usize,
    pub batch_size: usize,
    pub learning_rate: f64,
    /// L2 weight decay.
    pub weight_decay: f64,
    pub seed: u64,
}

impl Default for MlpConfig {
    fn default() -> Self {
        Self {
            hidden: vec![64, 64],
            activation: Activation::Relu,
            epochs: 200,
            batch_size: 64,
            learning_rate: 1e-3,
            weight_decay: 1e-6,
            seed: 0,
        }
    }
}

/// One dense layer with Adam state.
#[derive(Debug, Clone)]
struct Layer {
    w: Matrix, // out x in
    b: Vec<f64>,
    // Adam moments.
    mw: Matrix,
    vw: Matrix,
    mb: Vec<f64>,
    vb: Vec<f64>,
}

impl Layer {
    fn new(inputs: usize, outputs: usize, rng: &mut StdRng) -> Self {
        // He-style initialization.
        let scale = (2.0 / inputs as f64).sqrt();
        let mut w = Matrix::zeros(outputs, inputs);
        for v in w.as_mut_slice() {
            *v = (rng.gen::<f64>() * 2.0 - 1.0) * scale;
        }
        Self {
            w,
            b: vec![0.0; outputs],
            mw: Matrix::zeros(outputs, inputs),
            vw: Matrix::zeros(outputs, inputs),
            mb: vec![0.0; outputs],
            vb: vec![0.0; outputs],
        }
    }

    fn forward(&self, x: &[f64]) -> Vec<f64> {
        let mut out = self.w.matvec(x);
        for (o, b) in out.iter_mut().zip(&self.b) {
            *o += b;
        }
        out
    }
}

/// A fitted MLP regressor.
#[derive(Debug, Clone)]
pub struct Mlp {
    config: MlpConfig,
    scaler: Standardizer,
    layers: Vec<Layer>,
    /// Target normalization (mean, std).
    y_mean: f64,
    y_std: f64,
}

impl Mlp {
    /// Unfitted model.
    pub fn new(config: MlpConfig) -> Self {
        Self {
            config,
            scaler: Standardizer::default(),
            layers: Vec::new(),
            y_mean: 0.0,
            y_std: 1.0,
        }
    }

    /// Forward pass keeping pre-activations for backprop.
    fn forward_cached(&self, x: &[f64]) -> (Vec<Vec<f64>>, Vec<Vec<f64>>) {
        let mut acts = vec![x.to_vec()];
        let mut pres = Vec::new();
        for (li, layer) in self.layers.iter().enumerate() {
            let pre = layer.forward(acts.last().unwrap());
            let is_last = li + 1 == self.layers.len();
            let act = if is_last {
                pre.clone()
            } else {
                pre.iter()
                    .map(|&v| self.config.activation.apply(v))
                    .collect()
            };
            pres.push(pre);
            acts.push(act);
        }
        (acts, pres)
    }
}

impl Regressor for Mlp {
    fn fit(&mut self, x: &[Vec<f64>], y: &[f64]) {
        assert_eq!(x.len(), y.len());
        assert!(!x.is_empty(), "MLP: empty training set");
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        self.scaler = Standardizer::fit(x);
        let xs = self.scaler.transform_all(x);
        self.y_mean = y.iter().sum::<f64>() / y.len() as f64;
        let var = y.iter().map(|v| (v - self.y_mean).powi(2)).sum::<f64>() / y.len() as f64;
        self.y_std = var.sqrt().max(1e-9);
        let yn: Vec<f64> = y.iter().map(|v| (v - self.y_mean) / self.y_std).collect();

        // Build layers: input -> hidden… -> 1.
        let mut sizes = vec![xs[0].len()];
        sizes.extend_from_slice(&self.config.hidden);
        sizes.push(1);
        self.layers = sizes
            .windows(2)
            .map(|w| Layer::new(w[0], w[1], &mut rng))
            .collect();

        let n = xs.len();
        let mut order: Vec<usize> = (0..n).collect();
        let (beta1, beta2, eps): (f64, f64, f64) = (0.9, 0.999, 1e-8);
        let mut step = 0usize;
        for _epoch in 0..self.config.epochs {
            order.shuffle(&mut rng);
            for chunk in order.chunks(self.config.batch_size.max(1)) {
                step += 1;
                // Accumulate batch gradients.
                let mut gw: Vec<Matrix> = self
                    .layers
                    .iter()
                    .map(|l| Matrix::zeros(l.w.rows(), l.w.cols()))
                    .collect();
                let mut gb: Vec<Vec<f64>> =
                    self.layers.iter().map(|l| vec![0.0; l.b.len()]).collect();
                for &i in chunk {
                    let (acts, pres) = self.forward_cached(&xs[i]);
                    let pred = acts.last().unwrap()[0];
                    // dL/dpred for 0.5*(pred-y)^2-style scaling.
                    let mut delta = vec![pred - yn[i]];
                    for li in (0..self.layers.len()).rev() {
                        let input = &acts[li];
                        for (o, &dl) in delta.iter().enumerate() {
                            gb[li][o] += dl;
                            let grow = gw[li].row_mut(o);
                            for (g, &inp) in grow.iter_mut().zip(input) {
                                *g += dl * inp;
                            }
                        }
                        if li > 0 {
                            // Propagate: delta_prev = Wᵀ delta ⊙ act'(pre_prev).
                            let wt_delta = self.layers[li].w.matvec_t(&delta);
                            delta = wt_delta
                                .iter()
                                .zip(&pres[li - 1])
                                .map(|(&d, &p)| d * self.config.activation.grad(p))
                                .collect();
                        }
                    }
                }
                // Adam update.
                let scale = 1.0 / chunk.len() as f64;
                let lr = self.config.learning_rate;
                let bc1 = 1.0 - beta1.powi(step as i32);
                let bc2 = 1.0 - beta2.powi(step as i32);
                for (li, layer) in self.layers.iter_mut().enumerate() {
                    let wslice = layer.w.as_mut_slice();
                    let gwslice = gw[li].as_slice();
                    let mw = layer.mw.as_mut_slice();
                    let vw = layer.vw.as_mut_slice();
                    for k in 0..wslice.len() {
                        let g = gwslice[k] * scale + self.config.weight_decay * wslice[k];
                        mw[k] = beta1 * mw[k] + (1.0 - beta1) * g;
                        vw[k] = beta2 * vw[k] + (1.0 - beta2) * g * g;
                        wslice[k] -= lr * (mw[k] / bc1) / ((vw[k] / bc2).sqrt() + eps);
                    }
                    for (k, &gbk) in gb[li].iter().enumerate().take(layer.b.len()) {
                        let g = gbk * scale;
                        layer.mb[k] = beta1 * layer.mb[k] + (1.0 - beta1) * g;
                        layer.vb[k] = beta2 * layer.vb[k] + (1.0 - beta2) * g * g;
                        layer.b[k] -= lr * (layer.mb[k] / bc1) / ((layer.vb[k] / bc2).sqrt() + eps);
                    }
                }
            }
        }
    }

    fn predict(&self, x: &[f64]) -> f64 {
        assert!(!self.layers.is_empty(), "MLP: predict before fit");
        let mut a = self.scaler.transform(x);
        for (li, layer) in self.layers.iter().enumerate() {
            let pre = layer.forward(&a);
            a = if li + 1 == self.layers.len() {
                pre
            } else {
                pre.iter()
                    .map(|&v| self.config.activation.apply(v))
                    .collect()
            };
        }
        a[0] * self.y_std + self.y_mean
    }

    fn size_bytes(&self) -> usize {
        // Weights + biases only (Adam state is training-time).
        self.layers
            .iter()
            .map(|l| (l.w.rows() * l.w.cols() + l.b.len()) * 8)
            .sum::<usize>()
            + self.scaler.size_bytes()
            + 16
    }

    fn name(&self) -> &'static str {
        "NN"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn linear_data() -> (Vec<Vec<f64>>, Vec<f64>) {
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..128 {
            let a = (i % 16) as f64 / 4.0;
            let b = (i / 16) as f64 / 2.0;
            x.push(vec![a, b]);
            y.push(2.0 * a - b + 0.5);
        }
        (x, y)
    }

    #[test]
    fn fits_linear_function() {
        let (x, y) = linear_data();
        let mut mlp = Mlp::new(MlpConfig {
            epochs: 300,
            ..Default::default()
        });
        mlp.fit(&x, &y);
        let mse: f64 = x
            .iter()
            .zip(&y)
            .map(|(xi, yi)| (mlp.predict(xi) - yi).powi(2))
            .sum::<f64>()
            / y.len() as f64;
        assert!(mse < 0.02, "mse {mse}");
    }

    #[test]
    fn tanh_also_works() {
        let (x, y) = linear_data();
        let mut mlp = Mlp::new(MlpConfig {
            activation: Activation::Tanh,
            hidden: vec![32],
            epochs: 300,
            ..Default::default()
        });
        mlp.fit(&x, &y);
        let mse: f64 = x
            .iter()
            .zip(&y)
            .map(|(xi, yi)| (mlp.predict(xi) - yi).powi(2))
            .sum::<f64>()
            / y.len() as f64;
        assert!(mse < 0.1, "mse {mse}");
    }

    #[test]
    fn deterministic_given_seed() {
        let (x, y) = linear_data();
        let run = |seed| {
            let mut mlp = Mlp::new(MlpConfig {
                epochs: 10,
                seed,
                ..Default::default()
            });
            mlp.fit(&x, &y);
            mlp.predict(&[1.0, 1.0])
        };
        assert_eq!(run(1), run(1));
        assert_ne!(run(1), run(2));
    }

    #[test]
    fn size_scales_with_width() {
        let (x, y) = linear_data();
        let mut narrow = Mlp::new(MlpConfig {
            hidden: vec![4],
            epochs: 1,
            ..Default::default()
        });
        let mut wide = Mlp::new(MlpConfig {
            hidden: vec![256],
            epochs: 1,
            ..Default::default()
        });
        narrow.fit(&x, &y);
        wide.fit(&x, &y);
        assert!(wide.size_bytes() > narrow.size_bytes() * 10);
    }

    #[test]
    fn activation_grads() {
        assert_eq!(Activation::Relu.grad(1.0), 1.0);
        assert_eq!(Activation::Relu.grad(-1.0), 0.0);
        assert!((Activation::Tanh.grad(0.0) - 1.0).abs() < 1e-12);
    }
}
