//! Shared regressor interface and feature utilities.
//!
//! Every baseline (and the CPR model, through an adapter) exposes the same
//! contract: fit on `(feature-vector, target)` pairs, predict scalars, and
//! report a serialized model size in bytes. Following §6.0.4, callers
//! log-transform execution times and numerical parameters *before* handing
//! data to these models.

/// A trainable scalar regressor.
pub trait Regressor: Send + Sync {
    /// Fit on a training set. `x` is row-major: `x[i]` is the feature vector
    /// of sample `i`, `y[i]` its target.
    fn fit(&mut self, x: &[Vec<f64>], y: &[f64]);

    /// Predict the target for one feature vector.
    fn predict(&self, x: &[f64]) -> f64;

    /// Estimated serialized model size in bytes (8 bytes per stored `f64`,
    /// 8 per stored index; mirrors the paper's joblib-file-size metric).
    fn size_bytes(&self) -> usize;

    /// Short identifier used by the experiment harness (e.g. `"KNN"`).
    fn name(&self) -> &'static str;

    /// Predict a batch (overridable for models with batch-friendly layouts).
    fn predict_batch(&self, xs: &[Vec<f64>]) -> Vec<f64> {
        xs.iter().map(|x| self.predict(x)).collect()
    }
}

/// Boxed regressors are regressors: tuned models come out of the
/// hyper-parameter grids as `Box<dyn Regressor>`, and generic bridges (the
/// `cpr_core` `PerfModel` adapter) should accept them without re-boxing.
impl Regressor for Box<dyn Regressor> {
    fn fit(&mut self, x: &[Vec<f64>], y: &[f64]) {
        (**self).fit(x, y)
    }

    fn predict(&self, x: &[f64]) -> f64 {
        (**self).predict(x)
    }

    fn size_bytes(&self) -> usize {
        (**self).size_bytes()
    }

    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn predict_batch(&self, xs: &[Vec<f64>]) -> Vec<f64> {
        (**self).predict_batch(xs)
    }
}

/// Per-feature affine standardization (zero mean, unit variance) fitted on
/// training data; degenerate (constant) features pass through unscaled.
#[derive(Debug, Clone, Default)]
pub struct Standardizer {
    mean: Vec<f64>,
    inv_std: Vec<f64>,
}

impl Standardizer {
    /// Fit on training features.
    pub fn fit(x: &[Vec<f64>]) -> Self {
        assert!(!x.is_empty(), "Standardizer: empty training set");
        let d = x[0].len();
        let n = x.len() as f64;
        let mut mean = vec![0.0; d];
        for row in x {
            for (m, v) in mean.iter_mut().zip(row) {
                *m += v;
            }
        }
        for m in &mut mean {
            *m /= n;
        }
        let mut var = vec![0.0; d];
        for row in x {
            for ((v, m), val) in var.iter_mut().zip(&mean).zip(row) {
                let c = val - m;
                *v += c * c;
            }
        }
        let inv_std = var
            .iter()
            .map(|&v| {
                let s = (v / n).sqrt();
                if s > 1e-12 {
                    1.0 / s
                } else {
                    1.0
                }
            })
            .collect();
        Self { mean, inv_std }
    }

    /// Number of features.
    pub fn dim(&self) -> usize {
        self.mean.len()
    }

    /// Transform one feature vector.
    pub fn transform(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.mean.len());
        x.iter()
            .zip(&self.mean)
            .zip(&self.inv_std)
            .map(|((v, m), s)| (v - m) * s)
            .collect()
    }

    /// Transform a whole set.
    pub fn transform_all(&self, x: &[Vec<f64>]) -> Vec<Vec<f64>> {
        x.iter().map(|r| self.transform(r)).collect()
    }

    /// Bytes needed to store the transform.
    pub fn size_bytes(&self) -> usize {
        (self.mean.len() + self.inv_std.len()) * 8
    }
}

/// Mean of a slice (0 for empty input).
pub fn mean(v: &[f64]) -> f64 {
    if v.is_empty() {
        0.0
    } else {
        v.iter().sum::<f64>() / v.len() as f64
    }
}

/// Variance (population) of a slice.
pub fn variance(v: &[f64]) -> f64 {
    if v.is_empty() {
        return 0.0;
    }
    let m = mean(v);
    v.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / v.len() as f64
}

/// Squared Euclidean distance between feature vectors.
#[inline]
pub fn dist_sq(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standardizer_zero_mean_unit_var() {
        let x = vec![
            vec![1.0, 10.0],
            vec![2.0, 20.0],
            vec![3.0, 30.0],
            vec![4.0, 40.0],
        ];
        let s = Standardizer::fit(&x);
        let t = s.transform_all(&x);
        for j in 0..2 {
            let col: Vec<f64> = t.iter().map(|r| r[j]).collect();
            assert!(mean(&col).abs() < 1e-12);
            assert!((variance(&col) - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn standardizer_constant_feature_passthrough() {
        let x = vec![vec![5.0], vec![5.0], vec![5.0]];
        let s = Standardizer::fit(&x);
        let t = s.transform(&[5.0]);
        assert_eq!(t, vec![0.0]);
        let t2 = s.transform(&[6.0]);
        assert_eq!(t2, vec![1.0]); // unscaled shift
    }

    #[test]
    fn stats_helpers() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert!((variance(&[1.0, 2.0, 3.0]) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(dist_sq(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[]), 0.0);
    }
}
