//! Sparse grid regression (paper §3.2; Pflüger 2010; Neumann 2019).
//!
//! SGR models a function on `[0,1]^d` as a linear combination of hierarchical
//! piecewise-linear basis functions placed on an anisotropic sparse grid:
//! level vectors `l ≥ 1` with `|l|₁ ≤ n + d − 1` contribute hat functions
//! `φ_{l,i}(x) = Π_j φ_{l_j, i_j}(x_j)` at odd indices `i_j ∈ {1,3,…,2^l−1}`,
//! giving `O(2ⁿ n^{d−1})` grid points instead of the regular grid's
//! `O(2^{nd})`. We use SG++'s *modified linear* ("modlinear") boundary basis
//! so no boundary points are needed.
//!
//! Weights solve the ridge system `(BᵀB + λNI) w = Bᵀy` by conjugate
//! gradient on the implicit operator (the paper configures up to 1000 CG
//! iterations, tolerance 1e-4). Spatially adaptive refinement adds the
//! hierarchical children of the points with the largest absolute surplus,
//! mirroring SG++'s surplus-refinement functor (paper: 1–16 refinement
//! rounds of 4–32 points).

use crate::common::Regressor;
use cpr_tensor::linalg::conjugate_gradient;
use std::collections::HashMap;

/// SGR configuration (paper §6.0.4 sweeps).
#[derive(Debug, Clone, Copy)]
pub struct SgrConfig {
    /// Initial regular sparse-grid level `n` (paper: 2..8).
    pub level: usize,
    /// Ridge regularization λ (paper: 1e-6..1e-3).
    pub lambda: f64,
    /// CG iteration cap (paper: 1000).
    pub cg_max_iter: usize,
    /// CG relative tolerance (paper: 1e-4).
    pub cg_tol: f64,
    /// Adaptive refinement rounds (paper: 0..16).
    pub refinements: usize,
    /// Points refined per round (paper: 4..32).
    pub refine_points: usize,
    /// Hard cap on grid size (guards the combinatorial growth in high `d`).
    pub max_points: usize,
}

impl Default for SgrConfig {
    fn default() -> Self {
        Self {
            level: 4,
            lambda: 1e-5,
            cg_max_iter: 1000,
            cg_tol: 1e-4,
            refinements: 0,
            refine_points: 8,
            max_points: 100_000,
        }
    }
}

/// One sparse-grid point: a (level, index) pair per dimension.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct GridPoint {
    level: Vec<u8>,
    index: Vec<u32>,
}

/// A fitted sparse-grid regression model.
#[derive(Debug, Clone)]
pub struct SparseGridRegression {
    config: SgrConfig,
    /// Per-feature min/max for normalization to `[0,1]`.
    lo: Vec<f64>,
    hi: Vec<f64>,
    points: Vec<GridPoint>,
    weights: Vec<f64>,
    /// Level-vector -> (index-vector -> point id) lookup.
    by_level: HashMap<Vec<u8>, HashMap<Vec<u32>, u32>>,
    y_mean: f64,
}

/// Modified-linear 1-D basis value of point `(l, i)` at normalized `x`.
#[inline]
fn basis_1d(l: u8, i: u32, x: f64) -> f64 {
    if l == 1 {
        return 1.0; // constant on [0,1]
    }
    let h = (1u64 << l) as f64;
    let last = (1u64 << l) - 1;
    if i == 1 {
        // Left boundary wedge: linear from 2 at x=0 to 0 at x=2^{1-l}.
        (2.0 - h * x).clamp(0.0, 2.0)
    } else if u64::from(i) == last {
        // Right boundary wedge, mirrored.
        (h * x - (last as f64 - 1.0)).clamp(0.0, 2.0)
    } else {
        (1.0 - (h * x - f64::from(i)).abs()).max(0.0)
    }
}

/// The unique candidate index at level `l` whose support can contain `x`.
#[inline]
fn nonzero_index(l: u8, x: f64) -> u32 {
    if l == 1 {
        return 1;
    }
    let scale = (1u64 << l) as f64;
    let p = (x * scale).floor() as i64;
    let i = (2 * (p / 2) + 1).clamp(1, (1i64 << l) - 1);
    i as u32
}

impl SparseGridRegression {
    /// Unfitted model.
    pub fn new(config: SgrConfig) -> Self {
        Self {
            config,
            lo: Vec::new(),
            hi: Vec::new(),
            points: Vec::new(),
            weights: Vec::new(),
            by_level: HashMap::new(),
            y_mean: 0.0,
        }
    }

    /// Number of grid points (basis functions).
    pub fn grid_size(&self) -> usize {
        self.points.len()
    }

    fn normalize(&self, x: &[f64]) -> Vec<f64> {
        x.iter()
            .zip(self.lo.iter().zip(&self.hi))
            .map(|(&v, (&lo, &hi))| {
                if hi > lo {
                    ((v - lo) / (hi - lo)).clamp(0.0, 1.0)
                } else {
                    0.5
                }
            })
            .collect()
    }

    /// Enumerate the initial regular sparse grid `|l|₁ ≤ n + d − 1`.
    fn build_regular_grid(&mut self, d: usize) {
        self.points.clear();
        self.by_level.clear();
        let budget = self.config.level + d - 1;
        let mut level = vec![1u8; d];
        self.enumerate_levels(&mut level, 0, budget);
    }

    fn enumerate_levels(&mut self, level: &mut Vec<u8>, dim: usize, budget: usize) {
        let used: usize = level[..dim].iter().map(|&l| l as usize).sum();
        let remaining_dims = level.len() - dim;
        if dim == level.len() {
            self.add_level_indices(&level.clone());
            return;
        }
        // Each remaining dim needs at least level 1.
        let max_here = budget - used - (remaining_dims - 1);
        for l in 1..=max_here.min(20) {
            level[dim] = l as u8;
            self.enumerate_levels(level, dim + 1, budget);
        }
    }

    /// Add every odd-index combination for a level vector.
    fn add_level_indices(&mut self, level: &[u8]) {
        if self.points.len() >= self.config.max_points {
            return;
        }
        let d = level.len();
        let mut index = vec![1u32; d];
        loop {
            self.insert_point(GridPoint {
                level: level.to_vec(),
                index: index.clone(),
            });
            if self.points.len() >= self.config.max_points {
                return;
            }
            // Advance odd-index counter.
            let mut dim = 0;
            loop {
                if dim == d {
                    return;
                }
                let cap = (1u32 << level[dim]) - 1;
                if index[dim] + 2 <= cap {
                    index[dim] += 2;
                    break;
                }
                index[dim] = 1;
                dim += 1;
            }
        }
    }

    fn insert_point(&mut self, p: GridPoint) -> bool {
        let slot = self.by_level.entry(p.level.clone()).or_default();
        if slot.contains_key(&p.index) {
            return false;
        }
        slot.insert(p.index.clone(), self.points.len() as u32);
        self.points.push(p);
        true
    }

    /// Sparse design row of one (normalized) sample: `(point id, φ value)`.
    fn design_row(&self, xn: &[f64]) -> Vec<(u32, f64)> {
        let mut row = Vec::with_capacity(self.by_level.len());
        for (level, slots) in &self.by_level {
            let mut value = 1.0;
            let mut index = Vec::with_capacity(level.len());
            for (j, &l) in level.iter().enumerate() {
                let i = nonzero_index(l, xn[j]);
                value *= basis_1d(l, i, xn[j]);
                if value == 0.0 {
                    break;
                }
                index.push(i);
            }
            if value != 0.0 && index.len() == level.len() {
                if let Some(&id) = slots.get(&index) {
                    row.push((id, value));
                }
            }
        }
        row
    }

    /// Solve the ridge system on precomputed sparse design rows.
    fn solve(&mut self, rows: &[Vec<(u32, f64)>], y: &[f64]) {
        let n_basis = self.points.len();
        let n = y.len() as f64;
        let lambda_n = self.config.lambda * n;
        // Bᵀ y
        let mut rhs = vec![0.0; n_basis];
        for (row, &yk) in rows.iter().zip(y) {
            for &(id, v) in row {
                rhs[id as usize] += v * yk;
            }
        }
        let apply = |w: &[f64]| -> Vec<f64> {
            // (BᵀB + λN I) w
            let mut out: Vec<f64> = w.iter().map(|v| v * lambda_n).collect();
            for row in rows {
                let mut bw = 0.0;
                for &(id, v) in row {
                    bw += v * w[id as usize];
                }
                if bw != 0.0 {
                    for &(id, v) in row {
                        out[id as usize] += v * bw;
                    }
                }
            }
            out
        };
        let res = conjugate_gradient(apply, &rhs, self.config.cg_tol, self.config.cg_max_iter);
        self.weights = res.x;
    }

    /// Surplus-based refinement: add hierarchical children of the
    /// `refine_points` largest-|weight| points.
    fn refine(&mut self) {
        let mut ranked: Vec<(f64, usize)> = self
            .weights
            .iter()
            .enumerate()
            .map(|(i, &w)| (w.abs(), i))
            .collect();
        ranked.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap());
        let to_refine: Vec<usize> = ranked
            .iter()
            .take(self.config.refine_points)
            .map(|&(_, i)| i)
            .collect();
        for pid in to_refine {
            let parent = self.points[pid].clone();
            for j in 0..parent.level.len() {
                if parent.level[j] as usize >= 20 {
                    continue;
                }
                let child_level = {
                    let mut l = parent.level.clone();
                    l[j] += 1;
                    l
                };
                for child_index_j in [2 * parent.index[j] - 1, 2 * parent.index[j] + 1] {
                    if self.points.len() >= self.config.max_points {
                        return;
                    }
                    let mut idx = parent.index.clone();
                    idx[j] = child_index_j;
                    self.insert_point(GridPoint {
                        level: child_level.clone(),
                        index: idx,
                    });
                }
            }
        }
    }
}

impl Regressor for SparseGridRegression {
    fn fit(&mut self, x: &[Vec<f64>], y: &[f64]) {
        assert_eq!(x.len(), y.len());
        assert!(!x.is_empty(), "SGR: empty training set");
        let d = x[0].len();
        // Min-max feature bounds.
        self.lo = vec![f64::INFINITY; d];
        self.hi = vec![f64::NEG_INFINITY; d];
        for row in x {
            for (j, &v) in row.iter().enumerate().take(d) {
                self.lo[j] = self.lo[j].min(v);
                self.hi[j] = self.hi[j].max(v);
            }
        }
        self.y_mean = y.iter().sum::<f64>() / y.len() as f64;
        let yc: Vec<f64> = y.iter().map(|v| v - self.y_mean).collect();
        let xn: Vec<Vec<f64>> = x.iter().map(|r| self.normalize(r)).collect();

        self.build_regular_grid(d);
        for round in 0..=self.config.refinements {
            self.weights = vec![0.0; self.points.len()];
            let rows: Vec<Vec<(u32, f64)>> = xn.iter().map(|r| self.design_row(r)).collect();
            self.solve(&rows, &yc);
            if round < self.config.refinements {
                let before = self.points.len();
                self.refine();
                if self.points.len() == before {
                    break; // saturated
                }
            }
        }
    }

    fn predict(&self, x: &[f64]) -> f64 {
        assert!(!self.points.is_empty(), "SGR: predict before fit");
        let xn = self.normalize(x);
        let mut acc = self.y_mean;
        for (id, v) in self.design_row(&xn) {
            acc += v * self.weights[id as usize];
        }
        acc
    }

    fn size_bytes(&self) -> usize {
        // Each point stores d (level, index) pairs plus a weight.
        let d = self.points.first().map_or(0, |p| p.level.len());
        self.points.len() * (d * 5 + 8) + self.lo.len() * 16
    }

    fn name(&self) -> &'static str {
        "SGR"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smooth_2d(n: usize) -> (Vec<Vec<f64>>, Vec<f64>) {
        let mut x = Vec::new();
        let mut y = Vec::new();
        let side = (n as f64).sqrt() as usize;
        for i in 0..side {
            for j in 0..side {
                let a = i as f64 / side as f64 * 4.0;
                let b = j as f64 / side as f64 * 4.0;
                x.push(vec![a, b]);
                y.push((a - 2.0).powi(2) + 0.5 * b + a * b * 0.1);
            }
        }
        (x, y)
    }

    #[test]
    fn basis_1d_properties() {
        // Level 1: constant.
        assert_eq!(basis_1d(1, 1, 0.3), 1.0);
        // Interior hat peaks at its node.
        assert!((basis_1d(3, 3, 3.0 / 8.0) - 1.0).abs() < 1e-12);
        assert_eq!(
            basis_1d(3, 3, 0.5 + 1e-9).max(0.0),
            basis_1d(3, 3, 0.5 + 1e-9)
        );
        // Boundary wedge reaches 2 at the boundary.
        assert!((basis_1d(2, 1, 0.0) - 2.0).abs() < 1e-12);
        assert!((basis_1d(2, 3, 1.0) - 2.0).abs() < 1e-12);
        // Supports vanish away from nodes.
        assert_eq!(basis_1d(3, 3, 0.9), 0.0);
    }

    #[test]
    fn nonzero_index_is_consistent_with_support() {
        for l in 2..6u8 {
            for k in 0..50 {
                let x = k as f64 / 49.0;
                let i = nonzero_index(l, x);
                assert!(i % 2 == 1, "even index {i}");
                // All other candidate odd indices must be zero at x.
                let cap = (1u32 << l) - 1;
                let mut alt = 1u32;
                while alt <= cap {
                    if alt != i {
                        let v = basis_1d(l, alt, x);
                        // Boundary wedges overlap the first/last hat cell, so
                        // allow nonzero only for those.
                        if alt != 1 && alt != cap {
                            assert_eq!(v, 0.0, "l={l} alt={alt} x={x}");
                        }
                    }
                    alt += 2;
                }
            }
        }
    }

    #[test]
    fn grid_size_grows_with_level() {
        let mut sizes = Vec::new();
        for level in 2..5 {
            let mut sgr = SparseGridRegression::new(SgrConfig {
                level,
                ..Default::default()
            });
            sgr.build_regular_grid(2);
            sizes.push(sgr.grid_size());
        }
        assert!(sizes[0] < sizes[1] && sizes[1] < sizes[2], "{sizes:?}");
    }

    #[test]
    fn fits_smooth_2d_function() {
        let (x, y) = smooth_2d(900);
        let mut sgr = SparseGridRegression::new(SgrConfig {
            level: 5,
            ..Default::default()
        });
        sgr.fit(&x, &y);
        let mse: f64 = x
            .iter()
            .zip(&y)
            .map(|(xi, yi)| (sgr.predict(xi) - yi).powi(2))
            .sum::<f64>()
            / y.len() as f64;
        let var = crate::common::variance(&y);
        assert!(mse < 0.05 * var, "mse {mse} vs var {var}");
    }

    #[test]
    fn refinement_grows_grid_and_helps() {
        let (x, y) = smooth_2d(900);
        let mut base = SparseGridRegression::new(SgrConfig {
            level: 3,
            ..Default::default()
        });
        base.fit(&x, &y);
        let mut refined = SparseGridRegression::new(SgrConfig {
            level: 3,
            refinements: 4,
            refine_points: 8,
            ..Default::default()
        });
        refined.fit(&x, &y);
        assert!(refined.grid_size() > base.grid_size());
        let mse = |m: &SparseGridRegression| {
            x.iter()
                .zip(&y)
                .map(|(xi, yi)| (m.predict(xi) - yi).powi(2))
                .sum::<f64>()
                / y.len() as f64
        };
        assert!(
            mse(&refined) <= mse(&base) * 1.05,
            "{} vs {}",
            mse(&refined),
            mse(&base)
        );
    }

    #[test]
    fn respects_max_points_cap() {
        let mut sgr = SparseGridRegression::new(SgrConfig {
            level: 8,
            max_points: 200,
            ..Default::default()
        });
        sgr.build_regular_grid(5);
        assert!(sgr.grid_size() <= 200);
    }

    #[test]
    fn constant_function_fits_with_mean_offset() {
        let x: Vec<Vec<f64>> = (0..50).map(|i| vec![i as f64 / 50.0]).collect();
        let y = vec![3.5; 50];
        let mut sgr = SparseGridRegression::new(SgrConfig {
            level: 3,
            ..Default::default()
        });
        sgr.fit(&x, &y);
        assert!((sgr.predict(&[0.42]) - 3.5).abs() < 1e-6);
    }

    #[test]
    fn degenerate_feature_range_is_safe() {
        let x: Vec<Vec<f64>> = (0..20).map(|i| vec![1.0, i as f64]).collect();
        let y: Vec<f64> = (0..20).map(|i| i as f64).collect();
        let mut sgr = SparseGridRegression::new(SgrConfig {
            level: 3,
            ..Default::default()
        });
        sgr.fit(&x, &y);
        assert!(sgr.predict(&[1.0, 10.0]).is_finite());
    }
}
