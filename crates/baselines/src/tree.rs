//! CART regression trees — the shared substrate for random forests,
//! extremely randomized trees, and gradient boosting (paper §3.5).
//!
//! Trees recursively split the modeling domain into hyper-rectangles, each
//! predicting the mean target of its training samples. Split selection is
//! pluggable: exhaustive variance-reduction search (RF/GB) or fully random
//! thresholds on random features (extremely randomized trees).

use rand::rngs::StdRng;
use rand::Rng;

/// How a node picks its split.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SplitStrategy {
    /// Evaluate every candidate threshold on a random subset of
    /// `max_features` features; keep the best variance reduction (CART).
    BestOfFeatures {
        /// Features considered per split (`None` = all).
        max_features: Option<usize>,
    },
    /// Extremely randomized: one uniformly random threshold per candidate
    /// feature; keep the best among those single draws.
    RandomThreshold {
        /// Features considered per split (`None` = all).
        max_features: Option<usize>,
    },
}

/// Tree growth limits.
#[derive(Debug, Clone, Copy)]
pub struct TreeConfig {
    /// Maximum depth (paper sweeps 2..16).
    pub max_depth: usize,
    /// Minimum samples required to split a node.
    pub min_samples_split: usize,
    /// Split selection strategy.
    pub strategy: SplitStrategy,
}

impl Default for TreeConfig {
    fn default() -> Self {
        Self {
            max_depth: 8,
            min_samples_split: 2,
            strategy: SplitStrategy::BestOfFeatures { max_features: None },
        }
    }
}

/// Flat node storage: internal nodes carry `(feature, threshold, left,
/// right)`; leaves carry the prediction.
#[derive(Debug, Clone)]
enum Node {
    Leaf {
        value: f64,
    },
    Split {
        feature: u32,
        threshold: f64,
        left: u32,
        right: u32,
    },
}

/// A fitted regression tree.
#[derive(Debug, Clone)]
pub struct RegressionTree {
    nodes: Vec<Node>,
}

impl RegressionTree {
    /// Fit a tree on the samples selected by `sample_ids`.
    pub fn fit(
        x: &[Vec<f64>],
        y: &[f64],
        sample_ids: &[usize],
        config: &TreeConfig,
        rng: &mut StdRng,
    ) -> Self {
        assert_eq!(x.len(), y.len());
        assert!(!sample_ids.is_empty(), "RegressionTree: empty sample set");
        let mut tree = Self { nodes: Vec::new() };
        let mut ids = sample_ids.to_vec();
        tree.build(x, y, &mut ids, 0, config, rng);
        tree
    }

    fn build(
        &mut self,
        x: &[Vec<f64>],
        y: &[f64],
        ids: &mut [usize],
        depth: usize,
        config: &TreeConfig,
        rng: &mut StdRng,
    ) -> u32 {
        let node_mean = ids.iter().map(|&i| y[i]).sum::<f64>() / ids.len() as f64;
        let stop = depth >= config.max_depth
            || ids.len() < config.min_samples_split
            || ids.iter().all(|&i| (y[i] - node_mean).abs() < 1e-15);
        if stop {
            self.nodes.push(Node::Leaf { value: node_mean });
            return (self.nodes.len() - 1) as u32;
        }
        let d = x[0].len();
        let split = match config.strategy {
            SplitStrategy::BestOfFeatures { max_features } => {
                best_split(x, y, ids, feature_subset(d, max_features, rng))
            }
            SplitStrategy::RandomThreshold { max_features } => {
                random_split(x, y, ids, feature_subset(d, max_features, rng), rng)
            }
        };
        let Some((feature, threshold)) = split else {
            self.nodes.push(Node::Leaf { value: node_mean });
            return (self.nodes.len() - 1) as u32;
        };
        // Partition ids in place.
        let mut lo = 0usize;
        let mut hi = ids.len();
        while lo < hi {
            if x[ids[lo]][feature] <= threshold {
                lo += 1;
            } else {
                hi -= 1;
                ids.swap(lo, hi);
            }
        }
        if lo == 0 || lo == ids.len() {
            self.nodes.push(Node::Leaf { value: node_mean });
            return (self.nodes.len() - 1) as u32;
        }
        // Reserve this node's slot, then build children.
        let slot = self.nodes.len();
        self.nodes.push(Node::Leaf { value: node_mean }); // placeholder
        let (left_ids, right_ids) = ids.split_at_mut(lo);
        let left = self.build(x, y, left_ids, depth + 1, config, rng);
        let right = self.build(x, y, right_ids, depth + 1, config, rng);
        self.nodes[slot] = Node::Split {
            feature: feature as u32,
            threshold,
            left,
            right,
        };
        slot as u32
    }

    /// Predict one feature vector.
    pub fn predict(&self, x: &[f64]) -> f64 {
        // Root is always the first pushed node of the outermost build call…
        // except children are pushed after their parent slot, so the root is
        // node 0 only when the tree was built by `fit` (it is).
        let mut node = 0usize;
        loop {
            match &self.nodes[node] {
                Node::Leaf { value } => return *value,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    node = if x[*feature as usize] <= *threshold {
                        *left as usize
                    } else {
                        *right as usize
                    };
                }
            }
        }
    }

    /// Node count (leaves + splits).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Approximate serialized size: each node stores ~4 words.
    pub fn size_bytes(&self) -> usize {
        self.nodes.len() * 4 * 8
    }

    /// Tree depth (longest root-to-leaf path).
    pub fn depth(&self) -> usize {
        fn rec(nodes: &[Node], i: usize) -> usize {
            match &nodes[i] {
                Node::Leaf { .. } => 0,
                Node::Split { left, right, .. } => {
                    1 + rec(nodes, *left as usize).max(rec(nodes, *right as usize))
                }
            }
        }
        rec(&self.nodes, 0)
    }
}

fn feature_subset(d: usize, max_features: Option<usize>, rng: &mut StdRng) -> Vec<usize> {
    match max_features {
        None => (0..d).collect(),
        Some(k) if k >= d => (0..d).collect(),
        Some(k) => {
            // Partial Fisher-Yates over 0..d.
            let mut pool: Vec<usize> = (0..d).collect();
            for i in 0..k {
                let j = rng.gen_range(i..d);
                pool.swap(i, j);
            }
            pool.truncate(k);
            pool
        }
    }
}

/// Exhaustive best split by variance reduction over candidate features.
fn best_split(
    x: &[Vec<f64>],
    y: &[f64],
    ids: &[usize],
    features: Vec<usize>,
) -> Option<(usize, f64)> {
    let n = ids.len() as f64;
    let total_sum: f64 = ids.iter().map(|&i| y[i]).sum();
    let mut best: Option<(usize, f64, f64)> = None; // (feature, threshold, score)
    let mut vals: Vec<(f64, f64)> = Vec::with_capacity(ids.len());
    for f in features {
        vals.clear();
        vals.extend(ids.iter().map(|&i| (x[i][f], y[i])));
        vals.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("NaN feature"));
        let mut left_sum = 0.0;
        let mut left_n = 0.0;
        for w in 0..vals.len() - 1 {
            left_sum += vals[w].1;
            left_n += 1.0;
            if vals[w].0 == vals[w + 1].0 {
                continue; // cannot split between equal values
            }
            let right_sum = total_sum - left_sum;
            let right_n = n - left_n;
            // Maximizing variance reduction = maximizing Σ n_c * mean_c².
            let score = left_sum * left_sum / left_n + right_sum * right_sum / right_n;
            if best.is_none_or(|(_, _, s)| score > s) {
                let threshold = 0.5 * (vals[w].0 + vals[w + 1].0);
                best = Some((f, threshold, score));
            }
        }
    }
    best.map(|(f, t, _)| (f, t))
}

/// Extremely-randomized split: uniform random threshold per feature, best of
/// those single candidates by the same score.
fn random_split(
    x: &[Vec<f64>],
    y: &[f64],
    ids: &[usize],
    features: Vec<usize>,
    rng: &mut StdRng,
) -> Option<(usize, f64)> {
    let n = ids.len() as f64;
    let total_sum: f64 = ids.iter().map(|&i| y[i]).sum();
    let mut best: Option<(usize, f64, f64)> = None;
    for f in features {
        let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
        for &i in ids {
            lo = lo.min(x[i][f]);
            hi = hi.max(x[i][f]);
        }
        if hi <= lo {
            continue;
        }
        let threshold = rng.gen_range(lo..hi);
        let mut left_sum = 0.0;
        let mut left_n = 0.0;
        for &i in ids {
            if x[i][f] <= threshold {
                left_sum += y[i];
                left_n += 1.0;
            }
        }
        if left_n == 0.0 || left_n == n {
            continue;
        }
        let right_sum = total_sum - left_sum;
        let right_n = n - left_n;
        let score = left_sum * left_sum / left_n + right_sum * right_sum / right_n;
        if best.is_none_or(|(_, _, s)| score > s) {
            best = Some((f, threshold, score));
        }
    }
    best.map(|(f, t, _)| (f, t))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn xor_like() -> (Vec<Vec<f64>>, Vec<f64>) {
        // Piecewise-constant target a linear model can't fit. Features take
        // exactly two values so the only candidate threshold is the clean
        // mid-gap split (greedy CART would otherwise chase jittered points).
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..40 {
            let a = (i % 2) as f64;
            let b = ((i / 2) % 2) as f64;
            x.push(vec![a, b]);
            y.push(if (a > 0.5) != (b > 0.5) { 1.0 } else { 0.0 });
        }
        (x, y)
    }

    #[test]
    fn fits_piecewise_constant_exactly() {
        let (x, y) = xor_like();
        let ids: Vec<usize> = (0..x.len()).collect();
        let mut rng = StdRng::seed_from_u64(1);
        let tree = RegressionTree::fit(&x, &y, &ids, &TreeConfig::default(), &mut rng);
        for (xi, yi) in x.iter().zip(&y) {
            assert!((tree.predict(xi) - yi).abs() < 1e-12);
        }
    }

    #[test]
    fn depth_zero_is_mean() {
        let (x, y) = xor_like();
        let ids: Vec<usize> = (0..x.len()).collect();
        let cfg = TreeConfig {
            max_depth: 0,
            ..Default::default()
        };
        let mut rng = StdRng::seed_from_u64(2);
        let tree = RegressionTree::fit(&x, &y, &ids, &cfg, &mut rng);
        let m = y.iter().sum::<f64>() / y.len() as f64;
        assert!((tree.predict(&x[0]) - m).abs() < 1e-12);
        assert_eq!(tree.node_count(), 1);
        assert_eq!(tree.depth(), 0);
    }

    #[test]
    fn respects_max_depth() {
        let (x, y) = xor_like();
        let ids: Vec<usize> = (0..x.len()).collect();
        let cfg = TreeConfig {
            max_depth: 3,
            ..Default::default()
        };
        let mut rng = StdRng::seed_from_u64(3);
        let tree = RegressionTree::fit(&x, &y, &ids, &cfg, &mut rng);
        assert!(tree.depth() <= 3);
    }

    #[test]
    fn random_threshold_strategy_fits_reasonably() {
        let (x, y) = xor_like();
        let ids: Vec<usize> = (0..x.len()).collect();
        let cfg = TreeConfig {
            max_depth: 12,
            min_samples_split: 2,
            strategy: SplitStrategy::RandomThreshold { max_features: None },
        };
        let mut rng = StdRng::seed_from_u64(4);
        let tree = RegressionTree::fit(&x, &y, &ids, &cfg, &mut rng);
        let mse: f64 = x
            .iter()
            .zip(&y)
            .map(|(xi, yi)| (tree.predict(xi) - yi).powi(2))
            .sum::<f64>()
            / y.len() as f64;
        assert!(mse < 0.05, "extra-trees single tree mse {mse}");
    }

    #[test]
    fn constant_target_single_leaf() {
        let x = vec![vec![0.0], vec![1.0], vec![2.0]];
        let y = vec![5.0, 5.0, 5.0];
        let ids = vec![0, 1, 2];
        let mut rng = StdRng::seed_from_u64(5);
        let tree = RegressionTree::fit(&x, &y, &ids, &TreeConfig::default(), &mut rng);
        assert_eq!(tree.node_count(), 1);
        assert_eq!(tree.predict(&[1.5]), 5.0);
    }

    #[test]
    fn size_scales_with_nodes() {
        let (x, y) = xor_like();
        let ids: Vec<usize> = (0..x.len()).collect();
        let mut rng = StdRng::seed_from_u64(6);
        let tree = RegressionTree::fit(&x, &y, &ids, &TreeConfig::default(), &mut rng);
        assert_eq!(tree.size_bytes(), tree.node_count() * 32);
    }

    #[test]
    fn feature_subsetting_limits_split_choices() {
        // With max_features = 1 and a seed, split features come from the
        // sampled subset; just check the tree still fits finite values.
        let (x, y) = xor_like();
        let ids: Vec<usize> = (0..x.len()).collect();
        let cfg = TreeConfig {
            max_depth: 6,
            min_samples_split: 2,
            strategy: SplitStrategy::BestOfFeatures {
                max_features: Some(1),
            },
        };
        let mut rng = StdRng::seed_from_u64(7);
        let tree = RegressionTree::fit(&x, &y, &ids, &cfg, &mut rng);
        assert!(tree.predict(&x[0]).is_finite());
    }
}
