//! Hyper-parameter grids of §6.0.4 and exhaustive tuning.
//!
//! The paper evaluates "all relevant model configurations using the same
//! training set" (no cross-validation) and reports, per training-set size or
//! model-size bucket, the best configuration. [`tune_best`] mirrors that:
//! fit every candidate, score on a held-out set with a caller-supplied
//! metric, return the winner.

use crate::forest::{Forest, ForestConfig, ForestKind};
use crate::gb::{GbConfig, GradientBoosting};
use crate::gp::{GaussianProcess, GpConfig, Kernel};
use crate::knn::{Knn, KnnConfig};
use crate::mars::{Mars, MarsConfig};
use crate::mlp::{Activation, Mlp, MlpConfig};
use crate::sgr::{SgrConfig, SparseGridRegression};
use crate::svr::{Svr, SvrConfig, SvrKernel};
use crate::Regressor;
use rayon::prelude::*;

/// Candidate factory: produces fresh unfitted models spanning a §6.0.4 grid.
pub type Factory = Box<dyn Fn() -> Box<dyn Regressor> + Send + Sync>;

/// Which hyper-parameter budget to sweep: `Full` follows §6.0.4; `Quick`
/// subsamples each grid for fast harness runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SweepBudget {
    Full,
    Quick,
}

/// KNN: 1..6 neighbors.
pub fn knn_grid(budget: SweepBudget) -> Vec<Factory> {
    let ks: Vec<usize> = match budget {
        SweepBudget::Full => (1..=6).collect(),
        SweepBudget::Quick => vec![1, 3, 6],
    };
    ks.into_iter()
        .map(|k| {
            let f: Factory = Box::new(move || Box::new(Knn::new(KnnConfig { k, weighted: true })));
            f
        })
        .collect()
}

/// Forests (RF or ET): tree depth 2..16, tree count 1..64.
pub fn forest_grid(kind: ForestKind, budget: SweepBudget) -> Vec<Factory> {
    let (depths, counts): (Vec<usize>, Vec<usize>) = match budget {
        SweepBudget::Full => (vec![2, 4, 8, 12, 16], vec![1, 4, 16, 64]),
        SweepBudget::Quick => (vec![4, 10, 16], vec![8, 64]),
    };
    let mut out = Vec::new();
    for &max_depth in &depths {
        for &n_trees in &counts {
            let f: Factory = Box::new(move || {
                Box::new(Forest::new(ForestConfig {
                    kind,
                    n_trees,
                    max_depth,
                    min_samples_split: 2,
                    max_features: None,
                    seed: 0,
                }))
            });
            out.push(f);
        }
    }
    out
}

/// Gradient boosting: same depth/count sweep as forests.
pub fn gb_grid(budget: SweepBudget) -> Vec<Factory> {
    let (depths, counts): (Vec<usize>, Vec<usize>) = match budget {
        SweepBudget::Full => (vec![2, 4, 8, 12, 16], vec![1, 4, 16, 64]),
        SweepBudget::Quick => (vec![3, 6], vec![16, 64]),
    };
    let mut out = Vec::new();
    for &max_depth in &depths {
        for &n_trees in &counts {
            let f: Factory = Box::new(move || {
                Box::new(GradientBoosting::new(GbConfig {
                    n_trees,
                    max_depth,
                    learning_rate: 0.1,
                    min_samples_split: 2,
                    seed: 0,
                }))
            });
            out.push(f);
        }
    }
    out
}

/// GP: the paper's five covariance kernels.
pub fn gp_grid(budget: SweepBudget) -> Vec<Factory> {
    let kernels: Vec<Kernel> = match budget {
        SweepBudget::Full => vec![
            Kernel::RationalQuadratic {
                length_scale: 1.0,
                alpha: 1.0,
            },
            Kernel::Rbf { length_scale: 1.0 },
            Kernel::DotProduct { sigma0: 1.0 },
            Kernel::Matern32 { length_scale: 1.0 },
            Kernel::ConstantRbf {
                constant: 2.0,
                length_scale: 1.0,
            },
        ],
        SweepBudget::Quick => vec![
            Kernel::Rbf { length_scale: 1.0 },
            Kernel::Matern32 { length_scale: 1.0 },
        ],
    };
    kernels
        .into_iter()
        .map(|kernel| {
            let f: Factory = Box::new(move || {
                Box::new(GaussianProcess::new(GpConfig {
                    kernel,
                    noise: 1e-4,
                    max_train: 1024,
                }))
            });
            f
        })
        .collect()
}

/// SVM: poly (degree 1..3) and rbf kernels.
pub fn svm_grid(budget: SweepBudget) -> Vec<Factory> {
    let kernels: Vec<SvrKernel> = match budget {
        SweepBudget::Full => vec![
            SvrKernel::Rbf { gamma: 0.5 },
            SvrKernel::Poly {
                gamma: 1.0,
                coef0: 1.0,
                degree: 1,
            },
            SvrKernel::Poly {
                gamma: 1.0,
                coef0: 1.0,
                degree: 2,
            },
            SvrKernel::Poly {
                gamma: 1.0,
                coef0: 1.0,
                degree: 3,
            },
        ],
        SweepBudget::Quick => vec![
            SvrKernel::Rbf { gamma: 0.5 },
            SvrKernel::Poly {
                gamma: 1.0,
                coef0: 1.0,
                degree: 2,
            },
        ],
    };
    kernels
        .into_iter()
        .map(|kernel| {
            let f: Factory = Box::new(move || {
                Box::new(Svr::new(SvrConfig {
                    kernel,
                    ..Default::default()
                }))
            });
            f
        })
        .collect()
}

/// MARS: max spline degree 1..6.
pub fn mars_grid(budget: SweepBudget) -> Vec<Factory> {
    let degrees: Vec<usize> = match budget {
        SweepBudget::Full => (1..=6).collect(),
        SweepBudget::Quick => vec![1, 2, 3],
    };
    degrees
        .into_iter()
        .map(|max_degree| {
            let f: Factory = Box::new(move || {
                Box::new(Mars::new(MarsConfig {
                    max_degree,
                    max_terms: 25,
                    ..Default::default()
                }))
            });
            f
        })
        .collect()
}

/// NN: hidden layers 1..8 of width 2..2048 with relu/tanh (subsampled — the
/// full §6.0.4 grid is ~32k configurations).
pub fn mlp_grid(budget: SweepBudget) -> Vec<Factory> {
    let shapes: Vec<Vec<usize>> = match budget {
        SweepBudget::Full => vec![
            vec![16],
            vec![64],
            vec![256],
            vec![1024],
            vec![64, 64],
            vec![256, 256],
            vec![64, 64, 64],
            vec![128, 128, 128, 128],
        ],
        SweepBudget::Quick => vec![vec![32], vec![128], vec![64, 64]],
    };
    let activations = match budget {
        SweepBudget::Full => vec![Activation::Relu, Activation::Tanh],
        SweepBudget::Quick => vec![Activation::Relu],
    };
    let mut out = Vec::new();
    for shape in &shapes {
        for &activation in &activations {
            let hidden = shape.clone();
            let f: Factory = Box::new(move || {
                Box::new(Mlp::new(MlpConfig {
                    hidden: hidden.clone(),
                    activation,
                    epochs: 150,
                    ..Default::default()
                }))
            });
            out.push(f);
        }
    }
    out
}

/// SGR: levels 2..8, refinements 0..16, adaptive points 4..32, λ 1e-6..1e-3.
pub fn sgr_grid(budget: SweepBudget) -> Vec<Factory> {
    let configs: Vec<SgrConfig> = match budget {
        SweepBudget::Full => {
            let mut v = Vec::new();
            for level in 2..=8 {
                for &lambda in &[1e-6, 1e-5, 1e-4, 1e-3] {
                    for &refinements in &[0usize, 4, 16] {
                        v.push(SgrConfig {
                            level,
                            lambda,
                            refinements,
                            refine_points: 16,
                            ..Default::default()
                        });
                    }
                }
            }
            v
        }
        SweepBudget::Quick => vec![
            SgrConfig {
                level: 3,
                lambda: 1e-5,
                ..Default::default()
            },
            SgrConfig {
                level: 5,
                lambda: 1e-5,
                ..Default::default()
            },
            SgrConfig {
                level: 5,
                lambda: 1e-5,
                refinements: 4,
                ..Default::default()
            },
        ],
    };
    configs
        .into_iter()
        .map(|cfg| {
            let f: Factory = Box::new(move || Box::new(SparseGridRegression::new(cfg)));
            f
        })
        .collect()
}

/// SGR at specific levels only (granularity sweeps plot per-level points).
pub fn sgr_grid_levels(levels: &[usize], budget: SweepBudget) -> Vec<Factory> {
    let lambdas: Vec<f64> = match budget {
        SweepBudget::Full => vec![1e-6, 1e-5, 1e-4, 1e-3],
        SweepBudget::Quick => vec![1e-5],
    };
    let mut out = Vec::new();
    for &level in levels {
        for &lambda in &lambdas {
            let cfg = SgrConfig {
                level,
                lambda,
                ..Default::default()
            };
            let f: Factory = Box::new(move || Box::new(SparseGridRegression::new(cfg)));
            out.push(f);
        }
    }
    out
}

/// SGR at one level with explicit refinement settings (Figure 4 series).
pub fn sgr_grid_refinement(
    level: usize,
    refinements: usize,
    refine_points: usize,
    budget: SweepBudget,
) -> Vec<Factory> {
    let lambdas: Vec<f64> = match budget {
        SweepBudget::Full => vec![1e-6, 1e-5, 1e-4],
        SweepBudget::Quick => vec![1e-5],
    };
    lambdas
        .into_iter()
        .map(|lambda| {
            let cfg = SgrConfig {
                level,
                lambda,
                refinements,
                refine_points,
                ..Default::default()
            };
            let f: Factory = Box::new(move || Box::new(SparseGridRegression::new(cfg)));
            f
        })
        .collect()
}

/// Outcome of an exhaustive sweep.
pub struct TunedModel {
    /// The winning fitted model.
    pub model: Box<dyn Regressor>,
    /// Its score (lower is better) on the evaluation set.
    pub score: f64,
    /// Index of the winning factory in the input grid.
    pub config_index: usize,
}

/// Fit every candidate on `(x_train, y_train)`, score with `metric` on
/// `(x_eval, y_eval)`, return the best (lowest score). Candidates run in
/// parallel. `max_size_bytes` drops models over the paper's 10 MB cap.
pub fn tune_best(
    grid: &[Factory],
    x_train: &[Vec<f64>],
    y_train: &[f64],
    x_eval: &[Vec<f64>],
    y_eval: &[f64],
    metric: impl Fn(&[f64], &[f64]) -> f64 + Sync,
    max_size_bytes: Option<usize>,
) -> Option<TunedModel> {
    let scored: Vec<(usize, Box<dyn Regressor>, f64)> = grid
        .par_iter()
        .enumerate()
        .filter_map(|(i, factory)| {
            let mut model = factory();
            model.fit(x_train, y_train);
            if let Some(cap) = max_size_bytes {
                if model.size_bytes() > cap {
                    return None;
                }
            }
            let pred = model.predict_batch(x_eval);
            let score = metric(&pred, y_eval);
            score.is_finite().then_some((i, model, score))
        })
        .collect();
    scored
        .into_iter()
        .min_by(|a, b| a.2.partial_cmp(&b.2).unwrap())
        .map(|(config_index, model, score)| TunedModel {
            model,
            score,
            config_index,
        })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> (Vec<Vec<f64>>, Vec<f64>) {
        let x: Vec<Vec<f64>> = (0..120).map(|i| vec![i as f64 / 12.0]).collect();
        let y: Vec<f64> = x.iter().map(|v| v[0].powi(2)).collect();
        (x, y)
    }

    fn mse(pred: &[f64], truth: &[f64]) -> f64 {
        pred.iter()
            .zip(truth)
            .map(|(p, t)| (p - t) * (p - t))
            .sum::<f64>()
            / truth.len() as f64
    }

    #[test]
    fn grids_are_nonempty() {
        assert_eq!(knn_grid(SweepBudget::Full).len(), 6);
        assert_eq!(
            forest_grid(ForestKind::ExtraTrees, SweepBudget::Full).len(),
            20
        );
        assert_eq!(gp_grid(SweepBudget::Full).len(), 5);
        assert_eq!(svm_grid(SweepBudget::Full).len(), 4);
        assert_eq!(mars_grid(SweepBudget::Full).len(), 6);
        assert!(mlp_grid(SweepBudget::Quick).len() >= 3);
        assert!(sgr_grid(SweepBudget::Full).len() >= 28);
    }

    #[test]
    fn tune_best_picks_lowest_score() {
        let (x, y) = toy();
        let best =
            tune_best(&knn_grid(SweepBudget::Full), &x, &y, &x, &y, mse, None).expect("winner");
        // Exhaustive sweep over k: scoring on the training set, k=1 is exact.
        assert!(best.score < 1e-12, "score {}", best.score);
        assert_eq!(best.model.name(), "KNN");
    }

    #[test]
    fn size_cap_filters_models() {
        let (x, y) = toy();
        // A 1-byte cap removes every candidate.
        let out = tune_best(&knn_grid(SweepBudget::Quick), &x, &y, &x, &y, mse, Some(1));
        assert!(out.is_none());
    }
}
