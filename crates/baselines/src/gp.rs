//! Gaussian-process regression (paper §3.4).
//!
//! Exact GP regression with the five covariance kernels the paper tunes
//! over (§6.0.4): RationalQuadratic, RBF, DotProduct+White, Matérn(3/2), and
//! Constant(+RBF). Fitting is the standard Cholesky pipeline
//! `α = (K + σ²I)⁻¹ y`; prediction is `k(x, X) α`. Exact GPs are O(n³), so
//! `max_train` caps the fitted subset — the paper itself notes GPs suit
//! small-training regimes and drops them beyond accuracy/size cutoffs.

use crate::common::{Regressor, Standardizer};
use cpr_tensor::linalg::Cholesky;
use cpr_tensor::Matrix;

/// Covariance kernels of §6.0.4.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Kernel {
    /// `exp(-r² / (2ℓ²))`
    Rbf { length_scale: f64 },
    /// `(1 + r²/(2αℓ²))^{-α}`
    RationalQuadratic { length_scale: f64, alpha: f64 },
    /// `(1 + √3 r/ℓ) exp(-√3 r/ℓ)`
    Matern32 { length_scale: f64 },
    /// `σ₀² + x·x'` (plus the white-noise term supplied by `noise`)
    DotProduct { sigma0: f64 },
    /// `c · exp(-r²/(2ℓ²))` — ConstantKernel × RBF
    ConstantRbf { constant: f64, length_scale: f64 },
}

impl Kernel {
    /// Evaluate `k(a, b)`.
    pub fn eval(&self, a: &[f64], b: &[f64]) -> f64 {
        match *self {
            Kernel::Rbf { length_scale } => {
                let r2 = dist_sq(a, b);
                (-r2 / (2.0 * length_scale * length_scale)).exp()
            }
            Kernel::RationalQuadratic {
                length_scale,
                alpha,
            } => {
                let r2 = dist_sq(a, b);
                (1.0 + r2 / (2.0 * alpha * length_scale * length_scale)).powf(-alpha)
            }
            Kernel::Matern32 { length_scale } => {
                let r = dist_sq(a, b).sqrt();
                let s = 3.0_f64.sqrt() * r / length_scale;
                (1.0 + s) * (-s).exp()
            }
            Kernel::DotProduct { sigma0 } => {
                sigma0 * sigma0 + a.iter().zip(b).map(|(x, y)| x * y).sum::<f64>()
            }
            Kernel::ConstantRbf {
                constant,
                length_scale,
            } => {
                let r2 = dist_sq(a, b);
                constant * (-r2 / (2.0 * length_scale * length_scale)).exp()
            }
        }
    }
}

#[inline]
fn dist_sq(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// GP configuration.
#[derive(Debug, Clone, Copy)]
pub struct GpConfig {
    pub kernel: Kernel,
    /// Observation noise σ² added to the kernel diagonal.
    pub noise: f64,
    /// Cap on the fitted training subset (exact GP is O(n³)).
    pub max_train: usize,
}

impl Default for GpConfig {
    fn default() -> Self {
        Self {
            kernel: Kernel::Rbf { length_scale: 1.0 },
            noise: 1e-4,
            max_train: 2000,
        }
    }
}

/// A fitted Gaussian-process regressor.
#[derive(Debug, Clone)]
pub struct GaussianProcess {
    config: GpConfig,
    scaler: Standardizer,
    x: Vec<Vec<f64>>,
    alpha: Vec<f64>,
    y_mean: f64,
    /// Log marginal likelihood of the fit (for kernel selection).
    log_marginal: f64,
}

impl GaussianProcess {
    /// Unfitted model.
    pub fn new(config: GpConfig) -> Self {
        Self {
            config,
            scaler: Standardizer::default(),
            x: Vec::new(),
            alpha: Vec::new(),
            y_mean: 0.0,
            log_marginal: f64::NEG_INFINITY,
        }
    }

    /// Log marginal likelihood from the last fit.
    pub fn log_marginal_likelihood(&self) -> f64 {
        self.log_marginal
    }
}

impl Regressor for GaussianProcess {
    fn fit(&mut self, x: &[Vec<f64>], y: &[f64]) {
        assert_eq!(x.len(), y.len());
        assert!(!x.is_empty(), "GP: empty training set");
        // Deterministic subsample: stride over the set when too large.
        let n_all = x.len();
        let keep = self.config.max_train.min(n_all);
        let stride = (n_all as f64 / keep as f64).max(1.0);
        let idx: Vec<usize> = (0..keep)
            .map(|i| ((i as f64 * stride) as usize).min(n_all - 1))
            .collect();
        let xs: Vec<Vec<f64>> = idx.iter().map(|&i| x[i].clone()).collect();
        let ys: Vec<f64> = idx.iter().map(|&i| y[i]).collect();

        self.scaler = Standardizer::fit(&xs);
        self.x = self.scaler.transform_all(&xs);
        self.y_mean = ys.iter().sum::<f64>() / ys.len() as f64;
        let yc: Vec<f64> = ys.iter().map(|v| v - self.y_mean).collect();

        let n = self.x.len();
        let mut k = Matrix::zeros(n, n);
        for i in 0..n {
            for j in i..n {
                let v = self.config.kernel.eval(&self.x[i], &self.x[j]);
                k[(i, j)] = v;
                k[(j, i)] = v;
            }
            k[(i, i)] += self.config.noise;
        }
        // Cholesky with escalating jitter for near-singular kernels.
        let mut jitter = 0.0;
        let chol = loop {
            let mut kj = k.clone();
            if jitter > 0.0 {
                for i in 0..n {
                    kj[(i, i)] += jitter;
                }
            }
            match Cholesky::new(&kj) {
                Ok(c) => break c,
                Err(_) => {
                    jitter = if jitter == 0.0 { 1e-10 } else { jitter * 100.0 };
                    assert!(jitter < 1.0, "GP kernel matrix irreparably singular");
                }
            }
        };
        self.alpha = chol.solve(&yc);
        // log p(y|X) = -0.5 yᵀα - 0.5 log|K| - n/2 log 2π
        let fit_term: f64 = yc.iter().zip(&self.alpha).map(|(a, b)| a * b).sum();
        self.log_marginal = -0.5 * fit_term
            - 0.5 * chol.log_det()
            - 0.5 * n as f64 * (2.0 * std::f64::consts::PI).ln();
    }

    fn predict(&self, x: &[f64]) -> f64 {
        assert!(!self.x.is_empty(), "GP: predict before fit");
        let q = self.scaler.transform(x);
        let mut acc = 0.0;
        for (xi, &ai) in self.x.iter().zip(&self.alpha) {
            acc += self.config.kernel.eval(&q, xi) * ai;
        }
        acc + self.y_mean
    }

    fn size_bytes(&self) -> usize {
        // Stored: training inputs + alpha (the paper's joblib dump of a
        // fitted sklearn GP similarly scales with n·d).
        let d = self.x.first().map_or(0, |r| r.len());
        self.x.len() * (d + 1) * 8 + self.scaler.size_bytes() + 16
    }

    fn name(&self) -> &'static str {
        "GP"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smooth_data() -> (Vec<Vec<f64>>, Vec<f64>) {
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..60 {
            let v = i as f64 / 10.0;
            x.push(vec![v]);
            y.push((v).sin() + 0.5 * v);
        }
        (x, y)
    }

    #[test]
    fn near_interpolates_training_points_with_low_noise() {
        let (x, y) = smooth_data();
        let mut gp = GaussianProcess::new(GpConfig {
            noise: 1e-8,
            ..Default::default()
        });
        gp.fit(&x, &y);
        for (xi, yi) in x.iter().zip(&y) {
            assert!((gp.predict(xi) - yi).abs() < 1e-3, "at {xi:?}");
        }
    }

    #[test]
    fn generalizes_between_points() {
        let (x, y) = smooth_data();
        let mut gp = GaussianProcess::new(GpConfig::default());
        gp.fit(&x, &y);
        let p = gp.predict(&[2.55]);
        let want = 2.55_f64.sin() + 0.5 * 2.55;
        assert!((p - want).abs() < 0.05, "pred {p} want {want}");
    }

    #[test]
    fn all_kernels_produce_finite_predictions() {
        let (x, y) = smooth_data();
        let kernels = [
            Kernel::Rbf { length_scale: 1.0 },
            Kernel::RationalQuadratic {
                length_scale: 1.0,
                alpha: 1.0,
            },
            Kernel::Matern32 { length_scale: 1.0 },
            Kernel::DotProduct { sigma0: 1.0 },
            Kernel::ConstantRbf {
                constant: 2.0,
                length_scale: 1.0,
            },
        ];
        for kernel in kernels {
            let mut gp = GaussianProcess::new(GpConfig {
                kernel,
                ..Default::default()
            });
            gp.fit(&x, &y);
            let p = gp.predict(&[3.3]);
            assert!(p.is_finite(), "{kernel:?} produced {p}");
            assert!(gp.log_marginal_likelihood().is_finite());
        }
    }

    #[test]
    fn kernel_symmetry_and_unit_diagonal() {
        let k = Kernel::Rbf { length_scale: 2.0 };
        let a = [1.0, 2.0];
        let b = [3.0, -1.0];
        assert_eq!(k.eval(&a, &b), k.eval(&b, &a));
        assert!((k.eval(&a, &a) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn subsampling_caps_model_size() {
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..500 {
            x.push(vec![i as f64 / 50.0]);
            y.push((i as f64 / 50.0).cos());
        }
        let mut gp = GaussianProcess::new(GpConfig {
            max_train: 100,
            ..Default::default()
        });
        gp.fit(&x, &y);
        assert!(gp.x.len() <= 100);
        assert!(gp.predict(&[5.0]).is_finite());
    }
}
