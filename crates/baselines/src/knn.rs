//! k-nearest-neighbors regression (paper §3.6).
//!
//! Instance-based: stores the (standardized) training set and predicts the
//! inverse-distance-weighted mean of the `k` nearest neighbors. The paper
//! sweeps `k = 1..6` and observes KNN degrading sharply in high dimensions —
//! a behaviour the Figure 7 harness reproduces.

use crate::common::{dist_sq, Regressor, Standardizer};

/// KNN configuration.
#[derive(Debug, Clone, Copy)]
pub struct KnnConfig {
    /// Neighbors consulted per query (paper: 1..6).
    pub k: usize,
    /// Inverse-distance weighting (uniform when false).
    pub weighted: bool,
}

impl Default for KnnConfig {
    fn default() -> Self {
        Self {
            k: 4,
            weighted: true,
        }
    }
}

/// A fitted KNN regressor.
#[derive(Debug, Clone)]
pub struct Knn {
    config: KnnConfig,
    scaler: Standardizer,
    x: Vec<Vec<f64>>,
    y: Vec<f64>,
}

impl Knn {
    /// Unfitted model.
    pub fn new(config: KnnConfig) -> Self {
        assert!(config.k >= 1, "KNN: k must be >= 1");
        Self {
            config,
            scaler: Standardizer::default(),
            x: Vec::new(),
            y: Vec::new(),
        }
    }
}

impl Regressor for Knn {
    fn fit(&mut self, x: &[Vec<f64>], y: &[f64]) {
        assert_eq!(x.len(), y.len());
        assert!(!x.is_empty(), "KNN: empty training set");
        self.scaler = Standardizer::fit(x);
        self.x = self.scaler.transform_all(x);
        self.y = y.to_vec();
    }

    fn predict(&self, x: &[f64]) -> f64 {
        assert!(!self.x.is_empty(), "KNN: predict before fit");
        let q = self.scaler.transform(x);
        let k = self.config.k.min(self.x.len());
        // Partial selection of the k smallest distances.
        let mut best: Vec<(f64, usize)> = Vec::with_capacity(k + 1);
        for (i, xi) in self.x.iter().enumerate() {
            let d = dist_sq(&q, xi);
            if best.len() < k {
                best.push((d, i));
                best.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
            } else if d < best[k - 1].0 {
                best[k - 1] = (d, i);
                best.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
            }
        }
        if self.config.weighted {
            // Inverse-distance weights; exact hit short-circuits.
            let mut num = 0.0;
            let mut den = 0.0;
            for &(d, i) in &best {
                if d < 1e-24 {
                    return self.y[i];
                }
                let w = 1.0 / d.sqrt();
                num += w * self.y[i];
                den += w;
            }
            num / den
        } else {
            best.iter().map(|&(_, i)| self.y[i]).sum::<f64>() / best.len() as f64
        }
    }

    fn size_bytes(&self) -> usize {
        // Instance-based: the whole training set is the model.
        let d = self.x.first().map_or(0, |r| r.len());
        self.x.len() * (d + 1) * 8 + self.scaler.size_bytes()
    }

    fn name(&self) -> &'static str {
        "KNN"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_data() -> (Vec<Vec<f64>>, Vec<f64>) {
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..10 {
            for j in 0..10 {
                x.push(vec![i as f64, j as f64]);
                y.push((i + j) as f64);
            }
        }
        (x, y)
    }

    #[test]
    fn exact_hit_returns_training_value() {
        let (x, y) = grid_data();
        let mut knn = Knn::new(KnnConfig {
            k: 3,
            weighted: true,
        });
        knn.fit(&x, &y);
        assert_eq!(knn.predict(&[4.0, 7.0]), 11.0);
    }

    #[test]
    fn k1_is_nearest_neighbor() {
        let (x, y) = grid_data();
        let mut knn = Knn::new(KnnConfig {
            k: 1,
            weighted: false,
        });
        knn.fit(&x, &y);
        assert_eq!(knn.predict(&[4.2, 7.1]), 11.0);
    }

    #[test]
    fn interpolates_smoothly_between_points() {
        let (x, y) = grid_data();
        let mut knn = Knn::new(KnnConfig {
            k: 4,
            weighted: true,
        });
        knn.fit(&x, &y);
        let p = knn.predict(&[4.5, 4.5]);
        assert!((p - 9.0).abs() < 0.6, "prediction {p}");
    }

    #[test]
    fn k_larger_than_training_set_is_clamped() {
        let x = vec![vec![0.0], vec![1.0]];
        let y = vec![1.0, 3.0];
        let mut knn = Knn::new(KnnConfig {
            k: 10,
            weighted: false,
        });
        knn.fit(&x, &y);
        assert!((knn.predict(&[0.5]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn model_size_scales_with_training_set() {
        let (x, y) = grid_data();
        let mut knn = Knn::new(KnnConfig::default());
        knn.fit(&x, &y);
        let full = knn.size_bytes();
        let mut small = Knn::new(KnnConfig::default());
        small.fit(&x[..10], &y[..10]);
        assert!(full > small.size_bytes() * 5);
    }
}
