//! Gradient-boosting regression (paper §3.5).
//!
//! Trees are built sequentially on the residuals of the current ensemble —
//! for squared loss the residuals are exactly the negative gradients the
//! paper mentions. Predictions are `base + ν Σ_t tree_t(x)` with shrinkage
//! (learning rate) `ν`.

use crate::common::{mean, Regressor};
use crate::tree::{RegressionTree, SplitStrategy, TreeConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Gradient-boosting configuration (paper sweeps 1..64 trees, depth 2..16).
#[derive(Debug, Clone, Copy)]
pub struct GbConfig {
    pub n_trees: usize,
    pub max_depth: usize,
    pub learning_rate: f64,
    pub min_samples_split: usize,
    pub seed: u64,
}

impl Default for GbConfig {
    fn default() -> Self {
        Self {
            n_trees: 64,
            max_depth: 4,
            learning_rate: 0.1,
            min_samples_split: 2,
            seed: 0,
        }
    }
}

/// A fitted gradient-boosting ensemble.
#[derive(Debug, Clone)]
pub struct GradientBoosting {
    config: GbConfig,
    base: f64,
    trees: Vec<RegressionTree>,
}

impl GradientBoosting {
    /// Unfitted model.
    pub fn new(config: GbConfig) -> Self {
        Self {
            config,
            base: 0.0,
            trees: Vec::new(),
        }
    }

    /// Training loss after each boosting stage (useful for tests/ablation).
    pub fn staged_mse(&self, x: &[Vec<f64>], y: &[f64]) -> Vec<f64> {
        let mut pred = vec![self.base; x.len()];
        let mut out = Vec::with_capacity(self.trees.len());
        for tree in &self.trees {
            for (p, xi) in pred.iter_mut().zip(x) {
                *p += self.config.learning_rate * tree.predict(xi);
            }
            let mse = pred
                .iter()
                .zip(y)
                .map(|(p, t)| (p - t) * (p - t))
                .sum::<f64>()
                / y.len() as f64;
            out.push(mse);
        }
        out
    }
}

impl Regressor for GradientBoosting {
    fn fit(&mut self, x: &[Vec<f64>], y: &[f64]) {
        assert_eq!(x.len(), y.len());
        assert!(!x.is_empty(), "GradientBoosting: empty training set");
        self.base = mean(y);
        self.trees.clear();
        let ids: Vec<usize> = (0..x.len()).collect();
        let tree_cfg = TreeConfig {
            max_depth: self.config.max_depth,
            min_samples_split: self.config.min_samples_split,
            strategy: SplitStrategy::BestOfFeatures { max_features: None },
        };
        let mut resid: Vec<f64> = y.iter().map(|v| v - self.base).collect();
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        for _ in 0..self.config.n_trees {
            let tree = RegressionTree::fit(x, &resid, &ids, &tree_cfg, &mut rng);
            for (r, xi) in resid.iter_mut().zip(x) {
                *r -= self.config.learning_rate * tree.predict(xi);
            }
            self.trees.push(tree);
        }
    }

    fn predict(&self, x: &[f64]) -> f64 {
        let boost: f64 = self.trees.iter().map(|t| t.predict(x)).sum();
        self.base + self.config.learning_rate * boost
    }

    fn size_bytes(&self) -> usize {
        8 + self.trees.iter().map(|t| t.size_bytes()).sum::<usize>()
    }

    fn name(&self) -> &'static str {
        "GB"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wavy() -> (Vec<Vec<f64>>, Vec<f64>) {
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..300 {
            let v = i as f64 / 30.0;
            x.push(vec![v]);
            y.push((v * 1.3).sin() + 0.2 * v);
        }
        (x, y)
    }

    #[test]
    fn fits_smooth_function() {
        let (x, y) = wavy();
        let mut gb = GradientBoosting::new(GbConfig::default());
        gb.fit(&x, &y);
        let mse: f64 = x
            .iter()
            .zip(&y)
            .map(|(xi, yi)| (gb.predict(xi) - yi).powi(2))
            .sum::<f64>()
            / y.len() as f64;
        assert!(mse < 1e-2, "mse {mse}");
    }

    #[test]
    fn staged_loss_is_nonincreasing() {
        let (x, y) = wavy();
        let mut gb = GradientBoosting::new(GbConfig {
            n_trees: 40,
            ..Default::default()
        });
        gb.fit(&x, &y);
        let stages = gb.staged_mse(&x, &y);
        for w in stages.windows(2) {
            assert!(
                w[1] <= w[0] + 1e-12,
                "boosting increased training loss: {w:?}"
            );
        }
    }

    #[test]
    fn zero_trees_predicts_mean() {
        let (x, y) = wavy();
        let mut gb = GradientBoosting::new(GbConfig {
            n_trees: 0,
            ..Default::default()
        });
        gb.fit(&x, &y);
        assert!((gb.predict(&[1.0]) - mean(&y)).abs() < 1e-12);
    }

    #[test]
    fn more_trees_fit_better() {
        let (x, y) = wavy();
        let mse = |n_trees| {
            let mut gb = GradientBoosting::new(GbConfig {
                n_trees,
                ..Default::default()
            });
            gb.fit(&x, &y);
            x.iter()
                .zip(&y)
                .map(|(xi, yi)| (gb.predict(xi) - yi).powi(2))
                .sum::<f64>()
        };
        assert!(mse(64) < mse(4));
    }
}
