//! Random forests and extremely randomized trees (paper §3.5).
//!
//! Random forest: each tree trains on a bootstrap sample with
//! per-split feature subsampling and exhaustive threshold search.
//! Extremely randomized trees (ET): each tree trains on the full sample with
//! random thresholds — the paper notes ET is "among the most accurate
//! methods for performance modeling" of the recursive-partitioning family,
//! and drops RF/GB from its headline figures because ET dominates them.

use crate::common::Regressor;
use crate::tree::{RegressionTree, SplitStrategy, TreeConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;

/// Forest flavor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ForestKind {
    /// Bootstrap + best-split (random forest).
    RandomForest,
    /// Full sample + random thresholds (extremely randomized trees).
    ExtraTrees,
}

/// Forest configuration (paper sweeps 1..64 trees, depth 2..16).
#[derive(Debug, Clone, Copy)]
pub struct ForestConfig {
    pub kind: ForestKind,
    pub n_trees: usize,
    pub max_depth: usize,
    pub min_samples_split: usize,
    /// Per-split feature subsample (`None` = all features).
    pub max_features: Option<usize>,
    pub seed: u64,
}

impl Default for ForestConfig {
    fn default() -> Self {
        Self {
            kind: ForestKind::ExtraTrees,
            n_trees: 32,
            max_depth: 12,
            min_samples_split: 2,
            max_features: None,
            seed: 0,
        }
    }
}

/// A fitted forest: mean of its trees' predictions.
#[derive(Debug, Clone)]
pub struct Forest {
    config: ForestConfig,
    trees: Vec<RegressionTree>,
}

impl Forest {
    /// Unfitted forest with the given configuration.
    pub fn new(config: ForestConfig) -> Self {
        Self {
            config,
            trees: Vec::new(),
        }
    }

    /// Trees in the fitted forest.
    pub fn trees(&self) -> &[RegressionTree] {
        &self.trees
    }
}

impl Regressor for Forest {
    fn fit(&mut self, x: &[Vec<f64>], y: &[f64]) {
        assert_eq!(x.len(), y.len());
        assert!(!x.is_empty(), "Forest: empty training set");
        let n = x.len();
        let strategy = match self.config.kind {
            ForestKind::RandomForest => SplitStrategy::BestOfFeatures {
                max_features: self.config.max_features,
            },
            ForestKind::ExtraTrees => SplitStrategy::RandomThreshold {
                max_features: self.config.max_features,
            },
        };
        let tree_cfg = TreeConfig {
            max_depth: self.config.max_depth,
            min_samples_split: self.config.min_samples_split,
            strategy,
        };
        let kind = self.config.kind;
        let seed = self.config.seed;
        self.trees = (0..self.config.n_trees)
            .into_par_iter()
            .map(|t| {
                let mut rng = StdRng::seed_from_u64(seed.wrapping_add(t as u64 * 7919));
                let ids: Vec<usize> = match kind {
                    ForestKind::RandomForest => (0..n).map(|_| rng.gen_range(0..n)).collect(),
                    ForestKind::ExtraTrees => (0..n).collect(),
                };
                RegressionTree::fit(x, y, &ids, &tree_cfg, &mut rng)
            })
            .collect();
    }

    fn predict(&self, x: &[f64]) -> f64 {
        assert!(!self.trees.is_empty(), "Forest: predict before fit");
        self.trees.iter().map(|t| t.predict(x)).sum::<f64>() / self.trees.len() as f64
    }

    fn size_bytes(&self) -> usize {
        self.trees.iter().map(|t| t.size_bytes()).sum()
    }

    fn name(&self) -> &'static str {
        match self.config.kind {
            ForestKind::RandomForest => "RF",
            ForestKind::ExtraTrees => "ET",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn step_data() -> (Vec<Vec<f64>>, Vec<f64>) {
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..200 {
            let v = i as f64 / 20.0;
            x.push(vec![v]);
            y.push(if v < 5.0 { 1.0 } else { 3.0 });
        }
        (x, y)
    }

    #[test]
    fn both_kinds_fit_step_function() {
        let (x, y) = step_data();
        for kind in [ForestKind::RandomForest, ForestKind::ExtraTrees] {
            let mut f = Forest::new(ForestConfig {
                kind,
                n_trees: 16,
                ..Default::default()
            });
            f.fit(&x, &y);
            assert!((f.predict(&[2.0]) - 1.0).abs() < 0.2, "{:?}", kind);
            assert!((f.predict(&[8.0]) - 3.0).abs() < 0.2, "{:?}", kind);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let (x, y) = step_data();
        let run = |seed| {
            let mut f = Forest::new(ForestConfig {
                seed,
                n_trees: 8,
                ..Default::default()
            });
            f.fit(&x, &y);
            f.predict(&[4.9])
        };
        assert_eq!(run(3), run(3));
    }

    #[test]
    fn more_trees_reduce_variance() {
        // Averaging bootstrap trees keeps the fit close to a single tree's
        // and never catastrophically worse (bagging bounds the ensemble MSE
        // by the average member MSE).
        let (x, y) = step_data();
        let mse = |n_trees| {
            let mut f = Forest::new(ForestConfig {
                kind: ForestKind::RandomForest,
                n_trees,
                max_depth: 4,
                seed: 5,
                ..Default::default()
            });
            f.fit(&x, &y);
            x.iter()
                .zip(&y)
                .map(|(xi, yi)| (f.predict(xi) - yi).powi(2))
                .sum::<f64>()
                / y.len() as f64
        };
        // Absolute slack absorbs bootstrap jitter at the step boundary.
        assert!(
            mse(32) <= mse(1) + 0.02,
            "mse32 {} vs mse1 {}",
            mse(32),
            mse(1)
        );
        assert!(mse(32) < 0.05);
    }

    #[test]
    fn size_reflects_tree_count() {
        let (x, y) = step_data();
        let mut small = Forest::new(ForestConfig {
            n_trees: 2,
            seed: 1,
            ..Default::default()
        });
        let mut large = Forest::new(ForestConfig {
            n_trees: 32,
            seed: 1,
            ..Default::default()
        });
        small.fit(&x, &y);
        large.fit(&x, &y);
        assert!(large.size_bytes() > small.size_bytes());
    }

    #[test]
    fn names() {
        assert_eq!(Forest::new(ForestConfig::default()).name(), "ET");
        let rf = Forest::new(ForestConfig {
            kind: ForestKind::RandomForest,
            ..Default::default()
        });
        assert_eq!(rf.name(), "RF");
    }
}
