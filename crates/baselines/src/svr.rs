//! ε-insensitive support-vector regression (paper §3.4).
//!
//! Solves the ε-SVR dual in the single-variable form `β_i = α_i - α_i*` with
//! dual coordinate descent and soft-thresholding:
//!
//! ```text
//!   min_β  ½ βᵀQβ − yᵀβ + ε‖β‖₁   s.t. |β_i| ≤ C,
//! ```
//!
//! where `Q = K + 1` (the `+1` absorbs the bias term, the standard
//! augmented-kernel trick). The paper tunes `{poly, rbf}` kernels with
//! polynomial degrees 1..3 (§6.0.4) and excludes SVM from its headline
//! figures because it is dominated by GP — this implementation exists to
//! make that comparison reproducible.

use crate::common::{dist_sq, Regressor, Standardizer};
use cpr_tensor::Matrix;

/// SVR kernel (paper: poly degrees 1..3, rbf).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SvrKernel {
    /// `exp(-γ r²)`
    Rbf { gamma: f64 },
    /// `(γ x·y + c₀)^degree`
    Poly { gamma: f64, coef0: f64, degree: u32 },
}

impl SvrKernel {
    fn eval(&self, a: &[f64], b: &[f64]) -> f64 {
        match *self {
            SvrKernel::Rbf { gamma } => (-gamma * dist_sq(a, b)).exp(),
            SvrKernel::Poly {
                gamma,
                coef0,
                degree,
            } => {
                let d: f64 = a.iter().zip(b).map(|(x, y)| x * y).sum();
                (gamma * d + coef0).powi(degree as i32)
            }
        }
    }
}

/// SVR configuration.
#[derive(Debug, Clone, Copy)]
pub struct SvrConfig {
    pub kernel: SvrKernel,
    /// Box constraint C.
    pub c: f64,
    /// ε-insensitive tube half-width.
    pub epsilon: f64,
    /// Dual coordinate-descent epochs.
    pub max_iter: usize,
    /// KKT tolerance for early stop.
    pub tol: f64,
    /// Cap on the fitted training subset (kernel matrix is dense O(n²)).
    pub max_train: usize,
}

impl Default for SvrConfig {
    fn default() -> Self {
        Self {
            kernel: SvrKernel::Rbf { gamma: 0.5 },
            c: 10.0,
            epsilon: 0.01,
            max_iter: 200,
            tol: 1e-5,
            max_train: 1500,
        }
    }
}

/// A fitted ε-SVR model.
#[derive(Debug, Clone)]
pub struct Svr {
    config: SvrConfig,
    scaler: Standardizer,
    /// Support vectors (β_i ≠ 0 after fitting).
    sv_x: Vec<Vec<f64>>,
    sv_beta: Vec<f64>,
    bias: f64,
    y_mean: f64,
}

impl Svr {
    /// Unfitted model.
    pub fn new(config: SvrConfig) -> Self {
        Self {
            config,
            scaler: Standardizer::default(),
            sv_x: Vec::new(),
            sv_beta: Vec::new(),
            bias: 0.0,
            y_mean: 0.0,
        }
    }

    /// Number of support vectors retained.
    pub fn support_vector_count(&self) -> usize {
        self.sv_x.len()
    }
}

impl Regressor for Svr {
    fn fit(&mut self, x: &[Vec<f64>], y: &[f64]) {
        assert_eq!(x.len(), y.len());
        assert!(!x.is_empty(), "SVR: empty training set");
        let n_all = x.len();
        let keep = self.config.max_train.min(n_all);
        let stride = (n_all as f64 / keep as f64).max(1.0);
        let idx: Vec<usize> = (0..keep)
            .map(|i| ((i as f64 * stride) as usize).min(n_all - 1))
            .collect();
        let xs_raw: Vec<Vec<f64>> = idx.iter().map(|&i| x[i].clone()).collect();
        self.scaler = Standardizer::fit(&xs_raw);
        let xs = self.scaler.transform_all(&xs_raw);
        self.y_mean = idx.iter().map(|&i| y[i]).sum::<f64>() / keep as f64;
        let ys: Vec<f64> = idx.iter().map(|&i| y[i] - self.y_mean).collect();

        let n = xs.len();
        // Dense augmented kernel Q = K + 1.
        let mut q = Matrix::zeros(n, n);
        for i in 0..n {
            for j in i..n {
                let v = self.config.kernel.eval(&xs[i], &xs[j]) + 1.0;
                q[(i, j)] = v;
                q[(j, i)] = v;
            }
        }
        let mut beta = vec![0.0; n];
        let mut qbeta = vec![0.0; n]; // Q β maintained incrementally
        let (c, eps) = (self.config.c, self.config.epsilon);
        for _epoch in 0..self.config.max_iter {
            let mut max_change = 0.0_f64;
            for i in 0..n {
                let qii = q[(i, i)].max(1e-12);
                let g = qbeta[i] - ys[i];
                // Soft-threshold update (see module docs).
                let bp = beta[i] - (g + eps) / qii;
                let bm = beta[i] - (g - eps) / qii;
                let new = if bp > 0.0 {
                    bp.min(c)
                } else if bm < 0.0 {
                    bm.max(-c)
                } else {
                    0.0
                };
                let delta = new - beta[i];
                if delta != 0.0 {
                    beta[i] = new;
                    let qrow = q.row(i);
                    for (qb, &qv) in qbeta.iter_mut().zip(qrow) {
                        *qb += delta * qv;
                    }
                    max_change = max_change.max(delta.abs());
                }
            }
            if max_change < self.config.tol {
                break;
            }
        }
        // Retain support vectors; the augmented-kernel bias is Σ β_i.
        self.bias = beta.iter().sum();
        self.sv_x.clear();
        self.sv_beta.clear();
        for (i, &b) in beta.iter().enumerate() {
            if b.abs() > 1e-12 {
                self.sv_x.push(xs[i].clone());
                self.sv_beta.push(b);
            }
        }
    }

    fn predict(&self, x: &[f64]) -> f64 {
        assert!(
            !self.sv_x.is_empty() || self.bias != 0.0,
            "SVR: predict before fit"
        );
        let q = self.scaler.transform(x);
        let mut acc = self.bias;
        for (sv, &b) in self.sv_x.iter().zip(&self.sv_beta) {
            acc += b * self.config.kernel.eval(&q, sv);
        }
        acc + self.y_mean
    }

    fn size_bytes(&self) -> usize {
        let d = self.sv_x.first().map_or(0, |r| r.len());
        self.sv_x.len() * (d + 1) * 8 + self.scaler.size_bytes() + 16
    }

    fn name(&self) -> &'static str {
        "SVM"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sine_data() -> (Vec<Vec<f64>>, Vec<f64>) {
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..80 {
            let v = i as f64 / 8.0;
            x.push(vec![v]);
            y.push(v.sin());
        }
        (x, y)
    }

    #[test]
    fn rbf_fits_sine() {
        let (x, y) = sine_data();
        let mut svr = Svr::new(SvrConfig::default());
        svr.fit(&x, &y);
        let mse: f64 = x
            .iter()
            .zip(&y)
            .map(|(xi, yi)| (svr.predict(xi) - yi).powi(2))
            .sum::<f64>()
            / y.len() as f64;
        assert!(mse < 0.01, "mse {mse}");
    }

    #[test]
    fn linear_poly_fits_line() {
        let x: Vec<Vec<f64>> = (0..50).map(|i| vec![i as f64 / 5.0]).collect();
        let y: Vec<f64> = x.iter().map(|v| 3.0 * v[0] - 1.0).collect();
        let mut svr = Svr::new(SvrConfig {
            kernel: SvrKernel::Poly {
                gamma: 1.0,
                coef0: 1.0,
                degree: 1,
            },
            c: 100.0,
            epsilon: 0.001,
            ..Default::default()
        });
        svr.fit(&x, &y);
        for (xi, yi) in x.iter().zip(&y) {
            assert!(
                (svr.predict(xi) - yi).abs() < 0.2,
                "at {xi:?}: {} vs {yi}",
                svr.predict(xi)
            );
        }
    }

    #[test]
    fn epsilon_tube_sparsifies() {
        let (x, y) = sine_data();
        let fit_count = |epsilon| {
            let mut svr = Svr::new(SvrConfig {
                epsilon,
                ..Default::default()
            });
            svr.fit(&x, &y);
            svr.support_vector_count()
        };
        // A wider tube needs (weakly) fewer support vectors.
        assert!(fit_count(0.2) <= fit_count(0.001));
    }

    #[test]
    fn predictions_finite_on_extrapolation() {
        let (x, y) = sine_data();
        let mut svr = Svr::new(SvrConfig::default());
        svr.fit(&x, &y);
        assert!(svr.predict(&[100.0]).is_finite());
        assert!(svr.predict(&[-100.0]).is_finite());
    }

    #[test]
    fn respects_max_train_cap() {
        let x: Vec<Vec<f64>> = (0..400).map(|i| vec![i as f64]).collect();
        let y: Vec<f64> = (0..400).map(|i| i as f64).collect();
        let mut svr = Svr::new(SvrConfig {
            max_train: 50,
            ..Default::default()
        });
        svr.fit(&x, &y);
        assert!(svr.support_vector_count() <= 50);
    }
}
