//! Multivariate adaptive regression splines (Friedman 1991; paper §3.2).
//!
//! MARS builds a linear combination of products of hinge functions
//! `max(0, ±(x_v − c))` by a greedy forward pass (adding reflected hinge
//! pairs that maximally reduce SSE) followed by a backward pruning pass
//! driven by generalized cross-validation (GCV).
//!
//! Two roles in this repository:
//! * the MARS baseline of the paper's evaluation (max degree swept 1..6), and
//! * the univariate spline fitter CPR's extrapolation path applies to the
//!   log of each factor matrix's leading left singular vector (§5.3).

use crate::common::{mean, Regressor};
use cpr_tensor::linalg::lstsq;
use cpr_tensor::Matrix;

/// One hinge function `max(0, x[feature] - knot)` or `max(0, knot - x[feature])`.
#[derive(Debug, Clone, PartialEq)]
pub struct Hinge {
    pub feature: usize,
    pub knot: f64,
    /// `true` for `max(0, x - knot)`, `false` for `max(0, knot - x)`.
    pub positive: bool,
}

impl Hinge {
    #[inline]
    fn eval(&self, x: &[f64]) -> f64 {
        let v = x[self.feature] - self.knot;
        if self.positive {
            v.max(0.0)
        } else {
            (-v).max(0.0)
        }
    }
}

/// A basis function: a product of hinges (empty product = intercept).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct BasisFunction {
    pub hinges: Vec<Hinge>,
}

impl BasisFunction {
    #[inline]
    fn eval(&self, x: &[f64]) -> f64 {
        self.hinges.iter().map(|h| h.eval(x)).product()
    }

    fn degree(&self) -> usize {
        self.hinges.len()
    }

    fn uses_feature(&self, f: usize) -> bool {
        self.hinges.iter().any(|h| h.feature == f)
    }
}

/// MARS configuration.
#[derive(Debug, Clone, Copy)]
pub struct MarsConfig {
    /// Maximum number of basis functions including the intercept.
    pub max_terms: usize,
    /// Maximum interaction degree (paper sweeps 1..6).
    pub max_degree: usize,
    /// Candidate knots per variable per parent (quantile-subsampled).
    pub max_knots: usize,
    /// GCV penalty per non-intercept term (Friedman's `c`; 3 is standard
    /// with interactions, 2 for additive models).
    pub penalty: f64,
}

impl Default for MarsConfig {
    fn default() -> Self {
        Self {
            max_terms: 21,
            max_degree: 2,
            max_knots: 20,
            penalty: 3.0,
        }
    }
}

/// A fitted MARS model.
#[derive(Debug, Clone)]
pub struct Mars {
    config: MarsConfig,
    basis: Vec<BasisFunction>,
    coef: Vec<f64>,
}

impl Mars {
    /// Unfitted model.
    pub fn new(config: MarsConfig) -> Self {
        Self {
            config,
            basis: Vec::new(),
            coef: Vec::new(),
        }
    }

    /// Fitted basis functions (intercept first).
    pub fn basis(&self) -> &[BasisFunction] {
        &self.basis
    }

    /// Fitted coefficients, aligned with [`Self::basis`].
    pub fn coefficients(&self) -> &[f64] {
        &self.coef
    }

    /// Design matrix of the current basis on a sample set.
    fn design(&self, x: &[Vec<f64>]) -> Matrix {
        Matrix::from_fn(x.len(), self.basis.len(), |i, j| self.basis[j].eval(&x[i]))
    }

    /// GCV criterion for a model with `terms` basis functions and given SSE.
    fn gcv(&self, sse: f64, n: usize, terms: usize) -> f64 {
        let c_m = terms as f64 + self.config.penalty * (terms.saturating_sub(1)) as f64 / 2.0;
        let denom = 1.0 - (c_m / n as f64).min(0.99);
        sse / n as f64 / (denom * denom)
    }

    /// Forward pass: greedily add reflected hinge pairs.
    fn forward(&mut self, x: &[Vec<f64>], y: &[f64]) {
        let n = x.len();
        let d = x[0].len();
        self.basis = vec![BasisFunction::default()];
        self.coef = vec![mean(y)];
        // Orthonormalized copy of the design (columns) for fast SSE-drop
        // estimates, plus current residual.
        let inv_sqrt_n = 1.0 / (n as f64).sqrt();
        let mut q_cols: Vec<Vec<f64>> = vec![vec![inv_sqrt_n; n]];
        let mut resid: Vec<f64> = y.iter().map(|v| v - self.coef[0]).collect();

        while self.basis.len() + 1 < self.config.max_terms {
            let mut best: Option<(usize, usize, f64, f64)> = None; // (parent, var, knot, drop)
            for parent in 0..self.basis.len() {
                if self.basis[parent].degree() >= self.config.max_degree {
                    continue;
                }
                // Parent activations; candidate knots restricted to samples
                // in the parent's support (standard MARS).
                let pact: Vec<f64> = x.iter().map(|xi| self.basis[parent].eval(xi)).collect();
                for var in 0..d {
                    if self.basis[parent].uses_feature(var) {
                        continue; // keep products linear per variable
                    }
                    for &knot in &candidate_knots(x, &pact, var, self.config.max_knots) {
                        let drop = self.sse_drop(x, &pact, var, knot, &q_cols, &resid);
                        if best.is_none_or(|(_, _, _, b)| drop > b) {
                            best = Some((parent, var, knot, drop));
                        }
                    }
                }
            }
            let Some((parent, var, knot, drop)) = best else {
                break;
            };
            if drop <= 1e-12 * y.iter().map(|v| v * v).sum::<f64>().max(1e-300) {
                break; // no candidate reduces SSE meaningfully
            }
            // Add the reflected pair (skip a member whose column is ~zero).
            for positive in [true, false] {
                let mut bf = self.basis[parent].clone();
                bf.hinges.push(Hinge {
                    feature: var,
                    knot,
                    positive,
                });
                let col: Vec<f64> = x.iter().map(|xi| bf.eval(xi)).collect();
                if col.iter().map(|v| v * v).sum::<f64>() > 1e-20 {
                    self.basis.push(bf);
                }
            }
            // Refit OLS on the expanded basis and rebuild Q + residual.
            let design = self.design(x);
            self.coef = lstsq(&design, y);
            let pred = design.matvec(&self.coef);
            resid = y.iter().zip(&pred).map(|(a, b)| a - b).collect();
            q_cols = orthonormal_columns(&design);
        }
    }

    /// Estimated SSE reduction from adding the hinge pair
    /// `parent * max(0, ±(x_var - knot))`, via projection of the residual on
    /// the pair's components orthogonalized against the current basis.
    fn sse_drop(
        &self,
        x: &[Vec<f64>],
        pact: &[f64],
        var: usize,
        knot: f64,
        q_cols: &[Vec<f64>],
        resid: &[f64],
    ) -> f64 {
        let n = x.len();
        let mut g1 = vec![0.0; n];
        let mut g2 = vec![0.0; n];
        for (i, xi) in x.iter().enumerate() {
            let v = xi[var] - knot;
            g1[i] = pact[i] * v.max(0.0);
            g2[i] = pact[i] * (-v).max(0.0);
        }
        let mut drop = 0.0;
        let mut extra: Vec<Vec<f64>> = Vec::with_capacity(1);
        for g in [&mut g1, &mut g2] {
            // Orthogonalize against current basis and previously added column.
            for q in q_cols.iter().chain(extra.iter()) {
                let proj: f64 = q.iter().zip(g.iter()).map(|(a, b)| a * b).sum();
                for (gi, qi) in g.iter_mut().zip(q) {
                    *gi -= proj * qi;
                }
            }
            let norm_sq: f64 = g.iter().map(|v| v * v).sum();
            if norm_sq > 1e-20 {
                let norm = norm_sq.sqrt();
                for gi in g.iter_mut() {
                    *gi /= norm;
                }
                let r_proj: f64 = g.iter().zip(resid).map(|(a, b)| a * b).sum();
                drop += r_proj * r_proj;
                extra.push(g.clone());
            }
        }
        drop
    }

    /// Backward pass: GCV-driven pruning, keeping the best subset seen.
    fn backward(&mut self, x: &[Vec<f64>], y: &[f64]) {
        let n = x.len();
        let full_design = self.design(x);
        // Work in Gram form: candidate deletions are cheap m×m solves.
        let gram = full_design.gram();
        let bty = full_design.matvec_t(y);
        let yty: f64 = y.iter().map(|v| v * v).sum();
        let m = self.basis.len();

        let sse_of = |keep: &[usize]| -> (f64, Vec<f64>) {
            let k = keep.len();
            let mut g = Matrix::zeros(k, k);
            let mut b = vec![0.0; k];
            for (a, &ia) in keep.iter().enumerate() {
                b[a] = bty[ia];
                for (c, &ic) in keep.iter().enumerate() {
                    g[(a, c)] = gram[(ia, ic)];
                }
            }
            // Ridge-stabilized solve mirrors lstsq's rank handling.
            let scale = (0..k).map(|i| g[(i, i)]).fold(0.0_f64, f64::max).max(1.0);
            for i in 0..k {
                g[(i, i)] += scale * 1e-12;
            }
            let coef = cpr_tensor::linalg::solve_spd_jittered(&g, &b);
            let sse = (yty - coef.iter().zip(&b).map(|(a, c)| a * c).sum::<f64>()).max(0.0);
            (sse, coef)
        };

        let mut current: Vec<usize> = (0..m).collect();
        let (sse_full, coef_full) = sse_of(&current);
        let mut best_gcv = self.gcv(sse_full, n, current.len());
        let mut best_set = current.clone();
        let mut best_coef = coef_full;
        while current.len() > 1 {
            // Remove the non-intercept term whose deletion minimizes SSE.
            let mut round_best: Option<(usize, f64, Vec<f64>)> = None;
            for (pos, &term) in current.iter().enumerate() {
                if term == 0 {
                    continue; // never drop the intercept
                }
                let mut cand = current.clone();
                cand.remove(pos);
                let (sse, coef) = sse_of(&cand);
                if round_best.as_ref().is_none_or(|(_, s, _)| sse < *s) {
                    round_best = Some((pos, sse, coef));
                }
            }
            let Some((pos, sse, coef)) = round_best else {
                break;
            };
            current.remove(pos);
            let gcv = self.gcv(sse, n, current.len());
            if gcv < best_gcv {
                best_gcv = gcv;
                best_set = current.clone();
                best_coef = coef;
            }
        }
        self.basis = best_set.iter().map(|&i| self.basis[i].clone()).collect();
        self.coef = best_coef;
    }
}

/// Quantile-subsampled candidate knots for `var` within the parent's support.
fn candidate_knots(x: &[Vec<f64>], pact: &[f64], var: usize, max_knots: usize) -> Vec<f64> {
    let mut vals: Vec<f64> = x
        .iter()
        .zip(pact)
        .filter(|(_, &a)| a > 0.0)
        .map(|(xi, _)| xi[var])
        .collect();
    if vals.is_empty() {
        return Vec::new();
    }
    vals.sort_by(|a, b| a.partial_cmp(b).expect("NaN feature value"));
    vals.dedup();
    if vals.len() <= max_knots {
        return vals;
    }
    let stride = vals.len() as f64 / max_knots as f64;
    (0..max_knots)
        .map(|i| vals[((i as f64 + 0.5) * stride) as usize])
        .collect()
}

/// Gram-Schmidt orthonormal columns of a design matrix (skipping dependent
/// columns).
fn orthonormal_columns(design: &Matrix) -> Vec<Vec<f64>> {
    let (n, m) = design.shape();
    let mut cols = Vec::with_capacity(m);
    for j in 0..m {
        let mut c = design.col(j);
        for q in &cols {
            let proj: f64 = c.iter().zip(q as &Vec<f64>).map(|(a, b)| a * b).sum();
            for (ci, qi) in c.iter_mut().zip(q) {
                *ci -= proj * qi;
            }
        }
        let norm: f64 = c.iter().map(|v| v * v).sum::<f64>().sqrt();
        if norm > 1e-10 * (n as f64).sqrt() {
            for ci in c.iter_mut() {
                *ci /= norm;
            }
            cols.push(c);
        }
    }
    cols
}

impl Regressor for Mars {
    fn fit(&mut self, x: &[Vec<f64>], y: &[f64]) {
        assert_eq!(x.len(), y.len());
        assert!(!x.is_empty(), "MARS: empty training set");
        self.forward(x, y);
        self.backward(x, y);
    }

    fn predict(&self, x: &[f64]) -> f64 {
        assert!(!self.basis.is_empty(), "MARS: predict before fit");
        self.basis
            .iter()
            .zip(&self.coef)
            .map(|(b, c)| c * b.eval(x))
            .sum()
    }

    fn size_bytes(&self) -> usize {
        // Each hinge: feature + knot + sign; each term: coefficient.
        let hinges: usize = self.basis.iter().map(|b| b.hinges.len()).sum();
        hinges * 24 + self.coef.len() * 8
    }

    fn name(&self) -> &'static str {
        "MARS"
    }
}

/// Convenience: fit a univariate MARS spline to `(t, v)` pairs — the §5.3
/// extrapolation helper (inputs are already log-transformed by the caller).
pub fn fit_univariate_spline(t: &[f64], v: &[f64], max_terms: usize) -> Mars {
    assert_eq!(t.len(), v.len());
    let x: Vec<Vec<f64>> = t.iter().map(|&a| vec![a]).collect();
    let mut mars = Mars::new(MarsConfig {
        max_terms: max_terms.max(3),
        max_degree: 1,
        max_knots: t.len().min(32),
        penalty: 2.0,
    });
    mars.fit(&x, v);
    mars
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hinge_eval() {
        let h = Hinge {
            feature: 0,
            knot: 2.0,
            positive: true,
        };
        assert_eq!(h.eval(&[3.5]), 1.5);
        assert_eq!(h.eval(&[1.0]), 0.0);
        let r = Hinge {
            feature: 0,
            knot: 2.0,
            positive: false,
        };
        assert_eq!(r.eval(&[1.0]), 1.0);
        assert_eq!(r.eval(&[3.0]), 0.0);
    }

    #[test]
    fn fits_single_hinge_function() {
        // y = 2*max(0, x-5): MARS should nail this.
        let x: Vec<Vec<f64>> = (0..100).map(|i| vec![i as f64 / 10.0]).collect();
        let y: Vec<f64> = x.iter().map(|v| 2.0 * (v[0] - 5.0).max(0.0)).collect();
        let mut mars = Mars::new(MarsConfig::default());
        mars.fit(&x, &y);
        let mse: f64 = x
            .iter()
            .zip(&y)
            .map(|(xi, yi)| (mars.predict(xi) - yi).powi(2))
            .sum::<f64>()
            / y.len() as f64;
        assert!(mse < 1e-3, "mse {mse}");
    }

    #[test]
    fn fits_linear_function_exactly_enough() {
        let x: Vec<Vec<f64>> = (0..50).map(|i| vec![i as f64]).collect();
        let y: Vec<f64> = x.iter().map(|v| 3.0 * v[0] + 2.0).collect();
        let mut mars = Mars::new(MarsConfig::default());
        mars.fit(&x, &y);
        for (xi, yi) in x.iter().zip(&y) {
            assert!((mars.predict(xi) - yi).abs() < 0.5, "at {xi:?}");
        }
    }

    #[test]
    fn interaction_terms_when_degree_allows() {
        // y = x0 * x1 needs degree-2 products of hinges.
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..15 {
            for j in 0..15 {
                x.push(vec![i as f64, j as f64]);
                y.push((i * j) as f64);
            }
        }
        let mut deg2 = Mars::new(MarsConfig {
            max_degree: 2,
            max_terms: 25,
            ..Default::default()
        });
        deg2.fit(&x, &y);
        let mse2: f64 = x
            .iter()
            .zip(&y)
            .map(|(xi, yi)| (deg2.predict(xi) - yi).powi(2))
            .sum::<f64>()
            / y.len() as f64;
        let mut deg1 = Mars::new(MarsConfig {
            max_degree: 1,
            max_terms: 25,
            ..Default::default()
        });
        deg1.fit(&x, &y);
        let mse1: f64 = x
            .iter()
            .zip(&y)
            .map(|(xi, yi)| (deg1.predict(xi) - yi).powi(2))
            .sum::<f64>()
            / y.len() as f64;
        assert!(mse2 < mse1 * 0.5, "degree-2 {mse2} vs degree-1 {mse1}");
    }

    #[test]
    fn backward_pass_prunes_useless_terms() {
        // Constant target: everything except the intercept should be pruned.
        let x: Vec<Vec<f64>> = (0..30).map(|i| vec![i as f64]).collect();
        let y = vec![5.0; 30];
        let mut mars = Mars::new(MarsConfig::default());
        mars.fit(&x, &y);
        assert_eq!(mars.basis().len(), 1, "kept {:?}", mars.basis());
        assert!((mars.predict(&[13.0]) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn extrapolates_linearly_beyond_range() {
        // Piecewise-linear extension: beyond the data, prediction follows the
        // last linear piece — the property §5.3 relies on.
        let x: Vec<Vec<f64>> = (0..50).map(|i| vec![i as f64 / 5.0]).collect();
        let y: Vec<f64> = x.iter().map(|v| 2.0 * v[0] + 1.0).collect();
        let mut mars = Mars::new(MarsConfig::default());
        mars.fit(&x, &y);
        let p = mars.predict(&[20.0]);
        assert!((p - 41.0).abs() < 2.5, "extrapolated {p}, want ~41");
    }

    #[test]
    fn univariate_spline_helper() {
        let t: Vec<f64> = (1..40).map(|i| (i as f64).ln()).collect();
        let v: Vec<f64> = t.iter().map(|&a| 1.5 * a + 0.3).collect();
        let spline = fit_univariate_spline(&t, &v, 10);
        let q = 60.0_f64.ln();
        assert!((spline.predict(&[q]) - (1.5 * q + 0.3)).abs() < 0.2);
    }

    #[test]
    fn size_bytes_reflects_terms() {
        let x: Vec<Vec<f64>> = (0..100).map(|i| vec![i as f64 / 10.0]).collect();
        let y: Vec<f64> = x
            .iter()
            .map(|v| (v[0] - 3.0).max(0.0) + (7.0 - v[0]).max(0.0))
            .collect();
        let mut mars = Mars::new(MarsConfig::default());
        mars.fit(&x, &y);
        assert!(mars.size_bytes() >= mars.basis().len() * 8);
        assert!(mars.size_bytes() < 10_000);
    }
}
