//! Property-based tests for the baseline regressors.

use cpr_baselines::{
    Forest, ForestConfig, ForestKind, GaussianProcess, GpConfig, Knn, KnnConfig, Mars, MarsConfig,
    Regressor, SgrConfig, SparseGridRegression,
};
use proptest::prelude::*;

/// Deterministic pseudo-random 1-D training set from a seed.
fn dataset(seed: u64, n: usize) -> (Vec<Vec<f64>>, Vec<f64>) {
    let mut x = Vec::with_capacity(n);
    let mut y = Vec::with_capacity(n);
    let mut state = seed.wrapping_mul(2654435761).wrapping_add(12345);
    for i in 0..n {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let jitter = (state >> 33) as f64 / (1u64 << 31) as f64 - 1.0;
        let v = i as f64 / n as f64 * 8.0;
        x.push(vec![v]);
        y.push((v * 0.7).sin() + 0.3 * v + 0.05 * jitter);
    }
    (x, y)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn knn_prediction_within_target_hull(seed in 0u64..200, k in 1usize..6) {
        let (x, y) = dataset(seed, 80);
        let mut knn = Knn::new(KnnConfig { k, weighted: true });
        knn.fit(&x, &y);
        let (lo, hi) = y.iter().fold((f64::INFINITY, f64::NEG_INFINITY), |(a, b), &v| {
            (a.min(v), b.max(v))
        });
        for q in [-5.0, 0.0, 3.3, 7.9, 100.0] {
            let p = knn.predict(&[q]);
            // KNN averages training targets: predictions never leave the hull.
            prop_assert!(p >= lo - 1e-9 && p <= hi + 1e-9, "{p} outside [{lo}, {hi}]");
        }
    }

    #[test]
    fn forest_predictions_within_hull(seed in 0u64..100) {
        let (x, y) = dataset(seed, 100);
        for kind in [ForestKind::RandomForest, ForestKind::ExtraTrees] {
            let mut f = Forest::new(ForestConfig { kind, n_trees: 8, seed, ..Default::default() });
            f.fit(&x, &y);
            let (lo, hi) = y.iter().fold((f64::INFINITY, f64::NEG_INFINITY), |(a, b), &v| {
                (a.min(v), b.max(v))
            });
            for q in [-10.0, 4.0, 50.0] {
                let p = f.predict(&[q]);
                prop_assert!(p >= lo - 1e-9 && p <= hi + 1e-9);
            }
        }
    }

    #[test]
    fn gp_interpolates_with_low_noise(seed in 0u64..50) {
        let (x, y) = dataset(seed, 40);
        let mut gp = GaussianProcess::new(GpConfig { noise: 1e-8, ..Default::default() });
        gp.fit(&x, &y);
        for (xi, yi) in x.iter().zip(&y).step_by(7) {
            prop_assert!((gp.predict(xi) - yi).abs() < 0.05, "GP off at {xi:?}");
        }
    }

    #[test]
    fn mars_gcv_never_keeps_more_terms_than_cap(
        seed in 0u64..50,
        max_terms in 5usize..20,
    ) {
        let (x, y) = dataset(seed, 120);
        let mut mars = Mars::new(MarsConfig { max_terms, ..Default::default() });
        mars.fit(&x, &y);
        prop_assert!(mars.basis().len() <= max_terms);
        prop_assert!(mars.predict(&[4.0]).is_finite());
    }

    #[test]
    fn sgr_residual_bounded_by_target_variance(seed in 0u64..50) {
        let (x, y) = dataset(seed, 150);
        let mut sgr = SparseGridRegression::new(SgrConfig { level: 4, ..Default::default() });
        sgr.fit(&x, &y);
        let var = {
            let m = y.iter().sum::<f64>() / y.len() as f64;
            y.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / y.len() as f64
        };
        let mse = x
            .iter()
            .zip(&y)
            .map(|(xi, yi)| (sgr.predict(xi) - yi).powi(2))
            .sum::<f64>()
            / y.len() as f64;
        // Regression on its own training set must beat the mean predictor.
        prop_assert!(mse < var, "SGR mse {mse} >= variance {var}");
    }

    #[test]
    fn all_size_estimates_positive_after_fit(seed in 0u64..20) {
        let (x, y) = dataset(seed, 60);
        let mut models: Vec<Box<dyn Regressor>> = vec![
            Box::new(Knn::new(KnnConfig::default())),
            Box::new(Forest::new(ForestConfig { n_trees: 4, seed, ..Default::default() })),
            Box::new(Mars::new(MarsConfig::default())),
            Box::new(SparseGridRegression::new(SgrConfig { level: 3, ..Default::default() })),
        ];
        for m in &mut models {
            m.fit(&x, &y);
            prop_assert!(m.size_bytes() > 0, "{} reports zero size", m.name());
            prop_assert!(m.predict(&[2.0]).is_finite());
        }
    }
}
