//! Streamed-vs-reference sweep equivalence: the streamed fit paths
//! (packed `ModeStream` layouts + partial-product `SweepCache` +
//! rank-monomorphized kernels) must produce **bitwise identical** factors
//! and traces to the retained naive reference sweeps, for random
//! dimensions, ranks (monomorphized and generic), and observation masks —
//! and stay bitwise identical across thread counts. This is the fit-side
//! analog of `crates/core/tests/plan_equivalence.rs`.

use cpr_completion::{
    als, als_reference, amn, amn_reference, ccd, ccd_reference, init_positive, tucker_als,
    tucker_als_reference, AlsConfig, AmnConfig, CcdConfig, StopRule, TuckerConfig,
};
use cpr_tensor::{CpDecomp, SparseTensor, TuckerDecomp};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rayon::{ThreadPool, ThreadPoolBuilder};

fn pool(n: usize) -> ThreadPool {
    ThreadPoolBuilder::new().num_threads(n).build().unwrap()
}

/// Random mask of a random positive low-rank truth, at least one entry.
fn random_obs(dims: &[usize], frac: f64, seed: u64) -> SparseTensor {
    let truth = CpDecomp::random(dims, 2, 0.5, 1.5, seed);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xabcdef);
    let mut obs = SparseTensor::new(dims);
    let total: usize = dims.iter().product();
    let mut idx = vec![0usize; dims.len()];
    for _ in 0..((total as f64 * frac) as usize).max(1) {
        for (j, &dj) in dims.iter().enumerate() {
            idx[j] = rng.gen_range(0..dj);
        }
        obs.push(&idx, truth.eval(&idx) + 0.1);
    }
    obs
}

/// Random small dims of random order 2..=4.
fn random_dims(seed: u64) -> Vec<usize> {
    let mut rng = StdRng::seed_from_u64(seed);
    let order = rng.gen_range(2..=4usize);
    (0..order).map(|_| rng.gen_range(2..=6usize)).collect()
}

fn assert_cp_bitwise(a: &CpDecomp, b: &CpDecomp, what: &str) {
    for m in 0..a.order() {
        for (k, (x, y)) in a
            .factor(m)
            .as_slice()
            .iter()
            .zip(b.factor(m).as_slice())
            .enumerate()
        {
            assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "{what}: factor {m} entry {k}: {x} vs {y}"
            );
        }
    }
}

fn assert_trace_bitwise(a: &[f64], b: &[f64], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: sweep counts");
    for (s, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "{what}: sweep {s}: {x} vs {y}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// ALS: streamed == reference, bitwise, at 1 and 4 threads. Ranks span
    /// the monomorphized set {2, 4, 8, 16} and generic odd ranks.
    #[test]
    fn als_streamed_bitwise_matches_reference(
        seed in 0u64..1000,
        rank_pick in 0usize..6,
        frac in 0.1..0.8f64,
    ) {
        let rank = [1, 2, 3, 4, 8, 16][rank_pick];
        let dims = random_dims(seed);
        let obs = random_obs(&dims, frac, seed + 1);
        let cfg = AlsConfig {
            lambda: 1e-6,
            stop: StopRule { max_sweeps: 4, tol: -1.0 },
            scale_by_count: true,
        };
        let init = CpDecomp::random(&dims, rank, 0.0, 1.0, seed + 2);
        let run = |streamed: bool, threads: usize| {
            let mut cp = init.clone();
            let trace = pool(threads).install(|| if streamed {
                als(&mut cp, &obs, &cfg)
            } else {
                als_reference(&mut cp, &obs, &cfg)
            });
            (cp, trace)
        };
        let (s1, t1) = run(true, 1);
        let (s4, t4) = run(true, 4);
        let (r1, tr) = run(false, 1);
        assert_cp_bitwise(&s1, &r1, "ALS streamed vs reference");
        assert_trace_bitwise(&t1.objective, &tr.objective, "ALS trace");
        assert_cp_bitwise(&s1, &s4, "ALS 1 vs 4 threads");
        assert_trace_bitwise(&t1.objective, &t4.objective, "ALS threads trace");
    }

    /// AMN: streamed == reference, bitwise, at 1 and 4 threads.
    #[test]
    fn amn_streamed_bitwise_matches_reference(
        seed in 0u64..1000,
        rank_pick in 0usize..4,
    ) {
        let rank = [1, 2, 3, 4][rank_pick];
        let dims = random_dims(seed);
        let obs = random_obs(&dims, 0.4, seed + 1);
        let gm = (obs.values().iter().map(|v| v.ln()).sum::<f64>() / obs.nnz() as f64).exp();
        let cfg = AmnConfig {
            lambda: 1e-6,
            stop: StopRule { max_sweeps: 4, tol: -1.0 },
            final_sweeps: 4,
            ..Default::default()
        };
        let init = init_positive(&dims, rank, gm, seed + 2);
        let run = |streamed: bool, threads: usize| {
            let mut cp = init.clone();
            let trace = pool(threads).install(|| if streamed {
                amn(&mut cp, &obs, &cfg)
            } else {
                amn_reference(&mut cp, &obs, &cfg)
            });
            (cp, trace)
        };
        let (s1, t1) = run(true, 1);
        let (s4, t4) = run(true, 4);
        let (r1, tr) = run(false, 1);
        assert_cp_bitwise(&s1, &r1, "AMN streamed vs reference");
        assert_trace_bitwise(&t1.objective, &tr.objective, "AMN trace");
        assert_cp_bitwise(&s1, &s4, "AMN 1 vs 4 threads");
        assert_trace_bitwise(&t1.objective, &t4.objective, "AMN threads trace");
    }

    /// CCD: streamed == reference bitwise (CCD is sequential; a wide pool
    /// must not change anything either).
    #[test]
    fn ccd_streamed_bitwise_matches_reference(
        seed in 0u64..1000,
        rank_pick in 0usize..5,
    ) {
        let rank = [1, 2, 3, 4, 8][rank_pick];
        let dims = random_dims(seed);
        let obs = random_obs(&dims, 0.5, seed + 1);
        let cfg = CcdConfig {
            lambda: 1e-6,
            stop: StopRule { max_sweeps: 4, tol: -1.0 },
            scale_by_count: true,
        };
        let init = CpDecomp::random(&dims, rank, 0.1, 1.0, seed + 2);
        let mut s = init.clone();
        let ts = ccd(&mut s, &obs, &cfg);
        let mut r = init.clone();
        let tr = ccd_reference(&mut r, &obs, &cfg);
        assert_cp_bitwise(&s, &r, "CCD streamed vs reference");
        assert_trace_bitwise(&ts.objective, &tr.objective, "CCD trace");
        let mut w = init.clone();
        let tw = pool(4).install(|| ccd(&mut w, &obs, &cfg));
        assert_cp_bitwise(&s, &w, "CCD pool width");
        assert_trace_bitwise(&ts.objective, &tw.objective, "CCD pool trace");
    }

    /// Tucker-ALS: streamed == reference, bitwise, at 1 and 4 threads
    /// (factors, core, and traces).
    #[test]
    fn tucker_streamed_bitwise_matches_reference(
        seed in 0u64..1000,
        frac in 0.2..0.8f64,
    ) {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5151);
        let order = rng.gen_range(2..=3usize);
        let dims: Vec<usize> = (0..order).map(|_| rng.gen_range(3..=6usize)).collect();
        let ranks: Vec<usize> = (0..order).map(|_| rng.gen_range(1..=3usize)).collect();
        let obs = random_obs(&dims, frac, seed + 1);
        let cfg = TuckerConfig {
            lambda: 1e-6,
            stop: StopRule { max_sweeps: 3, tol: -1.0 },
        };
        let init = TuckerDecomp::random(&dims, &ranks, 0.1, 1.0, seed + 2);
        let run = |streamed: bool, threads: usize| {
            let mut t = init.clone();
            let trace = pool(threads).install(|| if streamed {
                tucker_als(&mut t, &obs, &cfg)
            } else {
                tucker_als_reference(&mut t, &obs, &cfg)
            });
            (t, trace)
        };
        let (s1, t1) = run(true, 1);
        let (s4, t4) = run(true, 4);
        let (r1, tr) = run(false, 1);
        for m in 0..order {
            for (x, y) in s1.factor(m).as_slice().iter().zip(r1.factor(m).as_slice()) {
                assert_eq!(x.to_bits(), y.to_bits(), "Tucker factor {m}");
            }
            for (x, y) in s1.factor(m).as_slice().iter().zip(s4.factor(m).as_slice()) {
                assert_eq!(x.to_bits(), y.to_bits(), "Tucker factor {m} threads");
            }
        }
        for (x, y) in s1.core().as_slice().iter().zip(r1.core().as_slice()) {
            assert_eq!(x.to_bits(), y.to_bits(), "Tucker core");
        }
        for (x, y) in s1.core().as_slice().iter().zip(s4.core().as_slice()) {
            assert_eq!(x.to_bits(), y.to_bits(), "Tucker core threads");
        }
        assert_trace_bitwise(&t1.objective, &tr.objective, "Tucker trace");
        assert_trace_bitwise(&t1.objective, &t4.objective, "Tucker threads trace");
    }
}
