//! Property-based tests for the tensor-completion optimizers.

use cpr_completion::{als, amn, ccd, init_positive, AlsConfig, AmnConfig, CcdConfig, StopRule};
use cpr_tensor::{CpDecomp, SparseTensor};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn sampled_obs(truth: &CpDecomp, frac: f64, seed: u64) -> SparseTensor {
    let dense = truth.to_dense();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut obs = SparseTensor::new(dense.dims());
    for (idx, v) in dense.iter_indexed() {
        if rng.gen::<f64>() < frac {
            obs.push(&idx, v);
        }
    }
    if obs.nnz() == 0 {
        obs.push(
            &vec![0; dense.dims().len()],
            dense.get(&vec![0; dense.dims().len()]),
        );
    }
    obs
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn als_objective_monotone_for_any_seed(
        seed in 0u64..500,
        rank in 1usize..4,
        frac in 0.3..1.0f64,
    ) {
        let truth = CpDecomp::random(&[5, 4, 4], 2, 0.3, 1.2, seed);
        let obs = sampled_obs(&truth, frac, seed + 1);
        let mut model = CpDecomp::random(&[5, 4, 4], rank, 0.0, 1.0, seed + 2);
        let cfg = AlsConfig {
            lambda: 1e-6,
            stop: StopRule { max_sweeps: 25, tol: 0.0 },
            scale_by_count: true,
        };
        let trace = als(&mut model, &obs, &cfg);
        // With the paper's per-row 1/|Ω_i| scaling, each row update is
        // monotone in its own scaled objective; the *global* Eq. 3 objective
        // can tick up by convergence-level amounts when fiber observation
        // counts differ. Allow 1% slack.
        prop_assert!(trace.is_monotone(1e-2), "{:?}", trace.objective);
        prop_assert!(!model.factor(0).has_non_finite());
    }

    #[test]
    fn ccd_objective_monotone_for_any_seed(
        seed in 0u64..500,
        rank in 1usize..3,
    ) {
        let truth = CpDecomp::random(&[4, 4, 3], 2, 0.3, 1.2, seed);
        let obs = sampled_obs(&truth, 0.8, seed + 1);
        let mut model = CpDecomp::random(&[4, 4, 3], rank, 0.1, 1.0, seed + 2);
        let cfg = CcdConfig {
            lambda: 1e-6,
            stop: StopRule { max_sweeps: 15, tol: 0.0 },
            scale_by_count: true,
        };
        let trace = ccd(&mut model, &obs, &cfg);
        prop_assert!(trace.is_monotone(1e-9), "{:?}", trace.objective);
    }

    #[test]
    fn amn_preserves_positivity_for_any_seed(
        seed in 0u64..300,
        rank in 1usize..3,
    ) {
        // Positive separable truth with varying scale.
        let scale = 10.0_f64.powf((seed % 7) as f64 - 3.0);
        let truth = CpDecomp::random(&[4, 4, 3], 1, 0.5, 2.0, seed);
        let mut obs = SparseTensor::new(&[4, 4, 3]);
        for (idx, v) in truth.to_dense().iter_indexed() {
            obs.push(&idx, v * scale);
        }
        let gm = (obs.values().iter().map(|v| v.ln()).sum::<f64>()
            / obs.nnz() as f64)
            .exp();
        let mut cp = init_positive(&[4, 4, 3], rank, gm, seed + 1);
        let cfg = AmnConfig {
            lambda: 1e-7,
            stop: StopRule { max_sweeps: 30, tol: 1e-8 },
            ..Default::default()
        };
        amn(&mut cp, &obs, &cfg);
        prop_assert!(cp.is_strictly_positive());
        // Every completed entry must be positive too.
        for (idx, _) in truth.to_dense().iter_indexed() {
            prop_assert!(cp.eval(&idx) > 0.0);
        }
    }

    #[test]
    fn als_fixed_point_on_perfect_model(seed in 0u64..200) {
        // Feed ALS its own exact reconstruction: the objective must stay
        // (numerically) at the ridge floor from the very first sweep.
        let truth = CpDecomp::random(&[4, 4], 2, 0.2, 1.0, seed);
        let obs = SparseTensor::from_dense(&truth.to_dense());
        let mut model = truth.clone();
        let cfg = AlsConfig {
            lambda: 1e-12,
            stop: StopRule { max_sweeps: 3, tol: 0.0 },
            scale_by_count: true,
        };
        let trace = als(&mut model, &obs, &cfg);
        prop_assert!(trace.final_objective() < 1e-8, "{}", trace.final_objective());
    }
}
