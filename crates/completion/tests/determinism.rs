//! Determinism regression tests: a parallel sweep must produce **bitwise
//! identical** factors to the single-thread run.
//!
//! Row subproblems touch disjoint data and the sweep objectives are summed
//! sequentially in row order, so nothing in ALS/AMN/Tucker-ALS may depend
//! on the worker count. These tests pin that contract by running the same
//! fit under a 1-thread and a 4-thread pool (`ThreadPool::install`, the
//! same mechanism a `CPR_NUM_THREADS` override feeds) and comparing every
//! factor entry by bit pattern, plus the recorded objective traces.

use cpr_completion::{
    als, amn, ccd, init_positive, tucker_als, AlsConfig, AmnConfig, CcdConfig, StopRule,
    TuckerConfig,
};
use cpr_tensor::{CpDecomp, SparseTensor, TuckerDecomp};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rayon::{ThreadPool, ThreadPoolBuilder};

fn pool(n: usize) -> ThreadPool {
    ThreadPoolBuilder::new().num_threads(n).build().unwrap()
}

fn sampled_obs(dims: &[usize], rank: usize, frac: f64, seed: u64) -> SparseTensor {
    let truth = CpDecomp::random(dims, rank, 0.5, 1.5, seed);
    let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x9e3779b9));
    let mut obs = SparseTensor::new(dims);
    let mut idx = vec![0usize; dims.len()];
    let total: usize = dims.iter().product();
    for _ in 0..((total as f64 * frac) as usize).max(32) {
        for (j, &dj) in dims.iter().enumerate() {
            idx[j] = rng.gen_range(0..dj);
        }
        obs.push(&idx, truth.eval(&idx) + 0.1);
    }
    obs
}

fn assert_factors_bitwise_equal(a: &CpDecomp, b: &CpDecomp, what: &str) {
    assert_eq!(a.order(), b.order());
    for m in 0..a.order() {
        let (fa, fb) = (a.factor(m).as_slice(), b.factor(m).as_slice());
        assert_eq!(fa.len(), fb.len(), "{what}: factor {m} shape");
        for (k, (x, y)) in fa.iter().zip(fb).enumerate() {
            assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "{what}: factor {m} entry {k} differs: {x} vs {y}"
            );
        }
    }
}

fn assert_traces_bitwise_equal(a: &[f64], b: &[f64], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: sweep counts differ");
    for (s, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{what}: objective after sweep {s} differs: {x} vs {y}"
        );
    }
}

#[test]
fn als_is_bitwise_identical_across_thread_counts() {
    let obs = sampled_obs(&[13, 9, 11], 3, 0.3, 5);
    let cfg = AlsConfig {
        lambda: 1e-7,
        stop: StopRule {
            max_sweeps: 25,
            tol: 1e-12,
        },
        scale_by_count: true,
    };
    let fit = || {
        let mut cp = CpDecomp::random(&[13, 9, 11], 3, 0.0, 1.0, 17);
        let trace = als(&mut cp, &obs, &cfg);
        (cp, trace)
    };
    let (cp1, tr1) = pool(1).install(fit);
    let (cp4, tr4) = pool(4).install(fit);
    assert_factors_bitwise_equal(&cp1, &cp4, "ALS");
    assert_traces_bitwise_equal(&tr1.objective, &tr4.objective, "ALS");
    assert_eq!(tr1.converged, tr4.converged);
}

#[test]
fn amn_is_bitwise_identical_across_thread_counts() {
    let obs = sampled_obs(&[8, 7, 6], 2, 0.4, 9);
    let cfg = AmnConfig {
        lambda: 1e-6,
        stop: StopRule {
            max_sweeps: 8,
            tol: 1e-10,
        },
        ..Default::default()
    };
    let gm = (obs.values().iter().map(|v| v.ln()).sum::<f64>() / obs.nnz() as f64).exp();
    let fit = || {
        let mut cp = init_positive(&[8, 7, 6], 2, gm, 23);
        let trace = amn(&mut cp, &obs, &cfg);
        (cp, trace)
    };
    let (cp1, tr1) = pool(1).install(fit);
    let (cp4, tr4) = pool(4).install(fit);
    assert_factors_bitwise_equal(&cp1, &cp4, "AMN");
    assert_traces_bitwise_equal(&tr1.objective, &tr4.objective, "AMN");
}

#[test]
fn tucker_als_is_bitwise_identical_across_thread_counts() {
    let obs = sampled_obs(&[8, 8, 7], 2, 0.35, 13);
    let cfg = TuckerConfig {
        lambda: 1e-7,
        stop: StopRule {
            max_sweeps: 12,
            tol: 1e-12,
        },
    };
    let fit = || {
        let mut t = TuckerDecomp::random(&[8, 8, 7], &[2, 2, 2], 0.1, 1.0, 31);
        let trace = tucker_als(&mut t, &obs, &cfg);
        (t, trace)
    };
    let (t1, tr1) = pool(1).install(fit);
    let (t4, tr4) = pool(4).install(fit);
    for m in 0..t1.order() {
        for (x, y) in t1.factor(m).as_slice().iter().zip(t4.factor(m).as_slice()) {
            assert_eq!(x.to_bits(), y.to_bits(), "Tucker factor {m}");
        }
    }
    for (x, y) in t1.core().as_slice().iter().zip(t4.core().as_slice()) {
        assert_eq!(x.to_bits(), y.to_bits(), "Tucker core");
    }
    assert_traces_bitwise_equal(&tr1.objective, &tr4.objective, "Tucker");
}

#[test]
fn ccd_is_unaffected_by_pool_width() {
    // CCD is inherently sequential; installing a wide pool must not change
    // anything it computes.
    let obs = sampled_obs(&[7, 6, 5], 2, 0.5, 19);
    let cfg = CcdConfig {
        lambda: 1e-7,
        stop: StopRule {
            max_sweeps: 10,
            tol: 1e-12,
        },
        scale_by_count: true,
    };
    let fit = || {
        let mut cp = CpDecomp::random(&[7, 6, 5], 2, 0.1, 1.0, 37);
        let trace = ccd(&mut cp, &obs, &cfg);
        (cp, trace)
    };
    let (cp1, tr1) = pool(1).install(fit);
    let (cp4, tr4) = pool(4).install(fit);
    assert_factors_bitwise_equal(&cp1, &cp4, "CCD");
    assert_traces_bitwise_equal(&tr1.objective, &tr4.objective, "CCD");
}
