//! Alternating least squares for tensor completion (paper §4.2.1).
//!
//! One sweep fixes all but one factor matrix and solves, independently for
//! each row `i` of the free factor, the ridge-regularized least-squares
//! subproblem
//!
//! ```text
//!   min_u  (1/|Ω_i|) Σ_{(..) ∈ Ω_i} (t_obs - zᵀu)²  +  λ ‖u‖²
//! ```
//!
//! where `z` is the Hadamard product of the other factors' rows at the
//! observation's multi-index. Row subproblems touch disjoint data, so each
//! sweep parallelizes over rows with Rayon. The per-sweep arithmetic cost is
//! `O((Σ_j I_j) R³ + |Ω| d R²)`, matching the complexity the paper cites.

use crate::convergence::{StopRule, Trace};
use cpr_tensor::linalg::solve_spd_jittered_into;
use cpr_tensor::{CpDecomp, Matrix, ModeIndex, SparseTensor};
use rayon::prelude::*;

/// ALS configuration.
#[derive(Debug, Clone, Copy)]
pub struct AlsConfig {
    /// Ridge regularization λ (paper sweeps 1e-6..1e-3).
    pub lambda: f64,
    /// Stopping rule.
    pub stop: StopRule,
    /// Scale each row's data term by `1/|Ω_i|` (the paper's row objective).
    /// When false the raw sum is used, matching classic CP-WOPT.
    pub scale_by_count: bool,
}

impl Default for AlsConfig {
    fn default() -> Self {
        Self {
            lambda: 1e-5,
            stop: StopRule::default(),
            scale_by_count: true,
        }
    }
}

/// Run ALS tensor completion, updating `cp` in place; returns the per-sweep
/// objective trace (Eq. 3 with least-squares loss).
///
/// The per-sweep objective is **fused into the last mode update**: every
/// observation belongs to exactly one row of the final mode, and once that
/// row is solved its data loss follows algebraically from the normal
/// equations already accumulated for the solve (`uᵀGu − 2uᵀr + Σt²`), so no
/// second `O(|Ω| d R)` pass over the observations is needed. Per-row losses
/// are summed sequentially in row order, keeping the trace — and therefore
/// the early-stopping decision — bitwise independent of the thread count.
pub fn als(cp: &mut CpDecomp, obs: &SparseTensor, config: &AlsConfig) -> Trace {
    assert_eq!(
        cp.dims(),
        obs.dims(),
        "ALS: model/observation shape mismatch"
    );
    let d = cp.order();
    let rank = cp.rank();
    // Precompute per-mode inverted observation indices once.
    let mode_indices: Vec<ModeIndex> = (0..d).map(|m| obs.mode_index(m)).collect();

    let mut trace = Trace::default();
    let mut prev = objective(cp, obs, config.lambda);
    for _sweep in 0..config.stop.max_sweeps {
        let mut data_loss = 0.0;
        for (mode, mi) in mode_indices.iter().enumerate() {
            let fused = mode + 1 == d;
            let loss = update_mode(cp, obs, mode, mi, rank, config, fused);
            if fused {
                data_loss = loss;
            }
        }
        let reg: f64 = cp.factors().iter().map(|f| f.fro_norm_sq()).sum();
        let g = data_loss + config.lambda * reg;
        trace.objective.push(g);
        if config.stop.converged(prev, g) {
            trace.converged = true;
            break;
        }
        prev = g;
    }
    trace
}

/// Per-worker scratch for the ALS row solves: every buffer a row subproblem
/// needs, allocated once per parallel block instead of once per row.
struct RowScratch {
    gram: Matrix,
    chol: Matrix,
    rhs: Vec<f64>,
    z: Vec<f64>,
}

impl RowScratch {
    fn new(rank: usize) -> Self {
        Self {
            gram: Matrix::zeros(rank, rank),
            chol: Matrix::zeros(rank, rank),
            rhs: vec![0.0; rank],
            z: vec![0.0; rank],
        }
    }
}

/// Accumulate one row's normal equations: `gram += Σ z_e z_eᵀ` (full
/// square), `rhs += Σ t_e z_e`; returns `Σ t_e²`.
///
/// A free function on purpose: the `&mut` slice arguments carry noalias
/// guarantees across the call boundary, which is what lets LLVM keep the
/// slice pointers in registers and vectorize the branchless rank-1 update —
/// the same loops written against fields of a scratch struct inside the
/// worker closure compile to scalar code with reloads (the struct's address
/// escapes into the iterator machinery, defeating alias analysis). This is
/// the hottest loop of an ALS sweep; the full-square update beats the
/// triangle-with-zero-skip variant once vectorized, and the symmetrize
/// pass disappears.
fn accumulate_normal_equations(
    frozen: &CpDecomp,
    obs: &SparseTensor,
    entries: &[u32],
    mode: usize,
    gram: &mut [f64],
    rhs: &mut [f64],
    z: &mut [f64],
) -> f64 {
    let rank = rhs.len();
    gram.fill(0.0);
    rhs.fill(0.0);
    let mut t2 = 0.0;
    for &e in entries {
        let e = e as usize;
        frozen.leave_one_out_row(obs.index(e), mode, z);
        let t = obs.value(e);
        t2 += t * t;
        for (r, &za) in rhs.iter_mut().zip(&*z) {
            *r += t * za;
        }
        for (grow, &za) in gram.chunks_exact_mut(rank).zip(&*z) {
            for (g, &zb) in grow.iter_mut().zip(&*z) {
                *g += za * zb;
            }
        }
    }
    t2
}

/// One mode update: solve all row subproblems of `mode` in parallel,
/// writing new rows directly into the factor (no intermediate `Vec<Vec<_>>`).
/// Returns the post-update data loss `Σ (t̂ - t)²` over the mode's entries
/// when `fused` (the last mode of a sweep), else 0.
fn update_mode(
    cp: &mut CpDecomp,
    obs: &SparseTensor,
    mode: usize,
    mi: &ModeIndex,
    rank: usize,
    config: &AlsConfig,
    fused: bool,
) -> f64 {
    // Borrow-split: move the free factor out, read the frozen modes through
    // `&*cp` (leave-one-out never touches `mode`), restore afterwards.
    let mut factor = cp.take_factor(mode);
    let frozen: &CpDecomp = cp;
    let lambda = config.lambda;
    let scale_by_count = config.scale_by_count;

    let row_losses: Vec<f64> = factor
        .as_mut_slice()
        .par_chunks_mut(rank)
        .enumerate()
        .map_init(
            || RowScratch::new(rank),
            |s, (i, row)| {
                let entries = mi.row(i);
                if entries.is_empty() {
                    // Unobserved fiber: the row objective reduces to λ‖u‖²,
                    // whose minimizer is the zero row. With mean-centered
                    // data (as the CPR layer trains) this makes unobserved
                    // slices predict the global mean — a neutral fallback —
                    // instead of freezing whatever random initialization
                    // happened to be there.
                    row.fill(0.0);
                    return 0.0;
                }
                let t2 = accumulate_normal_equations(
                    frozen,
                    obs,
                    entries,
                    mode,
                    s.gram.as_mut_slice(),
                    &mut s.rhs,
                    &mut s.z,
                );
                // Scaling + ridge.
                let scale = if scale_by_count {
                    1.0 / entries.len() as f64
                } else {
                    1.0
                };
                s.gram.scale_mut(scale);
                for r in &mut s.rhs {
                    *r *= scale;
                }
                for a in 0..rank {
                    s.gram[(a, a)] += lambda;
                }
                // Solve straight into the factor row.
                solve_spd_jittered_into(&s.gram, &s.rhs, &mut s.chol, row);
                if !fused {
                    return 0.0;
                }
                // Fused objective, algebraically: the row's data loss is
                //   Σ_e (z_eᵀu − t_e)²  =  uᵀ G u − 2 uᵀ r + Σ t²
                // with G, r the *unscaled* normal equations — recovered from
                // the scaled+ridged system just solved (G'' = s·G + λI,
                // r' = s·r). O(R²) per row, no second pass over entries.
                // (Cancellation noise is ~1e-16·Σt², far below the trace
                // tolerances that consume this value.)
                let g = s.gram.as_slice();
                let u = &*row;
                let mut quad = 0.0;
                for (a, &ua) in u.iter().enumerate() {
                    let dot: f64 = g[a * rank..(a + 1) * rank]
                        .iter()
                        .zip(u)
                        .map(|(gv, &ub)| gv * ub)
                        .sum();
                    quad += ua * dot;
                }
                let unormsq: f64 = u.iter().map(|x| x * x).sum();
                let udotr: f64 = u.iter().zip(&s.rhs).map(|(a, b)| a * b).sum();
                (quad - lambda * unormsq - 2.0 * udotr) / scale + t2
            },
        )
        .collect();
    cp.set_factor(mode, factor);
    // Sequential row-order sum: deterministic regardless of thread count.
    row_losses.iter().sum()
}

/// Eq. 3 objective with least-squares loss (shared by ALS/CCD/SGD traces).
pub fn objective(cp: &CpDecomp, obs: &SparseTensor, lambda: f64) -> f64 {
    cp.objective(obs, lambda)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpr_tensor::DenseTensor;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Observations sampled uniformly at random from a ground-truth CP model.
    fn sampled_obs(truth: &CpDecomp, frac: f64, seed: u64) -> SparseTensor {
        let dense = truth.to_dense();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut obs = SparseTensor::new(dense.dims());
        for (idx, v) in dense.iter_indexed() {
            if rng.gen::<f64>() < frac {
                obs.push(&idx, v);
            }
        }
        obs
    }

    #[test]
    fn recovers_fully_observed_low_rank() {
        let truth = CpDecomp::random(&[6, 7, 5], 2, 0.5, 1.5, 3);
        let obs = SparseTensor::from_dense(&truth.to_dense());
        let mut model = CpDecomp::random(&[6, 7, 5], 2, 0.0, 1.0, 99);
        let cfg = AlsConfig {
            lambda: 1e-10,
            stop: StopRule {
                max_sweeps: 500,
                tol: 1e-14,
            },
            scale_by_count: true,
        };
        let trace = als(&mut model, &obs, &cfg);
        // ALS can plateau in "swamps" on exact-recovery problems; require a
        // fit error far below the data scale (values are O(1)) rather than
        // exact recovery.
        assert!(
            trace.final_objective() < 1e-2,
            "objective {}",
            trace.final_objective()
        );
        assert!(model.rmse(&obs) < 5e-3, "rmse {}", model.rmse(&obs));
    }

    #[test]
    fn completes_partially_observed_low_rank() {
        let truth = CpDecomp::random(&[8, 8, 8], 2, 0.5, 1.5, 17);
        let obs = sampled_obs(&truth, 0.5, 4);
        let mut model = CpDecomp::random(&[8, 8, 8], 2, 0.0, 1.0, 5);
        let cfg = AlsConfig {
            lambda: 1e-9,
            stop: StopRule {
                max_sweeps: 300,
                tol: 1e-12,
            },
            scale_by_count: true,
        };
        als(&mut model, &obs, &cfg);
        // Generalization: error on *all* entries, not just observed ones.
        let full = SparseTensor::from_dense(&truth.to_dense());
        assert!(model.rmse(&full) < 1e-2, "rmse {}", model.rmse(&full));
    }

    #[test]
    fn objective_is_monotone() {
        let truth = CpDecomp::random(&[5, 6, 4], 3, 0.2, 1.0, 11);
        let obs = sampled_obs(&truth, 0.8, 12);
        let mut model = CpDecomp::random(&[5, 6, 4], 3, 0.0, 1.0, 13);
        let trace = als(&mut model, &obs, &AlsConfig::default());
        assert!(trace.is_monotone(1e-9), "trace {:?}", trace.objective);
    }

    #[test]
    fn handles_empty_fibers() {
        // No observation touches row 3 of mode 0.
        let mut obs = SparseTensor::new(&[5, 4]);
        for i in [0usize, 1, 2, 4] {
            for j in 0..4 {
                obs.push(&[i, j], (i + 1) as f64 * (j + 1) as f64);
            }
        }
        let mut model = CpDecomp::random(&[5, 4], 2, 0.0, 1.0, 2);
        let trace = als(&mut model, &obs, &AlsConfig::default());
        assert!(trace.final_objective().is_finite());
        // Unobserved fiber collapses to the ridge minimizer: the zero row.
        assert!(model.factor(0).row(3).iter().all(|&v| v == 0.0));
        assert!(!model.factor(0).has_non_finite());
    }

    #[test]
    fn rank_one_exact_on_separable_data() {
        // t[i,j] = (i+1) * (j+2): exactly rank 1.
        let dense = DenseTensor::from_fn(&[6, 5], |idx| ((idx[0] + 1) * (idx[1] + 2)) as f64);
        let obs = SparseTensor::from_dense(&dense);
        let mut model = CpDecomp::random(&[6, 5], 1, 0.5, 1.0, 21);
        let cfg = AlsConfig {
            lambda: 1e-12,
            stop: StopRule {
                max_sweeps: 200,
                tol: 1e-14,
            },
            scale_by_count: true,
        };
        als(&mut model, &obs, &cfg);
        assert!(model.rmse(&obs) < 1e-8, "rmse {}", model.rmse(&obs));
    }

    #[test]
    fn higher_lambda_shrinks_factors() {
        let truth = CpDecomp::random(&[6, 6], 2, 0.5, 1.5, 30);
        let obs = SparseTensor::from_dense(&truth.to_dense());
        let mut weak = CpDecomp::random(&[6, 6], 2, 0.0, 1.0, 31);
        let mut strong = weak.clone();
        als(
            &mut weak,
            &obs,
            &AlsConfig {
                lambda: 1e-8,
                ..Default::default()
            },
        );
        als(
            &mut strong,
            &obs,
            &AlsConfig {
                lambda: 10.0,
                ..Default::default()
            },
        );
        let norm = |cp: &CpDecomp| cp.factors().iter().map(|f| f.fro_norm_sq()).sum::<f64>();
        assert!(norm(&strong) < norm(&weak));
    }

    #[test]
    fn order_four_completion() {
        let truth = CpDecomp::random(&[4, 4, 4, 4], 2, 0.5, 1.2, 40);
        let obs = sampled_obs(&truth, 0.6, 41);
        let mut model = CpDecomp::random(&[4, 4, 4, 4], 2, 0.0, 1.0, 42);
        let cfg = AlsConfig {
            lambda: 1e-9,
            stop: StopRule {
                max_sweeps: 400,
                tol: 1e-13,
            },
            scale_by_count: true,
        };
        als(&mut model, &obs, &cfg);
        let full = SparseTensor::from_dense(&truth.to_dense());
        assert!(model.rmse(&full) < 5e-2, "rmse {}", model.rmse(&full));
    }
}
