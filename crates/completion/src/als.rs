//! Alternating least squares for tensor completion (paper §4.2.1).
//!
//! One sweep fixes all but one factor matrix and solves, independently for
//! each row `i` of the free factor, the ridge-regularized least-squares
//! subproblem
//!
//! ```text
//!   min_u  (1/|Ω_i|) Σ_{(..) ∈ Ω_i} (t_obs - zᵀu)²  +  λ ‖u‖²
//! ```
//!
//! where `z` is the Hadamard product of the other factors' rows at the
//! observation's multi-index. Row subproblems touch disjoint data, so each
//! sweep parallelizes over rows with Rayon. The per-sweep arithmetic cost is
//! `O((Σ_j I_j) R³ + |Ω| d R²)`, matching the complexity the paper cites.

use crate::convergence::{StopRule, Trace};
use crate::sweep::{
    accumulate_normal_equations_streamed, build_streams, fused_quadratic_loss, needs_cache,
    z_source,
};
use cpr_tensor::linalg::solve_spd_jittered_into;
use cpr_tensor::{CpDecomp, Matrix, ModeIndex, ModeStream, SparseTensor, SweepCache};
use rayon::prelude::*;

/// ALS configuration.
#[derive(Debug, Clone, Copy)]
pub struct AlsConfig {
    /// Ridge regularization λ (paper sweeps 1e-6..1e-3).
    pub lambda: f64,
    /// Stopping rule.
    pub stop: StopRule,
    /// Scale each row's data term by `1/|Ω_i|` (the paper's row objective).
    /// When false the raw sum is used, matching classic CP-WOPT.
    pub scale_by_count: bool,
}

impl Default for AlsConfig {
    fn default() -> Self {
        Self {
            lambda: 1e-5,
            stop: StopRule::default(),
            scale_by_count: true,
        }
    }
}

/// Run ALS tensor completion, updating `cp` in place; returns the per-sweep
/// objective trace (Eq. 3 with least-squares loss).
///
/// This is the **streamed** sweep: per-mode [`ModeStream`] layouts are
/// built once, each observation's leave-one-out vector comes from the
/// sweep-ordered partial-product [`SweepCache`] (amortized `O(R)` per mode
/// instead of `O(dR)`), and the normal-equation accumulation dispatches to
/// rank-monomorphized kernels for `R ∈ {2, 4, 8, 16}`. The retained naive
/// path [`als_reference`] computes the same fit — proptests pin the two
/// bitwise-equal on random problems.
///
/// The per-sweep objective is **fused into the last mode update**: every
/// observation belongs to exactly one row of the final mode, and once that
/// row is solved its data loss follows algebraically from the normal
/// equations already accumulated for the solve (`uᵀGu − 2uᵀr + Σt²`), so no
/// second `O(|Ω| d R)` pass over the observations is needed. Per-row losses
/// are summed sequentially in row order, keeping the trace — and therefore
/// the early-stopping decision — bitwise independent of the thread count.
pub fn als(cp: &mut CpDecomp, obs: &SparseTensor, config: &AlsConfig) -> Trace {
    let streams = build_streams(obs);
    als_with_streams(cp, obs, &streams, config)
}

/// [`als`] with caller-provided observation streams — the streaming-refit
/// entry point: an online model keeps its streams cached and extends them
/// incrementally on append instead of rebuilding `d` counting sorts per
/// refit. `streams[m]` must be `obs.mode_stream(m)` for every mode.
pub fn als_with_streams(
    cp: &mut CpDecomp,
    obs: &SparseTensor,
    streams: &[ModeStream],
    config: &AlsConfig,
) -> Trace {
    assert_eq!(
        cp.dims(),
        obs.dims(),
        "ALS: model/observation shape mismatch"
    );
    let d = cp.order();
    let rank = cp.rank();
    assert_eq!(streams.len(), d, "ALS: one stream per mode");
    for (m, s) in streams.iter().enumerate() {
        assert_eq!(s.mode(), m, "ALS: stream {m} built for mode {}", s.mode());
        assert_eq!(s.nnz(), obs.nnz(), "ALS: stream {m} is stale");
    }

    // The partial-product cache only runs at orders where it wins (see
    // `sweep::DIRECT_Z_MAX_ORDER`); low orders gather foreign rows
    // directly from the (L1-resident) factors.
    let use_cache = needs_cache(d);
    let mut cache = SweepCache::new();
    let mut trace = Trace::default();
    let mut prev = objective(cp, obs, config.lambda);
    for _sweep in 0..config.stop.max_sweeps {
        if use_cache {
            cache.begin_sweep(cp, obs);
        }
        let mut data_loss = 0.0;
        for (mode, stream) in streams.iter().enumerate() {
            let fused = mode + 1 == d;
            let loss = update_mode_streamed(cp, stream, &cache, mode, rank, config, fused);
            if fused {
                data_loss = loss;
            } else if use_cache {
                cache.advance(mode, cp.factor(mode), obs);
            }
        }
        let reg: f64 = cp.factors().iter().map(|f| f.fro_norm_sq()).sum();
        let g = data_loss + config.lambda * reg;
        trace.objective.push(g);
        if config.stop.converged(prev, g) {
            trace.converged = true;
            break;
        }
        prev = g;
    }
    trace
}

/// The retained reference sweep: naive per-observation recomputation of the
/// canonical leave-one-out vector ([`CpDecomp::leave_one_out_canonical`])
/// through the [`ModeIndex`] inverted index, with dynamic-rank kernels.
/// Same math, same operation order — [`als`] must match it bitwise (the
/// `stream_equivalence` proptests), and `perf_snapshot` times it as the
/// same-run A/B control for the streamed path's speedup.
pub fn als_reference(cp: &mut CpDecomp, obs: &SparseTensor, config: &AlsConfig) -> Trace {
    assert_eq!(
        cp.dims(),
        obs.dims(),
        "ALS: model/observation shape mismatch"
    );
    let d = cp.order();
    let rank = cp.rank();
    let mode_indices: Vec<ModeIndex> = (0..d).map(|m| obs.mode_index(m)).collect();

    let mut trace = Trace::default();
    let mut prev = objective(cp, obs, config.lambda);
    for _sweep in 0..config.stop.max_sweeps {
        let mut data_loss = 0.0;
        for (mode, mi) in mode_indices.iter().enumerate() {
            let fused = mode + 1 == d;
            let loss = update_mode_reference(cp, obs, mode, mi, rank, config, fused);
            if fused {
                data_loss = loss;
            }
        }
        let reg: f64 = cp.factors().iter().map(|f| f.fro_norm_sq()).sum();
        let g = data_loss + config.lambda * reg;
        trace.objective.push(g);
        if config.stop.converged(prev, g) {
            trace.converged = true;
            break;
        }
        prev = g;
    }
    trace
}

/// Per-worker scratch for the ALS row solves: every buffer a row subproblem
/// needs, allocated once per parallel block instead of once per row.
struct RowScratch {
    gram: Matrix,
    chol: Matrix,
    rhs: Vec<f64>,
    z: Vec<f64>,
}

impl RowScratch {
    fn new(rank: usize) -> Self {
        Self {
            gram: Matrix::zeros(rank, rank),
            chol: Matrix::zeros(rank, rank),
            rhs: vec![0.0; rank],
            z: vec![0.0; rank],
        }
    }
}

/// Shared row finish: scale + ridge the accumulated normal equations,
/// solve straight into the factor row, and (for the fused last mode)
/// recover the row's data loss algebraically. Bitwise-shared by the
/// streamed and reference sweeps so they can only diverge in how `z` is
/// produced.
#[inline]
fn finish_row(
    s: &mut RowScratch,
    n_entries: usize,
    rank: usize,
    config: &AlsConfig,
    row: &mut [f64],
    fused: bool,
    t2: f64,
) -> f64 {
    let scale = if config.scale_by_count {
        1.0 / n_entries as f64
    } else {
        1.0
    };
    s.gram.scale_mut(scale);
    for r in &mut s.rhs {
        *r *= scale;
    }
    for a in 0..rank {
        s.gram[(a, a)] += config.lambda;
    }
    // Solve straight into the factor row.
    solve_spd_jittered_into(&s.gram, &s.rhs, &mut s.chol, row);
    if !fused {
        return 0.0;
    }
    fused_quadratic_loss(
        s.gram.as_slice(),
        &s.rhs,
        row,
        rank,
        config.lambda,
        scale,
        t2,
    )
}

/// One streamed mode update: solve all row subproblems of `mode` in
/// parallel, writing new rows directly into the factor. The row loop walks
/// the mode's packed stream (contiguous entry ids + values) and sources
/// `z` from the partial-product cache through the rank-monomorphized
/// kernels. Returns the post-update data loss `Σ (t̂ - t)²` over the mode's
/// entries when `fused` (the last mode of a sweep), else 0.
fn update_mode_streamed(
    cp: &mut CpDecomp,
    stream: &ModeStream,
    cache: &SweepCache,
    mode: usize,
    rank: usize,
    config: &AlsConfig,
    fused: bool,
) -> f64 {
    // Borrow-split: move the free factor out, restore afterwards. The
    // frozen modes are read either directly (low order) or through the
    // cache's partial products (high order) — see `sweep::ZSource`.
    let mut factor = cp.take_factor(mode);
    let frozen: &CpDecomp = cp;
    let src = z_source(frozen, cache, mode);
    let ids = stream.entry_ids();
    let vals = stream.values();

    let row_losses: Vec<f64> = factor
        .as_mut_slice()
        .par_chunks_mut(rank)
        .enumerate()
        .map_init(
            || RowScratch::new(rank),
            |s, (i, row)| {
                let rng = stream.row_range(i);
                if rng.is_empty() {
                    // Unobserved fiber: the row objective reduces to λ‖u‖²,
                    // whose minimizer is the zero row. With mean-centered
                    // data (as the CPR layer trains) this makes unobserved
                    // slices predict the global mean — a neutral fallback —
                    // instead of freezing whatever random initialization
                    // happened to be there.
                    row.fill(0.0);
                    return 0.0;
                }
                let t2 = accumulate_normal_equations_streamed(
                    src,
                    &ids[rng.clone()],
                    stream.row_foreign(i),
                    &vals[rng.clone()],
                    rank,
                    s.gram.as_mut_slice(),
                    &mut s.rhs,
                    &mut s.z,
                );
                finish_row(s, rng.len(), rank, config, row, fused, t2)
            },
        )
        .collect();
    cp.set_factor(mode, factor);
    // Sequential row-order sum: deterministic regardless of thread count.
    row_losses.iter().sum()
}

/// Accumulate one row's normal equations the reference way: naive
/// per-observation recomputation of the canonical leave-one-out vector.
///
/// A free function on purpose: the `&mut` slice arguments carry noalias
/// guarantees across the call boundary, which is what lets LLVM keep the
/// slice pointers in registers and vectorize the branchless rank-1 update —
/// the same loops written against fields of a scratch struct inside the
/// worker closure compile to scalar code with reloads. Keeping the
/// reference path representative matters: `perf_snapshot` times it as the
/// A/B control.
fn accumulate_normal_equations_reference(
    frozen: &CpDecomp,
    obs: &SparseTensor,
    entries: &[u32],
    mode: usize,
    gram: &mut [f64],
    rhs: &mut [f64],
    z: &mut [f64],
) -> f64 {
    let rank = rhs.len();
    gram.fill(0.0);
    rhs.fill(0.0);
    let mut t2 = 0.0;
    for &e in entries {
        let e = e as usize;
        frozen.leave_one_out_canonical(obs.index(e), mode, z);
        let t = obs.value(e);
        t2 += t * t;
        for (r, &za) in rhs.iter_mut().zip(&*z) {
            *r += t * za;
        }
        for (grow, &za) in gram.chunks_exact_mut(rank).zip(&*z) {
            for (g, &zb) in grow.iter_mut().zip(&*z) {
                *g += za * zb;
            }
        }
    }
    t2
}

/// One reference mode update (see [`als_reference`]).
fn update_mode_reference(
    cp: &mut CpDecomp,
    obs: &SparseTensor,
    mode: usize,
    mi: &ModeIndex,
    rank: usize,
    config: &AlsConfig,
    fused: bool,
) -> f64 {
    let mut factor = cp.take_factor(mode);
    let frozen: &CpDecomp = cp;

    let row_losses: Vec<f64> = factor
        .as_mut_slice()
        .par_chunks_mut(rank)
        .enumerate()
        .map_init(
            || RowScratch::new(rank),
            |s, (i, row)| {
                let entries = mi.row(i);
                if entries.is_empty() {
                    row.fill(0.0);
                    return 0.0;
                }
                let t2 = accumulate_normal_equations_reference(
                    frozen,
                    obs,
                    entries,
                    mode,
                    s.gram.as_mut_slice(),
                    &mut s.rhs,
                    &mut s.z,
                );
                finish_row(s, entries.len(), rank, config, row, fused, t2)
            },
        )
        .collect();
    cp.set_factor(mode, factor);
    row_losses.iter().sum()
}

/// Eq. 3 objective with least-squares loss (shared by ALS/CCD/SGD traces).
pub fn objective(cp: &CpDecomp, obs: &SparseTensor, lambda: f64) -> f64 {
    cp.objective(obs, lambda)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpr_tensor::DenseTensor;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Observations sampled uniformly at random from a ground-truth CP model.
    fn sampled_obs(truth: &CpDecomp, frac: f64, seed: u64) -> SparseTensor {
        let dense = truth.to_dense();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut obs = SparseTensor::new(dense.dims());
        for (idx, v) in dense.iter_indexed() {
            if rng.gen::<f64>() < frac {
                obs.push(&idx, v);
            }
        }
        obs
    }

    #[test]
    fn recovers_fully_observed_low_rank() {
        let truth = CpDecomp::random(&[6, 7, 5], 2, 0.5, 1.5, 3);
        let obs = SparseTensor::from_dense(&truth.to_dense());
        let mut model = CpDecomp::random(&[6, 7, 5], 2, 0.0, 1.0, 99);
        let cfg = AlsConfig {
            lambda: 1e-10,
            stop: StopRule {
                max_sweeps: 500,
                tol: 1e-14,
            },
            scale_by_count: true,
        };
        let trace = als(&mut model, &obs, &cfg);
        // ALS can plateau in "swamps" on exact-recovery problems; require a
        // fit error far below the data scale (values are O(1)) rather than
        // exact recovery.
        assert!(
            trace.final_objective() < 1e-2,
            "objective {}",
            trace.final_objective()
        );
        assert!(model.rmse(&obs) < 5e-3, "rmse {}", model.rmse(&obs));
    }

    #[test]
    fn completes_partially_observed_low_rank() {
        let truth = CpDecomp::random(&[8, 8, 8], 2, 0.5, 1.5, 17);
        let obs = sampled_obs(&truth, 0.5, 4);
        let mut model = CpDecomp::random(&[8, 8, 8], 2, 0.0, 1.0, 5);
        let cfg = AlsConfig {
            lambda: 1e-9,
            stop: StopRule {
                max_sweeps: 300,
                tol: 1e-12,
            },
            scale_by_count: true,
        };
        als(&mut model, &obs, &cfg);
        // Generalization: error on *all* entries, not just observed ones.
        let full = SparseTensor::from_dense(&truth.to_dense());
        assert!(model.rmse(&full) < 1e-2, "rmse {}", model.rmse(&full));
    }

    #[test]
    fn objective_is_monotone() {
        let truth = CpDecomp::random(&[5, 6, 4], 3, 0.2, 1.0, 11);
        let obs = sampled_obs(&truth, 0.8, 12);
        let mut model = CpDecomp::random(&[5, 6, 4], 3, 0.0, 1.0, 13);
        let trace = als(&mut model, &obs, &AlsConfig::default());
        assert!(trace.is_monotone(1e-9), "trace {:?}", trace.objective);
    }

    #[test]
    fn handles_empty_fibers() {
        // No observation touches row 3 of mode 0.
        let mut obs = SparseTensor::new(&[5, 4]);
        for i in [0usize, 1, 2, 4] {
            for j in 0..4 {
                obs.push(&[i, j], (i + 1) as f64 * (j + 1) as f64);
            }
        }
        let mut model = CpDecomp::random(&[5, 4], 2, 0.0, 1.0, 2);
        let trace = als(&mut model, &obs, &AlsConfig::default());
        assert!(trace.final_objective().is_finite());
        // Unobserved fiber collapses to the ridge minimizer: the zero row.
        assert!(model.factor(0).row(3).iter().all(|&v| v == 0.0));
        assert!(!model.factor(0).has_non_finite());
    }

    #[test]
    fn rank_one_exact_on_separable_data() {
        // t[i,j] = (i+1) * (j+2): exactly rank 1.
        let dense = DenseTensor::from_fn(&[6, 5], |idx| ((idx[0] + 1) * (idx[1] + 2)) as f64);
        let obs = SparseTensor::from_dense(&dense);
        let mut model = CpDecomp::random(&[6, 5], 1, 0.5, 1.0, 21);
        let cfg = AlsConfig {
            lambda: 1e-12,
            stop: StopRule {
                max_sweeps: 200,
                tol: 1e-14,
            },
            scale_by_count: true,
        };
        als(&mut model, &obs, &cfg);
        assert!(model.rmse(&obs) < 1e-8, "rmse {}", model.rmse(&obs));
    }

    #[test]
    fn higher_lambda_shrinks_factors() {
        let truth = CpDecomp::random(&[6, 6], 2, 0.5, 1.5, 30);
        let obs = SparseTensor::from_dense(&truth.to_dense());
        let mut weak = CpDecomp::random(&[6, 6], 2, 0.0, 1.0, 31);
        let mut strong = weak.clone();
        als(
            &mut weak,
            &obs,
            &AlsConfig {
                lambda: 1e-8,
                ..Default::default()
            },
        );
        als(
            &mut strong,
            &obs,
            &AlsConfig {
                lambda: 10.0,
                ..Default::default()
            },
        );
        let norm = |cp: &CpDecomp| cp.factors().iter().map(|f| f.fro_norm_sq()).sum::<f64>();
        assert!(norm(&strong) < norm(&weak));
    }

    #[test]
    fn order_four_completion() {
        let truth = CpDecomp::random(&[4, 4, 4, 4], 2, 0.5, 1.2, 40);
        let obs = sampled_obs(&truth, 0.6, 41);
        let mut model = CpDecomp::random(&[4, 4, 4, 4], 2, 0.0, 1.0, 42);
        let cfg = AlsConfig {
            lambda: 1e-9,
            stop: StopRule {
                max_sweeps: 400,
                tol: 1e-13,
            },
            scale_by_count: true,
        };
        als(&mut model, &obs, &cfg);
        let full = SparseTensor::from_dense(&truth.to_dense());
        assert!(model.rmse(&full) < 5e-2, "rmse {}", model.rmse(&full));
    }
}
