//! Alternating minimization via Newton's method (AMN) with log barriers
//! (paper §4.2.2, Eq. 4, and the §6.0.4 schedule).
//!
//! Minimizes Eq. 3 with the scale-independent loss
//! `φ(t, t̂) = (log t − log t̂)²` (the MLogQ² metric of Table 1) subject to
//! strictly positive factor matrices, which the paper's extrapolation
//! technique (§5.3) requires: positive factors admit positive rank-1
//! Perron-Frobenius approximations and hence positive predictions.
//!
//! Positivity is enforced with element-wise log-barrier terms `−η Σ log u`
//! added to each row subproblem. Following interior-point practice (and the
//! paper's §6.0.4 configuration), the barrier parameter starts at `η = 10`
//! and decreases geometrically by a factor of 8 until it drops below 1e-11;
//! each row subproblem is solved with up to 40 damped Newton iterations with
//! a fraction-to-boundary stepsize rule.
//!
//! For a row `u` with observations `Ω_i`, model `m_e = z_eᵀ u`, and residual
//! `r_e = log t_e − log m_e`, the derivatives used below are
//!
//! ```text
//!   ∇φ_e  = −2 r_e / m_e · z_e
//!   H_φ_e = 2 (1 + r_e) / m_e² · z_e z_eᵀ      (clamped PSD when r_e < −1)
//! ```

use crate::convergence::{StopRule, Trace};
use cpr_tensor::linalg::solve_spd_jittered;
use cpr_tensor::{CpDecomp, Matrix, SparseTensor};
use rayon::prelude::*;

/// AMN configuration (defaults follow the paper's §6.0.4 values).
#[derive(Debug, Clone, Copy)]
pub struct AmnConfig {
    /// Ridge regularization λ.
    pub lambda: f64,
    /// Initial barrier parameter η.
    pub eta0: f64,
    /// Geometric decrease factor applied to η after each outer sweep.
    pub eta_decay: f64,
    /// Stop decreasing η once it falls below this floor.
    pub eta_floor: f64,
    /// Newton iterations per row subproblem per outer sweep.
    pub newton_iters: usize,
    /// Newton step tolerance (stop a row early when |Δ|/|u| is below this).
    pub newton_tol: f64,
    /// Extra full sweeps at the final (floor) barrier value.
    pub final_sweeps: usize,
    /// Stopping rule applied to the barrier-free objective across sweeps.
    pub stop: StopRule,
}

impl Default for AmnConfig {
    fn default() -> Self {
        Self {
            lambda: 1e-5,
            eta0: 10.0,
            eta_decay: 1.0 / 8.0,
            eta_floor: 1e-11,
            newton_iters: 40,
            newton_tol: 1e-10,
            final_sweeps: 4,
            stop: StopRule {
                max_sweeps: 200,
                tol: 1e-8,
            },
        }
    }
}

/// MLogQ² data objective plus ridge term (barrier-free; used for traces).
pub fn log_objective(cp: &CpDecomp, obs: &SparseTensor, lambda: f64) -> f64 {
    let mut loss = 0.0;
    for (_, idx, t) in obs.iter() {
        let m = cp.eval_u32(idx);
        if m <= 0.0 || t <= 0.0 {
            return f64::INFINITY;
        }
        let r = (t / m).ln();
        loss += r * r;
    }
    let reg: f64 = cp.factors().iter().map(|f| f.fro_norm_sq()).sum();
    loss + lambda * reg
}

/// Initialize a strictly positive CP model whose typical entry magnitude
/// reproduces `target_mean` (the geometric mean of the observations).
pub fn init_positive(dims: &[usize], rank: usize, target_mean: f64, seed: u64) -> CpDecomp {
    let d = dims.len() as f64;
    // Entries ~ c with rank terms: model ≈ R c^d, so choose c accordingly.
    let c = (target_mean.max(1e-300) / rank as f64).powf(1.0 / d);
    let mut cp = CpDecomp::random(dims, rank, 0.5, 1.5, seed);
    for f in 0..dims.len() {
        let fm = cp.factor_mut(f);
        fm.scale_mut(c);
    }
    cp
}

/// Run AMN tensor completion under MLogQ² loss, updating `cp` in place.
///
/// `cp` must start strictly positive (see [`init_positive`]); all observed
/// values must be positive. The returned trace records the barrier-free
/// objective after each outer sweep.
pub fn amn(cp: &mut CpDecomp, obs: &SparseTensor, config: &AmnConfig) -> Trace {
    assert_eq!(
        cp.dims(),
        obs.dims(),
        "AMN: model/observation shape mismatch"
    );
    assert!(
        cp.is_strictly_positive(),
        "AMN requires strictly positive initialization"
    );
    assert!(
        obs.values().iter().all(|&v| v > 0.0),
        "AMN requires strictly positive observations (execution times)"
    );
    let d = cp.order();
    let mode_indices: Vec<Vec<Vec<u32>>> = (0..d).map(|m| obs.mode_index(m)).collect();
    // Pre-log the observations once.
    let log_t: Vec<f64> = obs.values().iter().map(|v| v.ln()).collect();

    let mut trace = Trace::default();
    let mut prev = log_objective(cp, obs, config.lambda);
    let mut eta = config.eta0;
    let mut sweeps_at_floor = 0usize;
    for _sweep in 0..config.stop.max_sweeps {
        for (mode, mi) in mode_indices.iter().enumerate() {
            update_mode(cp, obs, &log_t, mode, mi, eta, config);
        }
        let g = log_objective(cp, obs, config.lambda);
        trace.objective.push(g);
        let at_floor = eta <= config.eta_floor;
        if at_floor {
            sweeps_at_floor += 1;
            if sweeps_at_floor >= config.final_sweeps || config.stop.converged(prev, g) {
                trace.converged = true;
                break;
            }
        }
        prev = g;
        if !at_floor {
            eta = (eta * config.eta_decay).max(config.eta_floor);
        }
    }
    trace
}

/// Newton-solve every row subproblem of one mode (rows are independent).
fn update_mode(
    cp: &mut CpDecomp,
    obs: &SparseTensor,
    log_t: &[f64],
    mode: usize,
    rows_entries: &[Vec<u32>],
    eta: f64,
    config: &AmnConfig,
) {
    let frozen = cp.clone();
    let new_rows: Vec<Vec<f64>> = rows_entries
        .par_iter()
        .enumerate()
        .map(|(i, entries)| {
            let mut u = frozen.factor(mode).row(i).to_vec();
            if entries.is_empty() {
                return u; // unobserved fiber: keep previous (positive) row
            }
            newton_row(&frozen, obs, log_t, mode, entries, eta, config, &mut u);
            u
        })
        .collect();
    let factor = cp.factor_mut(mode);
    for (i, row) in new_rows.into_iter().enumerate() {
        factor.row_mut(i).copy_from_slice(&row);
    }
}

/// Row-subproblem objective: mean MLogQ² over Ω_i + ridge + barrier.
#[allow(clippy::too_many_arguments)]
fn row_objective(
    frozen: &CpDecomp,
    obs: &SparseTensor,
    log_t: &[f64],
    mode: usize,
    entries: &[u32],
    eta: f64,
    lambda: f64,
    u: &[f64],
    z_buf: &mut [f64],
) -> f64 {
    if u.iter().any(|&x| x <= 0.0) {
        return f64::INFINITY;
    }
    let inv = 1.0 / entries.len() as f64;
    let mut loss = 0.0;
    for &e in entries {
        let e = e as usize;
        frozen.leave_one_out_row(obs.index(e), mode, z_buf);
        let m: f64 = z_buf.iter().zip(u).map(|(a, b)| a * b).sum();
        if m <= 0.0 {
            return f64::INFINITY;
        }
        let r = log_t[e] - m.ln();
        loss += r * r;
    }
    let ridge: f64 = u.iter().map(|x| x * x).sum();
    let barrier: f64 = u.iter().map(|x| x.ln()).sum();
    loss * inv + lambda * ridge - eta * barrier
}

/// Damped Newton iterations on one row with fraction-to-boundary steps.
#[allow(clippy::too_many_arguments)]
fn newton_row(
    frozen: &CpDecomp,
    obs: &SparseTensor,
    log_t: &[f64],
    mode: usize,
    entries: &[u32],
    eta: f64,
    config: &AmnConfig,
    u: &mut Vec<f64>,
) {
    let rank = u.len();
    let inv = 1.0 / entries.len() as f64;
    let mut z = vec![0.0; rank];
    let mut grad = vec![0.0; rank];
    let mut hess = Matrix::zeros(rank, rank);
    let mut z_obj = vec![0.0; rank];
    for _it in 0..config.newton_iters {
        grad.fill(0.0);
        hess = Matrix::zeros(rank, rank);
        for &e in entries {
            let e = e as usize;
            frozen.leave_one_out_row(obs.index(e), mode, &mut z);
            let m: f64 = z.iter().zip(u.iter()).map(|(a, b)| a * b).sum();
            if m <= 0.0 || !m.is_finite() {
                // Outside the domain (shouldn't happen with positive
                // iterates and non-negative z); bail out of this row.
                return;
            }
            let r = log_t[e] - m.ln();
            let gcoef = -2.0 * r / m * inv;
            // Clamp the Hessian scalar to keep the quadratic model PSD
            // (Gauss-Newton style damping when r < -1).
            let hcoef = (2.0 * (1.0 + r) / (m * m)).max(2e-2 / (m * m)) * inv;
            for a in 0..rank {
                let za = z[a];
                if za == 0.0 {
                    continue;
                }
                grad[a] += gcoef * za;
                let hrow = hess.row_mut(a);
                for b in a..rank {
                    hrow[b] += hcoef * za * z[b];
                }
            }
        }
        for a in 0..rank {
            for b in 0..a {
                hess[(a, b)] = hess[(b, a)];
            }
        }
        // Ridge and barrier contributions.
        for a in 0..rank {
            grad[a] += 2.0 * config.lambda * u[a] - eta / u[a];
            hess[(a, a)] += 2.0 * config.lambda + eta / (u[a] * u[a]);
        }
        // Newton direction: H Δ = -grad.
        let neg: Vec<f64> = grad.iter().map(|g| -g).collect();
        let delta = solve_spd_jittered(&hess, &neg);
        let dnorm: f64 = delta.iter().map(|x| x * x).sum::<f64>().sqrt();
        let unorm: f64 = u.iter().map(|x| x * x).sum::<f64>().sqrt();
        if !dnorm.is_finite() || dnorm <= config.newton_tol * unorm.max(1e-300) {
            break;
        }
        // Fraction-to-boundary: keep iterate strictly positive.
        let mut alpha: f64 = 1.0;
        for (ua, da) in u.iter().zip(&delta) {
            if *da < 0.0 {
                alpha = alpha.min(0.995 * (-ua / da));
            }
        }
        // Backtracking line search for actual decrease.
        let f0 = row_objective(
            frozen,
            obs,
            log_t,
            mode,
            entries,
            eta,
            config.lambda,
            u,
            &mut z_obj,
        );
        let mut accepted = false;
        for _ in 0..30 {
            let cand: Vec<f64> = u.iter().zip(&delta).map(|(a, d)| a + alpha * d).collect();
            let f1 = row_objective(
                frozen,
                obs,
                log_t,
                mode,
                entries,
                eta,
                config.lambda,
                &cand,
                &mut z_obj,
            );
            if f1 < f0 {
                *u = cand;
                accepted = true;
                break;
            }
            alpha *= 0.5;
            if alpha * dnorm < 1e-16 * unorm.max(1e-300) {
                break;
            }
        }
        if !accepted {
            break;
        }
    }
    let _ = hess; // silence last-assignment lint on some toolchains
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpr_tensor::DenseTensor;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn geo_mean(values: &[f64]) -> f64 {
        (values.iter().map(|v| v.ln()).sum::<f64>() / values.len() as f64).exp()
    }

    fn positive_obs(dims: &[usize], seed: u64) -> SparseTensor {
        // Separable positive ground truth: exactly rank 1 in linear space.
        let t = DenseTensor::from_fn(dims, |idx| {
            idx.iter()
                .enumerate()
                .map(|(j, &i)| 1.0 + (i as f64) * (j as f64 + 0.5))
                .product()
        });
        let mut rng = StdRng::seed_from_u64(seed);
        let mut obs = SparseTensor::new(dims);
        for (idx, v) in t.iter_indexed() {
            if rng.gen::<f64>() < 0.8 {
                obs.push(&idx, v);
            }
        }
        obs
    }

    #[test]
    fn init_positive_hits_target_scale() {
        let cp = init_positive(&[8, 8, 8], 4, 12.5, 3);
        assert!(cp.is_strictly_positive());
        let dense = cp.to_dense();
        let gm = geo_mean(dense.as_slice());
        assert!(
            gm > 12.5 / 5.0 && gm < 12.5 * 5.0,
            "geometric mean {gm} too far from 12.5"
        );
    }

    #[test]
    fn factors_stay_strictly_positive() {
        let obs = positive_obs(&[5, 5, 4], 7);
        let gm = geo_mean(obs.values());
        let mut cp = init_positive(&[5, 5, 4], 2, gm, 8);
        amn(&mut cp, &obs, &AmnConfig::default());
        assert!(cp.is_strictly_positive(), "AMN broke positivity");
    }

    #[test]
    fn fits_separable_positive_data_in_log_space() {
        let obs = positive_obs(&[6, 5, 4], 9);
        let gm = geo_mean(obs.values());
        let mut cp = init_positive(&[6, 5, 4], 2, gm, 10);
        let trace = amn(
            &mut cp,
            &obs,
            &AmnConfig {
                lambda: 1e-8,
                ..Default::default()
            },
        );
        // Mean log-squared error should be tiny for rank-2 on rank-1 data.
        let final_loss = trace.final_objective();
        assert!(final_loss < 1e-2 * obs.nnz() as f64, "loss {final_loss}");
        // Predictions within a few percent in ratio terms.
        let mut worst: f64 = 0.0;
        for (_, idx, t) in obs.iter() {
            let m = cp.eval_u32(idx);
            worst = worst.max((m / t).ln().abs());
        }
        assert!(worst < 0.3, "worst |log q| = {worst}");
    }

    #[test]
    fn objective_decreases_overall() {
        let obs = positive_obs(&[5, 4, 4], 13);
        let gm = geo_mean(obs.values());
        let mut cp = init_positive(&[5, 4, 4], 2, gm, 14);
        let start = log_objective(&cp, &obs, 1e-5);
        let trace = amn(&mut cp, &obs, &AmnConfig::default());
        assert!(
            trace.final_objective() < start,
            "no decrease: {start} -> {}",
            trace.final_objective()
        );
    }

    #[test]
    #[should_panic(expected = "positive observations")]
    fn rejects_nonpositive_observations() {
        let mut obs = SparseTensor::new(&[2, 2]);
        obs.push(&[0, 0], -1.0);
        let mut cp = init_positive(&[2, 2], 1, 1.0, 0);
        amn(&mut cp, &obs, &AmnConfig::default());
    }

    #[test]
    #[should_panic(expected = "positive initialization")]
    fn rejects_nonpositive_init() {
        let mut obs = SparseTensor::new(&[2, 2]);
        obs.push(&[0, 0], 1.0);
        let mut cp = CpDecomp::random(&[2, 2], 1, -1.0, 1.0, 123);
        // Force at least one non-positive entry.
        cp.factor_mut(0)[(0, 0)] = -0.5;
        amn(&mut cp, &obs, &AmnConfig::default());
    }

    #[test]
    fn handles_unobserved_fibers() {
        let mut obs = SparseTensor::new(&[4, 3]);
        for j in 0..3 {
            obs.push(&[0, j], 2.0 + j as f64);
            obs.push(&[1, j], 4.0 + j as f64);
        }
        // Rows 2, 3 of mode 0 unobserved.
        let mut cp = init_positive(&[4, 3], 2, 3.0, 15);
        amn(&mut cp, &obs, &AmnConfig::default());
        assert!(cp.is_strictly_positive());
        assert!(!cp.factor(0).has_non_finite());
    }

    #[test]
    fn scale_independence_of_loss() {
        // Scaling all observations by 1000 shouldn't change the fit quality
        // in MLogQ terms (only the model scale).
        let obs = positive_obs(&[5, 4], 20);
        let mut scaled = obs.clone();
        scaled.map_values_mut(|v| v * 1000.0);

        let fit = |o: &SparseTensor, seed| {
            let gm = geo_mean(o.values());
            let mut cp = init_positive(&[5, 4], 2, gm, seed);
            amn(
                &mut cp,
                o,
                &AmnConfig {
                    lambda: 1e-9,
                    ..Default::default()
                },
            );
            let mut total = 0.0;
            for (_, idx, t) in o.iter() {
                total += (cp.eval_u32(idx) / t).ln().abs();
            }
            total / o.nnz() as f64
        };
        let e1 = fit(&obs, 21);
        let e2 = fit(&scaled, 21);
        assert!((e1 - e2).abs() < 0.05, "scale dependence: {e1} vs {e2}");
    }
}
