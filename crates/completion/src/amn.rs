//! Alternating minimization via Newton's method (AMN) with log barriers
//! (paper §4.2.2, Eq. 4, and the §6.0.4 schedule).
//!
//! Minimizes Eq. 3 with the scale-independent loss
//! `φ(t, t̂) = (log t − log t̂)²` (the MLogQ² metric of Table 1) subject to
//! strictly positive factor matrices, which the paper's extrapolation
//! technique (§5.3) requires: positive factors admit positive rank-1
//! Perron-Frobenius approximations and hence positive predictions.
//!
//! Positivity is enforced with element-wise log-barrier terms `−η Σ log u`
//! added to each row subproblem. Following interior-point practice (and the
//! paper's §6.0.4 configuration), the barrier parameter starts at `η = 10`
//! and decreases geometrically by a factor of 8 until it drops below 1e-11;
//! each row subproblem is solved with up to 40 damped Newton iterations with
//! a fraction-to-boundary stepsize rule.
//!
//! For a row `u` with observations `Ω_i`, model `m_e = z_eᵀ u`, and residual
//! `r_e = log t_e − log m_e`, the derivatives used below are
//!
//! ```text
//!   ∇φ_e  = −2 r_e / m_e · z_e
//!   H_φ_e = 2 (1 + r_e) / m_e² · z_e z_eᵀ      (clamped PSD when r_e < −1)
//! ```

use crate::convergence::{StopRule, Trace};
use crate::sweep::{build_streams, fill_zcache, needs_cache, z_source};
use cpr_tensor::linalg::solve_spd_jittered_into;
use cpr_tensor::{CpDecomp, Matrix, ModeIndex, ModeStream, SparseTensor, SweepCache};
use rayon::prelude::*;

/// AMN configuration (defaults follow the paper's §6.0.4 values).
#[derive(Debug, Clone, Copy)]
pub struct AmnConfig {
    /// Ridge regularization λ.
    pub lambda: f64,
    /// Initial barrier parameter η.
    pub eta0: f64,
    /// Geometric decrease factor applied to η after each outer sweep.
    pub eta_decay: f64,
    /// Stop decreasing η once it falls below this floor.
    pub eta_floor: f64,
    /// Newton iterations per row subproblem per outer sweep.
    pub newton_iters: usize,
    /// Newton step tolerance (stop a row early when |Δ|/|u| is below this).
    pub newton_tol: f64,
    /// Extra full sweeps at the final (floor) barrier value.
    pub final_sweeps: usize,
    /// Stopping rule applied to the barrier-free objective across sweeps.
    pub stop: StopRule,
}

impl Default for AmnConfig {
    fn default() -> Self {
        Self {
            lambda: 1e-5,
            eta0: 10.0,
            eta_decay: 1.0 / 8.0,
            eta_floor: 1e-11,
            newton_iters: 40,
            newton_tol: 1e-10,
            final_sweeps: 4,
            stop: StopRule {
                max_sweeps: 200,
                tol: 1e-8,
            },
        }
    }
}

/// MLogQ² data objective plus ridge term (barrier-free; used for traces).
pub fn log_objective(cp: &CpDecomp, obs: &SparseTensor, lambda: f64) -> f64 {
    let mut loss = 0.0;
    for (_, idx, t) in obs.iter() {
        let m = cp.eval_u32(idx);
        if m <= 0.0 || t <= 0.0 {
            return f64::INFINITY;
        }
        let r = (t / m).ln();
        loss += r * r;
    }
    let reg: f64 = cp.factors().iter().map(|f| f.fro_norm_sq()).sum();
    loss + lambda * reg
}

/// Initialize a strictly positive CP model whose typical entry magnitude
/// reproduces `target_mean` (the geometric mean of the observations).
pub fn init_positive(dims: &[usize], rank: usize, target_mean: f64, seed: u64) -> CpDecomp {
    let d = dims.len() as f64;
    // Entries ~ c with rank terms: model ≈ R c^d, so choose c accordingly.
    let c = (target_mean.max(1e-300) / rank as f64).powf(1.0 / d);
    let mut cp = CpDecomp::random(dims, rank, 0.5, 1.5, seed);
    for f in 0..dims.len() {
        let fm = cp.factor_mut(f);
        fm.scale_mut(c);
    }
    cp
}

/// Shared validation of the AMN positivity preconditions.
fn check_amn_inputs(cp: &CpDecomp, obs: &SparseTensor) {
    assert_eq!(
        cp.dims(),
        obs.dims(),
        "AMN: model/observation shape mismatch"
    );
    assert!(
        cp.is_strictly_positive(),
        "AMN requires strictly positive initialization"
    );
    assert!(
        obs.values().iter().all(|&v| v > 0.0),
        "AMN requires strictly positive observations (execution times)"
    );
}

/// Run AMN tensor completion under MLogQ² loss, updating `cp` in place.
///
/// `cp` must start strictly positive (see [`init_positive`]); all observed
/// values must be positive. The returned trace records the barrier-free
/// objective after each outer sweep.
///
/// This is the **streamed** sweep (see [`crate::als::als`]): per-row
/// `z`-caches are filled from the partial-product [`SweepCache`] through
/// rank-monomorphized kernels, and the pre-logged observations are read
/// slot-contiguously from per-mode [`ModeStream`] layouts. The retained
/// naive path [`amn_reference`] is pinned bitwise-equal by proptests.
pub fn amn(cp: &mut CpDecomp, obs: &SparseTensor, config: &AmnConfig) -> Trace {
    check_amn_inputs(cp, obs);
    let d = cp.order();
    let streams = build_streams(obs);
    // Pre-log the observations once, slot-aligned per mode so each row's
    // Newton solver reads its residual targets contiguously.
    let logs: Vec<Vec<f64>> = streams
        .iter()
        .map(|s| s.values().iter().map(|v| v.ln()).collect())
        .collect();

    let use_cache = needs_cache(d);
    let mut cache = SweepCache::new();
    let mut trace = Trace::default();
    let mut prev = log_objective(cp, obs, config.lambda);
    let mut eta = config.eta0;
    let mut sweeps_at_floor = 0usize;
    for _sweep in 0..config.stop.max_sweeps {
        // The barrier-free data loss is fused into the last mode update
        // (see `als`): each observation's residual is evaluated right after
        // its final-mode row finishes its Newton solve, so no second
        // `O(|Ω| d R)` pass runs per sweep. Per-row losses are summed
        // sequentially in row order — bitwise thread-count independent.
        if use_cache {
            cache.begin_sweep(cp, obs);
        }
        let mut data_loss = 0.0;
        for (mode, stream) in streams.iter().enumerate() {
            let fused = mode + 1 == d;
            let loss =
                update_mode_streamed(cp, stream, &cache, &logs[mode], mode, eta, config, fused);
            if fused {
                data_loss = loss;
            } else if use_cache {
                cache.advance(mode, cp.factor(mode), obs);
            }
        }
        let reg: f64 = cp.factors().iter().map(|f| f.fro_norm_sq()).sum();
        let g = data_loss + config.lambda * reg;
        trace.objective.push(g);
        let at_floor = eta <= config.eta_floor;
        if at_floor {
            sweeps_at_floor += 1;
            if sweeps_at_floor >= config.final_sweeps || config.stop.converged(prev, g) {
                trace.converged = true;
                break;
            }
        }
        prev = g;
        if !at_floor {
            eta = (eta * config.eta_decay).max(config.eta_floor);
        }
    }
    trace
}

/// The retained reference sweep: naive per-observation `z`-cache fills via
/// [`CpDecomp::leave_one_out_canonical`] through the [`ModeIndex`]
/// inverted index. [`amn`] must match it bitwise (the `stream_equivalence`
/// proptests); `perf_snapshot` times it as the same-run A/B control.
pub fn amn_reference(cp: &mut CpDecomp, obs: &SparseTensor, config: &AmnConfig) -> Trace {
    check_amn_inputs(cp, obs);
    let d = cp.order();
    let mode_indices: Vec<ModeIndex> = (0..d).map(|m| obs.mode_index(m)).collect();
    let log_t: Vec<f64> = obs.values().iter().map(|v| v.ln()).collect();

    let mut trace = Trace::default();
    let mut prev = log_objective(cp, obs, config.lambda);
    let mut eta = config.eta0;
    let mut sweeps_at_floor = 0usize;
    for _sweep in 0..config.stop.max_sweeps {
        let mut data_loss = 0.0;
        for (mode, mi) in mode_indices.iter().enumerate() {
            let fused = mode + 1 == d;
            let loss = update_mode_reference(cp, obs, &log_t, mode, mi, eta, config, fused);
            if fused {
                data_loss = loss;
            }
        }
        let reg: f64 = cp.factors().iter().map(|f| f.fro_norm_sq()).sum();
        let g = data_loss + config.lambda * reg;
        trace.objective.push(g);
        let at_floor = eta <= config.eta_floor;
        if at_floor {
            sweeps_at_floor += 1;
            if sweeps_at_floor >= config.final_sweeps || config.stop.converged(prev, g) {
                trace.converged = true;
                break;
            }
        }
        prev = g;
        if !at_floor {
            eta = (eta * config.eta_decay).max(config.eta_floor);
        }
    }
    trace
}

/// Per-worker scratch for the Newton row solves. The key buffer is
/// `zcache`: the leave-one-out vectors `z_e` of a row depend only on the
/// *frozen* factors, so they are computed once per row and re-read by every
/// Newton iteration, every line-search probe, and the fused residual pass —
/// previously each of those recomputed every `z_e` from scratch.
struct NewtonScratch {
    z: Vec<f64>,
    zcache: Vec<f64>,
    /// Reference-path scratch: the row's pre-logged targets gathered from
    /// the entry-indexed `log_t` (the streamed path slices them straight
    /// out of the mode's slot-aligned log array instead).
    logrow: Vec<f64>,
    grad: Vec<f64>,
    neg_grad: Vec<f64>,
    delta: Vec<f64>,
    cand: Vec<f64>,
    hess: Matrix,
    chol: Matrix,
}

impl NewtonScratch {
    fn new(rank: usize) -> Self {
        Self {
            z: vec![0.0; rank],
            zcache: Vec::new(),
            logrow: Vec::new(),
            grad: vec![0.0; rank],
            neg_grad: vec![0.0; rank],
            delta: vec![0.0; rank],
            cand: vec![0.0; rank],
            hess: Matrix::zeros(rank, rank),
            chol: Matrix::zeros(rank, rank),
        }
    }
}

/// Post-Newton fused row loss: `Σ (log t − log t̂)²` over the row's entries
/// (∞ if any model value is non-positive). Shared bitwise by the streamed
/// and reference sweeps.
#[inline]
fn fused_row_loss(zcache: &[f64], logs: &[f64], rank: usize, u: &[f64]) -> f64 {
    let mut loss = 0.0;
    for (zc, &lt) in zcache.chunks_exact(rank).zip(logs) {
        let m: f64 = zc.iter().zip(u).map(|(a, b)| a * b).sum();
        if m <= 0.0 {
            return f64::INFINITY;
        }
        let r = lt - m.ln();
        loss += r * r;
    }
    loss
}

/// Newton-solve every row subproblem of one mode (rows are independent),
/// updating the factor in place, with the `z`-caches filled from the
/// partial-product cache and the log targets sliced from the mode's
/// slot-aligned stream. When `fused`, returns the post-update barrier-free
/// data loss over the mode's entries, else 0.
#[allow(clippy::too_many_arguments)]
fn update_mode_streamed(
    cp: &mut CpDecomp,
    stream: &ModeStream,
    cache: &SweepCache,
    logs: &[f64],
    mode: usize,
    eta: f64,
    config: &AmnConfig,
    fused: bool,
) -> f64 {
    let rank = cp.rank();
    let mut factor = cp.take_factor(mode);
    let frozen: &CpDecomp = cp;
    let src = z_source(frozen, cache, mode);
    let ids = stream.entry_ids();
    let row_losses: Vec<f64> = factor
        .as_mut_slice()
        .par_chunks_mut(rank)
        .enumerate()
        .map_init(
            || NewtonScratch::new(rank),
            |s, (i, u)| {
                let rng = stream.row_range(i);
                if rng.is_empty() {
                    return 0.0; // unobserved fiber: keep previous (positive) row
                }
                // Fill the z cache once: frozen factors are fixed all row.
                fill_zcache(
                    src,
                    &ids[rng.clone()],
                    stream.row_foreign(i),
                    rank,
                    &mut s.zcache,
                );
                let row_logs = &logs[rng];
                newton_row(s, row_logs, eta, config, u, false);
                if !fused {
                    return 0.0;
                }
                fused_row_loss(&s.zcache, row_logs, rank, u)
            },
        )
        .collect();
    cp.set_factor(mode, factor);
    row_losses.iter().sum()
}

/// One reference mode update (see [`amn_reference`]): naive canonical
/// `z`-cache fills, log targets gathered per entry.
#[allow(clippy::too_many_arguments)]
fn update_mode_reference(
    cp: &mut CpDecomp,
    obs: &SparseTensor,
    log_t: &[f64],
    mode: usize,
    mi: &ModeIndex,
    eta: f64,
    config: &AmnConfig,
    fused: bool,
) -> f64 {
    let rank = cp.rank();
    let mut factor = cp.take_factor(mode);
    let frozen: &CpDecomp = cp;
    let row_losses: Vec<f64> = factor
        .as_mut_slice()
        .par_chunks_mut(rank)
        .enumerate()
        .map_init(
            || NewtonScratch::new(rank),
            |s, (i, u)| {
                let entries = mi.row(i);
                if entries.is_empty() {
                    return 0.0;
                }
                s.zcache.clear();
                s.zcache.reserve(entries.len() * rank);
                s.logrow.clear();
                for &e in entries {
                    frozen.leave_one_out_canonical(obs.index(e as usize), mode, &mut s.z);
                    s.zcache.extend_from_slice(&s.z);
                    s.logrow.push(log_t[e as usize]);
                }
                let logrow = std::mem::take(&mut s.logrow);
                newton_row(s, &logrow, eta, config, u, true);
                let loss = if fused {
                    fused_row_loss(&s.zcache, &logrow, rank, u)
                } else {
                    0.0
                };
                s.logrow = logrow;
                loss
            },
        )
        .collect();
    cp.set_factor(mode, factor);
    row_losses.iter().sum()
}

/// Row-subproblem objective: mean MLogQ² over Ω_i + ridge + barrier, with
/// the `z_e` vectors read from the row's cache and the log targets from
/// the row-aligned `logs`.
fn row_objective(zcache: &[f64], logs: &[f64], eta: f64, lambda: f64, u: &[f64]) -> f64 {
    if u.iter().any(|&x| x <= 0.0) {
        return f64::INFINITY;
    }
    let inv = 1.0 / logs.len() as f64;
    let mut loss = 0.0;
    for (zc, &lt) in zcache.chunks_exact(u.len()).zip(logs) {
        let m: f64 = zc.iter().zip(u).map(|(a, b)| a * b).sum();
        if m <= 0.0 {
            return f64::INFINITY;
        }
        let r = lt - m.ln();
        loss += r * r;
    }
    let ridge: f64 = u.iter().map(|x| x * x).sum();
    let barrier: f64 = u.iter().map(|x| x.ln()).sum();
    loss * inv + lambda * ridge - eta * barrier
}

/// Accumulate the Newton system of one row iterate — gradient and
/// PSD-clamped Hessian of the mean MLogQ² data term, full square — with
/// the `z_e` vectors read from the row's cache. Returns `false` when the
/// model value leaves the positive domain.
///
/// Rank-monomorphized like the ALS normal-equation kernels, with the same
/// per-rank codegen shapes (registers at small ranks, indexed rows at 8,
/// rolled row loop at 16 — see `sweep::accumulate_normal_equations_streamed`);
/// every variant performs the identical per-element operation sequence, so
/// the dispatch is bitwise invisible. The reference sweep calls
/// [`acc_newton_generic`] (the retained PR 3 shape) directly, keeping it a
/// faithful same-run A/B control.
fn accumulate_newton_system(
    zcache: &[f64],
    logs: &[f64],
    u: &[f64],
    inv: f64,
    grad: &mut [f64],
    hess: &mut [f64],
) -> bool {
    match u.len() {
        2 => acc_newton_small::<2>(zcache, logs, u, inv, grad, hess),
        4 => acc_newton_small::<4>(zcache, logs, u, inv, grad, hess),
        8 => acc_newton_mid::<8>(zcache, logs, u, inv, grad, hess),
        16 => acc_newton_wide::<16>(zcache, logs, u, inv, grad, hess),
        _ => acc_newton_generic(zcache, logs, u, inv, grad, hess),
    }
}

/// Shared per-entry scalar part: model value `m` → `(gcoef, hcoef)`, or
/// `None` outside the positive domain.
#[inline(always)]
fn newton_coeffs(m: f64, lt: f64, inv: f64) -> Option<(f64, f64)> {
    if m <= 0.0 || !m.is_finite() {
        return None;
    }
    let r = lt - m.ln();
    let gcoef = -2.0 * r / m * inv;
    // Clamp the Hessian scalar to keep the quadratic model PSD
    // (Gauss-Newton style damping when r < -1).
    let hcoef = (2.0 * (1.0 + r) / (m * m)).max(2e-2 / (m * m)) * inv;
    Some((gcoef, hcoef))
}

fn acc_newton_small<const R: usize>(
    zcache: &[f64],
    logs: &[f64],
    u: &[f64],
    inv: f64,
    grad: &mut [f64],
    hess: &mut [f64],
) -> bool {
    let mut g = [0.0f64; R];
    let mut h = [[0.0f64; R]; R];
    for (zc, &lt) in zcache.chunks_exact(R).zip(logs) {
        let mut m = 0.0;
        for r in 0..R {
            m += zc[r] * u[r];
        }
        let Some((gcoef, hcoef)) = newton_coeffs(m, lt, inv) else {
            return false;
        };
        for r in 0..R {
            g[r] += gcoef * zc[r];
        }
        for a in 0..R {
            let ha = hcoef * zc[a];
            let row = &mut h[a];
            for b in 0..R {
                row[b] += ha * zc[b];
            }
        }
    }
    grad.copy_from_slice(&g);
    for (hrow, h) in hess.chunks_exact_mut(R).zip(&h) {
        hrow.copy_from_slice(h);
    }
    true
}

fn acc_newton_mid<const R: usize>(
    zcache: &[f64],
    logs: &[f64],
    u: &[f64],
    inv: f64,
    grad: &mut [f64],
    hess: &mut [f64],
) -> bool {
    grad.fill(0.0);
    hess.fill(0.0);
    for (zc, &lt) in zcache.chunks_exact(R).zip(logs) {
        let mut m = 0.0;
        for r in 0..R {
            m += zc[r] * u[r];
        }
        let Some((gcoef, hcoef)) = newton_coeffs(m, lt, inv) else {
            return false;
        };
        for r in 0..R {
            grad[r] += gcoef * zc[r];
        }
        for a in 0..R {
            let ha = hcoef * zc[a];
            let row = &mut hess[a * R..(a + 1) * R];
            for b in 0..R {
                row[b] += ha * zc[b];
            }
        }
    }
    true
}

fn acc_newton_wide<const R: usize>(
    zcache: &[f64],
    logs: &[f64],
    u: &[f64],
    inv: f64,
    grad: &mut [f64],
    hess: &mut [f64],
) -> bool {
    grad.fill(0.0);
    hess.fill(0.0);
    // Runtime trip count keeps the row loop rolled (see the ALS kernels).
    let rank = grad.len();
    for (zc, &lt) in zcache.chunks_exact(R).zip(logs) {
        let mut m = 0.0;
        for r in 0..R {
            m += zc[r] * u[r];
        }
        let Some((gcoef, hcoef)) = newton_coeffs(m, lt, inv) else {
            return false;
        };
        for (g, &za) in grad.iter_mut().zip(zc) {
            *g += gcoef * za;
        }
        for (hrow, &za) in hess.chunks_exact_mut(rank).zip(zc) {
            let ha = hcoef * za;
            for (h, &zb) in hrow.iter_mut().zip(zc) {
                *h += ha * zb;
            }
        }
    }
    true
}

fn acc_newton_generic(
    zcache: &[f64],
    logs: &[f64],
    u: &[f64],
    inv: f64,
    grad: &mut [f64],
    hess: &mut [f64],
) -> bool {
    let rank = u.len();
    grad.fill(0.0);
    hess.fill(0.0);
    for (zc, &lt) in zcache.chunks_exact(rank).zip(logs) {
        let m: f64 = zc.iter().zip(u).map(|(a, b)| a * b).sum();
        let Some((gcoef, hcoef)) = newton_coeffs(m, lt, inv) else {
            return false;
        };
        for (g, &za) in grad.iter_mut().zip(zc) {
            *g += gcoef * za;
        }
        for (hrow, &za) in hess.chunks_exact_mut(rank).zip(zc) {
            let ha = hcoef * za;
            for (h, &zb) in hrow.iter_mut().zip(zc) {
                *h += ha * zb;
            }
        }
    }
    true
}

/// Damped Newton iterations on one row with fraction-to-boundary steps.
/// `u` is the row slice of the factor being updated (mutated in place);
/// every auxiliary buffer lives in the scratch.
fn newton_row(
    s: &mut NewtonScratch,
    logs: &[f64],
    eta: f64,
    config: &AmnConfig,
    u: &mut [f64],
    reference: bool,
) {
    let inv = 1.0 / logs.len() as f64;
    // Carried objective value at the current iterate: the accepted
    // line-search probe of iteration `i` *is* the starting objective of
    // iteration `i + 1` (same function, same point — bitwise the same
    // number), so the streamed path skips re-evaluating it and saves one
    // full `ln` pass over the row's observations per Newton iteration. The
    // reference path recomputes, staying a faithful PR 3 control.
    let mut carried_f0: Option<f64> = None;
    for _it in 0..config.newton_iters {
        let system_ok = if reference {
            acc_newton_generic(&s.zcache, logs, u, inv, &mut s.grad, s.hess.as_mut_slice())
        } else {
            accumulate_newton_system(&s.zcache, logs, u, inv, &mut s.grad, s.hess.as_mut_slice())
        };
        if !system_ok {
            // Outside the domain (shouldn't happen with positive iterates
            // and non-negative z); bail out of this row.
            return;
        }
        // Ridge and barrier contributions.
        for (a, (&ua, g)) in u.iter().zip(s.grad.iter_mut()).enumerate() {
            *g += 2.0 * config.lambda * ua - eta / ua;
            s.hess[(a, a)] += 2.0 * config.lambda + eta / (ua * ua);
        }
        // Newton direction: H Δ = -grad.
        for (n, g) in s.neg_grad.iter_mut().zip(&s.grad) {
            *n = -g;
        }
        solve_spd_jittered_into(&s.hess, &s.neg_grad, &mut s.chol, &mut s.delta);
        let dnorm: f64 = s.delta.iter().map(|x| x * x).sum::<f64>().sqrt();
        let unorm: f64 = u.iter().map(|x| x * x).sum::<f64>().sqrt();
        if !dnorm.is_finite() || dnorm <= config.newton_tol * unorm.max(1e-300) {
            break;
        }
        // Fraction-to-boundary: keep iterate strictly positive.
        let mut alpha: f64 = 1.0;
        for (ua, da) in u.iter().zip(&s.delta) {
            if *da < 0.0 {
                alpha = alpha.min(0.995 * (-ua / da));
            }
        }
        // Backtracking line search for actual decrease.
        let f0 = match carried_f0 {
            Some(f) if !reference => f,
            _ => row_objective(&s.zcache, logs, eta, config.lambda, u),
        };
        let mut accepted = false;
        for _ in 0..30 {
            for ((c, a), d) in s.cand.iter_mut().zip(&*u).zip(&s.delta) {
                *c = a + alpha * d;
            }
            let f1 = row_objective(&s.zcache, logs, eta, config.lambda, &s.cand);
            if f1 < f0 {
                u.copy_from_slice(&s.cand);
                carried_f0 = Some(f1);
                accepted = true;
                break;
            }
            alpha *= 0.5;
            if alpha * dnorm < 1e-16 * unorm.max(1e-300) {
                break;
            }
        }
        if !accepted {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpr_tensor::DenseTensor;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn geo_mean(values: &[f64]) -> f64 {
        (values.iter().map(|v| v.ln()).sum::<f64>() / values.len() as f64).exp()
    }

    fn positive_obs(dims: &[usize], seed: u64) -> SparseTensor {
        // Separable positive ground truth: exactly rank 1 in linear space.
        let t = DenseTensor::from_fn(dims, |idx| {
            idx.iter()
                .enumerate()
                .map(|(j, &i)| 1.0 + (i as f64) * (j as f64 + 0.5))
                .product()
        });
        let mut rng = StdRng::seed_from_u64(seed);
        let mut obs = SparseTensor::new(dims);
        for (idx, v) in t.iter_indexed() {
            if rng.gen::<f64>() < 0.8 {
                obs.push(&idx, v);
            }
        }
        obs
    }

    #[test]
    fn init_positive_hits_target_scale() {
        let cp = init_positive(&[8, 8, 8], 4, 12.5, 3);
        assert!(cp.is_strictly_positive());
        let dense = cp.to_dense();
        let gm = geo_mean(dense.as_slice());
        assert!(
            gm > 12.5 / 5.0 && gm < 12.5 * 5.0,
            "geometric mean {gm} too far from 12.5"
        );
    }

    #[test]
    fn factors_stay_strictly_positive() {
        let obs = positive_obs(&[5, 5, 4], 7);
        let gm = geo_mean(obs.values());
        let mut cp = init_positive(&[5, 5, 4], 2, gm, 8);
        amn(&mut cp, &obs, &AmnConfig::default());
        assert!(cp.is_strictly_positive(), "AMN broke positivity");
    }

    #[test]
    fn fits_separable_positive_data_in_log_space() {
        let obs = positive_obs(&[6, 5, 4], 9);
        let gm = geo_mean(obs.values());
        let mut cp = init_positive(&[6, 5, 4], 2, gm, 10);
        let trace = amn(
            &mut cp,
            &obs,
            &AmnConfig {
                lambda: 1e-8,
                ..Default::default()
            },
        );
        // Mean log-squared error should be tiny for rank-2 on rank-1 data.
        let final_loss = trace.final_objective();
        assert!(final_loss < 1e-2 * obs.nnz() as f64, "loss {final_loss}");
        // Predictions within a few percent in ratio terms.
        let mut worst: f64 = 0.0;
        for (_, idx, t) in obs.iter() {
            let m = cp.eval_u32(idx);
            worst = worst.max((m / t).ln().abs());
        }
        assert!(worst < 0.3, "worst |log q| = {worst}");
    }

    #[test]
    fn objective_decreases_overall() {
        let obs = positive_obs(&[5, 4, 4], 13);
        let gm = geo_mean(obs.values());
        let mut cp = init_positive(&[5, 4, 4], 2, gm, 14);
        let start = log_objective(&cp, &obs, 1e-5);
        let trace = amn(&mut cp, &obs, &AmnConfig::default());
        assert!(
            trace.final_objective() < start,
            "no decrease: {start} -> {}",
            trace.final_objective()
        );
    }

    #[test]
    #[should_panic(expected = "positive observations")]
    fn rejects_nonpositive_observations() {
        let mut obs = SparseTensor::new(&[2, 2]);
        obs.push(&[0, 0], -1.0);
        let mut cp = init_positive(&[2, 2], 1, 1.0, 0);
        amn(&mut cp, &obs, &AmnConfig::default());
    }

    #[test]
    #[should_panic(expected = "positive initialization")]
    fn rejects_nonpositive_init() {
        let mut obs = SparseTensor::new(&[2, 2]);
        obs.push(&[0, 0], 1.0);
        let mut cp = CpDecomp::random(&[2, 2], 1, -1.0, 1.0, 123);
        // Force at least one non-positive entry.
        cp.factor_mut(0)[(0, 0)] = -0.5;
        amn(&mut cp, &obs, &AmnConfig::default());
    }

    #[test]
    fn handles_unobserved_fibers() {
        let mut obs = SparseTensor::new(&[4, 3]);
        for j in 0..3 {
            obs.push(&[0, j], 2.0 + j as f64);
            obs.push(&[1, j], 4.0 + j as f64);
        }
        // Rows 2, 3 of mode 0 unobserved.
        let mut cp = init_positive(&[4, 3], 2, 3.0, 15);
        amn(&mut cp, &obs, &AmnConfig::default());
        assert!(cp.is_strictly_positive());
        assert!(!cp.factor(0).has_non_finite());
    }

    #[test]
    fn scale_independence_of_loss() {
        // Scaling all observations by 1000 shouldn't change the fit quality
        // in MLogQ terms (only the model scale).
        let obs = positive_obs(&[5, 4], 20);
        let mut scaled = obs.clone();
        scaled.map_values_mut(|v| v * 1000.0);

        let fit = |o: &SparseTensor, seed| {
            let gm = geo_mean(o.values());
            let mut cp = init_positive(&[5, 4], 2, gm, seed);
            amn(
                &mut cp,
                o,
                &AmnConfig {
                    lambda: 1e-9,
                    ..Default::default()
                },
            );
            let mut total = 0.0;
            for (_, idx, t) in o.iter() {
                total += (cp.eval_u32(idx) / t).ln().abs();
            }
            total / o.nnz() as f64
        };
        let e1 = fit(&obs, 21);
        let e2 = fit(&scaled, 21);
        assert!((e1 - e2).abs() < 0.05, "scale dependence: {e1} vs {e2}");
    }
}
