//! # cpr-completion — tensor-completion optimizers
//!
//! Implements the optimization methods surveyed in §4.2 of the paper:
//!
//! * [`als`](als()) — alternating least squares (the workhorse for CPR's
//!   interpolation models, §5.2): row-wise ridge-regularized normal
//!   equations, Rayon-parallel across rows, monotone objective.
//! * [`ccd`](ccd()) — cyclic coordinate descent: scalar updates, `R`× cheaper
//!   sweeps, slower convergence (§4.2.1).
//! * [`sgd`](sgd()) — stochastic gradient descent over shuffled observations.
//! * [`amn`](amn()) — alternating minimization via Newton's method under the
//!   scale-independent MLogQ² loss with log-barrier positivity (§4.2.2);
//!   this is what CPR's extrapolation models (§5.3) train with.
//!
//! All optimizers mutate a [`cpr_tensor::CpDecomp`] in place and return a
//! [`convergence::Trace`] of per-sweep objectives.

//!
//! Every sweep optimizer runs **streamed**: packed per-mode observation
//! layouts ([`cpr_tensor::ModeStream`]), sweep-ordered partial-product
//! leave-one-out caching ([`cpr_tensor::SweepCache`]), and
//! rank-monomorphized normal-equation kernels (see [`sweep`]). Each keeps a
//! retained naive reference path (`als_reference`, `amn_reference`,
//! `ccd_reference`, `tucker_als_reference`) that the streamed path is
//! pinned bitwise-equal to by proptests.

pub mod als;
pub mod amn;
pub mod ccd;
pub mod convergence;
pub mod optimizer;
pub mod sgd;
pub mod sweep;
pub mod tucker_als;

pub use als::{als, als_reference, als_with_streams, AlsConfig};
pub use amn::{amn, amn_reference, init_positive, log_objective, AmnConfig};
pub use ccd::{ccd, ccd_reference, CcdConfig};
pub use convergence::{StopRule, Trace};
pub use optimizer::{complete, CompletionSpec, Optimizer};
pub use sgd::{sgd, SgdConfig};
pub use sweep::build_streams;
pub use tucker_als::{tucker_als, tucker_als_reference, tucker_objective, TuckerConfig};
