//! # cpr-completion — tensor-completion optimizers
//!
//! Implements the optimization methods surveyed in §4.2 of the paper:
//!
//! * [`als`](als()) — alternating least squares (the workhorse for CPR's
//!   interpolation models, §5.2): row-wise ridge-regularized normal
//!   equations, Rayon-parallel across rows, monotone objective.
//! * [`ccd`](ccd()) — cyclic coordinate descent: scalar updates, `R`× cheaper
//!   sweeps, slower convergence (§4.2.1).
//! * [`sgd`](sgd()) — stochastic gradient descent over shuffled observations.
//! * [`amn`](amn()) — alternating minimization via Newton's method under the
//!   scale-independent MLogQ² loss with log-barrier positivity (§4.2.2);
//!   this is what CPR's extrapolation models (§5.3) train with.
//!
//! All optimizers mutate a [`cpr_tensor::CpDecomp`] in place and return a
//! [`convergence::Trace`] of per-sweep objectives.

pub mod als;
pub mod amn;
pub mod ccd;
pub mod convergence;
pub mod sgd;
pub mod tucker_als;

pub use als::{als, AlsConfig};
pub use amn::{amn, init_positive, log_objective, AmnConfig};
pub use ccd::{ccd, CcdConfig};
pub use convergence::{StopRule, Trace};
pub use sgd::{sgd, SgdConfig};
pub use tucker_als::{tucker_als, tucker_objective, TuckerConfig};
