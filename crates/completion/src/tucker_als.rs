//! Tucker tensor completion by alternating least squares.
//!
//! Extends §4.2.1's ALS to the Tucker model the paper defers to future work:
//! factor rows solve the same ridge-regularized normal equations as CP rows
//! (with the design vector being the core-contracted leave-one-out product),
//! and the core solves a global least-squares problem over all observed
//! entries with `Π R_j` unknowns.
//!
//! The streamed sweep mirrors the CP optimizers: row loops walk the packed
//! per-mode [`ModeStream`] layouts (contiguous values + foreign
//! multi-indices), factor rows are read through a [`PackedFactors`] bake,
//! and the design vectors come from a mode-`m` core unfolding contracted
//! against an incrementally built Kronecker vector — `O(Π R_j)` contiguous
//! multiply-adds per observation instead of the old per-core-element
//! div/mod walk (which also allocated a `Vec` per core element through
//! `DenseTensor::iter_indexed`). The per-sweep objective is recovered
//! algebraically from the core's normal equations (`cᵀGc − 2cᵀr + Σy²`),
//! eliminating the former `O(|Ω| Π R_j)` evaluation pass. The retained
//! naive path [`tucker_als_reference`] recomputes every design vector
//! element-by-element with the same canonical association; proptests pin
//! the two bitwise-equal.

use crate::convergence::{StopRule, Trace};
use crate::sweep::{accumulate_normal_equations_cached, build_streams, fused_quadratic_loss};
use cpr_tensor::linalg::{solve_spd_jittered, solve_spd_jittered_into};
use cpr_tensor::tucker::TuckerDecomp;
use cpr_tensor::{DenseTensor, Matrix, ModeIndex, ModeStream, PackedFactors, SparseTensor};
use rayon::prelude::*;

/// Tucker-ALS configuration.
#[derive(Debug, Clone, Copy)]
pub struct TuckerConfig {
    /// Ridge regularization λ (applied to factors and core).
    pub lambda: f64,
    /// Stopping rule.
    pub stop: StopRule,
}

impl Default for TuckerConfig {
    fn default() -> Self {
        Self {
            lambda: 1e-5,
            stop: StopRule::default(),
        }
    }
}

/// Squared-error objective with ridge terms on factors and core.
pub fn tucker_objective(t: &TuckerDecomp, obs: &SparseTensor, lambda: f64) -> f64 {
    let mut loss = 0.0;
    for (_, idx, v) in obs.iter() {
        let e = t.eval_u32(idx) - v;
        loss += e * e;
    }
    let reg_f: f64 = (0..t.order()).map(|m| t.factor(m).fro_norm_sq()).sum();
    let reg_c: f64 = t.core().as_slice().iter().map(|v| v * v).sum();
    loss + lambda * (reg_f + reg_c)
}

/// Run Tucker-ALS completion, updating `t` in place (streamed sweep; see
/// the module docs and [`tucker_als_reference`]).
pub fn tucker_als(t: &mut TuckerDecomp, obs: &SparseTensor, config: &TuckerConfig) -> Trace {
    assert_eq!(t.dims(), obs.dims(), "Tucker-ALS: shape mismatch");
    let streams = build_streams(obs);

    let mut trace = Trace::default();
    let mut prev = tucker_objective(t, obs, config.lambda);
    for _sweep in 0..config.stop.max_sweeps {
        for (mode, stream) in streams.iter().enumerate() {
            update_factor_streamed(t, stream, mode, config);
        }
        // Incremental-Kronecker designer: k = ⊗_j U_j[i_j, :], built by
        // folding the packed factor rows in ascending mode order (left
        // association — the canonical order the reference reproduces
        // element-by-element).
        let packed = t.packed();
        let d = t.order();
        let mut ktmp: Vec<f64> = Vec::new();
        let data_loss = update_core_with(t, obs, config, |idx, design| {
            design.clear();
            design.push(1.0);
            for (j, &i) in idx.iter().enumerate().take(d) {
                kron_fold(packed.row(j, i as usize), design, &mut ktmp);
            }
        });
        let g = sweep_objective(t, data_loss, config.lambda);
        trace.objective.push(g);
        if config.stop.converged(prev, g) {
            trace.converged = true;
            break;
        }
        prev = g;
    }
    trace
}

/// The retained reference sweep: design vectors recomputed naively per
/// observation (per-element core walk, same canonical association as the
/// streamed Kronecker build) through the [`ModeIndex`] inverted index.
/// [`tucker_als`] must match it bitwise (the `stream_equivalence`
/// proptests); `perf_snapshot` times it as the same-run A/B control.
pub fn tucker_als_reference(
    t: &mut TuckerDecomp,
    obs: &SparseTensor,
    config: &TuckerConfig,
) -> Trace {
    assert_eq!(t.dims(), obs.dims(), "Tucker-ALS: shape mismatch");
    let d = t.order();
    let mode_indices: Vec<ModeIndex> = (0..d).map(|m| obs.mode_index(m)).collect();

    let mut trace = Trace::default();
    let mut prev = tucker_objective(t, obs, config.lambda);
    for _sweep in 0..config.stop.max_sweeps {
        for (mode, mi) in mode_indices.iter().enumerate() {
            update_factor_reference(t, obs, mode, mi, config);
        }
        let frozen = t.clone();
        let mut digits: Vec<usize> = Vec::new();
        let data_loss = update_core_with(t, obs, config, |idx, design| {
            let ranks = frozen.ranks();
            let p = frozen.core().len();
            design.clear();
            design.resize(p, 0.0);
            let core_dims = ranks.len();
            for (flat, slot) in design.iter_mut().enumerate() {
                digits.clear();
                digits.resize(core_dims, 0);
                let mut rem = flat;
                for j in (0..core_dims).rev() {
                    digits[j] = rem % ranks[j];
                    rem /= ranks[j];
                }
                let mut k = 1.0;
                for (j, &r) in digits.iter().enumerate() {
                    k *= frozen.factor(j)[(idx[j] as usize, r)];
                }
                *slot = k;
            }
        });
        let g = sweep_objective(t, data_loss, config.lambda);
        trace.objective.push(g);
        if config.stop.converged(prev, g) {
            trace.converged = true;
            break;
        }
        prev = g;
    }
    trace
}

/// Post-sweep objective from the fused core data loss plus ridge terms.
fn sweep_objective(t: &TuckerDecomp, data_loss: f64, lambda: f64) -> f64 {
    let reg_f: f64 = (0..t.order()).map(|m| t.factor(m).fro_norm_sq()).sum();
    let reg_c: f64 = t.core().as_slice().iter().map(|v| v * v).sum();
    data_loss + lambda * (reg_f + reg_c)
}

/// Per-worker scratch for the Tucker row solves.
struct RowScratch {
    gram: Matrix,
    chol: Matrix,
    rhs: Vec<f64>,
    z: Vec<f64>,
    zcache: Vec<f64>,
    kron: Vec<f64>,
    ktmp: Vec<f64>,
    digits: Vec<usize>,
}

impl RowScratch {
    fn new(rank: usize) -> Self {
        Self {
            gram: Matrix::zeros(rank, rank),
            chol: Matrix::zeros(rank, rank),
            rhs: vec![0.0; rank],
            z: vec![0.0; rank],
            zcache: Vec::new(),
            kron: Vec::new(),
            ktmp: Vec::new(),
            digits: Vec::new(),
        }
    }
}

/// Mode-`m` unfolding of the core as a flat `R_m x Π_{j≠m} R_j` row-major
/// matrix, foreign columns in ascending mode order (last foreign mode
/// fastest — the order the incremental Kronecker build produces).
fn unfold_core(core: &DenseTensor, mode: usize) -> Vec<f64> {
    let ranks = core.dims();
    let rm = ranks[mode];
    let stride: usize = ranks[mode + 1..].iter().product();
    let total = core.len();
    let fsize = total / rm;
    let mut unf = vec![0.0; total];
    for (flat, &g) in core.as_slice().iter().enumerate() {
        let r = (flat / stride) % rm;
        let high = flat / (stride * rm);
        let low = flat % stride;
        unf[r * fsize + high * stride + low] = g;
    }
    unf
}

/// One step of the incremental Kronecker build: `kron ⊗= row` with left
/// association (`((k·u_j0)·u_j1)…` per element — the canonical order the
/// reference designs reproduce element-by-element; the streamed and
/// reference paths must never diverge in this fold, so it lives in exactly
/// one place). `tmp` is swap scratch.
#[inline]
fn kron_fold(row: &[f64], kron: &mut Vec<f64>, tmp: &mut Vec<f64>) {
    tmp.clear();
    tmp.reserve(kron.len() * row.len());
    for &a in kron.iter() {
        for &b in row {
            tmp.push(a * b);
        }
    }
    std::mem::swap(kron, tmp);
}

/// Streamed design vector of one observation for `mode`: build the foreign
/// Kronecker vector from packed factor rows (ascending modes, left
/// association), then contract each unfolded-core row against it.
#[allow(clippy::too_many_arguments)]
fn design_streamed(
    foreign: &[u32],
    packed: &PackedFactors,
    foreign_modes: &[usize],
    unf: &[f64],
    fsize: usize,
    kron: &mut Vec<f64>,
    tmp: &mut Vec<f64>,
    out: &mut [f64],
) {
    kron.clear();
    kron.push(1.0);
    for (&i, &j) in foreign.iter().zip(foreign_modes) {
        kron_fold(packed.row(j, i as usize), kron, tmp);
    }
    debug_assert_eq!(kron.len(), fsize);
    for (o, urow) in out.iter_mut().zip(unf.chunks_exact(fsize)) {
        let mut acc = 0.0;
        for (&g, &k) in urow.iter().zip(kron.iter()) {
            acc += g * k;
        }
        *o = acc;
    }
}

/// Reference design vector: per-element core walk with the same canonical
/// association (`k` folded left over ascending foreign modes, `acc` summed
/// in ascending foreign-column order).
fn design_reference(
    t: &TuckerDecomp,
    idx: &[u32],
    mode: usize,
    out: &mut [f64],
    digits: &mut Vec<usize>,
) {
    let ranks = t.ranks();
    let d = ranks.len();
    let rm = ranks[mode];
    let total = t.core().len();
    let fsize = total / rm;
    let core = t.core().as_slice();
    for (r, o) in out.iter_mut().enumerate() {
        let mut acc = 0.0;
        for f in 0..fsize {
            digits.clear();
            digits.resize(d, 0);
            digits[mode] = r;
            let mut rem = f;
            for j in (0..d).rev() {
                if j == mode {
                    continue;
                }
                digits[j] = rem % ranks[j];
                rem /= ranks[j];
            }
            let mut flat = 0usize;
            for (j, &dg) in digits.iter().enumerate() {
                flat = flat * ranks[j] + dg;
            }
            let mut k = 1.0;
            for (j, &dg) in digits.iter().enumerate() {
                if j == mode {
                    continue;
                }
                k *= t.factor(j)[(idx[j] as usize, dg)];
            }
            acc += core[flat] * k;
        }
        *o = acc;
    }
}

/// Shared row finish: scale + ridge + solve straight into the factor row.
#[inline]
fn finish_row(s: &mut RowScratch, n_entries: usize, rank: usize, lambda: f64, row: &mut [f64]) {
    let scale = 1.0 / n_entries as f64;
    s.gram.scale_mut(scale);
    for r in &mut s.rhs {
        *r *= scale;
    }
    for a in 0..rank {
        s.gram[(a, a)] += lambda;
    }
    solve_spd_jittered_into(&s.gram, &s.rhs, &mut s.chol, row);
}

/// Streamed row-wise ridge solve for one mode's factor (parallel across
/// rows, written in place — no model clone, no per-row allocations).
fn update_factor_streamed(
    t: &mut TuckerDecomp,
    stream: &ModeStream,
    mode: usize,
    config: &TuckerConfig,
) {
    let rank = t.ranks()[mode];
    let mut factor = t.take_factor(mode);
    let frozen: &TuckerDecomp = t;
    // Bake the frozen factors (the taken mode sits as a 0 x 0 placeholder
    // and is never read) and the mode's core unfolding once per update.
    let packed = PackedFactors::from_matrices(frozen.factors());
    let unf = unfold_core(frozen.core(), mode);
    let foreign_modes: Vec<usize> = (0..frozen.order()).filter(|&j| j != mode).collect();
    let fsize = frozen.core().len() / rank;
    let lambda = config.lambda;
    let vals = stream.values();
    factor
        .as_mut_slice()
        .par_chunks_mut(rank)
        .enumerate()
        .for_each_init(
            || RowScratch::new(rank),
            |s, (i, row)| {
                let rng = stream.row_range(i);
                if rng.is_empty() {
                    row.fill(0.0); // ridge minimizer for unobserved fibers
                    return;
                }
                s.zcache.clear();
                s.zcache.reserve(rng.len() * rank);
                for slot in rng.clone() {
                    design_streamed(
                        stream.foreign(slot),
                        &packed,
                        &foreign_modes,
                        &unf,
                        fsize,
                        &mut s.kron,
                        &mut s.ktmp,
                        &mut s.z,
                    );
                    s.zcache.extend_from_slice(&s.z);
                }
                accumulate_normal_equations_cached(
                    &s.zcache,
                    &vals[rng.clone()],
                    rank,
                    s.gram.as_mut_slice(),
                    &mut s.rhs,
                );
                finish_row(s, rng.len(), rank, lambda, row);
            },
        );
    t.set_factor(mode, factor);
}

/// Reference row-wise ridge solve (see [`tucker_als_reference`]).
fn update_factor_reference(
    t: &mut TuckerDecomp,
    obs: &SparseTensor,
    mode: usize,
    mi: &ModeIndex,
    config: &TuckerConfig,
) {
    let rank = t.ranks()[mode];
    let mut factor = t.take_factor(mode);
    let frozen: &TuckerDecomp = t;
    let lambda = config.lambda;
    factor
        .as_mut_slice()
        .par_chunks_mut(rank)
        .enumerate()
        .for_each_init(
            || RowScratch::new(rank),
            |s, (i, row)| {
                let entries = mi.row(i);
                if entries.is_empty() {
                    row.fill(0.0);
                    return;
                }
                let gram = s.gram.as_mut_slice();
                gram.fill(0.0);
                s.rhs.fill(0.0);
                for &e in entries {
                    let e = e as usize;
                    design_reference(frozen, obs.index(e), mode, &mut s.z, &mut s.digits);
                    let y = obs.value(e);
                    for (r, &za) in s.rhs.iter_mut().zip(&s.z) {
                        *r += y * za;
                    }
                    for (grow, &za) in gram.chunks_exact_mut(rank).zip(&s.z) {
                        for (g, &zb) in grow.iter_mut().zip(&s.z) {
                            *g += za * zb;
                        }
                    }
                }
                finish_row(s, entries.len(), rank, lambda, row);
            },
        );
    t.set_factor(mode, factor);
}

/// Global least-squares update of the core: design row per observation is
/// the Kronecker product of the factor rows at its multi-index, produced by
/// `designer` (streamed: incremental fold; reference: per-element walk).
/// Returns the post-update data loss `Σ (t̂ − y)²`, recovered algebraically
/// from the normal equations (`cᵀGc − 2cᵀr + Σy²`, unscaled `G, r`).
fn update_core_with(
    t: &mut TuckerDecomp,
    obs: &SparseTensor,
    config: &TuckerConfig,
    mut designer: impl FnMut(&[u32], &mut Vec<f64>),
) -> f64 {
    let p: usize = t.ranks().iter().product();
    let mut gram = Matrix::zeros(p, p);
    let mut rhs = vec![0.0; p];
    let mut design: Vec<f64> = Vec::with_capacity(p);
    let mut y2 = 0.0;
    for (_, idx, y) in obs.iter() {
        designer(idx, &mut design);
        y2 += y * y;
        for a in 0..p {
            let da = design[a];
            if da == 0.0 {
                continue;
            }
            rhs[a] += y * da;
            let grow = gram.row_mut(a);
            for b in a..p {
                grow[b] += da * design[b];
            }
        }
    }
    let scale = 1.0 / obs.nnz().max(1) as f64;
    for a in 0..p {
        for b in 0..a {
            gram[(a, b)] = gram[(b, a)];
        }
    }
    gram.scale_mut(scale);
    for r in &mut rhs {
        *r *= scale;
    }
    for a in 0..p {
        gram[(a, a)] += config.lambda;
    }
    let core_flat = solve_spd_jittered(&gram, &rhs);
    t.core_mut().as_mut_slice().copy_from_slice(&core_flat);
    fused_quadratic_loss(
        gram.as_slice(),
        &rhs,
        t.core().as_slice(),
        p,
        config.lambda,
        scale,
        y2,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn sampled_obs(truth: &TuckerDecomp, frac: f64, seed: u64) -> SparseTensor {
        let dense = truth.to_dense();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut obs = SparseTensor::new(dense.dims());
        for (idx, v) in dense.iter_indexed() {
            if rng.gen::<f64>() < frac {
                obs.push(&idx, v);
            }
        }
        obs
    }

    #[test]
    fn fits_fully_observed_tucker_data() {
        let truth = TuckerDecomp::random(&[6, 5, 4], &[2, 2, 2], 0.3, 1.2, 3);
        let obs = SparseTensor::from_dense(&truth.to_dense());
        let mut model = TuckerDecomp::random(&[6, 5, 4], &[2, 2, 2], 0.1, 1.0, 4);
        let cfg = TuckerConfig {
            lambda: 1e-9,
            stop: StopRule {
                max_sweeps: 300,
                tol: 1e-13,
            },
        };
        tucker_als(&mut model, &obs, &cfg);
        // Alternating schemes plateau near (not at) exact recovery; require
        // a fit far below the O(1) data scale.
        assert!(model.rmse(&obs) < 5e-3, "rmse {}", model.rmse(&obs));
    }

    #[test]
    fn completes_partially_observed() {
        let truth = TuckerDecomp::random(&[7, 7, 6], &[2, 2, 2], 0.4, 1.2, 11);
        let obs = sampled_obs(&truth, 0.6, 12);
        let mut model = TuckerDecomp::random(&[7, 7, 6], &[2, 2, 2], 0.1, 1.0, 13);
        let cfg = TuckerConfig {
            lambda: 1e-8,
            stop: StopRule {
                max_sweeps: 400,
                tol: 1e-13,
            },
        };
        tucker_als(&mut model, &obs, &cfg);
        let full = SparseTensor::from_dense(&truth.to_dense());
        assert!(
            model.rmse(&full) < 0.05,
            "generalization rmse {}",
            model.rmse(&full)
        );
    }

    #[test]
    fn objective_is_monotone() {
        let truth = TuckerDecomp::random(&[5, 5, 4], &[2, 2, 2], 0.3, 1.0, 20);
        let obs = sampled_obs(&truth, 0.8, 21);
        let mut model = TuckerDecomp::random(&[5, 5, 4], &[2, 2, 2], 0.1, 1.0, 22);
        let trace = tucker_als(&mut model, &obs, &TuckerConfig::default());
        assert!(trace.is_monotone(1e-9), "{:?}", trace.objective);
    }

    #[test]
    fn fused_objective_matches_direct_evaluation() {
        // The algebraic per-sweep objective must agree with a from-scratch
        // tucker_objective evaluation up to cancellation noise.
        let truth = TuckerDecomp::random(&[6, 5, 4], &[2, 3, 2], 0.3, 1.1, 33);
        let obs = sampled_obs(&truth, 0.7, 34);
        let mut model = TuckerDecomp::random(&[6, 5, 4], &[2, 3, 2], 0.1, 1.0, 35);
        let cfg = TuckerConfig {
            lambda: 1e-6,
            stop: StopRule {
                max_sweeps: 5,
                tol: -1.0,
            },
        };
        let trace = tucker_als(&mut model, &obs, &cfg);
        let direct = tucker_objective(&model, &obs, cfg.lambda);
        let fused = trace.final_objective();
        assert!(
            (fused - direct).abs() <= 1e-9 * direct.abs().max(1.0),
            "fused {fused} vs direct {direct}"
        );
    }

    #[test]
    fn streamed_design_matches_legacy_design_vector() {
        // The canonical (unfold + Kronecker) design agrees with the legacy
        // `leave_one_out_design` contraction up to association noise.
        let t = TuckerDecomp::random(&[5, 4, 3], &[2, 3, 2], -1.0, 1.0, 40);
        let idx = [4u32, 2, 1];
        let mut digits = Vec::new();
        for mode in 0..3 {
            let rank = t.ranks()[mode];
            let mut canonical = vec![0.0; rank];
            design_reference(&t, &idx, mode, &mut canonical, &mut digits);
            let mut legacy = vec![0.0; rank];
            t.leave_one_out_design(&idx, mode, &mut legacy);
            for (a, b) in canonical.iter().zip(&legacy) {
                assert!((a - b).abs() < 1e-12, "mode {mode}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn tucker_can_beat_equal_budget_cp_on_core_heavy_data() {
        // Data with a dense cross-component core: Tucker's core captures the
        // interactions; a CP model of equal parameter budget struggles.
        let truth = TuckerDecomp::random(&[8, 8, 8], &[3, 3, 3], -1.0, 1.0, 30);
        let obs = sampled_obs(&truth, 0.7, 31);
        let mut tucker = TuckerDecomp::random(&[8, 8, 8], &[3, 3, 3], 0.1, 1.0, 32);
        tucker_als(
            &mut tucker,
            &obs,
            &TuckerConfig {
                lambda: 1e-8,
                stop: StopRule {
                    max_sweeps: 200,
                    tol: 1e-12,
                },
            },
        );
        // CP with rank chosen to roughly match Tucker's parameter count.
        let cp_rank = tucker.param_count() / (3 * 8);
        let mut cp = cpr_tensor::CpDecomp::random(&[8, 8, 8], cp_rank.max(1), 0.1, 1.0, 33);
        crate::als::als(
            &mut cp,
            &obs,
            &crate::als::AlsConfig {
                lambda: 1e-8,
                stop: StopRule {
                    max_sweeps: 200,
                    tol: 1e-12,
                },
                scale_by_count: true,
            },
        );
        let full = SparseTensor::from_dense(&truth.to_dense());
        let (tr, cr) = (tucker.rmse(&full), cp.rmse(&full));
        // Tucker should at least be competitive on its own model class.
        assert!(tr < cr * 2.0 + 0.05, "tucker {tr} vs cp {cr}");
    }

    #[test]
    fn empty_fibers_zeroed() {
        let mut obs = SparseTensor::new(&[4, 3]);
        obs.push(&[0, 0], 1.0);
        obs.push(&[1, 1], 2.0);
        let mut model = TuckerDecomp::random(&[4, 3], &[2, 2], 0.1, 1.0, 40);
        tucker_als(&mut model, &obs, &TuckerConfig::default());
        assert!(model.factor(0).row(3).iter().all(|&v| v == 0.0));
    }
}
