//! Tucker tensor completion by alternating least squares.
//!
//! Extends §4.2.1's ALS to the Tucker model the paper defers to future work:
//! factor rows solve the same ridge-regularized normal equations as CP rows
//! (with the design vector being the core-contracted leave-one-out product),
//! and the core solves a global least-squares problem over all observed
//! entries with `Π R_j` unknowns.

use crate::convergence::{StopRule, Trace};
use cpr_tensor::linalg::{solve_spd_jittered, solve_spd_jittered_into};
use cpr_tensor::tucker::TuckerDecomp;
use cpr_tensor::{Matrix, ModeIndex, SparseTensor};
use rayon::prelude::*;

/// Tucker-ALS configuration.
#[derive(Debug, Clone, Copy)]
pub struct TuckerConfig {
    /// Ridge regularization λ (applied to factors and core).
    pub lambda: f64,
    /// Stopping rule.
    pub stop: StopRule,
}

impl Default for TuckerConfig {
    fn default() -> Self {
        Self {
            lambda: 1e-5,
            stop: StopRule::default(),
        }
    }
}

/// Squared-error objective with ridge terms on factors and core.
pub fn tucker_objective(t: &TuckerDecomp, obs: &SparseTensor, lambda: f64) -> f64 {
    let mut loss = 0.0;
    for (_, idx, v) in obs.iter() {
        let e = t.eval_u32(idx) - v;
        loss += e * e;
    }
    let reg_f: f64 = (0..t.order()).map(|m| t.factor(m).fro_norm_sq()).sum();
    let reg_c: f64 = t.core().as_slice().iter().map(|v| v * v).sum();
    loss + lambda * (reg_f + reg_c)
}

/// Run Tucker-ALS completion, updating `t` in place.
pub fn tucker_als(t: &mut TuckerDecomp, obs: &SparseTensor, config: &TuckerConfig) -> Trace {
    assert_eq!(t.dims(), obs.dims(), "Tucker-ALS: shape mismatch");
    let d = t.order();
    let mode_indices: Vec<ModeIndex> = (0..d).map(|m| obs.mode_index(m)).collect();

    let mut trace = Trace::default();
    let mut prev = tucker_objective(t, obs, config.lambda);
    for _sweep in 0..config.stop.max_sweeps {
        for (mode, mi) in mode_indices.iter().enumerate() {
            update_factor(t, obs, mode, mi, config);
        }
        update_core(t, obs, config);
        let g = tucker_objective(t, obs, config.lambda);
        trace.objective.push(g);
        if config.stop.converged(prev, g) {
            trace.converged = true;
            break;
        }
        prev = g;
    }
    trace
}

/// Per-worker scratch for the Tucker row solves (see `als::RowScratch`).
struct RowScratch {
    gram: Matrix,
    chol: Matrix,
    rhs: Vec<f64>,
    z: Vec<f64>,
}

impl RowScratch {
    fn new(rank: usize) -> Self {
        Self {
            gram: Matrix::zeros(rank, rank),
            chol: Matrix::zeros(rank, rank),
            rhs: vec![0.0; rank],
            z: vec![0.0; rank],
        }
    }
}

/// Accumulate one row's design normal equations (`gram += Σ z zᵀ` full
/// square, `rhs += Σ y z`). A free function so the `&mut` slice arguments
/// carry noalias guarantees and the rank-1 update vectorizes (see
/// `als::accumulate_normal_equations`).
fn accumulate_design_equations(
    frozen: &TuckerDecomp,
    obs: &SparseTensor,
    entries: &[u32],
    mode: usize,
    gram: &mut [f64],
    rhs: &mut [f64],
    z: &mut [f64],
) {
    let rank = rhs.len();
    gram.fill(0.0);
    rhs.fill(0.0);
    for &e in entries {
        let e = e as usize;
        frozen.leave_one_out_design(obs.index(e), mode, z);
        let y = obs.value(e);
        for (r, &za) in rhs.iter_mut().zip(&*z) {
            *r += y * za;
        }
        for (grow, &za) in gram.chunks_exact_mut(rank).zip(&*z) {
            for (g, &zb) in grow.iter_mut().zip(&*z) {
                *g += za * zb;
            }
        }
    }
}

/// Row-wise ridge solve for one mode's factor (parallel across rows,
/// written in place — no model clone, no per-row allocations).
fn update_factor(
    t: &mut TuckerDecomp,
    obs: &SparseTensor,
    mode: usize,
    mi: &ModeIndex,
    config: &TuckerConfig,
) {
    let rank = t.ranks()[mode];
    let mut factor = t.take_factor(mode);
    let frozen: &TuckerDecomp = t;
    let lambda = config.lambda;
    factor
        .as_mut_slice()
        .par_chunks_mut(rank)
        .enumerate()
        .for_each_init(
            || RowScratch::new(rank),
            |s, (i, row)| {
                let entries = mi.row(i);
                if entries.is_empty() {
                    row.fill(0.0); // ridge minimizer for unobserved fibers
                    return;
                }
                accumulate_design_equations(
                    frozen,
                    obs,
                    entries,
                    mode,
                    s.gram.as_mut_slice(),
                    &mut s.rhs,
                    &mut s.z,
                );
                let scale = 1.0 / entries.len() as f64;
                s.gram.scale_mut(scale);
                for r in &mut s.rhs {
                    *r *= scale;
                }
                for a in 0..rank {
                    s.gram[(a, a)] += lambda;
                }
                solve_spd_jittered_into(&s.gram, &s.rhs, &mut s.chol, row);
            },
        );
    t.set_factor(mode, factor);
}

/// Global least-squares update of the core: design row per observation is
/// the Kronecker product of the factor rows at its multi-index.
fn update_core(t: &mut TuckerDecomp, obs: &SparseTensor, config: &TuckerConfig) {
    let ranks: Vec<usize> = t.ranks().to_vec();
    let p: usize = ranks.iter().product();
    let mut gram = Matrix::zeros(p, p);
    let mut rhs = vec![0.0; p];
    let mut design = vec![0.0; p];
    for (_, idx, y) in obs.iter() {
        // design[flat(r)] = Π_j U_j[i_j, r_j], flat = row-major over ranks.
        for (flat, slot) in design.iter_mut().enumerate() {
            let mut rem = flat;
            let mut w = 1.0;
            for j in (0..ranks.len()).rev() {
                let r = rem % ranks[j];
                rem /= ranks[j];
                w *= t.factor(j)[(idx[j] as usize, r)];
            }
            *slot = w;
        }
        for a in 0..p {
            let da = design[a];
            if da == 0.0 {
                continue;
            }
            rhs[a] += y * da;
            let grow = gram.row_mut(a);
            for b in a..p {
                grow[b] += da * design[b];
            }
        }
    }
    let scale = 1.0 / obs.nnz().max(1) as f64;
    for a in 0..p {
        for b in 0..a {
            gram[(a, b)] = gram[(b, a)];
        }
    }
    gram.scale_mut(scale);
    for r in &mut rhs {
        *r *= scale;
    }
    for a in 0..p {
        gram[(a, a)] += config.lambda;
    }
    let core_flat = solve_spd_jittered(&gram, &rhs);
    t.core_mut().as_mut_slice().copy_from_slice(&core_flat);
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn sampled_obs(truth: &TuckerDecomp, frac: f64, seed: u64) -> SparseTensor {
        let dense = truth.to_dense();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut obs = SparseTensor::new(dense.dims());
        for (idx, v) in dense.iter_indexed() {
            if rng.gen::<f64>() < frac {
                obs.push(&idx, v);
            }
        }
        obs
    }

    #[test]
    fn fits_fully_observed_tucker_data() {
        let truth = TuckerDecomp::random(&[6, 5, 4], &[2, 2, 2], 0.3, 1.2, 3);
        let obs = SparseTensor::from_dense(&truth.to_dense());
        let mut model = TuckerDecomp::random(&[6, 5, 4], &[2, 2, 2], 0.1, 1.0, 4);
        let cfg = TuckerConfig {
            lambda: 1e-9,
            stop: StopRule {
                max_sweeps: 300,
                tol: 1e-13,
            },
        };
        tucker_als(&mut model, &obs, &cfg);
        // Alternating schemes plateau near (not at) exact recovery; require
        // a fit far below the O(1) data scale.
        assert!(model.rmse(&obs) < 5e-3, "rmse {}", model.rmse(&obs));
    }

    #[test]
    fn completes_partially_observed() {
        let truth = TuckerDecomp::random(&[7, 7, 6], &[2, 2, 2], 0.4, 1.2, 11);
        let obs = sampled_obs(&truth, 0.6, 12);
        let mut model = TuckerDecomp::random(&[7, 7, 6], &[2, 2, 2], 0.1, 1.0, 13);
        let cfg = TuckerConfig {
            lambda: 1e-8,
            stop: StopRule {
                max_sweeps: 400,
                tol: 1e-13,
            },
        };
        tucker_als(&mut model, &obs, &cfg);
        let full = SparseTensor::from_dense(&truth.to_dense());
        assert!(
            model.rmse(&full) < 0.05,
            "generalization rmse {}",
            model.rmse(&full)
        );
    }

    #[test]
    fn objective_is_monotone() {
        let truth = TuckerDecomp::random(&[5, 5, 4], &[2, 2, 2], 0.3, 1.0, 20);
        let obs = sampled_obs(&truth, 0.8, 21);
        let mut model = TuckerDecomp::random(&[5, 5, 4], &[2, 2, 2], 0.1, 1.0, 22);
        let trace = tucker_als(&mut model, &obs, &TuckerConfig::default());
        assert!(trace.is_monotone(1e-9), "{:?}", trace.objective);
    }

    #[test]
    fn tucker_can_beat_equal_budget_cp_on_core_heavy_data() {
        // Data with a dense cross-component core: Tucker's core captures the
        // interactions; a CP model of equal parameter budget struggles.
        let truth = TuckerDecomp::random(&[8, 8, 8], &[3, 3, 3], -1.0, 1.0, 30);
        let obs = sampled_obs(&truth, 0.7, 31);
        let mut tucker = TuckerDecomp::random(&[8, 8, 8], &[3, 3, 3], 0.1, 1.0, 32);
        tucker_als(
            &mut tucker,
            &obs,
            &TuckerConfig {
                lambda: 1e-8,
                stop: StopRule {
                    max_sweeps: 200,
                    tol: 1e-12,
                },
            },
        );
        // CP with rank chosen to roughly match Tucker's parameter count.
        let cp_rank = tucker.param_count() / (3 * 8);
        let mut cp = cpr_tensor::CpDecomp::random(&[8, 8, 8], cp_rank.max(1), 0.1, 1.0, 33);
        crate::als::als(
            &mut cp,
            &obs,
            &crate::als::AlsConfig {
                lambda: 1e-8,
                stop: StopRule {
                    max_sweeps: 200,
                    tol: 1e-12,
                },
                scale_by_count: true,
            },
        );
        let full = SparseTensor::from_dense(&truth.to_dense());
        let (tr, cr) = (tucker.rmse(&full), cp.rmse(&full));
        // Tucker should at least be competitive on its own model class.
        assert!(tr < cr * 2.0 + 0.05, "tucker {tr} vs cp {cr}");
    }

    #[test]
    fn empty_fibers_zeroed() {
        let mut obs = SparseTensor::new(&[4, 3]);
        obs.push(&[0, 0], 1.0);
        obs.push(&[1, 1], 2.0);
        let mut model = TuckerDecomp::random(&[4, 3], &[2, 2], 0.1, 1.0, 40);
        tucker_als(&mut model, &obs, &TuckerConfig::default());
        assert!(model.factor(0).row(3).iter().all(|&v| v == 0.0));
    }
}
