//! Optimizer selection over one completion problem (paper §4.2).
//!
//! The paper treats ALS, CCD, SGD, and AMN as interchangeable optimizers of
//! the same Eq. 3 objective (and Tucker-ALS as the same alternating scheme
//! over the Tucker model class). This module makes that interchangeability
//! concrete: an [`Optimizer`] tag, the shared [`CompletionSpec`]
//! configuration every optimizer understands (ridge strength, stop rule,
//! seed), and one [`complete`] entry point that dispatches a
//! [`Decomposition`] through the matching **streamed** sweep
//! implementation. Optimizer-specific knobs (AMN's barrier schedule, SGD's
//! step sizes) keep their per-optimizer defaults; callers needing them
//! still reach the concrete `als`/`amn`/`ccd`/`sgd`/`tucker_als` functions
//! directly.

use crate::als::{als, AlsConfig};
use crate::amn::{amn, AmnConfig};
use crate::ccd::{ccd, CcdConfig};
use crate::convergence::{StopRule, Trace};
use crate::sgd::{sgd, SgdConfig};
use crate::tucker_als::{tucker_als, TuckerConfig};
use cpr_tensor::{Decomposition, SparseTensor};

/// Which §4.2 optimization method fits the completion problem.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Optimizer {
    /// Alternating least squares (§4.2.1) — the CPR interpolation default.
    #[default]
    Als,
    /// Alternating minimization via Newton's method under MLogQ² loss with
    /// log-barrier positivity (§4.2.2) — required by §5.3 extrapolation.
    Amn,
    /// Cyclic coordinate descent (§4.2.1): `R`× cheaper sweeps, slower
    /// convergence.
    Ccd,
    /// Stochastic gradient descent over shuffled observations (§4.2.1).
    Sgd,
    /// Alternating least squares over the Tucker model class (§8).
    TuckerAls,
}

impl Optimizer {
    /// All five optimizers, in serialization-tag order.
    pub const ALL: [Optimizer; 5] = [
        Optimizer::Als,
        Optimizer::Amn,
        Optimizer::Ccd,
        Optimizer::Sgd,
        Optimizer::TuckerAls,
    ];

    /// Short identifier (experiment-harness tables, serialization debug).
    pub fn name(&self) -> &'static str {
        match self {
            Optimizer::Als => "als",
            Optimizer::Amn => "amn",
            Optimizer::Ccd => "ccd",
            Optimizer::Sgd => "sgd",
            Optimizer::TuckerAls => "tucker-als",
        }
    }

    /// Does this optimizer maintain strictly positive factors (and hence
    /// require positive observation entries / the MLogQ² loss)?
    pub fn requires_positive(&self) -> bool {
        matches!(self, Optimizer::Amn)
    }

    /// Does this optimizer fit the Tucker model class (vs. CP)?
    pub fn fits_tucker(&self) -> bool {
        matches!(self, Optimizer::TuckerAls)
    }
}

/// The optimizer-independent slice of a fit configuration: what every §4.2
/// method understands. Optimizer-specific knobs stay at their defaults.
#[derive(Debug, Clone, Copy)]
pub struct CompletionSpec {
    /// Ridge regularization λ.
    pub lambda: f64,
    /// Stopping rule (sweep cap + relative-decrease tolerance).
    pub stop: StopRule,
    /// RNG seed for stochastic optimizers (SGD's shuffle).
    pub seed: u64,
}

impl Default for CompletionSpec {
    fn default() -> Self {
        Self {
            lambda: 1e-5,
            stop: StopRule::default(),
            seed: 0,
        }
    }
}

/// Run `optimizer` on the decomposition in place and return its sweep
/// trace. The decomposition variant must match the optimizer's model class
/// — CP for `Als | Amn | Ccd | Sgd`, Tucker for `TuckerAls`; a mismatch is
/// a caller bug and panics (the `cpr_core` builder layer constructs the
/// matching variant and reports configuration errors as typed results
/// before ever reaching this point).
pub fn complete(
    decomp: &mut Decomposition,
    obs: &SparseTensor,
    optimizer: Optimizer,
    spec: &CompletionSpec,
) -> Trace {
    match (optimizer, decomp) {
        (Optimizer::Als, Decomposition::Cp(cp)) => als(
            cp,
            obs,
            &AlsConfig {
                lambda: spec.lambda,
                stop: spec.stop,
                scale_by_count: true,
            },
        ),
        (Optimizer::Amn, Decomposition::Cp(cp)) => amn(
            cp,
            obs,
            &AmnConfig {
                lambda: spec.lambda,
                stop: spec.stop,
                ..AmnConfig::default()
            },
        ),
        (Optimizer::Ccd, Decomposition::Cp(cp)) => ccd(
            cp,
            obs,
            &CcdConfig {
                lambda: spec.lambda,
                stop: spec.stop,
                scale_by_count: true,
            },
        ),
        (Optimizer::Sgd, Decomposition::Cp(cp)) => sgd(
            cp,
            obs,
            &SgdConfig {
                lambda: spec.lambda,
                stop: spec.stop,
                seed: spec.seed,
                ..SgdConfig::default()
            },
        ),
        (Optimizer::TuckerAls, Decomposition::Tucker(t)) => tucker_als(
            t,
            obs,
            &TuckerConfig {
                lambda: spec.lambda,
                stop: spec.stop,
            },
        ),
        (opt, d) => panic!(
            "complete: optimizer {} does not fit a {} decomposition",
            opt.name(),
            match d {
                Decomposition::Cp(_) => "CP",
                Decomposition::Tucker(_) => "Tucker",
            }
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpr_tensor::{CpDecomp, TuckerDecomp};

    fn sampled_obs(dims: &[usize], seed: u64) -> SparseTensor {
        let truth = CpDecomp::random(dims, 2, 0.4, 1.2, seed);
        let mut obs = SparseTensor::new(dims);
        let mut idx = vec![0usize; dims.len()];
        // Deterministic ~70% mask without an RNG: a simple index hash.
        loop {
            let h = idx.iter().fold(seed, |a, &i| {
                a.wrapping_mul(6364136223846793005)
                    .wrapping_add(i as u64 ^ 0x9e37)
            });
            if h % 10 < 7 {
                obs.push(&idx, truth.eval(&idx));
            }
            let mut j = dims.len();
            loop {
                if j == 0 {
                    return obs;
                }
                j -= 1;
                idx[j] += 1;
                if idx[j] < dims[j] {
                    break;
                }
                idx[j] = 0;
            }
        }
    }

    #[test]
    fn every_cp_optimizer_dispatches_and_descends() {
        let dims = [6usize, 5, 4];
        let obs = sampled_obs(&dims, 3);
        for opt in [Optimizer::Als, Optimizer::Ccd, Optimizer::Sgd] {
            let mut d = Decomposition::Cp(CpDecomp::random(&dims, 2, 0.1, 1.0, 7));
            let spec = CompletionSpec {
                lambda: 1e-6,
                stop: StopRule {
                    max_sweeps: 30,
                    tol: 1e-10,
                },
                seed: 1,
            };
            let trace = complete(&mut d, &obs, opt, &spec);
            assert!(trace.sweeps() >= 1, "{}: no sweeps ran", opt.name());
            assert!(
                trace.final_objective() <= trace.objective[0] + 1e-9,
                "{}: objective rose: {:?}",
                opt.name(),
                trace.objective
            );
        }
    }

    #[test]
    fn amn_dispatches_on_positive_data() {
        let dims = [5usize, 4];
        let mut obs = sampled_obs(&dims, 9);
        obs.map_values_mut(|v| v.abs() + 0.5);
        let mut d = Decomposition::Cp(crate::amn::init_positive(&dims, 2, 1.0, 11));
        let trace = complete(&mut d, &obs, Optimizer::Amn, &CompletionSpec::default());
        assert!(trace.sweeps() >= 1);
        assert!(d.is_strictly_positive());
    }

    #[test]
    fn tucker_dispatches() {
        let dims = [5usize, 4, 3];
        let obs = sampled_obs(&dims, 17);
        let mut d = Decomposition::Tucker(TuckerDecomp::random(&dims, &[2, 2, 2], 0.1, 1.0, 19));
        let trace = complete(
            &mut d,
            &obs,
            Optimizer::TuckerAls,
            &CompletionSpec::default(),
        );
        assert!(trace.sweeps() >= 1);
        assert!(trace.is_monotone(1e-9), "{:?}", trace.objective);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn model_class_mismatch_panics() {
        let dims = [4usize, 3];
        let obs = sampled_obs(&dims, 23);
        let mut d = Decomposition::Cp(CpDecomp::random(&dims, 2, 0.1, 1.0, 29));
        complete(
            &mut d,
            &obs,
            Optimizer::TuckerAls,
            &CompletionSpec::default(),
        );
    }

    #[test]
    fn names_and_tags_are_stable() {
        assert_eq!(Optimizer::ALL.len(), 5);
        assert_eq!(Optimizer::default(), Optimizer::Als);
        assert!(Optimizer::Amn.requires_positive());
        assert!(Optimizer::TuckerAls.fits_tucker());
        assert!(!Optimizer::Als.requires_positive());
    }
}
