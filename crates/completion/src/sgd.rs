//! Stochastic gradient descent for tensor completion (paper §4.2.1).
//!
//! Updates every factor row touched by a sampled observation at once, using
//! the gradient of the pointwise least-squares loss plus ridge term. Included
//! for completeness and for the optimizer-ablation bench: the paper notes
//! SGD "iteratively updates all factor matrix elements at once" using random
//! observation subsets.

use crate::als::objective;
use crate::convergence::{StopRule, Trace};
use cpr_tensor::{CpDecomp, SparseTensor};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// SGD configuration.
#[derive(Debug, Clone, Copy)]
pub struct SgdConfig {
    /// Ridge regularization λ.
    pub lambda: f64,
    /// Initial step size.
    pub step: f64,
    /// Multiplicative step decay applied after each epoch.
    pub decay: f64,
    /// Stopping rule (a "sweep" = one epoch over shuffled observations).
    pub stop: StopRule,
    /// RNG seed for the shuffle.
    pub seed: u64,
}

impl Default for SgdConfig {
    fn default() -> Self {
        Self {
            lambda: 1e-5,
            step: 0.02,
            decay: 0.97,
            stop: StopRule::default(),
            seed: 0,
        }
    }
}

/// Run SGD tensor completion, updating `cp` in place.
///
/// The per-epoch trace entry is the epoch's *running* data loss — the sum
/// of the squared pre-update residuals each sampled observation already
/// computes for its gradient — plus the exact ridge term (`O(Σ_j I_j R)`).
/// This mirrors the ALS/AMN objective fusion: no second `O(|Ω| d R)` pass
/// over the observations per epoch. The running loss is the standard SGD
/// training-loss estimator; it lags the post-epoch exact objective by at
/// most one epoch's worth of progress, which is exactly what the relative
/// stopping rule tolerates.
pub fn sgd(cp: &mut CpDecomp, obs: &SparseTensor, config: &SgdConfig) -> Trace {
    assert_eq!(
        cp.dims(),
        obs.dims(),
        "SGD: model/observation shape mismatch"
    );
    let d = cp.order();
    let rank = cp.rank();
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut order: Vec<usize> = (0..obs.nnz()).collect();

    let mut trace = Trace::default();
    let mut prev = objective(cp, obs, config.lambda);
    let mut step = config.step;
    let mut z = vec![0.0; rank];
    // Per-element ridge scaling: with |Ω| samples per epoch, applying the
    // full λ gradient at every sample over-regularizes; scale by 1/|Ω|-ish
    // per-mode observation counts folded into the data pass instead.
    let reg_scale = 1.0 / obs.nnz().max(1) as f64;
    for _epoch in 0..config.stop.max_sweeps {
        order.shuffle(&mut rng);
        // Epoch data loss accumulates from the residuals the gradient step
        // computes anyway — no separate objective pass.
        let mut epoch_loss = 0.0;
        for &e in &order {
            let idx = obs.index(e).to_vec();
            let resid = cp.eval_u32(&idx) - obs.value(e);
            epoch_loss += resid * resid;
            // Gradient wrt each mode's row: 2 resid * z(mode) + 2λ' u.
            for mode in 0..d {
                cp.leave_one_out_row(&idx, mode, &mut z);
                let i = idx[mode] as usize;
                let row = cp.factor_mut(mode).row_mut(i);
                for (r, u) in row.iter_mut().enumerate() {
                    let g = 2.0 * resid * z[r] + 2.0 * config.lambda * reg_scale * *u;
                    *u -= step * g;
                }
            }
        }
        let reg: f64 = cp.factors().iter().map(|f| f.fro_norm_sq()).sum();
        let g = epoch_loss + config.lambda * reg;
        trace.objective.push(g);
        if !g.is_finite() {
            break; // diverged; caller inspects the trace
        }
        if config.stop.converged(prev, g) && trace.objective.len() > 3 {
            trace.converged = true;
            break;
        }
        prev = g;
        step *= config.decay;
    }
    trace
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduces_objective_on_low_rank_data() {
        let truth = CpDecomp::random(&[6, 6, 4], 2, 0.4, 1.2, 50);
        let obs = SparseTensor::from_dense(&truth.to_dense());
        let mut model = CpDecomp::random(&[6, 6, 4], 2, 0.1, 0.9, 51);
        let start = objective(&model, &obs, 1e-6);
        let cfg = SgdConfig {
            lambda: 1e-6,
            step: 0.01,
            decay: 0.98,
            stop: StopRule {
                max_sweeps: 150,
                tol: 1e-10,
            },
            seed: 52,
        };
        let trace = sgd(&mut model, &obs, &cfg);
        assert!(
            trace.final_objective() < start * 0.05,
            "start {start}, end {}",
            trace.final_objective()
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let truth = CpDecomp::random(&[5, 5], 2, 0.4, 1.2, 60);
        let obs = SparseTensor::from_dense(&truth.to_dense());
        let run = |seed| {
            let mut model = CpDecomp::random(&[5, 5], 2, 0.1, 0.9, 61);
            let cfg = SgdConfig {
                seed,
                stop: StopRule {
                    max_sweeps: 20,
                    tol: 0.0,
                },
                ..Default::default()
            };
            sgd(&mut model, &obs, &cfg);
            model.factor(0).as_slice().to_vec()
        };
        assert_eq!(run(1), run(1));
        assert_ne!(run(1), run(2));
    }

    #[test]
    fn survives_tiny_observation_sets() {
        let mut obs = SparseTensor::new(&[3, 3]);
        obs.push(&[1, 1], 4.0);
        let mut model = CpDecomp::random(&[3, 3], 2, 0.1, 0.5, 70);
        let trace = sgd(&mut model, &obs, &SgdConfig::default());
        assert!(trace.final_objective().is_finite());
    }
}
