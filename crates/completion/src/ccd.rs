//! Cyclic coordinate descent for tensor completion (paper §4.2.1).
//!
//! CCD updates one factor-matrix element at a time, reducing ALS's per-sweep
//! cost by a factor of `R` at the price of slower (but still monotone)
//! convergence — the trade-off the paper attributes to [Shin & Kang 2014]
//! and [Karlsson, Kressner & Uschmajew 2016].
//!
//! For element `u_{i,r}` of mode `j`'s factor, with every other element
//! fixed, the objective is a scalar quadratic: writing the model at an
//! observation as `m = u_{i,r} z_r + c` (where `z_r` is the leave-one-out
//! Hadamard product and `c` the contribution of the other rank components),
//! the minimizer of `(1/|Ω_i|)Σ (t - m)² + λ u²` is
//! `u = Σ z_r (t - c) / (Σ z_r² + λ|Ω_i|)`.

use crate::als::objective;
use crate::convergence::{StopRule, Trace};
use crate::sweep::{build_streams, fill_zcache, needs_cache, z_source};
use cpr_tensor::{CpDecomp, ModeIndex, SparseTensor, SweepCache};

/// CCD configuration.
#[derive(Debug, Clone, Copy)]
pub struct CcdConfig {
    /// Ridge regularization λ.
    pub lambda: f64,
    /// Stopping rule (sweep = one pass over every element of every factor).
    pub stop: StopRule,
    /// Scale the data term by `1/|Ω_i|` per row, as in the paper's ALS.
    pub scale_by_count: bool,
}

impl Default for CcdConfig {
    fn default() -> Self {
        Self {
            lambda: 1e-5,
            stop: StopRule::default(),
            scale_by_count: true,
        }
    }
}

/// One row's full pass of `R` scalar updates, reading the leave-one-out
/// vectors from the row's cache and the observed values from the
/// row-aligned `vals`.
///
/// The model value at each observation is kept in `mcache` and updated
/// incrementally after each element changes (`m += Δu_r · z_r`), so a
/// row's `R` scalar updates cost `O(|Ω_i| R)` total instead of the
/// `O(|Ω_i| R²)` of recomputing the dot product per element per entry —
/// the CCD++ recurrence. Shared bitwise by the streamed and reference
/// sweeps (they differ only in where `zcache`/`vals` come from).
fn ccd_row_update(
    zcache: &[f64],
    vals: &[f64],
    rank: usize,
    count_scale: f64,
    lambda: f64,
    u: &mut [f64],
    mcache: &mut Vec<f64>,
) {
    mcache.clear();
    mcache.extend(
        zcache
            .chunks_exact(rank)
            .map(|zc| zc.iter().zip(&*u).map(|(a, b)| a * b).sum::<f64>()),
    );
    for r in 0..rank {
        // Accumulate numerator Σ z_r (t - c) and denominator Σ z_r².
        let mut num = 0.0;
        let mut den = 0.0;
        for ((zc, &t), &m) in zcache.chunks_exact(rank).zip(vals).zip(&*mcache) {
            let zr = zc[r];
            if zr == 0.0 {
                continue;
            }
            // c = model minus this element's own component.
            let c = m - u[r] * zr;
            num += zr * (t - c);
            den += zr * zr;
        }
        let new = num * count_scale / (den * count_scale + lambda);
        if new.is_finite() && new != u[r] {
            let du = new - u[r];
            u[r] = new;
            for (m, zc) in mcache.iter_mut().zip(zcache.chunks_exact(rank)) {
                *m += du * zc[r];
            }
        }
    }
}

/// Post-update fused row loss `Σ (t − z_eᵀu)²`, from fresh dot products
/// (not the drift-accumulating `mcache`) so the trace stays an exact
/// objective evaluation. Shared by both sweeps.
#[inline]
fn ccd_row_loss(zcache: &[f64], vals: &[f64], rank: usize, u: &[f64]) -> f64 {
    let mut loss = 0.0;
    for (zc, &t) in zcache.chunks_exact(rank).zip(vals) {
        let m: f64 = zc.iter().zip(u).map(|(a, b)| a * b).sum();
        let e = t - m;
        loss += e * e;
    }
    loss
}

/// Run CCD tensor completion, updating `cp` in place.
///
/// This is the **streamed** sweep: per-row leave-one-out caches are filled
/// from the partial-product [`SweepCache`] (amortized `O(R)` per
/// observation per mode) through rank-monomorphized kernels, the values
/// come slot-contiguously from per-mode streams, and the per-sweep
/// objective is fused into the last mode's row updates (the data loss of a
/// row follows from the `z`-cache it already holds) instead of a separate
/// `O(|Ω| d R)` evaluation pass. The retained naive path [`ccd_reference`]
/// is pinned bitwise-equal by proptests.
pub fn ccd(cp: &mut CpDecomp, obs: &SparseTensor, config: &CcdConfig) -> Trace {
    assert_eq!(
        cp.dims(),
        obs.dims(),
        "CCD: model/observation shape mismatch"
    );
    let d = cp.order();
    let rank = cp.rank();
    let streams = build_streams(obs);

    let use_cache = needs_cache(d);
    let mut trace = Trace::default();
    let mut prev = objective(cp, obs, config.lambda);
    let mut cache = SweepCache::new();
    let mut zcache: Vec<f64> = Vec::new();
    let mut mcache: Vec<f64> = Vec::new();
    for _sweep in 0..config.stop.max_sweeps {
        if use_cache {
            cache.begin_sweep(cp, obs);
        }
        let mut data_loss = 0.0;
        for (mode, stream) in streams.iter().enumerate() {
            let fused = mode + 1 == d;
            let count_scale_of = |n: usize| {
                if config.scale_by_count {
                    1.0 / n as f64
                } else {
                    1.0
                }
            };
            for i in 0..cp.dims()[mode] {
                let rng = stream.row_range(i);
                if rng.is_empty() {
                    continue;
                }
                let ids = &stream.entry_ids()[rng.clone()];
                let vals = &stream.values()[rng];
                // The z source borrows the frozen factors; scope it so the
                // row's mutable borrow below can begin.
                {
                    let src = z_source(cp, &cache, mode);
                    fill_zcache(src, ids, stream.row_foreign(i), rank, &mut zcache);
                }
                let u = cp.factor_mut(mode).row_mut(i);
                ccd_row_update(
                    &zcache,
                    vals,
                    rank,
                    count_scale_of(vals.len()),
                    config.lambda,
                    u,
                    &mut mcache,
                );
                if fused {
                    data_loss += ccd_row_loss(&zcache, vals, rank, u);
                }
            }
            if !fused && use_cache {
                cache.advance(mode, cp.factor(mode), obs);
            }
        }
        let reg: f64 = cp.factors().iter().map(|f| f.fro_norm_sq()).sum();
        let g = data_loss + config.lambda * reg;
        trace.objective.push(g);
        if config.stop.converged(prev, g) {
            trace.converged = true;
            break;
        }
        prev = g;
    }
    trace
}

/// The retained reference sweep: naive per-observation recomputation of
/// the canonical leave-one-out vectors through the [`ModeIndex`] inverted
/// index, values gathered per entry. [`ccd`] must match it bitwise (the
/// `stream_equivalence` proptests).
pub fn ccd_reference(cp: &mut CpDecomp, obs: &SparseTensor, config: &CcdConfig) -> Trace {
    assert_eq!(
        cp.dims(),
        obs.dims(),
        "CCD: model/observation shape mismatch"
    );
    let d = cp.order();
    let rank = cp.rank();
    let mode_indices: Vec<ModeIndex> = (0..d).map(|m| obs.mode_index(m)).collect();

    let mut trace = Trace::default();
    let mut prev = objective(cp, obs, config.lambda);
    let mut z = vec![0.0; rank];
    let mut zcache: Vec<f64> = Vec::new();
    let mut vals: Vec<f64> = Vec::new();
    let mut mcache: Vec<f64> = Vec::new();
    for _sweep in 0..config.stop.max_sweeps {
        let mut data_loss = 0.0;
        for (mode, mi) in mode_indices.iter().enumerate() {
            let fused = mode + 1 == d;
            for i in 0..cp.dims()[mode] {
                let entries = mi.row(i);
                if entries.is_empty() {
                    continue;
                }
                let count_scale = if config.scale_by_count {
                    1.0 / entries.len() as f64
                } else {
                    1.0
                };
                zcache.clear();
                zcache.reserve(entries.len() * rank);
                vals.clear();
                for &e in entries {
                    cp.leave_one_out_canonical(obs.index(e as usize), mode, &mut z);
                    zcache.extend_from_slice(&z);
                    vals.push(obs.value(e as usize));
                }
                let u = cp.factor_mut(mode).row_mut(i);
                ccd_row_update(
                    &zcache,
                    &vals,
                    rank,
                    count_scale,
                    config.lambda,
                    u,
                    &mut mcache,
                );
                if fused {
                    data_loss += ccd_row_loss(&zcache, &vals, rank, u);
                }
            }
        }
        let reg: f64 = cp.factors().iter().map(|f| f.fro_norm_sq()).sum();
        let g = data_loss + config.lambda * reg;
        trace.objective.push(g);
        if config.stop.converged(prev, g) {
            trace.converged = true;
            break;
        }
        prev = g;
    }
    trace
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn sampled_obs(truth: &CpDecomp, frac: f64, seed: u64) -> SparseTensor {
        let dense = truth.to_dense();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut obs = SparseTensor::new(dense.dims());
        for (idx, v) in dense.iter_indexed() {
            if rng.gen::<f64>() < frac {
                obs.push(&idx, v);
            }
        }
        obs
    }

    #[test]
    fn fits_fully_observed_low_rank() {
        let truth = CpDecomp::random(&[5, 6, 4], 2, 0.5, 1.5, 8);
        let obs = SparseTensor::from_dense(&truth.to_dense());
        let mut model = CpDecomp::random(&[5, 6, 4], 2, 0.1, 1.0, 9);
        let cfg = CcdConfig {
            lambda: 1e-10,
            stop: StopRule {
                max_sweeps: 2000,
                tol: 1e-14,
            },
            scale_by_count: true,
        };
        ccd(&mut model, &obs, &cfg);
        // CCD's decoupled scalar updates converge noticeably slower than ALS
        // (paper §4.2.1): depending on the random initialization it can need
        // a few thousand sweeps on this problem, so the budget is generous
        // and the accepted fit looser than the ALS equivalent.
        assert!(model.rmse(&obs) < 5e-3, "rmse {}", model.rmse(&obs));
    }

    #[test]
    fn objective_is_monotone() {
        let truth = CpDecomp::random(&[6, 5, 4], 2, 0.3, 1.2, 14);
        let obs = sampled_obs(&truth, 0.7, 15);
        let mut model = CpDecomp::random(&[6, 5, 4], 2, 0.1, 1.0, 16);
        let trace = ccd(&mut model, &obs, &CcdConfig::default());
        assert!(trace.is_monotone(1e-9), "trace {:?}", trace.objective);
    }

    #[test]
    fn slower_than_als_per_sweep_but_converges() {
        // Same problem solved by both; CCD should reach a comparable
        // objective eventually (allowing a generous sweep budget).
        let truth = CpDecomp::random(&[6, 6], 2, 0.5, 1.5, 20);
        let obs = SparseTensor::from_dense(&truth.to_dense());
        let mut m_als = CpDecomp::random(&[6, 6], 2, 0.1, 1.0, 21);
        let mut m_ccd = m_als.clone();
        let als_trace = crate::als::als(
            &mut m_als,
            &obs,
            &crate::als::AlsConfig {
                lambda: 1e-9,
                ..Default::default()
            },
        );
        let ccd_trace = ccd(
            &mut m_ccd,
            &obs,
            &CcdConfig {
                lambda: 1e-9,
                stop: StopRule {
                    max_sweeps: 500,
                    tol: 1e-12,
                },
                scale_by_count: true,
            },
        );
        assert!(ccd_trace.final_objective() < als_trace.final_objective() * 100.0 + 1e-6);
    }

    #[test]
    fn untouched_elements_stay_finite() {
        let mut obs = SparseTensor::new(&[4, 4]);
        obs.push(&[0, 0], 1.0);
        obs.push(&[1, 1], 2.0);
        let mut model = CpDecomp::random(&[4, 4], 2, 0.1, 1.0, 22);
        ccd(&mut model, &obs, &CcdConfig::default());
        for f in model.factors() {
            assert!(!f.has_non_finite());
        }
    }
}
