//! Shared optimizer configuration and convergence tracking.

/// Stopping rule shared by all completion optimizers.
#[derive(Debug, Clone, Copy)]
pub struct StopRule {
    /// Maximum number of sweeps over all modes.
    pub max_sweeps: usize,
    /// Relative objective-decrease tolerance: stop when
    /// `(g_prev - g) <= tol * max(g_prev, eps)`.
    pub tol: f64,
}

impl Default for StopRule {
    fn default() -> Self {
        // The paper caps ALS at 100 sweeps (§6.0.4).
        Self {
            max_sweeps: 100,
            tol: 1e-6,
        }
    }
}

impl StopRule {
    /// Stop rule with a custom sweep cap.
    pub fn with_max_sweeps(max_sweeps: usize) -> Self {
        Self {
            max_sweeps,
            ..Self::default()
        }
    }

    /// True when the objective decrease from `prev` to `curr` is below
    /// tolerance.
    pub fn converged(&self, prev: f64, curr: f64) -> bool {
        (prev - curr) <= self.tol * prev.abs().max(f64::EPSILON)
    }
}

/// Record of one optimizer run: the objective after every sweep.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    /// Objective value after each completed sweep.
    pub objective: Vec<f64>,
    /// Whether the stop rule (rather than the sweep cap) ended the run.
    pub converged: bool,
}

impl Trace {
    /// Number of sweeps performed.
    pub fn sweeps(&self) -> usize {
        self.objective.len()
    }

    /// Final objective value (∞ when no sweep ran).
    pub fn final_objective(&self) -> f64 {
        self.objective.last().copied().unwrap_or(f64::INFINITY)
    }

    /// True if the recorded objective never increased by more than `slack`
    /// (relative). ALS/CCD are monotone algorithms; tests assert this.
    pub fn is_monotone(&self, slack: f64) -> bool {
        self.objective
            .windows(2)
            .all(|w| w[1] <= w[0] * (1.0 + slack) + slack)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper() {
        let s = StopRule::default();
        assert_eq!(s.max_sweeps, 100);
    }

    #[test]
    fn convergence_check() {
        let s = StopRule {
            max_sweeps: 10,
            tol: 1e-3,
        };
        assert!(s.converged(1.0, 0.9995));
        assert!(!s.converged(1.0, 0.5));
        // Increase also counts as converged (decrease <= tol).
        assert!(s.converged(1.0, 1.1));
    }

    #[test]
    fn trace_monotone() {
        let t = Trace {
            objective: vec![10.0, 5.0, 4.0, 4.0],
            converged: true,
        };
        assert!(t.is_monotone(0.0));
        assert_eq!(t.sweeps(), 4);
        assert_eq!(t.final_objective(), 4.0);
        let bad = Trace {
            objective: vec![1.0, 2.0],
            converged: false,
        };
        assert!(!bad.is_monotone(1e-9));
    }

    #[test]
    fn empty_trace() {
        let t = Trace::default();
        assert_eq!(t.final_objective(), f64::INFINITY);
        assert!(t.is_monotone(0.0));
    }
}
