//! Streamed sweep infrastructure shared by the completion optimizers:
//! per-mode observation streams, partial-product `z` sourcing, and the
//! rank-monomorphized normal-equation kernels.
//!
//! This is the fit-side analog of the serving layer's compiled query path:
//! instead of chasing `entries[e] → indices[e*d..] → factor rows` per
//! observation, a sweep reads flat [`ModeStream`] arrays and two
//! entry-major partial-product operands from a [`cpr_tensor::SweepCache`]
//! (`z = prefix ⊙ suffix`, amortized `O(R)` per observation per mode).
//!
//! The ranks the paper sweeps cluster at small powers of two, so the
//! hottest kernels — the `gram += z zᵀ` / `rhs += t z` rank-1 updates and
//! the `z`-cache fills — are monomorphized for `R ∈ {2, 4, 8, 16}` with
//! fixed-size-array accumulators whose loops fully unroll, falling back to
//! a generic dynamic-rank path otherwise. Every monomorphized kernel
//! performs the exact per-element operation sequence of its generic
//! counterpart, so the dispatch is bitwise invisible — the determinism
//! contract the streamed-vs-reference proptests pin.

use cpr_tensor::{CpDecomp, ModeStream, SparseTensor, SweepCache};

/// Build the per-mode observation streams of a fit (one counting-sort pass
/// per mode; shared by ALS/AMN/CCD/Tucker-ALS and cached across streaming
/// refits by the CPR layer).
pub fn build_streams(obs: &SparseTensor) -> Vec<ModeStream> {
    (0..obs.order()).map(|m| obs.mode_stream(m)).collect()
}

/// Orders above this use the partial-product cache; at or below it the
/// kernels gather foreign factor rows directly.
///
/// The crossover is a locality trade, measured on the bench scales: at
/// `d ≤ 3` a `z` needs at most two foreign rows, and the factor matrices
/// (`I_j · R` doubles) stay L1-resident — gathering them directly through
/// the stream's materialized foreign indices is pure cache hits. The
/// prefix/suffix operands, by contrast, are `|Ω| · R` entry-indexed arrays
/// whose scattered per-entry gathers miss to L2 and cost more than they
/// save. From `d ≥ 4` the cache's amortized `O(R)` beats the `O(dR)`
/// regather and wins. Both sources produce the canonical leave-one-out
/// `z` bitwise (at `d ≤ 3` every association coincides), so the switch is
/// invisible to the determinism contract.
pub(crate) const DIRECT_Z_MAX_ORDER: usize = 3;

/// Where a mode's leave-one-out vectors come from.
///
/// All variants produce the canonical `z` of
/// [`CpDecomp::leave_one_out_canonical`] bit-for-bit.
#[derive(Clone, Copy)]
pub(crate) enum ZSource<'a> {
    /// Order-1 model: empty product.
    Ones,
    /// Order 2: `z` is a copy of the single foreign factor's row
    /// (flat row-major factor data, stride = rank).
    One(&'a [f64]),
    /// Order 3: `z` is the Hadamard product of the two foreign factors'
    /// rows, ascending mode order.
    Two(&'a [f64], &'a [f64]),
    /// Order ≥ 4: partial-product operands `(prefix, suffix)` from a
    /// [`SweepCache`], entry-major `rank`-wide blocks; `None` means an
    /// implicit all-ones operand.
    Parts(Option<&'a [f64]>, Option<&'a [f64]>),
}

/// Pick the `z` source for one mode: direct factor gathers at low order,
/// the partial-product cache otherwise. `frozen` is the model with the
/// mode's factor taken (foreign factors are intact).
pub(crate) fn z_source<'a>(
    frozen: &'a CpDecomp,
    cache: &'a SweepCache,
    mode: usize,
) -> ZSource<'a> {
    let d = frozen.order();
    match d {
        1 => ZSource::Ones,
        2 => ZSource::One(frozen.factor(if mode == 0 { 1 } else { 0 }).as_slice()),
        3 => {
            let mut others = (0..3).filter(|&j| j != mode);
            let j0 = others.next().unwrap();
            let j1 = others.next().unwrap();
            ZSource::Two(frozen.factor(j0).as_slice(), frozen.factor(j1).as_slice())
        }
        _ => {
            let (p, s) = cache.z_parts(mode);
            ZSource::Parts(p, s)
        }
    }
}

/// True when the sweep needs a live [`SweepCache`] (order ≥ 4).
pub(crate) fn needs_cache(order: usize) -> bool {
    order > DIRECT_Z_MAX_ORDER
}

/// Load one observation's `z` into a fixed-size array. `k` is the slot
/// index within the row (indexes `foreign`), `e` the original entry id
/// (indexes the partial-product operands).
#[inline(always)]
fn load_z<const R: usize>(src: &ZSource<'_>, foreign: &[u32], k: usize, e: usize) -> [f64; R] {
    let mut z = [1.0f64; R];
    match *src {
        ZSource::Ones => {}
        ZSource::One(f0) => {
            let i0 = foreign[k] as usize;
            z.copy_from_slice(&f0[i0 * R..(i0 + 1) * R]);
        }
        ZSource::Two(f0, f1) => {
            let i0 = foreign[2 * k] as usize;
            let i1 = foreign[2 * k + 1] as usize;
            // Plain range-indexed slices on purpose — the array-conversion
            // form (`try_into`) nudges LLVM into the SLP shuffle pattern
            // (see the kernel-shape notes on the dispatch below).
            let r0 = &f0[i0 * R..(i0 + 1) * R];
            let r1 = &f1[i1 * R..(i1 + 1) * R];
            for r in 0..R {
                z[r] = r0[r] * r1[r];
            }
        }
        ZSource::Parts(zp, zs) => match (zp, zs) {
            (Some(p), Some(s)) => {
                let pb = &p[e * R..(e + 1) * R];
                let sb = &s[e * R..(e + 1) * R];
                for r in 0..R {
                    z[r] = pb[r] * sb[r];
                }
            }
            (Some(p), None) => z.copy_from_slice(&p[e * R..(e + 1) * R]),
            (None, Some(s)) => z.copy_from_slice(&s[e * R..(e + 1) * R]),
            (None, None) => {}
        },
    }
    z
}

/// Dynamic-rank counterpart of [`load_z`] (generic fallback), bitwise
/// identical per element.
#[inline]
fn load_z_generic(
    src: &ZSource<'_>,
    foreign: &[u32],
    k: usize,
    e: usize,
    rank: usize,
    z: &mut [f64],
) {
    match *src {
        ZSource::Ones => z.fill(1.0),
        ZSource::One(f0) => {
            let i0 = foreign[k] as usize;
            z.copy_from_slice(&f0[i0 * rank..(i0 + 1) * rank]);
        }
        ZSource::Two(f0, f1) => {
            let i0 = foreign[2 * k] as usize;
            let i1 = foreign[2 * k + 1] as usize;
            let r0 = &f0[i0 * rank..(i0 + 1) * rank];
            let r1 = &f1[i1 * rank..(i1 + 1) * rank];
            for ((o, &a), &b) in z.iter_mut().zip(r0).zip(r1) {
                *o = a * b;
            }
        }
        ZSource::Parts(zp, zs) => match (zp, zs) {
            (Some(p), Some(s)) => {
                let pb = &p[e * rank..(e + 1) * rank];
                let sb = &s[e * rank..(e + 1) * rank];
                for ((o, &a), &b) in z.iter_mut().zip(pb).zip(sb) {
                    *o = a * b;
                }
            }
            (Some(p), None) => z.copy_from_slice(&p[e * rank..(e + 1) * rank]),
            (None, Some(s)) => z.copy_from_slice(&s[e * rank..(e + 1) * rank]),
            (None, None) => z.fill(1.0),
        },
    }
}

/// Accumulate one row's normal equations straight from the `z` source:
/// `gram += Σ z_e z_eᵀ` (full square), `rhs += Σ t_e z_e`; returns
/// `Σ t_e²`. `entry_ids`/`foreign`/`values` are the row's slot slices of a
/// [`ModeStream`]; rank-monomorphized dispatch with a generic fallback
/// (`z_scratch` is only touched by the fallback).
/// The per-rank kernel shapes below look interchangeable but compile very
/// differently (measured on the bench scales, `target-cpu=native`):
///
/// * `R ≤ 4` — `acc_ne_small`: gram lives in nested stack arrays the whole
///   row; LLVM keeps the full accumulator in registers (~8x the iterator
///   shape at rank 4).
/// * `R = 8` — `acc_ne_mid`: range-indexed slice rows. The
///   `chunks_exact_mut` + array-conversion shape triggers an SLP
///   shuffle-storm (`vpermt2pd` chains) that runs at scalar speed; plain
///   indexed loops get the clean broadcast-multiply-add pattern (~2.4x).
/// * `R = 16` — `acc_ne_wide`: the row loop must stay *rolled* (runtime
///   trip count via `rhs.len()`), otherwise full unrolling re-triggers the
///   SLP explosion (~4x).
///
/// All shapes perform the identical per-element operation sequence, so
/// they are bitwise interchangeable — which one runs is purely a codegen
/// choice, pinned by `monomorphized_kernels_bitwise_match_generic`.
#[allow(clippy::too_many_arguments)]
pub(crate) fn accumulate_normal_equations_streamed(
    src: ZSource<'_>,
    entry_ids: &[u32],
    foreign: &[u32],
    values: &[f64],
    rank: usize,
    gram: &mut [f64],
    rhs: &mut [f64],
    z_scratch: &mut [f64],
) -> f64 {
    match rank {
        2 => acc_ne_small::<2>(&src, entry_ids, foreign, values, gram, rhs),
        4 => acc_ne_small::<4>(&src, entry_ids, foreign, values, gram, rhs),
        8 => match src {
            // The hot production configuration (order-3 grids at rank 8):
            // a dedicated two-entry-unrolled kernel that skips the unused
            // entry-id stream and halves the gram row traffic.
            ZSource::Two(f0, f1) => acc_two_mid2::<8>(f0, f1, foreign, values, gram, rhs),
            _ => acc_ne_mid::<8>(&src, entry_ids, foreign, values, gram, rhs),
        },
        16 => acc_ne_wide::<16>(&src, entry_ids, foreign, values, gram, rhs),
        _ => acc_ne_generic(&src, entry_ids, foreign, values, rank, gram, rhs, z_scratch),
    }
}

/// Order-3 specialization of the mid-rank kernel, two entries per
/// iteration: each gram row is loaded and stored once per *pair* of
/// observations (`row[b] + za0·z0[b] + za1·z1[b]`, left-associated — the
/// bitwise-identical composition of the two sequential `+=` updates), which
/// halves the dominant load/store chain on the accumulator.
#[inline]
fn acc_two_mid2<const R: usize>(
    f0: &[f64],
    f1: &[f64],
    foreign: &[u32],
    values: &[f64],
    gram: &mut [f64],
    rhs: &mut [f64],
) -> f64 {
    gram.fill(0.0);
    rhs.fill(0.0);
    let mut t2 = 0.0;
    let n = values.len();
    let mut k = 0usize;
    while k + 1 < n {
        let (t0, t1) = (values[k], values[k + 1]);
        let mut z0 = [0.0f64; R];
        let mut z1 = [0.0f64; R];
        {
            let i0 = foreign[2 * k] as usize;
            let i1 = foreign[2 * k + 1] as usize;
            let r0 = &f0[i0 * R..(i0 + 1) * R];
            let r1 = &f1[i1 * R..(i1 + 1) * R];
            for r in 0..R {
                z0[r] = r0[r] * r1[r];
            }
            let j0 = foreign[2 * k + 2] as usize;
            let j1 = foreign[2 * k + 3] as usize;
            let s0 = &f0[j0 * R..(j0 + 1) * R];
            let s1 = &f1[j1 * R..(j1 + 1) * R];
            for r in 0..R {
                z1[r] = s0[r] * s1[r];
            }
        }
        t2 += t0 * t0;
        t2 += t1 * t1;
        for r in 0..R {
            rhs[r] = rhs[r] + t0 * z0[r] + t1 * z1[r];
        }
        for a in 0..R {
            let za0 = z0[a];
            let za1 = z1[a];
            let row = &mut gram[a * R..(a + 1) * R];
            for b in 0..R {
                row[b] = row[b] + za0 * z0[b] + za1 * z1[b];
            }
        }
        k += 2;
    }
    if k < n {
        let t = values[k];
        let i0 = foreign[2 * k] as usize;
        let i1 = foreign[2 * k + 1] as usize;
        let r0 = &f0[i0 * R..(i0 + 1) * R];
        let r1 = &f1[i1 * R..(i1 + 1) * R];
        let mut z = [0.0f64; R];
        for r in 0..R {
            z[r] = r0[r] * r1[r];
        }
        t2 += t * t;
        for r in 0..R {
            rhs[r] += t * z[r];
        }
        for a in 0..R {
            let za = z[a];
            let row = &mut gram[a * R..(a + 1) * R];
            for b in 0..R {
                row[b] += za * z[b];
            }
        }
    }
    t2
}

#[inline]
fn acc_ne_small<const R: usize>(
    src: &ZSource<'_>,
    entry_ids: &[u32],
    foreign: &[u32],
    values: &[f64],
    gram: &mut [f64],
    rhs: &mut [f64],
) -> f64 {
    let mut g = [[0.0f64; R]; R];
    let mut rh = [0.0f64; R];
    let mut t2 = 0.0;
    for (k, (&e, &t)) in entry_ids.iter().zip(values).enumerate() {
        let z = load_z::<R>(src, foreign, k, e as usize);
        t2 += t * t;
        for r in 0..R {
            rh[r] += t * z[r];
        }
        for a in 0..R {
            let za = z[a];
            let row = &mut g[a];
            for b in 0..R {
                row[b] += za * z[b];
            }
        }
    }
    for (grow, g) in gram.chunks_exact_mut(R).zip(&g) {
        grow.copy_from_slice(g);
    }
    rhs.copy_from_slice(&rh);
    t2
}

#[inline]
fn acc_ne_mid<const R: usize>(
    src: &ZSource<'_>,
    entry_ids: &[u32],
    foreign: &[u32],
    values: &[f64],
    gram: &mut [f64],
    rhs: &mut [f64],
) -> f64 {
    gram.fill(0.0);
    rhs.fill(0.0);
    let mut t2 = 0.0;
    for (k, (&e, &t)) in entry_ids.iter().zip(values).enumerate() {
        let z = load_z::<R>(src, foreign, k, e as usize);
        t2 += t * t;
        for r in 0..R {
            rhs[r] += t * z[r];
        }
        for a in 0..R {
            let za = z[a];
            let row = &mut gram[a * R..(a + 1) * R];
            for b in 0..R {
                row[b] += za * z[b];
            }
        }
    }
    t2
}

#[inline]
fn acc_ne_wide<const R: usize>(
    src: &ZSource<'_>,
    entry_ids: &[u32],
    foreign: &[u32],
    values: &[f64],
    gram: &mut [f64],
    rhs: &mut [f64],
) -> f64 {
    gram.fill(0.0);
    rhs.fill(0.0);
    // Runtime trip count on purpose: keeps the row loop rolled (see the
    // dispatch docs).
    let rank = rhs.len();
    let mut t2 = 0.0;
    for (k, (&e, &t)) in entry_ids.iter().zip(values).enumerate() {
        let z = load_z::<R>(src, foreign, k, e as usize);
        t2 += t * t;
        for (r, &za) in rhs.iter_mut().zip(&z) {
            *r += t * za;
        }
        for (grow, &za) in gram.chunks_exact_mut(rank).zip(&z) {
            for (g, &zb) in grow.iter_mut().zip(&z) {
                *g += za * zb;
            }
        }
    }
    t2
}

#[allow(clippy::too_many_arguments)]
fn acc_ne_generic(
    src: &ZSource<'_>,
    entry_ids: &[u32],
    foreign: &[u32],
    values: &[f64],
    rank: usize,
    gram: &mut [f64],
    rhs: &mut [f64],
    z: &mut [f64],
) -> f64 {
    gram.fill(0.0);
    rhs.fill(0.0);
    let mut t2 = 0.0;
    for (k, (&e, &t)) in entry_ids.iter().zip(values).enumerate() {
        load_z_generic(src, foreign, k, e as usize, rank, z);
        t2 += t * t;
        for (r, &za) in rhs.iter_mut().zip(&*z) {
            *r += t * za;
        }
        for (grow, &za) in gram.chunks_exact_mut(rank).zip(&*z) {
            for (g, &zb) in grow.iter_mut().zip(&*z) {
                *g += za * zb;
            }
        }
    }
    t2
}

/// Fill a row's `z`-cache (`entry_ids.len() * rank` contiguous) from the
/// `z` source — what AMN's Newton iterations and CCD's scalar updates
/// re-read all row. Rank-monomorphized like the normal-equation kernel.
pub(crate) fn fill_zcache(
    src: ZSource<'_>,
    entry_ids: &[u32],
    foreign: &[u32],
    rank: usize,
    zcache: &mut Vec<f64>,
) {
    zcache.clear();
    zcache.reserve(entry_ids.len() * rank);
    match rank {
        2 => fill_zcache_fixed::<2>(&src, entry_ids, foreign, zcache),
        4 => fill_zcache_fixed::<4>(&src, entry_ids, foreign, zcache),
        8 => fill_zcache_fixed::<8>(&src, entry_ids, foreign, zcache),
        16 => fill_zcache_fixed::<16>(&src, entry_ids, foreign, zcache),
        _ => {
            for (k, &e) in entry_ids.iter().enumerate() {
                let start = zcache.len();
                zcache.resize(start + rank, 0.0);
                load_z_generic(&src, foreign, k, e as usize, rank, &mut zcache[start..]);
            }
        }
    }
}

#[inline]
fn fill_zcache_fixed<const R: usize>(
    src: &ZSource<'_>,
    entry_ids: &[u32],
    foreign: &[u32],
    zcache: &mut Vec<f64>,
) {
    for (k, &e) in entry_ids.iter().enumerate() {
        let z = load_z::<R>(src, foreign, k, e as usize);
        zcache.extend_from_slice(&z);
    }
}

/// Accumulate one row's normal equations from an already-materialized
/// design cache (`zcache`: `values.len() * rank` contiguous rows) — the
/// Tucker factor path, whose design vectors come from a core contraction
/// rather than the Hadamard cache. Same per-element operation sequence as
/// the streamed kernel.
pub(crate) fn accumulate_normal_equations_cached(
    zcache: &[f64],
    values: &[f64],
    rank: usize,
    gram: &mut [f64],
    rhs: &mut [f64],
) {
    match rank {
        2 => acc_cached_small::<2>(zcache, values, gram, rhs),
        4 => acc_cached_small::<4>(zcache, values, gram, rhs),
        8 => acc_cached_mid::<8>(zcache, values, gram, rhs),
        16 => acc_cached_wide::<16>(zcache, values, gram, rhs),
        _ => {
            gram.fill(0.0);
            rhs.fill(0.0);
            for (zc, &t) in zcache.chunks_exact(rank).zip(values) {
                for (r, &za) in rhs.iter_mut().zip(zc) {
                    *r += t * za;
                }
                for (grow, &za) in gram.chunks_exact_mut(rank).zip(zc) {
                    for (g, &zb) in grow.iter_mut().zip(zc) {
                        *g += za * zb;
                    }
                }
            }
        }
    }
}

#[inline]
fn acc_cached_small<const R: usize>(
    zcache: &[f64],
    values: &[f64],
    gram: &mut [f64],
    rhs: &mut [f64],
) {
    let mut g = [[0.0f64; R]; R];
    let mut rh = [0.0f64; R];
    for (zc, &t) in zcache.chunks_exact(R).zip(values) {
        let z: &[f64; R] = zc.try_into().unwrap();
        for r in 0..R {
            rh[r] += t * z[r];
        }
        for a in 0..R {
            let za = z[a];
            let row = &mut g[a];
            for b in 0..R {
                row[b] += za * z[b];
            }
        }
    }
    for (grow, g) in gram.chunks_exact_mut(R).zip(&g) {
        grow.copy_from_slice(g);
    }
    rhs.copy_from_slice(&rh);
}

#[inline]
fn acc_cached_mid<const R: usize>(
    zcache: &[f64],
    values: &[f64],
    gram: &mut [f64],
    rhs: &mut [f64],
) {
    gram.fill(0.0);
    rhs.fill(0.0);
    for (zc, &t) in zcache.chunks_exact(R).zip(values) {
        let z: &[f64; R] = zc.try_into().unwrap();
        for r in 0..R {
            rhs[r] += t * z[r];
        }
        for a in 0..R {
            let za = z[a];
            let row = &mut gram[a * R..(a + 1) * R];
            for b in 0..R {
                row[b] += za * z[b];
            }
        }
    }
}

#[inline]
fn acc_cached_wide<const R: usize>(
    zcache: &[f64],
    values: &[f64],
    gram: &mut [f64],
    rhs: &mut [f64],
) {
    gram.fill(0.0);
    rhs.fill(0.0);
    let rank = rhs.len();
    for (zc, &t) in zcache.chunks_exact(R).zip(values) {
        let z: &[f64; R] = zc.try_into().unwrap();
        for (r, &za) in rhs.iter_mut().zip(z) {
            *r += t * za;
        }
        for (grow, &za) in gram.chunks_exact_mut(rank).zip(z) {
            for (g, &zb) in grow.iter_mut().zip(z) {
                *g += za * zb;
            }
        }
    }
}

/// Post-solve fused data loss of a least-squares row (or the Tucker core):
/// `Σ_e (z_eᵀu − t_e)² = uᵀGu − 2uᵀr + Σt²` with `G, r` the *unscaled*
/// normal equations, recovered from the scaled+ridged system just solved
/// (`G'' = s·G + λI`, `r'' = s·r`). `O(R²)`, no second pass over entries;
/// cancellation noise is ~1e-16·Σt², far below the trace tolerances that
/// consume it.
pub(crate) fn fused_quadratic_loss(
    gram: &[f64],
    rhs: &[f64],
    u: &[f64],
    rank: usize,
    lambda: f64,
    scale: f64,
    t2: f64,
) -> f64 {
    let mut quad = 0.0;
    for (a, &ua) in u.iter().enumerate() {
        let dot: f64 = gram[a * rank..(a + 1) * rank]
            .iter()
            .zip(u)
            .map(|(gv, &ub)| gv * ub)
            .sum();
        quad += ua * dot;
    }
    let unormsq: f64 = u.iter().map(|x| x * x).sum();
    let udotr: f64 = u.iter().zip(rhs).map(|(a, b)| a * b).sum();
    (quad - lambda * unormsq - 2.0 * udotr) / scale + t2
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpr_tensor::{CpDecomp, SweepCache};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Raw-kernel timing harness (run manually:
    /// `cargo test --release -p cpr_completion kernel_micro -- --ignored --nocapture`).
    #[test]
    #[ignore]
    fn kernel_micro() {
        let dims = [24usize, 24, 24];
        let rank = 8;
        let obs = random_obs(&dims, 2764, 42);
        let cp = CpDecomp::random(&dims, rank, 0.0, 1.0, 7);
        let stream = obs.mode_stream(0);
        let cache = SweepCache::new();
        let src = z_source(&cp, &cache, 0);
        let mut gram = vec![0.0; rank * rank];
        let mut rhs = vec![0.0; rank];
        let mut zs = vec![0.0; rank];
        let reps = 120; // = 40 sweeps x 3 modes
        let t = std::time::Instant::now();
        let mut acc = 0.0;
        for _ in 0..reps {
            for i in 0..stream.rows() {
                let rng = stream.row_range(i);
                if rng.is_empty() {
                    continue;
                }
                acc += accumulate_normal_equations_streamed(
                    src,
                    &stream.entry_ids()[rng.clone()],
                    stream.row_foreign(i),
                    &stream.values()[rng],
                    rank,
                    &mut gram,
                    &mut rhs,
                    &mut zs,
                );
            }
        }
        println!(
            "kernel-only: {:.3} ms for {} rep-sweep-modes (acc {acc:.1})",
            t.elapsed().as_secs_f64() * 1e3,
            reps
        );
    }

    fn random_obs(dims: &[usize], n: usize, seed: u64) -> SparseTensor {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut obs = SparseTensor::new(dims);
        let mut idx = vec![0usize; dims.len()];
        for _ in 0..n {
            for (j, &dj) in dims.iter().enumerate() {
                idx[j] = rng.gen_range(0..dj);
            }
            obs.push(&idx, rng.gen_range(-2.0..2.0));
        }
        obs
    }

    /// Monomorphized and generic accumulators must agree bitwise — they
    /// are the same operation sequence with different loop trip counts —
    /// across both `z` sources (direct gathers at order 3, partial
    /// products at order 4) and against the canonical per-entry `z`.
    #[test]
    fn monomorphized_kernels_bitwise_match_generic() {
        for &(ref dims, mode) in &[(vec![5usize, 4, 3], 1usize), (vec![3, 3, 2, 3], 2)] {
            for &rank in &[2usize, 4, 8, 16] {
                let obs = random_obs(dims, 30, rank as u64);
                let cp = CpDecomp::random(dims, rank, -1.0, 1.0, 7);
                let mut cache = SweepCache::new();
                if needs_cache(dims.len()) {
                    cache.begin_sweep(&cp, &obs);
                    // A real sweep advances the prefix past every mode
                    // before `mode`; mirror that so the cache state is the
                    // one the canonical z expects.
                    for m in 0..mode {
                        cache.advance(m, cp.factor(m), &obs);
                    }
                }
                let stream = obs.mode_stream(mode);
                let src = z_source(&cp, &cache, mode);
                for i in 0..stream.rows() {
                    let rng = stream.row_range(i);
                    if rng.is_empty() {
                        continue;
                    }
                    let ids = &stream.entry_ids()[rng.clone()];
                    let foreign = stream.row_foreign(i);
                    let vals = &stream.values()[rng];
                    let mut g1 = vec![0.0; rank * rank];
                    let mut r1 = vec![0.0; rank];
                    let mut zs = vec![0.0; rank];
                    let t2a = accumulate_normal_equations_streamed(
                        src, ids, foreign, vals, rank, &mut g1, &mut r1, &mut zs,
                    );
                    let mut g2 = vec![0.0; rank * rank];
                    let mut r2 = vec![0.0; rank];
                    let t2b =
                        acc_ne_generic(&src, ids, foreign, vals, rank, &mut g2, &mut r2, &mut zs);
                    assert_eq!(t2a.to_bits(), t2b.to_bits());
                    for (a, b) in g1.iter().zip(&g2) {
                        assert_eq!(a.to_bits(), b.to_bits(), "gram rank {rank}");
                    }
                    for (a, b) in r1.iter().zip(&r2) {
                        assert_eq!(a.to_bits(), b.to_bits(), "rhs rank {rank}");
                    }
                    // z-cache fill agrees with the canonical z per entry.
                    let mut zc = Vec::new();
                    fill_zcache(src, ids, foreign, rank, &mut zc);
                    let mut zref = vec![0.0; rank];
                    for (k, &e) in ids.iter().enumerate() {
                        cp.leave_one_out_canonical(obs.index(e as usize), mode, &mut zref);
                        for (a, b) in zc[k * rank..(k + 1) * rank].iter().zip(&zref) {
                            assert_eq!(a.to_bits(), b.to_bits(), "zcache rank {rank}");
                        }
                    }
                }
            }
        }
    }
}
