//! # cpr_server — the fleet's overload-safe network front end
//!
//! An HTTP/1.1 server over [`cpr_registry::ModelRegistry`], built
//! directly on `std::net` (the offline policy vendors no async stack —
//! and a fixed worker pool with explicit admission control is the point
//! here, not a liability). The headline is **robustness under
//! overload**, in rank order:
//!
//! 1. **Never stop serving.** Malformed frames, slow-loris clients,
//!    mid-request disconnects, connection storms, handler panics — each
//!    is contained to its own connection (`catch_unwind`, read/write
//!    budgets, hard size caps); well-formed in-budget requests keep
//!    getting answers **bitwise equal** to direct registry serving.
//! 2. **Shed early, shed cheap.** An admission controller caps predict
//!    concurrency with a bounded FIFO queue and explicit
//!    [`ShedPolicy`](cpr_registry::ShedPolicy); per-request deadlines
//!    (`x-cpr-deadline-ms`) propagate into chunked batch prediction so
//!    late work is abandoned *before* it burns compute. Sheds answer
//!    503 with `retry-after` derived from observed congestion.
//! 3. **Account exactly.**
//!    `accepted + shed_queue_full + shed_deadline + rejected_malformed
//!    == received` at every stats snapshot — the same bucket-partition
//!    identity the refit pipeline pins for its queues.
//! 4. **Drain losslessly.** [`CprServer::drain`] stops the door,
//!    finishes or deadlines-out in-flight work, and flushes a final
//!    snapshot generation through `cpr_store` — a restart recovers
//!    exactly the drained fleet.
//!
//! Probes (`GET /health`, `GET /stats`, `GET /metrics`,
//! `GET /events?since=<seq>`) are [`Priority::Critical`]: they bypass
//! admission and answer even under full shed — `/metrics` is the whole
//! stack's Prometheus text exposition (one `cpr_obs` hub shared by
//! registry, refit pipeline, store, and server), `/events` the bounded
//! lifecycle-event trace.
//!
//! The chaos side lives in [`fault`] (exact-index server faults: holds
//! and panics) and [`chaos`] (the scripted misbehaving client) — the
//! deterministic harness the `tests/` matrix drives.
//!
//! ```
//! use cpr_core::{serialize, CprModel, Loss};
//! use cpr_grid::{ParamSpace, ParamSpec};
//! use cpr_registry::{ModelId, ModelRegistry};
//! use cpr_server::{chaos::ChaosClient, CprServer, ServerConfig};
//! use cpr_tensor::CpDecomp;
//! use std::sync::Arc;
//!
//! // A fleet of one model behind a server on an ephemeral port.
//! let space = ParamSpace::new(vec![ParamSpec::log("n", 8.0, 1024.0)]);
//! let cp = CpDecomp::random(&[6], 2, -1.0, 1.0, 7);
//! let model = CprModel::from_parts(space, &[6], cp, Loss::LogLeastSquares, 0.0).unwrap();
//! let registry = Arc::new(ModelRegistry::new());
//! registry.insert(ModelId::new("gemm", "frontier", "time"), model.clone());
//!
//! let server = CprServer::bind("127.0.0.1:0", Arc::clone(&registry), ServerConfig::default())
//!     .unwrap();
//! let client = ChaosClient::new(server.local_addr());
//!
//! // One prediction over the wire, bitwise-equal to the model itself.
//! let resp = client.predict(("gemm", "frontier", "time"), &[vec![300.0]], None).unwrap();
//! assert_eq!(resp.status, 200);
//! assert_eq!(resp.predictions()[0].to_bits(), model.predict(&[300.0]).to_bits());
//!
//! // Graceful drain; the accounting identity held throughout.
//! let report = server.drain();
//! assert!(report.final_stats.identity_holds());
//! ```

pub mod admission;
pub mod chaos;
pub mod deadline;
pub mod fault;
pub mod http;
mod server;

pub use admission::{Admission, AdmissionConfig, Admit, Permit, Priority};
pub use chaos::{ChaosClient, ClientConn, ClientResponse};
pub use deadline::{retry_after_ms, DEADLINE_HEADER, RETRY_AFTER_MS_HEADER};
pub use fault::ServerFaultInjector;
pub use http::{Limits, Method, ParseError, RequestHead, Response};
pub use server::{CprServer, DrainReport, ServerConfig, ServerStats};
