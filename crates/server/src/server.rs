//! The server proper: bounded accept loop → fixed worker pool →
//! admission-gated request handling, with deadline propagation, strict
//! shed accounting, and graceful drain.
//!
//! # Request life cycle and the accounting identity
//!
//! A connection is accepted into a **bounded** pending queue (full queue
//! → an immediate canned 503 at the door, counted separately as
//! `door_bounced` — those connections never carried a readable request).
//! A worker reads one request at a time under the read budget, then
//! routes it. Every *fully read* request lands in **exactly one** of
//! four buckets, bumped together with `received` under one mutex at the
//! moment its fate is decided:
//!
//! ```text
//! accepted + shed_queue_full + shed_deadline + rejected_malformed == received
//! ```
//!
//! The identity holds at **every** [`CprServer::stats`] snapshot, not
//! just at quiescence — there is no window where `received` runs ahead
//! of its buckets, because no code path bumps them separately. Contained
//! panics stay inside `accepted` (the request reached compute; its
//! answer is a 500) and are additionally counted in `contained_panics`.
//!
//! # Shed policy at the front door
//!
//! | situation | answer | bucket |
//! |---|---|---|
//! | pending-connection queue full | canned 503 | `door_bounced` (not a request) |
//! | draining, new predict request | 503 + retry-after | `shed_queue_full` |
//! | admission queue full / evicted | 503 + retry-after | `shed_queue_full` |
//! | admission wait hit queue-timeout | 503 + retry-after | `shed_queue_full` |
//! | deadline expired (wait or compute) | 503 + retry-after | `shed_deadline` |
//! | malformed wire/body/deadline/query | 400/404/405/413/431 | `rejected_malformed` |
//! | served (incl. contained panic → 500) | 200 / 500 | `accepted` |
//!
//! Health, stats, and observability probes (`GET /health`, `/stats`,
//! `/metrics`, `/events?since=<seq>`) are
//! [`Critical`](crate::admission::Priority::Critical): they bypass
//! admission entirely and are answered even when every predict request
//! is being shed — including during drain. `/metrics` renders the
//! shared hub in Prometheus text exposition while holding the counters
//! mutex, so exported `cpr_server_*` totals satisfy the identity in
//! every scrape.
//!
//! # Drain
//!
//! [`CprServer::drain`] stops the accept loop (new connections get the
//! canned drain 503), lets workers finish or deadline-out everything
//! already accepted, joins all threads, and finally — with the fleet
//! quiescent — flushes one last snapshot generation through the attached
//! [`FleetStore`]. Nothing durable is lost: the chaos suite restarts a
//! registry from the drained store and checks bitwise equality.

use crate::admission::{Admission, AdmissionConfig, Admit};
use crate::deadline::{request_deadline, retry_after_ms, RETRY_AFTER_MS_HEADER};
use crate::fault::ServerFaultInjector;
use crate::http::{self, Limits, Method, ReadError, RequestHead, Response};
use cpr_obs::{Counter, EventKind, Gauge, Histogram, MetricsRegistry};
use cpr_registry::{ModelId, ModelRegistry, RegistryError};
use cpr_store::FleetStore;
use std::collections::VecDeque;
use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tunables for one server instance. The defaults are sized for tests
/// and small fleets; production raises the budgets, not the structure.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads. Floored at
    /// `admission.max_concurrent + admission.max_queue + 2` so that
    /// critical probes always find a worker that is not parked in
    /// admission.
    pub workers: usize,
    /// Pending accepted connections; beyond this the door bounces.
    pub conn_backlog: usize,
    /// Admission limits for the predict endpoint.
    pub admission: AdmissionConfig,
    /// Wire hardening caps.
    pub limits: Limits,
    /// Total wall budget to read one request (slow-loris defense).
    pub read_budget: Duration,
    /// Total wall budget to write one response (slow-reader defense).
    pub write_budget: Duration,
    /// Deadline applied when the request carries no deadline header.
    pub default_deadline: Duration,
    /// Keep-alive requests served per connection before forcing close.
    pub max_requests_per_conn: u32,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            workers: 4,
            conn_backlog: 64,
            admission: AdmissionConfig::default(),
            limits: Limits::default(),
            read_budget: Duration::from_secs(2),
            write_budget: Duration::from_secs(2),
            default_deadline: Duration::from_secs(2),
            max_requests_per_conn: 10_000,
        }
    }
}

/// Which bucket a finished request lands in (see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Bucket {
    Accepted,
    Malformed,
    ShedQueue,
    ShedDeadline,
}

/// The server's accounting cells. Each field is a handle into the
/// shared observability hub (`cpr_server_*` metrics), so `/metrics`
/// exports the very same cells `/stats` reads — but every bump still
/// happens under the one `Mutex<Counters>`. That mutex is what makes
/// the accounting identity hold at every snapshot *and* every scrape:
/// the `/metrics` handler renders while holding it, so an exported
/// scrape can never catch `received` apart from its buckets.
struct Counters {
    received: Counter,
    accepted: Counter,
    shed_queue_full: Counter,
    shed_deadline: Counter,
    rejected_malformed: Counter,
    contained_panics: Counter,
    door_bounced: Counter,
    read_timeouts: Counter,
    disconnects: Counter,
    in_flight: Gauge,
}

impl Counters {
    fn new(obs: &MetricsRegistry) -> Self {
        Self {
            received: obs.counter("cpr_server_received_total"),
            accepted: obs.counter("cpr_server_accepted_total"),
            shed_queue_full: obs.counter("cpr_server_shed_queue_full_total"),
            shed_deadline: obs.counter("cpr_server_shed_deadline_total"),
            rejected_malformed: obs.counter("cpr_server_rejected_malformed_total"),
            contained_panics: obs.counter("cpr_server_contained_panics_total"),
            door_bounced: obs.counter("cpr_server_door_bounced_total"),
            read_timeouts: obs.counter("cpr_server_read_timeouts_total"),
            disconnects: obs.counter("cpr_server_disconnects_total"),
            in_flight: obs.gauge("cpr_server_in_flight"),
        }
    }
}

/// Per-endpoint whole-request latency histograms (request fully read →
/// response routed), in microseconds.
struct EndpointHists {
    predict: Histogram,
    health: Histogram,
    stats: Histogram,
    metrics: Histogram,
    events: Histogram,
    other: Histogram,
}

impl EndpointHists {
    fn new(obs: &MetricsRegistry) -> Self {
        let h = |ep: &str| obs.histogram(&format!("cpr_server_request_{ep}_us"));
        Self {
            predict: h("predict"),
            health: h("health"),
            stats: h("stats"),
            metrics: h("metrics"),
            events: h("events"),
            other: h("other"),
        }
    }

    /// Map a (query-stripped) path to its endpoint histogram.
    fn pick(&self, path: &str) -> &Histogram {
        match path {
            "/health" => &self.health,
            "/stats" => &self.stats,
            "/metrics" => &self.metrics,
            "/events" => &self.events,
            p if p.starts_with("/predict/") => &self.predict,
            _ => &self.other,
        }
    }
}

/// A consistent snapshot of the server's accounting.
#[derive(Debug, Clone, PartialEq)]
pub struct ServerStats {
    /// Fully read requests whose fate was decided.
    pub received: u64,
    /// Reached compute (200, or a contained-panic 500).
    pub accepted: u64,
    /// Shed by admission/drain overload (503).
    pub shed_queue_full: u64,
    /// Shed because the deadline expired, waiting or computing (503).
    pub shed_deadline: u64,
    /// Rejected at a trust boundary (4xx).
    pub rejected_malformed: u64,
    /// Panics contained by the handler (subset of `accepted`).
    pub contained_panics: u64,
    /// Connections bounced at the door (never carried a request).
    pub door_bounced: u64,
    /// Connections whose read budget expired mid-request.
    pub read_timeouts: u64,
    /// Connections that vanished mid-request.
    pub disconnects: u64,
    /// Requests read but not yet bucketed (being processed right now).
    pub in_flight: u64,
    /// Requests currently holding an admission slot.
    pub active: usize,
    /// Requests currently waiting in the admission queue.
    pub queued: usize,
    /// Median predict service time, microseconds — read from the
    /// `cpr_server_predict_service_us` histogram (0 until the first
    /// successfully served predict).
    pub p50_service_us: u64,
    /// Whether the server is draining.
    pub draining: bool,
}

impl ServerStats {
    /// The accounting identity pinned by the chaos suite.
    pub fn identity_holds(&self) -> bool {
        self.accepted + self.shed_queue_full + self.shed_deadline + self.rejected_malformed
            == self.received
    }

    /// Render as the `/stats` endpoint's line-oriented body.
    pub fn render(&self) -> String {
        format!(
            "received {}\naccepted {}\nshed_queue_full {}\nshed_deadline {}\n\
             rejected_malformed {}\ncontained_panics {}\ndoor_bounced {}\n\
             read_timeouts {}\ndisconnects {}\nin_flight {}\nactive {}\nqueued {}\n\
             p50_service_us {}\ndraining {}\n",
            self.received,
            self.accepted,
            self.shed_queue_full,
            self.shed_deadline,
            self.rejected_malformed,
            self.contained_panics,
            self.door_bounced,
            self.read_timeouts,
            self.disconnects,
            self.in_flight,
            self.active,
            self.queued,
            self.p50_service_us,
            u8::from(self.draining),
        )
    }
}

/// What [`CprServer::drain`] accomplished.
#[derive(Debug)]
pub struct DrainReport {
    /// Generation of the final fleet snapshot, if a store is attached
    /// and the flush succeeded.
    pub snapshot_generation: Option<u64>,
    /// Why the flush failed, if it did.
    pub snapshot_error: Option<String>,
    /// The server's accounting at the end of drain.
    pub final_stats: ServerStats,
}

struct Shared {
    registry: Arc<ModelRegistry>,
    store: Option<Arc<FleetStore>>,
    cfg: ServerConfig,
    admission: Admission,
    injector: ServerFaultInjector,
    counters: Mutex<Counters>,
    /// Per-endpoint request latency, µs (lock-free; not part of the
    /// counting identity).
    endpoints: EndpointHists,
    /// Predict compute time for successfully served requests, µs. The
    /// p50 of this histogram is the congestion hint behind
    /// `x-cpr-retry-after-ms`.
    service_us: Histogram,
    /// Time a predict request spent parked in admission, µs.
    admission_wait_us: Histogram,
    conns: Mutex<VecDeque<TcpStream>>,
    conn_cv: Condvar,
    draining: AtomicBool,
    shutdown: AtomicBool,
    predict_seq: AtomicU64,
}

impl Shared {
    /// Bucket a finished request. The single place `received` moves.
    fn finish(&self, bucket: Bucket, panicked: bool, service_ms: Option<f64>) {
        let c = self.counters.lock().expect("counters poisoned");
        c.in_flight.add(-1);
        c.received.inc();
        match bucket {
            Bucket::Accepted => c.accepted.inc(),
            Bucket::Malformed => c.rejected_malformed.inc(),
            Bucket::ShedQueue => c.shed_queue_full.inc(),
            Bucket::ShedDeadline => c.shed_deadline.inc(),
        }
        if panicked {
            c.contained_panics.inc();
        }
        if let Some(ms) = service_ms {
            self.service_us.record((ms * 1e3) as u64);
        }
    }

    fn stats(&self) -> ServerStats {
        let c = self.counters.lock().expect("counters poisoned");
        let (active, queued) = self.admission.depth();
        ServerStats {
            received: c.received.get(),
            accepted: c.accepted.get(),
            shed_queue_full: c.shed_queue_full.get(),
            shed_deadline: c.shed_deadline.get(),
            rejected_malformed: c.rejected_malformed.get(),
            contained_panics: c.contained_panics.get(),
            door_bounced: c.door_bounced.get(),
            read_timeouts: c.read_timeouts.get(),
            disconnects: c.disconnects.get(),
            in_flight: c.in_flight.get().max(0) as u64,
            active,
            queued,
            p50_service_us: self.service_us.snapshot().quantile(0.5),
            draining: self.draining.load(Ordering::Acquire),
        }
    }

    fn shed_response(&self, reason: &str) -> Response {
        let (_, queued) = self.admission.depth();
        // The congestion hint: queue depth ahead of a future arrival
        // times the *median* observed service time (was an EWMA; the
        // histogram read is monotone under a fixed latency profile, so
        // deeper queues can only raise the hint).
        let p50_ms = self.service_us.snapshot().quantile(0.5) as f64 / 1e3;
        let ms = retry_after_ms(queued, p50_ms);
        self.registry.obs().events().record(EventKind::Shed, reason);
        Response::new(503, format!("{reason}\n"))
            .with_header("retry-after", ms.div_ceil(1000).max(1))
            .with_header(RETRY_AFTER_MS_HEADER, ms)
    }
}

/// One request's routing outcome: the response plus its accounting.
struct Routed {
    resp: Response,
    bucket: Bucket,
    panicked: bool,
    service_ms: Option<f64>,
    /// Force connection close after this response.
    close: bool,
}

impl Routed {
    fn plain(resp: Response, bucket: Bucket) -> Self {
        Self {
            resp,
            bucket,
            panicked: false,
            service_ms: None,
            close: false,
        }
    }
}

/// Strip the query string off a request path: `/events?since=3` →
/// (`/events`, `Some("since=3")`).
fn split_query(path: &str) -> (&str, Option<&str>) {
    match path.split_once('?') {
        Some((p, q)) => (p, Some(q)),
        None => (path, None),
    }
}

fn route(sh: &Shared, head: &RequestHead, body: Vec<u8>) -> Routed {
    let (path, query) = split_query(&head.path);
    match (&head.method, path) {
        // Critical class: no admission, no faults, served under any load
        // — including full shed and drain.
        (Method::Get, "/health") => {
            let body = if sh.draining.load(Ordering::Acquire) {
                "draining\n"
            } else {
                "ok\n"
            };
            Routed::plain(Response::new(200, body), Bucket::Accepted)
        }
        (Method::Get, "/stats") => {
            Routed::plain(Response::new(200, sh.stats().render()), Bucket::Accepted)
        }
        (Method::Get, "/metrics") => {
            // Scrape-while-locked: holding the counters mutex across the
            // render pins the exported `cpr_server_*` totals to the same
            // consistent cut `/stats` sees, so the accounting identity
            // holds in every scrape, not just at quiescence.
            let _cut = sh.counters.lock().expect("counters poisoned");
            let text = sh.registry.obs().render();
            Routed::plain(Response::new(200, text), Bucket::Accepted)
        }
        (Method::Get, "/events") => events_endpoint(sh, query),
        (Method::Post, path) if path.starts_with("/predict/") => predict(sh, head, path, body),
        (Method::Get | Method::Other(_), path) if path.starts_with("/predict/") => Routed::plain(
            Response::new(405, "predict is POST-only\n"),
            Bucket::Malformed,
        ),
        _ => Routed::plain(Response::new(404, "no such endpoint\n"), Bucket::Malformed),
    }
}

/// `GET /events?since=<seq>` — structured lifecycle events newer than
/// `seq` (default 0 = everything still in the ring), one
/// `<seq> <kind> <detail>` line each. A gap between the `since` you
/// asked for and the first returned seq means the ring lapped you.
fn events_endpoint(sh: &Shared, query: Option<&str>) -> Routed {
    let mut since = 0u64;
    for pair in query.unwrap_or("").split('&').filter(|p| !p.is_empty()) {
        match pair.split_once('=') {
            Some(("since", v)) => match v.parse() {
                Ok(n) => since = n,
                Err(_) => {
                    return Routed::plain(
                        Response::new(400, "bad since value\n"),
                        Bucket::Malformed,
                    )
                }
            },
            _ => {
                return Routed::plain(
                    Response::new(400, "events accepts only since=<seq>\n"),
                    Bucket::Malformed,
                )
            }
        }
    }
    let mut out = String::new();
    for e in sh.registry.obs().events().since(since) {
        out.push_str(&e.render_line());
    }
    Routed::plain(Response::new(200, out), Bucket::Accepted)
}

fn predict(sh: &Shared, head: &RequestHead, path: &str, body: Vec<u8>) -> Routed {
    // Trust boundary first: nothing below runs on unvalidated shape.
    let Some((app, machine, metric)) = http::parse_model_path(path) else {
        return Routed::plain(
            Response::new(404, "predict path is /predict/<app>/<machine>/<metric>\n"),
            Bucket::Malformed,
        );
    };
    let now = Instant::now();
    let Some(deadline) = request_deadline(head, now, sh.cfg.default_deadline) else {
        return Routed::plain(
            Response::new(400, "bad x-cpr-deadline-ms value\n"),
            Bucket::Malformed,
        );
    };
    let queries = match http::parse_query_body(&body) {
        Ok(q) => q,
        Err(reason) => {
            return Routed::plain(Response::new(400, format!("{reason}\n")), Bucket::Malformed)
        }
    };
    if sh.draining.load(Ordering::Acquire) {
        let mut r = Routed::plain(sh.shed_response("draining"), Bucket::ShedQueue);
        r.close = true;
        return r;
    }
    let id = ModelId::new(app, machine, metric);
    let batch: Vec<(ModelId, Vec<f64>)> = queries.into_iter().map(|q| (id.clone(), q)).collect();

    // Arrival-ordered index for deterministic fault injection.
    let seq = sh.predict_seq.fetch_add(1, Ordering::SeqCst);
    let wait_deadline = deadline.min(Instant::now() + sh.cfg.admission.queue_timeout);
    let t_wait = Instant::now();
    let admit = sh.admission.admit(wait_deadline);
    sh.admission_wait_us.record_duration(t_wait.elapsed());
    match admit {
        Admit::QueueFull | Admit::DroppedByNewer => {
            Routed::plain(sh.shed_response("admission queue full"), Bucket::ShedQueue)
        }
        Admit::TimedOut => {
            // Which limit fired decides the bucket: the request's own
            // deadline → deadline shed; the queue-wait cap → overload.
            if Instant::now() >= deadline {
                Routed::plain(
                    sh.shed_response("deadline expired in queue"),
                    Bucket::ShedDeadline,
                )
            } else {
                Routed::plain(
                    sh.shed_response("admission wait timed out"),
                    Bucket::ShedQueue,
                )
            }
        }
        Admit::Granted(permit) => {
            let t0 = Instant::now();
            let result = catch_unwind(AssertUnwindSafe(|| {
                sh.injector.maybe_hold(seq);
                sh.injector.maybe_panic(seq);
                sh.registry.serve_batch_deadline(&batch, deadline)
            }));
            drop(permit);
            let service_ms = t0.elapsed().as_secs_f64() * 1e3;
            match result {
                Err(_) => {
                    // Contained panic: the slot is already released (the
                    // permit dropped above, and would have dropped on
                    // unwind regardless); answer 500 and close.
                    let mut r = Routed::plain(
                        Response::new(500, "internal error (contained)\n"),
                        Bucket::Accepted,
                    );
                    r.panicked = true;
                    r.close = true;
                    r
                }
                Ok(Ok(preds)) => {
                    let mut out = String::with_capacity(preds.len() * 24);
                    for y in preds {
                        // f64 Display round-trips bitwise; the body IS
                        // the registry answer.
                        out.push_str(&format!("{y}\n"));
                    }
                    let mut r = Routed::plain(Response::new(200, out), Bucket::Accepted);
                    r.service_ms = Some(service_ms);
                    r
                }
                Ok(Err(RegistryError::DeadlineExceeded)) => Routed::plain(
                    sh.shed_response("deadline expired in compute"),
                    Bucket::ShedDeadline,
                ),
                Ok(Err(RegistryError::UnknownModel(id))) => Routed::plain(
                    Response::new(404, format!("no model for {id}\n")),
                    Bucket::Malformed,
                ),
                Ok(Err(RegistryError::MalformedQuery(m))) => {
                    Routed::plain(Response::new(400, format!("{m}\n")), Bucket::Malformed)
                }
                Ok(Err(other)) => {
                    // Unreachable through this path today; degrade, never die.
                    let mut r =
                        Routed::plain(Response::new(500, format!("{other}\n")), Bucket::Accepted);
                    r.close = true;
                    r
                }
            }
        }
    }
}

fn handle_conn(sh: &Shared, mut stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    let mut carry = Vec::new();
    let mut served = 0u32;
    loop {
        match http::read_request(&mut stream, &mut carry, &sh.cfg.limits, sh.cfg.read_budget) {
            Err(ReadError::Eof) => break,
            Err(ReadError::Disconnect) => {
                sh.counters
                    .lock()
                    .expect("counters poisoned")
                    .disconnects
                    .inc();
                break;
            }
            Err(ReadError::Timeout) => {
                sh.counters
                    .lock()
                    .expect("counters poisoned")
                    .read_timeouts
                    .inc();
                let resp = Response::new(408, "request read budget exhausted\n");
                http::write_response(&mut stream, &resp, false, sh.cfg.write_budget);
                break;
            }
            Err(ReadError::Io(_)) => break,
            Err(ReadError::Parse(e)) => {
                // A fully-diagnosed malformed request: counted.
                sh.counters
                    .lock()
                    .expect("counters poisoned")
                    .in_flight
                    .add(1);
                sh.finish(Bucket::Malformed, false, None);
                let resp = Response::new(e.status(), format!("{}\n", e.reason()));
                http::write_response(&mut stream, &resp, false, sh.cfg.write_budget);
                break;
            }
            Ok((head, body)) => {
                served += 1;
                sh.counters
                    .lock()
                    .expect("counters poisoned")
                    .in_flight
                    .add(1);
                let t_req = Instant::now();
                let routed = route(sh, &head, body);
                sh.finish(routed.bucket, routed.panicked, routed.service_ms);
                sh.endpoints
                    .pick(split_query(&head.path).0)
                    .record_duration(t_req.elapsed());
                let keep = head.keep_alive
                    && !routed.close
                    && served < sh.cfg.max_requests_per_conn
                    && !sh.shutdown.load(Ordering::Acquire);
                let ok = http::write_response(&mut stream, &routed.resp, keep, sh.cfg.write_budget);
                if !keep || !ok {
                    break;
                }
            }
        }
    }
}

fn accept_loop(sh: Arc<Shared>, listener: TcpListener) {
    for conn in listener.incoming() {
        if sh.shutdown.load(Ordering::Acquire) {
            break;
        }
        let Ok(stream) = conn else { continue };
        if sh.draining.load(Ordering::Acquire) {
            door_bounce(&sh, stream, "draining");
            continue;
        }
        let mut q = sh.conns.lock().expect("conns poisoned");
        if q.len() >= sh.cfg.conn_backlog {
            drop(q);
            door_bounce(&sh, stream, "connection backlog full");
        } else {
            q.push_back(stream);
            sh.conn_cv.notify_one();
        }
    }
}

/// Refuse a connection at the door with a canned 503 — bounded work,
/// never a worker. Counted as `door_bounced`, outside the request
/// identity (no request was read).
fn door_bounce(sh: &Shared, mut stream: TcpStream, reason: &str) {
    sh.counters
        .lock()
        .expect("counters poisoned")
        .door_bounced
        .inc();
    let resp = sh.shed_response(reason);
    let bytes = http::render_response(&resp, false);
    let _ = stream.set_write_timeout(Some(Duration::from_millis(100)));
    let _ = stream.write_all(&bytes);
}

fn worker_loop(sh: Arc<Shared>) {
    loop {
        let stream = {
            let mut q = sh.conns.lock().expect("conns poisoned");
            loop {
                if let Some(s) = q.pop_front() {
                    break s;
                }
                if sh.shutdown.load(Ordering::Acquire) {
                    return;
                }
                q = sh.conn_cv.wait(q).expect("conns poisoned");
            }
        };
        handle_conn(&sh, stream);
    }
}

/// A running server. Dropping it without [`CprServer::drain`] shuts it
/// down abruptly (threads joined, no final snapshot).
pub struct CprServer {
    shared: Arc<Shared>,
    addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl CprServer {
    /// Bind and start serving `registry` on `addr` (use port 0 for an
    /// ephemeral port; read it back with [`Self::local_addr`]).
    pub fn bind(
        addr: impl ToSocketAddrs,
        registry: Arc<ModelRegistry>,
        cfg: ServerConfig,
    ) -> std::io::Result<Self> {
        Self::bind_with_store(addr, registry, None, cfg)
    }

    /// [`Self::bind`] plus a durability store: drain flushes one final
    /// snapshot generation through it.
    pub fn bind_with_store(
        addr: impl ToSocketAddrs,
        registry: Arc<ModelRegistry>,
        store: Option<Arc<FleetStore>>,
        cfg: ServerConfig,
    ) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let workers = cfg
            .workers
            .max(cfg.admission.max_concurrent + cfg.admission.max_queue + 2);
        let admission = Admission::new(cfg.admission);
        // One observability hub for the whole stack: the registry owns
        // it, the pipeline and store already publish into it, and the
        // server's own cells join here. A live server is worth timing.
        let obs = Arc::clone(registry.obs());
        registry.enable_timing();
        if let Some(store) = &store {
            store.attach_obs(Arc::clone(&obs));
        }
        let shared = Arc::new(Shared {
            registry,
            store,
            cfg,
            admission,
            injector: ServerFaultInjector::new(),
            counters: Mutex::new(Counters::new(&obs)),
            endpoints: EndpointHists::new(&obs),
            service_us: obs.histogram("cpr_server_predict_service_us"),
            admission_wait_us: obs.histogram("cpr_server_admission_wait_us"),
            conns: Mutex::new(VecDeque::new()),
            conn_cv: Condvar::new(),
            draining: AtomicBool::new(false),
            shutdown: AtomicBool::new(false),
            predict_seq: AtomicU64::new(0),
        });
        let accept = {
            let sh = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("cpr-accept".into())
                .spawn(move || accept_loop(sh, listener))?
        };
        let workers = (0..workers)
            .map(|i| {
                let sh = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("cpr-worker-{i}"))
                    .spawn(move || worker_loop(sh))
            })
            .collect::<std::io::Result<Vec<_>>>()?;
        Ok(Self {
            shared,
            addr,
            accept: Some(accept),
            workers,
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The deterministic fault injector driving the chaos suite.
    pub fn fault_injector(&self) -> ServerFaultInjector {
        self.shared.injector.clone()
    }

    /// A consistent accounting snapshot (the identity holds on every
    /// call — see the module docs).
    pub fn stats(&self) -> ServerStats {
        self.shared.stats()
    }

    /// The registry this server fronts.
    pub fn registry(&self) -> Arc<ModelRegistry> {
        Arc::clone(&self.shared.registry)
    }

    fn stop_threads(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        self.shared.conn_cv.notify_all();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }

    /// Graceful drain: stop accepting, finish (or deadline-out)
    /// everything already accepted, release injected holds, join every
    /// thread, then flush a final snapshot generation if a store is
    /// attached.
    pub fn drain(mut self) -> DrainReport {
        self.shared.draining.store(true, Ordering::Release);
        self.shared
            .registry
            .obs()
            .events()
            .record(EventKind::Drain, "server drain");
        // A drain must not wait on armed chaos holds.
        self.shared.injector.release_all();
        self.stop_threads();
        let (mut generation, mut error) = (None, None);
        if let Some(store) = &self.shared.store {
            match self.shared.registry.snapshot_into(store) {
                Ok(g) => generation = Some(g),
                Err(e) => error = Some(e.to_string()),
            }
        }
        DrainReport {
            snapshot_generation: generation,
            snapshot_error: error,
            final_stats: self.shared.stats(),
        }
    }
}

impl Drop for CprServer {
    fn drop(&mut self) {
        if self.accept.is_some() || !self.workers.is_empty() {
            self.shared.draining.store(true, Ordering::Release);
            self.shared.injector.release_all();
            self.stop_threads();
        }
    }
}

// One server shared across client threads and test harnesses.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<CprServer>();
    assert_send_sync::<ServerStats>();
};
