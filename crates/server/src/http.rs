//! HTTP/1.1 wire handling: hardened parsing on the read side, exact
//! formatting on the write side.
//!
//! Everything that interprets client bytes is a **pure function over a
//! byte slice** ([`parse_head`], [`parse_model_path`],
//! [`parse_query_body`]) so the fuzz suite can hammer it with arbitrary
//! input and assert the trust-boundary contract: a clean [`ParseError`]
//! (mapping to 4xx) or a valid parse — never a panic, never an
//! allocation proportional to anything but the (capped) input length.
//!
//! [`read_request`] is the only stream-facing piece: it reads one
//! request under [`Limits`] and a total wall-clock budget (the
//! slow-loris defense — the budget covers the *whole* request, so a
//! client dribbling a byte per poll runs out of clock, not the server
//! out of patience), then delegates to the pure parsers.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// Hard caps on what a client may send. Violations are clean 4xx
/// rejections before the oversized part is ever buffered.
#[derive(Debug, Clone, Copy)]
pub struct Limits {
    /// Request line + all headers, bytes (terminator included).
    pub max_head_bytes: usize,
    /// Number of header lines.
    pub max_headers: usize,
    /// Body bytes (checked against `content-length` before reading).
    pub max_body_bytes: usize,
}

impl Default for Limits {
    fn default() -> Self {
        Self {
            max_head_bytes: 8 << 10,
            max_headers: 64,
            max_body_bytes: 1 << 20,
        }
    }
}

/// Request methods the server routes. Anything else parses as `Other`
/// and is answered 405 — an unknown method is not malformed wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Method {
    Get,
    Post,
    Other(String),
}

/// A parsed request head: line + headers, body read separately.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestHead {
    pub method: Method,
    pub path: String,
    /// Header names lowercased at parse time; values trimmed.
    pub headers: Vec<(String, String)>,
    /// Whether the client asked to keep the connection open
    /// (HTTP/1.1 default, overridden by `connection: close`).
    pub keep_alive: bool,
}

impl RequestHead {
    /// Case-insensitive header lookup (names are stored lowercased).
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Why client bytes were rejected. Each variant maps to one status via
/// [`ParseError::status`]; none of them ever aborts the process.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// The request line is not `METHOD SP PATH SP HTTP/1.x`.
    BadRequestLine,
    /// A header line has no colon, an empty name, or non-ASCII bytes.
    BadHeader,
    /// More header lines than [`Limits::max_headers`].
    TooManyHeaders,
    /// The head outgrew [`Limits::max_head_bytes`] before terminating.
    HeadTooLarge,
    /// `content-length` is missing on a body-bearing request, repeated,
    /// or not a decimal integer.
    BadContentLength,
    /// `content-length` exceeds [`Limits::max_body_bytes`].
    BodyTooLarge,
}

impl ParseError {
    /// The status code this rejection is answered with.
    pub fn status(&self) -> u16 {
        match self {
            Self::BadRequestLine | Self::BadHeader | Self::BadContentLength => 400,
            Self::TooManyHeaders | Self::HeadTooLarge => 431,
            Self::BodyTooLarge => 413,
        }
    }

    /// Short human-readable reason, sent as the response body.
    pub fn reason(&self) -> &'static str {
        match self {
            Self::BadRequestLine => "malformed request line",
            Self::BadHeader => "malformed header",
            Self::TooManyHeaders => "too many headers",
            Self::HeadTooLarge => "request head too large",
            Self::BadContentLength => "bad content-length",
            Self::BodyTooLarge => "body too large",
        }
    }
}

/// Parse a request head (everything before the blank line, terminator
/// excluded). Pure; the fuzz suite's primary target.
pub fn parse_head(head: &[u8], limits: &Limits) -> Result<RequestHead, ParseError> {
    if head.len() > limits.max_head_bytes {
        return Err(ParseError::HeadTooLarge);
    }
    let mut lines = head
        .split(|&b| b == b'\n')
        .map(|l| l.strip_suffix(b"\r").unwrap_or(l));
    let request_line = lines.next().ok_or(ParseError::BadRequestLine)?;
    let line = std::str::from_utf8(request_line).map_err(|_| ParseError::BadRequestLine)?;
    let mut parts = line.split(' ');
    let (method, path, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v), None) if !m.is_empty() => (m, p, v),
        _ => return Err(ParseError::BadRequestLine),
    };
    if !path.starts_with('/') || !path.bytes().all(|b| (0x21..=0x7e).contains(&b)) {
        return Err(ParseError::BadRequestLine);
    }
    let keep_alive_default = match version {
        "HTTP/1.1" => true,
        "HTTP/1.0" => false,
        _ => return Err(ParseError::BadRequestLine),
    };
    let method = match method {
        "GET" => Method::Get,
        "POST" => Method::Post,
        other => {
            if !other.bytes().all(|b| b.is_ascii_uppercase()) {
                return Err(ParseError::BadRequestLine);
            }
            Method::Other(other.to_string())
        }
    };
    let mut headers = Vec::new();
    for raw in lines {
        if raw.is_empty() {
            continue; // trailing blank from a head ending in \r\n
        }
        if headers.len() >= limits.max_headers {
            return Err(ParseError::TooManyHeaders);
        }
        let raw = std::str::from_utf8(raw).map_err(|_| ParseError::BadHeader)?;
        let (name, value) = raw.split_once(':').ok_or(ParseError::BadHeader)?;
        if name.is_empty()
            || !name
                .bytes()
                .all(|b| (0x21..=0x7e).contains(&b) && b != b':')
        {
            return Err(ParseError::BadHeader);
        }
        headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
    }
    let keep_alive = match headers
        .iter()
        .find(|(n, _)| n == "connection")
        .map(|(_, v)| v.to_ascii_lowercase())
    {
        Some(v) if v == "close" => false,
        Some(v) if v == "keep-alive" => true,
        _ => keep_alive_default,
    };
    Ok(RequestHead {
        method,
        path: path.to_string(),
        headers,
        keep_alive,
    })
}

/// Body length a head announces: `content-length` parsed and checked
/// against the body cap. Absent means 0 (the server routes GET-with-body
/// the same as everyone else: by content-length).
pub fn content_length(head: &RequestHead, limits: &Limits) -> Result<usize, ParseError> {
    let mut found = None;
    for (n, v) in &head.headers {
        if n == "content-length" {
            if found.is_some() {
                return Err(ParseError::BadContentLength);
            }
            found = Some(v);
        }
    }
    let Some(v) = found else { return Ok(0) };
    let n: usize = v.parse().map_err(|_| ParseError::BadContentLength)?;
    if n > limits.max_body_bytes {
        return Err(ParseError::BodyTooLarge);
    }
    Ok(n)
}

/// Split a `/predict/<app>/<machine>/<metric>` path into the model-key
/// triple. `None` for anything else — wrong prefix, wrong segment
/// count, or an empty segment. Pure; fuzz target (the server's 404
/// boundary). Segments are taken raw: model names are restricted to
/// printable ASCII by [`parse_head`]'s path validation.
pub fn parse_model_path(path: &str) -> Option<(&str, &str, &str)> {
    let rest = path.strip_prefix("/predict/")?;
    let mut it = rest.split('/');
    match (it.next(), it.next(), it.next(), it.next()) {
        (Some(app), Some(machine), Some(metric), None)
            if !app.is_empty() && !machine.is_empty() && !metric.is_empty() =>
        {
            Some((app, machine, metric))
        }
        _ => None,
    }
}

/// Parse a prediction body: one query per line, coordinates as
/// whitespace-separated decimal floats. Pure; fuzz target. Returns a
/// human-readable reason on rejection (→ 400). Non-finite *tokens*
/// ("NaN", "inf") parse here — the registry's validation boundary
/// rejects them with the same 400, so they never reach a plan either
/// way.
pub fn parse_query_body(body: &[u8]) -> Result<Vec<Vec<f64>>, String> {
    let text = std::str::from_utf8(body).map_err(|_| "body is not utf-8".to_string())?;
    let mut queries = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let mut q = Vec::new();
        for tok in line.split_whitespace() {
            let v: f64 = tok
                .parse()
                .map_err(|_| format!("line {}: bad float {tok:?}", lineno + 1))?;
            q.push(v);
        }
        queries.push(q);
    }
    if queries.is_empty() {
        return Err("no queries in body".to_string());
    }
    Ok(queries)
}

/// Why [`read_request`] stopped without a request.
#[derive(Debug)]
pub enum ReadError {
    /// Clean close before any request byte — the keep-alive end state.
    Eof,
    /// The peer vanished mid-request (disconnect fault shape).
    Disconnect,
    /// The total read budget ran out (slow-loris fault shape).
    Timeout,
    /// A transport error other than the above.
    Io(std::io::Error),
    /// The bytes read do not form an acceptable request.
    Parse(ParseError),
}

fn arm_read_timeout(stream: &TcpStream, start: Instant, budget: Duration) -> Result<(), ReadError> {
    let elapsed = start.elapsed();
    if elapsed >= budget {
        return Err(ReadError::Timeout);
    }
    stream
        .set_read_timeout(Some(budget - elapsed))
        .map_err(ReadError::Io)
}

fn read_some(
    stream: &mut TcpStream,
    buf: &mut Vec<u8>,
    start: Instant,
    budget: Duration,
) -> Result<usize, ReadError> {
    arm_read_timeout(stream, start, budget)?;
    let mut chunk = [0u8; 1024];
    match stream.read(&mut chunk) {
        Ok(0) => Ok(0),
        Ok(n) => {
            buf.extend_from_slice(&chunk[..n]);
            Ok(n)
        }
        Err(e)
            if e.kind() == std::io::ErrorKind::WouldBlock
                || e.kind() == std::io::ErrorKind::TimedOut =>
        {
            Err(ReadError::Timeout)
        }
        Err(e) => Err(ReadError::Io(e)),
    }
}

/// Read one full request (head + body) under `limits`, spending at most
/// `budget` of wall clock across all reads. Leftover bytes past the
/// request (pipelining) are returned for the next call to prepend.
pub fn read_request(
    stream: &mut TcpStream,
    carry: &mut Vec<u8>,
    limits: &Limits,
    budget: Duration,
) -> Result<(RequestHead, Vec<u8>), ReadError> {
    let start = Instant::now();
    let mut buf = std::mem::take(carry);
    let head_end = loop {
        if let Some(pos) = find_terminator(&buf) {
            break pos;
        }
        if buf.len() > limits.max_head_bytes {
            return Err(ReadError::Parse(ParseError::HeadTooLarge));
        }
        if read_some(stream, &mut buf, start, budget)? == 0 {
            return Err(if buf.is_empty() {
                ReadError::Eof
            } else {
                ReadError::Disconnect
            });
        }
    };
    let head = parse_head(&buf[..head_end], limits).map_err(ReadError::Parse)?;
    let body_len = content_length(&head, limits).map_err(ReadError::Parse)?;
    let mut rest = buf.split_off(head_end + 4);
    while rest.len() < body_len {
        if read_some(stream, &mut rest, start, budget)? == 0 {
            return Err(ReadError::Disconnect);
        }
    }
    *carry = rest.split_off(body_len);
    Ok((head, rest))
}

fn find_terminator(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// A response about to be written. The writer adds `content-length` and
/// `connection`; everything else the handler put in `headers` goes out
/// as-is.
#[derive(Debug, Clone)]
pub struct Response {
    pub status: u16,
    pub headers: Vec<(String, String)>,
    pub body: Vec<u8>,
}

impl Response {
    pub fn new(status: u16, body: impl Into<Vec<u8>>) -> Self {
        Self {
            status,
            headers: Vec::new(),
            body: body.into(),
        }
    }

    pub fn with_header(mut self, name: &str, value: impl ToString) -> Self {
        self.headers.push((name.to_string(), value.to_string()));
        self
    }
}

fn status_text(code: u16) -> &'static str {
    match code {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Serialize `resp` to wire bytes, with `connection` per `keep_alive`.
pub fn render_response(resp: &Response, keep_alive: bool) -> Vec<u8> {
    let mut out = Vec::with_capacity(resp.body.len() + 128);
    out.extend_from_slice(
        format!("HTTP/1.1 {} {}\r\n", resp.status, status_text(resp.status)).as_bytes(),
    );
    for (n, v) in &resp.headers {
        out.extend_from_slice(format!("{n}: {v}\r\n").as_bytes());
    }
    out.extend_from_slice(format!("content-length: {}\r\n", resp.body.len()).as_bytes());
    out.extend_from_slice(if keep_alive {
        b"connection: keep-alive\r\n"
    } else {
        b"connection: close\r\n"
    });
    out.extend_from_slice(b"\r\n");
    out.extend_from_slice(&resp.body);
    out
}

/// Write `resp`, best-effort, under a write budget (the slow-reader
/// defense). Returns whether the full response went out.
pub fn write_response(
    stream: &mut TcpStream,
    resp: &Response,
    keep_alive: bool,
    budget: Duration,
) -> bool {
    let bytes = render_response(resp, keep_alive);
    if stream.set_write_timeout(Some(budget)).is_err() {
        return false;
    }
    stream
        .write_all(&bytes)
        .and_then(|_| stream.flush())
        .is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn head_of(bytes: &[u8]) -> Result<RequestHead, ParseError> {
        parse_head(bytes, &Limits::default())
    }

    #[test]
    fn parses_a_plain_request_line() {
        let h = head_of(b"GET /health HTTP/1.1").unwrap();
        assert_eq!(h.method, Method::Get);
        assert_eq!(h.path, "/health");
        assert!(h.keep_alive);
    }

    #[test]
    fn headers_are_lowercased_and_trimmed() {
        let h = head_of(b"POST /p HTTP/1.1\r\nX-Cpr-Deadline-Ms:  25 \r\nHost: x").unwrap();
        assert_eq!(h.header("x-cpr-deadline-ms"), Some("25"));
        assert_eq!(h.header("host"), Some("x"));
    }

    #[test]
    fn connection_close_and_http10_disable_keep_alive() {
        assert!(!head_of(b"GET / HTTP/1.0").unwrap().keep_alive);
        assert!(
            !head_of(b"GET / HTTP/1.1\r\nConnection: close")
                .unwrap()
                .keep_alive
        );
        assert!(
            head_of(b"GET / HTTP/1.0\r\nConnection: keep-alive")
                .unwrap()
                .keep_alive
        );
    }

    #[test]
    fn malformed_request_lines_reject() {
        for bad in [
            &b"GET /"[..],
            b"GET / HTTP/2.0",
            b"GET  / HTTP/1.1",
            b"get / HTTP/1.1",
            b" / HTTP/1.1",
            b"GET /\x01 HTTP/1.1",
            b"GET relative HTTP/1.1",
            b"\xff\xfe",
        ] {
            assert!(head_of(bad).is_err(), "{bad:?} should reject");
        }
    }

    #[test]
    fn header_caps_enforced() {
        let mut many = b"GET / HTTP/1.1".to_vec();
        for i in 0..65 {
            many.extend_from_slice(format!("\r\nh{i}: v").as_bytes());
        }
        assert_eq!(head_of(&many), Err(ParseError::TooManyHeaders));
        let huge = vec![b'a'; 9 << 10];
        assert_eq!(head_of(&huge), Err(ParseError::HeadTooLarge));
    }

    #[test]
    fn content_length_validation() {
        let limits = Limits::default();
        let h = head_of(b"POST /p HTTP/1.1\r\ncontent-length: 10").unwrap();
        assert_eq!(content_length(&h, &limits), Ok(10));
        let h = head_of(b"POST /p HTTP/1.1\r\ncontent-length: nope").unwrap();
        assert_eq!(
            content_length(&h, &limits),
            Err(ParseError::BadContentLength)
        );
        let h = head_of(b"POST /p HTTP/1.1\r\ncontent-length: 99999999").unwrap();
        assert_eq!(content_length(&h, &limits), Err(ParseError::BodyTooLarge));
        let h = head_of(b"POST /p HTTP/1.1\r\ncontent-length: 1\r\ncontent-length: 1").unwrap();
        assert_eq!(
            content_length(&h, &limits),
            Err(ParseError::BadContentLength)
        );
        let h = head_of(b"GET / HTTP/1.1").unwrap();
        assert_eq!(content_length(&h, &limits), Ok(0));
    }

    #[test]
    fn model_path_triples() {
        assert_eq!(
            parse_model_path("/predict/gemm/frontier/time"),
            Some(("gemm", "frontier", "time"))
        );
        for bad in [
            "/predict/gemm/frontier",
            "/predict/gemm/frontier/time/extra",
            "/predict//frontier/time",
            "/predictor/a/b/c",
            "/health",
            "",
        ] {
            assert_eq!(parse_model_path(bad), None, "{bad:?}");
        }
    }

    #[test]
    fn query_bodies_parse_and_reject() {
        assert_eq!(
            parse_query_body(b"1 2.5 3\n\n4 5 6\n").unwrap(),
            vec![vec![1.0, 2.5, 3.0], vec![4.0, 5.0, 6.0]]
        );
        assert!(parse_query_body(b"").is_err());
        assert!(parse_query_body(b"1 two 3").is_err());
        assert!(parse_query_body(b"\xff\xff").is_err());
        // Non-finite tokens parse here; the registry boundary rejects them.
        assert!(parse_query_body(b"NaN inf").is_ok());
    }

    #[test]
    fn responses_render_with_length_and_connection() {
        let r = Response::new(200, "hi").with_header("x-extra", 7);
        let wire = String::from_utf8(render_response(&r, true)).unwrap();
        assert!(wire.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(wire.contains("content-length: 2\r\n"));
        assert!(wire.contains("x-extra: 7\r\n"));
        assert!(wire.contains("connection: keep-alive\r\n"));
        assert!(wire.ends_with("\r\n\r\nhi"));
        let wire = String::from_utf8(render_response(&r, false)).unwrap();
        assert!(wire.contains("connection: close\r\n"));
    }

    #[test]
    fn parse_error_statuses() {
        assert_eq!(ParseError::BadRequestLine.status(), 400);
        assert_eq!(ParseError::HeadTooLarge.status(), 431);
        assert_eq!(ParseError::BodyTooLarge.status(), 413);
    }
}
