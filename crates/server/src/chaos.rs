//! The scripted chaos client: the test-harness peer of
//! [`ServerFaultInjector`](crate::ServerFaultInjector). Where the
//! injector arms faults *inside* the server at exact request indices,
//! this client misbehaves *at* the server from outside — mid-request
//! disconnects, slow-loris byte-dribbles, malformed and oversized
//! frames, connection storms — and also speaks the protocol properly
//! for the equality checks in between.
//!
//! It is a deliberately simple blocking client over `std::net` (the
//! offline policy allows nothing else), shipped in the crate (not the
//! test tree) so the soak binary and the perf stages drive the same
//! code the chaos matrix does.

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// A parsed response.
#[derive(Debug, Clone)]
pub struct ClientResponse {
    pub status: u16,
    pub headers: Vec<(String, String)>,
    pub body: Vec<u8>,
}

impl ClientResponse {
    /// Case-insensitive header lookup.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// Body as one f64 per line — the predict response shape.
    pub fn predictions(&self) -> Vec<f64> {
        std::str::from_utf8(&self.body)
            .unwrap_or("")
            .lines()
            .filter(|l| !l.is_empty())
            .map(|l| l.parse().expect("prediction line must parse"))
            .collect()
    }
}

/// A keep-alive connection speaking well-formed HTTP/1.1.
pub struct ClientConn {
    stream: TcpStream,
    carry: Vec<u8>,
}

impl ClientConn {
    pub fn open(addr: SocketAddr) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(Duration::from_secs(10)))?;
        stream.set_write_timeout(Some(Duration::from_secs(10)))?;
        Ok(Self {
            stream,
            carry: Vec::new(),
        })
    }

    /// Send one request and read its response.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        headers: &[(&str, String)],
        body: &[u8],
    ) -> std::io::Result<ClientResponse> {
        let mut req = format!("{method} {path} HTTP/1.1\r\n");
        for (n, v) in headers {
            req.push_str(&format!("{n}: {v}\r\n"));
        }
        req.push_str(&format!("content-length: {}\r\n\r\n", body.len()));
        self.stream.write_all(req.as_bytes())?;
        self.stream.write_all(body)?;
        self.read_response()
    }

    fn read_response(&mut self) -> std::io::Result<ClientResponse> {
        let mut buf = std::mem::take(&mut self.carry);
        let head_end = loop {
            if let Some(pos) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
                break pos;
            }
            let mut chunk = [0u8; 1024];
            let n = self.stream.read(&mut chunk)?;
            if n == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "server closed mid-response",
                ));
            }
            buf.extend_from_slice(&chunk[..n]);
        };
        let head = String::from_utf8_lossy(&buf[..head_end]).to_string();
        let mut lines = head.split("\r\n");
        let status_line = lines.next().unwrap_or("");
        let status: u16 = status_line
            .split(' ')
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| {
                std::io::Error::new(std::io::ErrorKind::InvalidData, "bad status line")
            })?;
        let headers: Vec<(String, String)> = lines
            .filter_map(|l| l.split_once(':'))
            .map(|(n, v)| (n.to_ascii_lowercase(), v.trim().to_string()))
            .collect();
        let body_len: usize = headers
            .iter()
            .find(|(n, _)| n == "content-length")
            .and_then(|(_, v)| v.parse().ok())
            .unwrap_or(0);
        let mut body = buf.split_off(head_end + 4);
        while body.len() < body_len {
            let mut chunk = [0u8; 1024];
            let n = self.stream.read(&mut chunk)?;
            if n == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "server closed mid-body",
                ));
            }
            body.extend_from_slice(&chunk[..n]);
        }
        self.carry = body.split_off(body_len);
        Ok(ClientResponse {
            status,
            headers,
            body,
        })
    }
}

/// The scripted chaos/reference client over one server address.
pub struct ChaosClient {
    addr: SocketAddr,
}

impl ChaosClient {
    pub fn new(addr: SocketAddr) -> Self {
        Self { addr }
    }

    /// One-shot well-formed request on a fresh connection.
    pub fn request(
        &self,
        method: &str,
        path: &str,
        headers: &[(&str, String)],
        body: &[u8],
    ) -> std::io::Result<ClientResponse> {
        ClientConn::open(self.addr)?.request(method, path, headers, body)
    }

    /// POST a prediction batch; `deadline_ms` arms the deadline header.
    pub fn predict(
        &self,
        key: (&str, &str, &str),
        queries: &[Vec<f64>],
        deadline_ms: Option<u64>,
    ) -> std::io::Result<ClientResponse> {
        let path = format!("/predict/{}/{}/{}", key.0, key.1, key.2);
        let mut body = String::new();
        for q in queries {
            let line: Vec<String> = q.iter().map(|v| format!("{v}")).collect();
            body.push_str(&line.join(" "));
            body.push('\n');
        }
        let headers: Vec<(&str, String)> = match deadline_ms {
            Some(ms) => vec![(crate::deadline::DEADLINE_HEADER, ms.to_string())],
            None => Vec::new(),
        };
        self.request("POST", &path, &headers, body.as_bytes())
    }

    /// GET /health body.
    pub fn health(&self) -> std::io::Result<String> {
        let r = self.request("GET", "/health", &[], b"")?;
        Ok(String::from_utf8_lossy(&r.body).trim().to_string())
    }

    /// GET /stats parsed into name → value.
    pub fn stats(&self) -> std::io::Result<HashMap<String, u64>> {
        let r = self.request("GET", "/stats", &[], b"")?;
        let text = String::from_utf8_lossy(&r.body).to_string();
        Ok(text
            .lines()
            .filter_map(|l| {
                let (k, v) = l.rsplit_once(' ')?;
                Some((k.to_string(), v.parse().ok()?))
            })
            .collect())
    }

    /// GET /metrics — the whole stack's Prometheus text exposition.
    pub fn metrics(&self) -> std::io::Result<String> {
        let r = self.request("GET", "/metrics", &[], b"")?;
        Ok(String::from_utf8_lossy(&r.body).to_string())
    }

    /// A named counter/gauge sample scraped off `GET /metrics` (simple
    /// metrics only; histogram series carry suffixed names).
    pub fn metric(&self, name: &str) -> std::io::Result<Option<u64>> {
        let text = self.metrics()?;
        Ok(text.lines().find_map(|l| {
            let (k, v) = l.split_once(' ')?;
            (k == name).then(|| v.parse().ok())?
        }))
    }

    /// GET `/events?since=<seq>`, parsed into `(seq, kind, detail)` rows.
    pub fn events(&self, since: u64) -> std::io::Result<Vec<(u64, String, String)>> {
        let r = self.request("GET", &format!("/events?since={since}"), &[], b"")?;
        let text = String::from_utf8_lossy(&r.body).to_string();
        Ok(text
            .lines()
            .filter_map(|l| {
                let mut parts = l.splitn(3, ' ');
                let seq = parts.next()?.parse().ok()?;
                let kind = parts.next()?.to_string();
                let detail = parts.next().unwrap_or("").to_string();
                Some((seq, kind, detail))
            })
            .collect())
    }

    /// Fault: send `prefix` raw bytes, then vanish (mid-request
    /// disconnect). Returns after the close.
    pub fn disconnect_after(&self, prefix: &[u8]) -> std::io::Result<()> {
        let mut s = TcpStream::connect(self.addr)?;
        s.set_nodelay(true)?;
        s.write_all(prefix)?;
        Ok(()) // drop closes
    }

    /// Fault: dribble `bytes` one chunk per `step`, never finishing
    /// inside a sane read budget. Returns what the server did: its
    /// response bytes if it answered (408), or empty if it just closed.
    pub fn slow_loris(
        &self,
        bytes: &[u8],
        chunk: usize,
        step: Duration,
        give_up_after: Duration,
    ) -> std::io::Result<Vec<u8>> {
        let mut s = TcpStream::connect(self.addr)?;
        s.set_nodelay(true)?;
        let start = std::time::Instant::now();
        for piece in bytes.chunks(chunk.max(1)) {
            if start.elapsed() >= give_up_after {
                break;
            }
            if s.write_all(piece).is_err() {
                break; // server hung up on us: the defense worked
            }
            std::thread::sleep(step);
        }
        let _ = s.shutdown(std::net::Shutdown::Write);
        s.set_read_timeout(Some(Duration::from_secs(5)))?;
        let mut out = Vec::new();
        let _ = s.read_to_end(&mut out);
        Ok(out)
    }

    /// Fault: raw bytes on the wire, then read whatever comes back
    /// until the server closes.
    pub fn send_raw(&self, bytes: &[u8]) -> std::io::Result<Vec<u8>> {
        let mut s = TcpStream::connect(self.addr)?;
        s.set_nodelay(true)?;
        s.set_read_timeout(Some(Duration::from_secs(5)))?;
        s.set_write_timeout(Some(Duration::from_secs(5)))?;
        // The server may (correctly) reject before reading everything;
        // keep going so we still collect its response.
        let _ = s.write_all(bytes);
        let _ = s.shutdown(std::net::Shutdown::Write);
        let mut out = Vec::new();
        let _ = s.read_to_end(&mut out);
        Ok(out)
    }

    /// Status code of a raw exchange, if one came back.
    pub fn raw_status(&self, bytes: &[u8]) -> std::io::Result<Option<u16>> {
        let out = self.send_raw(bytes)?;
        let text = String::from_utf8_lossy(&out);
        Ok(text
            .strip_prefix("HTTP/1.1 ")
            .and_then(|r| r.get(..3))
            .and_then(|s| s.parse().ok()))
    }
}
