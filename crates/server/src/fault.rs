//! Deterministic server-side fault injection, in the mold of the refit
//! pipeline's `FaultInjector` and the store's `FaultFs`: faults are
//! armed at **exact prediction-request indices** (the server numbers
//! predict requests in arrival order), fire exactly once, and count
//! themselves, so chaos tests assert precise behavior instead of
//! sleeping and hoping.
//!
//! Two fault shapes, both firing inside the admission permit (that is
//! the point — a held request *occupies a concurrency slot*, which is
//! how tests fill the server to overflow deterministically):
//!
//! * **Holds** — [`ServerFaultInjector::hold_at`] parks request `n` in
//!   its compute phase until [`released`](ServerFaultInjector::release)
//!   (or a safety cap elapses). Models a slow backend.
//! * **Panics** — [`ServerFaultInjector::panic_at`] panics request `n`
//!   mid-compute. The connection handler's `catch_unwind` must convert
//!   it to a 500 with accounting intact; the test asserts exactly that.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

#[derive(Default)]
struct Armed {
    /// request index → safety cap on the hold.
    holds: HashMap<u64, Duration>,
    /// Individually released hold indices.
    released: HashSet<u64>,
    /// One-shot global release of every hold, armed and future.
    release_all: bool,
    /// request indices that panic mid-compute (one-shot).
    panics: HashSet<u64>,
}

/// Shared, clonable injector handle. A default-constructed injector is
/// inert: the hot path pays one atomic load to find that out.
#[derive(Clone, Default)]
pub struct ServerFaultInjector {
    inner: Arc<Inner>,
}

#[derive(Default)]
struct Inner {
    armed: Mutex<Armed>,
    cv: Condvar,
    /// Cheap emptiness hint: number of armed (unfired) faults.
    pending: AtomicU64,
    fired_holds: AtomicU64,
    fired_panics: AtomicU64,
}

impl ServerFaultInjector {
    pub fn new() -> Self {
        Self::default()
    }

    /// Park predict request `index` in compute until released, at most
    /// `cap` (a safety net so a forgotten release cannot hang a test).
    pub fn hold_at(&self, index: u64, cap: Duration) {
        let mut a = self.inner.armed.lock().expect("injector poisoned");
        if a.holds.insert(index, cap).is_none() {
            self.inner.pending.fetch_add(1, Ordering::SeqCst);
        }
    }

    /// Panic predict request `index` mid-compute (one-shot).
    pub fn panic_at(&self, index: u64) {
        let mut a = self.inner.armed.lock().expect("injector poisoned");
        if a.panics.insert(index) {
            self.inner.pending.fetch_add(1, Ordering::SeqCst);
        }
    }

    /// Release one held request.
    pub fn release(&self, index: u64) {
        let mut a = self.inner.armed.lock().expect("injector poisoned");
        a.released.insert(index);
        self.inner.cv.notify_all();
    }

    /// Release every held request, present and future.
    pub fn release_all(&self) {
        let mut a = self.inner.armed.lock().expect("injector poisoned");
        a.release_all = true;
        self.inner.cv.notify_all();
    }

    /// Holds that have completed (released or capped out).
    pub fn fired_holds(&self) -> u64 {
        self.inner.fired_holds.load(Ordering::SeqCst)
    }

    /// Panics that have fired.
    pub fn fired_panics(&self) -> u64 {
        self.inner.fired_panics.load(Ordering::SeqCst)
    }

    /// Server side: block if a hold is armed for `index`.
    pub(crate) fn maybe_hold(&self, index: u64) {
        if self.inner.pending.load(Ordering::SeqCst) == 0 {
            return;
        }
        let mut a = self.inner.armed.lock().expect("injector poisoned");
        let Some(cap) = a.holds.remove(&index) else {
            return;
        };
        self.inner.pending.fetch_sub(1, Ordering::SeqCst);
        let deadline = Instant::now() + cap;
        while !a.release_all && !a.released.contains(&index) {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            let (guard, _) = self
                .inner
                .cv
                .wait_timeout(a, deadline - now)
                .expect("injector poisoned");
            a = guard;
        }
        a.released.remove(&index);
        self.inner.fired_holds.fetch_add(1, Ordering::SeqCst);
    }

    /// Server side: panic if a panic is armed for `index`.
    pub(crate) fn maybe_panic(&self, index: u64) {
        if self.inner.pending.load(Ordering::SeqCst) == 0 {
            return;
        }
        let fire = {
            let mut a = self.inner.armed.lock().expect("injector poisoned");
            a.panics.remove(&index)
        };
        if fire {
            self.inner.pending.fetch_sub(1, Ordering::SeqCst);
            self.inner.fired_panics.fetch_add(1, Ordering::SeqCst);
            panic!("injected server fault: panic at predict request {index}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inert_injector_is_free_of_side_effects() {
        let inj = ServerFaultInjector::new();
        inj.maybe_hold(0);
        inj.maybe_panic(0);
        assert_eq!(inj.fired_holds(), 0);
        assert_eq!(inj.fired_panics(), 0);
    }

    #[test]
    fn holds_park_until_released() {
        let inj = ServerFaultInjector::new();
        inj.hold_at(3, Duration::from_secs(5));
        let worker = {
            let inj = inj.clone();
            std::thread::spawn(move || {
                let t0 = Instant::now();
                inj.maybe_hold(3);
                t0.elapsed()
            })
        };
        // Other indices pass straight through while 3 is armed.
        inj.maybe_hold(2);
        // The pending hint hits 0 the moment the worker consumes the
        // hold — i.e. it is parked from then on.
        while inj.inner.pending.load(Ordering::SeqCst) != 0 {
            std::thread::yield_now();
        }
        std::thread::sleep(Duration::from_millis(20));
        inj.release(3);
        let held = worker.join().unwrap();
        assert!(held >= Duration::from_millis(15), "held only {held:?}");
        assert_eq!(inj.fired_holds(), 1);
    }

    #[test]
    fn hold_cap_is_a_safety_net() {
        let inj = ServerFaultInjector::new();
        inj.hold_at(0, Duration::from_millis(10));
        let t0 = Instant::now();
        inj.maybe_hold(0);
        assert!(t0.elapsed() >= Duration::from_millis(8));
        assert_eq!(inj.fired_holds(), 1);
    }

    #[test]
    fn release_all_frees_every_hold() {
        let inj = ServerFaultInjector::new();
        for i in 0..4 {
            inj.hold_at(i, Duration::from_secs(5));
        }
        let workers: Vec<_> = (0..4)
            .map(|i| {
                let inj = inj.clone();
                std::thread::spawn(move || inj.maybe_hold(i))
            })
            .collect();
        inj.release_all();
        for w in workers {
            w.join().unwrap();
        }
        assert_eq!(inj.fired_holds(), 4);
    }

    #[test]
    fn panics_fire_exactly_once() {
        let inj = ServerFaultInjector::new();
        inj.panic_at(7);
        let r = std::panic::catch_unwind({
            let inj = inj.clone();
            move || inj.maybe_panic(7)
        });
        assert!(r.is_err());
        assert_eq!(inj.fired_panics(), 1);
        inj.maybe_panic(7); // disarmed: must not panic again
    }
}
