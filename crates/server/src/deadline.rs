//! Deadline header parsing and backpressure arithmetic — pure helpers
//! between the wire and the clock.

use crate::http::RequestHead;
use std::time::{Duration, Instant};

/// The request header carrying the client's time budget, in
/// milliseconds from the moment the server finished reading the
/// request. `0` means "already late": the request is shed before any
/// work, which is exactly what a deadline-zero flood tests.
pub const DEADLINE_HEADER: &str = "x-cpr-deadline-ms";

/// Response header mirroring the computed backpressure delay in
/// milliseconds (finer-grained than the integer-seconds `retry-after`).
pub const RETRY_AFTER_MS_HEADER: &str = "x-cpr-retry-after-ms";

/// Resolve a request's deadline: the header if present and valid, the
/// server default otherwise. `None` means the header exists but is not
/// a decimal milliseconds value (→ 400).
pub fn request_deadline(
    head: &RequestHead,
    now: Instant,
    default_budget: Duration,
) -> Option<Instant> {
    match head.header(DEADLINE_HEADER) {
        None => Some(now + default_budget),
        Some(v) => {
            let ms: u64 = v.trim().parse().ok()?;
            Some(now + Duration::from_millis(ms))
        }
    }
}

/// Backpressure hint for a shed response: how long the client should
/// wait before retrying, derived from the congestion actually observed
/// — queue depth ahead of a future arrival times the per-request
/// service time (the server feeds the median of its request-latency
/// histogram here; under a fixed latency profile the hint is monotone
/// in queue depth). Clamped so a cold histogram can neither promise an
/// instant retry nor park clients for minutes.
pub fn retry_after_ms(queue_depth: usize, service_ms: f64) -> u64 {
    let per = service_ms.max(1.0);
    let ms = (queue_depth as f64 + 1.0) * per;
    (ms as u64).clamp(10, 5_000)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::{parse_head, Limits};

    fn head(raw: &[u8]) -> RequestHead {
        parse_head(raw, &Limits::default()).unwrap()
    }

    #[test]
    fn header_sets_the_budget() {
        let now = Instant::now();
        let h = head(b"POST /p HTTP/1.1\r\nx-cpr-deadline-ms: 250");
        assert_eq!(
            request_deadline(&h, now, Duration::from_secs(9)).unwrap(),
            now + Duration::from_millis(250)
        );
    }

    #[test]
    fn absent_header_uses_the_default() {
        let now = Instant::now();
        let h = head(b"POST /p HTTP/1.1");
        assert_eq!(
            request_deadline(&h, now, Duration::from_secs(2)).unwrap(),
            now + Duration::from_secs(2)
        );
    }

    #[test]
    fn zero_is_already_late_and_garbage_is_malformed() {
        let now = Instant::now();
        let h = head(b"POST /p HTTP/1.1\r\nx-cpr-deadline-ms: 0");
        assert_eq!(
            request_deadline(&h, now, Duration::from_secs(2)).unwrap(),
            now
        );
        for bad in ["-5", "soon", "1.5", "18446744073709551616"] {
            let raw = format!("POST /p HTTP/1.1\r\nx-cpr-deadline-ms: {bad}");
            assert!(request_deadline(&head(raw.as_bytes()), now, Duration::ZERO).is_none());
        }
    }

    #[test]
    fn retry_after_scales_with_congestion_and_clamps() {
        assert_eq!(retry_after_ms(0, 0.0), 10);
        assert_eq!(retry_after_ms(3, 5.0), 20);
        assert_eq!(retry_after_ms(10_000, 100.0), 5_000);
        assert!(retry_after_ms(4, 2.0) <= retry_after_ms(8, 2.0));
    }
}
